SHELL := /bin/bash

.PHONY: build test bench bench-quick bakeoff clean

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# CI smoke test: run a fast experiment subset at quick scale on two
# worker domains and diff the output (wall times normalized away)
# against the golden file.  Catches both report regressions and
# parallel-runner nondeterminism — the report bytes must not depend
# on the job count or on scheduling.  The reduced quick-scale micro
# set still runs (so the JSON has micro numbers), but its
# timing-dependent lines are filtered out of the golden diff.
bench-quick: build
	set -o pipefail; \
	D2_SCALE=quick D2_JOBS=2 dune exec bench/main.exe -- \
	  table1 fig3 ablation_routing ablation_hotspot \
	  --json /tmp/d2_bench_quick.json \
	| sed -E 's/^\[([a-z0-9_]+): [0-9.]+s\]$$/[\1: _s]/' \
	| grep -v '^Total wall time' \
	| grep -v '^results written to' \
	| grep -v '^== Bechamel micro-benchmarks ==' \
	| grep -v -E '^  [a-z0-9_]+ +([0-9.]+ ns/op|\(no estimate\))$$' \
	> /tmp/d2_bench_quick.out
	diff -u bench/golden_quick.txt /tmp/d2_bench_quick.out
	@echo "bench-quick OK"

# Paper-scale routing bake-off: all four compiled policies over
# uniform and locality-preserving ID distributions at 10240 simulated
# nodes (the numbers quoted in EXPERIMENTS.md).  Takes a few minutes;
# CI runs the quick-scale version via scripts/routing_bakeoff_smoke.sh.
bakeoff: build
	D2_SCALE=paper dune exec bench/main.exe -- bakeoff_routing --no-micro

clean:
	dune clean
