(** Webcache workload (§10): using the DHT as a cooperative web cache
    à la Squirrel.

    Replays a {!Web} access trace against a simulated cache: a miss
    downloads the object from the origin and inserts it into the DHT
    ([Create] ops); a hit reads it; an object not refreshed within the
    eviction TTL (1 day, per the paper) is removed ([Delete] op at
    expiry).  The resulting trace starts empty and has extreme data
    churn — the Table 3 "Webcache" rows where daily writes can exceed
    the resident data by an order of magnitude. *)

val of_web_trace : ?evict_ttl:float -> Op.t -> Op.t
(** Transform a web access trace (all reads) into the cache workload.
    [evict_ttl] defaults to 86400 s. File ids are re-issued per cache
    generation: re-inserting an evicted URL yields a fresh id (a new
    version of the object). *)
