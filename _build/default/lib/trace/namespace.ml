module Rng = D2_util.Rng

type t = {
  dirs : string array;
  dir_owner : int array;
  dir_files : int list array;
  dir_depth : int array;
  files : Op.file_info array;
  file_dir : int array;
}

type builder = {
  rng : Rng.t;
  mutable bdirs : (string * int * int) list;  (* path, owner, depth; reversed *)
  mutable ndirs : int;
  mutable bfiles : (Op.file_info * int) list;  (* info, dir index; reversed *)
  mutable nfiles : int;
  mutable bytes : int;
  mean_file_bytes : int;
}

let max_file_bytes = 16 * 1024 * 1024

let add_dir b path owner depth =
  b.bdirs <- (path, owner, depth) :: b.bdirs;
  let idx = b.ndirs in
  b.ndirs <- b.ndirs + 1;
  idx

let sample_file_bytes b =
  (* Pareto body with a floor of ~200 bytes; heavy tail capped at 64 MB
     gives the >4-decades mean-to-max spread of the Harvard trace. *)
  let shape = 1.25 in
  let scale = float_of_int b.mean_file_bytes *. (shape -. 1.0) /. shape in
  let v = Rng.pareto b.rng ~shape ~scale in
  max 200 (min max_file_bytes (int_of_float v))

let add_file b dir_idx dir_path name =
  let bytes = sample_file_bytes b in
  let info =
    {
      Op.file_id = b.nfiles;
      file_path = dir_path ^ "/" ^ name;
      file_bytes = bytes;
    }
  in
  b.bfiles <- (info, dir_idx) :: b.bfiles;
  b.nfiles <- b.nfiles + 1;
  b.bytes <- b.bytes + bytes

(* Grow a subtree under [path] until [budget] bytes of files exist in it. *)
let rec grow_tree b ~path ~owner ~depth ~budget =
  let dir_idx = add_dir b path owner depth in
  let nfiles = 5 + Rng.int b.rng 20 in
  let spent = ref 0 in
  for i = 0 to nfiles - 1 do
    if !spent < budget then begin
      let before = b.bytes in
      add_file b dir_idx path (Printf.sprintf "f%03d.dat" i);
      spent := !spent + (b.bytes - before)
    end
  done;
  let remaining = budget - !spent in
  if remaining > 0 && depth < 7 then begin
    let nsub = 1 + Rng.int b.rng 4 in
    let per_sub = remaining / nsub in
    for i = 0 to nsub - 1 do
      if per_sub > b.mean_file_bytes then
        grow_tree b
          ~path:(Printf.sprintf "%s/d%02d" path i)
          ~owner ~depth:(depth + 1) ~budget:per_sub
    done
  end

(* A pathological >12-level chain exercising remainder hashing. *)
let grow_deep_chain b ~path ~owner ~budget =
  let depth = 13 + Rng.int b.rng 4 in
  let rec descend path level =
    if level = depth then path
    else begin
      let sub = Printf.sprintf "%s/deep%02d" path level in
      ignore (add_dir b sub owner level);
      descend sub (level + 1)
    end
  in
  let leaf = descend path 1 in
  let leaf_idx = b.ndirs - 1 in
  let spent = ref 0 in
  let i = ref 0 in
  while !spent < budget do
    let before = b.bytes in
    add_file b leaf_idx leaf (Printf.sprintf "g%03d.dat" !i);
    spent := !spent + (b.bytes - before);
    incr i
  done

let generate ~rng ~users ~target_bytes ?(shared_fraction = 0.25)
    ?(mean_file_bytes = 48 * 1024) ?(deep_path_fraction = 0.005) () =
  if users <= 0 then invalid_arg "Namespace.generate: users must be positive";
  if target_bytes <= 0 then invalid_arg "Namespace.generate: target_bytes must be positive";
  let b =
    {
      rng;
      bdirs = [];
      ndirs = 0;
      bfiles = [];
      nfiles = 0;
      bytes = 0;
      mean_file_bytes;
    }
  in
  let shared_budget =
    int_of_float (shared_fraction *. float_of_int target_bytes)
  in
  let deep_budget =
    int_of_float (deep_path_fraction *. float_of_int target_bytes)
  in
  let user_budget = (target_bytes - shared_budget - deep_budget) / users in
  for u = 0 to users - 1 do
    grow_tree b
      ~path:(Printf.sprintf "/home/u%03d" u)
      ~owner:u ~depth:1 ~budget:user_budget
  done;
  let nproj = max 2 (users / 10) in
  for p = 0 to nproj - 1 do
    grow_tree b
      ~path:(Printf.sprintf "/proj/p%02d" p)
      ~owner:(-1) ~depth:1
      ~budget:(shared_budget / nproj)
  done;
  if deep_budget > 0 then
    grow_deep_chain b ~path:"/proj/deep" ~owner:(-1) ~budget:deep_budget;
  let dirs_rev = Array.of_list b.bdirs in
  let ndirs = Array.length dirs_rev in
  let dirs = Array.make ndirs ""
  and dir_owner = Array.make ndirs 0
  and dir_depth = Array.make ndirs 0
  and dir_files = Array.make ndirs [] in
  Array.iteri
    (fun i (path, owner, depth) ->
      let j = ndirs - 1 - i in
      dirs.(j) <- path;
      dir_owner.(j) <- owner;
      dir_depth.(j) <- depth)
    dirs_rev;
  let files_rev = Array.of_list b.bfiles in
  let nfiles = Array.length files_rev in
  let files =
    Array.make nfiles { Op.file_id = 0; file_path = ""; file_bytes = 0 }
  and file_dir = Array.make nfiles 0 in
  Array.iteri
    (fun i (info, dir_idx) ->
      let j = nfiles - 1 - i in
      files.(j) <- info;
      file_dir.(j) <- dir_idx)
    files_rev;
  Array.iter
    (fun idx -> dir_files.(idx) <- [])
    (Array.init ndirs (fun i -> i));
  Array.iteri (fun f d -> dir_files.(d) <- f :: dir_files.(d)) file_dir;
  { dirs; dir_owner; dir_files; dir_depth; files; file_dir }

let dirs_for_user t ~user =
  let acc = ref [] in
  Array.iteri
    (fun i owner -> if owner = user || owner = -1 then acc := i :: !acc)
    t.dir_owner;
  Array.of_list (List.rev !acc)

let total_bytes t =
  Array.fold_left (fun acc f -> acc + f.Op.file_bytes) 0 t.files

let file_count t = Array.length t.files
