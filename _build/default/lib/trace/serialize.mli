(** Text serialization of block-level traces.

    Traces export to a line-oriented, tab-separated format so they can
    be inspected with standard tools, archived, and replayed across
    runs without regeneration.  Deterministic round trip:
    [load (save t) = t]. *)

val save : Op.t -> out_channel -> unit

val save_file : Op.t -> string -> unit

val load : in_channel -> Op.t
(** @raise Invalid_argument on malformed input (with a line number). *)

val load_file : string -> Op.t
