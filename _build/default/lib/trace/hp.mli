(** HP-like block-level disk trace generator.

    The paper's HP trace (Table 1) records timestamped accesses to raw
    disk block numbers from a multi-disk research server; file
    boundaries are unknown, but blocks allocated together are adjacent
    on disk, so block-number order is the "name" order (§4.1).  We
    synthesize the same structure: applications (identified by pid)
    work over a few contiguous allocation regions and access them in
    sequential runs with heavy-tailed lengths.

    In the resulting {!Op.t}, a block's [path] is its zero-padded disk
    block number (so lexicographic order = disk order), and
    [initial_files] describe the allocation regions so analyzers know
    the stored-block universe. *)

type params = {
  apps : int;  (** concurrent applications (pids); default 40 *)
  days : float;  (** default 7.0 *)
  disk_blocks : int;  (** disk size in 8 KB blocks; default 131072 (1 GB) *)
  runs_per_app_day : float;  (** mean sequential runs per app-day; default 120 *)
  write_fraction : float;  (** fraction of runs that write; default 0.3 *)
}

val default_params : params

val generate : rng:D2_util.Rng.t -> ?params:params -> unit -> Op.t

val block_name : int -> string
(** Zero-padded disk block number used as the block's [path]. *)
