let block_size = 8192

type kind = Read | Write | Create | Delete

type op = {
  time : float;
  user : int;
  path : string;
  file : int;
  block : int;
  kind : kind;
  bytes : int;
}

type file_info = { file_id : int; file_path : string; file_bytes : int }

type t = {
  name : string;
  duration : float;
  users : int;
  ops : op array;
  initial_files : file_info array;
}

let blocks_of_bytes bytes = max 1 ((bytes + block_size - 1) / block_size)

let validate t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  if t.duration <= 0.0 then fail "trace %s: non-positive duration" t.name;
  if t.users <= 0 then fail "trace %s: no users" t.name;
  let prev = ref neg_infinity in
  Array.iteri
    (fun i o ->
      if o.time < !prev then fail "trace %s: op %d out of order" t.name i;
      prev := o.time;
      if o.time < 0.0 || o.time > t.duration then
        fail "trace %s: op %d outside duration" t.name i;
      if o.user < 0 || o.user >= t.users then
        fail "trace %s: op %d bad user %d" t.name i o.user;
      if o.block < 0 then fail "trace %s: op %d negative block" t.name i;
      match o.kind with
      | Delete -> if o.bytes < 0 then fail "trace %s: op %d bad delete size" t.name i
      | Read | Write | Create ->
          if o.bytes <= 0 || o.bytes > block_size then
            fail "trace %s: op %d bad byte count %d" t.name i o.bytes)
    t.ops;
  Array.iter
    (fun f ->
      if f.file_bytes < 0 then fail "trace %s: negative initial file size" t.name)
    t.initial_files

let total_initial_bytes t =
  Array.fold_left (fun acc f -> acc + f.file_bytes) 0 t.initial_files

let count_kind t k =
  Array.fold_left (fun acc o -> if o.kind = k then acc + 1 else acc) 0 t.ops

let pp_kind fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write -> Format.pp_print_string fmt "write"
  | Create -> Format.pp_print_string fmt "create"
  | Delete -> Format.pp_print_string fmt "delete"
