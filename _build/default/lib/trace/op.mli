(** Common block-level trace representation.

    All three workloads (Harvard-like NFS, HP-like disk, Web-like) are
    generated into this one format so that the analyzers and
    simulators are workload-agnostic.  An [op] touches one block of
    one file; a logical file read/write of many bytes appears as a run
    of consecutive block ops sharing a timestamp neighbourhood. *)

val block_size : int
(** 8192 — the D2-Store storage unit (§3). *)

type kind =
  | Read
  | Write  (** overwrite of an existing block *)
  | Create  (** first write of a new block (file growth or new file) *)
  | Delete  (** whole-file removal; [bytes] is the size removed *)

type op = {
  time : float;  (** seconds from trace start *)
  user : int;  (** uid / pid / anonymized client, 0-based *)
  path : string;  (** full path; for disk traces, the padded block id *)
  file : int;  (** stable file id (fresh ids for re-created paths) *)
  block : int;  (** block index within the file; 0 for [Delete] *)
  kind : kind;
  bytes : int;  (** bytes touched (≤ [block_size]; file size for Delete) *)
}

type file_info = { file_id : int; file_path : string; file_bytes : int }

type t = {
  name : string;
  duration : float;  (** seconds covered by the trace *)
  users : int;
  ops : op array;  (** sorted by [time] *)
  initial_files : file_info array;
  (** files already present when the trace starts *)
}

val blocks_of_bytes : int -> int
(** Number of 8 KB blocks needed for a byte size (min 1). *)

val validate : t -> unit
(** Sanity-check invariants (sorted times, user range, sizes);
    @raise Invalid_argument with a description on violation. *)

val total_initial_bytes : t -> int

val count_kind : t -> kind -> int

val pp_kind : Format.formatter -> kind -> unit
