(** Task and access-group segmentation (paper §8.1 and §9.1).

    A {e task} approximates a unit of user work: a maximal run of
    accesses by one user in which consecutive accesses are separated
    by less than [inter], capped at [max_duration] (5 minutes in the
    paper).  Task availability — not per-object availability — is the
    paper's headline metric.

    An {e access group} is the same construction with a 1-second
    threshold and no cap: the accesses between two think times, i.e.
    the work whose completion latency a user actually perceives
    (§9.1). *)

type t = {
  user : int;
  start : float;
  stop : float;  (** time of the last op in the segment *)
  ops : Op.op array;  (** in time order *)
}

val segment : Op.t -> inter:float -> ?max_duration:float -> unit -> t array
(** Cut a trace into per-user tasks. [max_duration] defaults to 300 s.
    Tasks of different users interleave in the result, ordered by
    start time. *)

val segment_labeled :
  Op.t -> inter:float -> ?max_duration:float -> unit -> t array * int array
(** Like {!segment}, but also returns, for every op index of the
    trace, the index of the task it belongs to — this lets a single
    replay pass of the trace be post-processed into per-task outcomes
    for several [inter] values (the §8 simulator's trick). *)

val access_groups : ?think:float -> Op.t -> t array
(** Think-time segmentation with no duration cap; [think] defaults
    to 1 s. *)

val access_groups_labeled : ?think:float -> Op.t -> t array * int array
(** {!access_groups} plus the per-op group index (see
    {!segment_labeled}). *)

val distinct_blocks : t -> int
(** Number of distinct (file, block) pairs the task touches. *)

val distinct_files : t -> int

val mean_over : t array -> (t -> int) -> float
(** Mean of an integer task statistic. 0 for an empty array. *)
