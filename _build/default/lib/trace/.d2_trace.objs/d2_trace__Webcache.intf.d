lib/trace/webcache.mli: Op
