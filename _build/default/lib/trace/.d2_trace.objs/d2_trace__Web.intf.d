lib/trace/web.mli: D2_util Op
