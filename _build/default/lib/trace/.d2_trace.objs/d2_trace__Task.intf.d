lib/trace/task.mli: Op
