lib/trace/task.ml: Array D2_util Hashtbl Op
