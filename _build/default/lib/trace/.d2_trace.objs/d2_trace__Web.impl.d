lib/trace/web.ml: Array D2_util Float List Op Printf String
