lib/trace/namespace.mli: D2_util Op
