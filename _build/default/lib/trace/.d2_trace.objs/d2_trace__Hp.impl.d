lib/trace/hp.ml: Array D2_util Float Op Printf
