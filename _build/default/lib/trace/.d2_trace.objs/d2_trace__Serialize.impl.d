lib/trace/serialize.ml: Array Fun List Op Printf String
