lib/trace/harvard.ml: Array D2_util Float List Namespace Op Printf
