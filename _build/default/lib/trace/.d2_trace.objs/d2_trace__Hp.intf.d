lib/trace/hp.mli: D2_util Op
