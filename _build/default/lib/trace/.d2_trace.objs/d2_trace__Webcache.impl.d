lib/trace/webcache.ml: Array D2_util Hashtbl Op
