lib/trace/harvard.mli: D2_util Op
