lib/trace/namespace.ml: Array D2_util List Op Printf
