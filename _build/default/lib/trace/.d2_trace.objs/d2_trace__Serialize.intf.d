lib/trace/serialize.mli: Op
