lib/trace/failure.mli: D2_util
