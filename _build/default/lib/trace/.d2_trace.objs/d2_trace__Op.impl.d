lib/trace/op.ml: Array Format Printf
