lib/trace/failure.ml: Array D2_util Float
