(** Node failure trace generator (PlanetLab-like, §8.1).

    The paper replays the observed failures of 247 PlanetLab nodes
    during a week with a particularly large number of (correlated)
    failures.  We synthesize an equivalent schedule: each node has an
    independent exponential up/down process, and a few {e correlated
    events} take down a sizable random subset simultaneously (the
    unpredictable mass failures that dominate unavailability in
    practice).  Default parameters are calibrated so that the chance a
    group of 3 consecutive ring nodes is ever fully down during the
    week is around 0.02 without regeneration — the number the paper
    reports for its trace. *)

type event = { time : float; node : int; up : bool }

type t = {
  n : int;
  duration : float;
  events : event array;  (** time-sorted; all nodes start up *)
}

type params = {
  mttf : float;  (** mean time to failure, s; default 3.5 days *)
  mttr : float;  (** mean time to repair, s; default 2 h *)
  correlated_events : int;  (** default 5; placed in working hours *)
  correlated_fraction : float;  (** nodes taken down per event; default 0.3 *)
  correlated_outage : float;  (** mean outage length, s; default 2.5 h *)
}

val default_params : params

val generate :
  rng:D2_util.Rng.t -> n:int -> duration:float -> ?params:params -> unit -> t

val up_fraction_at : t -> float -> float
(** Fraction of nodes up at a given time (for reporting). *)

val validate : t -> unit
(** Checks ordering and up/down alternation per node.
    @raise Invalid_argument on violation. *)
