(** Synthetic file-system namespace for the Harvard-like workload.

    Models the structure the paper's traces exhibit: per-user home
    trees (research + email), plus shared project/binary trees, with
    heavy-tailed file sizes (the Harvard trace's mean-to-max spread is
    over 4 orders of magnitude, §10).  Directories and files are laid
    out once; the workload generator then evolves the tree (creates
    and deletions) on top of this initial state. *)

type t = {
  dirs : string array;  (** every directory path, root-first *)
  dir_owner : int array;  (** owning user per directory, -1 = shared *)
  dir_files : int list array;  (** file indices under each directory *)
  dir_depth : int array;
  files : Op.file_info array;  (** the initial files *)
  file_dir : int array;  (** directory index of each file *)
}

val generate :
  rng:D2_util.Rng.t ->
  users:int ->
  target_bytes:int ->
  ?shared_fraction:float ->
  ?mean_file_bytes:int ->
  ?deep_path_fraction:float ->
  unit ->
  t
(** Build an initial namespace of roughly [target_bytes] of file data.
    [shared_fraction] (default 0.25) of the data lives in shared
    project trees, the rest under per-user homes.  A small
    [deep_path_fraction] (default 0.005, the paper's "< 1%") of files
    are placed under chains deeper than 12 directories to exercise the
    key encoding's remainder hashing. *)

val dirs_for_user : t -> user:int -> int array
(** Directories a user works in: their own plus the shared ones. *)

val total_bytes : t -> int

val file_count : t -> int
