let kind_to_string = function
  | Op.Read -> "R"
  | Op.Write -> "W"
  | Op.Create -> "C"
  | Op.Delete -> "D"

let kind_of_string line = function
  | "R" -> Op.Read
  | "W" -> Op.Write
  | "C" -> Op.Create
  | "D" -> Op.Delete
  | other -> invalid_arg (Printf.sprintf "Serialize.load: line %d: bad kind %S" line other)

let check_path line path =
  if String.contains path '\t' || String.contains path '\n' then
    invalid_arg (Printf.sprintf "Serialize: line %d: path contains separator" line);
  path

let save (t : Op.t) oc =
  Printf.fprintf oc "# d2-trace v1\n";
  Printf.fprintf oc "name\t%s\n" (check_path 0 t.Op.name);
  Printf.fprintf oc "duration\t%h\n" t.Op.duration;
  Printf.fprintf oc "users\t%d\n" t.Op.users;
  Printf.fprintf oc "files\t%d\n" (Array.length t.Op.initial_files);
  Array.iter
    (fun (f : Op.file_info) ->
      Printf.fprintf oc "%d\t%d\t%s\n" f.Op.file_id f.Op.file_bytes
        (check_path 0 f.Op.file_path))
    t.Op.initial_files;
  Printf.fprintf oc "ops\t%d\n" (Array.length t.Op.ops);
  Array.iter
    (fun (o : Op.op) ->
      Printf.fprintf oc "%h\t%d\t%s\t%d\t%d\t%d\t%s\n" o.Op.time o.Op.user
        (kind_to_string o.Op.kind) o.Op.file o.Op.block o.Op.bytes
        (check_path 0 o.Op.path))
    t.Op.ops

let save_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save t oc)

type reader = { ic : in_channel; mutable line : int }

let next r =
  r.line <- r.line + 1;
  try input_line r.ic
  with End_of_file ->
    invalid_arg (Printf.sprintf "Serialize.load: unexpected end of file at line %d" r.line)

let fail r fmt = Printf.ksprintf (fun s ->
    invalid_arg (Printf.sprintf "Serialize.load: line %d: %s" r.line s)) fmt

let fields r expected line =
  let fs = String.split_on_char '\t' line in
  if List.length fs <> expected then fail r "expected %d fields, got %d" expected (List.length fs);
  fs

let tagged r tag =
  match fields r 2 (next r) with
  | [ t; v ] when t = tag -> v
  | [ t; _ ] -> fail r "expected %S, got %S" tag t
  | _ -> assert false

let int_of r s = match int_of_string_opt s with
  | Some v -> v
  | None -> fail r "bad integer %S" s

let float_of r s = match float_of_string_opt s with
  | Some v -> v
  | None -> fail r "bad float %S" s

let load ic =
  let r = { ic; line = 0 } in
  (match next r with
  | "# d2-trace v1" -> ()
  | other -> fail r "bad header %S" other);
  let name = tagged r "name" in
  let duration = float_of r (tagged r "duration") in
  let users = int_of r (tagged r "users") in
  let nfiles = int_of r (tagged r "files") in
  let initial_files =
    Array.init nfiles (fun _ ->
        match fields r 3 (next r) with
        | [ id; bytes; path ] ->
            { Op.file_id = int_of r id; file_bytes = int_of r bytes; file_path = path }
        | _ -> assert false)
  in
  let nops = int_of r (tagged r "ops") in
  let ops =
    Array.init nops (fun _ ->
        match fields r 7 (next r) with
        | [ time; user; kind; file; block; bytes; path ] ->
            {
              Op.time = float_of r time;
              user = int_of r user;
              kind = kind_of_string r.line kind;
              file = int_of r file;
              block = int_of r block;
              bytes = int_of r bytes;
              path;
            }
        | _ -> assert false)
  in
  let t = { Op.name; duration; users; ops; initial_files } in
  Op.validate t;
  t

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)
