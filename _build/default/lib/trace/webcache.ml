module Vec = D2_util.Vec
module Heap = D2_util.Heap

type entry = {
  mutable resident : bool;
  mutable last_refresh : float;
  mutable generation : int;
  mutable cur_id : int;
  inserted_blocks : (int, unit) Hashtbl.t;
  (** blocks written for the current generation: the first access of
      each block after a miss is the insert, later ones are hits *)
  mutable bytes : int;
  mutable last_user : int;
}

let of_web_trace ?(evict_ttl = 86400.0) (web : Op.t) =
  let nfiles = Array.length web.Op.initial_files in
  let entries =
    Array.init nfiles (fun i ->
        {
          resident = false;
          last_refresh = neg_infinity;
          generation = 0;
          cur_id = i;
          inserted_blocks = Hashtbl.create 4;
          bytes = web.Op.initial_files.(i).Op.file_bytes;
          last_user = 0;
        })
  in
  let next_id = ref nfiles in
  let ops = Vec.create () in
  (* (expiry time, original file index, generation) *)
  let expiries = Heap.create ~cmp:(fun (a, _, _) (b, _, _) -> compare a b) in
  let flush_expiries now =
    let rec go () =
      match Heap.peek expiries with
      | Some (t, fi, gen) when t <= now ->
          ignore (Heap.pop expiries);
          let e = entries.(fi) in
          if e.resident && e.generation = gen then begin
            if e.last_refresh +. evict_ttl <= t then begin
              e.resident <- false;
              Vec.push ops
                {
                  Op.time = t;
                  user = e.last_user;
                  path = web.Op.initial_files.(fi).Op.file_path;
                  file = e.cur_id;
                  block = 0;
                  kind = Op.Delete;
                  bytes = e.bytes;
                }
            end
            else
              (* Refreshed since this expiry was scheduled; rearm. *)
              Heap.push expiries (e.last_refresh +. evict_ttl, fi, gen)
          end;
          go ()
      | Some _ | None -> ()
    in
    go ()
  in
  Array.iter
    (fun (o : Op.op) ->
      flush_expiries o.Op.time;
      let fi = o.Op.file in
      let e = entries.(fi) in
      e.last_user <- o.Op.user;
      if e.resident then begin
        e.last_refresh <- o.Op.time;
        let kind =
          if Hashtbl.mem e.inserted_blocks o.Op.block then Op.Read
          else begin
            Hashtbl.replace e.inserted_blocks o.Op.block ();
            Op.Create
          end
        in
        Vec.push ops { o with Op.file = e.cur_id; kind }
      end
      else begin
        (* Miss: this fetch inserts the object into the cache. *)
        e.resident <- true;
        e.generation <- e.generation + 1;
        e.cur_id <- !next_id;
        incr next_id;
        e.last_refresh <- o.Op.time;
        Hashtbl.reset e.inserted_blocks;
        Hashtbl.replace e.inserted_blocks o.Op.block ();
        Heap.push expiries (o.Op.time +. evict_ttl, fi, e.generation);
        Vec.push ops { o with Op.file = e.cur_id; kind = Op.Create }
      end)
    web.Op.ops;
  flush_expiries web.Op.duration;
  let trace =
    {
      Op.name = "webcache";
      duration = web.Op.duration;
      users = web.Op.users;
      ops = Vec.to_array ops;
      initial_files = [||];
    }
  in
  Op.validate trace;
  trace
