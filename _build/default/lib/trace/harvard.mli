(** Harvard-like NFS workload generator.

    Synthesizes a week of research + email NFS activity shaped like
    the trace the paper evaluates on (Table 1, Harvard/EECS):

    - ~83 users, each working in their own home tree plus shared
      project trees;
    - diurnal sessions (denser 9AM–6PM on weekdays), each a sequence
      of {e bursts} — a user reads a handful of related files from one
      working directory with sub-second gaps — separated by think
      times of seconds to minutes (this is what makes the paper's task
      segmentation at inter ∈ 1s..1min meaningful, §8.1);
    - reads dominate; each day writes and removes roughly 10–20% of
      the stored bytes (paper Table 3), as a mix of overwrites,
      new files, short-lived temporary files, and deletions.
      (File renames — 0.05% of ops in the paper, §4.2 — are exercised
      at the D2-FS layer rather than in the block trace.)

    Everything is deterministic in the seed.  [target_bytes] scales
    the data set; the access density per user per day is fixed, so
    total op counts scale with [users] and [days]. *)

type params = {
  users : int;  (** default 83 *)
  days : float;  (** default 7.0 *)
  target_bytes : int;  (** initial data set size; default 256 MB *)
  reads_per_user_day : float;  (** mean block reads; default 700 *)
  daily_churn : float;  (** fraction of stored bytes written per day; default 0.15 *)
}

val default_params : params

val generate : rng:D2_util.Rng.t -> ?params:params -> unit -> Op.t
(** Build the trace. The result passes {!Op.validate}. *)
