(** Web-access trace generator (NLANR-cache-like, Table 1 "Web").

    Synthesizes client accesses to web objects.  Object names are URLs
    with the domain tuples reversed ([com.yahoo.www/index.html]), so
    lexicographic name order groups a site's objects together — the
    paper's "ordered" scenario for the Web workload (§4.1).  Clients
    browse with site locality: a session stays mostly within one
    domain, fetching several pages with seconds-scale gaps.  Domain
    popularity and within-site page popularity are zipfian, and a long
    tail of one-hit objects gives the Webcache workload its extreme
    churn (paper Table 3). *)

type params = {
  clients : int;  (** default 120 *)
  days : float;  (** default 7.0 *)
  domains : int;  (** default 1500 *)
  pages_per_domain_mean : int;  (** default 30 *)
  sessions_per_client_day : float;  (** default 12.0 *)
  mean_object_bytes : int;  (** default 12 KB *)
}

val default_params : params

val generate : rng:D2_util.Rng.t -> ?params:params -> unit -> Op.t
(** All ops are reads (a pure access log); [initial_files] lists every
    object in the universe with its size. *)

val reversed_name : domain:string -> page:string -> string
(** [reversed_name ~domain:"www.foo.com" ~page:"a/b.html"] is
    ["com.foo.www/a/b.html"]. *)
