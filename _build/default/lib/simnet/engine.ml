module Heap = D2_util.Heap

type handle = { mutable cancelled : bool }

type event = { time : float; seq : int; fn : unit -> unit; h : handle }

type t = {
  queue : event Heap.t;
  mutable clock : float;
  mutable next_seq : int;
}

let compare_events a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { queue = Heap.create ~cmp:compare_events; clock = 0.0; next_seq = 0 }

let now t = t.clock

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before now (%g)" at t.clock);
  let h = { cancelled = false } in
  Heap.push t.queue { time = at; seq = t.next_seq; fn; h };
  t.next_seq <- t.next_seq + 1;
  h

let schedule_in t ~delay fn =
  if delay < 0.0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule t ~at:(t.clock +. delay) fn

let cancel h = h.cancelled <- true

let pending t = Heap.length t.queue

let run ?until t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None ->
        (match until with Some u when u > t.clock -> t.clock <- u | _ -> ());
        continue := false
    | Some ev -> (
        match until with
        | Some u when ev.time > u ->
            t.clock <- u;
            continue := false
        | _ ->
            ignore (Heap.pop t.queue);
            t.clock <- ev.time;
            if not ev.h.cancelled then ev.fn ())
  done

let every t ~period ?until fn =
  if period <= 0.0 then invalid_arg "Engine.every: period must be positive";
  let rec tick () =
    let next = now t +. period in
    match until with
    | Some u when next > u -> ()
    | _ ->
        ignore
          (schedule t ~at:next (fun () ->
               fn ();
               tick ()))
  in
  tick ()
