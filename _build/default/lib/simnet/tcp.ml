type conn = { mutable cwnd : float; mutable last_used : float }

let mss = 1460
let initial_window = 2.0
let default_rto = 0.2
let max_window = 64.0

let fresh_conn () = { cwnd = initial_window; last_used = neg_infinity }

let effective_window ?(rto = default_rto) conn ~now =
  if now -. conn.last_used > rto then initial_window else conn.cwnd

let window conn ~now ?(rto = default_rto) () = effective_window ~rto conn ~now

let transfer_time ?(rto = default_rto) conn ~now ~rtt ~bandwidth ~bytes =
  if bytes < 0 then invalid_arg "Tcp.transfer_time: negative size";
  if bandwidth <= 0.0 then invalid_arg "Tcp.transfer_time: bandwidth must be positive";
  if rtt < 0.0 then invalid_arg "Tcp.transfer_time: negative rtt";
  let cwnd = ref (effective_window ~rto conn ~now) in
  let packets = ref ((bytes + mss - 1) / mss) in
  (* The request and the first window of the response cost one RTT. *)
  let elapsed = ref 0.0 in
  let rounds = ref 0 in
  while !packets > 0 do
    let sent = min !packets (int_of_float !cwnd) in
    let sent = max sent 1 in
    let serialization = float_of_int (sent * mss * 8) /. bandwidth in
    elapsed := !elapsed +. max rtt serialization;
    packets := !packets - sent;
    cwnd := Float.min max_window (!cwnd *. 2.0);
    incr rounds
  done;
  if !rounds = 0 then elapsed := rtt;
  conn.cwnd <- !cwnd;
  conn.last_used <- now +. !elapsed;
  !elapsed
