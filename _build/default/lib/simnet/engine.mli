(** Deterministic discrete-event engine over virtual time.

    This replaces the paper's libasync event loop and drives the
    availability and load-balancing simulations: failures, repairs,
    balancer probes, pointer stabilization and block migrations are all
    events.  Time is in virtual seconds; events at equal times fire in
    scheduling order, so runs are fully deterministic. *)

type t

type handle
(** A scheduled event, usable for cancellation. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, in seconds. Starts at 0. *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** Fire a callback at an absolute time.
    @raise Invalid_argument if [at] is in the past. *)

val schedule_in : t -> delay:float -> (unit -> unit) -> handle
(** Fire a callback [delay] seconds from now ([delay] ≥ 0). *)

val cancel : handle -> unit
(** Cancelled events are skipped when their time comes. Idempotent. *)

val pending : t -> int
(** Number of events still queued (including cancelled ones not yet
    reaped). *)

val run : ?until:float -> t -> unit
(** Process events in time order.  With [until], stops once the clock
    would pass it (the clock is then advanced exactly to [until]);
    without, runs until the queue drains. *)

val every : t -> period:float -> ?until:float -> (unit -> unit) -> unit
(** Convenience: run a callback periodically starting one period from
    now, stopping after [until] when given. *)
