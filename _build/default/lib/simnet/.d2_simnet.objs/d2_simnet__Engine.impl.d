lib/simnet/engine.ml: D2_util Printf
