lib/simnet/topology.ml: Array D2_util
