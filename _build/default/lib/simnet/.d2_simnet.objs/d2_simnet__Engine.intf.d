lib/simnet/engine.mli:
