lib/simnet/tcp.ml: Float
