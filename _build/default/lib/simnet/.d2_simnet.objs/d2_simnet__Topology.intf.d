lib/simnet/topology.mli: D2_util
