lib/simnet/tcp.mli:
