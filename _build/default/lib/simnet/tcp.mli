(** TCP transfer-latency model with slow-start and idle restart.

    §9.3 of the paper attributes much of D2's parallel-case advantage
    to TCP dynamics: a connection idle for more than one RTO drops back
    to a 2-packet initial window, so in a traditional DHT — where
    successive blocks come from ever-different nodes — almost every
    8 KB block download pays ≥ 2 RTTs of slow-start, while D2 keeps
    reusing the same few warm connections.  This module reproduces that
    arithmetic: windows double each round, rounds cost
    [max rtt (serialization time)], and per-connection state remembers
    the window and last-use time. *)

type conn
(** Per-(src,dst) connection state. *)

val mss : int
(** Segment payload size in bytes (1460, from 1500-byte packets). *)

val initial_window : float
(** Initial/post-idle congestion window in packets (2, as in the
    paper's Linux 2.4 testbed). *)

val default_rto : float
(** Idle threshold in seconds after which the window resets (0.2 s). *)

val fresh_conn : unit -> conn
(** A new, cold connection (window = {!initial_window}). *)

val transfer_time :
  ?rto:float ->
  conn ->
  now:float ->
  rtt:float ->
  bandwidth:float ->
  bytes:int ->
  float
(** [transfer_time conn ~now ~rtt ~bandwidth ~bytes] is the latency in
    seconds to request and fully receive [bytes] over [conn], including
    the request round-trip, with the sender's access link capped at
    [bandwidth] bits/s.  Updates [conn]'s window and last-use time.
    A transfer of 0 bytes costs one RTT (the request/response). *)

val window : conn -> now:float -> ?rto:float -> unit -> float
(** Current effective window in packets, accounting for idle reset —
    exposed for tests and for the simulator's contention heuristics. *)
