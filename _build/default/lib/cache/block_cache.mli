(** The 30-second buffer / write-back cache of D2-FS (paper §3).

    Reads of a block within [window] of a previous access are served
    locally (no DHT fetch); writes are buffered for up to [window]
    before being flushed, which absorbs short-lived temporary files.
    This module is the bookkeeping both the file-system layer and the
    performance simulator share: it answers "is this block still warm"
    and tracks dirty blocks awaiting flush. *)

module Key = D2_keyspace.Key

type t

val create : ?window:float -> unit -> t
(** [window] defaults to 30 s. *)

val touch : t -> now:float -> Key.t -> bool
(** Record a read access; returns [true] if the block was already warm
    (a cache hit — no fetch needed). *)

val is_warm : t -> now:float -> Key.t -> bool
(** Non-mutating warmth check. *)

val write : t -> now:float -> Key.t -> size:int -> unit
(** Buffer a dirty block. Overwrites of a buffered block are absorbed
    (only the last version will flush). *)

val cancel : t -> Key.t -> unit
(** Drop a dirty block before it flushes (file deleted in window —
    the write never reaches the DHT). *)

val flush_due : t -> now:float -> (Key.t * int) list
(** Dirty blocks whose window has elapsed, removed from the buffer, in
    flush order. *)

val dirty_count : t -> int
val window : t -> float
