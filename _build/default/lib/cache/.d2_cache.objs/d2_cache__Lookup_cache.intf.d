lib/cache/lookup_cache.mli: D2_keyspace
