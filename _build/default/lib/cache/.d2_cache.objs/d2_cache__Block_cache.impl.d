lib/cache/block_cache.ml: D2_keyspace Hashtbl List Map
