lib/cache/retrieval_cache.mli: D2_keyspace
