lib/cache/block_cache.mli: D2_keyspace
