lib/cache/retrieval_cache.ml: D2_keyspace Hashtbl
