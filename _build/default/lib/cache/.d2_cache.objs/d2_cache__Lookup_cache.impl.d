lib/cache/lookup_cache.ml: D2_keyspace Map
