(** Per-node retrieval cache: LRU of recently served blocks.

    §6 of the paper: D2 balances {e storage} with Mercury and relies on
    "traditional caching techniques to balance request load" — in CFS
    and PAST, nodes along a lookup path cache the blocks they forward,
    so a hot object is soon served by many nodes instead of only its
    replica group.  This module is that cache; the hot-spot experiment
    ({!D2_experiments}'s [ablation_hotspot]) measures its effect.

    Capacity is in bytes; insertion evicts least-recently-used entries
    until the new block fits. *)

module Key = D2_keyspace.Key

type t

val create : capacity:int -> t
(** [capacity] in bytes, must be positive. *)

val insert : t -> Key.t -> size:int -> unit
(** Cache a block (refreshes recency if present; evicts LRU entries to
    fit).  Blocks larger than the whole capacity are ignored. *)

val mem : t -> Key.t -> bool
(** Presence check that also refreshes recency (a cache hit). *)

val bytes_used : t -> int
val entry_count : t -> int
val evictions : t -> int
(** Cumulative evictions (for tests and tuning). *)
