lib/store/cluster.ml: Array D2_dht D2_keyspace D2_simnet Float Hashtbl List Logs Printf
