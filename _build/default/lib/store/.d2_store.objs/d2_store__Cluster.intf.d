lib/store/cluster.mli: D2_dht D2_keyspace D2_simnet
