(** Figure 8: per-user task unavailability, ranked (§8.2). *)

val run : Config.scale -> D2_util.Report.t list
