type entry = {
  id : string;
  title : string;
  run : Config.scale -> D2_util.Report.t list;
}

let all =
  [
    { id = "table1"; title = "Workloads analyzed"; run = Table1.run };
    { id = "fig3"; title = "Locality of key orderings"; run = Fig3.run };
    { id = "table2"; title = "Objects and nodes per task"; run = Table2.run };
    { id = "fig7"; title = "Task unavailability vs inter"; run = Fig7.run };
    { id = "fig8"; title = "Per-user unavailability"; run = Fig8.run };
    { id = "fig9"; title = "Lookup traffic vs system size"; run = Fig9.run };
    { id = "fig10"; title = "Speedup over traditional"; run = Fig10.run };
    { id = "fig11"; title = "Speedup over traditional-file"; run = Fig11.run };
    { id = "fig12"; title = "Per-user speedup"; run = Fig12.run };
    { id = "fig13"; title = "Lookup cache miss rate"; run = Fig13.run };
    { id = "fig14"; title = "Latency scatter vs traditional"; run = Fig14.run };
    { id = "fig15"; title = "Latency scatter vs traditional-file"; run = Fig15.run };
    { id = "fig16"; title = "Load imbalance (Harvard)"; run = Fig16.run };
    { id = "fig17"; title = "Load imbalance (Webcache)"; run = Fig17.run };
    { id = "table3"; title = "Daily churn ratios"; run = Table3.run };
    { id = "table4"; title = "Write vs migration traffic"; run = Table4.run };
    { id = "ablation_pointers"; title = "Block pointers on/off"; run = Ablations.pointers };
    { id = "ablation_routing"; title = "Routing hop counts"; run = Ablations.routing };
    { id = "ablation_cache_ttl"; title = "Cache TTL sweep"; run = Ablations.cache_ttl };
    { id = "ablation_replicas"; title = "Replication factor"; run = Ablations.replicas };
    { id = "ablation_hybrid"; title = "Hybrid replica placement (§11)"; run = Ablations.hybrid };
    { id = "ablation_erasure"; title = "Replication vs erasure coding (§3)"; run = Ablations.erasure };
    { id = "ablation_stp"; title = "TCP vs STP-style transport (§9.3)"; run = Ablations.stp };
    { id = "ablation_hotspot"; title = "Retrieval caches vs hot spots (§6)"; run = Ablations.hotspot };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_and_print scale entry =
  let t0 = Unix.gettimeofday () in
  let reports = entry.run scale in
  List.iter D2_util.Report.print reports;
  Printf.printf "[%s: %.1fs]\n\n%!" entry.id (Unix.gettimeofday () -. t0)
