(** Memoized workload and failure traces shared by the experiments.

    Generating the Harvard trace takes a few seconds at paper scale;
    experiments that share it (Table 2, Figs. 7–17) reuse one
    instance per scale.  Everything is deterministic in
    {!Config.master_seed}. *)

val harvard : Config.scale -> D2_trace.Op.t
val hp : Config.scale -> D2_trace.Op.t
val web : Config.scale -> D2_trace.Op.t
val webcache : Config.scale -> D2_trace.Op.t

val failures : Config.scale -> trial:int -> D2_trace.Failure.t
(** Failure trace for one availability trial (sized to
    {!Config.avail_nodes} and the Harvard trace duration). *)
