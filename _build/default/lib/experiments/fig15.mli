(** Figure 15: latency scatter vs the traditional-file DHT (§9.3). *)

val run : Config.scale -> D2_util.Report.t list
