(** Ablation and extension benches beyond the paper's figures; each
    returns printable tables like the figure modules (see DESIGN.md §5
    and EXPERIMENTS.md for what each one shows). *)

val pointers : Config.scale -> D2_util.Report.t list
(** Block pointers on/off: migration traffic during load balancing (§6). *)

val routing : Config.scale -> D2_util.Report.t list
(** Link policies over real tables: fingers vs harmonic vs successor. *)

val hotspot : Config.scale -> D2_util.Report.t list
(** Request-load hot spot with and without retrieval caches (§6). *)

val stp : Config.scale -> D2_util.Report.t list
(** Per-pair TCP vs an STP-style shared congestion window (§9.3). *)

val cache_ttl : Config.scale -> D2_util.Report.t list
(** Lookup-cache TTL sweep: D2 vs traditional miss rates (§5). *)

val hybrid : Config.scale -> D2_util.Report.t list
(** §11 future-work hybrid locality+hashed replica placement. *)

val erasure : Config.scale -> D2_util.Report.t list
(** Replication vs m-of-n erasure coding at matched storage (§3). *)

val replicas : Config.scale -> D2_util.Report.t list
(** Replication factor r ∈ {2,3,4} vs task unavailability (§8.2). *)
