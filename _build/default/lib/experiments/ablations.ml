(* Ablation benches for the design choices DESIGN.md calls out:
   block pointers (§6), rank-finger routing, the lookup-cache TTL
   (§5), and the replication factor (§8.2's r=4 note). *)

module Report = D2_util.Report
module Keymap = D2_core.Keymap
module Balance_sim = D2_core.Balance_sim
module Availability = D2_core.Availability
module Perf = D2_core.Perf
module Ring = D2_dht.Ring
module Key = D2_keyspace.Key
module Rng = D2_util.Rng

(* Pointers on/off: total migration traffic for the Harvard replay.
   Without pointers every cascaded split moves blocks twice (§6,
   Fig. 6). *)
let pointers scale =
  let trace = Data.harvard scale in
  let run use_pointers =
    let params =
      {
        (Balance_sim.default_params ~nodes:(Config.balance_nodes scale)
           ~seed:Config.master_seed)
        with
        Balance_sim.use_pointers;
      }
    in
    Balance_sim.run ~trace ~setup:Balance_sim.D2 ~params
  in
  let with_ptr = run true and without_ptr = run false in
  let total arr = Array.fold_left ( +. ) 0.0 arr in
  let r =
    Report.create ~title:"Ablation: block pointers during load balancing"
      ~columns:[ "variant"; "migration (MB)"; "writes (MB)"; "L/W"; "moves" ]
  in
  let row name (res : Balance_sim.result) =
    let l = total res.Balance_sim.daily_migrated_mb in
    let w = total res.Balance_sim.daily_written_mb in
    Report.add_row r
      [
        name;
        Report.fmt_float ~decimals:1 l;
        Report.fmt_float ~decimals:1 w;
        (if w > 0.0 then Report.fmt_float ~decimals:2 (l /. w) else "-");
        string_of_int res.Balance_sim.balancer_moves;
      ]
  in
  row "pointers (D2)" with_ptr;
  row "no pointers" without_ptr;
  [ r ]

(* Routing-policy comparison over real per-node link tables: Chord
   fingers vs Mercury/Symphony harmonic links vs successor walking,
   plus the analytic finger model the simulators use. *)
let routing _scale =
  let module Router = D2_dht.Router in
  let r =
    Report.create ~title:"Ablation: routing link policies (mean hops over real tables)"
      ~columns:
        [ "nodes"; "fingers"; "harmonic-k"; "successor-only"; "analytic model"; "log2 n" ]
  in
  List.iter
    (fun n ->
      let rng = Rng.create 77 in
      let ring = Ring.create () in
      for i = 0 to n - 1 do
        Ring.add ring ~id:(Key.random rng) ~node:i
      done;
      let k = max 2 (int_of_float (log (float_of_int n) /. log 2.0)) in
      let routers =
        List.map
          (fun p -> Router.create ~ring ~policy:p ~rng:(Rng.copy rng))
          [ Router.Fingers; Router.Harmonic k; Router.Successor_only ]
      in
      let trials = if n > 2000 then 500 else 2000 in
      let sums = Array.make (List.length routers) 0 in
      let model = ref 0 in
      for _ = 1 to trials do
        let src = Rng.int rng n in
        let key = Key.random rng in
        List.iteri (fun i router -> sums.(i) <- sums.(i) + Router.hops router ~src ~key) routers;
        model := !model + Ring.route_hops ring ~src ~key
      done;
      let mean i = float_of_int sums.(i) /. float_of_int trials in
      Report.add_row r
        [
          string_of_int n;
          Report.fmt_float ~decimals:2 (mean 0);
          Report.fmt_float ~decimals:2 (mean 1);
          Report.fmt_float ~decimals:1 (mean 2);
          Report.fmt_float ~decimals:2 (float_of_int !model /. float_of_int trials);
          Report.fmt_float ~decimals:1 (log (float_of_int n) /. log 2.0);
        ])
    [ 100; 500; 1000; 5000 ];
  [ r ]

(* Request-load hot spots (§6): D2 balances *storage* with Mercury and
   relies on retrieval caches along lookup paths to balance *request*
   load.  A hot directory sits on one replica group; clients hammer it
   with zipf-selected block reads.  Without caching the replica group
   serves everything; with path caching the load spreads. *)
let hotspot _scale =
  let module Router = D2_dht.Router in
  let module Cluster = D2_store.Cluster in
  let module Engine = D2_simnet.Engine in
  let module Retrieval_cache = D2_cache.Retrieval_cache in
  let module Zipf = D2_util.Zipf in
  let nodes = 100 in
  let engine = Engine.create () in
  let rng = Rng.create (Config.master_seed + 500) in
  let ids = Array.init nodes (fun _ -> Key.random rng) in
  let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in
  (* One hot directory: 256 blocks, all on one replica group under D2. *)
  let km = D2_core.Keymap.create D2_core.Keymap.D2 ~volume:"hot" in
  let hot_keys =
    Array.init 256 (fun b -> D2_core.Keymap.key_of km ~path:"/hot/data" ~block:b)
  in
  Array.iter (fun key -> Cluster.put cluster ~key ~size:8192 ()) hot_keys;
  let ring = Cluster.ring cluster in
  let router = Router.create ~ring ~policy:Router.Fingers ~rng:(Rng.split rng) in
  let zipf = Zipf.create ~n:256 ~s:0.9 in
  let requests = 20_000 in
  let run ~with_caches =
    let served = Array.make nodes 0 in
    let caches =
      Array.init nodes (fun _ -> Retrieval_cache.create ~capacity:(128 * 8192))
    in
    let req_rng = Rng.create (Config.master_seed + 501) in
    for _ = 1 to requests do
      let client = Rng.int req_rng nodes in
      let key = hot_keys.(Zipf.sample zipf req_rng) in
      (* CFS-style: the client's own cache first, then the first node
         along the lookup path with a cached copy, else a replica; the
         whole reply path caches the block. *)
      if with_caches && Retrieval_cache.mem caches.(client) key then ()
      else begin
        let path = Router.route router ~src:client ~key in
        let server =
          if with_caches then
            List.find_opt (fun n -> Retrieval_cache.mem caches.(n) key) path
          else None
        in
        (match server with
        | Some n -> served.(n) <- served.(n) + 8192
        | None ->
            let holders = Cluster.physical_holders cluster ~key in
            let n = List.nth holders (Rng.int req_rng (List.length holders)) in
            served.(n) <- served.(n) + 8192);
        if with_caches then begin
          Retrieval_cache.insert caches.(client) key ~size:8192;
          List.iter (fun n -> Retrieval_cache.insert caches.(n) key ~size:8192) path
        end
      end
    done;
    let loads = Array.map float_of_int served in
    let mean = D2_util.Stats.mean loads in
    let maxl = Array.fold_left Float.max 0.0 loads in
    let serving = Array.fold_left (fun a s -> if s > 0 then a + 1 else a) 0 served in
    let group_share =
      let group = Cluster.physical_holders cluster ~key:hot_keys.(0) in
      let g = List.fold_left (fun a n -> a + served.(n)) 0 group in
      let total = Array.fold_left ( + ) 0 served in
      if total = 0 then 0.0 else float_of_int g /. float_of_int total
    in
    (maxl /. mean, serving, group_share, Array.fold_left ( + ) 0 served / 8192)
  in
  let nc_ratio, nc_nodes, nc_share, nc_fetch = run ~with_caches:false in
  let c_ratio, c_nodes, c_share, c_fetch = run ~with_caches:true in
  let r =
    Report.create
      ~title:"Ablation: request-load hot spot with retrieval caches (§6)"
      ~columns:
        [ "configuration"; "max/mean served"; "nodes serving"; "replica-group share";
          "remote fetches" ]
  in
  let row label (ratio, ns, share, fetches) =
    Report.add_row r
      [
        label;
        Report.fmt_float ~decimals:1 ratio;
        string_of_int ns;
        Report.fmt_pct share;
        string_of_int fetches;
      ]
  in
  row "replica group only" (nc_ratio, nc_nodes, nc_share, nc_fetch);
  row "with path caches" (c_ratio, c_nodes, c_share, c_fetch);
  [ r ]

(* STP-style transport (§9.3): does giving the traditional DHT a
   shared-congestion-window transport erase D2's advantage?  The paper
   argues it would not substantially improve the traditional DHT's
   parallel downloads in this regime — and cannot help availability or
   lookup traffic at all. *)
let stp scale =
  let trace = Data.harvard scale in
  let nodes = List.hd (List.rev (Config.perf_sizes scale)) in
  let r =
    Report.create
      ~title:
        (Printf.sprintf "Ablation: per-pair TCP vs STP-style shared window (%d nodes)"
           nodes)
      ~columns:[ "transport"; "seq speedup vs trad"; "para speedup vs trad" ]
  in
  List.iter
    (fun shared ->
      let config =
        {
          (Perf.default_config ~nodes ~bandwidth:1_500_000.0) with
          Perf.base_nodes = Config.perf_base_nodes scale;
          shared_window = shared;
          seed = Config.master_seed + 300;
        }
      in
      let pt = Perf.run_pass ~trace ~mode:Keymap.Traditional ~config in
      let pd = Perf.run_pass ~trace ~mode:Keymap.D2 ~config in
      let seq = (Perf.speedup ~baseline:pt ~improved:pd ~which:`Seq).Perf.overall in
      let para = (Perf.speedup ~baseline:pt ~improved:pd ~which:`Para).Perf.overall in
      Report.add_row r
        [
          (if shared then "STP shared window" else "TCP per pair (paper)");
          Report.fmt_float ~decimals:2 seq;
          Report.fmt_float ~decimals:2 para;
        ])
    [ false; true ];
  [ r ]

(* Lookup-cache TTL sweep: D2 and traditional miss rates. *)
let cache_ttl scale =
  let trace = Data.harvard scale in
  let nodes = List.hd (Config.perf_sizes scale) in
  let r =
    Report.create ~title:"Ablation: lookup-cache TTL vs miss rate"
      ~columns:[ "ttl"; "traditional miss"; "d2 miss" ]
  in
  List.iter
    (fun ttl ->
      let get mode =
        let config =
          {
            (Perf.default_config ~nodes ~bandwidth:1_500_000.0) with
            Perf.base_nodes = Config.perf_base_nodes scale;
            cache_ttl = ttl;
            seed = Config.master_seed + 300;
          }
        in
        (Perf.run_pass ~trace ~mode ~config).Perf.miss_rate
      in
      Report.add_row r
        [
          Printf.sprintf "%.0f min" (ttl /. 60.0);
          Report.fmt_pct (get Keymap.Traditional);
          Report.fmt_pct (get Keymap.D2);
        ])
    [ 600.0; 4500.0; 24000.0 ];
  [ r ]

(* Hybrid replica placement (§11 future work): one of r replicas at
   the key's hashed ring position.  Under correlated outages that kill
   a contiguous run of ring nodes, the hashed copy usually survives,
   so D2's residual unavailability drops further — at the cost of one
   extra node per task's replica set. *)
let hybrid scale =
  let trace = Data.harvard scale in
  let failures = Data.failures scale ~trial:0 in
  let r =
    Report.create
      ~title:"Extension: hybrid locality+hashed replica placement (D2, inter=5s)"
      ~columns:[ "placement"; "unavailability"; "nodes/task" ]
  in
  List.iter
    (fun hybrid_on ->
      let params =
        { (Availability.default_params ~mode:Keymap.D2) with
          Availability.hybrid_replicas = hybrid_on }
      in
      let replay =
        Availability.replay ~trace ~failures ~mode:Keymap.D2
          ~seed:(Config.master_seed + 200) ~params ()
      in
      let st = Availability.task_unavailability ~trace ~replay ~inter:5.0 in
      Report.add_row r
        [
          (if hybrid_on then "hybrid (1 hashed copy)" else "pure locality (paper)");
          Report.fmt_sci st.Availability.unavailability;
          Report.fmt_float ~decimals:1 st.Availability.mean_nodes_per_task;
        ])
    [ false; true ];
  [ r ]

(* Redundancy scheme (§3): the paper claims defragmentation's
   availability gain is similar whether blocks are replicated or
   erasure-coded.  Compare D2-vs-traditional improvement under
   whole-block replication (3 copies, 3x storage) and 2-of-4 coding
   (4 fragments, 2x storage). *)
let erasure scale =
  let module Cluster = D2_store.Cluster in
  let trace = Data.harvard scale in
  let failures = Data.failures scale ~trial:0 in
  let r =
    Report.create
      ~title:"Ablation: replication vs erasure coding (inter=5s)"
      ~columns:
        [ "scheme"; "storage blowup"; "traditional"; "d2"; "improvement" ]
  in
  List.iter
    (fun (label, replicas, redundancy, blowup) ->
      let get mode =
        let params =
          { (Availability.default_params ~mode) with
            Availability.replicas; redundancy }
        in
        let replay =
          Availability.replay ~trace ~failures ~mode
            ~seed:(Config.master_seed + 200) ~params ()
        in
        (Availability.task_unavailability ~trace ~replay ~inter:5.0)
          .Availability.unavailability
      in
      let t = get Keymap.Traditional and d = get Keymap.D2 in
      Report.add_row r
        [
          label;
          blowup;
          Report.fmt_sci t;
          Report.fmt_sci d;
          (if d > 0.0 then Printf.sprintf "%.1fx" (t /. d) else "inf");
        ])
    [
      ("replication r=3", 3, Cluster.Replication, "3.0x");
      ("erasure 2-of-4", 4, Cluster.Erasure 2, "2.0x");
      ("erasure 3-of-6", 6, Cluster.Erasure 3, "2.0x");
      ("erasure 2-of-6", 6, Cluster.Erasure 2, "3.0x");
    ];
  [ r ]

(* Replication factor: unavailability with r=3 vs r=4 (§8.2 notes D2
   had no failures at all with 4 replicas). *)
let replicas scale =
  let trace = Data.harvard scale in
  let failures = Data.failures scale ~trial:0 in
  let r =
    Report.create ~title:"Ablation: replication factor vs task unavailability (inter=5s)"
      ~columns:[ "replicas"; "traditional"; "d2" ]
  in
  List.iter
    (fun nreplicas ->
      let get mode =
        let params =
          { (Availability.default_params ~mode) with Availability.replicas = nreplicas }
        in
        let replay =
          Availability.replay ~trace ~failures ~mode
            ~seed:(Config.master_seed + 200) ~params ()
        in
        (Availability.task_unavailability ~trace ~replay ~inter:5.0)
          .Availability.unavailability
      in
      Report.add_row r
        [
          string_of_int nreplicas;
          Report.fmt_sci (get Keymap.Traditional);
          Report.fmt_sci (get Keymap.D2);
        ])
    [ 2; 3; 4 ];
  [ r ]
