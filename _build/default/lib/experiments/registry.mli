(** Catalogue of every reproducible experiment: the paper's tables and
    figures plus the ablations.  The bench harness and the CLI both
    drive experiments through this list. *)

type entry = {
  id : string;  (** e.g. "fig9", "table3", "ablation_pointers" *)
  title : string;
  run : Config.scale -> D2_util.Report.t list;
}

val all : entry list
(** Paper order: table1, fig3, table2, fig7, fig8, fig9..fig17,
    table3, table4, then the ablations. *)

val find : string -> entry option

val run_and_print : Config.scale -> entry -> unit
(** Run one entry, print its tables and the elapsed wall time. *)
