lib/experiments/table2.mli: Config D2_util
