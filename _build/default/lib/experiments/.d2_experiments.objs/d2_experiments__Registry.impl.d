lib/experiments/registry.ml: Ablations Config D2_util Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig16 Fig17 Fig3 Fig7 Fig8 Fig9 List Printf Table1 Table2 Table3 Table4 Unix
