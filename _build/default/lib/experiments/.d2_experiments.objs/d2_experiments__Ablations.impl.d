lib/experiments/ablations.ml: Array Config D2_cache D2_core D2_dht D2_keyspace D2_simnet D2_store D2_util Data Float List Printf
