lib/experiments/table4.mli: Config D2_util
