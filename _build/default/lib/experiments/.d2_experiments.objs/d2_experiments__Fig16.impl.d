lib/experiments/fig16.ml: Array D2_core D2_util List Printf Suites
