lib/experiments/fig9.ml: Config D2_core D2_util List Suites
