lib/experiments/data.ml: Config D2_trace D2_util Hashtbl
