lib/experiments/fig15.mli: Config D2_util
