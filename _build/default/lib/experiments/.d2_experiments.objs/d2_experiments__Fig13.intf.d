lib/experiments/fig13.mli: Config D2_util
