lib/experiments/table1.mli: Config D2_util
