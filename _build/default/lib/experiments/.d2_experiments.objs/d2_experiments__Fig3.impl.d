lib/experiments/fig3.ml: Config D2_core D2_util Data List Printf
