lib/experiments/fig13.ml: Config D2_core D2_util List Suites
