lib/experiments/fig17.ml: Fig16
