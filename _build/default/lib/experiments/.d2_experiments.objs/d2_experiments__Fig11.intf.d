lib/experiments/fig11.mli: Config D2_util
