lib/experiments/fig15.ml: D2_core Fig14
