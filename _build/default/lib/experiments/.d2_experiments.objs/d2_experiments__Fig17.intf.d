lib/experiments/fig17.mli: Config D2_util
