lib/experiments/registry.mli: Config D2_util
