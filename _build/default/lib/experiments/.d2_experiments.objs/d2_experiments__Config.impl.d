lib/experiments/config.ml: D2_trace Printf Sys
