lib/experiments/fig14.mli: Config D2_core D2_util
