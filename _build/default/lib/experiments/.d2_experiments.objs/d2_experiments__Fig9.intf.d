lib/experiments/fig9.mli: Config D2_util
