lib/experiments/fig3.mli: Config D2_util
