lib/experiments/fig8.ml: Array D2_core D2_util Data Suites
