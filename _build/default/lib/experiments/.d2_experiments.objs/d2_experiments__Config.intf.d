lib/experiments/config.mli: D2_trace
