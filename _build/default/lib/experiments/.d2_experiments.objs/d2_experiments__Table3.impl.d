lib/experiments/table3.ml: Array D2_core D2_util List Printf Suites
