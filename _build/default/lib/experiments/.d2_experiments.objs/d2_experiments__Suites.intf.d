lib/experiments/suites.mli: Config D2_core
