lib/experiments/table1.ml: Array D2_trace D2_util Data Printf
