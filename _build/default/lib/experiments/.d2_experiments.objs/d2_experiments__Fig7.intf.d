lib/experiments/fig7.mli: Config D2_util
