lib/experiments/fig7.ml: Array Config D2_core D2_util Data Float List Printf Suites
