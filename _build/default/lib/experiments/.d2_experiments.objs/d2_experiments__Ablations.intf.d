lib/experiments/ablations.mli: Config D2_util
