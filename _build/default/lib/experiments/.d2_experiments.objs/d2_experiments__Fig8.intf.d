lib/experiments/fig8.mli: Config D2_util
