lib/experiments/fig12.mli: Config D2_util
