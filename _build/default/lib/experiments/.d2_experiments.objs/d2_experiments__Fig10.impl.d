lib/experiments/fig10.ml: Config D2_core D2_util List Printf Suites
