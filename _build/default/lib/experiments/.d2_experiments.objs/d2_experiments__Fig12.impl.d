lib/experiments/fig12.ml: Array Config D2_core D2_util List Printf Suites
