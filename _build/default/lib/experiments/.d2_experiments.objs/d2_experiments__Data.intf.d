lib/experiments/data.mli: Config D2_trace
