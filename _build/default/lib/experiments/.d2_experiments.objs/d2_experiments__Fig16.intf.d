lib/experiments/fig16.mli: Config D2_util
