lib/experiments/table3.mli: Config D2_util
