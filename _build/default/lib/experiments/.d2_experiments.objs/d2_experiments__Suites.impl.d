lib/experiments/suites.ml: Config D2_core Data Hashtbl Printf
