lib/experiments/table2.ml: Config D2_core D2_trace D2_util Data List Printf Suites
