lib/experiments/fig11.ml: D2_core Fig10
