lib/experiments/fig10.mli: Config D2_core D2_util
