(** Table 3: daily churn ratios W_i/T_i and R_i/T_i (§10). *)

val run : Config.scale -> D2_util.Report.t list
