(** Table 1: the workloads analyzed — our synthetic equivalents' sizes. *)

val run : Config.scale -> D2_util.Report.t list
