(** Table 4: daily write traffic vs load-balancing traffic (§10). *)

val run : Config.scale -> D2_util.Report.t list
