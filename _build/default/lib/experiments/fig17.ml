(* Figure 17: load imbalance over time under the Webcache workload —
   the extreme-churn stress test (§10). *)

let run scale =
  [
    Fig16.series scale ~trace:`Webcache
      ~title:"Figure 17: load imbalance over time (Webcache)";
  ]
