(** Figure 17: storage imbalance over time, Webcache workload (§10). *)

val run : Config.scale -> D2_util.Report.t list
