(** Figure 11: speedup of D2 over the traditional-file DHT (§9.3). *)

val run : Config.scale -> D2_util.Report.t list
