module Keymap = D2_core.Keymap
module Availability = D2_core.Availability
module Perf = D2_core.Perf
module Balance_sim = D2_core.Balance_sim

let all_modes = [ Keymap.Traditional; Keymap.Traditional_file; Keymap.D2 ]

let avail_memo : (string, Availability.replay) Hashtbl.t = Hashtbl.create 32
let perf_memo : (string, Perf.pass) Hashtbl.t = Hashtbl.create 32
let balance_memo : (string, Balance_sim.result) Hashtbl.t = Hashtbl.create 16

let memo tbl key build =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = build () in
      Hashtbl.replace tbl key v;
      v

let availability_replay scale ~mode ~trial =
  let key =
    Printf.sprintf "%s|%s|%d" (Config.scale_name scale) (Keymap.mode_name mode) trial
  in
  memo avail_memo key (fun () ->
      let trace = Data.harvard scale in
      let failures = Data.failures scale ~trial in
      Availability.replay ~trace ~failures ~mode
        ~seed:(Config.master_seed + 200 + trial)
        ())

let perf_pass scale ~mode ~nodes ~bandwidth =
  let key =
    Printf.sprintf "%s|%s|%d|%.0f" (Config.scale_name scale) (Keymap.mode_name mode)
      nodes bandwidth
  in
  memo perf_memo key (fun () ->
      let trace = Data.harvard scale in
      let config =
        {
          (Perf.default_config ~nodes ~bandwidth) with
          Perf.base_nodes = Config.perf_base_nodes scale;
          seed = Config.master_seed + 300;
        }
      in
      Perf.run_pass ~trace ~mode ~config)

let balance_result scale ~trace ~setup =
  let tname = match trace with `Harvard -> "harvard" | `Webcache -> "webcache" in
  let key =
    Printf.sprintf "%s|%s|%s" (Config.scale_name scale) tname
      (Balance_sim.setup_name setup)
  in
  memo balance_memo key (fun () ->
      let tr = match trace with `Harvard -> Data.harvard scale | `Webcache -> Data.webcache scale in
      let params =
        Balance_sim.default_params ~nodes:(Config.balance_nodes scale)
          ~seed:(Config.master_seed + 400)
      in
      (* The web cache starts empty; skip the pre-trace balancing
         phase that only makes sense with preloaded data. *)
      let params =
        match trace with
        | `Harvard -> params
        | `Webcache -> { params with Balance_sim.warmup = 3600.0 }
      in
      Balance_sim.run ~trace:tr ~setup ~params)
