(** Memoized heavy simulation runs shared across experiment tables.

    Figures 7, 8 and Table 2 share the availability replays; Figures
    9–15 share the performance passes.  Each is computed once per
    (scale, configuration) and cached for the process lifetime, so
    regenerating one figure after another costs one simulation, not
    one per figure. *)

val availability_replay :
  Config.scale -> mode:D2_core.Keymap.mode -> trial:int -> D2_core.Availability.replay

val perf_pass :
  Config.scale ->
  mode:D2_core.Keymap.mode ->
  nodes:int ->
  bandwidth:float ->
  D2_core.Perf.pass

val balance_result :
  Config.scale ->
  trace:[ `Harvard | `Webcache ] ->
  setup:D2_core.Balance_sim.setup ->
  D2_core.Balance_sim.result

val all_modes : D2_core.Keymap.mode list
(** Traditional, Traditional_file, D2 — comparison order used in the
    tables. *)
