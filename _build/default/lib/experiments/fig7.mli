(** Figure 7: task unavailability vs the inter-access threshold, all
    systems, several trials (§8.2). *)

val run : Config.scale -> D2_util.Report.t list
