(** Figure 3: mean nodes accessed per user-hour under traditional /
    ordered / lower-bound placements, all three workloads (§4.1). *)

val run : Config.scale -> D2_util.Report.t list
