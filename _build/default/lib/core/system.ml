module Key = D2_keyspace.Key
module Cluster = D2_store.Cluster
module Engine = D2_simnet.Engine
module Op = D2_trace.Op
module Rng = D2_util.Rng
module Stats = D2_util.Stats

type file_state = { path : string; blocks : (int, int) Hashtbl.t }

type t = {
  mode : Keymap.mode;
  cluster : Cluster.t;
  keymap : Keymap.t;
  engine : Engine.t;
  files : (int, file_state) Hashtbl.t;
  mutable baseline : float;
}

let create ~engine ~mode ~rng ~nodes ?(config = Cluster.default_config)
    ?(volume = "vol") () =
  if nodes <= 0 then invalid_arg "System.create: nodes must be positive";
  let ids = Array.init nodes (fun _ -> Key.random rng) in
  let cluster = Cluster.create ~engine ~config ~ids in
  {
    mode;
    cluster;
    keymap = Keymap.create mode ~volume;
    engine;
    files = Hashtbl.create 1024;
    baseline = 0.0;
  }

let cluster t = t.cluster
let keymap t = t.keymap
let mode t = t.mode
let engine t = t.engine
let baseline_written t = t.baseline

let key_of_op t o = Keymap.key_of_op t.keymap o

let file_state t ~file ~path =
  match Hashtbl.find_opt t.files file with
  | Some fs -> fs
  | None ->
      let fs = { path; blocks = Hashtbl.create 8 } in
      Hashtbl.replace t.files file fs;
      fs

let put_block t ~path ~file ~block ~size =
  let fs = file_state t ~file ~path in
  Hashtbl.replace fs.blocks block size;
  let key = Keymap.key_of t.keymap ~path ~block in
  Cluster.put t.cluster ~key ~size ()

let load_initial t (trace : Op.t) =
  let before = Cluster.written_bytes t.cluster in
  Array.iter
    (fun (fi : Op.file_info) ->
      let nblocks = Op.blocks_of_bytes fi.Op.file_bytes in
      for b = 0 to nblocks - 1 do
        let size =
          if b = nblocks - 1 then begin
            let rem = fi.Op.file_bytes - (b * Op.block_size) in
            if rem = 0 then Op.block_size else rem
          end
          else Op.block_size
        in
        put_block t ~path:fi.Op.file_path ~file:fi.Op.file_id ~block:b ~size
      done)
    trace.Op.initial_files;
  t.baseline <- t.baseline +. (Cluster.written_bytes t.cluster -. before)

let apply_op t (o : Op.op) =
  match o.Op.kind with
  | Op.Read -> ()
  | Op.Write | Op.Create ->
      put_block t ~path:o.Op.path ~file:o.Op.file ~block:o.Op.block ~size:o.Op.bytes
  | Op.Delete -> (
      match Hashtbl.find_opt t.files o.Op.file with
      | None -> ()
      | Some fs ->
          Hashtbl.iter
            (fun block _ ->
              let key = Keymap.key_of t.keymap ~path:fs.path ~block in
              Cluster.remove t.cluster ~key ())
            fs.blocks;
          Hashtbl.remove t.files o.Op.file)

let file_blocks t ~file =
  match Hashtbl.find_opt t.files file with
  | None -> []
  | Some fs -> List.sort compare (Hashtbl.fold (fun b s acc -> (b, s) :: acc) fs.blocks [])

let attach_balancer t ~rng ?config ~until () =
  D2_balance.Balancer.attach ~cluster:t.cluster ~rng ?config ~until ()

let up_loads t =
  let n = Cluster.node_count t.cluster in
  let loads = ref [] in
  for i = 0 to n - 1 do
    let s = Cluster.node_stats t.cluster i in
    if s.Cluster.up then loads := float_of_int s.Cluster.physical_bytes :: !loads
  done;
  Array.of_list !loads

let imbalance t = Stats.normalized_stddev (up_loads t)

let max_over_mean_load t =
  let loads = up_loads t in
  let m = Stats.mean loads in
  if m = 0.0 then 0.0
  else Array.fold_left Float.max neg_infinity loads /. m
