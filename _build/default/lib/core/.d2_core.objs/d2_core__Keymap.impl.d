lib/core/keymap.ml: D2_keyspace D2_trace Hashtbl Int64 List String
