lib/core/locality.ml: Array D2_keyspace D2_trace D2_util Hashtbl Int64 List Printf
