lib/core/keymap.mli: D2_keyspace D2_trace
