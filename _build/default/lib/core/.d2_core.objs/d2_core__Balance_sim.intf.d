lib/core/balance_sim.mli: D2_trace
