lib/core/perf.ml: Array D2_cache D2_dht D2_keyspace D2_simnet D2_store D2_trace D2_util Float Hashtbl Keymap List Option Printf System
