lib/core/balance_sim.ml: Array D2_balance D2_simnet D2_store D2_trace D2_util Float Keymap System
