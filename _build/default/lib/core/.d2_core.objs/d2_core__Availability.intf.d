lib/core/availability.mli: D2_store D2_trace Keymap
