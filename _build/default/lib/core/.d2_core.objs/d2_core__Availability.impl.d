lib/core/availability.ml: Array D2_simnet D2_store D2_trace D2_util Float Hashtbl Keymap List System
