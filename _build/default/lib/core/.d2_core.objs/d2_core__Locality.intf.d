lib/core/locality.mli: D2_trace
