lib/core/system.ml: Array D2_balance D2_keyspace D2_simnet D2_store D2_trace D2_util Float Hashtbl Keymap List
