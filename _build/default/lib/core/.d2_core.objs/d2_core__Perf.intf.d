lib/core/perf.mli: D2_trace Hashtbl Keymap
