(** The §4.1 data-locality analysis behind Fig. 3.

    For a given workload and node count, estimates the mean number of
    distinct storage nodes each user touches per hour under three
    static placements:

    - {e traditional}: every block is assigned to a uniformly random
      node (consistent hashing of independent block keys);
    - {e ordered}: blocks are sorted by name (full path + block
      number; for disk traces the block number itself) and dealt out
      in contiguous runs of [universe/nodes] blocks per node — the
      idealized locality-preserving assignment;
    - {e lower-bound}: ⌈blocks accessed / blocks per node⌉ — the
      information-theoretic floor, which may not be achievable (§4.1).

    The block universe is the trace's initial files plus every block
    created during the trace (deleted blocks keep their rank — a
    static-placement approximation the paper also makes by analyzing
    a fixed assignment). *)

type scenario = Traditional | Ordered | Lower_bound

val scenario_name : scenario -> string

type result = {
  scenario : scenario;
  mean_nodes_per_user_hour : float;
  user_hours : int;  (** number of (user, hour) buckets with activity *)
}

val analyze : D2_trace.Op.t -> nodes:int -> scenario -> result

val analyze_all : D2_trace.Op.t -> nodes:int -> result list
(** All three scenarios, sharing one pass over the trace. *)
