(** The §8 availability simulator.

    Replays a workload trace against a deployment that experiences a
    failure trace, and records for every read op whether the block's
    replica group had a live copy at access time, and which node was
    its primary.  One replay serves every task-segmentation threshold:
    {!task_unavailability} folds the per-op outcomes into per-task
    failures for any [inter].

    Timeline: blocks are inserted at virtual time 0; the load balancer
    (D2 only) then runs for [warmup] (3 simulated days in the paper)
    so node positions stabilize; the workload and the failures both
    start at the end of warmup.

    The regeneration/migration bandwidth is scaled from the paper's
    750 kbit/s by the ratio of our data-set size to the paper's 83 GB,
    so that regenerating a node's data takes the same {e simulated
    hours} it did in the paper — see EXPERIMENTS.md. *)

type params = {
  replicas : int;  (** paper: 3 *)
  redundancy : D2_store.Cluster.redundancy;
  (** whole-block replication (paper) or m-of-n erasure coding (§3's
      alternative) *)
  warmup : float;  (** seconds of pre-trace balancing; paper: 3 days *)
  use_balancer : bool;  (** true for D2 *)
  regen_hours_per_node : float;
  (** time to re-replicate one node's data at the scaled bandwidth
      (paper: ≈ 3 h); used to derive the bandwidth from data volume *)
  hybrid_replicas : bool;
  (** §11 future-work hybrid placement: one replica at the key's
      hashed ring position (see {!D2_store.Cluster.config}) *)
}

val default_params : mode:Keymap.mode -> params
(** [use_balancer] is set from the mode. *)

type replay = {
  op_ok : bool array;  (** per op: was the access servable (reads) / true otherwise *)
  op_node : int array;  (** per op: primary node contacted, -1 for deletes/missing *)
  trials_mode : Keymap.mode;
}

val replay :
  trace:D2_trace.Op.t ->
  failures:D2_trace.Failure.t ->
  mode:Keymap.mode ->
  seed:int ->
  ?params:params ->
  unit ->
  replay

type task_stats = {
  tasks : int;
  failed : int;
  unavailability : float;  (** failed / tasks *)
  mean_nodes_per_task : float;  (** Table 2's "mean nodes" column *)
  per_user_unavailability : (int * float) array;
  (** (user, unavailability) for users with ≥ 1 task, sorted worst
      first — Fig. 8 *)
}

val task_unavailability :
  trace:D2_trace.Op.t -> replay:replay -> inter:float -> task_stats
