(** Summary statistics used by the experiment reporters.

    [Online] accumulates mean/variance in one pass (Welford); the free
    functions work over float arrays (sorted copies are made where
    needed). *)

module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Population variance; 0 when fewer than 2 samples. *)

  val stddev : t -> float
  val min : t -> float
  (** +inf when empty. *)

  val max : t -> float
  (** -inf when empty. *)

  val sum : t -> float
end

val mean : float array -> float
val stddev : float array -> float

val normalized_stddev : float array -> float
(** stddev / mean — the paper's load-imbalance metric (Figs. 16–17).
    0 when the mean is 0. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation.
    @raise Invalid_argument on an empty array. *)

val median : float array -> float

val geometric_mean : float array -> float
(** The paper averages speedups (ratios) with a geometric mean (§9.3).
    All values must be positive. *)
