(** Zipf-distributed sampling over ranks [0, n).

    Web object popularity and file access frequency are famously
    zipfian; the workload generators use this module to pick which
    file/URL an access touches.  Sampling is O(log n) by binary search
    over a precomputed CDF. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over ranks [0..n-1] with
    exponent [s] (typical web workloads: 0.7–1.0). [n] must be
    positive and [s] non-negative. *)

val n : t -> int

val sample : t -> Rng.t -> int
(** Draw a rank; rank 0 is the most popular. *)

val prob : t -> int -> float
(** Probability mass of a rank. *)
