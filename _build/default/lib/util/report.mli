(** Plain-text table rendering for experiment output.

    Every experiment prints its result as one of these tables so that
    the bench harness output lines up with the paper's tables and
    figure series. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells. *)

val render : t -> string
(** Aligned, boxed, ready to print. *)

val print : t -> unit

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float formatting, default 3 decimals. *)

val fmt_sci : float -> string
(** Scientific notation with 2 significant decimals (for
    unavailability numbers like 3.1e-05). *)

val fmt_pct : float -> string
(** Fraction rendered as a percentage with one decimal. *)
