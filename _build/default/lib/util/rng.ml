type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* SplitMix64 output mix. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t = mix64 (next_seed t)

let split t = { state = int64 t }
let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  (* 53 random bits into [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let bool t = Int64.logand (int64 t) 1L = 1L

let bits t buf =
  let n = Bytes.length buf in
  let i = ref 0 in
  while !i < n do
    let v = ref (int64 t) in
    let stop = min n (!i + 8) in
    while !i < stop do
      Bytes.set buf !i (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
      v := Int64.shift_right_logical !v 8;
      incr i
    done
  done

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  scale /. (u ** (1.0 /. shape))

let normal t ~mean ~stddev =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then 1e-12 else u1 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
