type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let push t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (max 16 (2 * cap)) x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let check t i name =
  if i < 0 || i >= t.size then invalid_arg ("Vec." ^ name ^ ": index out of range")

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let to_array t = Array.sub t.data 0 t.size

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let clear t =
  t.data <- [||];
  t.size <- 0

let sort ~cmp t =
  let arr = to_array t in
  Array.sort cmp arr;
  t.data <- arr;
  t.size <- Array.length arr
