type t = { n : int; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !total
  done;
  let z = !total in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. z
  done;
  { n; cdf }

let n t = t.n

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let prob t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.prob: rank out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)
