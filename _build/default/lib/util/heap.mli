(** Polymorphic binary min-heap.

    Used as the event queue of the virtual-time engine and for
    k-smallest selections in the analyzers.  Not thread-safe. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructively list the contents in ascending order. O(n log n). *)
