type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let pad_row width row =
  let len = List.length row in
  if len >= width then row
  else row @ List.init (width - len) (fun _ -> "")

let render t =
  let ncols = List.length t.columns in
  let rows = List.rev_map (pad_row ncols) t.rows in
  let all = t.columns :: rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  List.iter measure all;
  let buf = Buffer.create 1024 in
  let pad i cell =
    let extra = widths.(i) - String.length cell in
    cell ^ String.make (max 0 extra) ' '
  in
  let emit_row row =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_string buf " |\n"
  in
  let sep =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf sep;
  emit_row t.columns;
  Buffer.add_string buf sep;
  List.iter emit_row rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v
let fmt_sci v = Printf.sprintf "%.2e" v
let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
