(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments are reproducible from a single integer
    seed.  The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14):
    a tiny, fast, well-distributed 64-bit generator whose [split]
    operation lets us derive statistically independent child generators
    for sub-components without sharing mutable state. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent child generator and advances [t].
    Use one child per subsystem so that adding draws to one subsystem
    does not perturb another. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bits : t -> bytes -> unit
(** Fill a byte buffer with pseudo-random bytes. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto sample: heavy-tailed sizes (file sizes, transfer sizes). *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian sample (Box–Muller). *)

val pick : t -> 'a array -> 'a
(** Uniformly random array element. Array must be non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
