lib/util/stats.mli:
