lib/util/report.ml: Array Buffer List Printf String
