lib/util/heap.mli:
