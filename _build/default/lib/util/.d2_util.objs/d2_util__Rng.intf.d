lib/util/rng.mli:
