lib/util/report.mli:
