lib/util/vec.mli:
