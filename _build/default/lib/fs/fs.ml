module Key = D2_keyspace.Key
module Encoding = D2_keyspace.Encoding
module Keygen = D2_keyspace.Keygen
module Cluster = D2_store.Cluster
module Engine = D2_simnet.Engine
module Block_cache = D2_cache.Block_cache

type mode = D2 | Traditional | Traditional_file

exception Integrity_violation of string

type pending_write = { data : string; token : int }

type t = {
  cluster : Cluster.t;
  volume_name : string;
  vol_id : string;
  mode : mode;
  write_back : bool;
  wb_window : float;
  pending : (string, pending_write) Hashtbl.t;
  warm : Block_cache.t;
  mutable next_token : int;
  mutable next_gen : int;
  (* Generations are drawn from this volume-global monotone counter,
     never restarted per path: a renamed object keeps its original
     keys (§4.2), so a file re-created at the old path must not mint
     the same (path, generation) key the renamed incarnation uses. *)
  mutable fetches : int;
  root_key : Key.t;
}

let mode t = t.mode
let volume t = t.volume_name
let blocks_fetched t = t.fetches

(* {1 Key construction}

   Block-number convention inside one object's key space:
   0 = the volume root block (only at the empty slot path),
   1 = the object's metadata block (directory block or inode),
   2+i = the i-th data block. *)

let meta_block_num = 1L
let data_block_num i = Int64.of_int (2 + i)

let meta_key t ~path ~slots ~gen =
  let version = Int32.of_int gen in
  match t.mode with
  | D2 ->
      Encoding.of_slot_path ~volume:t.vol_id ~slots ~block:meta_block_num ~version
  | Traditional ->
      Keygen.traditional_block ~volume:t.volume_name ~path ~block:0L ~version
  | Traditional_file ->
      Keygen.traditional_file ~volume:t.volume_name ~path ~block:0L ~version

let data_key t ~path ~slots ~index ~gen =
  let version = Int32.of_int gen in
  match t.mode with
  | D2 ->
      Encoding.of_slot_path ~volume:t.vol_id ~slots ~block:(data_block_num index)
        ~version
  | Traditional ->
      Keygen.traditional_block ~volume:t.volume_name ~path
        ~block:(Int64.of_int (1 + index))
        ~version
  | Traditional_file ->
      Keygen.traditional_file ~volume:t.volume_name ~path
        ~block:(Int64.of_int (1 + index))
        ~version

let root_key_of ~mode ~volume_name ~vol_id =
  match mode with
  | D2 -> Encoding.of_slot_path ~volume:vol_id ~slots:[] ~block:0L ~version:0l
  | Traditional ->
      Keygen.traditional_block ~volume:volume_name ~path:"\000root" ~block:0L
        ~version:0l
  | Traditional_file ->
      Keygen.traditional_file ~volume:volume_name ~path:"\000root" ~block:0L
        ~version:0l

(* {1 Path handling} *)

let components path =
  if String.length path = 0 || path.[0] <> '/' then
    invalid_arg (Printf.sprintf "Fs: path %S must be absolute" path);
  List.filter (fun c -> c <> "") (String.split_on_char '/' path)

let split_parent path =
  match List.rev (components path) with
  | [] -> invalid_arg "Fs: the root directory is not a file"
  | name :: rev_parents -> (List.rev rev_parents, name)

(* {1 Block IO} *)

let put_block t ~key ~payload =
  Cluster.put t.cluster ~key ~size:(String.length payload) ~data:payload ()

let fetch_raw t ~key =
  match Cluster.get t.cluster ~key with
  | Some (Some payload) -> Some payload
  | Some None -> None
  | None -> None

let fetch_verified t ~key ~expect_hash ~what =
  let now = Engine.now (Cluster.engine t.cluster) in
  let warm_hit = Block_cache.touch t.warm ~now key in
  match fetch_raw t ~key with
  | None -> raise Not_found
  | Some payload ->
      if not warm_hit then t.fetches <- t.fetches + 1;
      if not (String.equal (Layout.content_hash payload) expect_hash) then
        raise (Integrity_violation what);
      Layout.decode payload

let read_root t =
  match fetch_raw t ~key:t.root_key with
  | None -> invalid_arg "Fs: volume root block missing"
  | Some payload -> (
      match Layout.decode payload with
      | Layout.Root rb ->
          if not (Layout.verify_root rb) then
            raise (Integrity_violation "root signature");
          rb
      | _ -> raise (Integrity_violation "root block has wrong type"))

let write_root t ~root_dir_key ~root_dir_hash ~version =
  let signature =
    Layout.sign_root ~volume:t.volume_name ~root_dir_key ~root_dir_hash ~version
  in
  let rb =
    {
      Layout.volume = t.volume_name;
      root_dir_key;
      root_dir_hash;
      root_version = version;
      signature;
    }
  in
  put_block t ~key:t.root_key ~payload:(Layout.encode (Layout.Root rb))

let read_dir t ~key ~expect_hash ~what =
  match fetch_verified t ~key ~expect_hash ~what with
  | Layout.Directory db -> db
  | _ -> raise (Integrity_violation (what ^ ": expected a directory block"))

let read_inode t ~key ~expect_hash ~what =
  match fetch_verified t ~key ~expect_hash ~what with
  | Layout.Inode ib -> ib
  | _ -> raise (Integrity_violation (what ^ ": expected an inode block"))

(* {1 Directory chain walking}

   A [link] is one resolved directory along a path: its path string,
   its current key and block, and the name it has in its parent. *)

type link = { lpath : string; lkey : Key.t; ldb : Layout.dir_block }

let root_dir_link t =
  let rb = read_root t in
  let db =
    read_dir t ~key:rb.Layout.root_dir_key ~expect_hash:rb.Layout.root_dir_hash
      ~what:"/"
  in
  { lpath = "/"; lkey = rb.Layout.root_dir_key; ldb = db }

let find_entry db name =
  List.find_opt (fun (e : Layout.dir_entry) -> e.Layout.name = name) db.Layout.entries

let child_path parent name = if parent = "/" then "/" ^ name else parent ^ "/" ^ name

(* Walk down [comps], returning links root..last. Raises Not_found on
   a missing component and Invalid_argument if one is a file. *)
let resolve_dir_chain t comps =
  let rec go acc (link : link) = function
    | [] -> List.rev (link :: acc)
    | name :: rest -> (
        match find_entry link.ldb name with
        | None -> raise Not_found
        | Some e when e.Layout.kind = Layout.File ->
            invalid_arg (Printf.sprintf "Fs: %s is a file, not a directory" name)
        | Some e ->
            let path = child_path link.lpath name in
            let db =
              read_dir t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
                ~what:path
            in
            go (link :: acc) { lpath = path; lkey = e.Layout.child_key; ldb = db } rest)
  in
  go [] (root_dir_link t) comps

let fresh_slot db =
  let used =
    List.map (fun (e : Layout.dir_entry) -> e.Layout.slot) db.Layout.entries
    @ db.Layout.reserved_slots
  in
  let rec search s =
    if s > Encoding.max_slot then invalid_arg "Fs: directory is full (65535 entries)"
    else if List.mem s used then search (s + 1)
    else s
  in
  search 1

(* Re-publish a modified directory chain bottom-up: each directory gets
   a new generation (hence a new key), its parent's entry is updated,
   and finally the root block is rewritten in place (§3). *)
let commit_chain t (chain : link list) (new_last_db : Layout.dir_block) =
  let fresh_gen () =
    let g = t.next_gen in
    t.next_gen <- t.next_gen + 1;
    g
  in
  let rec go = function
    | [] -> assert false
    | [ last ] ->
        let db = { new_last_db with Layout.dir_generation = fresh_gen () } in
        (last, db)
    | link :: rest ->
        let (child, child_db) = go rest in
        let payload = Layout.encode (Layout.Directory child_db) in
        let new_key =
          meta_key t ~path:child.lpath ~slots:child_db.Layout.dir_slots
            ~gen:child_db.Layout.dir_generation
        in
        put_block t ~key:new_key ~payload;
        if not (Key.equal new_key child.lkey) then
          Cluster.remove t.cluster ~key:child.lkey ();
        let child_name =
          match String.rindex_opt child.lpath '/' with
          | Some i -> String.sub child.lpath (i + 1) (String.length child.lpath - i - 1)
          | None -> assert false
        in
        let entries =
          List.map
            (fun (e : Layout.dir_entry) ->
              if e.Layout.name = child_name then
                { e with Layout.child_key = new_key; child_hash = Layout.content_hash payload }
              else e)
            link.ldb.Layout.entries
        in
        let db =
          { link.ldb with Layout.entries; dir_generation = fresh_gen () }
        in
        (link, db)
  in
  let (root_link, root_db) = go chain in
  let payload = Layout.encode (Layout.Directory root_db) in
  let new_root_dir_key =
    meta_key t ~path:"/" ~slots:[] ~gen:root_db.Layout.dir_generation
  in
  put_block t ~key:new_root_dir_key ~payload;
  if not (Key.equal new_root_dir_key root_link.lkey) then
    Cluster.remove t.cluster ~key:root_link.lkey ();
  let rb = read_root t in
  write_root t ~root_dir_key:new_root_dir_key
    ~root_dir_hash:(Layout.content_hash payload)
    ~version:(rb.Layout.root_version + 1)

(* {1 Creation} *)

let create ~cluster ~volume ~mode ?(write_back = true) () =
  let vol_id = Encoding.volume_id volume in
  let root_key = root_key_of ~mode ~volume_name:volume ~vol_id in
  let t =
    {
      cluster;
      volume_name = volume;
      vol_id;
      mode;
      write_back;
      wb_window = 30.0;
      pending = Hashtbl.create 32;
      warm = Block_cache.create ();
      next_token = 0;
      next_gen = 1;
      fetches = 0;
      root_key;
    }
  in
  (* Empty root directory + signed root block. *)
  let root_db =
    { Layout.dir_slots = []; dir_generation = 0; reserved_slots = []; entries = [] }
  in
  let payload = Layout.encode (Layout.Directory root_db) in
  let root_dir_key = meta_key t ~path:"/" ~slots:[] ~gen:0 in
  put_block t ~key:root_dir_key ~payload;
  write_root t ~root_dir_key ~root_dir_hash:(Layout.content_hash payload) ~version:0;
  t

(* {1 mkdir} *)

let rec ensure_dir_chain t comps =
  match resolve_dir_chain t comps with
  | chain -> chain
  | exception Not_found ->
      (* Create the first missing component, then retry. *)
      let rec first_missing acc (link : link) = function
        | [] -> None
        | name :: rest -> (
            match find_entry link.ldb name with
            | None -> Some (List.rev (link :: acc), name)
            | Some e when e.Layout.kind = Layout.File ->
                invalid_arg (Printf.sprintf "Fs: %s is a file" name)
            | Some e ->
                let path = child_path link.lpath name in
                let db =
                  read_dir t ~key:e.Layout.child_key
                    ~expect_hash:e.Layout.child_hash ~what:path
                in
                first_missing (link :: acc)
                  { lpath = path; lkey = e.Layout.child_key; ldb = db }
                  rest)
      in
      (match first_missing [] (root_dir_link t) comps with
      | None -> assert false
      | Some (chain, name) ->
          let parent = List.nth chain (List.length chain - 1) in
          let slot = fresh_slot parent.ldb in
          let child_slots = parent.ldb.Layout.dir_slots @ [ slot ] in
          let child_path_s = child_path parent.lpath name in
          let child_db =
            {
              Layout.dir_slots = child_slots;
              dir_generation = 0;
              reserved_slots = [];
              entries = [];
            }
          in
          let payload = Layout.encode (Layout.Directory child_db) in
          let child_key = meta_key t ~path:child_path_s ~slots:child_slots ~gen:0 in
          put_block t ~key:child_key ~payload;
          let entry =
            {
              Layout.name;
              slot;
              kind = Layout.Dir;
              child_key;
              child_hash = Layout.content_hash payload;
            }
          in
          let new_parent_db =
            { parent.ldb with Layout.entries = entry :: parent.ldb.Layout.entries }
          in
          commit_chain t chain new_parent_db);
      ensure_dir_chain t comps

let mkdir t path = ignore (ensure_dir_chain t (components path))

(* {1 Write path} *)

let chunks_of data =
  let n = String.length data in
  if n = 0 then [ "" ]
  else begin
    let count = (n + Layout.max_block_bytes - 1) / Layout.max_block_bytes in
    List.init count (fun i ->
        let off = i * Layout.max_block_bytes in
        String.sub data off (min Layout.max_block_bytes (n - off)))
  end

let commit_file t ~path ~data =
  let parents, name = split_parent path in
  let chain = ensure_dir_chain t parents in
  let parent = List.nth chain (List.length chain - 1) in
  let old_entry = find_entry parent.ldb name in
  let slot, gen, old_keys =
    match old_entry with
    | Some e when e.Layout.kind = Layout.Dir ->
        invalid_arg (Printf.sprintf "Fs: %s is a directory" path)
    | Some e ->
        let ib =
          read_inode t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
            ~what:path
        in
        let data_keys =
          match ib.Layout.contents with
          | Layout.Inline _ -> []
          | Layout.Blocks bs -> List.map fst bs
        in
        ignore ib.Layout.generation;
        let gen = t.next_gen in
        t.next_gen <- t.next_gen + 1;
        (e.Layout.slot, gen, e.Layout.child_key :: data_keys)
    | None ->
        let gen = t.next_gen in
        t.next_gen <- t.next_gen + 1;
        (fresh_slot parent.ldb, gen, [])
  in
  let slots = parent.ldb.Layout.dir_slots @ [ slot ] in
  let contents =
    if String.length data <= Layout.inline_threshold then Layout.Inline data
    else begin
      let blocks =
        List.mapi
          (fun i chunk ->
            let key = data_key t ~path ~slots ~index:i ~gen in
            put_block t ~key ~payload:(Layout.encode (Layout.Data chunk));
            (key, Layout.content_hash (Layout.encode (Layout.Data chunk))))
          (chunks_of data)
      in
      Layout.Blocks blocks
    end
  in
  let inode =
    { Layout.size = String.length data; generation = gen; contents }
  in
  let payload = Layout.encode (Layout.Inode inode) in
  let inode_key = meta_key t ~path ~slots ~gen in
  put_block t ~key:inode_key ~payload;
  List.iter (fun k -> Cluster.remove t.cluster ~key:k ()) old_keys;
  let entry =
    {
      Layout.name;
      slot;
      kind = Layout.File;
      child_key = inode_key;
      child_hash = Layout.content_hash payload;
    }
  in
  let entries =
    entry :: List.filter (fun (e : Layout.dir_entry) -> e.Layout.name <> name)
               parent.ldb.Layout.entries
  in
  commit_chain t chain { parent.ldb with Layout.entries }

let flush_one t path =
  match Hashtbl.find_opt t.pending path with
  | None -> ()
  | Some pw ->
      Hashtbl.remove t.pending path;
      commit_file t ~path ~data:pw.data

let write_file t ~path ~data =
  ignore (split_parent path);
  if not t.write_back then commit_file t ~path ~data
  else begin
    t.next_token <- t.next_token + 1;
    let token = t.next_token in
    Hashtbl.replace t.pending path { data; token };
    let engine = Cluster.engine t.cluster in
    ignore
      (Engine.schedule_in engine ~delay:t.wb_window (fun () ->
           match Hashtbl.find_opt t.pending path with
           | Some pw when pw.token = token -> flush_one t path
           | Some _ | None -> ()))
  end

let flush t =
  let paths = Hashtbl.fold (fun p _ acc -> p :: acc) t.pending [] in
  List.iter (flush_one t) (List.sort compare paths)

(* {1 Range IO (NFS-style)}

   Partial reads fetch only the blocks covering the range; partial
   writes read-modify-write the touched blocks while untouched data
   blocks keep their existing keys and hashes (only the inode and the
   metadata chain are re-published). *)

let block_span ~offset ~length =
  let first = offset / Layout.max_block_bytes in
  let last = (offset + length - 1) / Layout.max_block_bytes in
  (first, last)

let splice ~old ~offset ~data =
  let new_len = max (String.length old) (offset + String.length data) in
  let b = Bytes.make new_len '\000' in
  Bytes.blit_string old 0 b 0 (String.length old);
  Bytes.blit_string data 0 b offset (String.length data);
  Bytes.unsafe_to_string b

let commit_range t ~path ~offset ~data =
  let parents, name = split_parent path in
  let chain = ensure_dir_chain t parents in
  let parent = List.nth chain (List.length chain - 1) in
  match find_entry parent.ldb name with
  | Some e when e.Layout.kind = Layout.Dir ->
      invalid_arg (Printf.sprintf "Fs: %s is a directory" path)
  | None ->
      (* Creating: zero-fill up to the offset. *)
      commit_file t ~path ~data:(splice ~old:"" ~offset ~data)
  | Some e -> (
      let ib =
        read_inode t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
          ~what:path
      in
      match ib.Layout.contents with
      | Layout.Inline old ->
          (* Tiny file: rewrite whole (may grow into block storage). *)
          commit_file t ~path ~data:(splice ~old ~offset ~data)
      | Layout.Blocks old_blocks ->
          let old_size = ib.Layout.size in
          let new_size = max old_size (offset + String.length data) in
          let gen = t.next_gen in
          t.next_gen <- t.next_gen + 1;
          let slots = parent.ldb.Layout.dir_slots @ [ e.Layout.slot ] in
          let old_arr = Array.of_list old_blocks in
          let nblocks = (max 1 new_size + Layout.max_block_bytes - 1) / Layout.max_block_bytes in
          let first, last = block_span ~offset ~length:(max 1 (String.length data)) in
          let removed = ref [] in
          let fetch_old i =
            if i < Array.length old_arr then begin
              let k, h = old_arr.(i) in
              match fetch_verified t ~key:k ~expect_hash:h ~what:path with
              | Layout.Data s -> s
              | _ -> raise (Integrity_violation (path ^ ": expected a data block"))
            end
            else ""
          in
          let blocks =
            List.init nblocks (fun i ->
                let block_start = i * Layout.max_block_bytes in
                let block_end_new = min new_size (block_start + Layout.max_block_bytes) in
                let touched =
                  (String.length data > 0 && i >= first && i <= last)
                  || (* growth re-shapes blocks past the old end *)
                  block_end_new > old_size
                in
                if (not touched) && i < Array.length old_arr then old_arr.(i)
                else begin
                  (* Zero-filled block of its new length, overlaid with
                     the old bytes and then the written range. *)
                  let block_len = block_end_new - block_start in
                  let old_content = fetch_old i in
                  let b = Bytes.make block_len '\000' in
                  Bytes.blit_string old_content 0 b 0
                    (min (String.length old_content) block_len);
                  let lo = max block_start offset in
                  let hi = min block_end_new (offset + String.length data) in
                  if hi > lo then
                    Bytes.blit_string data (lo - offset) b (lo - block_start) (hi - lo);
                  let content = Bytes.to_string b in
                  let key = data_key t ~path ~slots ~index:i ~gen in
                  put_block t ~key ~payload:(Layout.encode (Layout.Data content));
                  if i < Array.length old_arr then removed := fst old_arr.(i) :: !removed;
                  (key, Layout.content_hash (Layout.encode (Layout.Data content)))
                end)
          in
          let inode = { Layout.size = new_size; generation = gen; contents = Layout.Blocks blocks } in
          let payload = Layout.encode (Layout.Inode inode) in
          let inode_key = meta_key t ~path ~slots ~gen in
          put_block t ~key:inode_key ~payload;
          Cluster.remove t.cluster ~key:e.Layout.child_key ();
          List.iter (fun k -> Cluster.remove t.cluster ~key:k ()) !removed;
          let entry =
            { e with Layout.child_key = inode_key; child_hash = Layout.content_hash payload }
          in
          let entries =
            entry
            :: List.filter (fun (x : Layout.dir_entry) -> x.Layout.name <> name)
                 parent.ldb.Layout.entries
          in
          commit_chain t chain { parent.ldb with Layout.entries })

let write_range t ~path ~offset ~data =
  if offset < 0 then invalid_arg "Fs.write_range: negative offset";
  ignore (split_parent path);
  match Hashtbl.find_opt t.pending path with
  | Some pw ->
      (* Splice into the buffered content; the pending flush covers it. *)
      t.next_token <- t.next_token + 1;
      Hashtbl.replace t.pending path
        { data = splice ~old:pw.data ~offset ~data; token = t.next_token }
  | None -> commit_range t ~path ~offset ~data

(* {1 Read path} *)

let lookup_entry t path =
  let parents, name = split_parent path in
  let chain = resolve_dir_chain t parents in
  let parent = List.nth chain (List.length chain - 1) in
  (chain, parent, name, find_entry parent.ldb name)

let read_file t path =
  match Hashtbl.find_opt t.pending path with
  | Some pw -> Some pw.data
  | None -> (
      match lookup_entry t path with
      | exception Not_found -> None
      | _, _, _, None -> None
      | _, _, _, Some e when e.Layout.kind = Layout.Dir -> None
      | _, _, _, Some e ->
          let ib =
            read_inode t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
              ~what:path
          in
          (match ib.Layout.contents with
          | Layout.Inline s -> Some s
          | Layout.Blocks bs ->
              let buf = Buffer.create ib.Layout.size in
              List.iter
                (fun (k, h) ->
                  match fetch_verified t ~key:k ~expect_hash:h ~what:path with
                  | Layout.Data s -> Buffer.add_string buf s
                  | _ -> raise (Integrity_violation (path ^ ": expected a data block")))
                bs;
              Some (Buffer.contents buf)))

let read_range t ~path ~offset ~length =
  if offset < 0 then invalid_arg "Fs.read_range: negative offset";
  if length < 0 then invalid_arg "Fs.read_range: negative length";
  match Hashtbl.find_opt t.pending path with
  | Some pw ->
      let n = String.length pw.data in
      if offset >= n then Some ""
      else Some (String.sub pw.data offset (min length (n - offset)))
  | None -> (
      match lookup_entry t path with
      | exception Not_found -> None
      | _, _, _, None -> None
      | _, _, _, Some e when e.Layout.kind = Layout.Dir -> None
      | _, _, _, Some e -> (
          let ib =
            read_inode t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
              ~what:path
          in
          let size = ib.Layout.size in
          if offset >= size || length = 0 then Some ""
          else begin
            let length = min length (size - offset) in
            match ib.Layout.contents with
            | Layout.Inline s -> Some (String.sub s offset length)
            | Layout.Blocks bs ->
                (* Fetch only the blocks covering the range. *)
                let first = offset / Layout.max_block_bytes in
                let last = (offset + length - 1) / Layout.max_block_bytes in
                let arr = Array.of_list bs in
                let buf = Buffer.create length in
                for i = first to last do
                  let k, h = arr.(i) in
                  match fetch_verified t ~key:k ~expect_hash:h ~what:path with
                  | Layout.Data s -> Buffer.add_string buf s
                  | _ -> raise (Integrity_violation (path ^ ": expected a data block"))
                done;
                let span = Buffer.contents buf in
                Some (String.sub span (offset - (first * Layout.max_block_bytes)) length)
          end))

let exists t path =
  if path = "/" then true
  else if Hashtbl.mem t.pending path then true
  else
    match lookup_entry t path with
    | exception Not_found -> false
    | _, _, _, entry -> entry <> None

let is_dir t path =
  if path = "/" then true
  else
    match lookup_entry t path with
    | exception Not_found -> false
    | _, _, _, Some e -> e.Layout.kind = Layout.Dir
    | _, _, _, None -> false

let file_size t path =
  match Hashtbl.find_opt t.pending path with
  | Some pw -> Some (String.length pw.data)
  | None -> (
      match lookup_entry t path with
      | exception Not_found -> None
      | _, _, _, Some e when e.Layout.kind = Layout.File ->
          let ib =
            read_inode t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
              ~what:path
          in
          Some ib.Layout.size
      | _ -> None)

let list_dir t path =
  let chain = resolve_dir_chain t (components path) in
  let dir = List.nth chain (List.length chain - 1) in
  let committed =
    List.map
      (fun (e : Layout.dir_entry) -> (e.Layout.name, e.Layout.kind = Layout.Dir))
      dir.ldb.Layout.entries
  in
  let prefix = if dir.lpath = "/" then "/" else dir.lpath ^ "/" in
  let pending =
    Hashtbl.fold
      (fun p _ acc ->
        if String.length p > String.length prefix
           && String.sub p 0 (String.length prefix) = prefix
           && not (String.contains_from p (String.length prefix) '/')
        then
          let name = String.sub p (String.length prefix) (String.length p - String.length prefix) in
          if List.mem_assoc name committed then acc else (name, false) :: acc
        else acc)
      t.pending []
  in
  List.sort compare (committed @ pending)

(* {1 Delete and rename} *)

let delete t path =
  match Hashtbl.find_opt t.pending path with
  | Some _ -> Hashtbl.remove t.pending path
  | None -> (
      let chain, parent, name, entry = lookup_entry t path in
      match entry with
      | None -> raise Not_found
      | Some e ->
          (match e.Layout.kind with
          | Layout.Dir ->
              let db =
                read_dir t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
                  ~what:path
              in
              if db.Layout.entries <> [] then
                invalid_arg (Printf.sprintf "Fs: directory %s is not empty" path);
              Cluster.remove t.cluster ~key:e.Layout.child_key ()
          | Layout.File ->
              let ib =
                read_inode t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
                  ~what:path
              in
              (match ib.Layout.contents with
              | Layout.Inline _ -> ()
              | Layout.Blocks bs ->
                  List.iter (fun (k, _) -> Cluster.remove t.cluster ~key:k ()) bs);
              Cluster.remove t.cluster ~key:e.Layout.child_key ());
          let entries =
            List.filter (fun (x : Layout.dir_entry) -> x.Layout.name <> name)
              parent.ldb.Layout.entries
          in
          commit_chain t chain { parent.ldb with Layout.entries })

let rename t ~src ~dst =
  (match Hashtbl.find_opt t.pending src with
  | Some pw ->
      Hashtbl.remove t.pending src;
      commit_file t ~path:src ~data:pw.data
  | None -> ());
  let _, _, _, src_entry = lookup_entry t src in
  let e = match src_entry with None -> raise Not_found | Some e -> e in
  (* Remove from the source parent, reserving the freed slot: the
     renamed object keeps its original keys (§4.2), so a new child
     here must never be assigned the same slot path. *)
  let chain, parent, src_name, _ = lookup_entry t src in
  let entries =
    List.filter (fun (x : Layout.dir_entry) -> x.Layout.name <> src_name)
      parent.ldb.Layout.entries
  in
  let reserved_slots = e.Layout.slot :: parent.ldb.Layout.reserved_slots in
  commit_chain t chain { parent.ldb with Layout.entries; reserved_slots };
  (* Then link into the destination parent, keeping the original keys
     (§4.2: renamed objects stay at their key-space home). *)
  let dst_parents, dst_name = split_parent dst in
  let chain = ensure_dir_chain t dst_parents in
  let parent = List.nth chain (List.length chain - 1) in
  if find_entry parent.ldb dst_name <> None then
    invalid_arg (Printf.sprintf "Fs: destination %s exists" dst);
  let slot = fresh_slot parent.ldb in
  let entry = { e with Layout.name = dst_name; slot } in
  let entries = entry :: parent.ldb.Layout.entries in
  commit_chain t chain { parent.ldb with Layout.entries }

(* {1 Snapshots}

   A snapshot pins the root directory pointer captured from the root
   block; because every metadata update publishes *new* keys and only
   removes the old ones after the store's delayed-removal window, the
   whole captured tree stays readable for that window after any
   overwrite — the paper's stale-but-consistent reader semantics. *)

type snapshot = {
  snap_fs : t;
  snap_root_dir_key : Key.t;
  snap_root_dir_hash : string;
}

let snapshot t =
  flush t;
  let rb = read_root t in
  {
    snap_fs = t;
    snap_root_dir_key = rb.Layout.root_dir_key;
    snap_root_dir_hash = rb.Layout.root_dir_hash;
  }

(* Resolve a path from the pinned root; Not_found if a block aged out. *)
let snapshot_entry s path =
  let t = s.snap_fs in
  let comps = components path in
  let rec walk ~dpath ~key ~hash = function
    | [] -> `Dir (read_dir t ~key ~expect_hash:hash ~what:dpath)
    | name :: rest -> (
        let db = read_dir t ~key ~expect_hash:hash ~what:dpath in
        match find_entry db name with
        | None -> `Missing
        | Some e -> (
            let cpath = child_path dpath name in
            match (e.Layout.kind, rest) with
            | Layout.File, [] -> `File (cpath, e)
            | Layout.File, _ ->
                invalid_arg (Printf.sprintf "Fs: %s is a file" cpath)
            | Layout.Dir, _ ->
                walk ~dpath:cpath ~key:e.Layout.child_key ~hash:e.Layout.child_hash rest))
  in
  walk ~dpath:"/" ~key:s.snap_root_dir_key ~hash:s.snap_root_dir_hash comps

let snapshot_read s path =
  let t = s.snap_fs in
  match snapshot_entry s path with
  | `Missing -> None
  | `Dir _ -> None
  | `File (what, e) -> (
      let ib =
        read_inode t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash ~what
      in
      match ib.Layout.contents with
      | Layout.Inline str -> Some str
      | Layout.Blocks bs ->
          let buf = Buffer.create ib.Layout.size in
          List.iter
            (fun (k, h) ->
              match fetch_verified t ~key:k ~expect_hash:h ~what with
              | Layout.Data str -> Buffer.add_string buf str
              | _ -> raise (Integrity_violation (what ^ ": expected a data block")))
            bs;
          Some (Buffer.contents buf))

let snapshot_list s path =
  match snapshot_entry s path with
  | `Missing -> raise Not_found
  | `File _ -> raise Not_found
  | `Dir db ->
      List.sort compare
        (List.map
           (fun (e : Layout.dir_entry) -> (e.Layout.name, e.Layout.kind = Layout.Dir))
           db.Layout.entries)

type check_report = {
  dirs : int;
  files : int;
  bytes : int;
  problems : string list;
}

let check_volume t =
  flush t;
  let dirs = ref 0 and files = ref 0 and bytes = ref 0 in
  let problems = ref [] in
  let defect fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let rec walk_dir ~path ~key ~expect_hash =
    match read_dir t ~key ~expect_hash ~what:path with
    | exception Not_found -> defect "%s: directory block missing" path
    | exception Integrity_violation what -> defect "%s: corrupt (%s)" path what
    | db ->
        incr dirs;
        List.iter
          (fun (e : Layout.dir_entry) ->
            let cpath = child_path path e.Layout.name in
            match e.Layout.kind with
            | Layout.Dir ->
                walk_dir ~path:cpath ~key:e.Layout.child_key
                  ~expect_hash:e.Layout.child_hash
            | Layout.File -> walk_file ~path:cpath ~key:e.Layout.child_key
                               ~expect_hash:e.Layout.child_hash)
          db.Layout.entries
  and walk_file ~path ~key ~expect_hash =
    match read_inode t ~key ~expect_hash ~what:path with
    | exception Not_found -> defect "%s: inode missing" path
    | exception Integrity_violation what -> defect "%s: corrupt inode (%s)" path what
    | ib -> (
        incr files;
        match ib.Layout.contents with
        | Layout.Inline s -> bytes := !bytes + String.length s
        | Layout.Blocks bs ->
            List.iteri
              (fun i (k, h) ->
                match fetch_verified t ~key:k ~expect_hash:h ~what:path with
                | Layout.Data s -> bytes := !bytes + String.length s
                | _ -> defect "%s: block %d is not a data block" path i
                | exception Not_found -> defect "%s: block %d missing" path i
                | exception Integrity_violation _ ->
                    defect "%s: block %d corrupt" path i)
              bs)
  in
  (match read_root t with
  | exception Integrity_violation what -> defect "root: %s" what
  | exception Invalid_argument msg -> defect "%s" msg
  | rb ->
      walk_dir ~path:"/" ~key:rb.Layout.root_dir_key
        ~expect_hash:rb.Layout.root_dir_hash);
  { dirs = !dirs; files = !files; bytes = !bytes; problems = List.rev !problems }

let file_block_keys t path =
  flush t;
  match lookup_entry t path with
  | _, _, _, Some e when e.Layout.kind = Layout.File ->
      let ib =
        read_inode t ~key:e.Layout.child_key ~expect_hash:e.Layout.child_hash
          ~what:path
      in
      e.Layout.child_key
      ::
      (match ib.Layout.contents with
      | Layout.Inline _ -> []
      | Layout.Blocks bs -> List.map fst bs)
  | _ -> raise Not_found
