(** On-DHT block formats of D2-FS (paper §3, Fig. 2).

    Four block types: a mutable {e root block}, immutable {e directory}
    blocks, {e inode} blocks and raw {e data} blocks.  Every pointer to
    a child block carries the child's current DHT key and a content
    hash, so signing (here: hashing) the root transitively
    authenticates all metadata, and readers verify every block they
    fetch.  Blocks serialize to a compact length-prefixed binary form;
    all metadata blocks must fit in 8 KB ({!Op.block_size} in the trace
    library; 8192 here). *)

module Key = D2_keyspace.Key

val max_block_bytes : int
(** 8192. *)

val inline_threshold : int
(** Files up to this size (512 bytes) are stored inline in their
    inode instead of in separate data blocks (§3, "when the amount of
    file data ... is small enough"). *)

type entry_kind = Dir | File

type dir_entry = {
  name : string;
  slot : int;  (** the child's 2-byte slot in this directory (D2 keys) *)
  kind : entry_kind;
  child_key : Key.t;  (** current key of the child's metadata block *)
  child_hash : string;  (** content hash of the child's metadata block *)
}

type dir_block = {
  dir_slots : int list;  (** this directory's own slot path (its key-space home) *)
  dir_generation : int;  (** bumped on every change; feeds key version hashes *)
  reserved_slots : int list;
  (** slots of children renamed away: a renamed object keeps its
      original keys (§4.2), so its old slot must never be reassigned
      here or a new child would collide with the live renamed object *)
  entries : dir_entry list;
}

type inode_block = {
  size : int;  (** file size in bytes *)
  generation : int;  (** bumped on every overwrite; feeds key version hashes *)
  contents : file_contents;
}

and file_contents =
  | Inline of string
  | Blocks of (Key.t * string) list  (** (data block key, content hash) per block *)

type root_block = {
  volume : string;  (** volume name *)
  root_dir_key : Key.t;
  root_dir_hash : string;
  root_version : int;
  signature : string;  (** hash chain standing in for the publisher signature *)
}

type block =
  | Root of root_block
  | Directory of dir_block
  | Inode of inode_block
  | Data of string

val encode : block -> string
(** @raise Invalid_argument if a metadata block exceeds
    {!max_block_bytes}. *)

val decode : string -> block
(** @raise Invalid_argument on malformed input. *)

val content_hash : string -> string
(** 16-byte digest used for integrity pointers. *)

val sign_root : volume:string -> root_dir_key:Key.t -> root_dir_hash:string -> version:int -> string
(** The root "signature" (hash chain over the signed fields). *)

val verify_root : root_block -> bool
