lib/fs/fs.mli: D2_keyspace D2_store
