lib/fs/layout.ml: Buffer Char D2_keyspace List Printf String
