lib/fs/fs.ml: Array Buffer Bytes D2_cache D2_keyspace D2_simnet D2_store Hashtbl Int32 Int64 Layout List Printf String
