lib/fs/layout.mli: D2_keyspace
