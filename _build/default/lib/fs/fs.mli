(** D2-FS: the file-system layer over D2-Store (paper §3–§4).

    A volume is a tree of directories and files stored as blocks in a
    {!D2_store.Cluster}.  All blocks are immutable except the root
    block, which is updated in place; every pointer carries a content
    hash, so each read verifies integrity up from the (hash-signed)
    root.  A write inserts the new data blocks and then fresh versions
    of every metadata block on the path to the root, so readers always
    see an internally consistent snapshot.

    The [mode] selects the key policy the paper compares:
    - [D2]: locality-preserving slot-path keys (Fig. 4).  Sibling
      files and the blocks of one file get adjacent keys.
    - [Traditional]: every block keyed by an independent hash (CFS
      style).
    - [Traditional_file]: one hash per file; all its blocks share the
      ring point (PAST style).

    A 30-second write-back cache buffers file writes: short-lived
    temporary files never reach the DHT, and the metadata-path
    rewrite cost of rapid successive writes is absorbed (§3).  The
    cache flushes on the cluster's virtual clock; [flush] forces it.

    Paths are absolute, [/]-separated ([/a/b/c]); the root is [/]. *)

module Key = D2_keyspace.Key

type mode = D2 | Traditional | Traditional_file

exception Integrity_violation of string
(** A fetched block's content hash did not match its pointer, or the
    root signature check failed. *)

type t

val create :
  cluster:D2_store.Cluster.t ->
  volume:string ->
  mode:mode ->
  ?write_back:bool ->
  unit ->
  t
(** Initialize an empty volume (writes its root block and root
    directory).  [write_back] (default true) enables the 30 s
    write-back cache; when false, writes commit synchronously. *)

val mode : t -> mode
val volume : t -> string

val mkdir : t -> string -> unit
(** Create a directory, with intermediate directories as needed.
    Idempotent. *)

val write_file : t -> path:string -> data:string -> unit
(** Create or overwrite a file (parents created as needed). With
    write-back enabled the commit happens up to 30 s later on the
    virtual clock. *)

val read_file : t -> string -> string option
(** File contents, with integrity verification on every block.
    Pending write-back data is visible to the writer. [None] if
    absent.
    @raise Integrity_violation on hash mismatch. *)

val read_range : t -> path:string -> offset:int -> length:int -> string option
(** NFS-style partial read: up to [length] bytes starting at [offset]
    (shorter at end of file; [""] past it).  Only the blocks covering
    the range are fetched.
    @raise Invalid_argument on a negative offset/length.
    @raise Integrity_violation on hash mismatch. *)

val write_range : t -> path:string -> offset:int -> data:string -> unit
(** NFS-style partial write: read-modify-write of the blocks covering
    [offset, offset + length), extending the file (zero-filled) if the
    range lies past the current end.  Creates the file if absent.
    Like any write, it re-publishes the metadata chain to the root. *)

val delete : t -> string -> unit
(** Remove a file (its blocks are removed after the store's delayed
    removal — quick removal preserves locality, §3). A pending
    write-back write is simply cancelled.
    @raise Not_found if absent. *)

val rename : t -> src:string -> dst:string -> unit
(** Move a file or directory.  Per §4.2, the moved object {e keeps its
    original keys}; only the directory entries change, so no data
    migrates and key-space locality of the subtree is preserved at its
    original home.
    @raise Not_found if [src] is absent. *)

val list_dir : t -> string -> (string * bool) list
(** Entries of a directory as (name, is_directory), sorted by name.
    @raise Not_found if absent. *)

val exists : t -> string -> bool
val is_dir : t -> string -> bool

val file_size : t -> string -> int option

val flush : t -> unit
(** Commit all pending write-back writes now. *)

val file_block_keys : t -> string -> Key.t list
(** DHT keys of a file's metadata + data blocks (flushes first) — lets
    callers and tests inspect placement/locality. @raise Not_found. *)

val blocks_fetched : t -> int
(** Cumulative DHT block fetches performed by this client (cache
    hits excluded) — the locality statistic tests assert on. *)

type snapshot
(** A pinned, internally consistent view of the volume (§3: "all
    readers will see an internally consistent view"; §4.2: version
    fields let "slightly stale views still access the old versions").
    A snapshot pins the root block's state at capture time; its reads
    keep working as long as the superseded blocks survive — i.e. for
    the store's delayed-removal window (30 s) past any overwrite. *)

val snapshot : t -> snapshot
(** Capture the current committed state (pending write-back data is
    flushed first so the writer's own view is included). *)

val snapshot_read : snapshot -> string -> string option
(** Read a file as of the snapshot.
    @raise Not_found if the snapshot has aged out (a superseded block
    was already removed).
    @raise Integrity_violation on hash mismatch. *)

val snapshot_list : snapshot -> string -> (string * bool) list
(** List a directory as of the snapshot. @raise Not_found as above. *)

type check_report = {
  dirs : int;  (** directories verified *)
  files : int;  (** files verified *)
  bytes : int;  (** file bytes verified against content hashes *)
  problems : string list;  (** human-readable description per defect *)
}

val check_volume : t -> check_report
(** Full-volume integrity walk (an fsck): verifies the root signature
    and every reachable metadata and data block against its pointer's
    content hash.  Never raises; defects are returned in
    [problems]. Flushes pending writes first. *)
