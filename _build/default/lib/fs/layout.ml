module Key = D2_keyspace.Key
module Hashing = D2_keyspace.Hashing

let max_block_bytes = 8192
let inline_threshold = 512

type entry_kind = Dir | File

type dir_entry = {
  name : string;
  slot : int;
  kind : entry_kind;
  child_key : Key.t;
  child_hash : string;
}

type dir_block = {
  dir_slots : int list;
  dir_generation : int;
  reserved_slots : int list;
  entries : dir_entry list;
}

type inode_block = { size : int; generation : int; contents : file_contents }

and file_contents = Inline of string | Blocks of (Key.t * string) list

type root_block = {
  volume : string;
  root_dir_key : Key.t;
  root_dir_hash : string;
  root_version : int;
  signature : string;
}

type block =
  | Root of root_block
  | Directory of dir_block
  | Inode of inode_block
  | Data of string

(* {1 Codec}

   Length-prefixed binary encoding.  Integers are big-endian; strings
   are u32-length-prefixed.  The first byte tags the block type. *)

let put_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let put_u16 buf v =
  put_u8 buf (v lsr 8);
  put_u8 buf v

let put_u32 buf v =
  put_u16 buf (v lsr 16);
  put_u16 buf v

let put_str buf s =
  put_u32 buf (String.length s);
  Buffer.add_string buf s

type reader = { src : string; mutable pos : int }

let fail () = invalid_arg "Layout.decode: malformed block"

let get_u8 r =
  if r.pos >= String.length r.src then fail ();
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u16 r =
  let a = get_u8 r in
  (a lsl 8) lor get_u8 r

let get_u32 r =
  let a = get_u16 r in
  (a lsl 16) lor get_u16 r

let get_str r =
  let n = get_u32 r in
  if r.pos + n > String.length r.src then fail ();
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_key r =
  let s = get_str r in
  if String.length s <> Key.size then fail ();
  Key.of_string s

let content_hash s = Hashing.bytes 16 ("block:" ^ s)

let sign_root ~volume ~root_dir_key ~root_dir_hash ~version =
  Hashing.bytes 16
    (Printf.sprintf "root|%s|%s|%s|%d" volume
       (Key.to_string root_dir_key)
       root_dir_hash version)

let verify_root rb =
  String.equal rb.signature
    (sign_root ~volume:rb.volume ~root_dir_key:rb.root_dir_key
       ~root_dir_hash:rb.root_dir_hash ~version:rb.root_version)

let encode block =
  let buf = Buffer.create 256 in
  (match block with
  | Root rb ->
      put_u8 buf 0;
      put_str buf rb.volume;
      put_str buf (Key.to_string rb.root_dir_key);
      put_str buf rb.root_dir_hash;
      put_u32 buf rb.root_version;
      put_str buf rb.signature
  | Directory db ->
      put_u8 buf 1;
      put_u16 buf (List.length db.dir_slots);
      List.iter (put_u16 buf) db.dir_slots;
      put_u32 buf db.dir_generation;
      put_u32 buf (List.length db.reserved_slots);
      List.iter (put_u16 buf) db.reserved_slots;
      put_u32 buf (List.length db.entries);
      List.iter
        (fun e ->
          put_str buf e.name;
          put_u16 buf e.slot;
          put_u8 buf (match e.kind with Dir -> 0 | File -> 1);
          put_str buf (Key.to_string e.child_key);
          put_str buf e.child_hash)
        db.entries
  | Inode ib ->
      put_u8 buf 2;
      put_u32 buf ib.size;
      put_u32 buf ib.generation;
      (match ib.contents with
      | Inline s ->
          put_u8 buf 0;
          put_str buf s
      | Blocks bs ->
          put_u8 buf 1;
          put_u32 buf (List.length bs);
          List.iter
            (fun (k, h) ->
              put_str buf (Key.to_string k);
              put_str buf h)
            bs)
  | Data s ->
      put_u8 buf 3;
      put_str buf s);
  let s = Buffer.contents buf in
  (match block with
  | Data _ -> ()
  | Root _ | Directory _ | Inode _ ->
      if String.length s > max_block_bytes then
        invalid_arg "Layout.encode: metadata block exceeds 8 KB");
  s

let decode s =
  let r = { src = s; pos = 0 } in
  let block =
    match get_u8 r with
    | 0 ->
        let volume = get_str r in
        let root_dir_key = get_key r in
        let root_dir_hash = get_str r in
        let root_version = get_u32 r in
        let signature = get_str r in
        Root { volume; root_dir_key; root_dir_hash; root_version; signature }
    | 1 ->
        let nslots = get_u16 r in
        let dir_slots = List.init nslots (fun _ -> get_u16 r) in
        let dir_generation = get_u32 r in
        let nreserved = get_u32 r in
        let reserved_slots = List.init nreserved (fun _ -> get_u16 r) in
        let n = get_u32 r in
        let entries =
          List.init n (fun _ ->
              let name = get_str r in
              let slot = get_u16 r in
              let kind = match get_u8 r with 0 -> Dir | 1 -> File | _ -> fail () in
              let child_key = get_key r in
              let child_hash = get_str r in
              { name; slot; kind; child_key; child_hash })
        in
        Directory { dir_slots; dir_generation; reserved_slots; entries }
    | 2 ->
        let size = get_u32 r in
        let generation = get_u32 r in
        let contents =
          match get_u8 r with
          | 0 -> Inline (get_str r)
          | 1 ->
              let n = get_u32 r in
              Blocks
                (List.init n (fun _ ->
                     let k = get_key r in
                     let h = get_str r in
                     (k, h)))
          | _ -> fail ()
        in
        Inode { size; generation; contents }
    | 3 -> Data (get_str r)
    | _ -> fail ()
  in
  if r.pos <> String.length s then fail ();
  block
