lib/dht/ring.ml: Array D2_keyspace Hashtbl List
