lib/dht/router.mli: D2_keyspace D2_util Ring
