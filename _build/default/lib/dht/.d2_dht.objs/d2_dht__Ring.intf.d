lib/dht/ring.mli: D2_keyspace
