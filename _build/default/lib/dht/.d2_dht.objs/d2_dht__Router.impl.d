lib/dht/router.ml: Array D2_keyspace D2_util List Printf Ring
