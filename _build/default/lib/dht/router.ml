module Key = D2_keyspace.Key
module Rng = D2_util.Rng

type policy = Fingers | Harmonic of int | Successor_only

let policy_name = function
  | Fingers -> "fingers"
  | Harmonic k -> Printf.sprintf "harmonic-%d" k
  | Successor_only -> "successor-only"

type t = {
  ring : Ring.t;
  pol : policy;
  rng : Rng.t;
  mutable offsets : int array array;
  (** per rank: sorted outgoing link rank-offsets (all ≥ 1) *)
}

(* Sample a rank offset in [1, n) with P(d) ∝ 1/d. *)
let harmonic_offset rng n =
  let u = Rng.float rng 1.0 in
  let d = int_of_float (float_of_int n ** u) in
  max 1 (min (n - 1) d)

let build_tables t =
  let n = Ring.size t.ring in
  let table rank =
    let offs =
      match t.pol with
      | Successor_only -> [ 1 ]
      | Fingers ->
          let rec powers acc p = if p >= n then acc else powers (p :: acc) (2 * p) in
          powers [] 1
      | Harmonic k ->
          ignore rank;
          1 :: List.init (max 0 k) (fun _ -> harmonic_offset t.rng n)
    in
    let offs = List.sort_uniq compare (List.filter (fun d -> d >= 1 && d < n) offs) in
    Array.of_list offs
  in
  t.offsets <- Array.init n table

let create ~ring ~policy ~rng =
  if Ring.size ring = 0 then invalid_arg "Router.create: empty ring";
  let t = { ring; pol = policy; rng; offsets = [||] } in
  build_tables t;
  t

let rebuild t = build_tables t

let policy t = t.pol

let links_of t ~node =
  let n = Ring.size t.ring in
  let rank = Ring.rank_of t.ring ~node in
  Array.to_list (Array.map (fun d -> Ring.node_at t.ring ((rank + d) mod n)) t.offsets.(rank))

let route t ~src ~key =
  let n = Ring.size t.ring in
  if n <> Array.length t.offsets then
    invalid_arg "Router.route: ring changed since build; call rebuild";
  let owner = Ring.successor t.ring key in
  let target = Ring.rank_of t.ring ~node:owner in
  let rec go rank acc steps =
    if steps > 2 * n then invalid_arg "Router.route: routing did not converge"
    else begin
      let d = ((target - rank) mod n + n) mod n in
      if d = 0 then List.rev acc
      else begin
        (* Farthest link that does not overshoot the owner. *)
        let best = ref 1 in
        Array.iter (fun off -> if off <= d && off > !best then best := off) t.offsets.(rank);
        let next = (rank + !best) mod n in
        go next (Ring.node_at t.ring next :: acc) (steps + 1)
      end
    end
  in
  go (Ring.rank_of t.ring ~node:src) [] 0

let hops t ~src ~key = List.length (route t ~src ~key)
