let traditional_block ~volume ~path ~block ~version =
  Hashing.uniform_key
    (Printf.sprintf "tb|%s|%s|%Ld|%ld" volume path block version)

let traditional_file ~volume ~path ~block ~version =
  let prefix = Hashing.bytes 52 (Printf.sprintf "tf|%s|%s" volume path) in
  let b = Bytes.make Key.size '\000' in
  Bytes.blit_string prefix 0 b 0 52;
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set b (52 + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical block shift) 0xFFL)))
  done;
  for i = 0 to 3 do
    let shift = 8 * (3 - i) in
    Bytes.set b (60 + i)
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical version shift) 0xFFl)))
  done;
  Key.of_string (Bytes.unsafe_to_string b)

let d2 ~volume ~slots ~block ~version =
  Encoding.of_slot_path ~volume ~slots ~block ~version
