(** Key construction policies for the three system configurations the
    paper compares (§7, §8.1).

    - {e traditional}: every block gets an independent (content-hash)
      key, so consistent hashing scatters the blocks of one file over
      many nodes.
    - {e traditional-file}: all blocks of a file share a hashed
      per-file prefix and differ only in the trailing block number, so
      the whole file lands on one node, but files are scattered.
    - {e D2}: the locality-preserving encoding of {!Encoding}. *)

val traditional_block :
  volume:string -> path:string -> block:int64 -> version:int32 -> Key.t
(** Independent pseudo-content-hash key per (path, block, version). *)

val traditional_file :
  volume:string -> path:string -> block:int64 -> version:int32 -> Key.t
(** 52-byte hashed (volume, path) prefix, 8-byte block number, 4-byte
    version — every block of the file maps to the same ring point and
    hence the same successor node. *)

val d2 :
  volume:string -> slots:int list -> block:int64 -> version:int32 -> Key.t
(** Locality-preserving key (delegates to {!Encoding.of_slot_path}). *)
