(** The D2-FS locality-preserving key encoding (paper §4.2, Fig. 4).

    Layout of the 64-byte key:

    {v
      bytes  0..19  volume id                      (20 bytes)
      bytes 20..43  12 x 2-byte directory slots    (24 bytes)
      bytes 44..51  hash of the path remainder     ( 8 bytes)
      bytes 52..59  block number                   ( 8 bytes)
      bytes 60..63  version hash                   ( 4 bytes)
    v}

    Each file or subdirectory is assigned an unused 2-byte {e slot} in
    its parent directory when it is created; a file's slot path (the
    slots from the volume root down to the file) therefore orders keys
    consistently with a preorder traversal of the namespace.  Slot
    value [0] is reserved as "unused" padding, so real slots range
    over 1..65535 (the paper's 64K files per directory).  Paths deeper
    than 12 levels keep locality for their first 12 components and
    hash the remainder (< 1% of files in the paper's traces). *)

val max_levels : int
(** 12: slot-path components representable before hashing kicks in. *)

val max_slot : int
(** 65535. *)

type fields = {
  volume : string;  (** exactly 20 bytes *)
  slots : int array;  (** the first [<= max_levels] slot-path components, each 1..65535 *)
  remainder_hash : int64;  (** 0 when the whole path fits in [slots] *)
  block : int64;  (** 0 = the object's metadata block; data blocks count from 1 *)
  version : int32;  (** distinguishes versions of an overwritten block *)
}

val encode : fields -> Key.t
(** @raise Invalid_argument if [volume] is not 20 bytes, [slots] is
    longer than [max_levels], or any slot is outside 1..[max_slot]. *)

val decode : Key.t -> fields
(** Inverse of [encode] (the remainder hash is recovered as stored;
    the hashed path components themselves are not recoverable). *)

val volume_id : string -> string
(** Derive a 20-byte volume id from a volume name. *)

val of_slot_path :
  volume:string -> slots:int list -> block:int64 -> version:int32 -> Key.t
(** Build a key from a full slot path of any depth: the first
    [max_levels] components are encoded positionally and any excess is
    hashed into the remainder field. *)

val slot_prefix_key : volume:string -> slots:int list -> Key.t
(** Smallest key of the subtree rooted at the given slot path — with
    {!slot_prefix_upper_bound} this brackets all keys under a
    directory, which the analyzers use to reason about namespace
    ranges. *)

val slot_prefix_upper_bound : volume:string -> slots:int list -> Key.t
(** Largest possible key under the given slot path. *)
