(** Hash primitives for key construction and block integrity.

    The paper uses SHA-1 content hashes and publisher signatures; this
    reproduction uses stdlib MD5 ([Digest]) chains, which preserve the
    behaviour that matters (deterministic, uniform, collision-unlikely
    identifiers) without cryptographic claims — see DESIGN.md §2. *)

val bytes : int -> string -> string
(** [bytes n s] is an [n]-byte deterministic digest of [s] ([n] ≤ 64),
    built by chaining MD5 blocks. *)

val int64_of : string -> int64
(** First 8 digest bytes as a big-endian int64 (used for the Fig. 4
    "hash of path remainder" field). *)

val int32_of : string -> int32
(** First 4 digest bytes (used for the Fig. 4 version-hash field). *)

val uniform_key : string -> Key.t
(** Full 64-byte digest-derived key: the traditional configuration's
    content-hash key for a block. *)
