type t = string

let size = 64

let of_string s =
  if String.length s <> size then
    invalid_arg
      (Printf.sprintf "Key.of_string: expected %d bytes, got %d" size
         (String.length s));
  s

let to_string t = t
let compare = String.compare
let equal = String.equal

let zero = String.make size '\000'
let max_key = String.make size '\255'

let succ t =
  let b = Bytes.of_string t in
  let rec carry i =
    if i < 0 then () (* wrapped: all bytes were 0xff, result is all zero *)
    else begin
      let v = Char.code (Bytes.get b i) in
      if v = 0xff then begin
        Bytes.set b i '\000';
        carry (i - 1)
      end
      else Bytes.set b i (Char.chr (v + 1))
    end
  in
  carry (size - 1);
  Bytes.unsafe_to_string b

let pred t =
  let b = Bytes.of_string t in
  let rec borrow i =
    if i < 0 then () (* wrapped: all bytes were 0, result is all 0xff *)
    else begin
      let v = Char.code (Bytes.get b i) in
      if v = 0 then begin
        Bytes.set b i '\255';
        borrow (i - 1)
      end
      else Bytes.set b i (Char.chr (v - 1))
    end
  in
  borrow (size - 1);
  Bytes.unsafe_to_string b

let in_interval k ~lo ~hi =
  let c = compare lo hi in
  if c = 0 then true
  else if c < 0 then compare lo k < 0 && compare k hi <= 0
  else compare lo k < 0 || compare k hi <= 0

let random rng =
  let b = Bytes.create size in
  D2_util.Rng.bits rng b;
  Bytes.unsafe_to_string b

let to_hex t =
  let buf = Buffer.create (2 * size) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) t;
  Buffer.contents buf

let of_hex s =
  if String.length s <> 2 * size then invalid_arg "Key.of_hex: wrong length";
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> invalid_arg "Key.of_hex: bad digit"
  in
  String.init size (fun i ->
      Char.chr ((digit s.[2 * i] * 16) + digit s.[(2 * i) + 1]))

let short_hex t = String.sub (to_hex t) 0 8

let pp fmt t = Format.pp_print_string fmt (short_hex t)
