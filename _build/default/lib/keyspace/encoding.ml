let max_levels = 12
let max_slot = 0xffff
let volume_bytes = 20

type fields = {
  volume : string;
  slots : int array;
  remainder_hash : int64;
  block : int64;
  version : int32;
}

let put_int64 b off v =
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xFFL)))
  done

let get_int64 s off =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.(logor (shift_left !acc 8) (of_int (Char.code s.[off + i])))
  done;
  !acc

let put_int32 b off v =
  for i = 0 to 3 do
    let shift = 8 * (3 - i) in
    Bytes.set b (off + i)
      (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v shift) 0xFFl)))
  done

let get_int32 s off =
  let acc = ref 0l in
  for i = 0 to 3 do
    acc := Int32.(logor (shift_left !acc 8) (of_int (Char.code s.[off + i])))
  done;
  !acc

let encode f =
  if String.length f.volume <> volume_bytes then
    invalid_arg "Encoding.encode: volume id must be 20 bytes";
  if Array.length f.slots > max_levels then
    invalid_arg "Encoding.encode: too many slot levels";
  Array.iter
    (fun s ->
      if s < 1 || s > max_slot then
        invalid_arg "Encoding.encode: slot out of range 1..65535")
    f.slots;
  let b = Bytes.make Key.size '\000' in
  Bytes.blit_string f.volume 0 b 0 volume_bytes;
  Array.iteri
    (fun i s ->
      let off = volume_bytes + (2 * i) in
      Bytes.set b off (Char.chr (s lsr 8));
      Bytes.set b (off + 1) (Char.chr (s land 0xff)))
    f.slots;
  put_int64 b 44 f.remainder_hash;
  put_int64 b 52 f.block;
  put_int32 b 60 f.version;
  Key.of_string (Bytes.unsafe_to_string b)

let decode key =
  let s = Key.to_string key in
  let volume = String.sub s 0 volume_bytes in
  let raw_slots =
    Array.init max_levels (fun i ->
        let off = volume_bytes + (2 * i) in
        (Char.code s.[off] lsl 8) lor Char.code s.[off + 1])
  in
  (* Depth is the number of leading non-zero slots. *)
  let depth = ref 0 in
  (try
     for i = 0 to max_levels - 1 do
       if raw_slots.(i) = 0 then raise Exit;
       incr depth
     done
   with Exit -> ());
  {
    volume;
    slots = Array.sub raw_slots 0 !depth;
    remainder_hash = get_int64 s 44;
    block = get_int64 s 52;
    version = get_int32 s 60;
  }

let volume_id name = Hashing.bytes volume_bytes ("volume:" ^ name)

let split_slots slots =
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> take (n - 1) (x :: acc) rest
  in
  take max_levels [] slots

let remainder_hash_of = function
  | [] -> 0L
  | rest ->
      Hashing.int64_of (String.concat "/" (List.map string_of_int rest))

let of_slot_path ~volume ~slots ~block ~version =
  let head, rest = split_slots slots in
  encode
    {
      volume;
      slots = Array.of_list head;
      remainder_hash = remainder_hash_of rest;
      block;
      version;
    }

let slot_prefix_key ~volume ~slots =
  let head, rest = split_slots slots in
  encode
    {
      volume;
      slots = Array.of_list head;
      remainder_hash = remainder_hash_of rest;
      block = 0L;
      version = 0l;
    }

let slot_prefix_upper_bound ~volume ~slots =
  let lo = slot_prefix_key ~volume ~slots in
  let b = Bytes.of_string (Key.to_string lo) in
  let depth = List.length slots in
  (* Saturate every field below the fixed prefix.  When the path is
     deeper than [max_levels] the remainder hash pins an exact subtree,
     so only the block/version fields vary under it. *)
  let first_free =
    if depth > max_levels then 52 else volume_bytes + (2 * depth)
  in
  for i = first_free to Key.size - 1 do
    Bytes.set b i '\255'
  done;
  Key.of_string (Bytes.unsafe_to_string b)
