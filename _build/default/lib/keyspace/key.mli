(** 64-byte DHT keys.

    D2 keys (paper §4.2, Fig. 4) are 64-byte strings compared
    lexicographically; the key space is a ring, so interval tests wrap
    around the maximum key.  Node IDs live in the same space. *)

type t

val size : int
(** Always 64. *)

val of_string : string -> t
(** @raise Invalid_argument if the string is not exactly [size] bytes. *)

val to_string : t -> string

val compare : t -> t -> int
val equal : t -> t -> bool

val zero : t
(** All-zero key: the smallest point of the ring. *)

val max_key : t
(** All-0xff key: the largest point of the ring. *)

val succ : t -> t
(** Next key on the ring ([max_key] wraps to [zero]). *)

val pred : t -> t
(** Previous key on the ring ([zero] wraps to [max_key]). *)

val in_interval : t -> lo:t -> hi:t -> bool
(** [in_interval k ~lo ~hi] is membership of [k] in the half-open ring
    interval [(lo, hi]].  When [lo = hi] the interval is the full ring
    (a single node owns everything).  This is exactly the "successor
    owns the key" rule of consistent hashing. *)

val random : D2_util.Rng.t -> t
(** Uniformly random key — models a content-hash key in the
    traditional configuration. *)

val of_hex : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_hex : t -> string

val short_hex : t -> string
(** First 8 hex digits, for logs. *)

val pp : Format.formatter -> t -> unit
