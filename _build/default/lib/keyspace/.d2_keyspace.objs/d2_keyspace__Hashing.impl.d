lib/keyspace/hashing.ml: Buffer Char Digest Int32 Int64 Key String
