lib/keyspace/keygen.ml: Bytes Char Encoding Hashing Int32 Int64 Key Printf
