lib/keyspace/encoding.mli: Key
