lib/keyspace/keygen.mli: Key
