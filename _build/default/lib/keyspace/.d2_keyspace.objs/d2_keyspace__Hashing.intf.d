lib/keyspace/hashing.mli: Key
