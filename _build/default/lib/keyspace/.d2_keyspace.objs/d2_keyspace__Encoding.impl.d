lib/keyspace/encoding.ml: Array Bytes Char Hashing Int32 Int64 Key List String
