lib/keyspace/key.ml: Buffer Bytes Char D2_util Format Printf String
