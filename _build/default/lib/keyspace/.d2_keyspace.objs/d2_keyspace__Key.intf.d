lib/keyspace/key.mli: D2_util Format
