let bytes n s =
  if n < 0 || n > 64 then invalid_arg "Hashing.bytes: n out of range";
  let buf = Buffer.create 64 in
  let block = ref (Digest.string s) in
  while Buffer.length buf < n do
    Buffer.add_string buf !block;
    block := Digest.string !block
  done;
  Buffer.sub buf 0 n

let int64_of s =
  let d = bytes 8 s in
  let acc = ref 0L in
  String.iter (fun c -> acc := Int64.(logor (shift_left !acc 8) (of_int (Char.code c)))) d;
  !acc

let int32_of s =
  let d = bytes 4 s in
  let acc = ref 0l in
  String.iter (fun c -> acc := Int32.(logor (shift_left !acc 8) (of_int (Char.code c)))) d;
  !acc

let uniform_key s = Key.of_string (bytes 64 s)
