lib/balance/balancer.ml: D2_dht D2_keyspace D2_simnet D2_store D2_util Logs
