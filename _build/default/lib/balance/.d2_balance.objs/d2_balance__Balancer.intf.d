lib/balance/balancer.mli: D2_store D2_util
