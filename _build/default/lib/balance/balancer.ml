module Cluster = D2_store.Cluster
module Ring = D2_dht.Ring
module Engine = D2_simnet.Engine
module Rng = D2_util.Rng
module Key = D2_keyspace.Key

let log_src = Logs.Src.create "d2.balance" ~doc:"Karger-Ruhl load balancing events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = { probe_interval : float; threshold : float }

let default_config = { probe_interval = 600.0; threshold = 4.0 }

type stats = { probes : int; moves : int }

type t = { mutable probes : int; mutable moves : int }

let stats t : stats = { probes = t.probes; moves = t.moves }

(* Pick an unused ring ID at or just below the wanted split point. *)
let free_id_near ring wanted =
  let rec search key attempts =
    if attempts = 0 then None
    else if Ring.id_taken ring key then search (Key.pred key) (attempts - 1)
    else Some key
  in
  search wanted 64

let do_probe ~cluster ~(cfg : config) ~prober ~target =
  let open Cluster in
  if prober = target then false
  else if not (is_up cluster ~node:prober && is_up cluster ~node:target) then false
  else begin
    let lp = (node_stats cluster prober).primary_bytes in
    let lt = (node_stats cluster target).primary_bytes in
    if float_of_int lt > cfg.threshold *. float_of_int (max lp 1) then begin
      match median_primary_key cluster ~node:target with
      | None -> false
      | Some split -> (
          match free_id_near (ring cluster) split with
          | None -> false
          | Some id ->
              if Key.equal (Ring.id_of (ring cluster) ~node:prober) id then false
              else begin
                Log.debug (fun m ->
                    m "node %d (%d B) splits node %d (%d B) at %s" prober lp target
                      lt (Key.short_hex id));
                change_id cluster ~node:prober ~id;
                true
              end)
    end
    else false
  end

let probe_once ~cluster ?(config = default_config) ~prober ~target () =
  do_probe ~cluster ~cfg:config ~prober ~target

let attach ~cluster ~rng ?(config = default_config) ~until () =
  let cfg = config in
  let t = { probes = 0; moves = 0 } in
  let engine = Cluster.engine cluster in
  let n = Cluster.node_count cluster in
  for node = 0 to n - 1 do
    let node_rng = Rng.split rng in
    (* Stagger the first probe uniformly within one interval. *)
    let first = Rng.float node_rng cfg.probe_interval in
    let rec tick () =
      if Engine.now engine <= until then begin
        if Cluster.is_up cluster ~node then begin
          let target = Rng.int node_rng n in
          t.probes <- t.probes + 1;
          if do_probe ~cluster ~cfg ~prober:node ~target then
            t.moves <- t.moves + 1
        end;
        ignore (Engine.schedule_in engine ~delay:cfg.probe_interval tick)
      end
    in
    ignore (Engine.schedule_in engine ~delay:first tick)
  done;
  t
