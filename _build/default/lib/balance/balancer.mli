(** Karger–Ruhl / Mercury dynamic load balancing (paper §6).

    Each node periodically probes a uniformly random other node; if
    the probed node's (primary) load exceeds [threshold] times its
    own, the prober leaves its ring position and rejoins as the
    predecessor of the probed node, taking half of its load.  With
    threshold ≥ 4 every node ends up within a constant factor of the
    average load in O(log n) steps w.h.p. (Karger & Ruhl, SPAA'04);
    the paper — and our default — uses threshold 4 and a 10-minute
    probe interval.

    The actual data movement that an ID change implies is delegated to
    {!D2_store.Cluster.change_id}, which uses block pointers to defer
    and often avoid transfers. *)

type config = {
  probe_interval : float;  (** seconds; paper: 600 *)
  threshold : float;  (** load ratio that triggers a move; paper: 4 *)
}

val default_config : config

type stats = {
  probes : int;
  moves : int;  (** ID changes performed *)
}

type t

val attach :
  cluster:D2_store.Cluster.t ->
  rng:D2_util.Rng.t ->
  ?config:config ->
  until:float ->
  unit ->
  t
(** Start per-node probe timers (staggered within the first interval)
    on the cluster's engine, active until the given virtual time. *)

val stats : t -> stats

val probe_once : cluster:D2_store.Cluster.t -> ?config:config -> prober:int -> target:int -> unit -> bool
(** One synchronous probe step (testing hook): [prober] compares loads
    with [target] and moves if imbalanced. Returns whether a move
    happened. *)
