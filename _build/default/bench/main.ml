(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (via d2_experiments) and then runs Bechamel
   micro-benchmarks of the core data-structure operations.

   Scale is controlled by D2_SCALE (paper | quick); see
   lib/experiments/config.mli.  Pass experiment ids as argv to run a
   subset, e.g. `dune exec bench/main.exe -- fig9 fig13`. *)

module Config = D2_experiments.Config
module Registry = D2_experiments.Registry
module Key = D2_keyspace.Key
module Encoding = D2_keyspace.Encoding
module Ring = D2_dht.Ring
module Rng = D2_util.Rng
module Lookup_cache = D2_cache.Lookup_cache

let run_experiments scale ids =
  let entries =
    match ids with
    | [] -> Registry.all
    | ids ->
        List.filter_map
          (fun id ->
            match Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment id %S (see `d2ctl list`)\n%!" id;
                None)
          ids
  in
  Printf.printf "== D2 evaluation reproduction (scale: %s) ==\n\n%!"
    (Config.scale_name scale);
  List.iter (Registry.run_and_print scale) entries

(* {1 Bechamel micro-benchmarks} *)

let micro_tests () =
  let open Bechamel in
  let rng = Rng.create 99 in
  let keys = Array.init 1024 (fun _ -> Key.random rng) in
  let ring = Ring.create () in
  for i = 0 to 999 do
    Ring.add ring ~id:(Key.random rng) ~node:i
  done;
  let cache = Lookup_cache.create () in
  for i = 0 to 499 do
    let lo = keys.(i) and hi = keys.(i + 1) in
    if Key.compare lo hi < 0 then Lookup_cache.insert cache ~now:0.0 ~lo ~hi ~node:i
  done;
  let idx = ref 0 in
  let next_key () =
    idx := (!idx + 1) land 1023;
    keys.(!idx)
  in
  let volume = Encoding.volume_id "bench" in
  [
    Test.make ~name:"key_compare" (Staged.stage (fun () ->
        ignore (Key.compare (next_key ()) keys.(0))));
    Test.make ~name:"key_encode_fig4" (Staged.stage (fun () ->
        ignore
          (Encoding.of_slot_path ~volume ~slots:[ 1; 2; 3; 4 ] ~block:7L ~version:0l)));
    Test.make ~name:"key_decode_fig4" (Staged.stage (
        let k = Encoding.of_slot_path ~volume ~slots:[ 1; 2; 3; 4 ] ~block:7L ~version:0l in
        fun () -> ignore (Encoding.decode k)));
    Test.make ~name:"ring_successor_1000" (Staged.stage (fun () ->
        ignore (Ring.successor ring (next_key ()))));
    Test.make ~name:"ring_route_hops_1000" (Staged.stage (fun () ->
        ignore (Ring.route_hops ring ~src:0 ~key:(next_key ()))));
    Test.make ~name:"lookup_cache_probe" (Staged.stage (fun () ->
        ignore (Lookup_cache.lookup cache ~now:1.0 (next_key ()))));
  ]

let run_micro () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  print_endline "== Bechamel micro-benchmarks ==";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let tests = micro_tests () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-24s %12.1f ns/op\n%!" name est
          | _ -> Printf.printf "  %-24s (no estimate)\n%!" name)
        ols)
    tests

let () =
  let ids = List.tl (Array.to_list Sys.argv) in
  let scale = Config.of_env () in
  let t0 = Unix.gettimeofday () in
  run_experiments scale ids;
  run_micro ();
  Printf.printf "\nTotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
