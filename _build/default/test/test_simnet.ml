(* Tests for the virtual-time engine, topology, and TCP model. *)

module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Tcp = D2_simnet.Tcp
module Rng = D2_util.Rng

(* {1 Engine} *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~at:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~at:2.0 (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~at:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~at:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~at:5.0 (fun () -> incr fired));
  Engine.run e ~until:2.0;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock advanced to until" 2.0 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "rest fired" 2 !fired

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled" false !fired

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:5.0 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time"
    (Invalid_argument "Engine.schedule: time 1 is before now (5)") (fun () ->
      ignore (Engine.schedule e ~at:1.0 (fun () -> ())));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_in: negative delay") (fun () ->
      ignore (Engine.schedule_in e ~delay:(-1.0) (fun () -> ())))

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule_in e ~delay:1.0 (fun () -> log := "b" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 2.0 (Engine.now e)

let test_engine_pending () =
  let e = Engine.create () in
  Alcotest.(check int) "empty" 0 (Engine.pending e);
  let h = Engine.schedule e ~at:1.0 (fun () -> ()) in
  ignore (Engine.schedule e ~at:2.0 (fun () -> ()));
  Alcotest.(check int) "two queued" 2 (Engine.pending e);
  Engine.cancel h;
  (* Cancelled events are reaped when their time comes, not before. *)
  Alcotest.(check int) "still queued" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "drained" 0 (Engine.pending e)

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~period:1.0 ~until:5.5 (fun () -> incr count);
  Engine.run e;
  Alcotest.(check int) "5 ticks in 5.5s" 5 !count

(* {1 Topology} *)

let test_topology_symmetric () =
  let topo = Topology.create ~rng:(Rng.create 3) ~n:50 () in
  for _ = 1 to 100 do
    let rng = Rng.create 4 in
    let i = Rng.int rng 50 and j = Rng.int rng 50 in
    Alcotest.(check (float 1e-12)) "symmetric" (Topology.rtt topo i j)
      (Topology.rtt topo j i)
  done

let test_topology_positive_and_loopback () =
  let topo = Topology.create ~rng:(Rng.create 3) ~n:20 () in
  for i = 0 to 19 do
    for j = 0 to 19 do
      let r = Topology.rtt topo i j in
      if i = j then Alcotest.(check bool) "loopback small" true (r < 0.001)
      else Alcotest.(check bool) "positive" true (r > 0.0)
    done
  done

let test_topology_mean_near_90ms () =
  let topo = Topology.create ~rng:(Rng.create 3) ~n:200 () in
  let m = Topology.mean_rtt topo in
  Alcotest.(check bool) (Printf.sprintf "mean %.0f ms in [40,200]" (m *. 1000.0)) true
    (m > 0.04 && m < 0.2)

let test_topology_bounds () =
  let topo = Topology.create ~rng:(Rng.create 3) ~n:5 () in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology.rtt: node index out of range") (fun () ->
      ignore (Topology.rtt topo 0 5))

(* {1 TCP model} *)

let bw = 1_500_000.0

let test_tcp_cold_8kb_two_rtts () =
  (* The §9.3 footnote: a cold window needs 2 RTTs for an 8 KB block. *)
  let conn = Tcp.fresh_conn () in
  let rtt = 0.09 in
  let t = Tcp.transfer_time conn ~now:0.0 ~rtt ~bandwidth:bw ~bytes:8192 in
  Alcotest.(check (float 1e-9)) "2 rtts" (2.0 *. rtt) t

let test_tcp_warm_one_round () =
  let conn = Tcp.fresh_conn () in
  let rtt = 0.09 in
  (* Warm the window... *)
  let t1 = Tcp.transfer_time conn ~now:0.0 ~rtt ~bandwidth:bw ~bytes:65536 in
  (* ...then an 8 KB fetch soon after (within one RTO) takes one round. *)
  let t = Tcp.transfer_time conn ~now:(t1 +. 0.05) ~rtt ~bandwidth:bw ~bytes:8192 in
  Alcotest.(check bool) "single round" true (t <= rtt +. 1e-9)

let test_tcp_idle_resets_window () =
  let conn = Tcp.fresh_conn () in
  let rtt = 0.09 in
  ignore (Tcp.transfer_time conn ~now:0.0 ~rtt ~bandwidth:bw ~bytes:65536);
  Alcotest.(check bool) "window grew" true (Tcp.window conn ~now:0.4 () > 2.0);
  (* After > RTO idle the window is back to the initial 2 packets. *)
  let idle = 100.0 in
  Alcotest.(check (float 1e-9)) "reset" Tcp.initial_window (Tcp.window conn ~now:idle ());
  let t = Tcp.transfer_time conn ~now:idle ~rtt ~bandwidth:bw ~bytes:8192 in
  Alcotest.(check (float 1e-9)) "slow start again" (2.0 *. rtt) t

let test_tcp_bandwidth_bound () =
  (* A large transfer approaches the serialization time. *)
  let conn = Tcp.fresh_conn () in
  let bytes = 10_000_000 in
  let t = Tcp.transfer_time conn ~now:0.0 ~rtt:0.01 ~bandwidth:bw ~bytes in
  let line = float_of_int (bytes * 8) /. bw in
  Alcotest.(check bool) "not faster than the line" true (t >= line);
  Alcotest.(check bool) "within 2x of the line" true (t < 2.0 *. line)

let test_tcp_zero_bytes () =
  let conn = Tcp.fresh_conn () in
  let t = Tcp.transfer_time conn ~now:0.0 ~rtt:0.05 ~bandwidth:bw ~bytes:0 in
  Alcotest.(check (float 1e-9)) "one rtt for the request" 0.05 t

let test_tcp_validation () =
  let conn = Tcp.fresh_conn () in
  Alcotest.check_raises "negative size"
    (Invalid_argument "Tcp.transfer_time: negative size") (fun () ->
      ignore (Tcp.transfer_time conn ~now:0.0 ~rtt:0.05 ~bandwidth:bw ~bytes:(-1)));
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Tcp.transfer_time: bandwidth must be positive") (fun () ->
      ignore (Tcp.transfer_time conn ~now:0.0 ~rtt:0.05 ~bandwidth:0.0 ~bytes:1))

let test_tcp_monotone_in_size () =
  let rtt = 0.05 in
  let time bytes =
    Tcp.transfer_time (Tcp.fresh_conn ()) ~now:0.0 ~rtt ~bandwidth:bw ~bytes
  in
  Alcotest.(check bool) "8k <= 64k" true (time 8192 <= time 65536);
  Alcotest.(check bool) "64k <= 1M" true (time 65536 <= time 1_000_000)

let () =
  Alcotest.run "d2_simnet"
    [
      ( "engine",
        [
          Alcotest.test_case "order" `Quick test_engine_order;
          Alcotest.test_case "same-time fifo" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "cancel" `Quick test_engine_cancel;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
          Alcotest.test_case "pending" `Quick test_engine_pending;
          Alcotest.test_case "every" `Quick test_engine_every;
        ] );
      ( "topology",
        [
          Alcotest.test_case "symmetric" `Quick test_topology_symmetric;
          Alcotest.test_case "positive + loopback" `Quick test_topology_positive_and_loopback;
          Alcotest.test_case "mean rtt plausible" `Quick test_topology_mean_near_90ms;
          Alcotest.test_case "bounds" `Quick test_topology_bounds;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "cold 8KB = 2 RTTs" `Quick test_tcp_cold_8kb_two_rtts;
          Alcotest.test_case "warm = 1 round" `Quick test_tcp_warm_one_round;
          Alcotest.test_case "idle resets window" `Quick test_tcp_idle_resets_window;
          Alcotest.test_case "bandwidth bound" `Quick test_tcp_bandwidth_bound;
          Alcotest.test_case "zero bytes" `Quick test_tcp_zero_bytes;
          Alcotest.test_case "validation" `Quick test_tcp_validation;
          Alcotest.test_case "monotone in size" `Quick test_tcp_monotone_in_size;
        ] );
    ]
