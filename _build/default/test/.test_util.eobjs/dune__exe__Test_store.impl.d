test/test_store.ml: Alcotest Array Char D2_dht D2_keyspace D2_simnet D2_store D2_util List Printf String
