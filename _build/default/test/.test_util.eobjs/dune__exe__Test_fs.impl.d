test/test_fs.ml: Alcotest Array Bytes Char D2_fs D2_keyspace D2_simnet D2_store D2_util Hashtbl List Printf QCheck QCheck_alcotest String
