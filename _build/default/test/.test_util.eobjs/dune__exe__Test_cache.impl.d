test/test_cache.ml: Alcotest Char D2_cache D2_keyspace D2_util List QCheck QCheck_alcotest String
