test/test_simnet.ml: Alcotest D2_simnet D2_util List Printf
