test/test_trace.ml: Alcotest Array D2_trace D2_util Filename Fun Gen Hashtbl Lazy List Printf QCheck QCheck_alcotest String Sys
