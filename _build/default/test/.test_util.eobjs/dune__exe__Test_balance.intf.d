test/test_balance.mli:
