test/test_util.ml: Alcotest Array Bytes D2_util Gen List QCheck QCheck_alcotest String
