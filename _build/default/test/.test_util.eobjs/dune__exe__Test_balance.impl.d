test/test_balance.ml: Alcotest Array Char D2_balance D2_core D2_keyspace D2_simnet D2_store D2_util Float Printf String
