test/test_experiments.ml: Alcotest D2_experiments D2_trace D2_util List String
