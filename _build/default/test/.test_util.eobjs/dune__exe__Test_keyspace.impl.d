test/test_keyspace.ml: Alcotest Array Char D2_keyspace D2_util Gen Hashtbl Int32 Int64 List QCheck QCheck_alcotest String
