test/test_dht.ml: Alcotest Char D2_dht D2_keyspace D2_util Gen Hashtbl List Printf QCheck QCheck_alcotest String
