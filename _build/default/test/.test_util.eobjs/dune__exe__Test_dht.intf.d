test/test_dht.mli:
