test/test_core.ml: Alcotest Array D2_core D2_keyspace D2_simnet D2_store D2_trace D2_util Lazy List Printf
