test/test_keyspace.mli:
