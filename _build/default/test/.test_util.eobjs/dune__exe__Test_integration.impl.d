test/test_integration.ml: Alcotest Array Char D2_balance D2_core D2_fs D2_keyspace D2_simnet D2_store D2_trace D2_util Hashtbl List Printf String
