(* Tests for the Karger–Ruhl load balancer. *)

module Balancer = D2_balance.Balancer
module Cluster = D2_store.Cluster
module Engine = D2_simnet.Engine
module Key = D2_keyspace.Key
module Rng = D2_util.Rng
module Keymap = D2_core.Keymap

let k_of_byte b = Key.of_string (String.make 1 (Char.chr b) ^ String.make 63 '\000')

let mk ?(n = 8) () =
  let engine = Engine.create () in
  let ids = Array.init n (fun i -> k_of_byte ((i + 1) * 10)) in
  let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in
  (engine, cluster)

let load c i = (Cluster.node_stats c i).Cluster.primary_bytes

let test_probe_moves_when_imbalanced () =
  let _, c = mk () in
  (* Node 1 owns 9 blocks; node 5 owns nothing. *)
  for b = 11 to 19 do
    Cluster.put c ~key:(k_of_byte b) ~size:100 ()
  done;
  Alcotest.(check int) "before" 900 (load c 1);
  let moved = Balancer.probe_once ~cluster:c ~prober:5 ~target:1 () in
  Alcotest.(check bool) "moved" true moved;
  (* Prober became target's predecessor and took about half the load. *)
  let l5 = load c 5 and l1 = load c 1 in
  Alcotest.(check int) "conserved" 900 (l5 + l1);
  Alcotest.(check bool) "split" true (l5 >= 300 && l5 <= 600);
  Cluster.check_invariants c

let test_probe_no_move_when_balanced () =
  let _, c = mk () in
  Cluster.put c ~key:(k_of_byte 15) ~size:100 ();
  Cluster.put c ~key:(k_of_byte 45) ~size:100 ();
  (* Loads 100 vs 100: ratio 1 < threshold. *)
  Alcotest.(check bool) "no move" false (Balancer.probe_once ~cluster:c ~prober:4 ~target:1 ());
  Alcotest.(check bool) "self probe" false (Balancer.probe_once ~cluster:c ~prober:1 ~target:1 ())

let test_probe_respects_threshold () =
  let _, c = mk () in
  (* 300 vs 100: below the default threshold of 4. *)
  for b = 11 to 13 do
    Cluster.put c ~key:(k_of_byte b) ~size:100 ()
  done;
  Cluster.put c ~key:(k_of_byte 45) ~size:100 ();
  (* Prober node 4 owns the key-45 block (100 bytes): ratio 3 < 4. *)
  Alcotest.(check bool) "3x is tolerated" false
    (Balancer.probe_once ~cluster:c ~prober:4 ~target:1 ());
  let aggressive = { Balancer.default_config with Balancer.threshold = 2.0 } in
  Alcotest.(check bool) "2x threshold moves" true
    (Balancer.probe_once ~cluster:c ~config:aggressive ~prober:4 ~target:1 ())

let test_probe_skips_down_nodes () =
  let _, c = mk () in
  for b = 11 to 19 do
    Cluster.put c ~key:(k_of_byte b) ~size:100 ()
  done;
  Cluster.fail c ~node:5;
  Alcotest.(check bool) "down prober" false (Balancer.probe_once ~cluster:c ~prober:5 ~target:1 ());
  Cluster.recover c ~node:5;
  Cluster.fail c ~node:1;
  Alcotest.(check bool) "down target" false (Balancer.probe_once ~cluster:c ~prober:5 ~target:1 ())

let test_converges_on_skewed_insert () =
  (* The paper's claim: starting from everything on one node, loads end
     within a constant factor of the mean in O(log n) steps. *)
  let engine = Engine.create () in
  let rng = Rng.create 5 in
  let n = 32 in
  let ids = Array.init n (fun _ -> Key.random rng) in
  let config =
    { Cluster.default_config with Cluster.migration_bandwidth = 100_000_000.0 }
  in
  let cluster = Cluster.create ~engine ~config ~ids in
  let km = Keymap.create Keymap.D2 ~volume:"skew" in
  for f = 0 to 255 do
    let path = Printf.sprintf "/d/%03d" f in
    for b = 0 to 3 do
      Cluster.put cluster ~key:(Keymap.key_of km ~path ~block:b) ~size:8192 ()
    done
  done;
  let b = Balancer.attach ~cluster ~rng:(Rng.split rng) ~until:(24.0 *. 3600.0) () in
  Engine.run engine ~until:(24.0 *. 3600.0 +. 7200.0);
  let loads =
    Array.init n (fun i -> float_of_int (Cluster.node_stats cluster i).Cluster.primary_bytes)
  in
  let mean = D2_util.Stats.mean loads in
  let maxload = Array.fold_left Float.max 0.0 loads in
  Alcotest.(check bool)
    (Printf.sprintf "max/mean %.1f <= 4.5" (maxload /. mean))
    true
    (maxload /. mean <= 4.5);
  let st = Balancer.stats b in
  Alcotest.(check bool) "performed moves" true (st.Balancer.moves > 0);
  Alcotest.(check bool) "probes ran" true (st.Balancer.probes > st.Balancer.moves);
  Cluster.check_invariants cluster

let test_stats_counting () =
  let _, c = mk () in
  for b = 11 to 19 do
    Cluster.put c ~key:(k_of_byte b) ~size:100 ()
  done;
  (* probe_once does not touch attach-level stats; just check the move
     boolean contract both ways. *)
  Alcotest.(check bool) "first probe moves" true
    (Balancer.probe_once ~cluster:c ~prober:5 ~target:1 ());
  (* The two halves are now comparable: probing between them is idle. *)
  Alcotest.(check bool) "equals do not move" false
    (Balancer.probe_once ~cluster:c ~prober:5 ~target:1 ())

let () =
  Alcotest.run "d2_balance"
    [
      ( "probe",
        [
          Alcotest.test_case "moves when imbalanced" `Quick test_probe_moves_when_imbalanced;
          Alcotest.test_case "idle when balanced" `Quick test_probe_no_move_when_balanced;
          Alcotest.test_case "threshold" `Quick test_probe_respects_threshold;
          Alcotest.test_case "skips down nodes" `Quick test_probe_skips_down_nodes;
          Alcotest.test_case "stats contract" `Quick test_stats_counting;
        ] );
      ( "convergence",
        [ Alcotest.test_case "skewed insert balances" `Quick test_converges_on_skewed_insert ] );
    ]
