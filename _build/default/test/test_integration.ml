(* End-to-end integration tests: the full stack (FS over store over
   ring, with balancing and failures) behaving as one system, plus
   determinism guarantees across the simulators. *)

module Key = D2_keyspace.Key
module Engine = D2_simnet.Engine
module Cluster = D2_store.Cluster
module Balancer = D2_balance.Balancer
module Fs = D2_fs.Fs
module Rng = D2_util.Rng
module Harvard = D2_trace.Harvard
module Failure = D2_trace.Failure
module Keymap = D2_core.Keymap
module Availability = D2_core.Availability
module Perf = D2_core.Perf

(* A volume stays fully readable while the balancer reshuffles IDs and
   nodes crash and recover underneath it. *)
let test_fs_survives_rebalancing_and_failures () =
  let engine = Engine.create () in
  let rng = Rng.create 31 in
  let n = 24 in
  let ids = Array.init n (fun _ -> Key.random rng) in
  let config =
    { Cluster.default_config with Cluster.migration_bandwidth = 10_000_000.0 }
  in
  let cluster = Cluster.create ~engine ~config ~ids in
  let fs = Fs.create ~cluster ~volume:"it" ~mode:Fs.D2 ~write_back:false () in
  (* A directory tree big enough to be worth balancing. *)
  let contents = Hashtbl.create 64 in
  for d = 0 to 5 do
    for f = 0 to 7 do
      let path = Printf.sprintf "/data/d%d/f%d" d f in
      let data = String.make (4_000 + (997 * ((d * 8) + f))) (Char.chr (65 + f)) in
      Fs.write_file fs ~path ~data;
      Hashtbl.replace contents path data
    done
  done;
  ignore (Balancer.attach ~cluster ~rng:(Rng.split rng) ~until:(12.0 *. 3600.0) ());
  (* Let balancing begin, then crash two nodes mid-flight. *)
  Engine.run engine ~until:3600.0;
  Cluster.fail cluster ~node:0;
  Cluster.fail cluster ~node:1;
  Engine.run engine ~until:(6.0 *. 3600.0);
  Hashtbl.iter
    (fun path data ->
      match Fs.read_file fs path with
      | Some d when d = data -> ()
      | _ -> Alcotest.failf "%s unreadable or corrupt during failures" path)
    contents;
  (* Recover, finish balancing, verify again plus invariants. *)
  Cluster.recover cluster ~node:0;
  Cluster.recover cluster ~node:1;
  Engine.run engine ~until:(14.0 *. 3600.0);
  Hashtbl.iter
    (fun path data ->
      match Fs.read_file fs path with
      | Some d when d = data -> ()
      | _ -> Alcotest.failf "%s unreadable after recovery" path)
    contents;
  Cluster.check_invariants cluster;
  (* The balancer should have spread the initially-concentrated volume. *)
  let nonzero = ref 0 in
  for i = 0 to n - 1 do
    if (Cluster.node_stats cluster i).Cluster.physical_bytes > 0 then incr nonzero
  done;
  Alcotest.(check bool)
    (Printf.sprintf "data spread over %d nodes" !nonzero)
    true (!nonzero > 6)

(* Two identical runs of the availability simulator produce identical
   outcomes — the whole stack is deterministic. *)
let test_availability_deterministic () =
  let params =
    { Harvard.default_params with Harvard.users = 8; target_bytes = 8 * 1024 * 1024;
      days = 1.0 }
  in
  let trace = Harvard.generate ~rng:(Rng.create 77) ~params () in
  let failures = Failure.generate ~rng:(Rng.create 78) ~n:20 ~duration:trace.D2_trace.Op.duration () in
  let run () =
    let r = Availability.replay ~trace ~failures ~mode:Keymap.D2 ~seed:79 () in
    (r.Availability.op_ok, r.Availability.op_node)
  in
  let a_ok, a_node = run () in
  let b_ok, b_node = run () in
  Alcotest.(check bool) "op_ok identical" true (a_ok = b_ok);
  Alcotest.(check bool) "op_node identical" true (a_node = b_node)

(* Same for a performance pass. *)
let test_perf_deterministic () =
  let params =
    { Harvard.default_params with Harvard.users = 6; target_bytes = 8 * 1024 * 1024;
      days = 1.0 }
  in
  let trace = Harvard.generate ~rng:(Rng.create 81) ~params () in
  let config =
    { (Perf.default_config ~nodes:20 ~bandwidth:1_500_000.0) with
      Perf.base_nodes = 20; windows = 2; warmup = 3600.0 }
  in
  let run () = Perf.run_pass ~trace ~mode:Keymap.D2 ~config in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-9)) "lookup msgs" a.Perf.lookup_msgs_per_node b.Perf.lookup_msgs_per_node;
  Alcotest.(check (float 1e-9)) "miss rate" a.Perf.miss_rate b.Perf.miss_rate;
  Alcotest.(check int) "same group count" (Hashtbl.length a.Perf.groups)
    (Hashtbl.length b.Perf.groups);
  Hashtbl.iter
    (fun gid (ga : Perf.group_perf) ->
      match Hashtbl.find_opt b.Perf.groups gid with
      | None -> Alcotest.fail "group missing in rerun"
      | Some gb ->
          Alcotest.(check (float 1e-9)) "seq latency" ga.Perf.seq gb.Perf.seq;
          Alcotest.(check (float 1e-9)) "para latency" ga.Perf.para gb.Perf.para)
    a.Perf.groups

(* A one-node "cluster" still behaves sanely end to end. *)
let test_single_node_cluster () =
  let engine = Engine.create () in
  let rng = Rng.create 90 in
  let ids = [| Key.random rng |] in
  let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in
  let fs = Fs.create ~cluster ~volume:"solo" ~mode:Fs.D2 ~write_back:false () in
  Fs.write_file fs ~path:"/only/file" ~data:"alone";
  Alcotest.(check (option string)) "readable" (Some "alone") (Fs.read_file fs "/only/file");
  Engine.run engine;
  Cluster.check_invariants cluster;
  Alcotest.(check int) "everything on the node" 1
    (List.length (Cluster.physical_holders cluster ~key:(List.hd (Fs.file_block_keys fs "/only/file"))))

(* Multiple independent volumes coexist on one cluster without key
   collisions (the perf simulator's volume-replication trick relies on
   this). *)
let test_many_volumes_coexist () =
  let engine = Engine.create () in
  let rng = Rng.create 91 in
  let ids = Array.init 16 (fun _ -> Key.random rng) in
  let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in
  let volumes =
    List.init 4 (fun i ->
        Fs.create ~cluster ~volume:(Printf.sprintf "vol%d" i) ~mode:Fs.D2
          ~write_back:false ())
  in
  List.iteri
    (fun i fs -> Fs.write_file fs ~path:"/same/path" ~data:(Printf.sprintf "content-%d" i))
    volumes;
  List.iteri
    (fun i fs ->
      Alcotest.(check (option string)) "isolated" (Some (Printf.sprintf "content-%d" i))
        (Fs.read_file fs "/same/path"))
    volumes;
  Cluster.check_invariants cluster

let () =
  Alcotest.run "d2_integration"
    [
      ( "system",
        [
          Alcotest.test_case "fs survives rebalancing + failures" `Quick
            test_fs_survives_rebalancing_and_failures;
          Alcotest.test_case "single-node cluster" `Quick test_single_node_cluster;
          Alcotest.test_case "volumes coexist" `Quick test_many_volumes_coexist;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "availability replay" `Quick test_availability_deterministic;
          Alcotest.test_case "performance pass" `Quick test_perf_deterministic;
        ] );
    ]
