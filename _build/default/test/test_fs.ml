(* Tests for D2-FS: the block layout codec and the file system layer
   in all three key-policy modes. *)

module Layout = D2_fs.Layout
module Fs = D2_fs.Fs
module Cluster = D2_store.Cluster
module Engine = D2_simnet.Engine
module Key = D2_keyspace.Key
module Encoding = D2_keyspace.Encoding
module Rng = D2_util.Rng

let mk_cluster ?(n = 24) () =
  let engine = Engine.create () in
  let rng = Rng.create 17 in
  let ids = Array.init n (fun _ -> Key.random rng) in
  let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in
  (engine, cluster)

let mk_fs ?(mode = Fs.D2) ?(write_back = false) () =
  let engine, cluster = mk_cluster () in
  let fs = Fs.create ~cluster ~volume:"t" ~mode ~write_back () in
  (engine, cluster, fs)

(* {1 Layout codec} *)

let sample_key = Encoding.of_slot_path ~volume:(Encoding.volume_id "t") ~slots:[ 1 ] ~block:1L ~version:0l

let test_layout_root_roundtrip () =
  let rb =
    {
      Layout.volume = "vol";
      root_dir_key = sample_key;
      root_dir_hash = Layout.content_hash "x";
      root_version = 5;
      signature =
        Layout.sign_root ~volume:"vol" ~root_dir_key:sample_key
          ~root_dir_hash:(Layout.content_hash "x") ~version:5;
    }
  in
  (match Layout.decode (Layout.encode (Layout.Root rb)) with
  | Layout.Root rb' ->
      Alcotest.(check string) "volume" rb.Layout.volume rb'.Layout.volume;
      Alcotest.(check int) "version" rb.Layout.root_version rb'.Layout.root_version;
      Alcotest.(check bool) "verifies" true (Layout.verify_root rb')
  | _ -> Alcotest.fail "wrong block type");
  (* Tampering breaks the signature. *)
  let forged = { rb with Layout.root_version = 6 } in
  Alcotest.(check bool) "forgery detected" false (Layout.verify_root forged)

let test_layout_dir_roundtrip () =
  let db =
    {
      Layout.dir_slots = [ 1; 5 ];
      dir_generation = 3;
      reserved_slots = [ 7; 2 ];
      entries =
        [
          {
            Layout.name = "a.txt";
            slot = 2;
            kind = Layout.File;
            child_key = sample_key;
            child_hash = Layout.content_hash "a";
          };
          {
            Layout.name = "sub";
            slot = 1;
            kind = Layout.Dir;
            child_key = sample_key;
            child_hash = Layout.content_hash "b";
          };
        ];
    }
  in
  match Layout.decode (Layout.encode (Layout.Directory db)) with
  | Layout.Directory db' ->
      Alcotest.(check (list int)) "slots" db.Layout.dir_slots db'.Layout.dir_slots;
      Alcotest.(check int) "generation" 3 db'.Layout.dir_generation;
      Alcotest.(check int) "entries" 2 (List.length db'.Layout.entries);
      Alcotest.(check bool) "entry equality" true (db = db')
  | _ -> Alcotest.fail "wrong block type"

let test_layout_inode_roundtrip () =
  let inline = { Layout.size = 5; generation = 0; contents = Layout.Inline "hello" } in
  (match Layout.decode (Layout.encode (Layout.Inode inline)) with
  | Layout.Inode i -> Alcotest.(check bool) "inline" true (i = inline)
  | _ -> Alcotest.fail "wrong type");
  let blocks =
    {
      Layout.size = 20000;
      generation = 2;
      contents = Layout.Blocks [ (sample_key, Layout.content_hash "b0") ];
    }
  in
  match Layout.decode (Layout.encode (Layout.Inode blocks)) with
  | Layout.Inode i -> Alcotest.(check bool) "blocks" true (i = blocks)
  | _ -> Alcotest.fail "wrong type"

let test_layout_data_and_errors () =
  (match Layout.decode (Layout.encode (Layout.Data "payload")) with
  | Layout.Data d -> Alcotest.(check string) "data" "payload" d
  | _ -> Alcotest.fail "wrong type");
  Alcotest.check_raises "garbage" (Invalid_argument "Layout.decode: malformed block")
    (fun () -> ignore (Layout.decode "\042nonsense"));
  Alcotest.check_raises "trailing junk" (Invalid_argument "Layout.decode: malformed block")
    (fun () -> ignore (Layout.decode (Layout.encode (Layout.Data "x") ^ "junk")))

let prop_layout_data_roundtrip =
  QCheck.Test.make ~name:"data blocks roundtrip" ~count:200 QCheck.string (fun s ->
      QCheck.assume (String.length s <= 8192);
      match Layout.decode (Layout.encode (Layout.Data s)) with
      | Layout.Data s' -> s = s'
      | _ -> false)

(* {1 File system, common behaviour across modes} *)

let all_modes = [ ("d2", Fs.D2); ("traditional", Fs.Traditional); ("file", Fs.Traditional_file) ]

let for_all_modes f () = List.iter (fun (name, mode) -> f name mode) all_modes

let test_write_read_roundtrip name mode =
  let _, _, fs = mk_fs ~mode () in
  let data = String.init 30_000 (fun i -> Char.chr (i mod 251)) in
  Fs.write_file fs ~path:"/a/b/file.bin" ~data;
  Alcotest.(check (option string)) (name ^ " roundtrip") (Some data)
    (Fs.read_file fs "/a/b/file.bin");
  Alcotest.(check (option int)) (name ^ " size") (Some 30_000) (Fs.file_size fs "/a/b/file.bin")

let test_missing_file name mode =
  let _, _, fs = mk_fs ~mode () in
  Alcotest.(check (option string)) (name ^ " missing") None (Fs.read_file fs "/nope");
  Alcotest.(check bool) (name ^ " exists false") false (Fs.exists fs "/nope")

let test_overwrite name mode =
  let e, c, fs = mk_fs ~mode () in
  Fs.write_file fs ~path:"/f" ~data:(String.make 20_000 'a');
  Fs.write_file fs ~path:"/f" ~data:"short";
  Alcotest.(check (option string)) (name ^ " overwrite") (Some "short") (Fs.read_file fs "/f");
  (* Old blocks are removed after the delayed removal. *)
  Engine.run e;
  Cluster.check_invariants c

let test_delete name mode =
  let e, c, fs = mk_fs ~mode () in
  Fs.write_file fs ~path:"/d/f" ~data:(String.make 9_000 'x');
  Fs.delete fs "/d/f";
  Alcotest.(check (option string)) (name ^ " gone") None (Fs.read_file fs "/d/f");
  Alcotest.check_raises (name ^ " double delete") Not_found (fun () -> Fs.delete fs "/d/f");
  Engine.run e;
  Cluster.check_invariants c

let test_rename name mode =
  let _, _, fs = mk_fs ~mode () in
  let data = String.make 25_000 'r' in
  Fs.write_file fs ~path:"/src/f.txt" ~data;
  let keys_before = Fs.file_block_keys fs "/src/f.txt" in
  Fs.rename fs ~src:"/src/f.txt" ~dst:"/dst/g.txt";
  Alcotest.(check (option string)) (name ^ " content survives") (Some data)
    (Fs.read_file fs "/dst/g.txt");
  Alcotest.(check (option string)) (name ^ " source gone") None (Fs.read_file fs "/src/f.txt");
  (* §4.2: the object keeps its original keys — zero data migration. *)
  let keys_after = Fs.file_block_keys fs "/dst/g.txt" in
  Alcotest.(check bool) (name ^ " keys unchanged") true (keys_before = keys_after)

let test_list_dir name mode =
  let _, _, fs = mk_fs ~mode () in
  Fs.mkdir fs "/d/sub";
  Fs.write_file fs ~path:"/d/b.txt" ~data:"b";
  Fs.write_file fs ~path:"/d/a.txt" ~data:"a";
  Alcotest.(check (list (pair string bool)))
    (name ^ " listing")
    [ ("a.txt", false); ("b.txt", false); ("sub", true) ]
    (Fs.list_dir fs "/d");
  Alcotest.(check bool) (name ^ " is_dir") true (Fs.is_dir fs "/d/sub");
  Alcotest.(check bool) (name ^ " file not dir") false (Fs.is_dir fs "/d/a.txt")

let test_inline_small_files name mode =
  let _, cluster, fs = mk_fs ~mode () in
  let before = Cluster.block_count cluster in
  Fs.write_file fs ~path:"/tiny" ~data:"x";
  (* Inline file: inode only (plus metadata path rewrites), no data
     block. Each write adds exactly: 1 inode + re-published root dir. *)
  let added = Cluster.block_count cluster - before in
  Alcotest.(check bool) (name ^ " no data block") true (added <= 2);
  Alcotest.(check (option string)) (name ^ " inline readback") (Some "x")
    (Fs.read_file fs "/tiny")

let test_empty_file name mode =
  let _, _, fs = mk_fs ~mode () in
  Fs.write_file fs ~path:"/empty" ~data:"";
  Alcotest.(check (option string)) (name ^ " empty") (Some "") (Fs.read_file fs "/empty");
  Alcotest.(check (option int)) (name ^ " size 0") (Some 0) (Fs.file_size fs "/empty")

let test_path_validation name mode =
  let _, _, fs = mk_fs ~mode () in
  Alcotest.check_raises (name ^ " relative")
    (Invalid_argument "Fs: path \"relative\" must be absolute") (fun () ->
      ignore (Fs.read_file fs "relative"));
  Alcotest.check_raises (name ^ " root as file")
    (Invalid_argument "Fs: the root directory is not a file") (fun () ->
      Fs.write_file fs ~path:"/" ~data:"x")

(* {1 D2-specific behaviour} *)

let test_d2_locality () =
  let _, cluster, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/p/a" ~data:(String.make 20_000 'a');
  Fs.write_file fs ~path:"/p/b" ~data:(String.make 20_000 'b');
  Fs.write_file fs ~path:"/p/c" ~data:(String.make 20_000 'c');
  let holders path =
    List.concat_map
      (fun k -> Cluster.physical_holders cluster ~key:k)
      (Fs.file_block_keys fs path)
  in
  let all = List.sort_uniq compare (holders "/p/a" @ holders "/p/b" @ holders "/p/c") in
  (* One replica group = 3 nodes for the whole directory. *)
  Alcotest.(check int) "single replica group" 3 (List.length all)

let test_traditional_scatter () =
  let _, cluster, fs = mk_fs ~mode:Fs.Traditional () in
  for i = 0 to 5 do
    Fs.write_file fs ~path:(Printf.sprintf "/p/f%d" i) ~data:(String.make 20_000 'x')
  done;
  let all =
    List.sort_uniq compare
      (List.concat_map
         (fun i ->
           List.concat_map
             (fun k -> Cluster.physical_holders cluster ~key:k)
             (Fs.file_block_keys fs (Printf.sprintf "/p/f%d" i)))
         [ 0; 1; 2; 3; 4; 5 ])
  in
  Alcotest.(check bool) "spread widely" true (List.length all > 9)

let test_traditional_file_groups () =
  let _, cluster, fs = mk_fs ~mode:Fs.Traditional_file () in
  Fs.write_file fs ~path:"/p/big" ~data:(String.make 40_000 'x');
  let keys = Fs.file_block_keys fs "/p/big" in
  let holder_sets =
    List.map (fun k -> List.sort compare (Cluster.physical_holders cluster ~key:k)) keys
  in
  (* All blocks of one file share one replica set. *)
  List.iter
    (fun hs -> Alcotest.(check (list int)) "same set" (List.hd holder_sets) hs)
    holder_sets

let test_deep_paths () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  (* 16 levels: beyond the 12 positional slots, remainder-hashed. *)
  let path =
    "/" ^ String.concat "/" (List.init 16 (fun i -> Printf.sprintf "l%02d" i)) ^ "/f"
  in
  Fs.write_file fs ~path ~data:"deep";
  Alcotest.(check (option string)) "deep read" (Some "deep") (Fs.read_file fs path)

let test_integrity_detection () =
  (* Corrupt a stored data block; the read must fail the hash check. *)
  let _, cluster, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/f" ~data:(String.make 20_000 'g');
  let keys = Fs.file_block_keys fs "/f" in
  let data_key = List.nth keys 1 in
  (* Overwrite the block in place with corrupted content. *)
  Cluster.put cluster ~key:data_key ~size:100
    ~data:(Layout.encode (Layout.Data "corrupted")) ();
  Alcotest.(check bool) "corruption detected" true
    (try
       ignore (Fs.read_file fs "/f");
       false
     with Fs.Integrity_violation _ -> true)

let test_write_back_semantics () =
  let engine, cluster, fs =
    let engine, cluster = mk_cluster () in
    (engine, cluster, Fs.create ~cluster ~volume:"wb" ~mode:Fs.D2 ~write_back:true ())
  in
  let before = Cluster.block_count cluster in
  Fs.write_file fs ~path:"/w" ~data:"buffered";
  (* Visible to the writer immediately, but not yet in the DHT. *)
  Alcotest.(check (option string)) "read-your-writes" (Some "buffered")
    (Fs.read_file fs "/w");
  Alcotest.(check int) "nothing committed yet" before (Cluster.block_count cluster);
  (* After 30 virtual seconds the write flushes. *)
  Engine.run engine ~until:(Engine.now engine +. 31.0);
  Alcotest.(check bool) "committed" true (Cluster.block_count cluster > before);
  Alcotest.(check (option string)) "durable" (Some "buffered") (Fs.read_file fs "/w")

let test_write_back_temp_file_absorbed () =
  let engine, cluster = mk_cluster () in
  let fs = Fs.create ~cluster ~volume:"wb" ~mode:Fs.D2 ~write_back:true () in
  let before = Cluster.block_count cluster in
  Fs.write_file fs ~path:"/tmp1" ~data:"temporary";
  Fs.delete fs "/tmp1";
  Engine.run engine ~until:(Engine.now engine +. 60.0);
  (* The temp file never reached the DHT (§3). *)
  Alcotest.(check int) "absorbed" before (Cluster.block_count cluster);
  Alcotest.(check (option string)) "gone" None (Fs.read_file fs "/tmp1")

let test_write_back_flush_forces () =
  let _, cluster = mk_cluster () in
  let fs = Fs.create ~cluster ~volume:"wb" ~mode:Fs.D2 ~write_back:true () in
  let before = Cluster.block_count cluster in
  Fs.write_file fs ~path:"/w" ~data:"x";
  Fs.flush fs;
  Alcotest.(check bool) "flushed now" true (Cluster.block_count cluster > before)

let test_list_dir_shows_pending () =
  let _, cluster = mk_cluster () in
  let fs = Fs.create ~cluster ~volume:"wb" ~mode:Fs.D2 ~write_back:true () in
  Fs.mkdir fs "/d";
  Fs.write_file fs ~path:"/d/pending.txt" ~data:"p";
  Alcotest.(check (list (pair string bool))) "pending listed"
    [ ("pending.txt", false) ] (Fs.list_dir fs "/d")

let test_slot_reuse_after_delete () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  for i = 0 to 9 do
    Fs.write_file fs ~path:(Printf.sprintf "/d/f%d" i) ~data:"x"
  done;
  Fs.delete fs "/d/f3";
  (* The freed slot is reassigned without disturbing the others. *)
  Fs.write_file fs ~path:"/d/fresh" ~data:"y";
  Alcotest.(check (option string)) "old files fine" (Some "x") (Fs.read_file fs "/d/f7");
  Alcotest.(check (option string)) "new file fine" (Some "y") (Fs.read_file fs "/d/fresh")

let test_mkdir_idempotent () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.mkdir fs "/a/b/c";
  Fs.mkdir fs "/a/b/c";
  Fs.mkdir fs "/a/b";
  Alcotest.(check bool) "exists" true (Fs.is_dir fs "/a/b/c")

let test_rename_directory () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/old/sub/f" ~data:"inside";
  Fs.rename fs ~src:"/old/sub" ~dst:"/newhome";
  Alcotest.(check (option string)) "moved subtree readable" (Some "inside")
    (Fs.read_file fs "/newhome/f");
  Alcotest.(check bool) "old path gone" false (Fs.exists fs "/old/sub")

(* {1 Range IO} *)

let test_read_range_basics () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  let data = String.init 30_000 (fun i -> Char.chr (i mod 251)) in
  Fs.write_file fs ~path:"/r" ~data;
  Alcotest.(check (option string)) "middle across blocks"
    (Some (String.sub data 8000 400))
    (Fs.read_range fs ~path:"/r" ~offset:8000 ~length:400);
  Alcotest.(check (option string)) "clamped at eof"
    (Some (String.sub data 29_990 10))
    (Fs.read_range fs ~path:"/r" ~offset:29_990 ~length:100);
  Alcotest.(check (option string)) "past eof" (Some "")
    (Fs.read_range fs ~path:"/r" ~offset:50_000 ~length:10);
  Alcotest.(check (option string)) "missing file" None
    (Fs.read_range fs ~path:"/none" ~offset:0 ~length:1)

let test_read_range_fetches_few_blocks () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/big" ~data:(String.make 200_000 'z');
  let before = Fs.blocks_fetched fs in
  ignore (Fs.read_range fs ~path:"/big" ~offset:100_000 ~length:100);
  let fetched = Fs.blocks_fetched fs - before in
  (* Metadata walk (root dir + inode) + 1 data block; far from 25. *)
  Alcotest.(check bool) (Printf.sprintf "only %d fetches" fetched) true (fetched <= 4)

let test_write_range_modify () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  let data = String.make 30_000 'a' in
  Fs.write_file fs ~path:"/w" ~data;
  Fs.write_range fs ~path:"/w" ~offset:8_000 ~data:(String.make 500 'B');
  let expect =
    String.concat ""
      [ String.make 8_000 'a'; String.make 500 'B'; String.make 21_500 'a' ]
  in
  Alcotest.(check (option string)) "spliced" (Some expect) (Fs.read_file fs "/w");
  Alcotest.(check (option int)) "size unchanged" (Some 30_000) (Fs.file_size fs "/w")

let test_write_range_untouched_blocks_keep_keys () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/k" ~data:(String.make 40_000 'a');
  let before = Fs.file_block_keys fs "/k" in
  (* Touch only the second block. *)
  Fs.write_range fs ~path:"/k" ~offset:9_000 ~data:"XYZ";
  let after = Fs.file_block_keys fs "/k" in
  (* inode key changes (new generation); blocks 0,2,3,4 keep keys. *)
  Alcotest.(check int) "same count" (List.length before) (List.length after);
  let b = Array.of_list before and a = Array.of_list after in
  Alcotest.(check bool) "inode rekeyed" false (Key.equal b.(0) a.(0));
  Alcotest.(check bool) "block0 kept" true (Key.equal b.(1) a.(1));
  Alcotest.(check bool) "block1 rekeyed" false (Key.equal b.(2) a.(2));
  Alcotest.(check bool) "block2 kept" true (Key.equal b.(3) a.(3));
  Alcotest.(check bool) "block4 kept" true (Key.equal b.(5) a.(5))

let test_write_range_extends () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/e" ~data:(String.make 10_000 'a');
  Fs.write_range fs ~path:"/e" ~offset:20_000 ~data:"tail";
  Alcotest.(check (option int)) "grew" (Some 20_004) (Fs.file_size fs "/e");
  Alcotest.(check (option string)) "zero gap" (Some "\000\000")
    (Fs.read_range fs ~path:"/e" ~offset:15_000 ~length:2);
  Alcotest.(check (option string)) "tail" (Some "tail")
    (Fs.read_range fs ~path:"/e" ~offset:20_000 ~length:10);
  Alcotest.(check (option string)) "old data intact" (Some "aa")
    (Fs.read_range fs ~path:"/e" ~offset:0 ~length:2)

let test_write_range_creates () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_range fs ~path:"/new" ~offset:100 ~data:"hello";
  Alcotest.(check (option int)) "created with gap" (Some 105) (Fs.file_size fs "/new");
  Alcotest.(check (option string)) "content" (Some "hello")
    (Fs.read_range fs ~path:"/new" ~offset:100 ~length:5)

let test_write_range_pending () =
  let _, cluster = mk_cluster () in
  let fs = Fs.create ~cluster ~volume:"wb" ~mode:Fs.D2 ~write_back:true () in
  Fs.write_file fs ~path:"/p" ~data:(String.make 100 'a');
  Fs.write_range fs ~path:"/p" ~offset:50 ~data:"ZZ";
  Alcotest.(check (option string)) "spliced in buffer" (Some "ZZ")
    (Fs.read_range fs ~path:"/p" ~offset:50 ~length:2);
  Fs.flush fs;
  Alcotest.(check (option string)) "durable" (Some "ZZ")
    (Fs.read_range fs ~path:"/p" ~offset:50 ~length:2)

(* Random range ops vs a string reference model. *)
let test_range_model mode () =
  let rng = Rng.create 555 in
  let _, _, fs = mk_fs ~mode () in
  let model = ref "" in
  Fs.write_file fs ~path:"/m" ~data:"";
  for step = 1 to 120 do
    if Rng.float rng 1.0 < 0.6 then begin
      let offset = Rng.int rng 40_000 in
      let len = 1 + Rng.int rng 12_000 in
      let data = String.make len (Char.chr (65 + (step mod 26))) in
      Fs.write_range fs ~path:"/m" ~offset ~data;
      let n = max (String.length !model) (offset + len) in
      let b = Bytes.make n '\000' in
      Bytes.blit_string !model 0 b 0 (String.length !model);
      Bytes.blit_string data 0 b offset len;
      model := Bytes.to_string b
    end
    else begin
      let offset = Rng.int rng 50_000 in
      let len = Rng.int rng 10_000 in
      let expect =
        let n = String.length !model in
        if offset >= n then "" else String.sub !model offset (min len (n - offset))
      in
      match Fs.read_range fs ~path:"/m" ~offset ~length:len with
      | Some got when got = expect -> ()
      | _ -> Alcotest.failf "step %d: range read diverged" step
    end
  done;
  Alcotest.(check (option string)) "final content" (Some !model) (Fs.read_file fs "/m")

(* {1 Snapshots} *)

let test_snapshot_isolation () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/doc" ~data:(String.make 20_000 '1');
  Fs.write_file fs ~path:"/other" ~data:"o1";
  let snap = Fs.snapshot fs in
  (* Overwrite and add after the snapshot. *)
  Fs.write_file fs ~path:"/doc" ~data:"v2";
  Fs.write_file fs ~path:"/new" ~data:"n";
  Fs.delete fs "/other";
  (* The live view moved on... *)
  Alcotest.(check (option string)) "live doc" (Some "v2") (Fs.read_file fs "/doc");
  (* ...while the snapshot (within the 30 s removal window) still
     serves the old consistent state. *)
  Alcotest.(check (option string)) "snapshot doc" (Some (String.make 20_000 '1'))
    (Fs.snapshot_read snap "/doc");
  Alcotest.(check (option string)) "snapshot other" (Some "o1")
    (Fs.snapshot_read snap "/other");
  Alcotest.(check (option string)) "snapshot unaware of new" None
    (Fs.snapshot_read snap "/new");
  Alcotest.(check (list (pair string bool))) "snapshot listing"
    [ ("doc", false); ("other", false) ]
    (Fs.snapshot_list snap "/")

let test_snapshot_ages_out () =
  let engine, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/doc" ~data:(String.make 20_000 '1');
  let snap = Fs.snapshot fs in
  Fs.write_file fs ~path:"/doc" ~data:"v2";
  (* Past the removal window the superseded blocks are gone. *)
  Engine.run engine ~until:(Engine.now engine +. 60.0);
  Alcotest.(check bool) "aged out" true
    (try
       ignore (Fs.snapshot_read snap "/doc");
       false
     with Not_found -> true);
  Alcotest.(check (option string)) "live still fine" (Some "v2") (Fs.read_file fs "/doc")

(* {1 Volume checking (fsck)} *)

let test_check_volume_clean () =
  let _, _, fs = mk_fs ~mode:Fs.D2 () in
  Fs.mkdir fs "/a/b";
  Fs.write_file fs ~path:"/a/b/big" ~data:(String.make 30_000 'x');
  Fs.write_file fs ~path:"/a/small" ~data:"tiny";
  let r = Fs.check_volume fs in
  Alcotest.(check int) "dirs" 3 r.Fs.dirs;
  Alcotest.(check int) "files" 2 r.Fs.files;
  Alcotest.(check int) "bytes" 30_004 r.Fs.bytes;
  Alcotest.(check (list string)) "no problems" [] r.Fs.problems

let test_check_volume_corruption () =
  let _, cluster, fs = mk_fs ~mode:Fs.D2 () in
  Fs.write_file fs ~path:"/f" ~data:(String.make 20_000 'y');
  Fs.write_file fs ~path:"/ok" ~data:"fine";
  let keys = Fs.file_block_keys fs "/f" in
  Cluster.put cluster ~key:(List.nth keys 1) ~size:10
    ~data:(Layout.encode (Layout.Data "junk")) ();
  let r = Fs.check_volume fs in
  Alcotest.(check int) "one problem" 1 (List.length r.Fs.problems);
  Alcotest.(check bool) "names the file" true
    (match r.Fs.problems with [ p ] -> String.length p > 2 && String.sub p 0 2 = "/f" | _ -> false);
  Alcotest.(check int) "other file still verified" 2 r.Fs.files

(* {1 Model-based testing}

   Random op sequences applied both to D2-FS and to a trivial
   in-memory reference (path -> contents map); every read, existence
   check and listing must agree. *)

let test_model_equivalence mode () =
  let rng = Rng.create 2024 in
  let engine, cluster = mk_cluster ~n:16 () in
  let fs = Fs.create ~cluster ~volume:"model" ~mode ~write_back:false () in
  let model : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let dirs = [| "/a"; "/a/b"; "/c"; "/c/d/e" |] in
  let names = [| "x"; "y"; "z" |] in
  let random_path () =
    dirs.(Rng.int rng (Array.length dirs)) ^ "/" ^ names.(Rng.int rng (Array.length names))
  in
  let random_data () =
    let n = Rng.int rng 3 in
    if n = 0 then ""
    else if n = 1 then String.make (1 + Rng.int rng 100) 's'
    else String.make (9000 + Rng.int rng 20000) 'L'
  in
  for step = 1 to 300 do
    let path = random_path () in
    (match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
        let data = random_data () in
        Fs.write_file fs ~path ~data;
        Hashtbl.replace model path data
    | 5 | 6 ->
        let expected = Hashtbl.find_opt model path in
        let actual = Fs.read_file fs path in
        if expected <> actual then
          Alcotest.failf "step %d: read %s mismatch" step path
    | 7 ->
        if Hashtbl.mem model path then begin
          Fs.delete fs path;
          Hashtbl.remove model path
        end
    | 8 ->
        let dst = random_path () in
        if Hashtbl.mem model path && (not (Hashtbl.mem model dst)) && path <> dst
        then begin
          Fs.rename fs ~src:path ~dst;
          Hashtbl.replace model dst (Hashtbl.find model path);
          Hashtbl.remove model path
        end
    | _ -> Engine.run engine ~until:(Engine.now engine +. 60.0));
    if step mod 100 = 0 then begin
      (* Full sweep: every model file reads back; nothing extra exists. *)
      Hashtbl.iter
        (fun p data ->
          match Fs.read_file fs p with
          | Some d when d = data -> ()
          | _ -> Alcotest.failf "sweep at %d: %s diverged" step p)
        model;
      Array.iter
        (fun d ->
          Array.iter
            (fun n ->
              let p = d ^ "/" ^ n in
              Alcotest.(check bool) ("exists " ^ p) (Hashtbl.mem model p) (Fs.exists fs p))
            names)
        dirs
    end
  done;
  Engine.run engine ~until:(Engine.now engine +. 3600.0);
  Cluster.check_invariants cluster

let mode_cases name f =
  Alcotest.test_case name `Quick (for_all_modes f)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "d2_fs"
    [
      ( "layout",
        Alcotest.test_case "root roundtrip + signature" `Quick test_layout_root_roundtrip
        :: Alcotest.test_case "directory roundtrip" `Quick test_layout_dir_roundtrip
        :: Alcotest.test_case "inode roundtrip" `Quick test_layout_inode_roundtrip
        :: Alcotest.test_case "data + malformed" `Quick test_layout_data_and_errors
        :: qcheck [ prop_layout_data_roundtrip ] );
      ( "fs-all-modes",
        [
          mode_cases "write/read roundtrip" test_write_read_roundtrip;
          mode_cases "missing file" test_missing_file;
          mode_cases "overwrite" test_overwrite;
          mode_cases "delete" test_delete;
          mode_cases "rename keeps keys" test_rename;
          mode_cases "list_dir" test_list_dir;
          mode_cases "inline small files" test_inline_small_files;
          mode_cases "empty file" test_empty_file;
          mode_cases "path validation" test_path_validation;
        ] );
      ( "fs-placement",
        [
          Alcotest.test_case "D2 locality" `Quick test_d2_locality;
          Alcotest.test_case "traditional scatter" `Quick test_traditional_scatter;
          Alcotest.test_case "traditional-file groups" `Quick test_traditional_file_groups;
          Alcotest.test_case "deep paths" `Quick test_deep_paths;
          Alcotest.test_case "integrity detection" `Quick test_integrity_detection;
        ] );
      ( "fs-write-back",
        [
          Alcotest.test_case "30s buffering" `Quick test_write_back_semantics;
          Alcotest.test_case "temp file absorbed" `Quick test_write_back_temp_file_absorbed;
          Alcotest.test_case "flush forces" `Quick test_write_back_flush_forces;
          Alcotest.test_case "pending in list_dir" `Quick test_list_dir_shows_pending;
        ] );
      ( "fs-misc",
        [
          Alcotest.test_case "slot reuse" `Quick test_slot_reuse_after_delete;
          Alcotest.test_case "mkdir idempotent" `Quick test_mkdir_idempotent;
          Alcotest.test_case "rename directory" `Quick test_rename_directory;
        ] );
      ( "fs-range",
        [
          Alcotest.test_case "read basics" `Quick test_read_range_basics;
          Alcotest.test_case "reads few blocks" `Quick test_read_range_fetches_few_blocks;
          Alcotest.test_case "write modify" `Quick test_write_range_modify;
          Alcotest.test_case "untouched keys kept" `Quick test_write_range_untouched_blocks_keep_keys;
          Alcotest.test_case "write extends" `Quick test_write_range_extends;
          Alcotest.test_case "write creates" `Quick test_write_range_creates;
          Alcotest.test_case "write-back splice" `Quick test_write_range_pending;
          Alcotest.test_case "range model (d2)" `Quick (test_range_model Fs.D2);
          Alcotest.test_case "range model (traditional)" `Quick
            (test_range_model Fs.Traditional);
        ] );
      ( "fs-snapshot",
        [
          Alcotest.test_case "isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "ages out" `Quick test_snapshot_ages_out;
        ] );
      ( "fs-check",
        [
          Alcotest.test_case "clean volume" `Quick test_check_volume_clean;
          Alcotest.test_case "detects corruption" `Quick test_check_volume_corruption;
        ] );
      ( "fs-model",
        [
          Alcotest.test_case "random ops match reference (d2)" `Quick
            (test_model_equivalence Fs.D2);
          Alcotest.test_case "random ops match reference (traditional)" `Quick
            (test_model_equivalence Fs.Traditional);
          Alcotest.test_case "random ops match reference (file)" `Quick
            (test_model_equivalence Fs.Traditional_file);
        ] );
    ]
