(* Tests for D2-Store: replication, delayed removal, failure and
   regeneration, ID changes with pointers, and traffic accounting. *)

module Cluster = D2_store.Cluster
module Ring = D2_dht.Ring
module Engine = D2_simnet.Engine
module Key = D2_keyspace.Key
module Rng = D2_util.Rng

let k_of_byte b = Key.of_string (String.make 1 (Char.chr b) ^ String.make 63 '\000')

(* A deterministic cluster: node i has id (i+1)*10 in the top byte. *)
let mk ?(n = 8) ?(config = Cluster.default_config) () =
  let engine = Engine.create () in
  let ids = Array.init n (fun i -> k_of_byte ((i + 1) * 10)) in
  let cluster = Cluster.create ~engine ~config ~ids in
  (engine, cluster)

let test_put_get () =
  let _, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ~data:"hello" ();
  Alcotest.(check bool) "mem" true (Cluster.mem c ~key);
  (match Cluster.get c ~key with
  | Some (Some d) -> Alcotest.(check string) "data" "hello" d
  | _ -> Alcotest.fail "expected data");
  Alcotest.(check bool) "missing key" false (Cluster.mem c ~key:(k_of_byte 16));
  Cluster.check_invariants c

let test_replication_on_successors () =
  let _, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  (* Owner of 15 is node 1 (id 20); replicas on nodes 1,2,3. *)
  let holders = List.sort compare (Cluster.physical_holders c ~key) in
  Alcotest.(check (list int)) "three successors" [ 1; 2; 3 ] holders;
  Alcotest.(check (option int)) "owner" (Some 1) (Cluster.owner_of c ~key)

let test_replication_wraps () =
  let _, c = mk () in
  let key = k_of_byte 99 in
  (* Beyond the last id (80): wraps to nodes 0,1,2. *)
  Cluster.put c ~key ~size:100 ();
  let holders = List.sort compare (Cluster.physical_holders c ~key) in
  Alcotest.(check (list int)) "wrap" [ 0; 1; 2 ] holders

let test_byte_accounting () =
  let _, c = mk () in
  Cluster.put c ~key:(k_of_byte 15) ~size:100 ();
  Cluster.put c ~key:(k_of_byte 16) ~size:50 ();
  let s1 = Cluster.node_stats c 1 in
  Alcotest.(check int) "physical on primary" 150 s1.Cluster.physical_bytes;
  Alcotest.(check int) "primary bytes" 150 s1.Cluster.primary_bytes;
  let s2 = Cluster.node_stats c 2 in
  Alcotest.(check int) "replica bytes" 150 s2.Cluster.physical_bytes;
  Alcotest.(check int) "replica not primary" 0 s2.Cluster.primary_bytes;
  Alcotest.(check (float 0.1)) "written counter" 150.0 (Cluster.written_bytes c)

let test_overwrite_replaces () =
  let _, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  Cluster.put c ~key ~size:60 ();
  Alcotest.(check int) "size replaced" 60 (Cluster.node_stats c 1).Cluster.physical_bytes;
  Alcotest.(check (float 0.1)) "writes accumulate" 160.0 (Cluster.written_bytes c);
  Alcotest.(check (float 0.1)) "old counted removed" 100.0 (Cluster.removed_bytes c);
  Cluster.check_invariants c

let test_delayed_remove () =
  let e, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  Cluster.remove c ~key ();
  Alcotest.(check bool) "still there before delay" true (Cluster.mem c ~key);
  Engine.run e ~until:29.0;
  Alcotest.(check bool) "still there at 29s" true (Cluster.mem c ~key);
  Engine.run e ~until:31.0;
  Alcotest.(check bool) "gone after 30s" false (Cluster.mem c ~key);
  Alcotest.(check int) "bytes released" 0 (Cluster.node_stats c 1).Cluster.physical_bytes;
  Cluster.check_invariants c

let test_remove_explicit_delay () =
  let e, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  Cluster.remove c ~key ~delay:5.0 ();
  Engine.run e ~until:6.0;
  Alcotest.(check bool) "gone after custom delay" false (Cluster.mem c ~key)

let test_availability_under_failures () =
  let _, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  Alcotest.(check bool) "up" true (Cluster.available c ~key);
  Cluster.fail c ~node:1;
  Cluster.fail c ~node:2;
  Alcotest.(check bool) "one replica left" true (Cluster.available c ~key);
  Cluster.fail c ~node:3;
  Alcotest.(check bool) "all replicas down" false (Cluster.available c ~key);
  Cluster.recover c ~node:2;
  Alcotest.(check bool) "back" true (Cluster.available c ~key)

let test_regeneration () =
  let e, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  Cluster.fail c ~node:1;
  (* Regeneration fetches a copy onto node 4 (next up successor). *)
  Engine.run e ~until:10.0;
  let holders = List.sort compare (Cluster.physical_holders c ~key) in
  Alcotest.(check (list int)) "fourth successor regenerated" [ 1; 2; 3; 4 ] holders;
  Alcotest.(check bool) "regen traffic counted" true (Cluster.regeneration_bytes c > 0.0);
  (* Recovery trims the regenerated surplus. *)
  Cluster.recover c ~node:1;
  Engine.run e ~until:20.0;
  let holders = List.sort compare (Cluster.physical_holders c ~key) in
  Alcotest.(check (list int)) "trimmed" [ 1; 2; 3 ] holders;
  Cluster.check_invariants c

let test_no_copy_lost_when_all_down () =
  let e, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  Cluster.fail c ~node:1;
  Cluster.fail c ~node:2;
  Cluster.fail c ~node:3;
  (* No live source: regeneration cannot proceed; the block stays
     unavailable but is not lost. *)
  Engine.run e ~until:600.0;
  Alcotest.(check bool) "unavailable" false (Cluster.available c ~key);
  Cluster.recover c ~node:2;
  Engine.run e ~until:1200.0;
  Alcotest.(check bool) "recovers" true (Cluster.available c ~key);
  Cluster.check_invariants c

let test_change_id_migrates_with_pointers () =
  let e, c = mk () in
  (* Blocks keyed 11..19 are owned by node 1 (id 20). *)
  for b = 11 to 19 do
    Cluster.put c ~key:(k_of_byte b) ~size:100 ()
  done;
  Alcotest.(check int) "owner primary" 900 (Cluster.node_stats c 1).Cluster.primary_bytes;
  (* Node 7 (id 80, empty range mostly) moves to become predecessor of
     node 1 at id 15: it takes keys 11..15. *)
  Cluster.change_id c ~node:7 ~id:(k_of_byte 15);
  Alcotest.(check int) "ownership split" 500 (Cluster.node_stats c 7).Cluster.primary_bytes;
  (* Pointers defer the physical move: no migration yet. *)
  Alcotest.(check (float 0.1)) "no bytes moved yet" 0.0 (Cluster.migration_bytes c);
  Alcotest.(check bool) "pointers pending" true
    ((Cluster.node_stats c 7).Cluster.pointer_count > 0);
  (* After the stabilization time the fetches run. *)
  Engine.run e ~until:(Cluster.default_config.Cluster.pointer_stabilization +. 7200.0);
  Alcotest.(check bool) "bytes migrated" true (Cluster.migration_bytes c > 0.0);
  Alcotest.(check int) "no pointers left" 0 (Cluster.node_stats c 7).Cluster.pointer_count;
  (* Keys 11..15 now physically on node 7. *)
  let holders = Cluster.physical_holders c ~key:(k_of_byte 12) in
  Alcotest.(check bool) "node 7 holds the block" true (List.mem 7 holders);
  Cluster.check_invariants c

let test_pointer_avoids_double_move () =
  (* The §6 cascade: B splits A, then D splits B before stabilization;
     the blocks B pointed at go directly from A to D — they move once. *)
  let e, c = mk () in
  for b = 11 to 18 do
    Cluster.put c ~key:(k_of_byte b) ~size:100 ()
  done;
  (* B = node 6 takes (.., 15]; its pointer fetches are pending. *)
  Cluster.change_id c ~node:6 ~id:(k_of_byte 15);
  (* D = node 7 takes (.., 13] from B's new range, still before
     stabilization. *)
  Engine.run e ~until:60.0;
  Cluster.change_id c ~node:7 ~id:(k_of_byte 13);
  Engine.run e ~until:(2.0 *. Cluster.default_config.Cluster.pointer_stabilization +. 7200.0);
  (* Blocks 11..13: desired now 7,6,1(+..): each byte should move at
     most ~once per final holder; with a naive scheme block 11..13
     would have moved to 6 and then again to 7. *)
  let migrated = Cluster.migration_bytes c in
  (* Final physical layout needs: node7 gets 11..13 (300 bytes),
     node6 gets 11..15 minus what it already... bound loosely: *)
  Alcotest.(check bool)
    (Printf.sprintf "migration %.0f bounded (single-move)" migrated)
    true
    (migrated <= 1300.0);
  Cluster.check_invariants c;
  (* And placement is correct. *)
  let h12 = Cluster.physical_holders c ~key:(k_of_byte 12) in
  Alcotest.(check bool) "12 at node 7" true (List.mem 7 h12)

let test_without_pointers_immediate () =
  let config = { Cluster.default_config with Cluster.use_pointers = false } in
  let e, c = mk ~config () in
  for b = 11 to 18 do
    Cluster.put c ~key:(k_of_byte b) ~size:100 ()
  done;
  Cluster.change_id c ~node:6 ~id:(k_of_byte 15);
  Engine.run e ~until:3600.0;
  Alcotest.(check bool) "migrated promptly" true (Cluster.migration_bytes c > 0.0);
  Alcotest.(check int) "no pointers" 0 (Cluster.node_stats c 6).Cluster.pointer_count;
  Cluster.check_invariants c

let test_median_primary_key () =
  let _, c = mk () in
  for b = 11 to 19 do
    Cluster.put c ~key:(k_of_byte b) ~size:100 ()
  done;
  (match Cluster.median_primary_key c ~node:1 with
  | None -> Alcotest.fail "expected a median"
  | Some k ->
      Alcotest.(check bool) "median splits the range" true
        (Key.compare (k_of_byte 13) k <= 0 && Key.compare k (k_of_byte 17) <= 0));
  Alcotest.(check bool) "empty node" true (Cluster.median_primary_key c ~node:5 = None)

let test_put_skips_down_nodes () =
  let _, c = mk () in
  Cluster.fail c ~node:1;
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  let holders = List.sort compare (Cluster.physical_holders c ~key) in
  Alcotest.(check (list int)) "skips the down node" [ 2; 3; 4 ] holders

let test_ttl_expiry () =
  let e, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ~ttl:100.0 ();
  Engine.run e ~until:99.0;
  Alcotest.(check bool) "alive before ttl" true (Cluster.mem c ~key);
  Engine.run e ~until:101.0;
  Alcotest.(check bool) "expired" false (Cluster.mem c ~key);
  Cluster.check_invariants c

let test_ttl_refresh_extends () =
  let e, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ~ttl:100.0 ();
  Engine.run e ~until:80.0;
  Cluster.refresh c ~key ~ttl:100.0;
  Engine.run e ~until:150.0;
  Alcotest.(check bool) "survived first deadline" true (Cluster.mem c ~key);
  Engine.run e ~until:181.0;
  Alcotest.(check bool) "expired at refreshed deadline" false (Cluster.mem c ~key)

let test_ttl_absent_without_opt () =
  let e, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  Cluster.refresh c ~key ~ttl:5.0;
  Engine.run e ~until:1000.0;
  Alcotest.(check bool) "no spontaneous expiry" true (Cluster.mem c ~key)

let test_ttl_overwrite_resets () =
  let e, c = mk () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ~ttl:50.0 ();
  Engine.run e ~until:30.0;
  (* Overwrite without a TTL: the block becomes permanent. *)
  Cluster.put c ~key ~size:60 ();
  Engine.run e ~until:500.0;
  Alcotest.(check bool) "permanent after overwrite" true (Cluster.mem c ~key);
  Cluster.check_invariants c

let test_hybrid_placement () =
  let config = { Cluster.default_config with Cluster.hybrid_replicas = true } in
  let _, c = mk ~n:8 ~config () in
  let rng = Rng.create 3 in
  (* Over many keys: 2 locality successors + 1 hashed copy that is
     usually outside the successor pair. *)
  let hashed_elsewhere = ref 0 and total = ref 0 in
  for _ = 1 to 50 do
    let key = Key.random rng in
    Cluster.put c ~key ~size:100 ();
    let holders = Cluster.physical_holders c ~key in
    Alcotest.(check int) "three copies" 3 (List.length holders);
    let succ2 = D2_dht.Ring.successors (Cluster.ring c) key 2 in
    incr total;
    if List.exists (fun h -> not (List.mem h succ2)) holders then incr hashed_elsewhere
  done;
  Alcotest.(check bool) "hashed copy usually off the successor run" true
    (!hashed_elsewhere > !total / 2);
  Cluster.check_invariants c

let test_hybrid_survives_group_outage () =
  let config = { Cluster.default_config with Cluster.hybrid_replicas = true } in
  let _, c = mk ~n:8 ~config () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:100 ();
  (* Kill the whole locality neighbourhood around the key. *)
  List.iter (fun n -> Cluster.fail c ~node:n) [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "hashed copy still serves" true
    (Cluster.available c ~key
    || (* unless the hashed position also fell in 0..3 for this key *)
    List.for_all (fun h -> h <= 3) (Cluster.physical_holders c ~key))

let test_erasure_fragment_accounting () =
  let config =
    { Cluster.default_config with Cluster.replicas = 4; redundancy = Cluster.Erasure 2 }
  in
  let _, c = mk ~config () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:8192 ();
  (* 4 fragments of 4096 bytes each: 2x storage instead of 4x. *)
  Alcotest.(check int) "four fragment holders" 4
    (List.length (Cluster.physical_holders c ~key));
  Alcotest.(check int) "fragment bytes" 4096
    (Cluster.node_stats c 1).Cluster.physical_bytes;
  Cluster.check_invariants c

let test_erasure_needs_m_fragments () =
  let config =
    { Cluster.default_config with Cluster.replicas = 4; redundancy = Cluster.Erasure 2 }
  in
  let _, c = mk ~config () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:8192 ();
  (* Holders are nodes 1..4.  With 2 fragments needed: *)
  Alcotest.(check bool) "4 up: ok" true (Cluster.available c ~key);
  Cluster.fail c ~node:1;
  Cluster.fail c ~node:2;
  Alcotest.(check bool) "2 up = m: still ok" true (Cluster.available c ~key);
  Cluster.fail c ~node:3;
  Alcotest.(check bool) "1 up < m: unavailable" false (Cluster.available c ~key);
  Cluster.recover c ~node:2;
  Alcotest.(check bool) "back to m" true (Cluster.available c ~key)

let test_erasure_regeneration () =
  let config =
    { Cluster.default_config with Cluster.replicas = 4; redundancy = Cluster.Erasure 2;
      migration_bandwidth = 1_000_000.0 }
  in
  let e, c = mk ~config () in
  let key = k_of_byte 15 in
  Cluster.put c ~key ~size:8192 ();
  Cluster.fail c ~node:1;
  Engine.run e ~until:60.0;
  (* A fresh fragment was rebuilt on node 5 (the next up successor). *)
  let holders = List.sort compare (Cluster.physical_holders c ~key) in
  Alcotest.(check (list int)) "rebuilt" [ 1; 2; 3; 4; 5 ] holders;
  Cluster.check_invariants c

let test_random_stress_invariants () =
  let rng = Rng.create 99 in
  let e, c = mk ~n:12 () in
  let keys = Array.init 200 (fun _ -> Key.random rng) in
  for step = 1 to 3000 do
    (match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        Cluster.put c ~key:(Rng.pick rng keys) ~size:(1 + Rng.int rng 8192) ()
    | 4 | 5 -> Cluster.remove c ~key:(Rng.pick rng keys) ()
    | 6 ->
        let node = Rng.int rng 12 in
        if Cluster.is_up c ~node then Cluster.fail c ~node else Cluster.recover c ~node
    | 7 ->
        let node = Rng.int rng 12 in
        let id = Key.random rng in
        if Cluster.is_up c ~node && not (Ring.id_taken (Cluster.ring c) id) then
          Cluster.change_id c ~node ~id
    | _ -> Engine.run e ~until:(Engine.now e +. 120.0));
    if step mod 500 = 0 then Cluster.check_invariants c
  done;
  Engine.run e ~until:(Engine.now e +. 7200.0);
  Cluster.check_invariants c

let () =
  Alcotest.run "d2_store"
    [
      ( "basic",
        [
          Alcotest.test_case "put/get" `Quick test_put_get;
          Alcotest.test_case "replication" `Quick test_replication_on_successors;
          Alcotest.test_case "wrap" `Quick test_replication_wraps;
          Alcotest.test_case "byte accounting" `Quick test_byte_accounting;
          Alcotest.test_case "overwrite" `Quick test_overwrite_replaces;
          Alcotest.test_case "delayed remove" `Quick test_delayed_remove;
          Alcotest.test_case "custom delay" `Quick test_remove_explicit_delay;
        ] );
      ( "ttl",
        [
          Alcotest.test_case "expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "refresh extends" `Quick test_ttl_refresh_extends;
          Alcotest.test_case "absent without opt" `Quick test_ttl_absent_without_opt;
          Alcotest.test_case "overwrite resets" `Quick test_ttl_overwrite_resets;
        ] );
      ( "failures",
        [
          Alcotest.test_case "availability" `Quick test_availability_under_failures;
          Alcotest.test_case "regeneration" `Quick test_regeneration;
          Alcotest.test_case "no copy lost" `Quick test_no_copy_lost_when_all_down;
          Alcotest.test_case "put skips down" `Quick test_put_skips_down_nodes;
        ] );
      ( "balancing",
        [
          Alcotest.test_case "change_id + pointers" `Quick test_change_id_migrates_with_pointers;
          Alcotest.test_case "no double move" `Quick test_pointer_avoids_double_move;
          Alcotest.test_case "immediate mode" `Quick test_without_pointers_immediate;
          Alcotest.test_case "median key" `Quick test_median_primary_key;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "placement" `Quick test_hybrid_placement;
          Alcotest.test_case "survives group outage" `Quick test_hybrid_survives_group_outage;
        ] );
      ( "erasure",
        [
          Alcotest.test_case "fragment accounting" `Quick test_erasure_fragment_accounting;
          Alcotest.test_case "m-of-n availability" `Quick test_erasure_needs_m_fragments;
          Alcotest.test_case "regeneration" `Quick test_erasure_regeneration;
        ] );
      ( "stress",
        [ Alcotest.test_case "random ops keep invariants" `Quick test_random_stress_invariants ] );
    ]
