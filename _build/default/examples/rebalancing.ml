(* Watching the load balancer work (§6, Figs. 5-6).

   Locality-preserving keys mean a freshly inserted directory tree
   lands on ONE node.  This example inserts a large volume into an
   idle 32-node cluster and prints the load distribution as the
   Karger-Ruhl balancer splits the hot spot, with block pointers
   deferring (and often avoiding) the physical copies.

   Run with: dune exec examples/rebalancing.exe *)

module Key = D2_keyspace.Key
module Engine = D2_simnet.Engine
module Cluster = D2_store.Cluster
module Balancer = D2_balance.Balancer
module Keymap = D2_core.Keymap
module Rng = D2_util.Rng

let show cluster label =
  let n = Cluster.node_count cluster in
  let loads =
    Array.init n (fun i ->
        (Cluster.node_stats cluster i).Cluster.physical_bytes / 1024)
  in
  let nonzero = Array.fold_left (fun a l -> if l > 0 then a + 1 else a) 0 loads in
  let maxload = Array.fold_left max 0 loads in
  let total = Array.fold_left ( + ) 0 loads in
  Printf.printf "%-12s %2d/%d nodes hold data, max %5d KB, mean %5d KB, migrated %5.1f MB\n"
    label nonzero n maxload (total / n)
    (Cluster.migration_bytes cluster /. 1.0e6)

let () =
  let engine = Engine.create () in
  let rng = Rng.create 12 in
  let ids = Array.init 32 (fun _ -> Key.random rng) in
  let config =
    { Cluster.default_config with Cluster.migration_bandwidth = 10_000_000.0 }
  in
  let cluster = Cluster.create ~engine ~config ~ids in
  (* Insert a 64 MB volume with D2 keys: everything hits one node. *)
  let km = Keymap.create Keymap.D2 ~volume:"bulk" in
  for f = 0 to 511 do
    let path = Printf.sprintf "/data/set%02d/file%03d" (f / 32) f in
    for b = 0 to 15 do
      Cluster.put cluster ~key:(Keymap.key_of km ~path ~block:b) ~size:8192 ()
    done
  done;
  show cluster "inserted:";
  (* Let the balancer run; print the distribution every simulated hour. *)
  let horizon = 12.0 *. 3600.0 in
  let b = Balancer.attach ~cluster ~rng:(Rng.split rng) ~until:horizon () in
  for hour = 1 to 12 do
    Engine.run engine ~until:(float_of_int hour *. 3600.0);
    if hour mod 2 = 0 then show cluster (Printf.sprintf "after %2dh:" hour)
  done;
  let st = Balancer.stats b in
  Printf.printf "balancer: %d probes, %d ID changes\n" st.Balancer.probes st.Balancer.moves;
  Cluster.check_invariants cluster
