(* Key anatomy: how D2 turns paths into ring positions (paper §4.2,
   Fig. 4) and why that preserves locality while hashing destroys it.

   Run with: dune exec examples/key_anatomy.exe *)

module Key = D2_keyspace.Key
module Encoding = D2_keyspace.Encoding
module Keygen = D2_keyspace.Keygen
module Keymap = D2_core.Keymap

let show_key label key =
  let hex = Key.to_hex key in
  (* Fig. 4 layout: 20B volume | 12x2B slots | 8B remainder hash |
     8B block | 4B version. *)
  Printf.printf "  %-28s %s %s %s %s %s\n" label
    (String.sub hex 0 40)      (* volume id *)
    (String.sub hex 40 48)     (* slot path *)
    (String.sub hex 88 16)     (* remainder hash *)
    (String.sub hex 104 16)    (* block number *)
    (String.sub hex 120 8)     (* version *)

let () =
  print_endline "Fig. 4 key layout: volume(20B) | slots(12x2B) | rem-hash(8B) | block(8B) | version(4B)";
  print_endline "";
  print_endline "D2 keys for a small tree (slots assigned in creation order):";
  let km = Keymap.create Keymap.D2 ~volume:"demo" in
  List.iter
    (fun (path, block) -> show_key (Printf.sprintf "%s[%d]" path block)
        (Keymap.key_of km ~path ~block))
    [
      ("/home/alice/a.txt", 0);
      ("/home/alice/a.txt", 1);
      ("/home/alice/b.txt", 0);
      ("/home/bob/c.txt", 0);
    ];
  print_endline "";
  print_endline "  -> a.txt's blocks are adjacent; b.txt is the next slot over;";
  print_endline "     bob's home is a different level-2 slot. One directory = one ring arc.";
  print_endline "";
  print_endline "The same blocks under traditional (content-hash) keys:";
  List.iter
    (fun (path, block) ->
      let key =
        Keygen.traditional_block ~volume:"demo" ~path ~block:(Int64.of_int block)
          ~version:0l
      in
      Printf.printf "  %-28s %s...\n" (Printf.sprintf "%s[%d]" path block)
        (String.sub (Key.to_hex key) 0 24))
    [ ("/home/alice/a.txt", 0); ("/home/alice/a.txt", 1); ("/home/alice/b.txt", 0) ];
  print_endline "";
  print_endline "  -> unrelated ring positions: every block lands on a different node.";
  print_endline "";
  print_endline "Deep paths (>12 levels) hash the remainder (under 1% of files, paper §4.2):";
  let deep = "/" ^ String.concat "/" (List.init 15 (fun i -> Printf.sprintf "d%d" i)) ^ "/f" in
  show_key "15-level path" (Keymap.key_of km ~path:deep ~block:0);
  let fields = Encoding.decode (Keymap.key_of km ~path:deep ~block:0) in
  Printf.printf "  decoded: %d positional slots kept, remainder hash %Lx\n"
    (Array.length fields.Encoding.slots) fields.Encoding.remainder_hash
