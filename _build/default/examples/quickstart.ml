(* Quickstart: bring up a simulated D2 deployment, mount a volume,
   and see defragmentation with your own eyes.

   Run with: dune exec examples/quickstart.exe *)

module Key = D2_keyspace.Key
module Engine = D2_simnet.Engine
module Cluster = D2_store.Cluster
module Fs = D2_fs.Fs
module Rng = D2_util.Rng

let holders_of cluster fs path =
  let keys = Fs.file_block_keys fs path in
  List.sort_uniq compare
    (List.concat_map (fun k -> Cluster.physical_holders cluster ~key:k) keys)

let () =
  (* 1. A 64-node storage cluster on a virtual clock. *)
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let ids = Array.init 64 (fun _ -> Key.random rng) in
  let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in

  (* 2. Mount a D2 volume (locality-preserving keys, Fig. 4). *)
  let fs = Fs.create ~cluster ~volume:"quickstart" ~mode:Fs.D2 () in

  (* 3. Write a small project tree. *)
  Fs.mkdir fs "/paper/figures";
  Fs.write_file fs ~path:"/paper/intro.tex" ~data:(String.make 24_000 'i');
  Fs.write_file fs ~path:"/paper/eval.tex" ~data:(String.make 40_000 'e');
  Fs.write_file fs ~path:"/paper/figures/fig1.svg" ~data:(String.make 9_000 'f');
  Fs.flush fs;
  Engine.run engine;

  (* 4. All three files — 10 blocks — live on one replica group. *)
  let all_holders =
    List.sort_uniq compare
      (List.concat_map (holders_of cluster fs)
         [ "/paper/intro.tex"; "/paper/eval.tex"; "/paper/figures/fig1.svg" ])
  in
  Printf.printf "The whole /paper tree is stored on %d of 64 nodes: %s\n"
    (List.length all_holders)
    (String.concat ", " (List.map string_of_int all_holders));

  (* 5. Compare with a traditional (consistent-hashing) volume. *)
  let trad = Fs.create ~cluster ~volume:"quickstart-trad" ~mode:Fs.Traditional () in
  Fs.write_file trad ~path:"/paper/intro.tex" ~data:(String.make 24_000 'i');
  Fs.write_file trad ~path:"/paper/eval.tex" ~data:(String.make 40_000 'e');
  Fs.write_file trad ~path:"/paper/figures/fig1.svg" ~data:(String.make 9_000 'f');
  Fs.flush trad;
  Engine.run engine;
  let trad_holders =
    List.sort_uniq compare
      (List.concat_map (holders_of cluster trad)
         [ "/paper/intro.tex"; "/paper/eval.tex"; "/paper/figures/fig1.svg" ])
  in
  Printf.printf "Under consistent hashing the same tree is spread over %d nodes.\n"
    (List.length trad_holders);

  (* 6. Reads verify integrity hashes up from the signed root. *)
  assert (Fs.read_file fs "/paper/eval.tex" = Some (String.make 40_000 'e'));
  Printf.printf "Read back eval.tex (40000 bytes) with per-block integrity checks.\n"
