(* Cooperative web cache (Squirrel-style) on a DHT — the paper's
   extreme-churn stress test (§10, Fig. 17, Tables 3-4).

   Clients insert fetched URLs into the DHT; objects not refreshed for
   a day are evicted.  Nearly all resident data turns over daily, so
   the load balancer has to chase a moving key distribution.  We
   replay the workload under D2 and under plain consistent hashing and
   report imbalance and migration overhead.

   Run with: dune exec examples/web_cache.exe *)

module Rng = D2_util.Rng
module Web = D2_trace.Web
module Webcache = D2_trace.Webcache
module Balance_sim = D2_core.Balance_sim

let () =
  let web_params =
    { Web.default_params with Web.clients = 40; days = 3.0; domains = 400 }
  in
  let web = Web.generate ~rng:(Rng.create 3) ~params:web_params () in
  let trace = Webcache.of_web_trace web in
  Printf.printf "Webcache workload: %d ops (%d inserts, %d evictions)\n\n"
    (Array.length trace.D2_trace.Op.ops)
    (D2_trace.Op.count_kind trace D2_trace.Op.Create)
    (D2_trace.Op.count_kind trace D2_trace.Op.Delete);
  let params =
    { (Balance_sim.default_params ~nodes:50 ~seed:4) with Balance_sim.warmup = 3600.0 }
  in
  List.iter
    (fun setup ->
      let r = Balance_sim.run ~trace ~setup ~params in
      let samples = r.Balance_sim.samples in
      let late =
        (* Mean imbalance after the first day of warm-up. *)
        let xs =
          Array.of_list
            (List.filter_map
               (fun (t, v) -> if t > 86400.0 then Some v else None)
               (Array.to_list samples))
        in
        D2_util.Stats.mean xs
      in
      let total arr = Array.fold_left ( +. ) 0.0 arr in
      Printf.printf
        "%-18s  imbalance(after day1)=%.2f  max/mean=%.2f  migrated=%.0f MB  written=%.0f MB\n"
        (Balance_sim.setup_name r.Balance_sim.r_setup) late r.Balance_sim.max_over_mean
        (total r.Balance_sim.daily_migrated_mb)
        (total r.Balance_sim.daily_written_mb))
    [ Balance_sim.D2; Balance_sim.Traditional ];
  print_endline "\nEven with ~100% daily churn, D2 keeps storage balanced while";
  print_endline "migrating roughly as many bytes as clients write (paper Table 4)."
