examples/key_anatomy.mli:
