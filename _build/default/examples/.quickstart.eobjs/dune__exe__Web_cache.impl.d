examples/web_cache.ml: Array D2_core D2_trace D2_util List Printf
