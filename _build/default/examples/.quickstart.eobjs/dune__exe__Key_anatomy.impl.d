examples/key_anatomy.ml: Array D2_core D2_keyspace Int64 List Printf String
