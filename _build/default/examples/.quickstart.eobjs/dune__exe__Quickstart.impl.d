examples/quickstart.ml: Array D2_fs D2_keyspace D2_simnet D2_store D2_util List Printf String
