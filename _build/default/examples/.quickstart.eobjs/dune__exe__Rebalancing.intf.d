examples/rebalancing.mli:
