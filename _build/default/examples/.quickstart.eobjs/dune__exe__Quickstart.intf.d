examples/quickstart.mli:
