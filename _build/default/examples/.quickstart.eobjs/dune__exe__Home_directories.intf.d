examples/home_directories.mli:
