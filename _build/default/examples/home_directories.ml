(* Home-directory service: the paper's motivating scenario (§1, §3).

   A community of users stores home directories in the DHT.  We replay
   a synthetic NFS week against both a D2 and a traditional deployment
   while injecting correlated node failures, and compare how often a
   user-visible task fails — the paper's headline availability result
   (Fig. 7) at example scale.

   Run with: dune exec examples/home_directories.exe *)

module Rng = D2_util.Rng
module Harvard = D2_trace.Harvard
module Failure = D2_trace.Failure
module Keymap = D2_core.Keymap
module Availability = D2_core.Availability

let () =
  let params =
    { Harvard.default_params with Harvard.users = 20;
      target_bytes = 32 * 1024 * 1024; days = 3.0 }
  in
  let trace = Harvard.generate ~rng:(Rng.create 7) ~params () in
  Printf.printf "Synthetic NFS trace: %d users, %d block accesses over %.0f days\n"
    trace.D2_trace.Op.users
    (Array.length trace.D2_trace.Op.ops)
    (trace.D2_trace.Op.duration /. 86400.0);
  let failures =
    Failure.generate ~rng:(Rng.create 8) ~n:60 ~duration:trace.D2_trace.Op.duration ()
  in
  Printf.printf "Failure trace: %d up/down events on 60 nodes (correlated outages included)\n\n"
    (Array.length failures.Failure.events);
  List.iter
    (fun mode ->
      let replay = Availability.replay ~trace ~failures ~mode ~seed:11 () in
      let st = Availability.task_unavailability ~trace ~replay ~inter:5.0 in
      let affected =
        Array.fold_left
          (fun acc (_, u) -> if u > 0.0 then acc + 1 else acc)
          0 st.Availability.per_user_unavailability
      in
      Printf.printf
        "%-18s  %5d tasks, %3d failed (unavailability %.2e), %2d users affected, %.1f nodes/task\n"
        (Keymap.mode_name mode) st.Availability.tasks st.Availability.failed
        st.Availability.unavailability affected st.Availability.mean_nodes_per_task)
    [ Keymap.Traditional; Keymap.Traditional_file; Keymap.D2 ];
  print_endline "\nD2 tasks touch ~2 replica groups instead of ~15, so correlated";
  print_endline "outages fail an order of magnitude fewer tasks, concentrated in";
  print_endline "the few users whose data lived on the dead group (paper Figs. 7-8)."
