(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (via d2_experiments) and then runs Bechamel
   micro-benchmarks of the core data-structure operations.

   Scale is controlled by D2_SCALE (paper | quick) and parallelism by
   D2_JOBS (worker domains; default = recommended_domain_count - 1);
   see lib/experiments/config.mli and lib/util/pool.mli.  Experiments
   run concurrently but print deterministically in registry order.

   Usage: dune exec bench/main.exe -- [ids...] [--no-micro] [--json FILE]
     ids         run a subset, e.g. `fig9 fig13` (default: everything)
     --no-micro  skip the Bechamel micro-benchmarks
     --json FILE machine-readable results path (default BENCH_results.json)

   Every run writes a JSON results file (per-experiment wall seconds,
   micro ns/op, scale, job count) so later PRs can compare perf. *)

module Config = D2_experiments.Config
module Registry = D2_experiments.Registry
module Key = D2_keyspace.Key
module Encoding = D2_keyspace.Encoding
module Ring = D2_dht.Ring
module Router = D2_dht.Router
module Rng = D2_util.Rng
module Pool = D2_util.Pool
module Gc_tune = D2_util.Gc_tune
module Lookup_cache = D2_cache.Lookup_cache
module Range_arena = D2_cache.Range_arena
module Zipf = D2_util.Zipf
module Op = D2_trace.Op
module Plan = D2_trace.Plan
module Keymap = D2_trace.Keymap
module Failure = D2_trace.Failure
module Engine = D2_simnet.Engine
module Cluster = D2_store.Cluster
module Availability = D2_core.Availability

let run_experiments scale ids ~jobs =
  let entries =
    match ids with
    | [] -> Registry.all
    | ids ->
        List.filter_map
          (fun id ->
            match Registry.find id with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment id %S (see `d2ctl list`)\n%!" id;
                None)
          ids
  in
  Printf.printf "== D2 evaluation reproduction (scale: %s, jobs: %d) ==\n\n%!"
    (Config.scale_name scale) jobs;
  let outcomes = Registry.run_entries ~jobs scale entries in
  List.iter Registry.print_outcome outcomes;
  outcomes

(* {1 Bechamel micro-benchmarks} *)

(* Small synthetic trace for the Plan micro-benchmarks: enough ops to
   exercise the path-interning and key-derivation loops, small enough
   that one compile is microseconds. *)
let micro_trace =
  lazy
    (let ops =
       Array.init 512 (fun i ->
           {
             Op.time = float_of_int i;
             user = i mod 4;
             path = Printf.sprintf "/f%d/b%d" (i mod 16) (i / 16);
             file = i mod 16;
             block = i / 16;
             kind = (match i land 3 with 0 -> Op.Create | 1 -> Op.Write | _ -> Op.Read);
             bytes = Op.block_size;
           })
     in
     {
       Op.name = "micro";
       duration = 600.0;
       users = 4;
       ops;
       initial_files =
         Array.init 16 (fun f ->
             {
               Op.file_id = f;
               file_path = Printf.sprintf "/f%d" f;
               file_bytes = 32 * Op.block_size;
             });
     })

let plan_tests () =
  let open Bechamel in
  let trace = Lazy.force micro_trace in
  let plan = Plan.of_trace trace in
  (* Fresh volume name per run so [replay_keys] measures actual key
     derivation, not a memo-table hit. *)
  let vol = ref 0 in
  [
    Test.make ~name:"plan_compile" (Staged.stage (fun () ->
        ignore (Plan.compile trace)));
    Test.make ~name:"plan_replay_keys" (Staged.stage (fun () ->
        incr vol;
        ignore
          (Plan.replay_keys plan
             ~volume:(Printf.sprintf "micro@%d" !vol)
             ~mode:Keymap.D2 ~policy:Plan.Reads_and_writes)));
  ]

(* Store / availability macro-micros: each run is one full simulated
   scenario (small enough for the quick quota) over the block-arena
   cluster store and timer-wheel engine, so their numbers track the
   hot paths the tentpole optimized. *)

(* One failure + regeneration + recovery + trim cycle on a 40-node,
   512-block cluster, draining the engine between phases.  The cluster
   persists across iterations (each cycle returns it to its steady
   replica placement), rotating which node fails. *)
let cluster_fail_recover_test () =
  let open Bechamel in
  let rng = Rng.create 7 in
  let engine = Engine.create () in
  let ids = Array.init 40 (fun _ -> Key.random rng) in
  let cluster = Cluster.create ~engine ~config:Cluster.default_config ~ids in
  for _ = 1 to 512 do
    Cluster.put cluster ~key:(Key.random rng) ~size:8192 ()
  done;
  let node = ref 0 in
  Test.make ~name:"cluster_fail_recover" (Staged.stage (fun () ->
      let n = !node in
      node := (n + 1) mod 40;
      Cluster.fail cluster ~node:n;
      Engine.run engine;
      Cluster.recover cluster ~node:n;
      Engine.run engine))

(* A full availability replay of a ~1k-op synthetic trace with a
   24-node failure schedule (no balancer, short warmup: the replay
   loop, cluster reconciliation and wheel-driven transfers dominate). *)
let availability_replay_1k_test () =
  let open Bechamel in
  let ops =
    Array.init 1024 (fun i ->
        {
          Op.time = float_of_int i *. 60.0;
          user = i mod 4;
          path = Printf.sprintf "/f%d/b%d" (i mod 16) ((i / 16) mod 32);
          file = i mod 16;
          block = (i / 16) mod 32;
          kind = (match i land 3 with 0 -> Op.Create | 1 -> Op.Write | _ -> Op.Read);
          bytes = Op.block_size;
        })
  in
  let trace =
    {
      Op.name = "avail_micro";
      duration = (1024.0 *. 60.0) +. 600.0;
      users = 4;
      ops;
      initial_files =
        Array.init 16 (fun f ->
            {
              Op.file_id = f;
              file_path = Printf.sprintf "/f%d" f;
              file_bytes = 32 * Op.block_size;
            });
    }
  in
  let failures =
    Failure.generate ~rng:(Rng.create 777) ~n:24 ~duration:(trace.Op.duration +. 600.0) ()
  in
  let params =
    {
      Availability.replicas = 3;
      redundancy = Cluster.Replication;
      warmup = 600.0;
      use_balancer = false;
      regen_hours_per_node = 3.0;
      hybrid_replicas = false;
    }
  in
  Test.make ~name:"availability_replay_1k" (Staged.stage (fun () ->
      ignore
        (Availability.replay ~trace ~failures ~mode:Keymap.D2 ~seed:11 ~params ())))

(* Fine-grained micros run a batch of [micro_batch] operations per
   staged call and the harness divides the OLS estimate by that count.
   One-op-per-run sampling mislabeled batch effects as per-op cost:
   each sample then carries the fixed harness overhead and — after the
   experiment suite has grown the major heap — a GC slice, which is
   how a 64-byte [Key.compare] was reported at 3,782 ns/op when a
   counted loop measures ~9 ns.  Batching amortizes both, so the
   reported number is the true marginal cost. *)
let micro_batch = 1024

(* Wire-codec throughput: encode a batch of representative frames
   (lookup / owner / 256 B put / ack) into one preallocated buffer. *)
let net_frame_encode_test () =
  let open Bechamel in
  let rng = Rng.create 0xd2f in
  let keys = Array.init 64 (fun _ -> Key.random rng) in
  let payload = String.make 256 'x' in
  let buf = Bytes.create D2_net.Wire.max_frame in
  let msgs =
    Array.init micro_batch (fun i ->
        match i land 3 with
        | 0 -> D2_net.Wire.Lookup { key = keys.(i land 63) }
        | 1 ->
            D2_net.Wire.Owner
              { node = i; lo = keys.(i land 63); hi = keys.((i + 1) land 63) }
        | 2 ->
            D2_net.Wire.Put
              {
                key = keys.(i land 63);
                depth = 2;
                vv = D2_net.Wire.vv_empty;
                data = payload;
              }
        | _ -> D2_net.Wire.Put_ack { copies = 3; vv = D2_net.Wire.vv_empty })
  in
  Test.make ~name:"net_frame_encode" (Staged.stage (fun () ->
      let acc = ref 0 in
      for i = 0 to micro_batch - 1 do
        acc := !acc + D2_net.Wire.encode_into buf ~off:0 ~req:i msgs.(i)
      done;
      ignore (Sys.opaque_identity !acc)))

(* One replicated put + one get through the full protocol stack
   (client cache, linkset, wire codec, node runtime) over the
   in-process transport on a 3-node virtual cluster. *)
let net_mem_rpc_test () =
  let open Bechamel in
  let module Mem = D2_net.Transport_mem in
  let module Node = D2_net.Node.Make (D2_net.Transport_mem) in
  let module Client = D2_net.Client.Make (D2_net.Transport_mem) in
  let engine = Engine.create () in
  let topology =
    D2_simnet.Topology.create ~rng:(Rng.create 0x6e6d) ~n:4 ()
  in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x2 () in
  let peers = D2_net.Bootstrap.peers 3 in
  let config =
    {
      D2_net.Node.replicas = 3;
      probe_interval = 60.0;
      rpc_timeout = 5.0;
      repair_interval = 0.0;
    }
  in
  let nodes =
    List.map
      (fun (i, id) -> Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
  in
  List.iter Node.serve nodes;
  Engine.run engine ~until:2.0;
  let client =
    Client.create (Mem.endpoint net ~node:3) ~replicas:3 ~rpc_timeout:5.0
      ~seeds:[ 0; 1; 2 ] ()
  in
  let krng = Rng.create 0x6b in
  let keys = Array.init 64 (fun _ -> Key.random krng) in
  let data = String.make 256 'd' in
  let idx = ref 0 in
  Test.make ~name:"net_mem_rpc" (Staged.stage (fun () ->
      let key = keys.(!idx land 63) in
      incr idx;
      (match Client.put client ~key ~data with
      | `Ok _ -> ()
      | `Failed -> failwith "net_mem_rpc: put failed");
      match Client.get client ~key with
      | `Found _ -> ()
      | `Missing | `Failed -> failwith "net_mem_rpc: get failed"))

(* Version-vector merge over a batch of prebuilt pairs: the kernel the
   replica write path and every digest comparison run per entry. *)
let vv_merge_test () =
  let open Bechamel in
  let module Vv = D2_sync.Version_vector in
  let vrng = Rng.create 0x77aa in
  let mk () =
    let v = ref Vv.empty in
    for _ = 1 to 1 + Rng.int vrng 6 do
      v := Vv.bump !v ~node:(Rng.int vrng 16)
    done;
    !v
  in
  let pairs = Array.init micro_batch (fun _ -> (mk (), mk ())) in
  Test.make ~name:"vv_merge" (Staged.stage (fun () ->
      let acc = ref 0 in
      for i = 0 to micro_batch - 1 do
        let a, b = pairs.(i) in
        acc := !acc + Vv.cardinal (Vv.merge a b)
      done;
      ignore (Sys.opaque_identity !acc)))

(* Root-level digest build over a 4096-entry version map: one full
   CRC-32C fold into 16 buckets, the fixed cost every repair session
   pays per round regardless of how little diverged. *)
let digest_build_4k_test () =
  let open Bechamel in
  let module Vv = D2_sync.Version_vector in
  let module Vmap = D2_sync.Vmap in
  let module Digest = D2_sync.Digest in
  let vmap = Vmap.create () in
  let krng = Rng.create 0xd16 in
  for i = 0 to 4095 do
    ignore
      (Vmap.stamp_put vmap ~key:(Key.random krng) ~node:(i land 31)
         ~incoming:Vv.empty)
  done;
  Test.make ~name:"digest_build_4k" (Staged.stage (fun () ->
      let children =
        Digest.children ~iter:(fun f -> Vmap.iter vmap f) ~prefix:0 ~bits:0
      in
      ignore (Sys.opaque_identity children)))

(* One quorum-2 get through the full stack on a 3-node cluster: the
   owner consults a replica and folds version vectors before
   answering, so this gates the Get_q path net_mem_rpc never takes. *)
let quorum_get_test () =
  let open Bechamel in
  let module Mem = D2_net.Transport_mem in
  let module Node = D2_net.Node.Make (D2_net.Transport_mem) in
  let module Client = D2_net.Client.Make (D2_net.Transport_mem) in
  let engine = Engine.create () in
  let topology = D2_simnet.Topology.create ~rng:(Rng.create 0x9047) ~n:4 () in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x5 () in
  let peers = D2_net.Bootstrap.peers 3 in
  let config =
    {
      D2_net.Node.replicas = 3;
      probe_interval = 60.0;
      rpc_timeout = 5.0;
      repair_interval = 0.0;
    }
  in
  let nodes =
    List.map
      (fun (i, id) -> Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
  in
  List.iter Node.serve nodes;
  Engine.run engine ~until:2.0;
  let client =
    Client.create (Mem.endpoint net ~node:3) ~replicas:3 ~quorum_r:2
      ~rpc_timeout:5.0 ~seeds:[ 0; 1; 2 ] ()
  in
  let krng = Rng.create 0x9b in
  let keys = Array.init 64 (fun _ -> Key.random krng) in
  let data = String.make 256 'q' in
  Array.iter
    (fun key ->
      match Client.put client ~key ~data with
      | `Ok _ -> ()
      | `Failed -> failwith "quorum_get: seed put failed")
    keys;
  let idx = ref 0 in
  Test.make ~name:"quorum_get" (Staged.stage (fun () ->
      let key = keys.(!idx land 63) in
      incr idx;
      match Client.get client ~key with
      | `Found _ -> ()
      | `Missing | `Failed -> failwith "quorum_get: get failed"))

(* Write coalescing: queue windows of 16 frames on one link and flush
   each window as a single transport send, then drain the virtual
   network so the receive side pays reassembly and dispatch too.
   Gates the per-frame cost of the pipelined output path. *)
let coalesce_window = 16

let net_write_coalesce_test () =
  let open Bechamel in
  let module Mem = D2_net.Transport_mem in
  let module L = D2_net.Linkset.Make (D2_net.Transport_mem) in
  let engine = Engine.create () in
  let topology = D2_simnet.Topology.create ~rng:(Rng.create 0x77c) ~n:2 () in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x3 () in
  let a = Mem.endpoint net ~node:0 in
  let b = Mem.endpoint net ~node:1 in
  let la = L.create a in
  let lb = L.create b in
  Mem.on_accept b (fun conn -> ignore (L.attach lb conn));
  let link =
    match L.link_to la 1 with
    | Some l -> l
    | None -> failwith "net_write_coalesce: connect failed"
  in
  let msg = D2_net.Wire.Probe_ack { node = 7; epoch = 1 } in
  Test.make ~name:"net_write_coalesce" (Staged.stage (fun () ->
      for w = 0 to (micro_batch / coalesce_window) - 1 do
        for i = 0 to coalesce_window - 1 do
          L.reply link ~req:((w * coalesce_window) + i) msg
        done;
        L.flush_all la
      done;
      (* Deliver everything queued this run: the replies land on [lb]
         with no pending entry and are dropped after decode. *)
      L.poll la ~timeout:2.0))

(* A full window of pipelined gets through the client stack (range
   cache, request-id correlation, coalesced flush) on the in-process
   3-node cluster — the mem-transport twin of d2load's replay loop at
   in-flight = 16. *)
let pipeline_window = 16

let net_pipelined_rpc_test () =
  let open Bechamel in
  let module Mem = D2_net.Transport_mem in
  let module Node = D2_net.Node.Make (D2_net.Transport_mem) in
  let module Client = D2_net.Client.Make (D2_net.Transport_mem) in
  let engine = Engine.create () in
  let topology =
    D2_simnet.Topology.create ~rng:(Rng.create 0x70a) ~n:4 ()
  in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x9 () in
  let peers = D2_net.Bootstrap.peers 3 in
  let config =
    {
      D2_net.Node.replicas = 3;
      probe_interval = 60.0;
      rpc_timeout = 5.0;
      repair_interval = 0.0;
    }
  in
  let nodes =
    List.map
      (fun (i, id) -> Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
  in
  List.iter Node.serve nodes;
  Engine.run engine ~until:2.0;
  let client =
    Client.create (Mem.endpoint net ~node:3) ~replicas:3 ~rpc_timeout:5.0
      ~seeds:[ 0; 1; 2 ] ()
  in
  let krng = Rng.create 0x6c in
  let keys = Array.init 64 (fun _ -> Key.random krng) in
  let data = String.make 256 'p' in
  Array.iter
    (fun key ->
      match Client.put client ~key ~data with
      | `Ok _ -> ()
      | `Failed -> failwith "net_pipelined_rpc: preload put failed")
    keys;
  let idx = ref 0 in
  Test.make ~name:"net_pipelined_rpc" (Staged.stage (fun () ->
      let completed = ref 0 in
      for _ = 1 to pipeline_window do
        let key = keys.(!idx land 63) in
        incr idx;
        Client.get_async client ~key (function
          | `Found _ -> incr completed
          | `Missing | `Failed -> failwith "net_pipelined_rpc: get failed")
      done;
      while !completed < pipeline_window do
        Client.poll client ~timeout:0.01
      done))

(* {2 Fleet micros}

   [fleet_cache_probe] is the d2fleet hot kernel in isolation: 256
   clients share one range arena, each probing mostly its home range
   with a cross-range jump every 16th op — the hit-dominated d2
   locality regime, measured warm.  [fleet_step] is the end-to-end
   per-op cost: wheel fire, zipf draw, arena probe, re-arm — a fresh
   engine per staged run firing exactly [micro_batch] cells. *)

let fleet_clients = 256
let fleet_ranges = 64

let fleet_arena () =
  let arena =
    Range_arena.create ~ways:8 ~shards:1 ~clients:fleet_clients ()
  in
  Range_arena.set_ranges arena
    ~bounds:(Array.init fleet_ranges (fun i -> 128 * (i + 1)))
    ~owners:(Array.init fleet_ranges Fun.id);
  arena

(* Ticks are shared across staged runs (slots stay warm); wrap far
   below the arena's 28-bit limit. *)
let fleet_tick t =
  let n = if !t >= Range_arena.max_tick then 1 else !t + 1 in
  t := n;
  n

let fleet_cache_probe_test () =
  let open Bechamel in
  let arena = fleet_arena () in
  let prng = Rng.create 23 in
  let cli = Array.make micro_batch 0 in
  let pos = Array.make micro_batch 0 in
  for i = 0 to micro_batch - 1 do
    let c = i land (fleet_clients - 1) in
    let home = c land (fleet_ranges - 1) in
    let r = if i land 15 = 0 then Rng.int prng fleet_ranges else home in
    cli.(i) <- c;
    pos.(i) <- (128 * r) + 1 + (2 * Rng.int prng 63)
  done;
  let tick = ref 0 in
  let acc = ref 0 in
  for i = 0 to micro_batch - 1 do
    (* warm the slots: the measured loop is the steady state *)
    ignore
      (Range_arena.probe arena ~shard:0 ~cls:0 ~client:cli.(i) ~pos:pos.(i)
         ~tick:(fleet_tick tick) ~cap:8)
  done;
  Test.make ~name:"fleet_cache_probe"
    (Staged.stage (fun () ->
         for i = 0 to micro_batch - 1 do
           acc :=
             !acc
             + Range_arena.probe arena ~shard:0 ~cls:0 ~client:cli.(i)
                 ~pos:pos.(i) ~tick:(fleet_tick tick) ~cap:8
         done))

let fleet_step_test () =
  let open Bechamel in
  let arena = fleet_arena () in
  let zipf = Zipf.create ~n:fleet_ranges ~s:0.9 in
  let tick = ref 0 in
  let acc = ref 0 in
  Test.make ~name:"fleet_step"
    (Staged.stage (fun () ->
         let eng = Engine.create ~granularity:0.08 () in
         let rng = Rng.create 31 in
         let fired = ref 0 in
         let handler = ref (fun (_ : int) (_ : int) -> ()) in
         let sink =
           Engine.register_sink eng (fun tag payload -> !handler tag payload)
         in
         handler :=
           (fun _ client ->
             incr fired;
             let r = Zipf.sample zipf rng in
             let pos = (128 * r) + 1 + (2 * (client land 63)) in
             acc :=
               !acc
               + Range_arena.probe arena ~shard:0 ~cls:0 ~client ~pos
                   ~tick:(fleet_tick tick) ~cap:8;
             if !fired <= micro_batch - fleet_clients then
               Engine.post_in eng ~sink
                 ~delay:(Rng.exponential rng ~mean:5.0)
                 ~tag:0 ~payload:client);
         for c = 0 to fleet_clients - 1 do
           Engine.post_in eng ~sink ~delay:(Rng.float rng 5.0) ~tag:0
             ~payload:c
         done;
         (* exactly [micro_batch] fires: the initial cells plus one
            re-arm per fire up to the quota *)
         Engine.run eng))

(* {2 Segment-store micros}

   The durable-store kernels: buffered append + group commit, the
   out-of-core read (pread, cache off), the cache-hit read, and
   recovery's log replay.  Stores live on tmpfs when the machine has
   one so the numbers gate the store's own code path, not the CI
   runner's disk (the smoke test measures real devices end-to-end). *)

module Seg_store = D2_segstore.Store

let bench_store_root =
  lazy
    (let base =
       let shm = "/dev/shm" in
       try
         if Sys.is_directory shm then shm else Filename.get_temp_dir_name ()
       with Sys_error _ -> Filename.get_temp_dir_name ()
     in
     let root =
       Filename.concat base (Printf.sprintf "d2-bench-store-%d" (Unix.getpid ()))
     in
     let rec rm_rf path =
       match Unix.lstat path with
       | { Unix.st_kind = Unix.S_DIR; _ } ->
           Array.iter
             (fun e -> rm_rf (Filename.concat path e))
             (Sys.readdir path);
           Unix.rmdir path
       | _ -> Unix.unlink path
       | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
     in
     rm_rf root;
     at_exit (fun () -> rm_rf root);
     root)

let bench_store_dir name =
  Filename.concat (Lazy.force bench_store_root) name

(* Wire-realistic keys (the trace keymap produces well-spread digests;
   a counter-in-ASCII key would defeat [Key.hash]'s designed blind
   spots and benchmark a collision chain instead of the store). *)
let store_keys =
  lazy
    (let rng = Rng.create 0x5705 in
     Array.init micro_batch (fun _ -> Key.random rng))

let store_append_batch_test () =
  let open Bechamel in
  let config = { Seg_store.default_config with cache_bytes = 0 } in
  let st = Seg_store.create ~dir:(bench_store_dir "append") ~config () in
  let keys = Lazy.force store_keys in
  let data = String.make 256 'a' in
  Test.make ~name:"store_append_batch" (Staged.stage (fun () ->
      for i = 0 to micro_batch - 1 do
        ignore (Seg_store.put st ~key:keys.(i) ~data)
      done;
      (* One group commit covers the whole batch: the amortized
         fdatasync is part of the per-op cost being gated. *)
      Seg_store.flush st))

let store_read_test ~name ~cache_bytes =
  let open Bechamel in
  let config = { Seg_store.default_config with cache_bytes } in
  let st = Seg_store.create ~dir:(bench_store_dir name) ~config () in
  let keys = Lazy.force store_keys in
  let data = String.make 256 'r' in
  for i = 0 to micro_batch - 1 do
    ignore (Seg_store.put st ~key:keys.(i) ~data)
  done;
  Seg_store.flush st;
  (* Prime the cache (a no-op when it is disabled). *)
  for i = 0 to micro_batch - 1 do
    ignore (Seg_store.get st ~key:keys.(i))
  done;
  Test.make ~name (Staged.stage (fun () ->
      for i = 0 to micro_batch - 1 do
        match Seg_store.get st ~key:keys.(i) with
        | Some _ -> ()
        | None -> failwith (name ^ ": lost a block")
      done))

(* Per-record replay cost: a log with no usable checkpoint is recovered
   from scratch each run (the reopen's own checkpoint is deleted after
   closing, so every iteration pays the full scan + index rebuild). *)
let store_recovery_records = 4096

let store_recovery_replay_test () =
  let open Bechamel in
  let dir = bench_store_dir "recovery" in
  let config = { Seg_store.default_config with cache_bytes = 0 } in
  let st = Seg_store.create ~dir ~config () in
  let rng = Rng.create 0x4ec0 in
  let data = String.make 256 'v' in
  for _ = 1 to store_recovery_records do
    ignore (Seg_store.put st ~key:(Key.random rng) ~data)
  done;
  Seg_store.flush st;
  Seg_store.crash st;
  let ckpt = Filename.concat dir "index.ckpt" in
  Test.make ~name:"store_recovery_replay" (Staged.stage (fun () ->
      let st = Seg_store.create ~dir ~config () in
      (match Seg_store.recovery st with
      | Some r
        when r.Seg_store.r_replayed_records >= store_recovery_records -> ()
      | _ -> failwith "store_recovery_replay: replay skipped");
      Seg_store.crash st;
      (* Drop the reopen's checkpoint so the next run replays again. *)
      try Sys.remove ckpt with Sys_error _ -> ()))

let micro_tests ~full () =
  let open Bechamel in
  let rng = Rng.create 99 in
  let bench_zipf = Zipf.create ~n:4096 ~s:0.9 in
  let zrng = Rng.create 17 in
  let keys = Array.init micro_batch (fun _ -> Key.random rng) in
  let ring = Ring.create () in
  for i = 0 to 999 do
    Ring.add ring ~id:(Key.random rng) ~node:i
  done;
  let router = Router.create ~ring ~policy:Router.Fingers ~rng:(Rng.copy rng) in
  let router_chord = Router.create ~ring ~policy:Router.Chord ~rng:(Rng.copy rng) in
  let router_kad = Router.create ~ring ~policy:(Router.Kademlia 2) ~rng:(Rng.copy rng) in
  let cache = Lookup_cache.create () in
  for i = 0 to 499 do
    let lo = keys.(i) and hi = keys.(i + 1) in
    if Key.compare lo hi < 0 then Lookup_cache.insert cache ~now:0.0 ~lo ~hi ~node:i
  done;
  let volume = Encoding.volume_id "bench" in
  (* D2-mode cache probe: one volume's keys share their 20-byte volume
     prefix, and a task's successive probes land in the range it just
     cached (the paper's up-to-95%-hit regime, §5). *)
  let d2_keys =
    Array.init micro_batch (fun i ->
        Encoding.of_slot_path ~volume
          ~slots:[ 1; 1 + (i / 64) ]
          ~block:(Int64.of_int (i land 63))
          ~version:0l)
  in
  let d2_cache = Lookup_cache.create () in
  for i = 0 to 15 do
    Lookup_cache.insert d2_cache ~now:0.0 ~lo:d2_keys.(i * 64)
      ~hi:d2_keys.((i * 64) + 63)
      ~node:i
  done;
  let resolved = Array.make micro_batch 0 in
  let sink = ref 0 in
  (* [`Quick]-tier tests run at every scale (a reduced set that still
     covers compare / routing / cache probe); [`Full] ones only under
     D2_SCALE=paper.  The int is the per-run op count used to
     normalize the estimate. *)
  let tiered =
    [
      (`Quick, micro_batch, Test.make ~name:"key_compare" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             acc := !acc + Key.compare keys.(i) keys.(0)
           done;
           sink := !acc)));
      (`Full, 1, Test.make ~name:"key_encode_fig4" (Staged.stage (fun () ->
           ignore
             (Encoding.of_slot_path ~volume ~slots:[ 1; 2; 3; 4 ] ~block:7L ~version:0l))));
      (`Full, 1, Test.make ~name:"key_decode_fig4" (Staged.stage (
           let k = Encoding.of_slot_path ~volume ~slots:[ 1; 2; 3; 4 ] ~block:7L ~version:0l in
           fun () -> ignore (Encoding.decode k))));
      (`Quick, micro_batch, Test.make ~name:"ring_successor_1000" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             acc := !acc + Ring.successor ring keys.(i)
           done;
           sink := !acc)));
      (`Full, micro_batch, Test.make ~name:"ring_route_hops_1000" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             acc := !acc + Ring.route_hops ring ~src:0 ~key:keys.(i)
           done;
           sink := !acc)));
      (`Quick, micro_batch, Test.make ~name:"router_route" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             acc := !acc + Router.hops router ~src:(i mod 1000) ~key:keys.(i)
           done;
           sink := !acc)));
      (`Quick, micro_batch, Test.make ~name:"router_route_chord" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             acc := !acc + Router.hops router_chord ~src:(i mod 1000) ~key:keys.(i)
           done;
           sink := !acc)));
      (`Quick, micro_batch, Test.make ~name:"router_route_kad" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             acc := !acc + Router.hops router_kad ~src:(i mod 1000) ~key:keys.(i)
           done;
           sink := !acc)));
      (`Quick, micro_batch, Test.make ~name:"route_alpha" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             let h, m = Router.route_alpha router ~src:(i mod 1000) ~key:keys.(i) ~alpha:2 in
             acc := !acc + h + m
           done;
           sink := !acc)));
      (`Full, micro_batch, Test.make ~name:"lookup_cache_probe" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             acc := !acc + Lookup_cache.find cache ~now:1.0 keys.(i)
           done;
           sink := !acc)));
      (`Quick, micro_batch, Test.make ~name:"lookup_cache_probe_d2" (Staged.stage (fun () ->
           let acc = ref 0 in
           for i = 0 to micro_batch - 1 do
             acc := !acc + Lookup_cache.find d2_cache ~now:1.0 d2_keys.(i)
           done;
           sink := !acc)));
      (`Quick, micro_batch, Test.make ~name:"cache_batch_resolve" (Staged.stage (fun () ->
           Lookup_cache.resolve_into d2_cache ~now:1.0 d2_keys resolved)));
      (`Quick, micro_batch, Test.make ~name:"zipf_sample" (Staged.stage (fun () ->
           let acc = ref 0 in
           for _ = 1 to micro_batch do
             acc := !acc + Zipf.sample bench_zipf zrng
           done;
           sink := !acc)));
      (`Quick, micro_batch, fleet_cache_probe_test ());
      (`Quick, micro_batch, fleet_step_test ());
      (`Quick, 1, cluster_fail_recover_test ());
      (`Quick, 1, availability_replay_1k_test ());
      (`Quick, micro_batch, net_frame_encode_test ());
      (* one put + one get per staged run *)
      (`Quick, 2, net_mem_rpc_test ());
      (`Quick, micro_batch, vv_merge_test ());
      (`Quick, 1, digest_build_4k_test ());
      (* one quorum-2 get per staged run *)
      (`Quick, 1, quorum_get_test ());
      (`Quick, micro_batch, net_write_coalesce_test ());
      (* one window of 16 pipelined gets per staged run *)
      (`Quick, pipeline_window, net_pipelined_rpc_test ());
      (`Quick, micro_batch, store_append_batch_test ());
      (`Quick, micro_batch,
       store_read_test ~name:"store_get_disk" ~cache_bytes:0);
      (`Quick, micro_batch,
       store_read_test ~name:"store_get_cached" ~cache_bytes:(64 lsl 20));
      (`Quick, store_recovery_records, store_recovery_replay_test ());
    ]
  in
  let selected =
    List.filter_map
      (fun (tier, ops, t) -> if full || tier = `Quick then Some (ops, t) else None)
      tiered
    @ List.map (fun t -> (1, t)) (plan_tests ())
  in
  ignore !sink;
  selected

let run_micro scale =
  let open Bechamel in
  let open Bechamel.Toolkit in
  print_endline "== Bechamel micro-benchmarks ==";
  let instances = Instance.[ monotonic_clock ] in
  (* Quick scale runs the reduced tier on a short quota so CI still
     records micro numbers in the JSON without the full sweep. *)
  let full, quota =
    match scale with
    | Config.Paper -> (true, Time.second 0.5)
    | Config.Quick -> (false, Time.second 0.1)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) () in
  let tests = micro_tests ~full () in
  (* Micros run after the experiment suite; drop the suite's garbage
     first so the samples measure the kernels, not major-GC slices
     over a heap the micros never touch. *)
  Gc.compact ();
  List.concat_map
    (fun (ops, test) ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.fold
        (fun name result acc ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
              let per_op = est /. float_of_int ops in
              Printf.printf "  %-24s %12.1f ns/op\n%!" name per_op;
              (name, Some per_op) :: acc
          | _ ->
              Printf.printf "  %-24s (no estimate)\n%!" name;
              (name, None) :: acc)
        ols [])
    tests

(* {1 Machine-readable results} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_results path ~scale ~jobs ~total ~outcomes ~micros =
  let oc = open_out path in
  let gc = Gc_tune.current () in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"scale\": \"%s\",\n" (json_escape (Config.scale_name scale));
  Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"gc\": {\"minor_heap_words\": %d, \"space_overhead\": %d},\n"
    gc.Gc_tune.minor_heap_words gc.Gc_tune.space_overhead;
  Printf.fprintf oc "  \"total_wall_s\": %.3f,\n" total;
  Printf.fprintf oc "  \"experiments\": [\n";
  List.iteri
    (fun i (o : Registry.outcome) ->
      Printf.fprintf oc "    {\"id\": \"%s\", \"wall_s\": %.3f, \"shared_wall_s\": %.3f}%s\n"
        (json_escape o.Registry.o_entry.Registry.id)
        o.Registry.wall o.Registry.shared_wall
        (if i = List.length outcomes - 1 then "" else ","))
    outcomes;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"micro\": [\n";
  List.iteri
    (fun i (name, est) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_op\": %s}%s\n" (json_escape name)
        (match est with Some v -> Printf.sprintf "%.1f" v | None -> "null")
        (if i = List.length micros - 1 then "" else ","))
    micros;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "results written to %s\n%!" path

let () =
  let rec parse ids json no_micro = function
    | [] -> (List.rev ids, json, no_micro)
    | "--no-micro" :: rest -> parse ids json true rest
    | "--json" :: path :: rest -> parse ids path no_micro rest
    | id :: rest -> parse (id :: ids) json no_micro rest
  in
  let ids, json_path, no_micro =
    parse [] "BENCH_results.json" false (List.tl (Array.to_list Sys.argv))
  in
  Gc_tune.apply ();
  let scale = Config.of_env () in
  let jobs = Pool.default_jobs () in
  let t0 = Unix.gettimeofday () in
  let outcomes = run_experiments scale ids ~jobs in
  let micros = if no_micro then [] else run_micro scale in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\nTotal wall time: %.1fs\n" total;
  write_results json_path ~scale ~jobs ~total ~outcomes ~micros
