(* Tests for the range-based lookup cache (§5) and the 30 s block
   cache (§3). *)

module Lookup_cache = D2_cache.Lookup_cache
module Block_cache = D2_cache.Block_cache
module Key = D2_keyspace.Key
module Rng = D2_util.Rng

let k_of_byte b = Key.of_string (String.make 1 (Char.chr b) ^ String.make 63 '\000')

(* {1 Lookup cache} *)

let test_hit_and_miss () =
  let c = Lookup_cache.create () in
  Alcotest.(check (option int)) "cold miss" None (Lookup_cache.lookup c ~now:0.0 (k_of_byte 15));
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 10) ~hi:(k_of_byte 20) ~node:7;
  Alcotest.(check (option int)) "hit inside" (Some 7)
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 15));
  Alcotest.(check (option int)) "hi inclusive" (Some 7)
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 20));
  Alcotest.(check (option int)) "lo exclusive" None
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 10));
  Alcotest.(check (option int)) "outside" None
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 25));
  Alcotest.(check int) "hits" 2 (Lookup_cache.hits c);
  Alcotest.(check int) "misses" 3 (Lookup_cache.misses c)

let test_invalidate () =
  let c = Lookup_cache.create () in
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 10) ~hi:(k_of_byte 20) ~node:1;
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 20) ~hi:(k_of_byte 30) ~node:2;
  Alcotest.(check bool) "no covering range" false
    (Lookup_cache.invalidate c (k_of_byte 40));
  Alcotest.(check bool) "drops covering range" true
    (Lookup_cache.invalidate c (k_of_byte 15));
  Alcotest.(check (option int)) "range gone" None
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 15));
  Alcotest.(check (option int)) "other range survives" (Some 2)
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 25));
  Alcotest.(check bool) "second call finds nothing" false
    (Lookup_cache.invalidate c (k_of_byte 15))

let test_ttl_expiry () =
  let c = Lookup_cache.create ~ttl:100.0 () in
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 10) ~hi:(k_of_byte 20) ~node:7;
  Alcotest.(check (option int)) "fresh" (Some 7)
    (Lookup_cache.lookup c ~now:99.0 (k_of_byte 15));
  Alcotest.(check (option int)) "expired" None
    (Lookup_cache.lookup c ~now:101.0 (k_of_byte 15));
  Alcotest.(check int) "expired entry evicted" 0 (Lookup_cache.entry_count c)

let test_wrap_range () =
  let c = Lookup_cache.create () in
  (* Range (200, 10] wraps around the top of the ring. *)
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 200) ~hi:(k_of_byte 10) ~node:3;
  Alcotest.(check (option int)) "above lo" (Some 3)
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 250));
  Alcotest.(check (option int)) "below hi" (Some 3)
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 5));
  Alcotest.(check (option int)) "middle misses" None
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 100))

let test_full_ring_entry () =
  let c = Lookup_cache.create () in
  (* lo = hi: a single node owns everything. *)
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 50) ~hi:(k_of_byte 50) ~node:0;
  Alcotest.(check (option int)) "any key" (Some 0)
    (Lookup_cache.lookup c ~now:1.0 (k_of_byte 200))

let test_multiple_ranges () =
  let c = Lookup_cache.create () in
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 10) ~hi:(k_of_byte 20) ~node:1;
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 20) ~hi:(k_of_byte 30) ~node:2;
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 40) ~hi:(k_of_byte 50) ~node:4;
  Alcotest.(check (option int)) "range 1" (Some 1) (Lookup_cache.lookup c ~now:1.0 (k_of_byte 12));
  Alcotest.(check (option int)) "range 2" (Some 2) (Lookup_cache.lookup c ~now:1.0 (k_of_byte 25));
  Alcotest.(check (option int)) "gap" None (Lookup_cache.lookup c ~now:1.0 (k_of_byte 35));
  Alcotest.(check (option int)) "range 3" (Some 4) (Lookup_cache.lookup c ~now:1.0 (k_of_byte 45))

let test_miss_rate_and_reset () =
  let c = Lookup_cache.create () in
  Alcotest.(check (float 1e-9)) "unused" 0.0 (Lookup_cache.miss_rate c);
  ignore (Lookup_cache.lookup c ~now:0.0 (k_of_byte 1));
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 0) ~hi:(k_of_byte 10) ~node:1;
  ignore (Lookup_cache.lookup c ~now:0.0 (k_of_byte 5));
  Alcotest.(check (float 1e-9)) "50%" 0.5 (Lookup_cache.miss_rate c);
  Lookup_cache.reset_stats c;
  Alcotest.(check int) "stats reset" 0 (Lookup_cache.hits c);
  Alcotest.(check bool) "entries kept" true (Lookup_cache.entry_count c > 0);
  Lookup_cache.clear c;
  Alcotest.(check int) "cleared" 0 (Lookup_cache.entry_count c)

let prop_cached_lookup_agrees_with_interval =
  QCheck.Test.make ~name:"cache agrees with ring-interval membership" ~count:300
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (lo, hi, probe) ->
      QCheck.assume (lo <> hi);
      let c = Lookup_cache.create () in
      let klo = k_of_byte lo and khi = k_of_byte hi and kp = k_of_byte probe in
      Lookup_cache.insert c ~now:0.0 ~lo:klo ~hi:khi ~node:1;
      let hit = Lookup_cache.lookup c ~now:1.0 kp = Some 1 in
      hit = Key.in_interval kp ~lo:klo ~hi:khi)

let test_lookup_mru_streak () =
  (* Repeated probes into the same range hit the MRU fast path; the
     fast path must honour insertion, expiry, purge, and clear exactly
     like the map search. *)
  let c = Lookup_cache.create ~ttl:100.0 () in
  Lookup_cache.insert c ~now:0.0 ~lo:(k_of_byte 10) ~hi:(k_of_byte 20) ~node:7;
  (* First hit primes the MRU; the rest are served from it. *)
  for _ = 1 to 5 do
    Alcotest.(check (option int)) "streak hit" (Some 7)
      (Lookup_cache.lookup c ~now:1.0 (k_of_byte 15))
  done;
  Alcotest.(check int) "hits counted on fast path" 5 (Lookup_cache.hits c);
  (* Expiry must not be served from the MRU. *)
  Alcotest.(check (option int)) "expired" None
    (Lookup_cache.lookup c ~now:101.0 (k_of_byte 15));
  (* Re-insert; a new insert after a hit must not leave a stale MRU. *)
  Lookup_cache.insert c ~now:200.0 ~lo:(k_of_byte 10) ~hi:(k_of_byte 20) ~node:8;
  Alcotest.(check (option int)) "fresh entry wins" (Some 8)
    (Lookup_cache.lookup c ~now:201.0 (k_of_byte 15));
  Lookup_cache.insert c ~now:200.0 ~lo:(k_of_byte 30) ~hi:(k_of_byte 40) ~node:9;
  Alcotest.(check (option int)) "other range still found" (Some 9)
    (Lookup_cache.lookup c ~now:201.0 (k_of_byte 35));
  Alcotest.(check (option int)) "first range still found" (Some 8)
    (Lookup_cache.lookup c ~now:201.0 (k_of_byte 12));
  (* clear drops the MRU too. *)
  Lookup_cache.clear c;
  Alcotest.(check (option int)) "cleared" None
    (Lookup_cache.lookup c ~now:201.0 (k_of_byte 15))

(* The arena must behave exactly like the retained Map oracle over
   arbitrary insert/probe sequences: same answers, same hit/miss
   counters, same live-entry counts (which pin the probe-time eviction
   of expired candidates), under adversarial TTLs, duplicate-hi
   replacement, wrapping ranges and time jumps big enough to trip the
   4*ttl purge.  Keys share long volume prefixes so the search's
   dynamic common-prefix offset is exercised, not just byte 0. *)
let prop_arena_matches_reference =
  let key_of (vol, a, b) =
    let buf = Bytes.make Key.size '\000' in
    Bytes.fill buf 0 16 (Char.chr (Char.code 'A' + (vol mod 3)));
    Bytes.set buf 20 (Char.chr (a land 0xFF));
    Bytes.set buf 40 (Char.chr (b land 0xFF));
    Key.of_string (Bytes.to_string buf)
  in
  let gen_key = QCheck.(triple (int_bound 2) (int_bound 255) (int_bound 255)) in
  let gen_op =
    QCheck.(
      oneof
        [
          map (fun (k, dt) -> `Probe (k, dt)) (pair gen_key (int_bound 400));
          map
            (fun (lo, hi, node, dt) -> `Insert (lo, hi, node, dt))
            (quad gen_key gen_key (int_bound 31) (int_bound 400));
          map (fun k -> `Jump k) (int_bound 3);
        ])
  in
  QCheck.Test.make ~name:"arena matches Map reference" ~count:200
    QCheck.(pair (oneofl [ 5.0; 97.0; 4500.0 ]) (list_of_size Gen.(0 -- 120) gen_op))
    (fun (ttl, ops) ->
      let arena = Lookup_cache.create ~ttl () in
      let oracle = Lookup_cache.Reference.create ~ttl () in
      let now = ref 0.0 in
      let agreed = ref true in
      let check_counters () =
        agreed :=
          !agreed
          && Lookup_cache.hits arena = Lookup_cache.Reference.hits oracle
          && Lookup_cache.misses arena = Lookup_cache.Reference.misses oracle
          && Lookup_cache.entry_count arena
             = Lookup_cache.Reference.entry_count oracle
      in
      List.iter
        (fun op ->
          match op with
          | `Probe (k, dt) ->
              now := !now +. float_of_int dt;
              let key = key_of k in
              let a = Lookup_cache.lookup arena ~now:!now key in
              let o = Lookup_cache.Reference.lookup oracle ~now:!now key in
              agreed := !agreed && a = o;
              check_counters ()
          | `Insert (lo, hi, node, dt) ->
              now := !now +. float_of_int dt;
              Lookup_cache.insert arena ~now:!now ~lo:(key_of lo) ~hi:(key_of hi)
                ~node;
              Lookup_cache.Reference.insert oracle ~now:!now ~lo:(key_of lo)
                ~hi:(key_of hi) ~node;
              check_counters ()
          | `Jump k ->
              (* Leap past k purge windows so lazy compaction fires. *)
              now := !now +. (float_of_int k *. 4.0 *. ttl))
        ops;
      !agreed)

let prop_resolve_into_matches_sequential =
  let key_of b = k_of_byte (b land 0xFF) in
  QCheck.Test.make ~name:"resolve_into equals sequential finds" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 10) (pair (int_bound 255) (int_bound 255)))
        (list_of_size Gen.(0 -- 40) (int_bound 255)))
    (fun (ranges, probes) ->
      let mk () =
        let c = Lookup_cache.create ~ttl:50.0 () in
        List.iteri
          (fun i (lo, hi) ->
            Lookup_cache.insert c ~now:(float_of_int i) ~lo:(key_of lo)
              ~hi:(key_of hi) ~node:i)
          ranges;
        c
      in
      let keys = Array.of_list (List.map key_of probes) in
      let batched = mk () and seq = mk () in
      let out = Array.make (Array.length keys) min_int in
      Lookup_cache.resolve_into batched ~now:60.0 keys out;
      let expected = Array.map (Lookup_cache.find seq ~now:60.0) keys in
      out = expected
      && Lookup_cache.hits batched = Lookup_cache.hits seq
      && Lookup_cache.misses batched = Lookup_cache.misses seq)

(* {1 Block cache} *)

let test_block_warmth () =
  let c = Block_cache.create ~window:30.0 () in
  let k = k_of_byte 1 in
  Alcotest.(check bool) "cold" false (Block_cache.touch c ~now:0.0 k);
  Alcotest.(check bool) "warm" true (Block_cache.touch c ~now:10.0 k);
  Alcotest.(check bool) "warm extends" true (Block_cache.touch c ~now:35.0 k);
  Alcotest.(check bool) "expires" false (Block_cache.touch c ~now:100.0 k)

let test_block_is_warm_nonmutating () =
  let c = Block_cache.create () in
  let k = k_of_byte 1 in
  Alcotest.(check bool) "cold check" false (Block_cache.is_warm c ~now:0.0 k);
  Alcotest.(check bool) "still cold (no touch)" false (Block_cache.is_warm c ~now:0.0 k)

let test_block_writeback_flush () =
  let c = Block_cache.create ~window:30.0 () in
  Block_cache.write c ~now:0.0 (k_of_byte 1) ~size:100;
  Block_cache.write c ~now:5.0 (k_of_byte 2) ~size:200;
  Alcotest.(check int) "dirty" 2 (Block_cache.dirty_count c);
  Alcotest.(check int) "nothing due yet" 0 (List.length (Block_cache.flush_due c ~now:20.0));
  let due = Block_cache.flush_due c ~now:31.0 in
  Alcotest.(check int) "first due" 1 (List.length due);
  Alcotest.(check int) "size carried" 100 (snd (List.hd due));
  Alcotest.(check int) "one left" 1 (Block_cache.dirty_count c);
  let due2 = Block_cache.flush_due c ~now:36.0 in
  Alcotest.(check int) "second due" 1 (List.length due2);
  Alcotest.(check int) "drained" 0 (Block_cache.dirty_count c)

let test_block_write_absorbed () =
  (* Overwriting a buffered block keeps one dirty entry with the new
     size and a pushed-back deadline — temp-file writes never flush. *)
  let c = Block_cache.create ~window:30.0 () in
  let k = k_of_byte 1 in
  Block_cache.write c ~now:0.0 k ~size:100;
  Block_cache.write c ~now:10.0 k ~size:999;
  Alcotest.(check int) "single entry" 1 (Block_cache.dirty_count c);
  Alcotest.(check int) "not due at 31" 0 (List.length (Block_cache.flush_due c ~now:31.0));
  let due = Block_cache.flush_due c ~now:41.0 in
  Alcotest.(check int) "latest size" 999 (snd (List.hd due))

let test_block_cancel () =
  let c = Block_cache.create () in
  let k = k_of_byte 1 in
  Block_cache.write c ~now:0.0 k ~size:100;
  Block_cache.cancel c k;
  Alcotest.(check int) "cancelled" 0 (Block_cache.dirty_count c);
  Alcotest.(check int) "nothing flushes" 0 (List.length (Block_cache.flush_due c ~now:60.0))

(* {1 Hot-block byte cache (disk store front)} *)

let test_bytes_cache_basics () =
  let c = Block_cache.bytes_cache ~capacity:100 in
  Alcotest.(check (option string)) "cold" None
    (Block_cache.cache_find c (k_of_byte 1));
  Block_cache.cache_store c (k_of_byte 1) "forty-byte-ish payload";
  Alcotest.(check (option string)) "hit" (Some "forty-byte-ish payload")
    (Block_cache.cache_find c (k_of_byte 1));
  Alcotest.(check int) "used" 22 (Block_cache.cache_used c);
  Alcotest.(check int) "count" 1 (Block_cache.cache_count c);
  Alcotest.(check int) "hits" 1 (Block_cache.cache_hits c);
  Alcotest.(check int) "misses" 1 (Block_cache.cache_misses c);
  (* Overwrite replaces the payload and re-accounts the bytes. *)
  Block_cache.cache_store c (k_of_byte 1) "short";
  Alcotest.(check (option string)) "overwrite" (Some "short")
    (Block_cache.cache_find c (k_of_byte 1));
  Alcotest.(check int) "used shrank" 5 (Block_cache.cache_used c);
  Alcotest.(check int) "still one entry" 1 (Block_cache.cache_count c);
  Block_cache.cache_remove c (k_of_byte 1);
  Alcotest.(check (option string)) "removed" None
    (Block_cache.cache_find c (k_of_byte 1));
  Alcotest.(check int) "empty" 0 (Block_cache.cache_used c)

let test_bytes_cache_lru_eviction () =
  let c = Block_cache.bytes_cache ~capacity:100 in
  Block_cache.cache_store c (k_of_byte 1) (String.make 40 'a');
  Block_cache.cache_store c (k_of_byte 2) (String.make 40 'b');
  (* Touch 1 so 2 becomes the LRU, then overflow. *)
  ignore (Block_cache.cache_find c (k_of_byte 1));
  Block_cache.cache_store c (k_of_byte 3) (String.make 40 'c');
  Alcotest.(check (option string)) "lru evicted" None
    (Block_cache.cache_find c (k_of_byte 2));
  Alcotest.(check bool) "recent kept" true
    (Block_cache.cache_find c (k_of_byte 1) <> None);
  Alcotest.(check bool) "new kept" true
    (Block_cache.cache_find c (k_of_byte 3) <> None);
  Alcotest.(check int) "one eviction" 1 (Block_cache.cache_evictions c);
  Alcotest.(check bool) "capacity held" true (Block_cache.cache_used c <= 100)

let test_bytes_cache_degenerate () =
  (* Capacity 0 disables the cache entirely — no storage, no hit/miss
     accounting noise. *)
  let c = Block_cache.bytes_cache ~capacity:0 in
  Block_cache.cache_store c (k_of_byte 1) "x";
  Alcotest.(check (option string)) "nothing stored" None
    (Block_cache.cache_find c (k_of_byte 1));
  Alcotest.(check int) "no misses counted" 0 (Block_cache.cache_misses c);
  (* A block bigger than the whole cache is not admitted (it would
     evict everything for a single use). *)
  let c = Block_cache.bytes_cache ~capacity:10 in
  Block_cache.cache_store c (k_of_byte 1) (String.make 11 'x');
  Alcotest.(check int) "oversized ignored" 0 (Block_cache.cache_count c)

let test_bytes_cache_capacity_never_exceeded () =
  let c = Block_cache.bytes_cache ~capacity:1000 in
  let rng = Rng.create 7 in
  for _ = 1 to 500 do
    Block_cache.cache_store c
      (k_of_byte (Rng.int rng 256))
      (String.make (1 + Rng.int rng 300) 'z');
    if Block_cache.cache_used c > 1000 then Alcotest.fail "capacity exceeded"
  done;
  (* The accounting matches the entries actually retained. *)
  let total = ref 0 in
  for b = 0 to 255 do
    match Block_cache.cache_find c (k_of_byte b) with
    | Some d -> total := !total + String.length d
    | None -> ()
  done;
  Alcotest.(check int) "used = sum of retained" !total (Block_cache.cache_used c)

(* {1 Retrieval cache (LRU)} *)

module Retrieval_cache = D2_cache.Retrieval_cache

let test_lru_basics () =
  let c = Retrieval_cache.create ~capacity:100 in
  Retrieval_cache.insert c (k_of_byte 1) ~size:40;
  Retrieval_cache.insert c (k_of_byte 2) ~size:40;
  Alcotest.(check bool) "present" true (Retrieval_cache.mem c (k_of_byte 1));
  Alcotest.(check int) "bytes" 80 (Retrieval_cache.bytes_used c);
  Alcotest.(check int) "count" 2 (Retrieval_cache.entry_count c)

let test_lru_eviction_order () =
  let c = Retrieval_cache.create ~capacity:100 in
  Retrieval_cache.insert c (k_of_byte 1) ~size:40;
  Retrieval_cache.insert c (k_of_byte 2) ~size:40;
  (* Touch 1 so 2 becomes the LRU, then overflow. *)
  ignore (Retrieval_cache.mem c (k_of_byte 1));
  Retrieval_cache.insert c (k_of_byte 3) ~size:40;
  Alcotest.(check bool) "lru evicted" false (Retrieval_cache.mem c (k_of_byte 2));
  Alcotest.(check bool) "recent kept" true (Retrieval_cache.mem c (k_of_byte 1));
  Alcotest.(check int) "one eviction" 1 (Retrieval_cache.evictions c)

let test_lru_reinsert_updates_size () =
  let c = Retrieval_cache.create ~capacity:100 in
  Retrieval_cache.insert c (k_of_byte 1) ~size:40;
  Retrieval_cache.insert c (k_of_byte 1) ~size:60;
  Alcotest.(check int) "size replaced" 60 (Retrieval_cache.bytes_used c);
  Alcotest.(check int) "single entry" 1 (Retrieval_cache.entry_count c)

let test_lru_oversized_ignored () =
  let c = Retrieval_cache.create ~capacity:100 in
  Retrieval_cache.insert c (k_of_byte 1) ~size:500;
  Alcotest.(check int) "ignored" 0 (Retrieval_cache.entry_count c)

let test_lru_capacity_never_exceeded () =
  let c = Retrieval_cache.create ~capacity:1000 in
  let rng = Rng.create 3 in
  for _ = 1 to 500 do
    Retrieval_cache.insert c (k_of_byte (Rng.int rng 256)) ~size:(1 + Rng.int rng 300);
    if Retrieval_cache.bytes_used c > 1000 then Alcotest.fail "capacity exceeded"
  done

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "d2_cache"
    [
      ( "lookup_cache",
        Alcotest.test_case "hit/miss" `Quick test_hit_and_miss
        :: Alcotest.test_case "invalidate" `Quick test_invalidate
        :: Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry
        :: Alcotest.test_case "wrap range" `Quick test_wrap_range
        :: Alcotest.test_case "full ring" `Quick test_full_ring_entry
        :: Alcotest.test_case "multiple ranges" `Quick test_multiple_ranges
        :: Alcotest.test_case "miss rate + reset" `Quick test_miss_rate_and_reset
        :: Alcotest.test_case "mru fast path" `Quick test_lookup_mru_streak
        :: qcheck
             [
               prop_cached_lookup_agrees_with_interval;
               prop_arena_matches_reference;
               prop_resolve_into_matches_sequential;
             ] );
      ( "retrieval_cache",
        [
          Alcotest.test_case "basics" `Quick test_lru_basics;
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "reinsert size" `Quick test_lru_reinsert_updates_size;
          Alcotest.test_case "oversized ignored" `Quick test_lru_oversized_ignored;
          Alcotest.test_case "capacity bound" `Quick test_lru_capacity_never_exceeded;
        ] );
      ( "block_cache",
        [
          Alcotest.test_case "warmth" `Quick test_block_warmth;
          Alcotest.test_case "is_warm nonmutating" `Quick test_block_is_warm_nonmutating;
          Alcotest.test_case "write-back flush" `Quick test_block_writeback_flush;
          Alcotest.test_case "overwrite absorbed" `Quick test_block_write_absorbed;
          Alcotest.test_case "cancel" `Quick test_block_cancel;
        ] );
      ( "bytes_cache",
        [
          Alcotest.test_case "basics" `Quick test_bytes_cache_basics;
          Alcotest.test_case "lru eviction" `Quick test_bytes_cache_lru_eviction;
          Alcotest.test_case "degenerate capacities" `Quick
            test_bytes_cache_degenerate;
          Alcotest.test_case "capacity bound + accounting" `Quick
            test_bytes_cache_capacity_never_exceeded;
        ] );
    ]
