(* The durable segment store: CRC framing, group-commit watermarks,
   out-of-core reads, compaction, and — the heart of the suite — crash
   recovery checked against a byte-offset oracle at every possible
   torn-tail cut, plus an end-to-end crash/restart of a disk-backed
   cluster on the in-process transport. *)

module Store = D2_segstore.Store
module Record = D2_segstore.Record
module Crc32c = D2_segstore.Crc32c
module Cache = D2_cache.Block_cache
module Key = D2_keyspace.Key
module Rng = D2_util.Rng
module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Mem = D2_net.Transport_mem
module Node = D2_net.Node.Make (D2_net.Transport_mem)
module Client = D2_net.Client.Make (D2_net.Transport_mem)
module Bootstrap = D2_net.Bootstrap
module Blockstore = D2_net.Blockstore

(* {1 Scratch directories}

   CI points [D2_TEST_STORE_DIR] at both tmpfs and a real-disk path so
   the whole suite runs against each; locally it falls back to the
   system temp dir. *)

let base_dir =
  match Sys.getenv_opt "D2_TEST_STORE_DIR" with
  | Some d when d <> "" -> d
  | _ -> Filename.get_temp_dir_name ()

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let dir_ctr = ref 0

let with_dir name f =
  incr dir_ctr;
  let d =
    Filename.concat base_dir
      (Printf.sprintf "d2-segstore-%d-%s-%d" (Unix.getpid ()) name !dir_ctr)
  in
  rm_rf d;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let key_of i = Key.of_string (Printf.sprintf "%064d" i)
let data_of i = Printf.sprintf "payload-%d-%s" i (String.make (i mod 97) 'x')

(* {1 CRC-32C} *)

let test_crc_kat () =
  (* The Castagnoli check value: crc32c("123456789") = 0xE3069283. *)
  Alcotest.(check int)
    "kat" 0xE3069283
    (Crc32c.string "123456789" ~pos:0 ~len:9);
  Alcotest.(check int)
    "empty" 0
    (Crc32c.string "" ~pos:0 ~len:0)

let test_crc_matches_reference () =
  let rng = Rng.create 0xc5c in
  for len = 0 to 300 do
    let b = Bytes.create len in
    Rng.bits rng b;
    let s = Bytes.to_string b in
    Alcotest.(check int)
      (Printf.sprintf "stub = reference (len %d)" len)
      (Crc32c.string_ref s ~pos:0 ~len)
      (Crc32c.string s ~pos:0 ~len)
  done

let test_crc_chaining () =
  let rng = Rng.create 0x11ab in
  let b = Bytes.create 4096 in
  Rng.bits rng b;
  let s = Bytes.to_string b in
  let whole = Crc32c.string s ~pos:0 ~len:4096 in
  List.iter
    (fun cut ->
      let c1 = Crc32c.string s ~pos:0 ~len:cut in
      let c2 = Crc32c.string ~crc:c1 s ~pos:cut ~len:(4096 - cut) in
      Alcotest.(check int) (Printf.sprintf "split at %d" cut) whole c2)
    [ 0; 1; 7; 64; 2048; 4095; 4096 ]

(* {1 Record framing} *)

let test_record_roundtrip () =
  let key = key_of 7 and data = "hello, segment" in
  let len = Record.encoded_len ~data_len:(String.length data) in
  let buf = Bytes.make (len + 8) '\xff' in
  let n = Record.encode_into buf ~off:3 ~kind:Record.kind_put ~key ~data in
  Alcotest.(check int) "encoded length" len n;
  match Record.decode buf ~off:3 ~avail:(len + 5) with
  | `Bad -> Alcotest.fail "decode rejected a good record"
  | `Record r ->
      Alcotest.(check int) "kind" Record.kind_put r.Record.d_kind;
      Alcotest.(check bool) "key" true (Key.equal key r.Record.d_key);
      Alcotest.(check string) "payload" data
        (Bytes.sub_string buf r.Record.d_data_off r.Record.d_data_len);
      Alcotest.(check int) "total" len r.Record.d_total

let test_record_torn_and_corrupt () =
  let key = key_of 9 and data = "abcdefgh" in
  let len = Record.encoded_len ~data_len:(String.length data) in
  let buf = Bytes.create len in
  ignore (Record.encode_into buf ~off:0 ~kind:Record.kind_put ~key ~data);
  (* Torn: any prefix shorter than the full record is [`Bad]. *)
  List.iter
    (fun avail ->
      match Record.decode buf ~off:0 ~avail with
      | `Bad -> ()
      | `Record _ ->
          Alcotest.fail (Printf.sprintf "accepted a torn record (%d)" avail))
    [ 0; 1; Record.header_len - 1; Record.header_len; len - 1 ];
  (* Corrupt: flip one byte anywhere (length, CRC, kind, key, payload)
     and the record must be rejected. *)
  List.iter
    (fun pos ->
      let b = Bytes.copy buf in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      match Record.decode b ~off:0 ~avail:len with
      | `Bad -> ()
      | `Record _ ->
          Alcotest.fail (Printf.sprintf "accepted a corrupt byte at %d" pos))
    [ 0; 4; 8; 9; 40; len - 1 ];
  (* Removes carry no payload. *)
  let rlen = Record.encoded_len ~data_len:0 in
  let rb = Bytes.create rlen in
  ignore (Record.encode_into rb ~off:0 ~kind:Record.kind_remove ~key ~data:"");
  match Record.decode rb ~off:0 ~avail:rlen with
  | `Record r ->
      Alcotest.(check int) "remove kind" Record.kind_remove r.Record.d_kind;
      Alcotest.(check int) "remove payload" 0 r.Record.d_data_len
  | `Bad -> Alcotest.fail "decode rejected a remove record"

(* {1 Store basics and durability watermarks} *)

let test_basic_ops () =
  with_dir "basic" (fun dir ->
      let st = Store.create ~dir () in
      Alcotest.(check (option string)) "absent" None (Store.get st ~key:(key_of 1));
      let s1 = Store.put st ~key:(key_of 1) ~data:"one" in
      let s2 = Store.put st ~key:(key_of 2) ~data:"two" in
      Alcotest.(check bool) "seqs monotone" true (s2 > s1 && s1 > 0);
      Alcotest.(check (option string)) "read back" (Some "one")
        (Store.get st ~key:(key_of 1));
      Alcotest.(check int) "count" 2 (Store.count st);
      ignore (Store.put st ~key:(key_of 1) ~data:"one'");
      Alcotest.(check (option string)) "overwrite" (Some "one'")
        (Store.get st ~key:(key_of 1));
      Alcotest.(check int) "count after overwrite" 2 (Store.count st);
      let removed, rs = Store.remove st ~key:(key_of 2) in
      Alcotest.(check bool) "removed" true removed;
      Alcotest.(check bool) "remove appended" true (rs > 0);
      let removed2, rs2 = Store.remove st ~key:(key_of 2) in
      Alcotest.(check bool) "absent remove" false removed2;
      Alcotest.(check int) "absent remove appends nothing" 0 rs2;
      Alcotest.(check bool) "mem" true (Store.mem st ~key:(key_of 1));
      Alcotest.(check bool) "not mem" false (Store.mem st ~key:(key_of 2));
      let seen = ref [] in
      Store.iter st (fun k d -> seen := (Key.to_string k, d) :: !seen);
      Alcotest.(check int) "iter count" 1 (List.length !seen);
      Store.close st;
      (* A closed store rejects operations. *)
      (match Store.get st ~key:(key_of 1) with
      | exception _ -> ()
      | _ -> Alcotest.fail "closed store answered a get");
      (* Reopen: everything durable at close is back. *)
      let st2 = Store.create ~dir () in
      Alcotest.(check (option string)) "reopened" (Some "one'")
        (Store.get st2 ~key:(key_of 1));
      Alcotest.(check (option string)) "remove survived" None
        (Store.get st2 ~key:(key_of 2));
      Store.close st2)

let test_watermarks_batch () =
  with_dir "wm" (fun dir ->
      let config = { Store.default_config with fsync = Store.Batch } in
      let st = Store.create ~dir ~config () in
      let seq = Store.put st ~key:(key_of 1) ~data:"v" in
      Alcotest.(check bool) "buffered, not yet durable" true
        (Store.durable_seq st < seq);
      Alcotest.(check bool) "needs flush" true (Store.needs_flush st);
      Store.flush st;
      Alcotest.(check bool) "flush covers" true (Store.durable_seq st >= seq);
      Alcotest.(check bool) "one fsync at least" true (Store.fsyncs st >= 1);
      (* The async path: the background flusher advances the watermark
         and fires the durability hook off-thread. *)
      let fired = Atomic.make false in
      Store.on_durable st (fun () -> Atomic.set fired true);
      let seq2 = Store.put st ~key:(key_of 2) ~data:"w" in
      Store.flush_async st;
      let deadline = Unix.gettimeofday () +. 10.0 in
      while Store.durable_seq st < seq2 && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      Alcotest.(check bool) "async commit landed" true
        (Store.durable_seq st >= seq2);
      Alcotest.(check bool) "durability hook fired" true (Atomic.get fired);
      Store.close st)

let test_watermarks_always_never () =
  List.iter
    (fun policy ->
      with_dir ("wm-" ^ Store.fsync_policy_name policy) (fun dir ->
          let config = { Store.default_config with fsync = policy } in
          let st = Store.create ~dir ~config () in
          let seq = Store.put st ~key:(key_of 1) ~data:"v" in
          Alcotest.(check bool)
            (Store.fsync_policy_name policy ^ ": durable on return")
            true
            (Store.durable_seq st >= seq);
          Store.close st))
    [ Store.Always; Store.Never ]

(* {1 Out-of-core reads: rotation, pread, byte cache} *)

let test_rotation_and_pread () =
  with_dir "rotate" (fun dir ->
      (* Tiny segments, no cache: every read past the active segment is
         a positional read from a sealed file. *)
      let config =
        {
          Store.default_config with
          segment_bytes = 2048;
          cache_bytes = 0;
          compact_live = 0.0 (* keep every sealed segment *);
        }
      in
      let st = Store.create ~dir ~config () in
      let n = 100 in
      for i = 0 to n - 1 do
        ignore (Store.put st ~key:(key_of i) ~data:(data_of i))
      done;
      Store.flush st;
      Alcotest.(check bool) "rotated" true (Store.segment_count st > 1);
      Alcotest.(check bool) "rotations counted" true (Store.rotations st > 0);
      for i = 0 to n - 1 do
        Alcotest.(check (option string))
          (Printf.sprintf "pread key %d" i)
          (Some (data_of i))
          (Store.get st ~key:(key_of i))
      done;
      Alcotest.(check int) "cache disabled: zero hits" 0
        (Cache.cache_hits (Store.cache st));
      Store.close st;
      (* And the same dataset through recovery. *)
      let st2 = Store.create ~dir ~config () in
      for i = 0 to n - 1 do
        Alcotest.(check (option string))
          (Printf.sprintf "recovered key %d" i)
          (Some (data_of i))
          (Store.get st2 ~key:(key_of i))
      done;
      Store.close st2)

let test_cache_serves_hot_reads () =
  with_dir "cache" (fun dir ->
      let st = Store.create ~dir () in
      ignore (Store.put st ~key:(key_of 1) ~data:"hot block");
      ignore (Store.get st ~key:(key_of 1));
      let h0 = Cache.cache_hits (Store.cache st) in
      Alcotest.(check (option string)) "hit" (Some "hot block")
        (Store.get st ~key:(key_of 1));
      Alcotest.(check bool) "cache hit counted" true
        (Cache.cache_hits (Store.cache st) > h0);
      (* Remove invalidates the cached copy. *)
      ignore (Store.remove st ~key:(key_of 1));
      Alcotest.(check (option string)) "removed not served from cache" None
        (Store.get st ~key:(key_of 1));
      Store.close st)

(* {1 Compaction} *)

let test_compaction_reclaims_and_preserves () =
  with_dir "compact" (fun dir ->
      let config =
        { Store.default_config with segment_bytes = 4096; cache_bytes = 0 }
      in
      let st = Store.create ~dir ~config () in
      let n = 50 in
      (* Three overwrite rounds strand two dead copies of every block
         across many sealed segments. *)
      for round = 0 to 2 do
        for i = 0 to n - 1 do
          ignore
            (Store.put st ~key:(key_of i)
               ~data:(Printf.sprintf "r%d-%s" round (data_of i)))
        done
      done;
      for i = 0 to n - 1 do
        if i mod 2 = 0 then ignore (Store.remove st ~key:(key_of i))
      done;
      Store.flush st;
      let before = Store.file_bytes st in
      let reclaimed = Store.compact st ~force:true in
      Alcotest.(check bool) "segments reclaimed" true (reclaimed > 0);
      Alcotest.(check bool) "file bytes shrank" true
        (Store.file_bytes st < before);
      Alcotest.(check bool) "compactions counted" true
        (Store.compactions st >= reclaimed);
      for i = 0 to n - 1 do
        let expect = if i mod 2 = 0 then None else Some ("r2-" ^ data_of i) in
        Alcotest.(check (option string))
          (Printf.sprintf "post-compact key %d" i)
          expect
          (Store.get st ~key:(key_of i))
      done;
      Store.close st;
      (* No resurrection: removed blocks stay gone across recovery, and
         the survivors read back from their relocated offsets. *)
      let st2 = Store.create ~dir ~config () in
      for i = 0 to n - 1 do
        let expect = if i mod 2 = 0 then None else Some ("r2-" ^ data_of i) in
        Alcotest.(check (option string))
          (Printf.sprintf "reopened post-compact key %d" i)
          expect
          (Store.get st2 ~key:(key_of i))
      done;
      Store.close st2)

(* {1 Recovery paths} *)

let test_recovery_checkpoint_vs_replay () =
  with_dir "recovery" (fun dir ->
      let st = Store.create ~dir () in
      for i = 0 to 49 do
        ignore (Store.put st ~key:(key_of i) ~data:(data_of i))
      done;
      Store.close st;
      (* Clean close: the checkpoint covers everything, nothing to
         replay. *)
      let st2 = Store.create ~dir () in
      (match Store.recovery st2 with
      | None -> Alcotest.fail "no recovery stats on reopen"
      | Some r ->
          Alcotest.(check int) "checkpoint blocks" 50 r.Store.r_checkpoint_blocks;
          Alcotest.(check int) "nothing replayed" 0 r.Store.r_replayed_records;
          Alcotest.(check int) "nothing truncated" 0 r.Store.r_truncated_bytes);
      (* Ten more writes reach the log (flush) but never a checkpoint
         (crash): recovery replays exactly those past the watermark. *)
      for i = 50 to 59 do
        ignore (Store.put st2 ~key:(key_of i) ~data:(data_of i))
      done;
      Store.flush st2;
      Store.crash st2;
      let st3 = Store.create ~dir () in
      (match Store.recovery st3 with
      | None -> Alcotest.fail "no recovery stats after crash"
      | Some r ->
          Alcotest.(check int) "tail replayed" 10 r.Store.r_replayed_records;
          Alcotest.(check bool) "replayed bytes counted" true
            (r.Store.r_replayed_bytes > 0));
      for i = 0 to 59 do
        Alcotest.(check (option string))
          (Printf.sprintf "recovered key %d" i)
          (Some (data_of i))
          (Store.get st3 ~key:(key_of i))
      done;
      Store.close st3)

let test_crash_loses_only_volatile_tail () =
  with_dir "crash" (fun dir ->
      let config = { Store.default_config with fsync = Store.Batch } in
      let st = Store.create ~dir ~config () in
      ignore (Store.put st ~key:(key_of 1) ~data:"durable");
      Store.flush st;
      ignore (Store.put st ~key:(key_of 2) ~data:"volatile");
      Store.crash st;
      let st2 = Store.create ~dir ~config () in
      Alcotest.(check (option string)) "flushed write survives" (Some "durable")
        (Store.get st2 ~key:(key_of 1));
      Alcotest.(check (option string)) "unflushed write lost" None
        (Store.get st2 ~key:(key_of 2));
      Store.close st2;
      (* Under [Always] the ack implies durability: nothing is lost. *)
      rm_rf dir;
      let config = { Store.default_config with fsync = Store.Always } in
      let st3 = Store.create ~dir ~config () in
      ignore (Store.put st3 ~key:(key_of 3) ~data:"acked");
      Store.crash st3;
      let st4 = Store.create ~dir ~config () in
      Alcotest.(check (option string)) "always-policy write survives"
        (Some "acked")
        (Store.get st4 ~key:(key_of 3));
      Store.close st4)

(* {1 The torn-tail property}

   Script a run of puts/removes (with an index checkpoint dropped at a
   random point), push everything to the file with no sync, crash, then
   cut the log at an arbitrary byte offset — simulating power loss
   mid-write.  Recovery must never throw and must yield {e exactly} the
   fold of the records wholly below the cut; the byte-offset oracle is
   computed independently from the record framing arithmetic.  Cuts
   below the checkpoint's watermark force the full-scan fallback — a
   checkpoint claiming coverage the log no longer holds must not be
   trusted. *)

let torn_tail_case seed =
  with_dir "torn" (fun dir ->
      let config =
        {
          Store.default_config with
          segment_bytes = 1 lsl 30 (* single segment *);
          fsync = Store.Never;
          cache_bytes = 0;
        }
      in
      let st = Store.create ~dir ~config () in
      let rng = Rng.create (0x70c0 + seed) in
      let nkeys = 8 and nops = 40 in
      (* (op, end offset) for every record actually appended, in log
         order; offsets accumulate from the framing arithmetic alone. *)
      let extents = ref [] in
      let off = ref 0 in
      let record op data_len =
        let total = Record.encoded_len ~data_len in
        off := !off + total;
        extents := (op, !off) :: !extents
      in
      let do_put k =
        let len = Rng.int rng 200 in
        let data =
          String.init len (fun i -> Char.chr (((k * 31) + i) land 0xff))
        in
        ignore (Store.put st ~key:(key_of k) ~data);
        record (`Put (k, data)) len
      in
      do_put (Rng.int rng nkeys);
      let ckpt_at = Rng.int rng nops in
      for op = 0 to nops - 1 do
        if op = ckpt_at then Store.checkpoint st;
        let k = Rng.int rng nkeys in
        if Rng.int rng 4 < 3 then do_put k
        else
          let removed, _ = Store.remove st ~key:(key_of k) in
          if removed then record (`Remove k) 0
      done;
      Store.flush st;
      let total = !off in
      Store.crash st;
      (* One segment file holds the whole log; cut it anywhere. *)
      let seg_file =
        match
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> String.length f > 4 && String.sub f 0 4 = "seg-")
        with
        | [ f ] -> Filename.concat dir f
        | files ->
            Alcotest.fail
              (Printf.sprintf "expected one segment, found %d"
                 (List.length files))
      in
      Alcotest.(check int) "flush pushed the whole log" total
        ((Unix.stat seg_file).Unix.st_size);
      let cut = Rng.int rng (total + 1) in
      Unix.truncate seg_file cut;
      let st2 = Store.create ~dir ~config () in
      (* Oracle: fold the records wholly below the cut, in order. *)
      let model = Hashtbl.create 16 in
      let last_boundary = ref 0 in
      List.iter
        (fun (op, e) ->
          if e <= cut then begin
            if e > !last_boundary then last_boundary := e;
            match op with
            | `Put (k, d) -> Hashtbl.replace model k d
            | `Remove k -> Hashtbl.remove model k
          end)
        (List.rev !extents);
      for k = 0 to nkeys - 1 do
        let expect = Hashtbl.find_opt model k in
        let got = Store.get st2 ~key:(key_of k) in
        if got <> expect then
          Alcotest.fail
            (Printf.sprintf
               "seed %d cut %d/%d key %d: recovered %s, oracle says %s" seed
               cut total k
               (match got with Some _ -> "present" | None -> "absent")
               (match expect with Some _ -> "present" | None -> "absent"))
      done;
      (match Store.recovery st2 with
      | None -> Alcotest.fail "no recovery stats"
      | Some r ->
          Alcotest.(check int)
            (Printf.sprintf "seed %d cut %d: torn bytes" seed cut)
            (cut - !last_boundary) r.Store.r_truncated_bytes);
      Store.close st2;
      true)

let prop_torn_tail =
  QCheck.Test.make ~count:60 ~name:"recovery = durable prefix at any cut"
    QCheck.small_nat torn_tail_case

(* The narrow window the property rarely lands in, pinned: the log is
   cut {e below} a checkpoint's watermark while every live binding the
   checkpoint holds sits below the cut — only a trailing tombstone is
   torn off.  A recovery that trusts the watermark blindly would load
   the checkpoint, skip replay (nothing past a watermark the file no
   longer reaches), and silently lose the put whose tombstone died:
   the checkpoint must be rejected for the full-scan fallback. *)
let test_checkpoint_past_torn_tail () =
  with_dir "ckpt-torn" (fun dir ->
      let config =
        {
          Store.default_config with
          segment_bytes = 1 lsl 30;
          fsync = Store.Never;
          cache_bytes = 0;
        }
      in
      let st = Store.create ~dir ~config () in
      ignore (Store.put st ~key:(key_of 0) ~data:"alpha");
      ignore (Store.put st ~key:(key_of 1) ~data:"bravo");
      let cut =
        Record.encoded_len ~data_len:5 + Record.encoded_len ~data_len:5
      in
      ignore (Store.remove st ~key:(key_of 1));
      Store.checkpoint st (* watermark = end of the tombstone *);
      Store.crash st;
      let seg_file =
        Sys.readdir dir |> Array.to_list
        |> List.find (fun f ->
               String.length f > 4 && String.sub f 0 4 = "seg-")
        |> Filename.concat dir
      in
      Unix.truncate seg_file cut (* the tombstone is torn off *);
      let st2 = Store.create ~dir ~config () in
      Alcotest.(check (option string)) "untouched block" (Some "alpha")
        (Store.get st2 ~key:(key_of 0));
      Alcotest.(check (option string))
        "put whose tombstone was torn off is back" (Some "bravo")
        (Store.get st2 ~key:(key_of 1));
      Store.close st2)

(* {1 End-to-end: disk-backed cluster, kill -9, restart, serve}

   The full runtime on the in-process transport: three nodes backed by
   real segment stores accept replicated writes, die without any
   shutdown path, and a restarted cluster recovering from the same
   directories serves every acked block.  [Always] keeps durability
   synchronous — the background flusher runs on wall-clock time, which
   a virtual-time engine cannot wait on. *)

let test_e2e_crash_restart () =
  with_dir "e2e" (fun root ->
      let dirs = List.init 3 (fun i -> Filename.concat root (string_of_int i)) in
      let sconfig = { Store.default_config with fsync = Store.Always } in
      let nconfig =
        {
          D2_net.Node.replicas = 3;
          probe_interval = 0.5;
          rpc_timeout = 2.0;
          repair_interval = 0.0;
        }
      in
      let open_stores () =
        List.map (fun d -> Store.create ~dir:d ~config:sconfig ()) dirs
      in
      let run_cluster stores f =
        let engine = Engine.create () in
        let topology = Topology.create ~rng:(Rng.create 0x31) ~n:4 () in
        let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x5 () in
        let peers = Bootstrap.peers 3 in
        let nodes =
          List.map2
            (fun (i, id) st ->
              Node.create (Mem.endpoint net ~node:i)
                ~store:(Blockstore.disk st) ~config:nconfig ~id ~peers ())
            peers stores
        in
        List.iter Node.serve nodes;
        Engine.run engine ~until:2.0;
        let client =
          Client.create (Mem.endpoint net ~node:3) ~replicas:3 ~rpc_timeout:2.0
            ~seeds:[ 0; 1; 2 ] ()
        in
        let r = f client in
        List.iter Node.stop nodes;
        r
      in
      let krng = Rng.create 0xd15c in
      let keys = Array.init 20 (fun _ -> Key.random krng) in
      let data_of key = "blk:" ^ Key.to_string key in
      (* Generation 1: load the cluster, then kill every node cold. *)
      let stores = open_stores () in
      run_cluster stores (fun client ->
          Array.iter
            (fun key ->
              match Client.put client ~key ~data:(data_of key) with
              | `Ok copies -> Alcotest.(check int) "put copies" 3 copies
              | `Failed -> Alcotest.fail "put failed on a healthy cluster")
            keys;
          (match Client.remove client ~key:keys.(0) with
          | `Ok removed -> Alcotest.(check bool) "removed" true removed
          | `Failed -> Alcotest.fail "remove failed"));
      List.iter Store.crash stores;
      (* Generation 2: recover from the same directories and serve. *)
      let stores = open_stores () in
      List.iter
        (fun st ->
          match Store.recovery st with
          | None -> Alcotest.fail "restart saw a fresh directory"
          | Some r ->
              Alcotest.(check bool) "store repopulated" true
                (r.Store.r_checkpoint_blocks + r.Store.r_replayed_records > 0))
        stores;
      (* 3-way replication on 3 nodes: every store holds every live
         block even before the network comes back. *)
      List.iter
        (fun st ->
          Alcotest.(check int) "recovered block count" 19 (Store.count st))
        stores;
      run_cluster stores (fun client ->
          Array.iteri
            (fun i key ->
              match Client.get client ~key with
              | `Found d ->
                  if i = 0 then Alcotest.fail "removed block resurrected"
                  else Alcotest.(check string) "post-restart get" (data_of key) d
              | `Missing ->
                  if i <> 0 then Alcotest.fail "acked block lost by kill -9"
              | `Failed -> Alcotest.fail "get failed after restart")
            keys;
          Alcotest.(check int) "no client failures" 0 (Client.failures client));
      List.iter Store.close stores)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "segstore"
    [
      ( "crc32c",
        [
          Alcotest.test_case "known answer" `Quick test_crc_kat;
          Alcotest.test_case "stub matches reference" `Quick
            test_crc_matches_reference;
          Alcotest.test_case "chaining" `Quick test_crc_chaining;
        ] );
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "torn and corrupt rejected" `Quick
            test_record_torn_and_corrupt;
        ] );
      ( "store",
        [
          Alcotest.test_case "basic ops + reopen" `Quick test_basic_ops;
          Alcotest.test_case "group-commit watermarks (batch)" `Quick
            test_watermarks_batch;
          Alcotest.test_case "always/never durable inline" `Quick
            test_watermarks_always_never;
          Alcotest.test_case "rotation + pread, cache off" `Quick
            test_rotation_and_pread;
          Alcotest.test_case "byte cache serves hot reads" `Quick
            test_cache_serves_hot_reads;
          Alcotest.test_case "compaction reclaims, preserves, no resurrection"
            `Quick test_compaction_reclaims_and_preserves;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "checkpoint vs tail replay" `Quick
            test_recovery_checkpoint_vs_replay;
          Alcotest.test_case "crash loses only the volatile tail" `Quick
            test_crash_loses_only_volatile_tail;
          Alcotest.test_case "checkpoint past a torn tail is rejected" `Quick
            test_checkpoint_past_torn_tail;
        ]
        @ qcheck [ prop_torn_tail ] );
      ( "e2e",
        [
          Alcotest.test_case "disk cluster: kill -9, restart, serve" `Quick
            test_e2e_crash_restart;
        ] );
    ]
