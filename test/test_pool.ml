(* Tests for the domain worker pool and the domain-safe memo table
   that back the parallel experiment runner. *)

module Pool = D2_util.Pool
module Memo = D2_util.Memo

(* Deterministic busywork so tasks overlap across domains. *)
let spin n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (i land 7)
  done;
  !acc

let test_map_preserves_order () =
  let pool = Pool.create ~jobs:4 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let xs = List.init 100 Fun.id in
      let ys = Pool.map pool (fun x -> (x * x) + (spin (1000 * (x mod 7)) * 0)) xs in
      Alcotest.(check (list int)) "submission order" (List.map (fun x -> x * x) xs) ys)

let test_more_tasks_than_workers () =
  (* 2 workers, 64 tasks: the queue must drain completely and results
     must still come back in submission order. *)
  let ys = Pool.run ~jobs:2 (fun x -> x + (spin ((x * 37) mod 5000) * 0)) (List.init 64 Fun.id) in
  Alcotest.(check (list int)) "all tasks ran" (List.init 64 Fun.id) ys

let test_exception_propagates () =
  let pool = Pool.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "await re-raises" (Failure "boom") (fun () ->
          ignore (Pool.map pool (fun x -> if x = 5 then failwith "boom" else x) (List.init 10 Fun.id)));
      (* The pool survives a failing task. *)
      Alcotest.(check (list int)) "still usable" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_run_propagates_and_cleans_up () =
  Alcotest.check_raises "run re-raises" (Failure "task died") (fun () ->
      ignore (Pool.run ~jobs:2 (fun _ -> failwith "task died") [ 1; 2; 3 ]))

let test_submit_after_shutdown () =
  let pool = Pool.create ~jobs:1 () in
  let p = Pool.submit pool (fun () -> 41 + 1) in
  Pool.shutdown pool;
  Alcotest.(check int) "queued task finished before join" 42 (Pool.await p);
  Alcotest.check_raises "submit rejected"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())));
  (* Idempotent. *)
  Pool.shutdown pool

let test_invalid_jobs () =
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()))

let test_jobs_accessor () =
  let pool = Pool.create ~jobs:3 () in
  let expected = min 3 (max 1 (Domain.recommended_domain_count ())) in
  Alcotest.(check int) "jobs (capped at core count)" expected (Pool.jobs pool);
  Pool.shutdown pool

let test_memo_builds_once_under_concurrency () =
  let memo = Memo.create () in
  let builds = Atomic.make 0 in
  let vs =
    Pool.run ~jobs:4
      (fun _ ->
        Memo.get memo "shared" (fun () ->
            Atomic.incr builds;
            spin 200_000))
      (List.init 16 Fun.id)
  in
  Alcotest.(check int) "built exactly once" 1 (Atomic.get builds);
  let expected = spin 200_000 in
  List.iter (fun v -> Alcotest.(check int) "same value" expected v) vs

let test_memo_failed_build_forgotten () =
  let memo = Memo.create () in
  Alcotest.check_raises "build exception propagates" (Failure "build failed") (fun () ->
      ignore (Memo.get memo "k" (fun () -> failwith "build failed")));
  (* A later build of the same key runs again and is cached. *)
  Alcotest.(check int) "retried" 7 (Memo.get memo "k" (fun () -> 7));
  Alcotest.(check int) "cached" 7 (Memo.get memo "k" (fun () -> 8))

let () =
  Alcotest.run "d2_pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "queue deeper than workers" `Quick test_more_tasks_than_workers;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "run cleans up on failure" `Quick test_run_propagates_and_cleans_up;
          Alcotest.test_case "submit after shutdown" `Quick test_submit_after_shutdown;
          Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
          Alcotest.test_case "jobs accessor" `Quick test_jobs_accessor;
        ] );
      ( "memo",
        [
          Alcotest.test_case "builds once under concurrency" `Quick
            test_memo_builds_once_under_concurrency;
          Alcotest.test_case "failed build forgotten" `Quick test_memo_failed_build_forgotten;
        ] );
    ]
