(* Tests for the 64-byte key space: ring arithmetic, the Fig. 4
   encoding, hashing, and the three key-generation policies. *)

module Key = D2_keyspace.Key
module Encoding = D2_keyspace.Encoding
module Hashing = D2_keyspace.Hashing
module Keygen = D2_keyspace.Keygen
module Rng = D2_util.Rng

let key = Alcotest.testable Key.pp Key.equal

let k_of_byte b = Key.of_string (String.make 1 (Char.chr b) ^ String.make 63 '\000')

(* {1 Key basics} *)

let test_of_string_size () =
  Alcotest.check_raises "too short" (Invalid_argument "Key.of_string: expected 64 bytes, got 3")
    (fun () -> ignore (Key.of_string "abc"));
  let s = String.make 64 'x' in
  Alcotest.(check string) "roundtrip" s (Key.to_string (Key.of_string s))

let test_compare_order () =
  Alcotest.(check bool) "zero < max" true (Key.compare Key.zero Key.max_key < 0);
  Alcotest.(check bool) "equal" true (Key.equal Key.zero Key.zero);
  Alcotest.(check bool) "byte order" true (Key.compare (k_of_byte 1) (k_of_byte 2) < 0)

let test_succ_pred () =
  Alcotest.check key "succ zero" (Key.of_string (String.make 63 '\000' ^ "\001"))
    (Key.succ Key.zero);
  Alcotest.check key "succ max wraps" Key.zero (Key.succ Key.max_key);
  Alcotest.check key "pred zero wraps" Key.max_key (Key.pred Key.zero);
  let rng = Rng.create 5 in
  for _ = 1 to 100 do
    let k = Key.random rng in
    Alcotest.check key "pred . succ = id" k (Key.pred (Key.succ k));
    Alcotest.check key "succ . pred = id" k (Key.succ (Key.pred k))
  done

let test_succ_carry () =
  (* ...00ff -> ...0100 *)
  let k = Key.of_string (String.make 63 '\000' ^ "\255") in
  let expect = Key.of_string (String.make 62 '\000' ^ "\001\000") in
  Alcotest.check key "carry propagates" expect (Key.succ k)

let test_in_interval_plain () =
  let a = k_of_byte 10 and b = k_of_byte 20 in
  Alcotest.(check bool) "inside" true (Key.in_interval (k_of_byte 15) ~lo:a ~hi:b);
  Alcotest.(check bool) "hi inclusive" true (Key.in_interval b ~lo:a ~hi:b);
  Alcotest.(check bool) "lo exclusive" false (Key.in_interval a ~lo:a ~hi:b);
  Alcotest.(check bool) "outside" false (Key.in_interval (k_of_byte 25) ~lo:a ~hi:b)

let test_in_interval_wrap () =
  let lo = k_of_byte 200 and hi = k_of_byte 10 in
  Alcotest.(check bool) "above lo" true (Key.in_interval (k_of_byte 250) ~lo ~hi);
  Alcotest.(check bool) "below hi" true (Key.in_interval (k_of_byte 5) ~lo ~hi);
  Alcotest.(check bool) "hi inclusive" true (Key.in_interval hi ~lo ~hi);
  Alcotest.(check bool) "middle out" false (Key.in_interval (k_of_byte 100) ~lo ~hi);
  Alcotest.(check bool) "lo = hi is full ring" true
    (Key.in_interval (k_of_byte 77) ~lo ~hi:lo)

let test_hex_roundtrip () =
  let rng = Rng.create 6 in
  for _ = 1 to 50 do
    let k = Key.random rng in
    Alcotest.check key "hex roundtrip" k (Key.of_hex (Key.to_hex k))
  done;
  Alcotest.check_raises "bad length" (Invalid_argument "Key.of_hex: wrong length")
    (fun () -> ignore (Key.of_hex "abcd"))

let test_random_spread () =
  (* Top byte of random keys should hit many distinct values. *)
  let rng = Rng.create 7 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 1000 do
    Hashtbl.replace seen (Key.to_string (Key.random rng)).[0] ()
  done;
  Alcotest.(check bool) "top byte spread" true (Hashtbl.length seen > 200)

let prop_interval_partition =
  (* Any key is in exactly one of (a,b] and (b,a] for distinct a,b. *)
  QCheck.Test.make ~name:"ring intervals partition the key space" ~count:500
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (a, b, k) ->
      QCheck.assume (a <> b);
      let a = k_of_byte a and b = k_of_byte b and k = k_of_byte k in
      let in1 = Key.in_interval k ~lo:a ~hi:b and in2 = Key.in_interval k ~lo:b ~hi:a in
      (* k = a belongs to (b,a] only; k = b to (a,b] only; others to exactly one. *)
      in1 <> in2)

(* {1 Prefix fast compare and hashing} *)

let prop_prefix_order_consistent =
  (* When two keys' 62-bit prefixes at an offset differ, their order
     must equal the byte order of the suffixes starting there — the
     contract the ring's binary search relies on. *)
  QCheck.Test.make ~name:"prefix_at order-consistent with compare_from" ~count:500
    QCheck.(triple (int_bound 10_000) (int_bound 10_000) (int_bound Key.max_prefix_offset))
    (fun (s1, s2, off) ->
      let a = Key.random (Rng.create (s1 + 1)) and b = Key.random (Rng.create (s2 + 1)) in
      let pa = Key.prefix_at a off and pb = Key.prefix_at b off in
      (pa >= 0 && pb >= 0)
      && (pa = pb || compare pa pb = compare (Key.compare_from off a b) 0))

let test_prefix_tie_needs_fallback () =
  (* Keys equal through byte off+7 but differing later: the prefix
     ties, compare_from must still discriminate. *)
  let mk last =
    let b = Bytes.make 64 'q' in
    Bytes.set b 63 (Char.chr last);
    Key.of_string (Bytes.to_string b)
  in
  let a = mk 1 and b = mk 2 in
  Alcotest.(check int) "prefix ties at 0" (Key.prefix_at a 0) (Key.prefix_at b 0);
  Alcotest.(check bool) "compare_from 0 breaks tie" true (Key.compare_from 0 a b < 0);
  Alcotest.(check bool) "compare_from at max offset" true
    (Key.compare_from Key.max_prefix_offset a b < 0);
  (* The prefix keeps the top 62 of 64 bits, so even at the max offset
     keys differing only in the last byte's bottom 2 bits tie — the
     fallback is mandatory there ... *)
  Alcotest.(check int) "2-bit blind spot ties"
    (Key.prefix_at a Key.max_prefix_offset)
    (Key.prefix_at b Key.max_prefix_offset);
  (* ... while any difference above bit 1 discriminates. *)
  Alcotest.(check bool) "bit 2 discriminates" true
    (Key.prefix_at (mk 4) Key.max_prefix_offset < Key.prefix_at (mk 8) Key.max_prefix_offset)

let test_compare_from_zero_is_compare () =
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let a = Key.random rng and b = Key.random rng in
    Alcotest.(check int) "sign matches"
      (compare (Key.compare a b) 0)
      (compare (Key.compare_from 0 a b) 0)
  done

let test_common_prefix_len () =
  let mk l =
    let b = Bytes.make 64 '\000' in
    Bytes.fill b 0 l 'x';
    Bytes.set b l '\001';
    Key.of_string (Bytes.to_string b)
  in
  Alcotest.(check int) "diverge at 0" 0 (Key.common_prefix_len (mk 0) (mk 5));
  Alcotest.(check int) "diverge at 5" 5 (Key.common_prefix_len (mk 5) (mk 9));
  Alcotest.(check int) "equal keys" 64 (Key.common_prefix_len (mk 7) (mk 7));
  Alcotest.(check int) "head compare equal" 0 (Key.compare_head (mk 5) (mk 9) 5);
  Alcotest.(check bool) "head compare diverged" true (Key.compare_head (mk 5) (mk 9) 6 <> 0)

let test_hash_table_basics () =
  let rng = Rng.create 12 in
  let tbl = Key.Table.create 64 in
  let keys = List.init 500 (fun i -> (Key.random rng, i)) in
  List.iter (fun (k, i) -> Key.Table.replace tbl k i) keys;
  List.iter
    (fun (k, i) -> Alcotest.(check (option int)) "find" (Some i) (Key.Table.find_opt tbl k))
    keys;
  Alcotest.(check int) "size" 500 (Key.Table.length tbl);
  (* hash is a function of the key bytes only. *)
  let k = Key.random rng in
  Alcotest.(check int) "stable" (Key.hash k) (Key.hash (Key.of_string (Key.to_string k)));
  Alcotest.(check bool) "non-negative" true (Key.hash k >= 0)

let test_hash_discriminates_fig4_fields () =
  (* The hash reads only the discriminating bytes (volume tail, slots,
     block): keys differing in slot path or block number must almost
     always hash apart. *)
  let volume = Encoding.volume_id "hashvol" in
  let mk slots block = Encoding.of_slot_path ~volume ~slots ~block ~version:0l in
  let seen = Hashtbl.create 64 in
  for s = 1 to 20 do
    for b = 0 to 19 do
      Hashtbl.replace seen (Key.hash (mk [ 1; s ] (Int64.of_int b))) ()
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "hashes spread (%d/400 distinct)" (Hashtbl.length seen))
    true
    (Hashtbl.length seen > 390)

(* {1 Fig. 4 encoding} *)

let vol = Encoding.volume_id "testvol"

let test_volume_id () =
  Alcotest.(check int) "20 bytes" 20 (String.length vol);
  Alcotest.(check string) "deterministic" vol (Encoding.volume_id "testvol");
  Alcotest.(check bool) "differs by name" true (vol <> Encoding.volume_id "other")

let test_encode_decode_roundtrip () =
  let f =
    {
      Encoding.volume = vol;
      slots = [| 1; 42; 65535 |];
      remainder_hash = 0x1122334455667788L;
      block = 99L;
      version = 7l;
    }
  in
  let k = Encoding.encode f in
  let f' = Encoding.decode k in
  Alcotest.(check string) "volume" f.Encoding.volume f'.Encoding.volume;
  Alcotest.(check (array int)) "slots" f.Encoding.slots f'.Encoding.slots;
  Alcotest.(check int64) "remainder" f.Encoding.remainder_hash f'.Encoding.remainder_hash;
  Alcotest.(check int64) "block" f.Encoding.block f'.Encoding.block;
  Alcotest.(check int32) "version" f.Encoding.version f'.Encoding.version

let test_encode_validation () =
  let base =
    { Encoding.volume = vol; slots = [||]; remainder_hash = 0L; block = 0L; version = 0l }
  in
  Alcotest.check_raises "bad volume"
    (Invalid_argument "Encoding.encode: volume id must be 20 bytes") (fun () ->
      ignore (Encoding.encode { base with Encoding.volume = "short" }));
  Alcotest.check_raises "slot 0 reserved"
    (Invalid_argument "Encoding.encode: slot out of range 1..65535") (fun () ->
      ignore (Encoding.encode { base with Encoding.slots = [| 0 |] }));
  Alcotest.check_raises "too deep"
    (Invalid_argument "Encoding.encode: too many slot levels") (fun () ->
      ignore (Encoding.encode { base with Encoding.slots = Array.make 13 1 }))

let test_sibling_order () =
  (* Sibling files: keys ordered by slot; blocks of one file contiguous
     between siblings. *)
  let k_file slot block =
    Encoding.of_slot_path ~volume:vol ~slots:[ 1; slot ] ~block ~version:0l
  in
  Alcotest.(check bool) "slot order" true (Key.compare (k_file 2 0L) (k_file 3 0L) < 0);
  Alcotest.(check bool) "block order" true (Key.compare (k_file 2 0L) (k_file 2 1L) < 0);
  Alcotest.(check bool) "blocks within file before next sibling" true
    (Key.compare (k_file 2 1000L) (k_file 3 0L) < 0)

let test_deep_path_remainder () =
  let slots = List.init 15 (fun i -> i + 1) in
  let k = Encoding.of_slot_path ~volume:vol ~slots ~block:0L ~version:0l in
  let f = Encoding.decode k in
  Alcotest.(check int) "12 positional slots" 12 (Array.length f.Encoding.slots);
  Alcotest.(check bool) "remainder hashed" true (f.Encoding.remainder_hash <> 0L);
  (* Same deep prefix, different remainder => different keys. *)
  let k2 =
    Encoding.of_slot_path ~volume:vol
      ~slots:(List.init 15 (fun i -> if i = 14 then 99 else i + 1))
      ~block:0L ~version:0l
  in
  Alcotest.(check bool) "distinct" false (Key.equal k k2)

let test_prefix_bounds () =
  let slots = [ 3; 7 ] in
  let lo = Encoding.slot_prefix_key ~volume:vol ~slots in
  let hi = Encoding.slot_prefix_upper_bound ~volume:vol ~slots in
  Alcotest.(check bool) "lo < hi" true (Key.compare lo hi < 0);
  (* Any file under the prefix is within the bounds. *)
  let inner =
    Encoding.of_slot_path ~volume:vol ~slots:[ 3; 7; 200 ] ~block:55L ~version:9l
  in
  Alcotest.(check bool) "inner >= lo" true (Key.compare lo inner <= 0);
  Alcotest.(check bool) "inner <= hi" true (Key.compare inner hi <= 0);
  (* A sibling subtree is outside. *)
  let outside = Encoding.of_slot_path ~volume:vol ~slots:[ 3; 8 ] ~block:0L ~version:0l in
  Alcotest.(check bool) "sibling outside" true (Key.compare hi outside < 0)

let prop_preorder_key_order =
  (* The locality invariant behind all of §4: if slot path A precedes
     slot path B in a preorder traversal (lexicographic slot order),
     then every key under A precedes every key under B. *)
  QCheck.Test.make ~name:"preorder traversal order = key order" ~count:300
    QCheck.(
      pair
        (pair (list_of_size Gen.(int_range 1 6) (int_range 1 1000)) (int_bound 100))
        (pair (list_of_size Gen.(int_range 1 6) (int_range 1 1000)) (int_bound 100)))
    (fun ((slots_a, block_a), (slots_b, block_b)) ->
      (* Exclude the prefix case: keys *under* a directory interleave
         with the directory's own blocks by design. *)
      let rec is_prefix a b =
        match (a, b) with
        | [], _ -> true
        | _, [] -> true
        | x :: a', y :: b' -> x = y && is_prefix a' b'
      in
      QCheck.assume (not (is_prefix slots_a slots_b));
      let ka =
        Encoding.of_slot_path ~volume:vol ~slots:slots_a
          ~block:(Int64.of_int block_a) ~version:0l
      in
      let kb =
        Encoding.of_slot_path ~volume:vol ~slots:slots_b
          ~block:(Int64.of_int block_b) ~version:0l
      in
      let order_slots = compare slots_a slots_b in
      let order_keys = Key.compare ka kb in
      (order_slots < 0) = (order_keys < 0))

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"fig4 encode/decode roundtrip" ~count:300
    QCheck.(
      quad
        (list_of_size Gen.(int_range 0 12) (int_range 1 65535))
        (int_bound 1_000_000) (int_bound 1000) (int_bound 10000))
    (fun (slots, rem, block, version) ->
      let f =
        {
          Encoding.volume = vol;
          slots = Array.of_list slots;
          remainder_hash = Int64.of_int rem;
          block = Int64.of_int block;
          version = Int32.of_int version;
        }
      in
      let f' = Encoding.decode (Encoding.encode f) in
      f' = f)

(* {1 Hashing} *)

let test_hashing_lengths () =
  Alcotest.(check int) "20 bytes" 20 (String.length (Hashing.bytes 20 "x"));
  Alcotest.(check int) "64 bytes" 64 (String.length (Hashing.bytes 64 "x"));
  Alcotest.(check int) "0 bytes" 0 (String.length (Hashing.bytes 0 "x"));
  Alcotest.check_raises "too long" (Invalid_argument "Hashing.bytes: n out of range")
    (fun () -> ignore (Hashing.bytes 65 "x"))

let test_hashing_deterministic () =
  Alcotest.(check string) "same input" (Hashing.bytes 32 "abc") (Hashing.bytes 32 "abc");
  Alcotest.(check bool) "different input" true
    (Hashing.bytes 32 "abc" <> Hashing.bytes 32 "abd");
  Alcotest.(check bool) "int64 differs" true
    (Hashing.int64_of "a" <> Hashing.int64_of "b")

(* {1 Keygen policies} *)

let test_traditional_block_spread () =
  (* Consecutive blocks of a file map to unrelated ring points. *)
  let k b = Keygen.traditional_block ~volume:"v" ~path:"/a/f" ~block:b ~version:0l in
  let top b = (Key.to_string (k b)).[0] in
  let distinct = Hashtbl.create 16 in
  for b = 0 to 19 do
    Hashtbl.replace distinct (top (Int64.of_int b)) ()
  done;
  Alcotest.(check bool) "spread" true (Hashtbl.length distinct > 10)

let test_traditional_file_colocated () =
  (* All blocks of a file share the 52-byte prefix. *)
  let k b = Keygen.traditional_file ~volume:"v" ~path:"/a/f" ~block:b ~version:0l in
  let prefix b = String.sub (Key.to_string (k b)) 0 52 in
  Alcotest.(check string) "same prefix" (prefix 0L) (prefix 100L);
  Alcotest.(check bool) "keys still distinct" false (Key.equal (k 0L) (k 1L));
  (* Different files land elsewhere. *)
  let other = Keygen.traditional_file ~volume:"v" ~path:"/a/g" ~block:0L ~version:0l in
  Alcotest.(check bool) "different file different prefix" true
    (String.sub (Key.to_string other) 0 52 <> prefix 0L)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "d2_keyspace"
    [
      ( "key",
        Alcotest.test_case "of_string size" `Quick test_of_string_size
        :: Alcotest.test_case "compare order" `Quick test_compare_order
        :: Alcotest.test_case "succ/pred" `Quick test_succ_pred
        :: Alcotest.test_case "succ carry" `Quick test_succ_carry
        :: Alcotest.test_case "interval plain" `Quick test_in_interval_plain
        :: Alcotest.test_case "interval wrap" `Quick test_in_interval_wrap
        :: Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip
        :: Alcotest.test_case "random spread" `Quick test_random_spread
        :: Alcotest.test_case "prefix tie fallback" `Quick test_prefix_tie_needs_fallback
        :: Alcotest.test_case "compare_from 0 = compare" `Quick test_compare_from_zero_is_compare
        :: Alcotest.test_case "common prefix length" `Quick test_common_prefix_len
        :: Alcotest.test_case "hash table basics" `Quick test_hash_table_basics
        :: Alcotest.test_case "hash discriminates" `Quick test_hash_discriminates_fig4_fields
        :: qcheck [ prop_interval_partition; prop_prefix_order_consistent ] );
      ( "encoding",
        Alcotest.test_case "volume id" `Quick test_volume_id
        :: Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip
        :: Alcotest.test_case "validation" `Quick test_encode_validation
        :: Alcotest.test_case "sibling order" `Quick test_sibling_order
        :: Alcotest.test_case "deep path remainder" `Quick test_deep_path_remainder
        :: Alcotest.test_case "prefix bounds" `Quick test_prefix_bounds
        :: qcheck [ prop_encode_roundtrip; prop_preorder_key_order ] );
      ( "hashing",
        [
          Alcotest.test_case "lengths" `Quick test_hashing_lengths;
          Alcotest.test_case "deterministic" `Quick test_hashing_deterministic;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "traditional spreads blocks" `Quick
            test_traditional_block_spread;
          Alcotest.test_case "traditional-file colocates" `Quick
            test_traditional_file_colocated;
        ] );
    ]
