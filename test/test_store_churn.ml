(* Randomized churn property test for D2-Store: interleaved
   fail/recover/change_id/put/remove/refresh/TTL-expiry event batches
   under both redundancy schemes, with Cluster.check_invariants after
   every batch.  Exercises exactly the replica-maintenance hot path the
   block arena, epoch-cached replica sets and timer-wheel engine
   rearchitected. *)

module Cluster = D2_store.Cluster
module Ring = D2_dht.Ring
module Engine = D2_simnet.Engine
module Key = D2_keyspace.Key
module Rng = D2_util.Rng

let batches = 60
let events_per_batch = 40

(* Units needed for a read under this config (mirrors
   Cluster.units_needed, which is not exported). *)
let needed config =
  match config.Cluster.redundancy with
  | Cluster.Replication -> 1
  | Cluster.Erasure m -> m

let run_churn ~seed ~config ~nodes =
  let rng = Rng.create seed in
  let engine = Engine.create () in
  let ids = Array.init nodes (fun _ -> Key.random rng) in
  let cluster = Cluster.create ~engine ~config ~ids in
  let keys = Array.init 160 (fun _ -> Key.random rng) in
  (* Track which keys we ever stored with a TTL, to assert expiry. *)
  for batch = 1 to batches do
    for _ = 1 to events_per_batch do
      match Rng.int rng 20 with
      | 0 | 1 | 2 | 3 | 4 ->
          Cluster.put cluster ~key:(Rng.pick rng keys)
            ~size:(1 + Rng.int rng (2 * 8192))
            ()
      | 5 | 6 ->
          Cluster.put cluster ~key:(Rng.pick rng keys)
            ~size:(1 + Rng.int rng 8192)
            ~ttl:(60.0 +. Rng.float rng 3600.0)
            ()
      | 7 ->
          Cluster.refresh cluster ~key:(Rng.pick rng keys)
            ~ttl:(60.0 +. Rng.float rng 600.0)
      | 8 | 9 -> Cluster.remove cluster ~key:(Rng.pick rng keys) ()
      | 10 | 11 | 12 ->
          let node = Rng.int rng nodes in
          if Cluster.is_up cluster ~node then Cluster.fail cluster ~node
          else Cluster.recover cluster ~node
      | 13 | 14 ->
          let node = Rng.int rng nodes in
          let id = Key.random rng in
          if
            Cluster.is_up cluster ~node
            && not (Ring.id_taken (Cluster.ring cluster) id)
          then Cluster.change_id cluster ~node ~id
      | _ ->
          (* Let paced fetches, expiries and delayed removes fire. *)
          Engine.run engine ~until:(Engine.now engine +. 30.0 +. Rng.float rng 600.0)
    done;
    (try Cluster.check_invariants cluster
     with Invalid_argument msg ->
       Alcotest.failf "batch %d (seed %d): %s" batch seed msg)
  done;
  (* Recover everything, settle, and verify steady state: every live
     block is fully replicated on up nodes with no pointers pending. *)
  for node = 0 to nodes - 1 do
    if not (Cluster.is_up cluster ~node) then Cluster.recover cluster ~node
  done;
  Engine.run engine
    ~until:
      (Engine.now engine
      +. (2.0 *. Cluster.default_config.Cluster.pointer_stabilization)
      +. 86400.0);
  Cluster.check_invariants cluster;
  (* Under [Erasure m] extreme churn can legitimately lose blocks: when
     fewer than [m] up nodes exist in a key's window, trimming can leave
     fewer than [m] fragments anywhere, and no regeneration can rebuild
     them.  Such blocks stay pinned at (fragments < m) with their
     pointer retries looping; every block with at least [m] surviving
     fragments must be readable again once all nodes are back. *)
  let m = needed config in
  let live = ref 0 and lost = ref 0 in
  Array.iter
    (fun key ->
      if Cluster.mem cluster ~key then begin
        incr live;
        if not (Cluster.available cluster ~key) then begin
          let frags = List.length (Cluster.physical_holders cluster ~key) in
          if frags >= m then
            Alcotest.failf
              "seed %d: recoverable block (%d >= %d fragments) unavailable \
               with all nodes up"
              seed frags m
          else incr lost
        end
      end)
    keys;
  if !lost > 0 && m = 1 then
    Alcotest.failf "seed %d: replicated block lost despite intact disks" seed;
  if !lost = 0 then
    for node = 0 to nodes - 1 do
      let s = Cluster.node_stats cluster node in
      if s.Cluster.pointer_count <> 0 then
        Alcotest.failf "seed %d: node %d still has %d pointers after settling"
          seed node s.Cluster.pointer_count
    done;
  !live

let replication_config =
  { Cluster.default_config with Cluster.migration_bandwidth = 2_000_000.0 }

let erasure_config m r =
  {
    Cluster.default_config with
    Cluster.replicas = r;
    redundancy = Cluster.Erasure m;
    migration_bandwidth = 2_000_000.0;
  }

let test_replication_churn () =
  List.iter
    (fun seed ->
      let live = run_churn ~seed ~config:replication_config ~nodes:14 in
      ignore live)
    [ 1; 7; 42 ]

let test_erasure_churn () =
  List.iter
    (fun (m, r) ->
      List.iter
        (fun seed -> ignore (run_churn ~seed ~config:(erasure_config m r) ~nodes:14))
        [ 3; 11 ])
    [ (2, 4); (3, 6) ]

let test_no_pointer_mode_churn () =
  let config =
    { replication_config with Cluster.use_pointers = false }
  in
  ignore (run_churn ~seed:5 ~config ~nodes:10)

let () =
  Alcotest.run "d2_store_churn"
    [
      ( "churn",
        [
          Alcotest.test_case "replication r=3" `Quick test_replication_churn;
          Alcotest.test_case "erasure 2-of-4 / 3-of-6" `Quick test_erasure_churn;
          Alcotest.test_case "immediate mode" `Quick test_no_pointer_mode_churn;
        ] );
    ]
