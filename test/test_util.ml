(* Unit and property tests for the d2_util foundation: RNG, zipf,
   heap, statistics, and table rendering. *)

module Rng = D2_util.Rng
module Zipf = D2_util.Zipf
module Heap = D2_util.Heap
module Stats = D2_util.Stats
module Report = D2_util.Report

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.int64 a = Rng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let c1 = Rng.int64 child in
  (* Re-deriving from the same seed must give the same child stream. *)
  let parent' = Rng.create 7 in
  let child' = Rng.split parent' in
  Alcotest.(check int64) "split deterministic" c1 (Rng.int64 child')

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of bounds"
  done

let test_rng_int_invalid () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "Rng.float out of bounds"
  done

let test_rng_float_mean () =
  let rng = Rng.create 5 in
  let acc = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng 1.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_bits_fills () =
  let rng = Rng.create 6 in
  let b = Bytes.make 13 '\000' in
  Rng.bits rng b;
  (* 13 zero bytes after a random fill is astronomically unlikely. *)
  Alcotest.(check bool) "filled" true (Bytes.exists (fun c -> c <> '\000') b)

let test_rng_exponential_mean () =
  let rng = Rng.create 8 in
  let acc = ref 0.0 in
  let n = 50_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~mean:3.0
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 3.0" true (abs_float (mean -. 3.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_normal_moments () =
  let rng = Rng.create 10 in
  let stats = Stats.Online.create () in
  for _ = 1 to 50_000 do
    Stats.Online.add stats (Rng.normal rng ~mean:5.0 ~stddev:2.0)
  done;
  Alcotest.(check bool) "mean" true (abs_float (Stats.Online.mean stats -. 5.0) < 0.05);
  Alcotest.(check bool) "stddev" true (abs_float (Stats.Online.stddev stats -. 2.0) < 0.05)

let test_zipf_bounds () =
  let z = Zipf.create ~n:100 ~s:0.9 in
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let r = Zipf.sample z rng in
    if r < 0 || r >= 100 then Alcotest.fail "zipf rank out of range"
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:1000 ~s:1.0 in
  let rng = Rng.create 12 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let r = Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 0 ~ 13%" true
    (abs_float ((float_of_int counts.(0) /. 100_000.0) -. Zipf.prob z 0) < 0.01)

let test_zipf_prob_sums () =
  let z = Zipf.create ~n:50 ~s:0.7 in
  let total = ref 0.0 in
  for i = 0 to 49 do
    total := !total +. Zipf.prob z i
  done;
  Alcotest.(check bool) "probabilities sum to 1" true (abs_float (!total -. 1.0) < 1e-9)

let test_zipf_uniform_when_s0 () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for i = 0 to 9 do
    Alcotest.(check bool) "uniform mass" true (abs_float (Zipf.prob z i -. 0.1) < 1e-9)
  done

(* Pearson chi-square statistic of [draws] samples from [f] against the
   sampler's analytic masses. *)
let chi_square z ~draws ~seed f =
  let n = Zipf.n z in
  let rng = Rng.create seed in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let r = f z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let stat = ref 0.0 in
  for i = 0 to n - 1 do
    let expected = Zipf.prob z i *. float_of_int draws in
    let d = float_of_int counts.(i) -. expected in
    stat := !stat +. (d *. d /. expected)
  done;
  (!stat, counts)

(* The alias sampler must draw from the same distribution the CDF
   search does.  Chi-square against the analytic masses has n-1
   degrees of freedom: mean n-1, stddev sqrt(2(n-1)), so a bound of
   n + 8*sqrt(2n) leaves the false-failure probability negligible
   while still catching a swapped alias/cut entry (which shifts whole
   percent of mass and sends the statistic into the thousands). *)
let prop_zipf_alias_chi_square =
  QCheck.Test.make ~name:"alias sampler passes chi-square vs analytic masses"
    ~count:20
    QCheck.(triple (int_range 2 64) (float_range 0.0 1.2) (int_range 0 10_000))
    (fun (n, s, seed) ->
      let z = Zipf.create ~n ~s in
      let draws = 20_000 in
      let stat, _ = chi_square z ~draws ~seed Zipf.sample in
      let bound = float_of_int n +. (8.0 *. sqrt (2.0 *. float_of_int n)) in
      stat < bound)

(* Frequency equivalence of the two samplers: every rank's empirical
   frequency must agree between alias and reference to within normal
   sampling noise (a few multiples of the binomial stddev). *)
let test_zipf_alias_matches_reference () =
  let z = Zipf.create ~n:40 ~s:0.95 in
  let draws = 200_000 in
  let _, alias_counts = chi_square z ~draws ~seed:1234 Zipf.sample in
  let _, ref_counts = chi_square z ~draws ~seed:5678 Zipf.sample_reference in
  for i = 0 to 39 do
    let fa = float_of_int alias_counts.(i) /. float_of_int draws in
    let fr = float_of_int ref_counts.(i) /. float_of_int draws in
    let p = Zipf.prob z i in
    let sigma = sqrt (p *. (1.0 -. p) /. float_of_int draws) in
    if abs_float (fa -. fr) > (8.0 *. sigma) +. 1e-4 then
      Alcotest.failf "rank %d: alias %.5f vs reference %.5f (p=%.5f)" i fa fr p
  done

let test_zipf_reference_skew () =
  let z = Zipf.create ~n:1000 ~s:1.0 in
  let rng = Rng.create 12 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 100_000 do
    let r = Zipf.sample_reference z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "rank 0 ~ 13%" true
    (abs_float ((float_of_int counts.(0) /. 100_000.0) -. Zipf.prob z 0) < 0.01)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  let drained = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some x ->
        drained := x :: !drained;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted output" [ 9; 6; 5; 5; 4; 2; 1; 1 ] !drained

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h)

let test_heap_peek_stable () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h)

let test_heap_to_sorted_list () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "non-destructive" 3 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let test_stats_online_basic () =
  let s = Stats.Online.create () in
  List.iter (Stats.Online.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Online.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Online.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Online.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Online.max s);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Stats.Online.sum s);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.Online.variance s)

let test_stats_empty () =
  let s = Stats.Online.create () in
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Stats.Online.mean s);
  Alcotest.(check (float 1e-9)) "variance of empty" 0.0 (Stats.Online.variance s)

let test_stats_percentiles () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_geometric_mean () =
  Alcotest.(check (float 1e-9)) "gm of 2,8" 4.0 (Stats.geometric_mean [| 2.0; 8.0 |]);
  Alcotest.(check (float 1e-9)) "gm of 1s" 1.0 (Stats.geometric_mean [| 1.0; 1.0; 1.0 |])

let test_stats_normalized_stddev () =
  Alcotest.(check (float 1e-9)) "balanced" 0.0
    (Stats.normalized_stddev [| 5.0; 5.0; 5.0 |]);
  let v = Stats.normalized_stddev [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "two-point" 1.0 v

let prop_online_matches_batch =
  QCheck.Test.make ~name:"online mean/stddev match batch" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.Online.create () in
      List.iter (Stats.Online.add s) xs;
      let arr = Array.of_list xs in
      abs_float (Stats.Online.mean s -. Stats.mean arr) < 1e-6
      && abs_float (Stats.Online.stddev s -. Stats.stddev arr) < 1e-6)

module Vec = D2_util.Vec

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 7)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of range")
    (fun () -> ignore (Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of range")
    (fun () -> Vec.set v (-1) 0)

let test_vec_to_array_iter_fold () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 3; 1; 2 ];
  Alcotest.(check (array int)) "to_array" [| 3; 1; 2 |] (Vec.to_array v);
  let acc = ref [] in
  Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 3; 1; 2 ] (List.rev !acc);
  Alcotest.(check int) "fold" 6 (Vec.fold_left ( + ) 0 v)

let test_vec_sort_clear () =
  let v = Vec.create () in
  List.iter (Vec.push v) [ 3; 1; 2 ];
  Vec.sort ~cmp:compare v;
  Alcotest.(check (array int)) "sorted" [| 1; 2; 3 |] (Vec.to_array v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Vec.push v 9;
  Alcotest.(check int) "usable after clear" 9 (Vec.get v 0)

let prop_vec_matches_list =
  QCheck.Test.make ~name:"vec push/to_array = list" ~count:200 QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      Array.to_list (Vec.to_array v) = xs)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_report_renders () =
  let r = Report.create ~title:"demo" ~columns:[ "a"; "b" ] in
  Report.add_row r [ "1"; "2" ];
  Report.add_row r [ "333" ];
  let s = Report.render r in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  (* Padded short row must still have both columns rendered. *)
  Alcotest.(check bool) "contains 333" true (contains_substring s "333")

let test_report_formats () =
  Alcotest.(check string) "float" "1.500" (Report.fmt_float 1.5);
  Alcotest.(check string) "float decimals" "1.50" (Report.fmt_float ~decimals:2 1.5);
  Alcotest.(check string) "sci" "3.10e-05" (Report.fmt_sci 3.1e-5);
  Alcotest.(check string) "pct" "12.5%" (Report.fmt_pct 0.125)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "d2_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "bits fills buffer" `Quick test_rng_bits_fills;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
        ] );
      ( "zipf",
        Alcotest.test_case "bounds" `Quick test_zipf_bounds
        :: Alcotest.test_case "skew" `Quick test_zipf_skew
        :: Alcotest.test_case "reference skew" `Quick test_zipf_reference_skew
        :: Alcotest.test_case "prob sums to 1" `Quick test_zipf_prob_sums
        :: Alcotest.test_case "uniform when s=0" `Quick test_zipf_uniform_when_s0
        :: Alcotest.test_case "alias = reference frequencies" `Quick
             test_zipf_alias_matches_reference
        :: qcheck [ prop_zipf_alias_chi_square ] );
      ( "heap",
        Alcotest.test_case "ordering" `Quick test_heap_ordering
        :: Alcotest.test_case "empty" `Quick test_heap_empty
        :: Alcotest.test_case "peek stable" `Quick test_heap_peek_stable
        :: Alcotest.test_case "to_sorted_list" `Quick test_heap_to_sorted_list
        :: qcheck [ prop_heap_sorts ] );
      ( "stats",
        Alcotest.test_case "online basic" `Quick test_stats_online_basic
        :: Alcotest.test_case "empty" `Quick test_stats_empty
        :: Alcotest.test_case "percentiles" `Quick test_stats_percentiles
        :: Alcotest.test_case "geometric mean" `Quick test_stats_geometric_mean
        :: Alcotest.test_case "normalized stddev" `Quick test_stats_normalized_stddev
        :: qcheck [ prop_online_matches_batch ] );
      ( "vec",
        Alcotest.test_case "push/get/set" `Quick test_vec_push_get
        :: Alcotest.test_case "bounds" `Quick test_vec_bounds
        :: Alcotest.test_case "to_array/iter/fold" `Quick test_vec_to_array_iter_fold
        :: Alcotest.test_case "sort/clear" `Quick test_vec_sort_clear
        :: qcheck [ prop_vec_matches_list ] );
      ( "report",
        [
          Alcotest.test_case "renders" `Quick test_report_renders;
          Alcotest.test_case "formats" `Quick test_report_formats;
        ] );
    ]
