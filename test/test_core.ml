(* Tests for the core layer: key mapping, system replay, the locality
   analyzer, and the three simulators on miniature scenarios. *)

module Op = D2_trace.Op
module Harvard = D2_trace.Harvard
module Failure = D2_trace.Failure
module Keymap = D2_core.Keymap
module System = D2_core.System
module Locality = D2_core.Locality
module Availability = D2_core.Availability
module Perf = D2_core.Perf
module Balance_sim = D2_core.Balance_sim
module Cluster = D2_store.Cluster
module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Tcp = D2_simnet.Tcp
module Key = D2_keyspace.Key
module Rng = D2_util.Rng

let tiny_trace =
  lazy
    (Harvard.generate ~rng:(Rng.create 55)
       ~params:
         {
           Harvard.default_params with
           Harvard.users = 8;
           target_bytes = 6 * 1024 * 1024;
           days = 1.0;
         }
       ())

(* {1 Keymap} *)

let test_keymap_stable () =
  let km = Keymap.create Keymap.D2 ~volume:"v" in
  let k1 = Keymap.key_of km ~path:"/a/b/f" ~block:0 in
  let k2 = Keymap.key_of km ~path:"/a/b/f" ~block:0 in
  Alcotest.(check bool) "stable" true (Key.equal k1 k2)

let test_keymap_modes_differ () =
  let path = "/a/b/f" in
  let kd = Keymap.key_of (Keymap.create Keymap.D2 ~volume:"v") ~path ~block:0 in
  let kt = Keymap.key_of (Keymap.create Keymap.Traditional ~volume:"v") ~path ~block:0 in
  let kf = Keymap.key_of (Keymap.create Keymap.Traditional_file ~volume:"v") ~path ~block:0 in
  Alcotest.(check bool) "d2 <> trad" false (Key.equal kd kt);
  Alcotest.(check bool) "trad <> file" false (Key.equal kt kf)

let test_keymap_d2_sibling_order () =
  let km = Keymap.create Keymap.D2 ~volume:"v" in
  (* Slots assigned in first-appearance order: /d/a before /d/b. *)
  let ka = Keymap.key_of km ~path:"/d/a" ~block:0 in
  let kb = Keymap.key_of km ~path:"/d/b" ~block:0 in
  Alcotest.(check bool) "creation order" true (Key.compare ka kb < 0);
  Alcotest.(check (list int)) "slot path" [ 1; 1 ] (Keymap.slot_path km ~path:"/d/a");
  Alcotest.(check (list int)) "sibling slot" [ 1; 2 ] (Keymap.slot_path km ~path:"/d/b")

let test_keymap_blocks_adjacent () =
  let km = Keymap.create Keymap.D2 ~volume:"v" in
  let k0 = Keymap.key_of km ~path:"/d/f" ~block:0 in
  let k1 = Keymap.key_of km ~path:"/d/f" ~block:1 in
  Alcotest.(check bool) "block order" true (Key.compare k0 k1 < 0);
  (* No other file's key fits between two consecutive blocks. *)
  let other = Keymap.key_of km ~path:"/d/g" ~block:0 in
  Alcotest.(check bool) "no interleaving" false
    (Key.compare k0 other < 0 && Key.compare other k1 < 0)

let test_keymap_slot_overflow_hashes () =
  let km = Keymap.create Keymap.D2 ~volume:"v" in
  (* Exhaust the slot space of one directory. *)
  for i = 1 to 65535 do
    ignore (Keymap.slot_path km ~path:(Printf.sprintf "/flat/f%d" i))
  done;
  (* The next child still gets a usable (hashed) slot. *)
  let slots = Keymap.slot_path km ~path:"/flat/overflow" in
  match slots with
  | [ _; s ] -> Alcotest.(check bool) "hashed slot in range" true (s >= 1 && s <= 65535)
  | _ -> Alcotest.fail "unexpected slot path shape"

(* {1 System} *)

let test_system_load_and_ops () =
  let engine = Engine.create () in
  let trace = Lazy.force tiny_trace in
  let sys =
    System.create ~engine ~mode:Keymap.D2 ~rng:(Rng.create 1) ~nodes:10 ()
  in
  System.load_initial sys trace;
  let cluster = System.cluster sys in
  Alcotest.(check bool) "blocks loaded" true (Cluster.block_count cluster > 100);
  Alcotest.(check bool) "baseline recorded" true (System.baseline_written sys > 0.0);
  (* Apply a create and then delete its file. *)
  let op =
    { Op.time = 0.0; user = 0; path = "/x/new"; file = 999_999; block = 0;
      kind = Op.Create; bytes = 4096 }
  in
  System.apply_op sys op;
  Alcotest.(check (list (pair int int))) "file tracked" [ (0, 4096) ]
    (System.file_blocks sys ~file:999_999);
  let key = System.key_of_op sys op in
  Alcotest.(check bool) "block stored" true (Cluster.mem cluster ~key);
  System.apply_op sys { op with Op.kind = Op.Delete };
  Engine.run engine ~until:60.0;
  Alcotest.(check bool) "block removed" false (Cluster.mem cluster ~key);
  Alcotest.(check (list (pair int int))) "untracked" []
    (System.file_blocks sys ~file:999_999)

let test_system_resolve_owners_batch () =
  let engine = Engine.create () in
  let trace = Lazy.force tiny_trace in
  let sys = System.create ~engine ~mode:Keymap.D2 ~rng:(Rng.create 1) ~nodes:10 () in
  System.load_initial sys trace;
  let cluster = System.cluster sys in
  let km = System.keymap sys in
  (* A column of existing keys plus one key that was never stored. *)
  let keys =
    Array.init 8 (fun b ->
        if b = 5 then Keymap.key_of km ~path:"/no/such" ~block:0
        else
          Keymap.key_of km ~path:trace.Op.initial_files.(b).Op.file_path ~block:0)
  in
  let out = Array.make 8 min_int in
  System.resolve_owners_into sys keys out;
  Array.iteri
    (fun i k ->
      let expected = match Cluster.owner_of cluster ~key:k with Some n -> n | None -> -1 in
      Alcotest.(check int) (Printf.sprintf "column slot %d" i) expected out.(i))
    keys;
  Alcotest.(check int) "absent key resolves to -1" (-1) out.(5);
  Alcotest.check_raises "short output rejected"
    (Invalid_argument "System.resolve_owners_into: output shorter than input")
    (fun () -> System.resolve_owners_into sys keys (Array.make 3 0))

let test_system_imbalance_metric () =
  let engine = Engine.create () in
  let sys = System.create ~engine ~mode:Keymap.D2 ~rng:(Rng.create 1) ~nodes:10 () in
  (* Empty system: imbalance 0. *)
  Alcotest.(check (float 1e-9)) "empty" 0.0 (System.imbalance sys);
  let km = System.keymap sys in
  (* All data on one replica group: high imbalance. *)
  for b = 0 to 9 do
    Cluster.put (System.cluster sys) ~key:(Keymap.key_of km ~path:"/f" ~block:b) ~size:8192 ()
  done;
  Alcotest.(check bool) "skewed" true (System.imbalance sys > 1.0);
  Alcotest.(check bool) "max/mean > 1" true (System.max_over_mean_load sys > 1.0)

(* {1 Locality analyzer (Fig. 3)} *)

let test_locality_hand_example () =
  (* Two users, one hour; a universe of 40 blocks over 4 "files"
     of 10 blocks; 10 blocks per node at 4 nodes. *)
  let mk_file i =
    { Op.file_id = i; file_path = Printf.sprintf "/f%d" i; file_bytes = 10 * 8192 }
  in
  let read ~t ~user ~file ~block =
    { Op.time = t; user; path = Printf.sprintf "/f%d" file; file; block;
      kind = Op.Read; bytes = 8192 }
  in
  (* User 0 reads all of file 0 (one ordered node); user 1 reads one
     block from each file (4 ordered nodes). *)
  let ops =
    Array.of_list
      (List.init 10 (fun b -> read ~t:(float_of_int b) ~user:0 ~file:0 ~block:b)
      @ List.init 4 (fun f -> read ~t:(100.0 +. float_of_int f) ~user:1 ~file:f ~block:5))
  in
  let trace =
    { Op.name = "hand"; duration = 3600.0; users = 2; ops;
      initial_files = Array.init 4 mk_file }
  in
  let ordered = Locality.analyze trace ~nodes:4 Locality.Ordered in
  Alcotest.(check int) "two user-hours" 2 ordered.Locality.user_hours;
  (* user0: 1 node; user1: 4 nodes -> mean 2.5. *)
  Alcotest.(check (float 1e-9)) "ordered mean" 2.5 ordered.Locality.mean_nodes_per_user_hour;
  let lower = Locality.analyze trace ~nodes:4 Locality.Lower_bound in
  (* user0: ceil(10/10)=1; user1: ceil(4/10)=1 -> mean 1. *)
  Alcotest.(check (float 1e-9)) "lower bound" 1.0 lower.Locality.mean_nodes_per_user_hour

let test_locality_scenario_ordering () =
  let trace = Lazy.force tiny_trace in
  match Locality.analyze_all trace ~nodes:20 with
  | [ t; o; l ] ->
      Alcotest.(check bool) "traditional worst" true
        (t.Locality.mean_nodes_per_user_hour >= o.Locality.mean_nodes_per_user_hour);
      Alcotest.(check bool) "lower bound best" true
        (o.Locality.mean_nodes_per_user_hour >= l.Locality.mean_nodes_per_user_hour);
      Alcotest.(check bool) "big gap traditional/ordered" true
        (t.Locality.mean_nodes_per_user_hour > 2.0 *. o.Locality.mean_nodes_per_user_hour)
  | _ -> Alcotest.fail "expected three scenarios"

(* {1 Availability simulator} *)

let test_availability_no_failures_no_unavailability () =
  let trace = Lazy.force tiny_trace in
  let failures = { Failure.n = 20; duration = trace.Op.duration; events = [||] } in
  let replay =
    Availability.replay ~trace ~failures ~mode:Keymap.Traditional ~seed:3 ()
  in
  let st = Availability.task_unavailability ~trace ~replay ~inter:5.0 in
  Alcotest.(check int) "no failed tasks" 0 st.Availability.failed;
  Alcotest.(check bool) "tasks exist" true (st.Availability.tasks > 0)

let test_availability_d2_fewer_nodes_per_task () =
  let trace = Lazy.force tiny_trace in
  let failures = { Failure.n = 20; duration = trace.Op.duration; events = [||] } in
  let nodes mode =
    let replay = Availability.replay ~trace ~failures ~mode ~seed:3 () in
    (Availability.task_unavailability ~trace ~replay ~inter:5.0)
      .Availability.mean_nodes_per_task
  in
  let t = nodes Keymap.Traditional and d = nodes Keymap.D2 in
  Alcotest.(check bool)
    (Printf.sprintf "d2 %.1f << traditional %.1f" d t)
    true (d < t /. 2.0)

let test_availability_total_outage_fails_tasks () =
  let trace = Lazy.force tiny_trace in
  (* Kill every node for a window in the middle of day 1 work hours. *)
  let t0 = 10.0 *. 3600.0 and t1 = 14.0 *. 3600.0 in
  let events =
    Array.of_list
      (List.init 20 (fun n -> { Failure.time = t0; node = n; up = false })
      @ List.init 20 (fun n -> { Failure.time = t1; node = n; up = true }))
  in
  let failures = { Failure.n = 20; duration = trace.Op.duration; events } in
  let replay = Availability.replay ~trace ~failures ~mode:Keymap.D2 ~seed:3 () in
  let st = Availability.task_unavailability ~trace ~replay ~inter:5.0 in
  Alcotest.(check bool) "some tasks failed" true (st.Availability.failed > 0);
  (* And per-user stats account for them. *)
  let worst = st.Availability.per_user_unavailability in
  Alcotest.(check bool) "per-user sorted desc" true
    (Array.length worst > 0 && snd worst.(0) > 0.0)

(* {1 Performance simulator} *)

let test_perf_self_speedup_is_one () =
  let trace = Lazy.force tiny_trace in
  let config =
    { (Perf.default_config ~nodes:30 ~bandwidth:1_500_000.0) with
      Perf.base_nodes = 30; windows = 3; warmup = 3600.0 }
  in
  let p = Perf.run_pass ~trace ~mode:Keymap.Traditional ~config in
  let sp = Perf.speedup ~baseline:p ~improved:p ~which:`Seq in
  Alcotest.(check (float 1e-9)) "identity" 1.0 sp.Perf.overall;
  Alcotest.(check bool) "miss rate sane" true (p.Perf.miss_rate >= 0.0 && p.Perf.miss_rate <= 1.0);
  Alcotest.(check bool) "lookups non-negative" true (p.Perf.lookup_msgs_per_node >= 0.0)

let test_perf_d2_less_lookup_traffic () =
  let trace = Lazy.force tiny_trace in
  (* Hour-long measurement windows: the tiny trace's ops clump, and
     15-minute windows can land entirely on lookup-cache hits (zero
     lookups in both modes), which makes the strict comparison
     vacuous. *)
  let config =
    { (Perf.default_config ~nodes:30 ~bandwidth:1_500_000.0) with
      Perf.base_nodes = 30; windows = 4; warmup = 3600.0;
      window_length = 3600.0 }
  in
  let pt = Perf.run_pass ~trace ~mode:Keymap.Traditional ~config in
  let pd = Perf.run_pass ~trace ~mode:Keymap.D2 ~config in
  Alcotest.(check bool)
    (Printf.sprintf "d2 %.1f < trad %.1f lookups" pd.Perf.lookup_msgs_per_node
       pt.Perf.lookup_msgs_per_node)
    true
    (pd.Perf.lookup_msgs_per_node < pt.Perf.lookup_msgs_per_node);
  Alcotest.(check bool) "d2 lower miss rate" true (pd.Perf.miss_rate < pt.Perf.miss_rate)

let test_perf_latency_pairs_match_groups () =
  let trace = Lazy.force tiny_trace in
  let config =
    { (Perf.default_config ~nodes:30 ~bandwidth:1_500_000.0) with
      Perf.base_nodes = 30; windows = 3; warmup = 3600.0 }
  in
  let p = Perf.run_pass ~trace ~mode:Keymap.Traditional ~config in
  let pairs = Perf.latency_pairs ~baseline:p ~improved:p ~which:`Seq in
  Array.iter
    (fun (a, b) -> Alcotest.(check (float 1e-9)) "identical" a b)
    pairs

(* Reference list scheduler: the straightforward linear scan over the
   in-flight slots that Perf.para_makespan's min-heap replaced.  Pins
   the optimized schedule to the original makespans. *)
let reference_para_makespan ~(cfg : Perf.config) ~conns ~client ~topo ~fetches =
  let slots = Array.make cfg.Perf.max_in_flight 0.0 in
  let server_free : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let finish = ref 0.0 in
  List.iter
    (fun (fd : Perf.fetch_desc) ->
      let best = ref 0 in
      for i = 1 to cfg.Perf.max_in_flight - 1 do
        if slots.(i) < slots.(!best) then best := i
      done;
      let ready = Float.max fd.Perf.ready slots.(!best) in
      let sfree =
        match Hashtbl.find_opt server_free fd.Perf.server with Some v -> v | None -> 0.0
      in
      let start = Float.max ready sfree in
      let ck =
        if cfg.Perf.shared_window then (client, -1) else (client, fd.Perf.server)
      in
      let conn =
        match Hashtbl.find_opt conns ck with
        | Some c -> c
        | None ->
            let c = Tcp.fresh_conn () in
            Hashtbl.replace conns ck c;
            c
      in
      let rtt = Topology.rtt topo client fd.Perf.server in
      let dur =
        Tcp.transfer_time conn ~now:start ~rtt ~bandwidth:cfg.Perf.access_bandwidth
          ~bytes:fd.Perf.f_bytes
      in
      let stop = start +. dur in
      slots.(!best) <- stop;
      Hashtbl.replace server_free fd.Perf.server stop;
      if stop > !finish then finish := stop)
    (List.rev fetches);
  !finish

let test_para_makespan_matches_reference () =
  let rng = Rng.create 7 in
  let topo = Topology.create ~rng ~n:20 () in
  List.iter
    (fun (max_in_flight, shared_window, n_fetches) ->
      let cfg =
        { (Perf.default_config ~nodes:20 ~bandwidth:1_500_000.0) with
          Perf.max_in_flight; shared_window }
      in
      (* Reverse issue order, as accumulated during replay. *)
      let fetches =
        List.init n_fetches (fun _ ->
            { Perf.ready = Rng.float rng 5.0;
              server = Rng.int rng 20;
              f_bytes = 1 + Rng.int rng 200_000 })
      in
      (* Fresh connection tables for each run: transfer_time mutates
         per-connection window state. *)
      let heap_v =
        Perf.para_makespan ~cfg ~conns:(Hashtbl.create 16) ~client:0 ~topo ~fetches
      in
      let ref_v =
        reference_para_makespan ~cfg ~conns:(Hashtbl.create 16) ~client:0 ~topo ~fetches
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "makespan (k=%d shared=%b n=%d)" max_in_flight shared_window
           n_fetches)
        ref_v heap_v;
      Alcotest.(check bool) "positive" true (n_fetches = 0 || heap_v > 0.0))
    [ (1, false, 30); (4, false, 50); (15, false, 100); (4, true, 50); (15, true, 7); (3, false, 0) ]

(* {1 Balance simulator} *)

let test_balance_sim_improves_imbalance () =
  let trace = Lazy.force tiny_trace in
  let params = Balance_sim.default_params ~nodes:20 ~seed:5 in
  let d2 = Balance_sim.run ~trace ~setup:Balance_sim.D2 ~params in
  let trad = Balance_sim.run ~trace ~setup:Balance_sim.Traditional ~params in
  let final r =
    let s = r.Balance_sim.samples in
    snd s.(Array.length s - 1)
  in
  Alcotest.(check bool)
    (Printf.sprintf "d2 %.2f <= traditional %.2f" (final d2) (final trad))
    true
    (final d2 <= final trad +. 0.05);
  Alcotest.(check bool) "d2 moved ids" true (d2.Balance_sim.balancer_moves > 0);
  Alcotest.(check int) "traditional does not balance" 0 trad.Balance_sim.balancer_moves;
  Alcotest.(check (float 1e-6)) "no migration without balancing" 0.0
    (Array.fold_left ( +. ) 0.0 trad.Balance_sim.daily_migrated_mb)

let test_balance_sim_webcache_empty_start () =
  (* A cache workload starts with an empty store; the first inserts
     concentrate on one node and the balancer must dig out of it. *)
  let web =
    D2_trace.Web.generate ~rng:(Rng.create 66)
      ~params:
        { D2_trace.Web.default_params with D2_trace.Web.clients = 10; days = 2.0; domains = 60 }
      ()
  in
  let trace = D2_trace.Webcache.of_web_trace web in
  let params =
    { (Balance_sim.default_params ~nodes:20 ~seed:6) with Balance_sim.warmup = 3600.0 }
  in
  let r = Balance_sim.run ~trace ~setup:Balance_sim.D2 ~params in
  let samples = r.Balance_sim.samples in
  Alcotest.(check bool) "has samples" true (Array.length samples > 10);
  let early = snd samples.(1) in
  let late = snd samples.(Array.length samples - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "imbalance falls %.2f -> %.2f" early late)
    true (late < early);
  Alcotest.(check bool) "migration happened" true
    (Array.fold_left ( +. ) 0.0 r.Balance_sim.daily_migrated_mb > 0.0)

(* The plan-compiled replay (run) must be observationally identical to
   the original per-op-record replay (run_reference) for every setup:
   same samples, same traffic accounting, same balancer moves. *)
let test_balance_plan_matches_reference () =
  let trace = Lazy.force tiny_trace in
  let params = Balance_sim.default_params ~nodes:20 ~seed:5 in
  let exact = Alcotest.float 0.0 in
  List.iter
    (fun setup ->
      let name = Balance_sim.setup_name setup in
      let p = Balance_sim.run ~trace ~setup ~params in
      let r = Balance_sim.run_reference ~trace ~setup ~params in
      Alcotest.(check (list (pair exact exact)))
        (name ^ " samples")
        (Array.to_list r.Balance_sim.samples)
        (Array.to_list p.Balance_sim.samples);
      Alcotest.(check exact)
        (name ^ " max/mean") r.Balance_sim.max_over_mean p.Balance_sim.max_over_mean;
      Alcotest.(check (list exact))
        (name ^ " written")
        (Array.to_list r.Balance_sim.daily_written_mb)
        (Array.to_list p.Balance_sim.daily_written_mb);
      Alcotest.(check (list exact))
        (name ^ " removed")
        (Array.to_list r.Balance_sim.daily_removed_mb)
        (Array.to_list p.Balance_sim.daily_removed_mb);
      Alcotest.(check (list exact))
        (name ^ " migrated")
        (Array.to_list r.Balance_sim.daily_migrated_mb)
        (Array.to_list p.Balance_sim.daily_migrated_mb);
      Alcotest.(check (list exact))
        (name ^ " day-start totals")
        (Array.to_list r.Balance_sim.total_at_day_start_mb)
        (Array.to_list p.Balance_sim.total_at_day_start_mb);
      Alcotest.(check int)
        (name ^ " moves") r.Balance_sim.balancer_moves p.Balance_sim.balancer_moves)
    Balance_sim.all_setups

let test_balance_sim_accounting () =
  let trace = Lazy.force tiny_trace in
  let params = Balance_sim.default_params ~nodes:20 ~seed:5 in
  let r = Balance_sim.run ~trace ~setup:Balance_sim.D2 ~params in
  Alcotest.(check bool) "writes recorded" true
    (Array.fold_left ( +. ) 0.0 r.Balance_sim.daily_written_mb > 0.0);
  Alcotest.(check bool) "initial data in T" true (r.Balance_sim.total_at_day_start_mb.(0) > 1.0);
  Array.iter
    (fun (t, v) ->
      if t < 0.0 || v < 0.0 then Alcotest.fail "negative sample")
    r.Balance_sim.samples

let () =
  Alcotest.run "d2_core"
    [
      ( "keymap",
        [
          Alcotest.test_case "stable" `Quick test_keymap_stable;
          Alcotest.test_case "modes differ" `Quick test_keymap_modes_differ;
          Alcotest.test_case "sibling order" `Quick test_keymap_d2_sibling_order;
          Alcotest.test_case "blocks adjacent" `Quick test_keymap_blocks_adjacent;
          Alcotest.test_case "slot overflow" `Slow test_keymap_slot_overflow_hashes;
        ] );
      ( "system",
        [
          Alcotest.test_case "load + ops" `Quick test_system_load_and_ops;
          Alcotest.test_case "batched owner column" `Quick test_system_resolve_owners_batch;
          Alcotest.test_case "imbalance metric" `Quick test_system_imbalance_metric;
        ] );
      ( "locality",
        [
          Alcotest.test_case "hand example" `Quick test_locality_hand_example;
          Alcotest.test_case "scenario ordering" `Quick test_locality_scenario_ordering;
        ] );
      ( "availability",
        [
          Alcotest.test_case "no failures" `Quick test_availability_no_failures_no_unavailability;
          Alcotest.test_case "d2 fewer nodes/task" `Quick test_availability_d2_fewer_nodes_per_task;
          Alcotest.test_case "total outage" `Quick test_availability_total_outage_fails_tasks;
        ] );
      ( "perf",
        [
          Alcotest.test_case "self speedup = 1" `Quick test_perf_self_speedup_is_one;
          Alcotest.test_case "d2 less lookup traffic" `Quick test_perf_d2_less_lookup_traffic;
          Alcotest.test_case "latency pairs" `Quick test_perf_latency_pairs_match_groups;
          Alcotest.test_case "para makespan = reference" `Quick
            test_para_makespan_matches_reference;
        ] );
      ( "balance",
        [
          Alcotest.test_case "improves imbalance" `Quick test_balance_sim_improves_imbalance;
          Alcotest.test_case "webcache empty start" `Quick test_balance_sim_webcache_empty_start;
          Alcotest.test_case "plan replay = reference" `Quick test_balance_plan_matches_reference;
          Alcotest.test_case "accounting" `Quick test_balance_sim_accounting;
        ] );
    ]
