(* Wire-codec properties: random frames round-trip bit-exactly,
   truncated windows say [Short], corrupted bytes never raise, and the
   stream reader reassembles frames across arbitrary chunking. *)

module Wire = D2_net.Wire
module Key = D2_keyspace.Key
module Rng = D2_util.Rng

module Vv = D2_sync.Version_vector

let key_of_rng rng = Key.random rng

let random_vv rng =
  let n = match Rng.int rng 4 with 0 -> 0 | 1 -> 1 | _ -> Rng.int rng 8 in
  let vv = ref Vv.empty in
  for _ = 1 to n * 3 do
    vv := Vv.bump !vv ~node:(Rng.int rng 24)
  done;
  !vv

let random_payload rng =
  (* Bias towards the edges: empty, one byte, and the max 8 KB block. *)
  let n =
    match Rng.int rng 5 with
    | 0 -> 0
    | 1 -> 1
    | 2 -> Wire.max_payload
    | _ -> Rng.int rng Wire.max_payload
  in
  String.init n (fun _ -> Char.chr (Rng.int rng 256))

let random_msg rng =
  match Rng.int rng 24 with
  | 0 -> Wire.Lookup { key = key_of_rng rng }
  | 1 ->
      Wire.Owner
        { node = Rng.int rng 100_000; lo = key_of_rng rng; hi = key_of_rng rng }
  | 2 -> Wire.Redirect { next = Rng.int rng 100_000 }
  | 3 -> Wire.Get { key = key_of_rng rng }
  | 4 -> Wire.Found { data = random_payload rng }
  | 5 -> Wire.Missing
  | 6 ->
      Wire.Put
        {
          key = key_of_rng rng;
          depth = Rng.int rng 8;
          vv = random_vv rng;
          data = random_payload rng;
        }
  | 7 -> Wire.Put_ack { copies = Rng.int rng 16; vv = random_vv rng }
  | 8 ->
      Wire.Remove
        { key = key_of_rng rng; depth = Rng.int rng 8; vv = random_vv rng }
  | 9 -> Wire.Remove_ack { removed = Rng.bool rng }
  | 10 -> Wire.Join { node = Rng.int rng 100_000; id = key_of_rng rng }
  | 11 ->
      let n = Rng.int rng 40 in
      Wire.Join_ack
        { members = List.init n (fun i -> (i * 3, key_of_rng rng)) }
  | 12 -> Wire.Probe
  | 13 -> Wire.Probe_ack { node = Rng.int rng 100_000; epoch = Rng.int rng 1_000 }
  | 14 ->
      Wire.Error
        {
          code = Rng.int rng 100;
          message = String.init (Rng.int rng 64) (fun _ -> Char.chr (32 + Rng.int rng 90));
        }
  | 15 ->
      Wire.Sync_digests
        {
          lo = key_of_rng rng;
          hi = key_of_rng rng;
          prefix = Rng.int rng 0x10000;
          bits = Rng.int rng 29;
        }
  | 16 ->
      Wire.Sync_digests_ack
        {
          children =
            Array.init 16 (fun _ ->
                (Rng.int rng 0x4000_0000, Rng.int rng 10_000));
        }
  | 17 ->
      Wire.Sync_keys
        {
          lo = key_of_rng rng;
          hi = key_of_rng rng;
          prefix = Rng.int rng 0x10000;
          bits = Rng.int rng 29;
        }
  | 18 ->
      let n = Rng.int rng 20 in
      Wire.Sync_keys_ack
        {
          items =
            List.init n (fun _ ->
                (key_of_rng rng, random_vv rng, Rng.bool rng));
        }
  | 19 -> Wire.Fetch { key = key_of_rng rng }
  | 20 ->
      Wire.Fetch_ack
        {
          vv = random_vv rng;
          deleted = Rng.bool rng;
          data = (if Rng.bool rng then Some (random_payload rng) else None);
        }
  | 21 ->
      Wire.Push
        {
          key = key_of_rng rng;
          vv = random_vv rng;
          deleted = Rng.bool rng;
          data = random_payload rng;
        }
  | 22 -> Wire.Push_ack { stored = Rng.bool rng }
  | _ -> Wire.Get_q { key = key_of_rng rng; q = 1 + Rng.int rng 7 }

let equal_msg (a : Wire.msg) (b : Wire.msg) =
  match (a, b) with
  | Wire.Lookup { key = k1 }, Wire.Lookup { key = k2 } -> Key.equal k1 k2
  | Wire.Owner { node = n1; lo = l1; hi = h1 }, Wire.Owner { node = n2; lo = l2; hi = h2 }
    ->
      n1 = n2 && Key.equal l1 l2 && Key.equal h1 h2
  | Wire.Redirect { next = n1 }, Wire.Redirect { next = n2 } -> n1 = n2
  | Wire.Get { key = k1 }, Wire.Get { key = k2 } -> Key.equal k1 k2
  | Wire.Found { data = d1 }, Wire.Found { data = d2 } -> String.equal d1 d2
  | Wire.Missing, Wire.Missing | Wire.Probe, Wire.Probe -> true
  | ( Wire.Put { key = k1; depth = e1; vv = v1; data = d1 },
      Wire.Put { key = k2; depth = e2; vv = v2; data = d2 } ) ->
      Key.equal k1 k2 && e1 = e2 && v1 = v2 && String.equal d1 d2
  | ( Wire.Put_ack { copies = c1; vv = v1 },
      Wire.Put_ack { copies = c2; vv = v2 } ) ->
      c1 = c2 && v1 = v2
  | ( Wire.Remove { key = k1; depth = e1; vv = v1 },
      Wire.Remove { key = k2; depth = e2; vv = v2 } ) ->
      Key.equal k1 k2 && e1 = e2 && v1 = v2
  | Wire.Remove_ack { removed = r1 }, Wire.Remove_ack { removed = r2 } -> r1 = r2
  | Wire.Join { node = n1; id = i1 }, Wire.Join { node = n2; id = i2 } ->
      n1 = n2 && Key.equal i1 i2
  | Wire.Join_ack { members = m1 }, Wire.Join_ack { members = m2 } ->
      List.length m1 = List.length m2
      && List.for_all2 (fun (n1, k1) (n2, k2) -> n1 = n2 && Key.equal k1 k2) m1 m2
  | ( Wire.Probe_ack { node = n1; epoch = e1 },
      Wire.Probe_ack { node = n2; epoch = e2 } ) ->
      n1 = n2 && e1 = e2
  | Wire.Error { code = c1; message = m1 }, Wire.Error { code = c2; message = m2 }
    ->
      c1 = c2 && String.equal m1 m2
  | ( Wire.Sync_digests { lo = l1; hi = h1; prefix = p1; bits = b1 },
      Wire.Sync_digests { lo = l2; hi = h2; prefix = p2; bits = b2 } )
  | ( Wire.Sync_keys { lo = l1; hi = h1; prefix = p1; bits = b1 },
      Wire.Sync_keys { lo = l2; hi = h2; prefix = p2; bits = b2 } ) ->
      Key.equal l1 l2 && Key.equal h1 h2 && p1 = p2 && b1 = b2
  | ( Wire.Sync_digests_ack { children = c1 },
      Wire.Sync_digests_ack { children = c2 } ) ->
      c1 = c2
  | Wire.Sync_keys_ack { items = i1 }, Wire.Sync_keys_ack { items = i2 } ->
      List.length i1 = List.length i2
      && List.for_all2
           (fun (k1, v1, d1) (k2, v2, d2) ->
             Key.equal k1 k2 && v1 = v2 && d1 = d2)
           i1 i2
  | Wire.Fetch { key = k1 }, Wire.Fetch { key = k2 } -> Key.equal k1 k2
  | ( Wire.Fetch_ack { vv = v1; deleted = d1; data = b1 },
      Wire.Fetch_ack { vv = v2; deleted = d2; data = b2 } ) ->
      v1 = v2 && d1 = d2 && b1 = b2
  | ( Wire.Push { key = k1; vv = v1; deleted = d1; data = b1 },
      Wire.Push { key = k2; vv = v2; deleted = d2; data = b2 } ) ->
      Key.equal k1 k2 && v1 = v2 && d1 = d2 && String.equal b1 b2
  | Wire.Push_ack { stored = s1 }, Wire.Push_ack { stored = s2 } -> s1 = s2
  | Wire.Get_q { key = k1; q = q1 }, Wire.Get_q { key = k2; q = q2 } ->
      Key.equal k1 k2 && q1 = q2
  | _ -> false

let roundtrip_prop seed =
  let rng = Rng.create seed in
  let msg = random_msg rng in
  let req = Rng.int rng 0xffff in
  let frame = Wire.encode ~req msg in
  (Bytes.length frame = Wire.frame_length msg)
  &&
  match Wire.decode frame ~off:0 ~len:(Bytes.length frame) with
  | Ok (req', msg', consumed) ->
      req' = req && consumed = Bytes.length frame && equal_msg msg msg'
  | Error _ -> false

let truncation_prop seed =
  let rng = Rng.create seed in
  let msg = random_msg rng in
  let frame = Wire.encode ~req:7 msg in
  let n = Bytes.length frame in
  let cut = Rng.int rng n in
  match Wire.decode frame ~off:0 ~len:cut with
  | Error Wire.Short -> true
  | Ok _ | Error (Wire.Malformed _) -> false

let corruption_prop seed =
  let rng = Rng.create seed in
  let msg = random_msg rng in
  let frame = Wire.encode ~req:3 msg in
  let n = Bytes.length frame in
  let pos = Rng.int rng n in
  Bytes.set frame pos (Char.chr (Rng.int rng 256));
  (* Any outcome but an exception is acceptable; decode must also not
     read past the window even when the length field was corrupted. *)
  match Wire.decode frame ~off:0 ~len:n with
  | Ok _ | Error Wire.Short | Error (Wire.Malformed _) -> true

let test_oversize_length () =
  let b = Bytes.make 64 '\x00' in
  Bytes.set_int32_be b 0 0x7fffffffl;
  (match Wire.decode b ~off:0 ~len:64 with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "oversize length must be malformed");
  (* A length below the fixed header is also a protocol violation. *)
  Bytes.set_int32_be b 0 2l;
  match Wire.decode b ~off:0 ~len:64 with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "undersize length must be malformed"

let test_unknown_tag () =
  let frame = Wire.encode ~req:1 Wire.Probe in
  Bytes.set_uint8 frame 8 209;
  match Wire.decode frame ~off:0 ~len:(Bytes.length frame) with
  | Error (Wire.Malformed _) -> ()
  | _ -> Alcotest.fail "unknown tag must be malformed"

let reader_chunking_prop seed =
  let rng = Rng.create seed in
  let msgs = List.init (1 + Rng.int rng 12) (fun _ -> random_msg rng) in
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i m -> Buffer.add_bytes buf (Wire.encode ~req:i m))
    msgs;
  let stream = Buffer.to_bytes buf in
  let reader = Wire.Reader.create () in
  let out = ref [] in
  let pos = ref 0 in
  let total = Bytes.length stream in
  let ok = ref true in
  while !pos < total && !ok do
    let chunk = 1 + Rng.int rng 97 in
    let len = min chunk (total - !pos) in
    Wire.Reader.feed reader stream ~off:!pos ~len;
    pos := !pos + len;
    let drained = ref false in
    while not !drained do
      match Wire.Reader.next reader with
      | `Msg (req, m) -> out := (req, m) :: !out
      | `Awaiting -> drained := true
      | `Corrupt _ ->
          ok := false;
          drained := true
    done
  done;
  let out = List.rev !out in
  !ok
  && List.length out = List.length msgs
  && List.for_all2 (fun (req, m) (i, m') -> req = i && equal_msg m m') out
       (List.mapi (fun i m -> (i, m)) msgs)

(* Pipelined-runtime property: a whole window of K frames lands
   back-to-back in the reader through the zero-copy [reserve]/[commit]
   path (exactly how the transports deliver bytes), split at arbitrary
   boundaries — exactly K messages must come out, in order, request
   ids intact. *)
let reader_pipelined_burst_prop seed =
  let rng = Rng.create seed in
  let k = 1 + Rng.int rng 64 in
  let msgs = List.init k (fun _ -> random_msg rng) in
  let buf = Buffer.create 4096 in
  List.iteri (fun i m -> Buffer.add_bytes buf (Wire.encode ~req:i m)) msgs;
  let stream = Buffer.to_bytes buf in
  let reader = Wire.Reader.create ~capacity:4096 () in
  let out = ref [] in
  let pos = ref 0 in
  let total = Bytes.length stream in
  let ok = ref true in
  while !pos < total && !ok do
    let len = min (1 + Rng.int rng 16384) (total - !pos) in
    let dst, off = Wire.Reader.reserve reader len in
    Bytes.blit stream !pos dst off len;
    Wire.Reader.commit reader len;
    pos := !pos + len;
    let drained = ref false in
    while not !drained do
      match Wire.Reader.next reader with
      | `Msg (req, m) -> out := (req, m) :: !out
      | `Awaiting -> drained := true
      | `Corrupt _ ->
          ok := false;
          drained := true
    done
  done;
  let out = List.rev !out in
  !ok
  && List.length out = k
  && List.for_all2 (fun (req, m) (i, m') -> req = i && equal_msg m m') out
       (List.mapi (fun i m -> (i, m)) msgs)

(* A burst grows the buffer past its creation capacity; each full
   drain halves it back, and it settles exactly at the creation floor
   — never below, never stuck at the high-water mark. *)
let test_reader_capacity_floor () =
  let requested = 65536 in
  let reader = Wire.Reader.create ~capacity:requested () in
  let floor = Wire.Reader.capacity reader in
  Alcotest.(check bool) "floor covers requested capacity" true
    (floor >= requested);
  let key = Key.random (Rng.create 0x51) in
  let frame =
    Wire.encode ~req:9
      (Wire.Put
         {
           key;
           depth = 0;
           vv = Vv.empty;
           data = String.make Wire.max_payload 'x';
         })
  in
  let flen = Bytes.length frame in
  let burst_n = ((4 * floor) / flen) + 1 in
  let need = burst_n * flen in
  let dst, off = Wire.Reader.reserve reader need in
  for i = 0 to burst_n - 1 do
    Bytes.blit frame 0 dst (off + (i * flen)) flen
  done;
  Wire.Reader.commit reader need;
  Alcotest.(check bool) "burst grew past the floor" true
    (Wire.Reader.capacity reader > floor);
  let drained = ref 0 in
  let continue = ref true in
  while !continue do
    match Wire.Reader.next reader with
    | `Msg _ -> incr drained
    | `Awaiting -> continue := false
    | `Corrupt why -> Alcotest.fail why
  done;
  Alcotest.(check int) "whole burst decoded" burst_n !drained;
  (* One halving per drained batch: a dozen single-frame rounds is far
     more than log2(high-water / floor). *)
  for _ = 1 to 12 do
    let dst, off = Wire.Reader.reserve reader flen in
    Bytes.blit frame 0 dst off flen;
    Wire.Reader.commit reader flen;
    match Wire.Reader.next reader with
    | `Msg _ -> ()
    | `Awaiting | `Corrupt _ -> Alcotest.fail "single frame must decode"
  done;
  Alcotest.(check int) "settled exactly at the creation floor" floor
    (Wire.Reader.capacity reader)

let prop name f =
  QCheck.Test.make ~count:500 ~name QCheck.(small_nat) (fun seed -> f (seed + 1))

let () =
  Alcotest.run "net_wire"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest (prop "roundtrip" roundtrip_prop);
          QCheck_alcotest.to_alcotest (prop "truncation -> Short" truncation_prop);
          QCheck_alcotest.to_alcotest (prop "corruption never raises" corruption_prop);
          Alcotest.test_case "oversize/undersize length" `Quick test_oversize_length;
          Alcotest.test_case "unknown tag" `Quick test_unknown_tag;
        ] );
      ( "reader",
        [
          QCheck_alcotest.to_alcotest (prop "chunked reassembly" reader_chunking_prop);
          QCheck_alcotest.to_alcotest
            (prop "pipelined burst, random boundaries" reader_pipelined_burst_prop);
          Alcotest.test_case "capacity settles at creation floor" `Quick
            test_reader_capacity_floor;
        ] );
    ]
