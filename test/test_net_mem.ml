(* Deterministic end-to-end runs of the networked node runtime on the
   in-process transport: a 25-node cluster under virtual time serves
   replicated puts/gets through a caching client, survives a node
   kill mid-run, and produces bit-identical cache counters across two
   identical runs (pinned below). *)

module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Key = D2_keyspace.Key
module Rng = D2_util.Rng
module Ring = D2_dht.Ring
module Mem = D2_net.Transport_mem
module Node = D2_net.Node.Make (D2_net.Transport_mem)
module Client = D2_net.Client.Make (D2_net.Transport_mem)
module Lookup_cache = D2_cache.Lookup_cache
module Bootstrap = D2_net.Bootstrap

let cluster_n = 25

(* Virtual RTTs reach a few hundred ms; leave headroom so a slow pair
   never reads as a dead one. *)
let config =
  {
    D2_net.Node.replicas = 3;
    probe_interval = 0.5;
    rpc_timeout = 2.0;
    repair_interval = 0.0;
  }

let data_of key = "blk:" ^ Key.to_string key

type outcome = {
  hits : int;
  misses : int;
  lookup_rpcs : int;
  failures : int;
}

(* One full scripted run; everything is seeded, so two calls must
   produce identical traffic and identical counters. *)
let run () =
  let engine = Engine.create () in
  let topology =
    Topology.create ~rng:(Rng.create 0x7090) ~n:(cluster_n + 1) ()
  in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x11 () in
  let peers = Bootstrap.peers cluster_n in
  let nodes =
    List.map
      (fun (i, id) ->
        Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
  in
  List.iter Node.serve nodes;
  Engine.run engine ~until:3.0;
  let client =
    Client.create
      (Mem.endpoint net ~node:cluster_n)
      ~replicas:3 ~rpc_timeout:2.0
      ~seeds:(List.init cluster_n Fun.id)
      ()
  in
  let krng = Rng.create 0xbeef in
  let keys = Array.init 120 (fun _ -> Key.random krng) in
  (* Phase 1: store everything with 3-way replication; with every node
     up and no loss, all three copies must ack. *)
  Array.iter
    (fun key ->
      match Client.put client ~key ~data:(data_of key) with
      | `Ok copies ->
          Alcotest.(check int) "put acked by all replicas" 3 copies
      | `Failed -> Alcotest.fail "put failed with the whole cluster up")
    keys;
  (* Phase 2: read the first half back (warming cached ranges that the
     kill below will partly invalidate). *)
  Array.iteri
    (fun i key ->
      if i < 60 then
        match Client.get client ~key with
        | `Found d -> Alcotest.(check string) "get" (data_of key) d
        | `Missing | `Failed -> Alcotest.fail "pre-kill read lost a block")
    keys;
  (* Kill the owner of keys.(0): it owns data, it is covered by cached
     ranges, and its successor holds the surviving replica. *)
  let reference = Ring.create () in
  List.iter (fun (n, id) -> Ring.add reference ~id ~node:n) peers;
  let victim = Ring.successor reference keys.(0) in
  Mem.kill net victim;
  (* Let failure detection converge everywhere: broken streams flag the
     kill immediately; the rotating probe covers stragglers. *)
  Engine.run engine ~until:(Engine.now engine +. 20.0);
  (* Phase 3: every block must still read correctly through the
     survivors — the victim's keys now serve from its successor. *)
  Array.iter
    (fun key ->
      match Client.get client ~key with
      | `Found d -> Alcotest.(check string) "post-kill get" (data_of key) d
      | `Missing | `Failed -> Alcotest.fail "read lost after single kill")
    keys;
  List.iter Node.stop nodes;
  let cache = Client.cache client in
  {
    hits = Lookup_cache.hits cache;
    misses = Lookup_cache.misses cache;
    lookup_rpcs = Client.lookup_rpcs client;
    failures = Client.failures client;
  }

(* Counters for the scripted run above.  A change here means the
   protocol's message or cache behaviour changed — rerun twice, and if
   both runs agree, re-pin deliberately. *)
let pinned = { hits = 279; misses = 22; lookup_rpcs = 73; failures = 0 }

let check_outcome label expected got =
  Alcotest.(check int) (label ^ ": cache hits") expected.hits got.hits;
  Alcotest.(check int) (label ^ ": cache misses") expected.misses got.misses;
  Alcotest.(check int) (label ^ ": lookup rpcs") expected.lookup_rpcs got.lookup_rpcs;
  Alcotest.(check int) (label ^ ": failures") expected.failures got.failures

(* The same scripted churn run driven through the pipelined client
   with [window] operations in flight.  Returns the outcome plus a
   full dump of every node's final shard — pipelining must change
   throughput, never state: the dump has to be identical at any
   window depth, and window 1 must reproduce the synchronous run's
   pinned counters exactly. *)
let run_pipelined window =
  let engine = Engine.create () in
  let topology =
    Topology.create ~rng:(Rng.create 0x7090) ~n:(cluster_n + 1) ()
  in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x11 () in
  let peers = Bootstrap.peers cluster_n in
  let nodes =
    List.map
      (fun (i, id) ->
        Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
  in
  List.iter Node.serve nodes;
  Engine.run engine ~until:3.0;
  let client =
    Client.create
      (Mem.endpoint net ~node:cluster_n)
      ~replicas:3 ~rpc_timeout:2.0
      ~seeds:(List.init cluster_n Fun.id)
      ()
  in
  let krng = Rng.create 0xbeef in
  let keys = Array.init 120 (fun _ -> Key.random krng) in
  (* Keep at most [window] operations open; issue the next one as soon
     as a slot frees up, exactly like d2load's replay loop. *)
  let throttle limit =
    while Client.in_flight client >= limit do
      Client.poll client ~timeout:0.01
    done
  in
  let drain () = throttle 1 in
  Array.iter
    (fun key ->
      throttle window;
      Client.put_async client ~key ~data:(data_of key) (function
        | `Ok copies ->
            Alcotest.(check int) "pipelined put acked by all replicas" 3 copies
        | `Failed -> Alcotest.fail "pipelined put failed, cluster up"))
    keys;
  drain ();
  Array.iteri
    (fun i key ->
      if i < 60 then begin
        throttle window;
        Client.get_async client ~key (function
          | `Found d -> Alcotest.(check string) "pipelined get" (data_of key) d
          | `Missing | `Failed ->
              Alcotest.fail "pipelined pre-kill read lost a block")
      end)
    keys;
  drain ();
  let reference = Ring.create () in
  List.iter (fun (n, id) -> Ring.add reference ~id ~node:n) peers;
  let victim = Ring.successor reference keys.(0) in
  Mem.kill net victim;
  Engine.run engine ~until:(Engine.now engine +. 20.0);
  Array.iter
    (fun key ->
      throttle window;
      Client.get_async client ~key (function
        | `Found d ->
            Alcotest.(check string) "pipelined post-kill get" (data_of key) d
        | `Missing | `Failed ->
            Alcotest.fail "pipelined read lost after single kill"))
    keys;
  drain ();
  List.iter Node.stop nodes;
  let store_dump =
    List.map
      (fun n ->
        let blocks = ref [] in
        D2_net.Blockstore.iter (Node.store n) (fun k d ->
            blocks := (Key.to_string k, d) :: !blocks);
        List.sort compare !blocks)
      nodes
  in
  let cache = Client.cache client in
  ( {
      hits = Lookup_cache.hits cache;
      misses = Lookup_cache.misses cache;
      lookup_rpcs = Client.lookup_rpcs client;
      failures = Client.failures client;
    },
    store_dump )

(* Pipelining depth is a pure throughput knob: window 1 must match the
   synchronous pins bit-for-bit, and deeper windows may reorder wire
   traffic but must land every node on the identical final store. *)
let test_pipelined_depth_invariant () =
  let o1, dump1 = run_pipelined 1 in
  check_outcome "window 1 vs pin" pinned o1;
  List.iter
    (fun window ->
      let o, dump = run_pipelined window in
      Alcotest.(check int)
        (Printf.sprintf "window %d: failures" window)
        0 o.failures;
      Alcotest.(check bool)
        (Printf.sprintf "window %d: store state identical to window 1" window)
        true (dump = dump1))
    [ 4; 32 ]

let test_churn_deterministic () =
  let first = run () in
  let second = run () in
  check_outcome "second run" first second;
  check_outcome "pin" pinned first

(* α-way racing around a black-holed seed.  The partition makes one
   seed silently swallow client traffic — the half-open failure mode
   of a node that died without FINs, where an RPC concludes only by
   its timeout (a [kill] closes streams and fails fast, which is the
   easy case).  A fresh α=1 client entering through that seed stalls a
   full [rpc_timeout] before its ladder moves to the next seed; an
   α=2 client races a second chain through the next seed and settles
   in network time.  Virtual clocks make the contrast exact:
   elapsed(α=2) < rpc_timeout <= elapsed(α=1). *)
let test_alpha_race_survives_dead_seed () =
  let engine = Engine.create () in
  let topology =
    Topology.create ~rng:(Rng.create 0x7090) ~n:(cluster_n + 3) ()
  in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x11 () in
  let peers = Bootstrap.peers cluster_n in
  let nodes =
    List.map
      (fun (i, id) ->
        Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
  in
  List.iter Node.serve nodes;
  Engine.run engine ~until:3.0;
  (* Store one block while everything is reachable. *)
  let key = Key.random (Rng.create 0x51) in
  let setup =
    Client.create
      (Mem.endpoint net ~node:cluster_n)
      ~replicas:3 ~rpc_timeout:config.rpc_timeout
      ~seeds:(List.init cluster_n Fun.id)
      ()
  in
  (match Client.put setup ~key ~data:(data_of key) with
  | `Ok _ -> ()
  | `Failed -> Alcotest.fail "setup put failed");
  (* Seed ladder [dead; owner]: the second chain settles in one hop,
     so only the first chain ever touches the black hole, and the α=1
     ladder pays exactly one timeout before recovering. *)
  let reference = Ring.create () in
  List.iter (fun (n, id) -> Ring.add reference ~id ~node:n) peers;
  let owner = Ring.successor reference key in
  let dead = (owner + 7) mod cluster_n in
  Mem.set_partition net
    (Some
       (fun a b ->
         (a = dead && b >= cluster_n) || (b = dead && a >= cluster_n)));
  (* Fresh client per α (empty cache, virgin links) on its own slot. *)
  let timed_get alpha node =
    let client =
      Client.create (Mem.endpoint net ~node) ~replicas:3
        ~rpc_timeout:config.rpc_timeout ~alpha ~seeds:[ dead; owner ] ()
    in
    let t0 = Engine.now engine in
    (match Client.get client ~key with
    | `Found d -> Alcotest.(check string) "raced get" (data_of key) d
    | `Missing | `Failed -> Alcotest.fail "lookup died with a live owner");
    Engine.now engine -. t0
  in
  let e1 = timed_get 1 (cluster_n + 1) in
  let e2 = timed_get 2 (cluster_n + 2) in
  Alcotest.(check bool)
    (Printf.sprintf "alpha=1 stalls a full rpc_timeout (%.3fs)" e1)
    true
    (e1 >= config.rpc_timeout);
  Alcotest.(check bool)
    (Printf.sprintf "alpha=2 settles before the timeout (%.3fs)" e2)
    true
    (e2 < config.rpc_timeout);
  Mem.set_partition net None;
  List.iter Node.stop nodes

(* Small sanity run: 3 nodes, one block, full lifecycle including the
   stale-cache [Missing] path after remove. *)
let test_basic_lifecycle () =
  let engine = Engine.create () in
  let topology = Topology.create ~rng:(Rng.create 0x31) ~n:4 () in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x5 () in
  let peers = Bootstrap.peers 3 in
  let nodes =
    List.map
      (fun (i, id) ->
        Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
  in
  List.iter Node.serve nodes;
  Engine.run engine ~until:2.0;
  let client =
    Client.create (Mem.endpoint net ~node:3) ~replicas:3 ~rpc_timeout:2.0
      ~seeds:[ 0; 1; 2 ] ()
  in
  let key = Key.random (Rng.create 0x77) in
  (match Client.put client ~key ~data:"hello" with
  | `Ok copies -> Alcotest.(check int) "copies" 3 copies
  | `Failed -> Alcotest.fail "put");
  (* Every node's shard holds the block: 3 replicas on a 3-node ring. *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        "replica present" true
        (D2_net.Blockstore.mem_block (Node.store n) ~key))
    nodes;
  (match Client.get client ~key with
  | `Found d -> Alcotest.(check string) "data" "hello" d
  | `Missing | `Failed -> Alcotest.fail "get");
  (match Client.remove client ~key with
  | `Ok removed -> Alcotest.(check bool) "removed" true removed
  | `Failed -> Alcotest.fail "remove");
  (match Client.get client ~key with
  | `Missing -> ()
  | `Found _ -> Alcotest.fail "block survived remove"
  | `Failed -> Alcotest.fail "get after remove");
  Alcotest.(check int) "no failures" 0 (Client.failures client);
  List.iter Node.stop nodes

let () =
  Alcotest.run "net_mem"
    [
      ( "e2e",
        [
          Alcotest.test_case "basic lifecycle (3 nodes)" `Quick
            test_basic_lifecycle;
          Alcotest.test_case "25-node churn, pinned counters" `Quick
            test_churn_deterministic;
          Alcotest.test_case "pipelined churn, window-invariant state" `Quick
            test_pipelined_depth_invariant;
          Alcotest.test_case "alpha=2 races around a black-holed seed" `Quick
            test_alpha_race_survives_dead_seed;
        ] );
    ]
