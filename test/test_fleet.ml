(* Tests for the shared range arena and the fleet engine: probe
   semantics against a reference per-client LRU, reconfiguration
   staleness, determinism across worker counts, and pinned small-fleet
   counters. *)

module Range_arena = D2_cache.Range_arena
module Fleet = D2_fleet.Fleet
module Scenario = D2_fleet.Scenario
module Rng = D2_util.Rng

let qcheck = List.map QCheck_alcotest.to_alcotest

(* {1 Range arena} *)

let probe a ?(shard = 0) ?(cls = 0) ?(client = 0) ?(cap = 8) ~pos ~tick () =
  let r = Range_arena.probe a ~shard ~cls ~client ~pos ~tick ~cap in
  (r lsr 2, r land 3)

let test_arena_basic () =
  let a = Range_arena.create ~ways:4 ~shards:1 ~clients:2 () in
  Range_arena.set_ranges a ~bounds:[| 10; 20; 30 |] ~owners:[| 5; 6; 7 |];
  Alcotest.(check (pair int int)) "cold miss" (6, 1) (probe a ~pos:15 ~tick:1 ());
  Alcotest.(check (pair int int)) "then hit" (6, 0) (probe a ~pos:15 ~tick:2 ());
  Alcotest.(check (pair int int)) "same range, other pos" (6, 0)
    (probe a ~pos:17 ~tick:3 ());
  Alcotest.(check (pair int int)) "bound itself is inclusive" (6, 0)
    (probe a ~pos:20 ~tick:4 ());
  Alcotest.(check (pair int int)) "wraps past the last bound" (5, 1)
    (probe a ~pos:31 ~tick:5 ());
  Alcotest.(check (pair int int)) "other client is cold" (6, 1)
    (probe a ~client:1 ~pos:15 ~tick:6 ());
  let h, m, s, e = Range_arena.stats a ~cls:0 in
  Alcotest.(check (list int)) "counters" [ 3; 3; 0; 0 ] [ h; m; s; e ]

let test_arena_staleness () =
  let a = Range_arena.create ~ways:4 ~shards:1 ~clients:1 () in
  Range_arena.set_ranges a ~bounds:[| 10; 20; 30 |] ~owners:[| 0; 1; 2 |];
  ignore (probe a ~pos:15 ~tick:1 ());
  ignore (probe a ~pos:25 ~tick:2 ());
  (* Change only the last range's owner: (20,30] invalidates, (10,20]
     carries its epoch forward. *)
  Range_arena.set_ranges a ~bounds:[| 10; 20; 30 |] ~owners:[| 0; 1; 9 |];
  Alcotest.(check (pair int int)) "unchanged range still fresh" (1, 0)
    (probe a ~pos:15 ~tick:3 ());
  Alcotest.(check (pair int int)) "changed range is stale" (9, 2)
    (probe a ~pos:25 ~tick:4 ());
  Alcotest.(check (pair int int)) "stale refresh sticks" (9, 0)
    (probe a ~pos:25 ~tick:5 ());
  (* Moving a range's lower bound invalidates it too (pessimistic
     diff), even though cached answers above the new bound were still
     right. *)
  Range_arena.set_ranges a ~bounds:[| 12; 20; 30 |] ~owners:[| 0; 1; 9 |];
  Alcotest.(check (pair int int)) "tightened lo goes stale" (1, 2)
    (probe a ~pos:15 ~tick:6 ());
  let _, _, stale, _ = Range_arena.stats a ~cls:0 in
  Alcotest.(check int) "stale count" 2 stale

let test_arena_eviction_and_distance () =
  let a = Range_arena.create ~ways:2 ~shards:1 ~clients:1 () in
  Range_arena.set_ranges a ~bounds:[| 10; 20; 30 |] ~owners:[| 0; 1; 2 |];
  ignore (probe a ~cap:2 ~pos:5 ~tick:1 ());
  ignore (probe a ~cap:2 ~pos:15 ~tick:2 ());
  (* Third range evicts the LRU slot (range (0,10]). *)
  ignore (probe a ~cap:2 ~pos:25 ~tick:3 ());
  let _, _, _, ev = Range_arena.stats a ~cls:0 in
  Alcotest.(check int) "one eviction" 1 ev;
  Alcotest.(check (pair int int)) "evicted range is cold again" (0, 1)
    (probe a ~cap:2 ~pos:5 ~tick:4 ());
  (* Distance histogram: re-touch the most recent (d=0) and the
     second most recent (d=1). *)
  ignore (probe a ~cap:2 ~pos:5 ~tick:5 ());
  ignore (probe a ~cap:2 ~pos:25 ~tick:6 ());
  let h = Range_arena.hist a in
  Alcotest.(check int) "d=0 touches" 1 h.(0);
  Alcotest.(check int) "d=1 touches" 1 h.(1);
  Alcotest.(check int) "cold misses" 4 h.(2);
  Range_arena.stats_reset a;
  let h2 = Range_arena.hist a in
  Alcotest.(check int) "hist reset" 0 (Array.fold_left ( + ) 0 h2);
  Alcotest.(check (list int)) "counters reset" [ 0; 0; 0; 0 ]
    (let a, b, c, d = Range_arena.stats a ~cls:0 in
     [ a; b; c; d ])

(* Reference model: one client, explicit recency list of
   (rid, epoch) pairs, most recent first. *)
module Reference = struct
  type t = {
    ways : int;
    mutable ranges : (int * int * int) array; (* bound, owner, changed *)
    mutable epoch : int;
    mutable slots : (int * int) list; (* rid, fetch epoch; MRU first *)
  }

  let create ~ways = { ways; ranges = [||]; epoch = 0; slots = [] }

  let set_ranges t ~bounds ~owners =
    t.epoch <- t.epoch + 1;
    let n = Array.length bounds in
    let lo i = if i = 0 then bounds.(n - 1) else bounds.(i - 1) in
    let old = t.ranges in
    let no = Array.length old in
    let old_lo j = if j = 0 then (fun (b, _, _) -> b) old.(no - 1) else (fun (b, _, _) -> b) old.(j - 1) in
    t.ranges <-
      Array.init n (fun i ->
          let carried = ref t.epoch in
          for j = 0 to no - 1 do
            let b, o, c = old.(j) in
            if b = bounds.(i) && o = owners.(i) && old_lo j = lo i then
              carried := c
          done;
          (bounds.(i), owners.(i), !carried))

  let resolve t pos =
    let n = Array.length t.ranges in
    let i = ref 0 in
    while
      !i < n && (fun (b, _, _) -> b) t.ranges.(!i) < pos
    do
      incr i
    done;
    t.ranges.(if !i = n then 0 else !i)

  (* Returns (owner, code); code 0 hit / 1 miss / 2 stale. *)
  let probe t ~pos ~cap =
    let rid, owner, changed = resolve t pos in
    let rec find i = function
      | [] -> None
      | (r, e) :: _ when r = rid -> Some (i, e)
      | _ :: tl -> find (i + 1) tl
    in
    match find 0 t.slots with
    | Some (d, e) when e >= changed ->
        t.slots <- (rid, e) :: List.filter (fun (r, _) -> r <> rid) t.slots;
        (owner, if d < cap then 0 else 1)
    | Some _ ->
        t.slots <-
          (rid, t.epoch) :: List.filter (fun (r, _) -> r <> rid) t.slots;
        (owner, 2)
    | None ->
        let kept =
          if List.length t.slots >= t.ways then
            (* drop the least recently used *)
            List.filteri (fun i _ -> i < t.ways - 1) t.slots
          else t.slots
        in
        t.slots <- (rid, t.epoch) :: kept;
        (owner, 1)
end

let prop_arena_matches_reference =
  QCheck.Test.make ~name:"range arena agrees with reference LRU" ~count:60
    QCheck.(
      triple (int_range 1 6) (int_range 1 8) (int_range 0 1_000_000))
    (fun (ways, nranges, seed) ->
      let rng = Rng.create seed in
      let a = Range_arena.create ~ways ~shards:1 ~clients:1 () in
      let m = Reference.create ~ways in
      let span = 100 in
      let new_map () =
        (* random strictly-increasing bounds with random owners *)
        let bs =
          Array.init nranges (fun _ -> Rng.int rng span)
          |> Array.to_list |> List.sort_uniq compare |> Array.of_list
        in
        let bs = if Array.length bs = 0 then [| 1 |] else bs in
        let os = Array.map (fun _ -> Rng.int rng 4) bs in
        Range_arena.set_ranges a ~bounds:bs ~owners:os;
        Reference.set_ranges m ~bounds:bs ~owners:os
      in
      new_map ();
      let ok = ref true in
      for tick = 1 to 300 do
        if Rng.int rng 40 = 0 then new_map ();
        let pos = Rng.int rng (span + 5) in
        let cap = 1 + Rng.int rng ways in
        let r = Range_arena.probe a ~shard:0 ~cls:0 ~client:0 ~pos ~tick ~cap in
        let owner, code = (r lsr 2, r land 3) in
        let owner', code' = Reference.probe m ~pos ~cap in
        if owner <> owner' || code <> code' then ok := false
      done;
      !ok)

(* {1 Fleet} *)

let small_config () =
  let sc = Scenario.default Scenario.Zipf_storm in
  {
    (Fleet.default_config sc) with
    Fleet.clients = 2_000;
    nodes = 8;
    files = 256;
    blocks = 4;
    burst = 2;
    duration = 10.0;
    seed = 7;
  }

let report_string cfg =
  Format.asprintf "%a" Fleet.pp_report (cfg, Fleet.run cfg)

let test_fleet_jobs_invariance () =
  let one = report_string { (small_config ()) with Fleet.jobs = 1 } in
  let four = report_string { (small_config ()) with Fleet.jobs = 4 } in
  Alcotest.(check string) "jobs=1 equals jobs=4" one four

let test_fleet_pinned_counters () =
  (* Analogue of the networked runtime's pinned replay: any drift in
     the generators, the arena, the wheel or the shard split shows up
     here first.  Update deliberately, with the determinism test above
     green at both job counts. *)
  let r = Fleet.run (small_config ()) in
  let h, m, s, e = r.Fleet.class_stats.(0) in
  Alcotest.(check int) "ops" 19620 r.Fleet.ops;
  Alcotest.(check int) "hits" 16786 h;
  Alcotest.(check int) "misses" 2834 m;
  Alcotest.(check int) "stale" 0 s;
  Alcotest.(check int) "evictions" 0 e;
  Alcotest.(check int) "probes = ops" r.Fleet.ops (h + m);
  Alcotest.(check int) "ops reach every shard"
    r.Fleet.ops
    (Array.fold_left ( + ) 0 r.Fleet.owner_ops)

let test_fleet_curve_monotone () =
  let r = Fleet.run (small_config ()) in
  let c = Fleet.hit_rate_curve r in
  let ok = ref true in
  for i = 1 to Array.length c - 1 do
    if c.(i) < c.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "curve is non-decreasing" true !ok;
  Alcotest.(check bool) "curve stays in [0,1]" true
    (c.(0) >= 0.0 && c.(Array.length c - 1) <= 1.0)

let test_fleet_diurnal_churn () =
  let sc =
    { (Scenario.default Scenario.Diurnal) with Scenario.day = 20.0 }
  in
  let cfg =
    {
      (Fleet.default_config sc) with
      Fleet.clients = 2_000;
      nodes = 8;
      files = 256;
      blocks = 4;
      burst = 2;
      duration = 40.0;
      seed = 7;
    }
  in
  let r = Fleet.run cfg in
  let _, _, stale, _ = r.Fleet.class_stats.(0) in
  Alcotest.(check bool) "churn happened" true (r.Fleet.churn_events > 0);
  Alcotest.(check bool) "churn produces stale misses" true (stale > 0);
  (* churn must not break the jobs invariance *)
  let a = Format.asprintf "%a" Fleet.pp_report (cfg, r) in
  let cfg3 = { cfg with Fleet.jobs = 3 } in
  let b = Format.asprintf "%a" Fleet.pp_report (cfg3, Fleet.run cfg3) in
  Alcotest.(check string) "diurnal jobs invariance" a b

let () =
  Alcotest.run "fleet"
    [
      ( "arena",
        [
          Alcotest.test_case "basic" `Quick test_arena_basic;
          Alcotest.test_case "staleness" `Quick test_arena_staleness;
          Alcotest.test_case "eviction+distance" `Quick
            test_arena_eviction_and_distance;
        ]
        @ qcheck [ prop_arena_matches_reference ] );
      ( "fleet",
        [
          Alcotest.test_case "jobs invariance" `Quick
            test_fleet_jobs_invariance;
          Alcotest.test_case "pinned counters" `Quick
            test_fleet_pinned_counters;
          Alcotest.test_case "hit-rate curve" `Quick
            test_fleet_curve_monotone;
          Alcotest.test_case "diurnal churn" `Quick test_fleet_diurnal_churn;
        ] );
    ]
