(* Tests for the experiment registry and the cheap experiments at
   quick scale (the heavy simulations are covered by the bench run and
   by the simulator tests in test_core). *)

module Config = D2_experiments.Config
module Registry = D2_experiments.Registry
module Data = D2_experiments.Data
module Report = D2_util.Report

let expected_ids =
  [
    "table1"; "fig3"; "table2"; "fig7"; "fig8"; "fig9"; "fig10"; "fig11";
    "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "fig17"; "table3"; "table4";
    "ablation_pointers"; "ablation_routing"; "ablation_cache_ttl"; "ablation_replicas";
    "ablation_hybrid"; "ablation_erasure"; "ablation_stp"; "ablation_hotspot";
    "bakeoff_routing"; "repair_bandwidth";
  ]

let test_registry_complete () =
  let ids = List.map (fun (e : Registry.entry) -> e.Registry.id) Registry.all in
  Alcotest.(check (list string)) "every table and figure present" expected_ids ids;
  Alcotest.(check bool) "ids unique" true
    (List.length ids = List.length (List.sort_uniq compare ids))

let test_registry_find () =
  (match Registry.find "fig9" with
  | Some e -> Alcotest.(check string) "found" "fig9" e.Registry.id
  | None -> Alcotest.fail "fig9 missing");
  Alcotest.(check bool) "unknown" true (Registry.find "fig99" = None)

let test_config_env () =
  Alcotest.(check string) "quick" "quick" (Config.scale_name Config.Quick);
  Alcotest.(check string) "paper" "paper" (Config.scale_name Config.Paper)

let test_data_memoized () =
  let a = Data.harvard Config.Quick in
  let b = Data.harvard Config.Quick in
  Alcotest.(check bool) "same instance" true (a == b)

let test_failure_trials_differ () =
  let a = Data.failures Config.Quick ~trial:0 in
  let b = Data.failures Config.Quick ~trial:1 in
  Alcotest.(check bool) "different failure schedules" true
    (a.D2_trace.Failure.events <> b.D2_trace.Failure.events)

let has_rows report =
  (* Rendered output has a title line plus at least one data row. *)
  let s = Report.render report in
  List.length (String.split_on_char '\n' s) > 5

let run_cheap id =
  match Registry.find id with
  | None -> Alcotest.fail ("missing " ^ id)
  | Some e ->
      let reports = e.Registry.run Config.Quick in
      Alcotest.(check bool) (id ^ " produced tables") true (reports <> []);
      List.iter
        (fun r -> Alcotest.(check bool) (id ^ " has rows") true (has_rows r))
        reports

let test_cheap_experiments () =
  List.iter run_cheap
    [ "table1"; "fig3"; "ablation_routing"; "ablation_hotspot"; "repair_bandwidth" ]

(* Parallel runner: outcomes come back in input order with output and
   captured logs byte-identical to a sequential run regardless of the
   job count (only wall times may differ).  Cells are memoized, so the
   jobs=1 run warms every cache and the later runs must attribute the
   same (possibly empty) logs to the same entries. *)
let test_parallel_matches_sequential () =
  let entries =
    List.filter_map Registry.find [ "table1"; "fig3"; "ablation_routing"; "ablation_hotspot" ]
  in
  Alcotest.(check int) "entries resolved" 4 (List.length entries);
  let seq = Registry.run_entries ~jobs:1 Config.Quick entries in
  List.iter
    (fun jobs ->
      let par = Registry.run_entries ~jobs Config.Quick entries in
      Alcotest.(check int) "same count" (List.length seq) (List.length par);
      List.iter2
        (fun (a : Registry.outcome) (b : Registry.outcome) ->
          let id = a.Registry.o_entry.Registry.id in
          Alcotest.(check string) "registry order" id b.Registry.o_entry.Registry.id;
          Alcotest.(check string)
            (Printf.sprintf "%s output identical at jobs=%d" id jobs)
            a.Registry.output b.Registry.output;
          Alcotest.(check string)
            (Printf.sprintf "%s logs identical at jobs=%d" id jobs)
            a.Registry.logs b.Registry.logs;
          Alcotest.(check bool) "wall time recorded" true (b.Registry.wall >= 0.0))
        seq par)
    [ 3; 4 ]

(* The balance pipeline end to end at quick scale (a few seconds):
   fig16/17 and tables 3/4 share memoized Balance_sim runs. *)
let test_balance_pipeline () =
  List.iter run_cheap [ "fig16"; "fig17"; "table3"; "table4"; "ablation_pointers" ]

let () =
  Alcotest.run "d2_experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "config" `Quick test_config_env;
        ] );
      ( "data",
        [
          Alcotest.test_case "memoized" `Quick test_data_memoized;
          Alcotest.test_case "trials differ" `Quick test_failure_trials_differ;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "cheap experiments run" `Quick test_cheap_experiments;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "balance pipeline" `Slow test_balance_pipeline;
        ] );
    ]
