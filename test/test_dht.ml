(* Tests for the ring: membership, successor assignment, replica
   sets, ID changes, and the rank-finger routing model. *)

module Ring = D2_dht.Ring
module Key = D2_keyspace.Key
module Rng = D2_util.Rng

let k_of_byte b = Key.of_string (String.make 1 (Char.chr b) ^ String.make 63 '\000')

let ring_of_bytes bytes =
  let r = Ring.create () in
  List.iteri (fun node b -> Ring.add r ~id:(k_of_byte b) ~node) bytes;
  r

(* ids 10,20,30 for nodes 0,1,2 *)
let small () = ring_of_bytes [ 10; 20; 30 ]

let test_add_remove () =
  let r = small () in
  Alcotest.(check int) "size" 3 (Ring.size r);
  Alcotest.(check bool) "mem" true (Ring.mem r ~node:1);
  Ring.remove r ~node:1;
  Alcotest.(check int) "size after remove" 2 (Ring.size r);
  Alcotest.(check bool) "not mem" false (Ring.mem r ~node:1);
  Ring.check_invariants r

let test_add_duplicates_rejected () =
  let r = small () in
  Alcotest.check_raises "node taken" (Invalid_argument "Ring.add: node already a member")
    (fun () -> Ring.add r ~id:(k_of_byte 99) ~node:0);
  Alcotest.check_raises "id taken" (Invalid_argument "Ring.add: id already taken")
    (fun () -> Ring.add r ~id:(k_of_byte 10) ~node:9);
  Alcotest.check_raises "remove missing" (Invalid_argument "Ring.id_of: node is not a member")
    (fun () -> Ring.remove r ~node:9)

let test_successor_rule () =
  let r = small () in
  (* key <= id goes to that id's node; key above the top wraps to the
     smallest id. *)
  Alcotest.(check int) "exact id" 0 (Ring.successor r (k_of_byte 10));
  Alcotest.(check int) "between" 1 (Ring.successor r (k_of_byte 11));
  Alcotest.(check int) "wrap" 0 (Ring.successor r (k_of_byte 200));
  Alcotest.(check int) "below all" 0 (Ring.successor r (k_of_byte 5))

let test_successors_replicas () =
  let r = small () in
  Alcotest.(check (list int)) "r=2 from key 15" [ 1; 2 ] (Ring.successors r (k_of_byte 15) 2);
  Alcotest.(check (list int)) "wraps" [ 2; 0 ] (Ring.successors r (k_of_byte 25) 2);
  Alcotest.(check (list int)) "capped at ring size" [ 1; 2; 0 ]
    (Ring.successors r (k_of_byte 15) 7)

let test_predecessor_range () =
  let r = small () in
  Alcotest.(check bool) "pred of node1 is id of node0" true
    (Key.equal (Ring.predecessor_id r ~node:1) (k_of_byte 10));
  Alcotest.(check bool) "pred of first wraps to last" true
    (Key.equal (Ring.predecessor_id r ~node:0) (k_of_byte 30))

let test_single_node_owns_all () =
  let r = ring_of_bytes [ 42 ] in
  Alcotest.(check int) "any key" 0 (Ring.successor r (k_of_byte 1));
  Alcotest.(check bool) "own pred is self" true
    (Key.equal (Ring.predecessor_id r ~node:0) (k_of_byte 42))

let test_change_id () =
  let r = small () in
  Ring.change_id r ~node:2 ~id:(k_of_byte 15);
  Alcotest.(check int) "now owns 12..15" 2 (Ring.successor r (k_of_byte 12));
  Alcotest.(check int) "old range fell to wrap owner" 0 (Ring.successor r (k_of_byte 29));
  Ring.check_invariants r

let test_rank_node_roundtrip () =
  let r = small () in
  for rank = 0 to 2 do
    let node = Ring.node_at r rank in
    Alcotest.(check int) "roundtrip" rank (Ring.rank_of r ~node)
  done;
  Alcotest.(check int) "mod wrap" (Ring.node_at r 0) (Ring.node_at r 3);
  Alcotest.(check int) "nth successor" 2 (Ring.nth_successor_of_node r ~node:0 2);
  Alcotest.(check int) "nth wraps" 0 (Ring.nth_successor_of_node r ~node:1 2)

let test_id_taken () =
  let r = small () in
  Alcotest.(check bool) "taken" true (Ring.id_taken r (k_of_byte 20));
  Alcotest.(check bool) "free" false (Ring.id_taken r (k_of_byte 21))

let test_route_hops () =
  let r = small () in
  Alcotest.(check int) "own key 0 hops" 0 (Ring.route_hops r ~src:0 ~key:(k_of_byte 9));
  Alcotest.(check int) "next node 1 hop" 1 (Ring.route_hops r ~src:0 ~key:(k_of_byte 15));
  (* distance 2 = one finger *)
  Alcotest.(check int) "distance 2" 1 (Ring.route_hops r ~src:0 ~key:(k_of_byte 25))

let test_route_hops_log_bound () =
  let rng = Rng.create 21 in
  let r = Ring.create () in
  let n = 1024 in
  for i = 0 to n - 1 do
    Ring.add r ~id:(Key.random rng) ~node:i
  done;
  let max_hops = ref 0 and sum = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    let h = Ring.route_hops r ~src:(Rng.int rng n) ~key:(Key.random rng) in
    if h > !max_hops then max_hops := h;
    sum := !sum + h
  done;
  Alcotest.(check bool) "max <= log2 n" true (!max_hops <= 10);
  let mean = float_of_int !sum /. float_of_int trials in
  Alcotest.(check bool) "mean near log2(n)/2" true (mean > 3.0 && mean < 7.0)

let prop_successor_matches_bruteforce =
  QCheck.Test.make ~name:"successor matches brute force" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (int_range 0 255)) (int_bound 255))
    (fun (bytes, kb) ->
      let bytes = List.sort_uniq compare bytes in
      let r = ring_of_bytes bytes in
      let key = k_of_byte kb in
      let expect =
        (* Smallest id >= key, else smallest id. *)
        match List.filter (fun b -> b >= kb) bytes with
        | b :: _ -> b
        | [] -> List.hd bytes
      in
      let node = Ring.successor r key in
      Key.equal (Ring.id_of r ~node) (k_of_byte expect))

let prop_successors_distinct =
  QCheck.Test.make ~name:"replica sets have no duplicates" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 20) (int_range 0 255)) small_nat)
    (fun (bytes, r_count) ->
      let bytes = List.sort_uniq compare bytes in
      let r = ring_of_bytes bytes in
      let succ = Ring.successors r (k_of_byte 100) (1 + r_count) in
      List.length succ = List.length (List.sort_uniq compare succ))

(* {1 Prefix fast path}

   [Ring.lower_bound] resolves most comparisons with precomputed
   unboxed int prefixes (taken at the ids' common-prefix offset) and
   only falls back to byte comparison on prefix ties.  These tests pin
   the accelerated path to the pure [Key.compare] semantics, including
   the adversarial case the prefix cannot discriminate: keys sharing a
   long common prefix and differing only in trailing bytes. *)

(* A key with [shared] leading 'p' bytes, then 3 bytes from [tail]. *)
let shared_prefix_key ~shared tail =
  let b = Bytes.make 64 '\000' in
  Bytes.fill b 0 shared 'p';
  Bytes.set b shared (Char.chr ((tail lsr 16) land 0xff));
  Bytes.set b (shared + 1) (Char.chr ((tail lsr 8) land 0xff));
  Bytes.set b (shared + 2) (Char.chr (tail land 0xff));
  Key.of_string (Bytes.to_string b)

let brute_successor ids key =
  match List.filter (fun id -> Key.compare id key >= 0) ids with
  | id :: _ -> id
  | [] -> List.hd ids

let check_ring_agrees_with_bruteforce ids probes =
  let r = Ring.create () in
  List.iteri (fun node id -> Ring.add r ~id ~node) ids;
  Ring.check_invariants r;
  List.for_all
    (fun key ->
      let node = Ring.successor r key in
      Key.equal (Ring.id_of r ~node) (brute_successor ids key))
    probes

let prop_prefix_successor_shared_prefixes =
  (* Ids and probes share [shared] leading bytes (0..61), so the
     ring's dynamic prefix offset lands right at the divergence point
     and ties are common. *)
  QCheck.Test.make ~name:"prefix successor = brute force (shared prefixes)" ~count:300
    QCheck.(
      triple (int_bound 61)
        (list_of_size Gen.(int_range 1 24) (int_bound 0xffffff))
        (list_of_size Gen.(int_range 1 30) (int_bound 0xffffff)))
    (fun (shared, tails, probes) ->
      let ids = List.sort_uniq Key.compare (List.map (shared_prefix_key ~shared) tails) in
      check_ring_agrees_with_bruteforce ids (List.map (shared_prefix_key ~shared) probes))

let prop_prefix_successor_random_keys =
  (* Fully random 64-byte keys: prefixes diverge early, the int
     compare settles nearly everything. *)
  QCheck.Test.make ~name:"prefix successor = brute force (random keys)" ~count:200
    QCheck.(pair (int_bound 10_000) small_nat)
    (fun (seed, extra) ->
      let rng = Rng.create (seed + 1) in
      let n = 1 + (extra mod 24) in
      let ids = List.sort_uniq Key.compare (List.init n (fun _ -> Key.random rng)) in
      let probes = List.init 20 (fun _ -> Key.random rng) in
      (* Also probe the ids themselves and their neighbours. *)
      let probes = probes @ ids @ List.map Key.succ ids @ List.map Key.pred ids in
      check_ring_agrees_with_bruteforce ids probes)

let test_prefix_tail_discrimination () =
  (* 60 shared bytes, ids differing only in the last byte — entirely
     below the (clamped) prefix granularity, so every probe exercises
     the byte-compare fallback. *)
  let mk last =
    let b = Bytes.make 64 'p' in
    Bytes.set b 63 (Char.chr last);
    Key.of_string (Bytes.to_string b)
  in
  let ids = List.map mk [ 10; 20; 30; 31 ] in
  let r = Ring.create () in
  List.iteri (fun node id -> Ring.add r ~id ~node) ids;
  Ring.check_invariants r;
  List.iter
    (fun (probe, expect) ->
      let node = Ring.successor r (mk probe) in
      Alcotest.(check bool)
        (Printf.sprintf "probe last-byte %d -> id last-byte %d" probe expect)
        true
        (Key.equal (Ring.id_of r ~node) (mk expect)))
    [ (0, 10); (10, 10); (11, 20); (20, 20); (21, 30); (30, 30); (31, 31); (32, 10); (255, 10) ]

let test_prefix_offset_tracks_membership () =
  (* The common-prefix offset must shrink and grow with membership:
     start with ids sharing 40 bytes, add a divergent id (offset drops
     to 0), remove it again (offset recovers).  check_invariants
     verifies off and every cached prefix after each step. *)
  let ids40 = List.map (fun t -> shared_prefix_key ~shared:40 t) [ 1; 2; 3; 1000; 70000 ] in
  let divergent = k_of_byte 200 in
  let r = Ring.create () in
  List.iteri (fun node id -> Ring.add r ~id ~node) ids40;
  Ring.check_invariants r;
  Ring.add r ~id:divergent ~node:99;
  Ring.check_invariants r;
  let all = List.sort Key.compare (divergent :: ids40) in
  List.iter
    (fun key ->
      let node = Ring.successor r key in
      Alcotest.(check bool) "agrees while mixed" true
        (Key.equal (Ring.id_of r ~node) (brute_successor all key)))
    (List.map Key.succ all @ List.map Key.pred all);
  Ring.remove r ~node:99;
  Ring.check_invariants r;
  (* change_id across the prefix boundary. *)
  Ring.change_id r ~node:0 ~id:(k_of_byte 5);
  Ring.check_invariants r

let test_random_membership_stress () =
  (* Random adds/removes/changes keep the invariants. *)
  let rng = Rng.create 33 in
  let r = Ring.create () in
  let present = Hashtbl.create 64 in
  for step = 0 to 2000 do
    let node = Rng.int rng 50 in
    (match (Hashtbl.mem present node, Rng.int rng 3) with
    | false, _ ->
        let id = Key.random rng in
        if not (Ring.id_taken r id) then begin
          Ring.add r ~id ~node;
          Hashtbl.replace present node ()
        end
    | true, 0 ->
        Ring.remove r ~node;
        Hashtbl.remove present node
    | true, _ ->
        let id = Key.random rng in
        if not (Ring.id_taken r id) then Ring.change_id r ~node ~id);
    if step mod 100 = 0 then Ring.check_invariants r
  done;
  Ring.check_invariants r

(* {1 Router: explicit link tables} *)

module Router = D2_dht.Router

let mk_random_ring n seed =
  let rng = Rng.create seed in
  let r = Ring.create () in
  for i = 0 to n - 1 do
    Ring.add r ~id:(Key.random rng) ~node:i
  done;
  (r, rng)

let test_router_reaches_owner () =
  let ring, rng = mk_random_ring 64 41 in
  List.iter
    (fun policy ->
      let router = Router.create ~ring ~policy ~rng:(Rng.copy rng) in
      for _ = 1 to 200 do
        let src = Rng.int rng 64 in
        let key = Key.random rng in
        let path = Router.route router ~src ~key in
        let final = match List.rev path with [] -> src | last :: _ -> last in
        Alcotest.(check int)
          (Router.policy_name policy ^ " terminates at owner")
          (Ring.successor ring key) final
      done)
    [
      Router.Fingers;
      Router.Harmonic 6;
      Router.Chord;
      Router.Kademlia 3;
      Router.Successor_only;
    ]

let test_router_own_key_zero_hops () =
  let ring, rng = mk_random_ring 16 42 in
  let router = Router.create ~ring ~policy:Router.Fingers ~rng in
  let node = 3 in
  let key = Ring.id_of ring ~node in
  Alcotest.(check int) "own key" 0 (Router.hops router ~src:node ~key)

let test_router_fingers_match_analytic_model () =
  let ring, rng = mk_random_ring 128 43 in
  let router = Router.create ~ring ~policy:Router.Fingers ~rng:(Rng.copy rng) in
  for _ = 1 to 300 do
    let src = Rng.int rng 128 in
    let key = Key.random rng in
    Alcotest.(check int) "table routing = popcount model"
      (Ring.route_hops ring ~src ~key)
      (Router.hops router ~src ~key)
  done

let test_router_policy_ordering () =
  let ring, rng = mk_random_ring 256 44 in
  let fingers = Router.create ~ring ~policy:Router.Fingers ~rng:(Rng.copy rng) in
  let harmonic = Router.create ~ring ~policy:(Router.Harmonic 8) ~rng:(Rng.copy rng) in
  let walk = Router.create ~ring ~policy:Router.Successor_only ~rng:(Rng.copy rng) in
  let mean router =
    let total = ref 0 in
    for _ = 1 to 300 do
      total := !total + Router.hops router ~src:(Rng.int rng 256) ~key:(Key.random rng)
    done;
    float_of_int !total /. 300.0
  in
  let mf = mean fingers and mh = mean harmonic and mw = mean walk in
  Alcotest.(check bool) (Printf.sprintf "fingers %.1f < walk %.1f" mf mw) true (mf < mw /. 4.0);
  Alcotest.(check bool) (Printf.sprintf "harmonic %.1f < walk %.1f" mh mw) true (mh < mw /. 4.0)

let test_router_rebuild_after_change () =
  let ring, rng = mk_random_ring 32 45 in
  let router = Router.create ~ring ~policy:Router.Fingers ~rng:(Rng.copy rng) in
  Ring.remove ring ~node:5;
  Alcotest.check_raises "stale table detected"
    (Invalid_argument "Router.route: ring changed since build; call rebuild") (fun () ->
      ignore (Router.route router ~src:0 ~key:(Key.random rng)));
  Router.rebuild router;
  let key = Key.random rng in
  let path = Router.route router ~src:0 ~key in
  let final = match List.rev path with [] -> 0 | last :: _ -> last in
  Alcotest.(check int) "works after rebuild" (Ring.successor ring key) final

let test_router_kernel_matches_reference () =
  (* The compiled jump-table kernel against the retained list-based
     oracle: identical hop sequences (and counts) for every policy,
     across rings perturbed by add/remove/change-id churn. *)
  let rng = Rng.create 47 in
  List.iter
    (fun policy ->
      let ring, _ = mk_random_ring 48 48 in
      let next_node = ref 48 in
      for round = 0 to 5 do
        (if round > 0 then
           match Rng.int rng 3 with
           | 0 ->
               Ring.add ring ~id:(Key.random rng) ~node:!next_node;
               incr next_node
           | 1 ->
               if Ring.size ring > 8 then
                 Ring.remove ring ~node:(Ring.node_at ring (Rng.int rng (Ring.size ring)))
           | _ ->
               let node = Ring.node_at ring (Rng.int rng (Ring.size ring)) in
               let id = Key.random rng in
               if not (Ring.id_taken ring id) then Ring.change_id ring ~node ~id);
        let router = Router.create ~ring ~policy ~rng:(Rng.copy rng) in
        for _ = 1 to 100 do
          let src = Ring.node_at ring (Rng.int rng (Ring.size ring)) in
          let key = Key.random rng in
          let expected = Router.route_reference router ~src ~key in
          Alcotest.(check (list int))
            (Router.policy_name policy ^ " hop sequence")
            expected
            (Router.route router ~src ~key);
          Alcotest.(check int)
            (Router.policy_name policy ^ " hop count")
            (List.length expected)
            (Router.hops router ~src ~key)
        done
      done)
    [
      Router.Fingers;
      Router.Harmonic 6;
      Router.Chord;
      Router.Kademlia 2;
      Router.Successor_only;
    ]

let test_router_links_successor_first () =
  let ring, rng = mk_random_ring 16 46 in
  let router = Router.create ~ring ~policy:Router.Fingers ~rng in
  let links = Router.links_of router ~node:(Ring.node_at ring 0) in
  Alcotest.(check bool) "has links" true (List.length links >= 4);
  Alcotest.(check int) "successor first" (Ring.node_at ring 1) (List.hd links)

let test_kademlia_1_is_fingers () =
  (* b = 1 keeps one contact per rank-distance bucket [2^j, 2^(j+1)) —
     exactly the finger offsets — so the two policies must compile to
     identical tables. *)
  let ring, rng = mk_random_ring 100 49 in
  let fingers = Router.create ~ring ~policy:Router.Fingers ~rng:(Rng.copy rng) in
  let kad1 = Router.create ~ring ~policy:(Router.Kademlia 1) ~rng:(Rng.copy rng) in
  List.iter
    (fun node ->
      Alcotest.(check (list int))
        "kademlia-1 links = fingers links"
        (Router.links_of fingers ~node)
        (Router.links_of kad1 ~node))
    (Ring.members ring)

(* The one hop/message convention (router.mli header): hops = the
   forwarding steps to the owner, final reply excluded, 0 on own key;
   route length = hops; analytic Ring.route_hops agrees for Fingers;
   a lookup costs hops + 1 messages, so route_alpha at α=1 reports
   messages = hops. *)
let test_hop_message_convention () =
  let ring, rng = mk_random_ring 96 50 in
  let router = Router.create ~ring ~policy:Router.Fingers ~rng:(Rng.copy rng) in
  let own = Ring.id_of ring ~node:7 in
  Alcotest.(check int) "own key: 0 hops (no reply counted)" 0
    (Router.hops router ~src:7 ~key:own);
  Alcotest.(check int) "own key: analytic agrees" 0
    (Ring.route_hops ring ~src:7 ~key:own);
  Alcotest.(check (pair int int)) "own key: alpha kernel (0 hops, 0 msgs)"
    (0, 0)
    (Router.route_alpha router ~src:7 ~key:own ~alpha:2);
  for _ = 1 to 200 do
    let src = Rng.int rng 96 in
    let key = Key.random rng in
    let h = Router.hops router ~src ~key in
    Alcotest.(check int) "hops = route length"
      (List.length (Router.route router ~src ~key))
      h;
    Alcotest.(check int) "hops = analytic model (reply excluded in both)"
      (Ring.route_hops ring ~src ~key)
      h;
    Alcotest.(check (pair int int)) "alpha=1: same path, messages = hops"
      (h, h)
      (Router.route_alpha router ~src ~key ~alpha:1)
  done

let test_route_alpha_never_slower () =
  (* α frontiers include the greedy single path, so effective hops can
     never exceed the single-path count — for any policy, any α. *)
  let rng = Rng.create 51 in
  List.iter
    (fun policy ->
      let ring, _ = mk_random_ring 80 52 in
      let router = Router.create ~ring ~policy ~rng:(Rng.copy rng) in
      for _ = 1 to 150 do
        let src = Ring.node_at ring (Rng.int rng (Ring.size ring)) in
        let key = Key.random rng in
        let alpha = 1 + Rng.int rng 4 in
        let h1 = Router.hops router ~src ~key in
        let ha, msgs = Router.route_alpha router ~src ~key ~alpha in
        Alcotest.(check bool)
          (Printf.sprintf "%s alpha=%d hops %d <= single-path %d"
             (Router.policy_name policy) alpha ha h1)
          true (ha <= h1);
        Alcotest.(check bool) "messages >= effective hops" true
          (h1 = 0 || msgs >= ha);
        Alcotest.(check bool)
          (Printf.sprintf "messages %d <= alpha x single-path %d" msgs
             (alpha * h1))
          true
          (msgs <= alpha * h1)
      done)
    [
      Router.Fingers;
      Router.Harmonic 6;
      Router.Chord;
      Router.Kademlia 2;
      Router.Successor_only;
    ]

let test_router_epoch_stamping () =
  let ring, rng = mk_random_ring 40 53 in
  let router = Router.create ~ring ~policy:(Router.Harmonic 8) ~rng:(Rng.copy rng) in
  Alcotest.(check int) "stamped at build" (Ring.epoch ring)
    (Router.built_epoch router);
  (* Same epoch: rebuild is a no-op. *)
  Router.rebuild router;
  Alcotest.(check int) "no-op rebuild keeps stamp" (Ring.epoch ring)
    (Router.built_epoch router);
  (* Harmonic keeps surviving members' sampled offsets across an
     incremental rebuild (n unchanged): node 3's rank offsets must not
     be re-rolled when only node 9's ID moves. *)
  let offsets node =
    let rank = Ring.rank_of ring ~node in
    let n = Ring.size ring in
    List.map
      (fun l -> ((Ring.rank_of ring ~node:l - rank) mod n + n) mod n)
      (Router.links_of router ~node)
  in
  let before = offsets 3 in
  let id = Key.random rng in
  if not (Ring.id_taken ring id) then Ring.change_id ring ~node:9 ~id;
  Router.rebuild router;
  Alcotest.(check int) "restamped after change" (Ring.epoch ring)
    (Router.built_epoch router);
  Alcotest.(check (list int)) "survivor's harmonic offsets retained" before
    (offsets 3);
  (* And the rebuilt table still routes correctly. *)
  let key = Key.random rng in
  let path = Router.route router ~src:3 ~key in
  let final = match List.rev path with [] -> 3 | last :: _ -> last in
  Alcotest.(check int) "routes after incremental rebuild"
    (Ring.successor ring key) final

let test_router_epoch_restamp_rank_independent () =
  (* Fingers tables depend only on n, so a change_id (same size) must
     not rebuild anything — just restamp — and routing stays exact. *)
  let ring, rng = mk_random_ring 64 54 in
  let router = Router.create ~ring ~policy:Router.Fingers ~rng:(Rng.copy rng) in
  for _ = 1 to 5 do
    let node = Ring.node_at ring (Rng.int rng 64) in
    let id = Key.random rng in
    if not (Ring.id_taken ring id) then Ring.change_id ring ~node ~id;
    Router.rebuild router;
    Alcotest.(check int) "restamped" (Ring.epoch ring)
      (Router.built_epoch router);
    let src = Ring.node_at ring (Rng.int rng 64) in
    let key = Key.random rng in
    Alcotest.(check int) "analytic model still matches"
      (Ring.route_hops ring ~src ~key)
      (Router.hops router ~src ~key)
  done

let test_policy_of_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Router.policy_name p ^ " roundtrips")
        true
        (Router.policy_of_string (Router.policy_name p) = Some p))
    [
      Router.Fingers;
      Router.Harmonic 8;
      Router.Chord;
      Router.Kademlia 2;
      Router.Successor_only;
    ];
  Alcotest.(check bool) "bare harmonic" true
    (Router.policy_of_string "harmonic" = Some (Router.Harmonic 8));
  Alcotest.(check bool) "bare kademlia" true
    (Router.policy_of_string "kademlia" = Some (Router.Kademlia 2));
  Alcotest.(check bool) "garbage rejected" true
    (Router.policy_of_string "mercury-9000" = None);
  Alcotest.(check bool) "kademlia-0 rejected" true
    (Router.policy_of_string "kademlia-0" = None)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "d2_dht"
    [
      ( "ring",
        Alcotest.test_case "add/remove" `Quick test_add_remove
        :: Alcotest.test_case "duplicates rejected" `Quick test_add_duplicates_rejected
        :: Alcotest.test_case "successor rule" `Quick test_successor_rule
        :: Alcotest.test_case "replica sets" `Quick test_successors_replicas
        :: Alcotest.test_case "predecessor range" `Quick test_predecessor_range
        :: Alcotest.test_case "single node" `Quick test_single_node_owns_all
        :: Alcotest.test_case "change id" `Quick test_change_id
        :: Alcotest.test_case "rank roundtrip" `Quick test_rank_node_roundtrip
        :: Alcotest.test_case "id taken" `Quick test_id_taken
        :: Alcotest.test_case "membership stress" `Quick test_random_membership_stress
        :: Alcotest.test_case "prefix tail discrimination" `Quick test_prefix_tail_discrimination
        :: Alcotest.test_case "prefix offset tracks membership" `Quick
             test_prefix_offset_tracks_membership
        :: qcheck
             [
               prop_successor_matches_bruteforce;
               prop_successors_distinct;
               prop_prefix_successor_shared_prefixes;
               prop_prefix_successor_random_keys;
             ] );
      ( "routing",
        [
          Alcotest.test_case "hop basics" `Quick test_route_hops;
          Alcotest.test_case "log bound" `Quick test_route_hops_log_bound;
        ] );
      ( "router",
        [
          Alcotest.test_case "reaches owner" `Quick test_router_reaches_owner;
          Alcotest.test_case "own key 0 hops" `Quick test_router_own_key_zero_hops;
          Alcotest.test_case "fingers = analytic model" `Quick
            test_router_fingers_match_analytic_model;
          Alcotest.test_case "policy ordering" `Quick test_router_policy_ordering;
          Alcotest.test_case "rebuild after change" `Quick test_router_rebuild_after_change;
          Alcotest.test_case "kernel = reference oracle" `Quick
            test_router_kernel_matches_reference;
          Alcotest.test_case "links shape" `Quick test_router_links_successor_first;
          Alcotest.test_case "kademlia-1 = fingers" `Quick test_kademlia_1_is_fingers;
          Alcotest.test_case "hop/message convention" `Quick
            test_hop_message_convention;
          Alcotest.test_case "route_alpha never slower" `Quick
            test_route_alpha_never_slower;
          Alcotest.test_case "epoch stamping" `Quick test_router_epoch_stamping;
          Alcotest.test_case "epoch restamp (rank-independent)" `Quick
            test_router_epoch_restamp_rank_independent;
          Alcotest.test_case "policy_of_string" `Quick test_policy_of_string_roundtrip;
        ] );
    ]
