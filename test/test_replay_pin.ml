(* Replay pins: the availability / ablation / Fig-9-style outputs of a
   small deterministic workload, captured from the pre-arena Cluster
   implementation.  The block-arena + timer-wheel + epoch-cache rewrite
   must reproduce these numbers exactly — every event keeps its (time,
   scheduling-order) position, so the simulations are bit-identical.

   Four redundancy setups (the erasure ablation's grid): replication
   r=3, erasure 2-of-4, 3-of-6 and 2-of-6. *)

module Op = D2_trace.Op
module Failure = D2_trace.Failure
module Keymap = D2_core.Keymap
module Availability = D2_core.Availability
module Perf = D2_core.Perf
module Cluster = D2_store.Cluster
module Rng = D2_util.Rng

(* A miniature Harvard-like trace: initial files plus two simulated
   days of per-user bursts.  Deterministic (seeded Rng), validated. *)
let pin_trace =
  lazy
    (let rng = Rng.create 4242 in
     let users = 6 in
     let duration = 2.0 *. 86400.0 in
     let nfiles = 20 in
     let initial_files =
       Array.init nfiles (fun f ->
           {
             Op.file_id = f;
             file_path = Printf.sprintf "/vol/d%d/f%d" (f mod 4) f;
             file_bytes = (4 + Rng.int rng 9) * Op.block_size;
           })
     in
     let next_file = ref nfiles in
     let ops = ref [] in
     let nops = ref 0 in
     let t = ref 0.0 in
     while !t < duration -. 600.0 do
       (* One burst: a user touches one file's blocks back to back. *)
       let user = Rng.int rng users in
       let f = Rng.int rng nfiles in
       let fi = initial_files.(f) in
       let nblocks = Op.blocks_of_bytes fi.Op.file_bytes in
       let len = 1 + Rng.int rng nblocks in
       let roll = Rng.int rng 10 in
       for b = 0 to len - 1 do
         let time = !t +. (float_of_int b *. 0.05) in
         let op =
           if roll < 6 then
             { Op.time; user; path = fi.Op.file_path; file = fi.Op.file_id;
               block = b; kind = Op.Read; bytes = Op.block_size }
           else if roll < 9 then
             { Op.time; user; path = fi.Op.file_path; file = fi.Op.file_id;
               block = b; kind = Op.Write; bytes = Op.block_size }
           else begin
             (* A fresh file grows block by block. *)
             let id = !next_file in
             { Op.time; user; path = Printf.sprintf "/vol/new/f%d" id;
               file = id; kind = Op.Create; block = b; bytes = Op.block_size }
           end
         in
         ops := op :: !ops;
         incr nops
       done;
       if roll >= 9 then incr next_file;
       t := !t +. 120.0 +. Rng.float rng 180.0
     done;
     let ops = Array.of_list (List.rev !ops) in
     let trace =
       { Op.name = "pin"; duration; users; ops; initial_files }
     in
     Op.validate trace;
     trace)

let pin_failures =
  lazy
    (let trace = Lazy.force pin_trace in
     Failure.generate ~rng:(Rng.create 777) ~n:24 ~duration:trace.Op.duration ())

let fmt v = Printf.sprintf "%.9g" v

let avail_setup ~replicas ~redundancy ~mode =
  let trace = Lazy.force pin_trace in
  let failures = Lazy.force pin_failures in
  let params =
    { (Availability.default_params ~mode) with
      Availability.replicas; redundancy }
  in
  let replay = Availability.replay ~trace ~failures ~mode ~seed:11 ~params () in
  let st = Availability.task_unavailability ~trace ~replay ~inter:5.0 in
  Printf.sprintf "tasks=%d failed=%d unavail=%s nodes/task=%s"
    st.Availability.tasks st.Availability.failed
    (fmt st.Availability.unavailability)
    (fmt st.Availability.mean_nodes_per_task)

(* Expected strings captured from the pre-arena implementation. *)
let expected_avail =
  [
    ("replication r=3 d2", 3, Cluster.Replication, Keymap.D2,
     "tasks=820 failed=1 unavail=0.0012195122 nodes/task=1.22317073");
    ("replication r=3 traditional", 3, Cluster.Replication, Keymap.Traditional,
     "tasks=820 failed=2 unavail=0.00243902439 nodes/task=3.97804878");
    ("erasure 2-of-4 d2", 4, Cluster.Erasure 2, Keymap.D2,
     "tasks=820 failed=3 unavail=0.00365853659 nodes/task=1.21219512");
    ("erasure 3-of-6 d2", 6, Cluster.Erasure 3, Keymap.D2,
     "tasks=820 failed=0 unavail=0 nodes/task=1.22317073");
    ("erasure 2-of-6 d2", 6, Cluster.Erasure 2, Keymap.D2,
     "tasks=820 failed=0 unavail=0 nodes/task=1.22317073");
  ]

let test_availability_pins () =
  List.iter
    (fun (label, replicas, redundancy, mode, expected) ->
      let got = avail_setup ~replicas ~redundancy ~mode in
      Alcotest.(check string) label expected got)
    expected_avail

(* Fig-9-style pin: lookup messages per node, the cache miss rate and
   the raw in-window hit/miss counts of a small performance pass, for
   all three key orderings.  The hit/miss counts pin the lookup
   cache's per-probe decisions exactly, so a cache rewrite cannot
   silently shift the §5 curves while leaving the means plausible. *)
let perf_pin_config ?(cache_ttl = 4500.0) () =
  {
    (Perf.default_config ~nodes:40 ~bandwidth:1_500_000.0) with
    Perf.base_nodes = 40;
    cache_ttl;
    seed = 11;
  }

let perf_setup ~mode =
  let trace = Lazy.force pin_trace in
  let pass = Perf.run_pass ~trace ~mode ~config:(perf_pin_config ()) in
  Printf.sprintf "lookups/node=%s miss=%s hits=%d misses=%d"
    (fmt pass.Perf.lookup_msgs_per_node)
    (fmt pass.Perf.miss_rate) pass.Perf.window_hits pass.Perf.window_misses

let expected_perf =
  [
    ("fig9 traditional", Keymap.Traditional,
     "lookups/node=4.35 miss=0.615277778 hits=32 misses=50");
    ("fig9 traditional-file", Keymap.Traditional_file,
     "lookups/node=0.775 miss=0.170833333 hits=71 misses=11");
    ("fig9 d2", Keymap.D2, "lookups/node=1.475 miss=0.284722222 hits=65 misses=17");
  ]

let test_perf_pins () =
  List.iter
    (fun (label, mode, expected) ->
      let got = perf_setup ~mode in
      Alcotest.(check string) label expected got)
    expected_perf

(* Ablation-cache-ttl-style pin: the TTL sweep's miss rates (plus raw
   hit/miss counts) for the traditional and D2 orderings. *)
let cache_ttl_setup ~ttl =
  let trace = Lazy.force pin_trace in
  let get mode =
    let pass =
      Perf.run_pass ~trace ~mode ~config:(perf_pin_config ~cache_ttl:ttl ())
    in
    Printf.sprintf "%s h=%d m=%d" (fmt pass.Perf.miss_rate) pass.Perf.window_hits
      pass.Perf.window_misses
  in
  Printf.sprintf "trad[%s] d2[%s]" (get Keymap.Traditional) (get Keymap.D2)

let expected_cache_ttl =
  [
    ("cache_ttl 600", 600.0, "trad[0.852777778 h=15 m=67] d2[0.298611111 h=63 m=19]");
    ("cache_ttl 4500", 4500.0, "trad[0.615277778 h=32 m=50] d2[0.284722222 h=65 m=17]");
    ("cache_ttl 24000", 24000.0, "trad[0.252777778 h=57 m=25] d2[0.343055556 h=63 m=19]");
  ]

let test_cache_ttl_pins () =
  List.iter
    (fun (label, ttl, expected) ->
      let got = cache_ttl_setup ~ttl in
      Alcotest.(check string) label expected got)
    expected_cache_ttl

let () =
  Alcotest.run "d2_replay_pin"
    [
      ( "pins",
        [
          Alcotest.test_case "availability four setups" `Quick test_availability_pins;
          Alcotest.test_case "fig9-style perf pass" `Quick test_perf_pins;
          Alcotest.test_case "cache-ttl sweep" `Quick test_cache_ttl_pins;
        ] );
    ]
