(* Tests for the workload generators, failure traces, and task
   segmentation. *)

module Op = D2_trace.Op
module Harvard = D2_trace.Harvard
module Hp = D2_trace.Hp
module Web = D2_trace.Web
module Webcache = D2_trace.Webcache
module Failure = D2_trace.Failure
module Task = D2_trace.Task
module Namespace = D2_trace.Namespace
module Rng = D2_util.Rng

let small_harvard =
  lazy
    (Harvard.generate ~rng:(Rng.create 42)
       ~params:
         {
           Harvard.default_params with
           Harvard.users = 10;
           target_bytes = 8 * 1024 * 1024;
           days = 2.0;
         }
       ())

let small_web =
  lazy
    (Web.generate ~rng:(Rng.create 43)
       ~params:
         { Web.default_params with Web.clients = 10; days = 2.0; domains = 50 }
       ())

(* {1 Op} *)

let test_blocks_of_bytes () =
  Alcotest.(check int) "0 -> 1" 1 (Op.blocks_of_bytes 0);
  Alcotest.(check int) "1 -> 1" 1 (Op.blocks_of_bytes 1);
  Alcotest.(check int) "8192 -> 1" 1 (Op.blocks_of_bytes 8192);
  Alcotest.(check int) "8193 -> 2" 2 (Op.blocks_of_bytes 8193);
  Alcotest.(check int) "3 blocks" 3 (Op.blocks_of_bytes (2 * 8192 + 1))

let test_validate_catches () =
  let base_op =
    { Op.time = 0.0; user = 0; path = "/f"; file = 0; block = 0; kind = Op.Read; bytes = 10 }
  in
  let mk ops = { Op.name = "t"; duration = 10.0; users = 1; ops; initial_files = [||] } in
  Op.validate (mk [| base_op |]);
  let bad_order = mk [| { base_op with Op.time = 5.0 }; { base_op with Op.time = 1.0 } |] in
  Alcotest.check_raises "out of order" (Invalid_argument "trace t: op 1 out of order")
    (fun () -> Op.validate bad_order);
  let bad_user = mk [| { base_op with Op.user = 3 } |] in
  Alcotest.check_raises "bad user" (Invalid_argument "trace t: op 0 bad user 3")
    (fun () -> Op.validate bad_user);
  let bad_bytes = mk [| { base_op with Op.bytes = 9000 } |] in
  Alcotest.check_raises "bad bytes" (Invalid_argument "trace t: op 0 bad byte count 9000")
    (fun () -> Op.validate bad_bytes)

(* {1 Namespace} *)

let test_namespace_structure () =
  let ns =
    Namespace.generate ~rng:(Rng.create 1) ~users:5 ~target_bytes:(4 * 1024 * 1024) ()
  in
  Alcotest.(check bool) "bytes near target" true
    (let b = Namespace.total_bytes ns in
     b > 2 * 1024 * 1024);
  Alcotest.(check bool) "has files" true (Namespace.file_count ns > 20);
  (* Every user owns at least one directory, and shared dirs exist. *)
  for u = 0 to 4 do
    let dirs = Namespace.dirs_for_user ns ~user:u in
    Alcotest.(check bool) "user sees dirs" true (Array.length dirs > 0)
  done;
  let shared =
    Array.exists (fun o -> o = -1) ns.Namespace.dir_owner
  in
  Alcotest.(check bool) "shared dirs" true shared;
  (* The deep-path chain exceeds 12 levels. *)
  let deep = Array.exists (fun d -> d > 12) ns.Namespace.dir_depth in
  Alcotest.(check bool) "deep chain present" true deep

let test_namespace_file_dir_consistency () =
  let ns =
    Namespace.generate ~rng:(Rng.create 2) ~users:3 ~target_bytes:(2 * 1024 * 1024) ()
  in
  Array.iteri
    (fun i (info : Op.file_info) ->
      let dir = ns.Namespace.file_dir.(i) in
      let dir_path = ns.Namespace.dirs.(dir) in
      let plen = String.length dir_path in
      Alcotest.(check string) "file path under its dir" dir_path
        (String.sub info.Op.file_path 0 plen))
    ns.Namespace.files

(* {1 Harvard} *)

let test_harvard_valid () = Op.validate (Lazy.force small_harvard)

let test_harvard_reads_dominate () =
  let t = Lazy.force small_harvard in
  let reads = Op.count_kind t Op.Read in
  let writes = Op.count_kind t Op.Write + Op.count_kind t Op.Create in
  Alcotest.(check bool) "reads >> writes" true (reads > 5 * writes)

let test_harvard_replay_consistent () =
  (* Every read touches a block that exists at that moment: present
     initially or created earlier, and not deleted more than the
     removal delay earlier. *)
  let t = Lazy.force small_harvard in
  let live : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let file_blocks : (int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (fi : Op.file_info) ->
      let blocks = ref [] in
      for b = 0 to Op.blocks_of_bytes fi.Op.file_bytes - 1 do
        Hashtbl.replace live (fi.Op.file_id, b) ();
        blocks := b :: !blocks
      done;
      Hashtbl.replace file_blocks fi.Op.file_id blocks)
    t.Op.initial_files;
  let bad = ref 0 in
  Array.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Create | Op.Write ->
          Hashtbl.replace live (o.Op.file, o.Op.block) ();
          let blocks =
            match Hashtbl.find_opt file_blocks o.Op.file with
            | Some b -> b
            | None ->
                let b = ref [] in
                Hashtbl.replace file_blocks o.Op.file b;
                b
          in
          blocks := o.Op.block :: !blocks
      | Op.Delete ->
          (match Hashtbl.find_opt file_blocks o.Op.file with
          | Some blocks -> List.iter (fun b -> Hashtbl.remove live (o.Op.file, b)) !blocks
          | None -> ())
      | Op.Read -> if not (Hashtbl.mem live (o.Op.file, o.Op.block)) then incr bad)
    t.Op.ops;
  let reads = Op.count_kind t Op.Read in
  Alcotest.(check bool)
    (Printf.sprintf "stale reads %d of %d below 0.1%%" !bad reads)
    true
    (float_of_int !bad < 0.001 *. float_of_int reads)

let test_harvard_daily_churn () =
  let t = Lazy.force small_harvard in
  let total = Op.total_initial_bytes t in
  let written = Array.make 3 0 in
  Array.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Write | Op.Create ->
          let d = int_of_float (o.Op.time /. 86400.0) in
          if d < 3 then written.(d) <- written.(d) + o.Op.bytes
      | Op.Read | Op.Delete -> ())
    t.Op.ops;
  (* Weekday churn within a loose band around the 15% parameter. *)
  let ratio = float_of_int written.(0) /. float_of_int total in
  Alcotest.(check bool) (Printf.sprintf "day-0 churn %.2f in [0.03, 0.5]" ratio) true
    (ratio > 0.03 && ratio < 0.5)

let test_harvard_determinism () =
  let p =
    { Harvard.default_params with Harvard.users = 5; target_bytes = 2 * 1024 * 1024; days = 1.0 }
  in
  let a = Harvard.generate ~rng:(Rng.create 9) ~params:p () in
  let b = Harvard.generate ~rng:(Rng.create 9) ~params:p () in
  Alcotest.(check int) "same op count" (Array.length a.Op.ops) (Array.length b.Op.ops);
  Alcotest.(check bool) "same ops" true (a.Op.ops = b.Op.ops)

(* {1 HP} *)

let test_hp_valid_and_ordered_names () =
  let t =
    Hp.generate ~rng:(Rng.create 3)
      ~params:{ Hp.default_params with Hp.apps = 5; days = 1.0; disk_blocks = 4096 }
      ()
  in
  Op.validate t;
  (* Block names sort like block numbers. *)
  Alcotest.(check bool) "padded names sort numerically" true
    (compare (Hp.block_name 999) (Hp.block_name 1000) < 0);
  (* All ops reference blocks within the disk. *)
  Array.iter
    (fun (o : Op.op) ->
      let b = int_of_string o.Op.path in
      if b < 0 || b >= 4096 then Alcotest.fail "block out of disk")
    t.Op.ops

let test_hp_sequential_runs () =
  let t =
    Hp.generate ~rng:(Rng.create 3)
      ~params:{ Hp.default_params with Hp.apps = 2; days = 1.0; disk_blocks = 4096 }
      ()
  in
  (* Consecutive ops by the same app are often adjacent disk blocks. *)
  let adjacent = ref 0 and total = ref 0 in
  let last : (int, int) Hashtbl.t = Hashtbl.create 4 in
  Array.iter
    (fun (o : Op.op) ->
      let b = int_of_string o.Op.path in
      (match Hashtbl.find_opt last o.Op.user with
      | Some prev when b = prev + 1 -> incr adjacent
      | _ -> ());
      incr total;
      Hashtbl.replace last o.Op.user b)
    t.Op.ops;
  Alcotest.(check bool) "mostly sequential" true
    (float_of_int !adjacent > 0.5 *. float_of_int !total)

(* {1 Web + Webcache} *)

let test_web_valid_reversed_names () =
  let t = Lazy.force small_web in
  Op.validate t;
  Alcotest.(check string) "reversal" "com.yahoo.www/index.html"
    (Web.reversed_name ~domain:"www.yahoo.com" ~page:"index.html");
  Array.iter
    (fun (fi : Op.file_info) ->
      if String.length fi.Op.file_path < 4 || String.sub fi.Op.file_path 0 4 <> "com." then
        Alcotest.fail ("unreversed name: " ^ fi.Op.file_path))
    t.Op.initial_files

let test_webcache_insert_before_read () =
  let t = Webcache.of_web_trace (Lazy.force small_web) in
  Op.validate t;
  let inserted = Hashtbl.create 256 in
  Array.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Create -> Hashtbl.replace inserted (o.Op.file, o.Op.block) ()
      | Op.Read ->
          if not (Hashtbl.mem inserted (o.Op.file, o.Op.block)) then
            Alcotest.fail "cache read before insert"
      | Op.Delete -> ()
      | Op.Write -> Alcotest.fail "cache has no overwrites")
    t.Op.ops

let test_webcache_evictions_after_ttl () =
  let ttl = 3600.0 in
  let t = Webcache.of_web_trace ~evict_ttl:ttl (Lazy.force small_web) in
  (* Every delete happens at least ttl after the file's last insert/read. *)
  let last_touch : (int, float) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Create | Op.Read -> Hashtbl.replace last_touch o.Op.file o.Op.time
      | Op.Delete -> (
          match Hashtbl.find_opt last_touch o.Op.file with
          | None -> Alcotest.fail "delete of never-seen object"
          | Some t0 ->
              if o.Op.time -. t0 < ttl -. 1e-6 then Alcotest.fail "early eviction")
      | Op.Write -> ())
    t.Op.ops;
  Alcotest.(check bool) "has evictions" true (Op.count_kind t Op.Delete > 0)

let test_webcache_churn_high () =
  let t = Webcache.of_web_trace (Lazy.force small_web) in
  let creates = Op.count_kind t Op.Create in
  let reads = Op.count_kind t Op.Read in
  (* A cooperative cache has a large one-hit-wonder tail: inserts are
     a substantial share of all accesses. *)
  Alcotest.(check bool) "high insert share" true
    (float_of_int creates > 0.1 *. float_of_int (creates + reads))

(* {1 Failure traces} *)

let test_failure_valid () =
  let f = Failure.generate ~rng:(Rng.create 4) ~n:40 ~duration:86400.0 () in
  Failure.validate f;
  Alcotest.(check bool) "has events" true (Array.length f.Failure.events > 0);
  let up0 = Failure.up_fraction_at f 0.0 in
  Alcotest.(check bool) "starts mostly up" true (up0 > 0.9)

let test_failure_correlated_dip () =
  let params =
    { Failure.default_params with Failure.correlated_events = 1; correlated_fraction = 0.5 }
  in
  let f = Failure.generate ~rng:(Rng.create 5) ~n:40 ~duration:(2.0 *. 86400.0) ~params () in
  (* Scan for the dip. *)
  let worst = ref 1.0 in
  let t = ref 0.0 in
  while !t < 2.0 *. 86400.0 do
    let u = Failure.up_fraction_at f !t in
    if u < !worst then worst := u;
    t := !t +. 1800.0
  done;
  Alcotest.(check bool) (Printf.sprintf "mass dip observed (%.2f)" !worst) true
    (!worst < 0.7)

(* {1 Task segmentation} *)

let mk_ops specs =
  Array.of_list
    (List.map
       (fun (time, user) ->
         { Op.time; user; path = "/f"; file = 0; block = 0; kind = Op.Read; bytes = 1 })
       specs)

let mk_trace specs users =
  { Op.name = "t"; duration = 1000.0; users; ops = mk_ops specs; initial_files = [||] }

let test_task_gap_split () =
  let t = mk_trace [ (0.0, 0); (1.0, 0); (2.0, 0); (10.0, 0); (11.0, 0) ] 1 in
  let tasks = Task.segment t ~inter:5.0 () in
  Alcotest.(check int) "two tasks" 2 (Array.length tasks);
  Alcotest.(check int) "first has 3" 3 (Array.length tasks.(0).Task.ops);
  Alcotest.(check int) "second has 2" 2 (Array.length tasks.(1).Task.ops)

let test_task_users_independent () =
  let t = mk_trace [ (0.0, 0); (0.5, 1); (1.0, 0); (1.5, 1) ] 2 in
  let tasks = Task.segment t ~inter:5.0 () in
  Alcotest.(check int) "one task per user" 2 (Array.length tasks)

let test_task_max_duration () =
  let specs = List.init 20 (fun i -> (float_of_int i *. 30.0, 0)) in
  let t = mk_trace specs 1 in
  let tasks = Task.segment t ~inter:60.0 ~max_duration:120.0 () in
  Alcotest.(check bool) "split by cap" true (Array.length tasks > 1);
  Array.iter
    (fun (tk : Task.t) ->
      Alcotest.(check bool) "within cap+1op" true (tk.Task.stop -. tk.Task.start <= 150.0))
    tasks

let test_task_labels_partition () =
  let t = Lazy.force small_harvard in
  let tasks, labels = Task.segment_labeled t ~inter:5.0 () in
  Alcotest.(check int) "labels cover all ops" (Array.length t.Op.ops) (Array.length labels);
  let counts = Array.make (Array.length tasks) 0 in
  Array.iter
    (fun l ->
      if l < 0 || l >= Array.length tasks then Alcotest.fail "label out of range";
      counts.(l) <- counts.(l) + 1)
    labels;
  Array.iteri
    (fun i (tk : Task.t) ->
      Alcotest.(check int) "task size matches labels" (Array.length tk.Task.ops) counts.(i))
    tasks

let test_task_distinct_counts () =
  let ops =
    [|
      { Op.time = 0.0; user = 0; path = "/a"; file = 1; block = 0; kind = Op.Read; bytes = 1 };
      { Op.time = 0.1; user = 0; path = "/a"; file = 1; block = 0; kind = Op.Read; bytes = 1 };
      { Op.time = 0.2; user = 0; path = "/a"; file = 1; block = 1; kind = Op.Read; bytes = 1 };
      { Op.time = 0.3; user = 0; path = "/b"; file = 2; block = 0; kind = Op.Read; bytes = 1 };
    |]
  in
  let t = { Op.name = "t"; duration = 10.0; users = 1; ops; initial_files = [||] } in
  let tasks = Task.segment t ~inter:5.0 () in
  Alcotest.(check int) "blocks dedup" 3 (Task.distinct_blocks tasks.(0));
  Alcotest.(check int) "files dedup" 2 (Task.distinct_files tasks.(0))

let test_access_groups_think () =
  let t = mk_trace [ (0.0, 0); (0.5, 0); (2.0, 0) ] 1 in
  let groups = Task.access_groups ~think:1.0 t in
  Alcotest.(check int) "think splits" 2 (Array.length groups)

(* {1 Plan compilation} *)

module Plan = D2_trace.Plan
module Keymap = D2_trace.Keymap
module Key = D2_keyspace.Key

let test_plan_columns_match_trace () =
  let t = Lazy.force small_harvard in
  let plan = Plan.of_trace t in
  Alcotest.(check bool) "of_trace cached" true (Plan.of_trace t == plan);
  Alcotest.(check int) "length" (Array.length t.Op.ops) (Plan.length plan);
  Array.iteri
    (fun i (o : Op.op) ->
      if o.Op.time <> plan.Plan.times.(i)
         || o.Op.user <> plan.Plan.users.(i)
         || o.Op.file <> plan.Plan.files.(i)
         || o.Op.block <> plan.Plan.blocks.(i)
         || o.Op.bytes <> plan.Plan.bytes.(i)
         || o.Op.kind <> Plan.kind_of_code plan.Plan.kinds.(i)
         || o.Op.path <> Plan.path plan i
      then Alcotest.failf "column mismatch at op %d" i)
    t.Op.ops;
  List.iter
    (fun k -> Alcotest.(check bool) "kind roundtrip" true (Plan.kind_of_code (Plan.kind_code k) = k))
    [ Op.Read; Op.Write; Op.Create; Op.Delete ]

let test_plan_init_grid () =
  let t = Lazy.force small_harvard in
  let plan = Plan.of_trace t in
  let nf = Array.length t.Op.initial_files in
  Alcotest.(check int) "offsets length" (nf + 1) (Array.length plan.Plan.init_offsets);
  (* Per-block sizes follow the legacy load_initial formula: full
     blocks except a last-block remainder (a full block when the size
     divides evenly). *)
  let expected_size bytes b =
    let nblocks = Op.blocks_of_bytes bytes in
    if b = nblocks - 1 then
      let rem = bytes - (b * Op.block_size) in
      if rem = 0 then Op.block_size else rem
    else Op.block_size
  in
  Array.iteri
    (fun fi (f : Op.file_info) ->
      let off = plan.Plan.init_offsets.(fi) in
      let nblocks = Op.blocks_of_bytes f.Op.file_bytes in
      Alcotest.(check int) "block count" nblocks (plan.Plan.init_offsets.(fi + 1) - off);
      for b = 0 to nblocks - 1 do
        if plan.Plan.init_sizes.(off + b) <> expected_size f.Op.file_bytes b then
          Alcotest.failf "init size mismatch file %d block %d" fi b
      done)
    t.Op.initial_files

(* Precomputed keys must be exactly what a fresh keymap walk produces —
   initial files first, then ops in trace order, reads keyed only under
   Reads_and_writes (slot assignment is first-touch, so the policy
   changes D2 keys, not just which ops get one). *)
let test_plan_keys_match_keymap () =
  let t = Lazy.force small_harvard in
  let plan = Plan.of_trace t in
  List.iter
    (fun (mode, policy) ->
      let keys = Plan.replay_keys plan ~mode ~policy in
      let km = Keymap.create mode ~volume:"vol" in
      Array.iteri
        (fun fi (f : Op.file_info) ->
          let off = plan.Plan.init_offsets.(fi) in
          for b = 0 to Op.blocks_of_bytes f.Op.file_bytes - 1 do
            let expect = Keymap.key_of km ~path:f.Op.file_path ~block:b in
            if not (Key.equal keys.Plan.init_keys.(off + b) expect) then
              Alcotest.failf "init key mismatch file %d block %d" fi b
          done)
        t.Op.initial_files;
      Array.iteri
        (fun i (o : Op.op) ->
          let keyed =
            match o.Op.kind with
            | Op.Write | Op.Create -> true
            | Op.Read -> policy = Plan.Reads_and_writes
            | Op.Delete -> false
          in
          let expect =
            if keyed then Keymap.key_of km ~path:o.Op.path ~block:o.Op.block
            else Key.zero
          in
          if not (Key.equal keys.Plan.op_keys.(i) expect) then
            Alcotest.failf "op key mismatch at %d" i)
        t.Op.ops)
    [
      (Keymap.D2, Plan.Reads_and_writes);
      (Keymap.D2, Plan.Writes_only);
      (Keymap.Traditional, Plan.Reads_and_writes);
      (Keymap.Traditional_file, Plan.Writes_only);
    ]

(* {1 Serialization} *)

let test_serialize_roundtrip () =
  let t = Lazy.force small_harvard in
  let path = Filename.temp_file "d2trace" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      D2_trace.Serialize.save_file t path;
      let t' = D2_trace.Serialize.load_file path in
      Alcotest.(check string) "name" t.Op.name t'.Op.name;
      Alcotest.(check int) "users" t.Op.users t'.Op.users;
      Alcotest.(check int) "files" (Array.length t.Op.initial_files)
        (Array.length t'.Op.initial_files);
      Alcotest.(check bool) "files equal" true (t.Op.initial_files = t'.Op.initial_files);
      Alcotest.(check int) "ops" (Array.length t.Op.ops) (Array.length t'.Op.ops);
      Alcotest.(check bool) "ops equal" true (t.Op.ops = t'.Op.ops))

let prop_serialize_roundtrip_random =
  (* Random miniature traces round-trip exactly (paths without
     separators, times non-decreasing). *)
  QCheck.Test.make ~name:"random trace roundtrip" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 30) (triple (int_bound 3) (int_bound 4) (int_bound 2)))
    (fun specs ->
      let time = ref 0.0 in
      let ops =
        Array.of_list
          (List.map
             (fun (user, block, kindi) ->
               time := !time +. 0.37;
               {
                 Op.time = !time;
                 user;
                 path = Printf.sprintf "/p%d" user;
                 file = user;
                 block;
                 kind = (match kindi with 0 -> Op.Read | 1 -> Op.Write | _ -> Op.Create);
                 bytes = 1 + block;
               })
             specs)
      in
      let t =
        { Op.name = "prop"; duration = !time +. 1.0; users = 4; ops; initial_files = [||] }
      in
      let path = Filename.temp_file "d2prop" ".tsv" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          D2_trace.Serialize.save_file t path;
          let t' = D2_trace.Serialize.load_file path in
          t'.Op.ops = t.Op.ops && t'.Op.duration = t.Op.duration))

let test_serialize_rejects_garbage () =
  let path = Filename.temp_file "d2trace" ".tsv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a trace\n";
      close_out oc;
      Alcotest.(check bool) "raises" true
        (try
           ignore (D2_trace.Serialize.load_file path);
           false
         with Invalid_argument _ -> true))

let () =
  Alcotest.run "d2_trace"
    [
      ( "op",
        [
          Alcotest.test_case "blocks_of_bytes" `Quick test_blocks_of_bytes;
          Alcotest.test_case "validate" `Quick test_validate_catches;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "structure" `Quick test_namespace_structure;
          Alcotest.test_case "file/dir consistency" `Quick test_namespace_file_dir_consistency;
        ] );
      ( "harvard",
        [
          Alcotest.test_case "valid" `Quick test_harvard_valid;
          Alcotest.test_case "reads dominate" `Quick test_harvard_reads_dominate;
          Alcotest.test_case "replay consistent" `Quick test_harvard_replay_consistent;
          Alcotest.test_case "daily churn" `Quick test_harvard_daily_churn;
          Alcotest.test_case "deterministic" `Quick test_harvard_determinism;
        ] );
      ( "hp",
        [
          Alcotest.test_case "valid + names" `Quick test_hp_valid_and_ordered_names;
          Alcotest.test_case "sequential runs" `Quick test_hp_sequential_runs;
        ] );
      ( "web",
        [
          Alcotest.test_case "valid + reversed" `Quick test_web_valid_reversed_names;
          Alcotest.test_case "webcache insert-before-read" `Quick test_webcache_insert_before_read;
          Alcotest.test_case "webcache eviction ttl" `Quick test_webcache_evictions_after_ttl;
          Alcotest.test_case "webcache churn" `Quick test_webcache_churn_high;
        ] );
      ( "failure",
        [
          Alcotest.test_case "valid" `Quick test_failure_valid;
          Alcotest.test_case "correlated dip" `Quick test_failure_correlated_dip;
        ] );
      ( "plan",
        [
          Alcotest.test_case "columns match trace" `Quick test_plan_columns_match_trace;
          Alcotest.test_case "init grid" `Quick test_plan_init_grid;
          Alcotest.test_case "keys match keymap" `Quick test_plan_keys_match_keymap;
        ] );
      ( "serialize",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_serialize_rejects_garbage;
          QCheck_alcotest.to_alcotest prop_serialize_roundtrip_random;
        ] );
      ( "task",
        [
          Alcotest.test_case "gap split" `Quick test_task_gap_split;
          Alcotest.test_case "users independent" `Quick test_task_users_independent;
          Alcotest.test_case "max duration" `Quick test_task_max_duration;
          Alcotest.test_case "labels partition" `Quick test_task_labels_partition;
          Alcotest.test_case "distinct counts" `Quick test_task_distinct_counts;
          Alcotest.test_case "access groups" `Quick test_access_groups_think;
        ] );
    ]
