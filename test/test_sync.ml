(* The anti-entropy subsystem end to end: algebraic laws of the
   version vector (qcheck), order-independence of replica conflict
   resolution, and deterministic mem-transport cluster runs — kill
   churn with repair restoring every replica group to r, a repair-off
   control that stays under-replicated, partition-heal converging
   replicas byte-identically, and quorum reads performing inline
   read-repair. *)

module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Key = D2_keyspace.Key
module Rng = D2_util.Rng
module Ring = D2_dht.Ring
module Mem = D2_net.Transport_mem
module Node = D2_net.Node.Make (D2_net.Transport_mem)
module Client = D2_net.Client.Make (D2_net.Transport_mem)
module Bootstrap = D2_net.Bootstrap
module Blockstore = D2_net.Blockstore
module Vv = D2_sync.Version_vector
module Vmap = D2_sync.Vmap

(* {1 Version-vector laws} *)

(* Build a vector by replaying bump events, the only constructor the
   runtime uses; the pair list is the printable counterexample. *)
let vv_of_pairs pairs =
  List.fold_left
    (fun v (node, extra) ->
      let rec go v k = if k = 0 then v else go (Vv.bump v ~node) (k - 1) in
      go v (extra + 1))
    Vv.empty pairs

let arb_pairs = QCheck.(small_list (pair (int_bound 20) (int_bound 3)))
let vv_equal a b = Vv.compare_vv a b = Vv.Equal

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge commutative" ~count:500
    QCheck.(pair arb_pairs arb_pairs)
    (fun (a, b) ->
      let a = vv_of_pairs a and b = vv_of_pairs b in
      vv_equal (Vv.merge a b) (Vv.merge b a))

let prop_merge_associative =
  QCheck.Test.make ~name:"merge associative" ~count:500
    QCheck.(triple arb_pairs arb_pairs arb_pairs)
    (fun (a, b, c) ->
      let a = vv_of_pairs a and b = vv_of_pairs b and c = vv_of_pairs c in
      vv_equal (Vv.merge a (Vv.merge b c)) (Vv.merge (Vv.merge a b) c))

let prop_merge_idempotent =
  QCheck.Test.make ~name:"merge idempotent" ~count:500 arb_pairs (fun a ->
      let a = vv_of_pairs a in
      vv_equal (Vv.merge a a) a)

let prop_merge_dominates =
  QCheck.Test.make ~name:"merge dominates both operands" ~count:500
    QCheck.(pair arb_pairs arb_pairs)
    (fun (a, b) ->
      let a = vv_of_pairs a and b = vv_of_pairs b in
      let m = Vv.merge a b in
      Vv.dominates m a && Vv.dominates m b)

let prop_dominates_antisymmetric =
  QCheck.Test.make ~name:"dominates antisymmetric" ~count:500
    QCheck.(pair arb_pairs arb_pairs)
    (fun (a, b) ->
      let a = vv_of_pairs a and b = vv_of_pairs b in
      (not (Vv.dominates a b && Vv.dominates b a)) || vv_equal a b)

let prop_winner_symmetric =
  QCheck.Test.make ~name:"winner picks the same side from both ends" ~count:500
    QCheck.(pair arb_pairs arb_pairs)
    (fun (a, b) ->
      let a = vv_of_pairs a and b = vv_of_pairs b in
      let sel x y = match Vv.winner x y with `Left -> x | `Right -> y in
      vv_equal (sel a b) (sel b a))

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip" ~count:500 arb_pairs (fun a ->
      let a = vv_of_pairs a in
      let size = Vv.encoded_size a in
      let buf = Bytes.create size in
      let written = Vv.encode_into a buf ~off:0 in
      written = size
      &&
      match Vv.decode buf ~off:0 ~stop:size with
      | Some (a', consumed) -> consumed = size && vv_equal a a'
      | None -> false)

let prop_codec_truncation =
  QCheck.Test.make ~name:"codec rejects truncation" ~count:200 arb_pairs
    (fun a ->
      let a = vv_of_pairs a in
      QCheck.assume (not (Vv.is_empty a));
      let size = Vv.encoded_size a in
      let buf = Bytes.create size in
      ignore (Vv.encode_into a buf ~off:0);
      Vv.decode buf ~off:0 ~stop:(size - 1) = None)

(* Replica conflict resolution is order-independent: two replicas that
   apply the same pair of stamped copies in opposite orders end with
   the same vector and the same bytes — the convergence argument the
   whole subsystem rests on. *)
let prop_apply_order_independent =
  QCheck.Test.make ~name:"Vmap.apply order-independent" ~count:300
    QCheck.(pair arb_pairs arb_pairs)
    (fun (a, b) ->
      let va = vv_of_pairs a and vb = vv_of_pairs b in
      (* Equal vectors with different bytes never arise: every stamp
         bumps the coordinator's counter. *)
      QCheck.assume (not (vv_equal va vb));
      let key = Key.random (Rng.create 0x5eed) in
      let run copies =
        let m = Vmap.create () in
        let bytes = ref None in
        List.iter
          (fun (vv, data) ->
            match Vmap.apply m ~key ~vv ~deleted:false with
            | `Store _ -> bytes := Some data
            | `Ignore _ -> ())
          copies;
        let final =
          match Vmap.find m ~key with
          | Some e -> e.Vmap.vv
          | None -> Vv.empty
        in
        (!bytes, final)
      in
      let b1, v1 = run [ (va, "A"); (vb, "B") ] in
      let b2, v2 = run [ (vb, "B"); (va, "A") ] in
      b1 = b2 && vv_equal v1 v2)

(* {1 Cluster harness} *)

type cluster = {
  engine : Engine.t;
  net : Mem.net;
  peers : (int * Key.t) list;
  nodes : Node.t array; (* index = transport slot *)
}

let boot ~n ~extra ~config () =
  let engine = Engine.create () in
  let topology = Topology.create ~rng:(Rng.create 0x7090) ~n:(n + extra) () in
  let net = Mem.create_net ~engine ~topology ~loss:0.0 ~seed:0x11 () in
  let peers = Bootstrap.peers n in
  let nodes =
    List.map
      (fun (i, id) ->
        Node.create (Mem.endpoint net ~node:i) ~config ~id ~peers ())
      peers
    |> Array.of_list
  in
  Array.iter Node.serve nodes;
  Engine.run engine ~until:3.0;
  { engine; net; peers; nodes }

let run_for c seconds = Engine.run c.engine ~until:(Engine.now c.engine +. seconds)

let ring_of_live c ~dead =
  let r = Ring.create () in
  List.iter
    (fun (n, id) -> if not (List.mem n dead) then Ring.add r ~id ~node:n)
    c.peers;
  r

let entry_vv c n key =
  match Vmap.find (Node.vmap c.nodes.(n)) ~key with
  | Some e -> e.Vmap.vv
  | None -> Vv.empty

(* Every key's replica group — the r successors on the live ring —
   holds byte-identical winning data under converged vectors. *)
let check_groups ~label c ~ring ~r expect =
  Hashtbl.iter
    (fun key data ->
      let group = Ring.successors ring key r in
      Alcotest.(check int) (label ^ ": group size") r (List.length group);
      let vvs = List.map (fun n -> entry_vv c n key) group in
      List.iter
        (fun n ->
          match Blockstore.get (Node.store c.nodes.(n)) ~key with
          | Some d -> Alcotest.(check string) (label ^ ": replica bytes") data d
          | None -> Alcotest.fail (label ^ ": replica group below r"))
        group;
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (label ^ ": vectors converged")
            true
            (Vv.compare_vv v (List.hd vvs) = Vv.Equal))
        vvs)
    expect

(* Copies of [key] anywhere among live nodes (wherever repair or old
   fan-out may have left them). *)
let total_copies c ~dead key =
  let n = ref 0 in
  Array.iteri
    (fun i node ->
      if (not (List.mem i dead)) && Blockstore.mem_block (Node.store node) ~key
      then incr n)
    c.nodes;
  !n

(* {1 Kill churn: repair restores r, control stays degraded} *)

let churn_n = 25
let data_v v key = Printf.sprintf "v%d:%s" v (Key.to_string key)

(* One scripted churn run: load the cluster, sever one node during a
   wave of overwrites (stale replicas), heal, then kill that node and
   a second one mid-load.  Returns the cluster, the surviving nodes'
   expected contents, and the dead set. *)
let churn_run ~repair_interval =
  let config =
    {
      D2_net.Node.replicas = 3;
      probe_interval = 0.5;
      rpc_timeout = 2.0;
      repair_interval;
    }
  in
  let c = boot ~n:churn_n ~extra:1 ~config () in
  let client =
    Client.create
      (Mem.endpoint c.net ~node:churn_n)
      ~replicas:3 ~rpc_timeout:5.0 ~retries:8
      ~seeds:(List.init churn_n Fun.id)
      ()
  in
  let keys = Array.init 120 (fun _ -> Key.zero) in
  let () =
    let rng = Rng.create 0xbeef in
    Array.iteri (fun i _ -> keys.(i) <- Key.random rng) keys
  in
  let expect = Hashtbl.create 64 in
  let full = ring_of_live c ~dead:[] in
  (* Phase 1: 90 blocks, everything up — all three replicas ack. *)
  for i = 0 to 89 do
    let key = keys.(i) in
    match Client.put client ~key ~data:(data_v 1 key) with
    | `Ok copies ->
        Alcotest.(check int) "churn: initial put copies" 3 copies;
        Hashtbl.replace expect key (data_v 1 key)
    | `Failed -> Alcotest.fail "churn: initial put failed, cluster up"
  done;
  (* Phase 2: sever X (the owner of keys.(0)) and overwrite 30 blocks
     X replicates but does not own — every copy X misses leaves it
     stale, exactly what anti-entropy must detect. *)
  let x = Ring.successor full keys.(0) in
  Mem.set_partition c.net (Some (fun a b -> a = x <> (b = x)));
  let overwritten = ref 0 in
  Array.iter
    (fun key ->
      if !overwritten < 30 && Ring.successor full key <> x then begin
        incr overwritten;
        match Client.put client ~key ~data:(data_v 2 key) with
        | `Ok _ -> Hashtbl.replace expect key (data_v 2 key)
        | `Failed -> Alcotest.fail "churn: overwrite failed behind partition"
      end)
    keys;
  Alcotest.(check int) "churn: overwrite wave size" 30 !overwritten;
  Mem.set_partition c.net None;
  run_for c 5.0;
  (* Phase 3: kill X outright; after detection converges, load 30 new
     blocks (their groups may include Y), then kill Y mid-life. *)
  Mem.kill c.net x;
  run_for c 20.0;
  for i = 90 to 119 do
    let key = keys.(i) in
    match Client.put client ~key ~data:(data_v 1 key) with
    | `Ok _ -> Hashtbl.replace expect key (data_v 1 key)
    | `Failed -> Alcotest.fail "churn: post-kill put failed"
  done;
  let y =
    let rec pick i =
      let cand = Ring.successor full keys.(i) in
      if cand <> x then cand else pick (i + 1)
    in
    pick 1
  in
  Mem.kill c.net y;
  (* Give failure detection and the rotating repair schedule time to
     converge: N = 90 virtual seconds covers dozens of per-node repair
     rounds at the 1 s interval. *)
  run_for c 90.0;
  (c, expect, [ x; y ])

let test_churn_repair_restores_r () =
  let c, expect, dead = churn_run ~repair_interval:1.0 in
  let ring = ring_of_live c ~dead in
  check_groups ~label:"repair on" c ~ring ~r:3 expect;
  let frames, bytes, moved =
    Array.to_list c.nodes
    |> List.map Node.repair_stats
    |> List.fold_left
         (fun (fr, by, mv) s ->
           ( fr + s.D2_net.Node.repair_frames,
             by + s.D2_net.Node.repair_bytes,
             mv + s.D2_net.Node.pushed + s.D2_net.Node.pulled ))
         (0, 0, 0)
  in
  Alcotest.(check bool) "repair exchanged frames" true (frames > 0);
  Alcotest.(check bool) "repair accounted bytes" true (bytes > frames);
  Alcotest.(check bool) "repair moved copies" true (moved > 0);
  Array.iter Node.stop c.nodes

let test_churn_control_stays_under_replicated () =
  let c, expect, dead = churn_run ~repair_interval:0.0 in
  let degraded =
    Hashtbl.fold
      (fun key _ acc -> if total_copies c ~dead key < 3 then acc + 1 else acc)
      expect 0
  in
  Alcotest.(check bool)
    (Printf.sprintf "repair off leaves groups below r (%d degraded)" degraded)
    true (degraded > 0);
  Array.iter Node.stop c.nodes

(* {1 Partition heal: replicas converge byte-identically} *)

(* Static membership (probes effectively off) isolates the data plane:
   the partition drops replica copies without evicting anyone from the
   ring, and after healing only anti-entropy can reconcile. *)
let static_config ~repair_interval =
  {
    D2_net.Node.replicas = 3;
    probe_interval = 1000.0;
    rpc_timeout = 1.0;
    repair_interval;
  }

let test_partition_heal_converges () =
  let c = boot ~n:9 ~extra:1 ~config:(static_config ~repair_interval:1.0) () in
  let client =
    Client.create (Mem.endpoint c.net ~node:9) ~replicas:3 ~rpc_timeout:5.0
      ~seeds:(List.init 9 Fun.id) ()
  in
  let rng = Rng.create 0x1ea1 in
  let keys = Array.init 40 (fun _ -> Key.random rng) in
  let ring = ring_of_live c ~dead:[] in
  Array.iter
    (fun key ->
      match Client.put client ~key ~data:(data_v 1 key) with
      | `Ok copies -> Alcotest.(check int) "heal: seed put copies" 3 copies
      | `Failed -> Alcotest.fail "heal: seed put failed")
    keys;
  (* Sever P and overwrite every block P replicates but does not own:
     the owner acks exactly 2 copies (itself + the reachable replica)
     and P is left holding v1 under a dominated vector. *)
  let p = Ring.successor ring keys.(0) in
  let stale =
    Array.to_list keys
    |> List.filter (fun key ->
           let group = Ring.successors ring key 3 in
           List.mem p group && Ring.successor ring key <> p)
  in
  Alcotest.(check bool) "heal: stale set non-empty" true (stale <> []);
  Mem.set_partition c.net (Some (fun a b -> a = p <> (b = p)));
  (* The first timed-out forward to P evicts it from that owner's ring
     view (suspect on RPC timeout), so later puts may reach 3 live
     replicas — either way the owner stores v2 and P misses it. *)
  List.iter
    (fun key ->
      match Client.put client ~key ~data:(data_v 2 key) with
      | `Ok copies ->
          Alcotest.(check bool)
            "heal: partitioned put reached a majority" true (copies >= 2)
      | `Failed -> Alcotest.fail "heal: partitioned put failed")
    stale;
  Mem.set_partition c.net None;
  (* P still holds v1 the instant the cable is back. *)
  List.iter
    (fun key ->
      Alcotest.(check (option string))
        "heal: P stale before repair"
        (Some (data_v 1 key))
        (Blockstore.get (Node.store c.nodes.(p)) ~key))
    stale;
  (* An evicted-but-alive peer re-enters via Join — re-serving P
     re-announces it to everyone whose view dropped it. *)
  Node.serve c.nodes.(p);
  run_for c 40.0;
  let expect = Hashtbl.create 64 in
  Array.iter (fun key -> Hashtbl.replace expect key (data_v 1 key)) keys;
  List.iter (fun key -> Hashtbl.replace expect key (data_v 2 key)) stale;
  check_groups ~label:"partition heal" c ~ring ~r:3 expect;
  Array.iter Node.stop c.nodes

(* {1 Quorum reads: read-repair without anti-entropy} *)

let test_quorum_read_repair () =
  (* Repair off: the only mechanism allowed to fix the stale replica
     is the quorum read's inline push. *)
  let c = boot ~n:9 ~extra:3 ~config:(static_config ~repair_interval:0.0) () in
  let seeds = List.init 9 Fun.id in
  let client =
    Client.create (Mem.endpoint c.net ~node:9) ~replicas:3 ~rpc_timeout:5.0
      ~seeds ()
  in
  let ring = ring_of_live c ~dead:[] in
  (* A quorum-2 read consults the owner plus the first successor, so
     the stale replica must be that first successor. *)
  let rng = Rng.create 0x9a3 in
  let rec pick () =
    let key = Key.random rng in
    match Ring.successors ring key 3 with
    | [ o; s1; s2 ] -> (key, o, s1, s2)
    | _ -> pick ()
  in
  let key, owner, p, s2 = pick () in
  (match Client.put client ~key ~data:(data_v 1 key) with
  | `Ok copies -> Alcotest.(check int) "rr: seed put copies" 3 copies
  | `Failed -> Alcotest.fail "rr: seed put failed");
  (* Make P miss an update without touching the network (a partition
     would evict it from the owner's view on the first fan-out
     timeout): install a dominating stamped copy directly on the other
     two replicas, exactly the state a lost fan-out frame leaves. *)
  let vv2 = Vv.bump (entry_vv c owner key) ~node:owner in
  List.iter
    (fun n ->
      (match Vmap.apply (Node.vmap c.nodes.(n)) ~key ~vv:vv2 ~deleted:false with
      | `Store _ -> ()
      | `Ignore _ -> Alcotest.fail "rr: injected copy lost the version race");
      ignore (Blockstore.put (Node.store c.nodes.(n)) ~key ~data:(data_v 2 key)))
    [ owner; s2 ];
  (* A plain (quorum-1) read serves the owner's copy and fixes
     nothing: the control for the quorum read below. *)
  (match Client.get client ~key with
  | `Found d -> Alcotest.(check string) "rr: plain read" (data_v 2 key) d
  | `Missing | `Failed -> Alcotest.fail "rr: plain read failed");
  run_for c 2.0;
  Alcotest.(check (option string))
    "rr: replica still stale after plain read"
    (Some (data_v 1 key))
    (Blockstore.get (Node.store c.nodes.(p)) ~key);
  (* quorum_r = 2: the read returns the dominating copy and pushes it
     to the stale replica off the reply path. *)
  let qclient =
    Client.create (Mem.endpoint c.net ~node:10) ~replicas:3 ~quorum_r:2
      ~rpc_timeout:5.0 ~seeds ()
  in
  (match Client.get qclient ~key with
  | `Found d -> Alcotest.(check string) "rr: quorum read wins" (data_v 2 key) d
  | `Missing | `Failed -> Alcotest.fail "rr: quorum read failed");
  run_for c 2.0;
  Alcotest.(check (option string))
    "rr: replica repaired by the read"
    (Some (data_v 2 key))
    (Blockstore.get (Node.store c.nodes.(p)) ~key);
  Alcotest.(check bool)
    "rr: vectors converged" true
    (Vv.compare_vv (entry_vv c p key) (entry_vv c owner key) = Vv.Equal);
  Array.iter Node.stop c.nodes

(* Write quorums on a 3-node ring, where routing cannot work around a
   severed replica: every group is the whole cluster, so with one node
   unreachable a put settles at 2 acks — enough for w=2, a hard
   failure for w=3. *)
let test_write_quorum () =
  let c = boot ~n:3 ~extra:2 ~config:(static_config ~repair_interval:0.0) () in
  let seeds = [ 0; 1; 2 ] in
  let ring = ring_of_live c ~dead:[] in
  let key = Key.random (Rng.create 0x3a7) in
  let z = List.nth (Ring.successors ring key 3) 1 in
  let wclient w node =
    Client.create (Mem.endpoint c.net ~node) ~replicas:3 ~quorum_w:w
      ~rpc_timeout:5.0 ~retries:2 ~seeds ()
  in
  let w3 = wclient 3 3 and w2 = wclient 2 4 in
  (match Client.put w3 ~key ~data:(data_v 1 key) with
  | `Ok copies -> Alcotest.(check int) "wq: w=3 put, all up" 3 copies
  | `Failed -> Alcotest.fail "wq: w=3 put failed with the cluster up");
  Mem.set_partition c.net (Some (fun a b -> a = z <> (b = z)));
  (match Client.put w2 ~key ~data:(data_v 2 key) with
  | `Ok copies -> Alcotest.(check int) "wq: w=2 put copies" 2 copies
  | `Failed -> Alcotest.fail "wq: w=2 put failed");
  (match Client.put w3 ~key ~data:(data_v 3 key) with
  | `Failed -> ()
  | `Ok _ -> Alcotest.fail "wq: w=3 put succeeded with a severed replica");
  Mem.set_partition c.net None;
  Array.iter Node.stop c.nodes

let () =
  Alcotest.run "sync"
    [
      ( "version_vector",
        [
          QCheck_alcotest.to_alcotest prop_merge_commutative;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_merge_idempotent;
          QCheck_alcotest.to_alcotest prop_merge_dominates;
          QCheck_alcotest.to_alcotest prop_dominates_antisymmetric;
          QCheck_alcotest.to_alcotest prop_winner_symmetric;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_codec_truncation;
          QCheck_alcotest.to_alcotest prop_apply_order_independent;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "kill churn: repair restores every group to r"
            `Quick test_churn_repair_restores_r;
          Alcotest.test_case "kill churn: repair-off control degrades" `Quick
            test_churn_control_stays_under_replicated;
          Alcotest.test_case "partition heal converges byte-identically" `Quick
            test_partition_heal_converges;
          Alcotest.test_case "quorum read repairs a stale replica inline"
            `Quick test_quorum_read_repair;
          Alcotest.test_case "write quorum gates on acked copies" `Quick
            test_write_quorum;
        ] );
    ]
