#!/usr/bin/env bash
# Routing bake-off smoke: two reduced-grid checks of the compiled
# routing policies.
#
#   1. The simulated four-policy bake-off (bakeoff_routing) at quick
#      scale — 2048 nodes, uniform + clustered ID distributions —
#      through the experiment runner, micros skipped.
#   2. A live grid: a 3-process d2d cluster booted once per policy
#      (fingers, harmonic-8, chord, kademlia-2), serving pipelined
#      d2load traffic at alpha=1 and alpha=2, requiring zero failed
#      ops and verified reads under every cell.
#
# The combined summary is saved to $BAKEOFF_OUT so CI can upload it
# as an artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_BASE="${D2_NET_PORT_BASE:-7500}"
NODES=3
DURATION="${BAKEOFF_DURATION:-1}"
DOMAINS="${BAKEOFF_DOMAINS:-2}"
OUT="${BAKEOFF_OUT:-/tmp/d2_routing_bakeoff.txt}"
# The live grid checks that every policy resolves correctly on the
# wire, not throughput; the floor only catches a wedged cluster.
MIN_OPS_S="${BAKEOFF_MIN_OPS_S:-1000}"
POLICIES="${BAKEOFF_POLICIES:-fingers harmonic-8 chord kademlia-2}"

dune build bench/main.exe bin/d2d.exe bin/d2load.exe

echo "== simulated bake-off (quick scale) ==" | tee "$OUT"
D2_SCALE=quick ./_build/default/bench/main.exe bakeoff_routing \
  --no-micro --json /tmp/d2_bakeoff_smoke.json | tee -a "$OUT"

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

status=0
for policy in $POLICIES; do
  for alpha in 1 2; do
    echo "== live: policy=$policy alpha=$alpha ==" | tee -a "$OUT"
    pids=()
    for i in $(seq 0 $((NODES - 1))); do
      ./_build/default/bin/d2d.exe --node "$i" --nodes "$NODES" \
        --port-base "$PORT_BASE" --duration 60 --domains "$DOMAINS" \
        --policy "$policy" &
      pids+=("$!")
    done
    # Give the daemons a moment to bind and join each other.
    sleep 1
    # d2load exits non-zero on any failed or timed-out op, any
    # verification mismatch, or throughput below the floor.
    if ! ./_build/default/bin/d2load.exe --nodes "$NODES" \
        --port-base "$PORT_BASE" --duration "$DURATION" --sweep 8 \
        --alpha "$alpha" --min-ops-s "$MIN_OPS_S" | tee -a "$OUT"; then
      echo "bakeoff_smoke: policy=$policy alpha=$alpha FAILED" >&2
      status=1
    fi
    for pid in "${pids[@]}"; do
      kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in "${pids[@]}"; do
      if ! wait "$pid"; then
        echo "bakeoff_smoke: daemon $pid (policy=$policy) exited non-zero" >&2
        status=1
      fi
    done
    pids=()
  done
done
trap - EXIT

if [ "$status" -eq 0 ]; then
  echo "bakeoff_smoke: OK" | tee -a "$OUT"
fi
exit "$status"
