#!/usr/bin/env bash
# Live-cluster smoke test: boot a 3-process d2d cluster on loopback
# TCP, replay pipelined load through it at several in-flight depths,
# and require zero failed ops, a minimum best-depth throughput, and a
# clean daemon shutdown.  The saturation curve d2load prints is saved
# to $SMOKE_CURVE so CI can upload it as an artifact.
#
# A second leg reruns the cluster on the durable segment store: a
# group-commit throughput floor on tmpfs, then a kill -9 of every
# daemon mid-load on a real-disk store dir, a restart from the same
# directories, and a byte-exact verification that every acked
# pre-crash block survived.  The combined report lands in
# $SMOKE_DURABLE_LOG.
#
# A third leg exercises anti-entropy repair: one daemon of a 3-node
# disk cluster is kill -9'd mid-load, its store directory wiped, and
# the daemon restarted empty; a quorum-2 verification must pass while
# the node refills, and on shutdown the restarted daemon must report a
# non-empty store — every block it holds arrived over digest repair /
# read-repair, not recovery.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_BASE="${D2_NET_PORT_BASE:-7400}"
NODES=3
DURATION="${SMOKE_DURATION:-1}"
DOMAINS="${SMOKE_DOMAINS:-2}"
SWEEP="${SMOKE_SWEEP:-1,4,16,64}"
CURVE="${SMOKE_CURVE:-/tmp/d2_net_smoke_curve.txt}"
# Conservative floor: loopback at in-flight 16 reaches ~100k ops/s on
# one dedicated core; 20k only catches order-of-magnitude regressions
# (lost pipelining, one write per frame) without flaking on a busy
# shared CI runner.
MIN_OPS_S="${SMOKE_MIN_OPS_S:-20000}"

dune build bin/d2d.exe bin/d2load.exe

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

for i in $(seq 0 $((NODES - 1))); do
  ./_build/default/bin/d2d.exe --node "$i" --nodes "$NODES" \
    --port-base "$PORT_BASE" --duration 60 --domains "$DOMAINS" &
  pids+=("$!")
done

# Give the daemons a moment to bind and join each other.
sleep 1

# Sweep the pipeline depths; d2load exits non-zero on any failed or
# timed-out op, any verification mismatch, or a best depth below the
# floor.
./_build/default/bin/d2load.exe --nodes "$NODES" --port-base "$PORT_BASE" \
  --duration "$DURATION" --sweep "$SWEEP" --min-ops-s "$MIN_OPS_S" \
  | tee "$CURVE"

# Clean shutdown: SIGTERM each daemon and require exit status 0.
status=0
for pid in "${pids[@]}"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    echo "net_smoke: daemon $pid exited non-zero" >&2
    status=1
  fi
done
pids=()

if [ "$status" -ne 0 ]; then
  exit "$status"
fi

# ---------------------------------------------------------------------
# Durability leg: the same cluster on the segment store.
# ---------------------------------------------------------------------

# Group-commit throughput is measured with the store on tmpfs: that
# isolates the store's scheduling (window batching, background
# flusher, ack release) from the device's journal-commit latency,
# which on shared CI runners varies by an order of magnitude and is
# paid identically by any design.  The crash/recovery phase runs on a
# real-disk path.  On the tmpfs leg a healthy run sustains ~70-80% of
# the in-RAM figure; the floor only catches a collapse back to
# one-sync-per-op.
if [ -d /dev/shm ] && [ -w /dev/shm ]; then
  TMPFS_ROOT_DEFAULT="/dev/shm/d2-smoke-store-$$"
else
  TMPFS_ROOT_DEFAULT="$(mktemp -d)/store"
fi
TMPFS_STORE="${SMOKE_STORE_DIR:-$TMPFS_ROOT_DEFAULT}"
DISK_STORE="${SMOKE_DISK_STORE_DIR:-$(mktemp -d)/store}"
DUR_LOG="${SMOKE_DURABLE_LOG:-/tmp/d2_net_smoke_durability.txt}"
MIN_DURABLE_OPS_S="${SMOKE_MIN_DURABLE_OPS_S:-12000}"
VERIFY_OPS="${SMOKE_VERIFY_OPS:-4000}"
VERIFY_SEED="${SMOKE_VERIFY_SEED:-77}"
RESTART_LOGS="$(mktemp -d)"

REPAIR_STORE="${SMOKE_REPAIR_STORE_DIR:-$(mktemp -d)/store}"
REPAIR_LOGS="$(mktemp -d)"

cleanup_durable() {
  cleanup
  rm -rf "$TMPFS_STORE" "$DISK_STORE" "$RESTART_LOGS" \
    "$REPAIR_STORE" "$REPAIR_LOGS"
}
trap cleanup_durable EXIT

: > "$DUR_LOG"

boot_disk_cluster() { # port_base store_dir fsync extra_daemon_log_dir?
  local port_base="$1" store_dir="$2" fsync="$3" log_dir="${4:-}"
  for i in $(seq 0 $((NODES - 1))); do
    if [ -n "$log_dir" ]; then
      ./_build/default/bin/d2d.exe --node "$i" --nodes "$NODES" \
        --port-base "$port_base" --duration 120 --domains "$DOMAINS" \
        --store disk --store-dir "$store_dir" --fsync "$fsync" \
        > "$log_dir/d2d-$i.log" 2>&1 &
    else
      ./_build/default/bin/d2d.exe --node "$i" --nodes "$NODES" \
        --port-base "$port_base" --duration 120 --domains "$DOMAINS" \
        --store disk --store-dir "$store_dir" --fsync "$fsync" &
    fi
    pids+=("$!")
  done
  sleep 1
}

stop_cluster() { # signal
  for pid in "${pids[@]}"; do
    kill "-$1" "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  pids=()
}

# Phase 1: group-commit throughput floor (tmpfs store, fsync=batch).
echo "== durable throughput (store on ${TMPFS_STORE}, fsync=batch) ==" \
  | tee -a "$DUR_LOG"
boot_disk_cluster $((PORT_BASE + 20)) "$TMPFS_STORE" batch
./_build/default/bin/d2load.exe --nodes "$NODES" \
  --port-base $((PORT_BASE + 20)) --duration "$DURATION" --sweep 16 \
  --min-ops-s "$MIN_DURABLE_OPS_S" | tee -a "$DUR_LOG"
stop_cluster TERM

# Phase 2: crash durability on a real-disk store.  A deterministic
# --ops run pins the expected final state; an interfering load on a
# disjoint volume is in flight when every daemon dies with kill -9
# (mid-group-commit, mid-compaction, wherever it lands).
echo "== crash durability (store on ${DISK_STORE}, fsync=batch) ==" \
  | tee -a "$DUR_LOG"
boot_disk_cluster $((PORT_BASE + 40)) "$DISK_STORE" batch
./_build/default/bin/d2load.exe --nodes "$NODES" \
  --port-base $((PORT_BASE + 40)) --ops "$VERIFY_OPS" --seed "$VERIFY_SEED" \
  | tee -a "$DUR_LOG"
./_build/default/bin/d2load.exe --nodes "$NODES" \
  --port-base $((PORT_BASE + 40)) --duration 5 --volume /killme \
  >> "$DUR_LOG" 2>&1 &
killload=$!
sleep 0.5
echo "net_smoke: kill -9 all daemons mid-load" | tee -a "$DUR_LOG"
stop_cluster KILL
wait "$killload" 2>/dev/null || true  # its ops died with the cluster

# Restart from the same directories: every daemon must recover...
boot_disk_cluster $((PORT_BASE + 40)) "$DISK_STORE" batch "$RESTART_LOGS"
for i in $(seq 0 $((NODES - 1))); do
  cat "$RESTART_LOGS/d2d-$i.log" >> "$DUR_LOG" || true
done
if [ "$(cat "$RESTART_LOGS"/d2d-*.log | grep -c 'recovered')" -lt "$NODES" ]; then
  echo "net_smoke: a restarted daemon did not report recovery" >&2
  grep -h 'recovered' "$RESTART_LOGS"/d2d-*.log >&2 || true
  exit 1
fi
grep -h 'recovered' "$RESTART_LOGS"/d2d-*.log

# ...and the cluster must serve every block the deterministic run was
# acked for, byte-for-byte.
./_build/default/bin/d2load.exe --nodes "$NODES" \
  --port-base $((PORT_BASE + 40)) --ops "$VERIFY_OPS" \
  --verify-seed "$VERIFY_SEED" | tee -a "$DUR_LOG"
stop_cluster TERM

# ---------------------------------------------------------------------
# Repair leg: lose one node's store entirely, refill it over the wire.
# ---------------------------------------------------------------------

echo "== repair (store on ${REPAIR_STORE}, repair-interval 0.5s) ==" \
  | tee -a "$DUR_LOG"
export D2_REPAIR_INTERVAL=0.5
boot_disk_cluster $((PORT_BASE + 60)) "$REPAIR_STORE" batch

# Pin the expected state with a deterministic run, then kill -9 one
# daemon while an interfering load (disjoint volume) is in flight.
./_build/default/bin/d2load.exe --nodes "$NODES" \
  --port-base $((PORT_BASE + 60)) --ops "$VERIFY_OPS" --seed "$VERIFY_SEED" \
  | tee -a "$DUR_LOG"
./_build/default/bin/d2load.exe --nodes "$NODES" \
  --port-base $((PORT_BASE + 60)) --duration 3 --volume /killme \
  >> "$DUR_LOG" 2>&1 &
killload=$!
sleep 0.5
victim=2
echo "net_smoke: kill -9 node $victim mid-load, wiping its store" \
  | tee -a "$DUR_LOG"
kill -9 "${pids[$victim]}" 2>/dev/null || true
wait "$killload" 2>/dev/null || true  # its ops may have died with the node
rm -rf "$REPAIR_STORE/node-$victim"

# Restart the victim with an empty store directory.  It rejoins via a
# fresh Join and the anti-entropy loop starts streaming its ranges
# back from the survivors.
./_build/default/bin/d2d.exe --node "$victim" --nodes "$NODES" \
  --port-base $((PORT_BASE + 60)) --duration 120 --domains "$DOMAINS" \
  --store disk --store-dir "$REPAIR_STORE" --fsync batch \
  > "$REPAIR_LOGS/d2d-$victim-restart.log" 2>&1 &
pids+=("$!")
unset D2_REPAIR_INTERVAL

# A quorum-2 read survives the refilling node (the owner consults a
# second replica and read-repairs stale copies inline), so the full
# byte-exact verification must pass without waiting for repair to
# finish.  Retry a few times to ride out the rejoin window.
verified=""
for attempt in 1 2 3 4 5 6; do
  sleep 2
  if ./_build/default/bin/d2load.exe --nodes "$NODES" \
       --port-base $((PORT_BASE + 60)) --ops "$VERIFY_OPS" \
       --verify-seed "$VERIFY_SEED" --quorum-r 2 >> "$DUR_LOG" 2>&1; then
    verified=yes
    break
  fi
  echo "net_smoke: quorum verify attempt $attempt failed; retrying" \
    | tee -a "$DUR_LOG"
done
if [ -z "$verified" ]; then
  echo "net_smoke: quorum-2 verify never passed after node wipe" >&2
  exit 1
fi
tail -2 "$DUR_LOG"

# Let a few more repair rounds run, then require the restarted daemon
# to be holding blocks it could only have received over repair.
sleep 3
stop_cluster TERM
cat "$REPAIR_LOGS/d2d-$victim-restart.log" >> "$DUR_LOG" || true
repaired_blocks="$(sed -n \
  's/.*served [0-9]* requests, \([0-9]*\) blocks.*/\1/p' \
  "$REPAIR_LOGS/d2d-$victim-restart.log" | tail -1)"
if [ -z "${repaired_blocks:-}" ] || [ "$repaired_blocks" -le 0 ]; then
  echo "net_smoke: restarted node $victim reported no repaired blocks" >&2
  cat "$REPAIR_LOGS/d2d-$victim-restart.log" >&2 || true
  exit 1
fi
echo "net_smoke: node $victim refilled to $repaired_blocks blocks via repair" \
  | tee -a "$DUR_LOG"

trap - EXIT
cleanup_durable

echo "net_smoke: OK (incl. durability + repair: wipe one node -> anti-entropy refill -> quorum verify)"
exit 0
