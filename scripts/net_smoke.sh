#!/usr/bin/env bash
# Live-cluster smoke test: boot a 3-process d2d cluster on loopback
# TCP, replay pipelined load through it at several in-flight depths,
# and require zero failed ops, a minimum best-depth throughput, and a
# clean daemon shutdown.  The saturation curve d2load prints is saved
# to $SMOKE_CURVE so CI can upload it as an artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_BASE="${D2_NET_PORT_BASE:-7400}"
NODES=3
DURATION="${SMOKE_DURATION:-1}"
DOMAINS="${SMOKE_DOMAINS:-2}"
SWEEP="${SMOKE_SWEEP:-1,4,16,64}"
CURVE="${SMOKE_CURVE:-/tmp/d2_net_smoke_curve.txt}"
# Conservative floor: loopback at in-flight 16 reaches ~100k ops/s on
# one dedicated core; 20k only catches order-of-magnitude regressions
# (lost pipelining, one write per frame) without flaking on a busy
# shared CI runner.
MIN_OPS_S="${SMOKE_MIN_OPS_S:-20000}"

dune build bin/d2d.exe bin/d2load.exe

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

for i in $(seq 0 $((NODES - 1))); do
  ./_build/default/bin/d2d.exe --node "$i" --nodes "$NODES" \
    --port-base "$PORT_BASE" --duration 60 --domains "$DOMAINS" &
  pids+=("$!")
done

# Give the daemons a moment to bind and join each other.
sleep 1

# Sweep the pipeline depths; d2load exits non-zero on any failed or
# timed-out op, any verification mismatch, or a best depth below the
# floor.
./_build/default/bin/d2load.exe --nodes "$NODES" --port-base "$PORT_BASE" \
  --duration "$DURATION" --sweep "$SWEEP" --min-ops-s "$MIN_OPS_S" \
  | tee "$CURVE"

# Clean shutdown: SIGTERM each daemon and require exit status 0.
status=0
for pid in "${pids[@]}"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    echo "net_smoke: daemon $pid exited non-zero" >&2
    status=1
  fi
done
pids=()
trap - EXIT

if [ "$status" -eq 0 ]; then
  echo "net_smoke: OK"
fi
exit "$status"
