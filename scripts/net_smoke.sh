#!/usr/bin/env bash
# Live-cluster smoke test: boot a 3-process d2d cluster on loopback
# TCP, replay ~2 s of synthetic load through it with d2load, and
# require zero failed ops and a clean daemon shutdown.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT_BASE="${D2_NET_PORT_BASE:-7400}"
NODES=3
DURATION="${SMOKE_DURATION:-2}"

dune build bin/d2d.exe bin/d2load.exe

pids=()
cleanup() {
  for pid in "${pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

for i in $(seq 0 $((NODES - 1))); do
  ./_build/default/bin/d2d.exe --node "$i" --nodes "$NODES" \
    --port-base "$PORT_BASE" --duration 30 &
  pids+=("$!")
done

# Give the daemons a moment to bind and join each other.
sleep 1

./_build/default/bin/d2load.exe --nodes "$NODES" --port-base "$PORT_BASE" \
  --duration "$DURATION"

# Clean shutdown: SIGTERM each daemon and require exit status 0.
status=0
for pid in "${pids[@]}"; do
  kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${pids[@]}"; do
  if ! wait "$pid"; then
    echo "net_smoke: daemon $pid exited non-zero" >&2
    status=1
  fi
done
pids=()
trap - EXIT

if [ "$status" -eq 0 ]; then
  echo "net_smoke: OK"
fi
exit "$status"
