#!/usr/bin/env python3
"""Fail CI when the quick-scale bench regresses vs the committed baseline.

Usage: check_bench_regression.py BASELINE_JSON NEW_JSON [--factor 1.25]
                                 [--micro-factor 2.0]

Compares a fresh BENCH_results.json against the committed baseline:

  * `total_wall_s` must not exceed baseline * factor.
  * each micro's ns/op must not exceed its baseline * micro-factor
    (only micros present in both files are compared; a micro may also
    carry a tighter per-name limit in MICRO_LIMITS below).

Scale/jobs mismatches make the comparison meaningless, so they are
reported and the check is skipped (exit 0) rather than producing a
spurious verdict.  Per-experiment walls are printed for context (owned
wall only; `shared_wall_s` is attribution of work counted in another
entry's wall, so it is excluded from the regression sum).

Micro ns/op are normalized per operation by the harness (bench/main.ml
divides each OLS estimate by the staged run's op count), so these
thresholds gate true per-op cost.  The default micro factor is looser
than the wall factor because micros measured after the experiment
suite inherit some machine/GC state; hard ceilings for the hot-path
kernels live in MICRO_LIMITS.
"""

import json
import sys

# Absolute ns/op ceilings for kernels with an acceptance criterion, on
# top of the relative micro factor.  Keep these loose enough for CI
# noise (~2x what a loaded post-suite run reports) but tight enough to
# catch an accidental return to boxed/allocating implementations.
MICRO_LIMITS = {
    "key_compare": 150.0,
    "lookup_cache_probe_d2": 1450.0,
    "cache_batch_resolve": 1450.0,
    "ring_successor_1000": 1000.0,
    # One absolute gate per compiled routing policy (all drive the same
    # jump-table kernel; chord/kad tables are denser but a route is the
    # same binary-search walk), plus the α=2 frontier kernel, which does
    # up to 2x the per-hop work of a single-path route and must stay
    # allocation-free.
    "router_route": 8000.0,
    "router_route_chord": 8000.0,
    "router_route_kad": 8000.0,
    "route_alpha": 16000.0,
    "net_frame_encode": 150.0,
    "net_mem_rpc": 150000.0,
    # Anti-entropy gates: a batch merge of small int-array vectors must
    # stay unboxed (a quiet run reports ~195; a return to map-based
    # vectors is ~10x), a root digest build over 4096 entries bounds
    # the fixed CRC fold every repair round pays (~247k quiet), and a
    # quorum-2 get must stay within ~2x the plain RPC since the owner
    # only adds one replica round-trip plus vector folds (~40k quiet).
    "vv_merge": 600.0,
    "digest_build_4k": 800000.0,
    "quorum_get": 120000.0,
    # Pipelined-runtime gates: coalesced frames must stay cheap per
    # frame (a return to one-write-per-frame shows up as ~10x), and a
    # 16-deep pipelined get must stay well under the synchronous RPC's
    # per-op cost.
    "net_write_coalesce": 1500.0,
    "net_pipelined_rpc": 100000.0,
    # Fleet gates: the shared-arena probe is the acceptance-criterion
    # kernel (issue says <= 100 ns; a quiet run reports ~56), the
    # alias-method zipf draw must stay O(1) (a return to CDF binary
    # search shows up as ~3x at n=4096), and the full per-op step
    # (wheel fire + draw + probe + re-arm) bounds the fleet's
    # end-to-end throughput.
    "zipf_sample": 150.0,
    "fleet_cache_probe": 100.0,
    "fleet_step": 600.0,
    # Durable-store gates (stores live on tmpfs, so these bound the
    # store's own code path, not device sync latency).  A quiet run
    # reports ~260/~420/~100/~590; the ceilings catch a lost write
    # buffer (per-op write(2) is ~10x), a per-put fsync (~100x), a
    # cache that stopped caching, and a recovery that re-reads
    # per-record instead of scanning chunks.
    "store_append_batch": 1500.0,
    "store_get_disk": 2500.0,
    "store_get_cached": 500.0,
    "store_recovery_replay": 3000.0,
}


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    factor = 1.25
    micro_factor = 2.0
    for a in argv[1:]:
        if a.startswith("--factor"):
            factor = float(a.split("=", 1)[1] if "=" in a else args.pop())
        elif a.startswith("--micro-factor"):
            micro_factor = float(a.split("=", 1)[1] if "=" in a else args.pop())
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, new_path = args
    base = load(baseline_path)
    new = load(new_path)

    for key in ("scale", "jobs"):
        if base.get(key) != new.get(key):
            print(
                f"SKIP: {key} mismatch (baseline {base.get(key)!r} vs new "
                f"{new.get(key)!r}); wall-time comparison would be meaningless"
            )
            return 0

    base_walls = {e["id"]: e["wall_s"] for e in base.get("experiments", [])}
    print(f"{'experiment':24s} {'baseline':>10s} {'new':>10s} {'ratio':>7s}")
    for e in new.get("experiments", []):
        b = base_walls.get(e["id"])
        ratio = "" if not b else f"{e['wall_s'] / b:6.2f}x"
        print(
            f"{e['id']:24s} {b if b is not None else float('nan'):10.3f} "
            f"{e['wall_s']:10.3f} {ratio:>7s}"
        )

    failures = []

    base_micros = {
        m["name"]: m["ns_per_op"]
        for m in base.get("micro", [])
        if m.get("ns_per_op") is not None
    }
    new_micros = [
        m for m in new.get("micro", []) if m.get("ns_per_op") is not None
    ]
    if new_micros:
        print(f"\n{'micro':24s} {'baseline':>12s} {'new':>12s} {'limit':>12s}")
        for m in new_micros:
            name, ns = m["name"], m["ns_per_op"]
            b = base_micros.get(name)
            if b is None:
                # A micro added since the baseline was recorded has no
                # reference point; gate it only once the baseline is
                # refreshed, rather than failing every PR that adds one.
                print(f"{name:24s} {'absent':>12s} {ns:12.1f} {'(skipped)':>12s}")
                print(f"WARN: micro {name} absent from baseline; skipped")
                continue
            limits = []
            if b is not None:
                limits.append(b * micro_factor)
            if name in MICRO_LIMITS:
                limits.append(MICRO_LIMITS[name])
            limit = min(limits) if limits else None
            b_s = f"{b:12.1f}" if b is not None else f"{'new':>12s}"
            l_s = f"{limit:12.1f}" if limit is not None else f"{'-':>12s}"
            print(f"{name:24s} {b_s} {ns:12.1f} {l_s}")
            if limit is not None and ns > limit:
                failures.append(
                    f"micro {name}: {ns:.1f} ns/op exceeds limit {limit:.1f}"
                )

    b_total, n_total = base["total_wall_s"], new["total_wall_s"]
    limit = b_total * factor
    print(
        f"\ntotal_wall_s: baseline {b_total:.3f}s, new {n_total:.3f}s, "
        f"limit {limit:.3f}s (factor {factor})"
    )
    if n_total > limit:
        failures.append(
            f"total_wall_s regressed more than {(factor - 1) * 100:.0f}%"
        )
    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
