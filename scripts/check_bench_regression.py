#!/usr/bin/env python3
"""Fail CI when the quick-scale bench regresses vs the committed baseline.

Usage: check_bench_regression.py BASELINE_JSON NEW_JSON [--factor 1.25]

Compares the `total_wall_s` of a fresh BENCH_results.json against the
committed baseline and exits non-zero when the new total exceeds
baseline * factor.  Scale/jobs mismatches make the comparison
meaningless, so they are reported and the check is skipped (exit 0)
rather than producing a spurious verdict.  Per-experiment walls are
printed for context (owned wall only; `shared_wall_s` is attribution
of work counted in another entry's wall, so it is excluded from the
regression sum).
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    factor = 1.25
    for a in argv[1:]:
        if a.startswith("--factor"):
            factor = float(a.split("=", 1)[1] if "=" in a else args.pop())
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_path, new_path = args
    base = load(baseline_path)
    new = load(new_path)

    for key in ("scale", "jobs"):
        if base.get(key) != new.get(key):
            print(
                f"SKIP: {key} mismatch (baseline {base.get(key)!r} vs new "
                f"{new.get(key)!r}); wall-time comparison would be meaningless"
            )
            return 0

    base_walls = {e["id"]: e["wall_s"] for e in base.get("experiments", [])}
    print(f"{'experiment':24s} {'baseline':>10s} {'new':>10s} {'ratio':>7s}")
    for e in new.get("experiments", []):
        b = base_walls.get(e["id"])
        ratio = "" if not b else f"{e['wall_s'] / b:6.2f}x"
        print(
            f"{e['id']:24s} {b if b is not None else float('nan'):10.3f} "
            f"{e['wall_s']:10.3f} {ratio:>7s}"
        )

    b_total, n_total = base["total_wall_s"], new["total_wall_s"]
    limit = b_total * factor
    print(
        f"\ntotal_wall_s: baseline {b_total:.3f}s, new {n_total:.3f}s, "
        f"limit {limit:.3f}s (factor {factor})"
    )
    if n_total > limit:
        print(f"FAIL: total_wall_s regressed more than {(factor - 1) * 100:.0f}%")
        return 1
    print("OK: within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
