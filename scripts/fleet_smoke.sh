#!/usr/bin/env bash
# Fleet smoke test: run a small d2fleet storm twice — once on 1 worker
# domain, once on 4 — and require byte-identical reports (jobs must
# never affect results), a simulated-throughput floor, and a sane
# hit-rate curve in the output.  The full report (curve + per-owner
# load histogram) is saved to $FLEET_CURVE so CI can upload it as an
# artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

CLIENTS="${FLEET_CLIENTS:-100000}"
DURATION="${FLEET_DURATION:-10}"
SCENARIO="${FLEET_SCENARIO:-zipf_storm}"
CURVE="${FLEET_CURVE:-/tmp/d2_fleet_curve.txt}"
# Conservative floor: a quiet single core steps the 1M-client storm at
# ~7M simulated ops/s; 500k only catches order-of-magnitude
# regressions (per-op allocation, a return to one-probe-per-wake)
# without flaking on a busy shared CI runner.
MIN_OPS_S="${FLEET_MIN_OPS_S:-500000}"

dune build bin/d2fleet.exe
FLEET=./_build/default/bin/d2fleet.exe

# Determinism: the report must not depend on the worker-domain count.
"$FLEET" -s "$SCENARIO" -n "$CLIENTS" -d "$DURATION" -j 1 \
  >/tmp/d2_fleet_j1.txt 2>/dev/null
"$FLEET" -s "$SCENARIO" -n "$CLIENTS" -d "$DURATION" -j 4 \
  --min-ops-s "$MIN_OPS_S" >/tmp/d2_fleet_j4.txt
if ! diff -u /tmp/d2_fleet_j1.txt /tmp/d2_fleet_j4.txt; then
  echo "fleet_smoke: report differs between -j 1 and -j 4" >&2
  exit 1
fi
cp /tmp/d2_fleet_j4.txt "$CURVE"

# The report must carry the hit-rate sweep and the load histogram.
grep -q "hit-rate vs cache size" "$CURVE"
grep -q "owner load" "$CURVE"

echo "fleet_smoke: OK"
