(** Trace-to-key mapping for the three system configurations.

    The simulators replay block-level traces ({!D2_trace.Op}) without
    instantiating the full file-system layer; this module gives each
    (path, block) the key D2-FS would have assigned under each key
    policy.  For D2, per-directory slots are assigned in order of
    first appearance — the same rule D2-FS applies at creation time —
    and remembered for the life of the mapping, so re-writes of a path
    reuse its key (placement equivalence with the real FS).

    When a directory's 2-byte slot space overflows (possible for flat
    synthetic namespaces like disk-block traces), the child's slot
    falls back to a hash of its name — the paper's footnote-2 escape
    hatch, which costs a little locality but never fails. *)

module Key = D2_keyspace.Key

type mode = D2 | Traditional | Traditional_file

val mode_name : mode -> string

type t

val create : mode -> volume:string -> t

val key_of : t -> path:string -> block:int -> Key.t
(** Key of one 8 KB data block of the file at [path]. *)

val key_of_op : t -> Op.op -> Key.t
(** Convenience for replay: key of the block an op touches. *)

val slot_path : t -> path:string -> int list
(** The D2 slot path assigned to [path] (assigning fresh slots if
    needed).  Only meaningful in [D2] mode, but defined for all. *)
