module Rng = D2_util.Rng
module Vec = D2_util.Vec
module Zipf = D2_util.Zipf

type params = {
  clients : int;
  days : float;
  domains : int;
  pages_per_domain_mean : int;
  sessions_per_client_day : float;
  mean_object_bytes : int;
}

let default_params =
  {
    clients = 120;
    days = 7.0;
    domains = 1500;
    pages_per_domain_mean = 30;
    sessions_per_client_day = 12.0;
    mean_object_bytes = 12 * 1024;
  }

let reversed_name ~domain ~page =
  let parts = String.split_on_char '.' domain in
  String.concat "." (List.rev parts) ^ "/" ^ page

let day = 86400.0

type site = { first_file : int; npages : int; zipf : Zipf.t }

let generate ~rng ?(params = default_params) () =
  if params.clients <= 0 then invalid_arg "Web.generate: clients must be positive";
  if params.domains <= 0 then invalid_arg "Web.generate: domains must be positive";
  (* Build the object universe: per-domain page trees. *)
  let files = Vec.create () in
  let sites =
    Array.init params.domains (fun d ->
        let domain = Printf.sprintf "www.site%05d.com" d in
        let npages =
          max 1
            (int_of_float
               (Rng.pareto rng ~shape:1.3
                  ~scale:(float_of_int params.pages_per_domain_mean *. 0.3)))
        in
        let npages = min npages 2000 in
        let first_file = Vec.length files in
        for p = 0 to npages - 1 do
          let page =
            if p = 0 then "index.html"
            else Printf.sprintf "pages/p%04d.html" p
          in
          let bytes =
            max 256
              (min (8 * 1024 * 1024)
                 (int_of_float
                    (Rng.pareto rng ~shape:1.3
                       ~scale:(float_of_int params.mean_object_bytes *. 0.25))))
          in
          Vec.push files
            {
              Op.file_id = Vec.length files;
              file_path = reversed_name ~domain ~page;
              file_bytes = bytes;
            }
        done;
        { first_file; npages; zipf = Zipf.create ~n:npages ~s:0.9 })
  in
  let initial_files = Vec.to_array files in
  let domain_zipf = Zipf.create ~n:params.domains ~s:0.85 in
  let ops = Vec.create () in
  let emit_object_read ~t ~client (info : Op.file_info) =
    let nblocks = Op.blocks_of_bytes info.Op.file_bytes in
    let tm = ref t in
    for b = 0 to nblocks - 1 do
      let bytes =
        if b = nblocks - 1 then
          let rem = info.Op.file_bytes - (b * Op.block_size) in
          if rem = 0 then Op.block_size else rem
        else Op.block_size
      in
      Vec.push ops
        {
          Op.time = !tm;
          user = client;
          path = info.Op.file_path;
          file = info.Op.file_id;
          block = b;
          kind = Op.Read;
          bytes;
        };
      tm := !tm +. 0.01 +. Rng.float rng 0.05
    done;
    !tm
  in
  for client = 0 to params.clients - 1 do
    let crng = Rng.split rng in
    let nsessions =
      int_of_float (params.sessions_per_client_day *. params.days)
    in
    for _ = 1 to nsessions do
      let start = Rng.float crng (params.days *. day *. 0.999) in
      let site_idx = Zipf.sample domain_zipf crng in
      let site = sites.(site_idx) in
      let npages_visited = 1 + Rng.int crng 12 in
      let t = ref start in
      for _ = 1 to npages_visited do
        (* 15% of fetches stray to a random other site (links out). *)
        let s, si =
          if Rng.float crng 1.0 < 0.15 then
            let j = Zipf.sample domain_zipf crng in
            (sites.(j), j)
          else (site, site_idx)
        in
        ignore si;
        let page = Zipf.sample s.zipf crng in
        let info = initial_files.(s.first_file + page) in
        t := emit_object_read ~t:!t ~client info;
        t := !t +. 1.0 +. Rng.exponential crng ~mean:8.0
      done
    done
  done;
  Vec.sort_by_float ops ~key:(fun o -> o.Op.time);
  let arr = Vec.to_array ops in
  let duration =
    if Array.length arr = 0 then params.days *. day
    else Float.max (params.days *. day) (arr.(Array.length arr - 1).Op.time +. 1.0)
  in
  let trace =
    {
      Op.name = "web";
      duration;
      users = params.clients;
      ops = arr;
      initial_files;
    }
  in
  Op.validate trace;
  trace
