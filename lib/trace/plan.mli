(** Compiled, replay-ready form of a trace.

    Replaying an {!Op.t} is the hot loop of every simulator, and the
    legacy loops paid twice per op: a boxed record pattern-match per
    field access, and a {!Keymap} walk (path split + per-directory slot
    table probes + key encoding) to recover the op's block key — work
    that is identical across the 4 setups × node counts × seeds that
    replay the same trace.  A plan hoists all of it out of the replay:

    - columnar, unboxed [int]/[float] arrays for time, user, file,
      block, byte count and kind (access them directly in the loop);
    - interned path ids ([path_ids] into [paths]);
    - the initial-file block grid flattened into [init_sizes] with
      per-file [init_offsets];
    - per-{!Keymap.mode} precomputed {!D2_keyspace.Key.t} arrays
      ({!replay_keys}, {!init_keys}), built once per (mode, volume,
      policy) and shared via {!D2_util.Memo} across every consumer.

    Plans are immutable once compiled and cached per trace
    ({!of_trace}), so all of this is domain-safe. *)

module Key = D2_keyspace.Key

(** {1 Kind codes} *)

val kind_read : int
val kind_write : int
val kind_create : int
val kind_delete : int

val kind_code : Op.kind -> int
val kind_of_code : int -> Op.kind
(** @raise Invalid_argument on an out-of-range code. *)

(** {1 Plans} *)

type t = private {
  trace : Op.t;
  n : int;  (** number of ops *)
  times : float array;  (** unboxed float column *)
  users : int array;
  files : int array;
  blocks : int array;
  bytes : int array;
  kinds : int array;  (** {!kind_read} … {!kind_delete} *)
  path_ids : int array;  (** op index -> interned path id *)
  paths : string array;  (** path id -> path *)
  init_files : int array;  (** initial file ids, in trace order *)
  init_path_ids : int array;
  init_offsets : int array;
      (** [nf + 1] entries; initial file [f]'s blocks occupy
          [init_offsets.(f) .. init_offsets.(f+1) - 1] of [init_sizes]
          (and of the key arrays), block [b] at [init_offsets.(f) + b]. *)
  init_sizes : int array;  (** flattened per-block byte sizes *)
  keys : keyset D2_util.Memo.t;
}

and keyset = {
  op_keys : Key.t array;
      (** one key per op; {!Key.zero} placeholders for kinds the policy
          does not key (deletes always — their keys come from the blocks
          recorded at put time) *)
  init_keys : Key.t array;  (** same layout as [init_sizes] *)
}

val compile : Op.t -> t
(** Compile without caching (exposed for the micro-benchmarks; use
    {!of_trace}). *)

val of_trace : Op.t -> t
(** The shared plan of this trace: compiled on first use, cached by
    physical identity, domain-safe. *)

val trace : t -> Op.t
val length : t -> int

val path : t -> int -> string
(** Path of op [i]. *)

(** {1 Precomputed keys}

    Which kinds touch the keymap (and therefore claim D2 directory
    slots, in first-touch order) must match the legacy replay loop
    being replaced: the balance simulator only keyed mutations, the
    availability/performance replays also keyed every read. *)

type key_policy =
  | Writes_only  (** writes/creates keyed; reads skipped (§10 replay) *)
  | Reads_and_writes  (** reads keyed too (§8/§9 replays) *)

val replay_keys : ?volume:string -> t -> mode:Keymap.mode -> policy:key_policy -> keyset
(** Keys for a full replay: initial-file blocks first, then ops, walked
    in trace order on a fresh keymap — byte-identical to what the
    legacy per-op path computed.  [volume] defaults to ["vol"]
    ({!System.create}'s default).  Memoized per (mode, volume,
    policy). *)

val init_keys : t -> mode:Keymap.mode -> volume:string -> Key.t array
(** Keys of the initial-file blocks only, for consumers that replicate
    the initial data set under extra volumes (§9.1's volume copies).
    Memoized per (mode, volume). *)
