module Rng = D2_util.Rng
module Vec = D2_util.Vec
module Zipf = D2_util.Zipf

type params = {
  users : int;
  days : float;
  target_bytes : int;
  reads_per_user_day : float;
  daily_churn : float;
}

let default_params =
  {
    users = 83;
    days = 7.0;
    target_bytes = 256 * 1024 * 1024;
    reads_per_user_day = 700.0;
    daily_churn = 0.15;
  }

type dyn_file = {
  id : int;
  dir : int;
  path : string;
  created_at : float;  (** trace time the file first exists (0 for initial) *)
  mutable cur_bytes : int;
  mutable alive : bool;
}

type state = {
  rng : Rng.t;
  ns : Namespace.t;
  files : dyn_file Vec.t;
  dir_live : int Vec.t array;  (** live file indices per dir (may go stale) *)
  owned_dirs : int array array;  (** per user, the directories they own *)
  ops : Op.op Vec.t;
  mutable next_file_id : int;
  mutable temp_counter : int;
}

let hour = 3600.0
let day = 24.0 *. hour

let emit st ~time ~user ~(f : dyn_file) ~block ~kind ~bytes =
  Vec.push st.ops
    { Op.time; user; path = f.path; file = f.id; block; kind; bytes }

let block_bytes total_bytes block =
  let nblocks = Op.blocks_of_bytes total_bytes in
  if block = nblocks - 1 then
    let rem = total_bytes - (block * Op.block_size) in
    if rem = 0 then Op.block_size else rem
  else Op.block_size

(* Pick a file that exists at trace time [now] in a directory.  The
   per-user generation passes run one user's whole week at a time, so
   the directory tables may already contain files another user only
   creates later in trace time — [created_at] keeps every emitted read
   consistent with replay order. *)
let pick_live_file st ~now dir =
  let vec = st.dir_live.(dir) in
  let n = Vec.length vec in
  if n = 0 then None
  else begin
    let rec try_pick attempts =
      if attempts = 0 then None
      else begin
        let i = Rng.int st.rng n in
        let fi = Vec.get vec i in
        let f = Vec.get st.files fi in
        if f.alive && f.created_at <= now then Some f else try_pick (attempts - 1)
      end
    in
    try_pick 8
  end

let create_file st ~now ~dir ~bytes ~temp =
  let dir_path = st.ns.Namespace.dirs.(dir) in
  let name =
    if temp then begin
      st.temp_counter <- st.temp_counter + 1;
      Printf.sprintf "tmp%06d.t" st.temp_counter
    end
    else begin
      st.temp_counter <- st.temp_counter + 1;
      Printf.sprintf "n%06d.dat" st.temp_counter
    end
  in
  let f =
    {
      id = st.next_file_id;
      dir;
      path = dir_path ^ "/" ^ name;
      created_at = now;
      cur_bytes = bytes;
      alive = true;
    }
  in
  st.next_file_id <- st.next_file_id + 1;
  Vec.push st.files f;
  Vec.push st.dir_live.(dir) (Vec.length st.files - 1);
  f

(* Read some or all blocks of a file; returns the time after the last op. *)
let read_file st ~time ~user (f : dyn_file) =
  let nblocks = Op.blocks_of_bytes f.cur_bytes in
  let full = Rng.float st.rng 1.0 < 0.7 in
  let first, last =
    if full || nblocks <= 2 then (0, nblocks - 1)
    else begin
      let a = Rng.int st.rng nblocks in
      let len = 1 + Rng.int st.rng (nblocks - a) in
      (a, a + len - 1)
    end
  in
  let t = ref time in
  for b = first to last do
    emit st ~time:!t ~user ~f ~block:b ~kind:Op.Read
      ~bytes:(block_bytes f.cur_bytes b);
    t := !t +. 0.02 +. Rng.float st.rng 0.15
  done;
  !t

(* Write every block of a file (overwrite or create). Returns end time
   and bytes written. *)
let write_file st ~time ~user (f : dyn_file) ~kind =
  let nblocks = Op.blocks_of_bytes f.cur_bytes in
  let t = ref time in
  let written = ref 0 in
  for b = 0 to nblocks - 1 do
    let bytes = block_bytes f.cur_bytes b in
    emit st ~time:!t ~user ~f ~block:b ~kind ~bytes;
    written := !written + bytes;
    t := !t +. 0.01 +. Rng.float st.rng 0.05
  done;
  (!t, !written)

let delete_file st ~time ~user (f : dyn_file) =
  f.alive <- false;
  emit st ~time ~user ~f ~block:0 ~kind:Op.Delete ~bytes:f.cur_bytes

(* One burst: a handful of related files from the working directory,
   read with sub-second gaps.  Returns the end time. *)
let burst st ~time ~user ~dir =
  let nfiles = 6 + Rng.int st.rng 18 in
  let t = ref time in
  for _ = 1 to nfiles do
    let target_dir =
      (* Occasionally stray to a random directory the user can see. *)
      if Rng.float st.rng 1.0 < 0.1 then
        let ds = Namespace.dirs_for_user st.ns ~user in
        ds.(Rng.int st.rng (Array.length ds))
      else dir
    in
    (match pick_live_file st ~now:!t target_dir with
    | Some f -> t := read_file st ~time:!t ~user f
    | None -> ());
    (* Gap between files within the burst: mostly < 1 s, with
       occasional multi-second stalls so finer [inter] thresholds
       split tasks differently (paper Table 2). *)
    t := !t +. Rng.exponential st.rng ~mean:0.22;
    if Rng.float st.rng 1.0 < 0.08 then t := !t +. 1.0 +. Rng.float st.rng 3.0
  done;
  !t

(* A write episode sized to keep the day's churn on schedule.  Writes
   and deletions stay inside the user's own directories: per-user
   generation passes emit each user's week in one go, so mutating
   shared directories here would reorder against other users' reads
   in trace time. *)
let write_episode st ~time ~user ~dir =
  let dir =
    if st.ns.Namespace.dir_owner.(dir) = user then dir
    else begin
      (* Redirect to a random directory the user owns. *)
      let own = st.owned_dirs.(user) in
      own.(Rng.int st.rng (Array.length own))
    end
  in
  let t = ref time in
  let written = ref 0 in
  let removed = ref 0 in
  let choice = Rng.float st.rng 1.0 in
  if choice < 0.35 then begin
    (* Overwrite an existing file in place.  Bulk data files are not
       rewritten whole — that would blow the daily write budget in one
       op; users overwrite documents and code, not archives. *)
    match pick_live_file st ~now:!t dir with
    | Some f when f.cur_bytes <= 2 * 1024 * 1024 ->
        let t', w = write_file st ~time:!t ~user f ~kind:Op.Write in
        t := t';
        written := w
    | Some _ | None -> ()
  end
  else if choice < 0.75 then begin
    (* Temporary file: create now, delete within the same episode
       (exercises D2-Store's delayed removal and keeps locality). *)
    let bytes = 1024 + Rng.int st.rng (128 * 1024) in
    let f = create_file st ~now:!t ~dir ~bytes ~temp:true in
    let t', w = write_file st ~time:!t ~user f ~kind:Op.Create in
    written := w;
    let t' = t' +. 2.0 +. Rng.float st.rng 30.0 in
    delete_file st ~time:t' ~user f;
    removed := bytes;
    t := t' +. 0.1
  end
  else begin
    (* Persistent new file, balanced by deleting old files of roughly
       the same total size so the data set stays in steady state. *)
    let bytes = 4096 + Rng.int st.rng (512 * 1024) in
    let f = create_file st ~now:!t ~dir ~bytes ~temp:false in
    let t', w = write_file st ~time:!t ~user f ~kind:Op.Create in
    t := t' +. 0.2;
    written := w;
    let attempts = ref 0 in
    while !removed < w && !attempts < 6 do
      incr attempts;
      match pick_live_file st ~now:!t dir with
      | Some victim when victim.id <> f.id ->
          delete_file st ~time:!t ~user victim;
          removed := !removed + victim.cur_bytes;
          t := !t +. 0.1
      | Some _ | None -> attempts := 6
    done
  end;
  (!t, !written, !removed)

let think_time rng =
  let u = Rng.float rng 1.0 in
  if u < 0.45 then 5.0 +. Rng.float rng 20.0
  else if u < 0.80 then 25.0 +. Rng.float rng 85.0
  else 120.0 +. Rng.float rng 360.0

let generate ~rng ?(params = default_params) () =
  if params.users <= 0 then invalid_arg "Harvard.generate: users must be positive";
  if params.days <= 0.0 then invalid_arg "Harvard.generate: days must be positive";
  let ns_rng = Rng.split rng in
  let ns =
    Namespace.generate ~rng:ns_rng ~users:params.users
      ~target_bytes:params.target_bytes ()
  in
  let ndirs = Array.length ns.Namespace.dirs in
  let owned_dirs =
    Array.init params.users (fun user ->
        let acc = ref [] in
        Array.iteri
          (fun d owner -> if owner = user then acc := d :: !acc)
          ns.Namespace.dir_owner;
        Array.of_list (List.rev !acc))
  in
  Array.iter
    (fun own -> if Array.length own = 0 then invalid_arg "Harvard.generate: a user owns no directories")
    owned_dirs;
  let st =
    {
      rng;
      ns;
      files = Vec.create ();
      dir_live = Array.init ndirs (fun _ -> Vec.create ());
      owned_dirs;
      ops = Vec.create ();
      next_file_id = Array.length ns.Namespace.files;
      temp_counter = 0;
    }
  in
  Array.iteri
    (fun i (info : Op.file_info) ->
      let dir = ns.Namespace.file_dir.(i) in
      Vec.push st.files
        {
          id = info.Op.file_id;
          dir;
          path = info.Op.file_path;
          created_at = 0.0;
          cur_bytes = info.Op.file_bytes;
          alive = true;
        };
      Vec.push st.dir_live.(dir) i)
    ns.Namespace.files;
  let ndays = int_of_float (ceil params.days) in
  let daily_write_budget_per_user =
    params.daily_churn *. float_of_int params.target_bytes
    /. float_of_int params.users
  in
  (* Per-user favourite-directory ordering: shuffle then zipf ranks. *)
  for user = 0 to params.users - 1 do
    let user_rng = Rng.split rng in
    let dirs = Namespace.dirs_for_user st.ns ~user in
    Rng.shuffle user_rng dirs;
    let dir_zipf = Zipf.create ~n:(Array.length dirs) ~s:1.1 in
    for d = 0 to ndays - 1 do
      let day_start = float_of_int d *. day in
      if day_start < params.days *. day then begin
        let weekend = d mod 7 = 5 || d mod 7 = 6 in
        let density = params.reads_per_user_day /. default_params.reads_per_user_day in
        let activity = density *. if weekend then 0.25 else 1.0 in
        let nsessions =
          max 1 (int_of_float (activity *. float_of_int (1 + Rng.int user_rng 3)))
        in
        let write_budget = daily_write_budget_per_user *. activity in
        for _ = 1 to nsessions do
          let start = day_start +. (9.0 *. hour) +. Rng.float user_rng (9.0 *. hour) in
          let session_len = (8.0 +. Rng.float user_rng 30.0) *. 60.0 in
          let session_end = min (start +. session_len) (params.days *. day -. 1.0) in
          let session_budget = write_budget /. float_of_int nsessions in
          let written_session = ref 0 in
          let t = ref start in
          let bursts = ref 0 in
          let current_dir = ref dirs.(Zipf.sample dir_zipf user_rng) in
          while !t < session_end && !bursts < 14 do
            incr bursts;
            if Rng.float user_rng 1.0 < 0.3 then
              current_dir := dirs.(Zipf.sample dir_zipf user_rng);
            t := burst st ~time:!t ~user ~dir:!current_dir;
            if float_of_int !written_session < session_budget
               && Rng.float user_rng 1.0 < 0.6
            then begin
              let t', w, _r = write_episode st ~time:!t ~user ~dir:!current_dir in
              t := t';
              written_session := !written_session + w
            end;
            t := !t +. think_time user_rng
          done
        done
      end
    done
  done;
  Vec.sort_by_float st.ops ~key:(fun o -> o.Op.time);
  let ops = Vec.to_array st.ops in
  (* A burst that started near the end of the last session may run a
     little past the nominal horizon; extend the duration to cover it. *)
  let duration =
    let nominal = params.days *. day in
    if Array.length ops = 0 then nominal
    else Float.max nominal (ops.(Array.length ops - 1).Op.time +. 1.0)
  in
  let trace =
    {
      Op.name = "harvard";
      duration;
      users = params.users;
      ops;
      initial_files = ns.Namespace.files;
    }
  in
  Op.validate trace;
  trace
