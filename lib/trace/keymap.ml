module Key = D2_keyspace.Key
module Encoding = D2_keyspace.Encoding
module Keygen = D2_keyspace.Keygen
module Hashing = D2_keyspace.Hashing

type mode = D2 | Traditional | Traditional_file

let mode_name = function
  | D2 -> "d2"
  | Traditional -> "traditional"
  | Traditional_file -> "traditional-file"

(* Per-directory slot table: child name -> slot, plus a next-slot
   cursor.  Directories are identified by their full path string. *)
type dir_slots = {
  children : (string, int) Hashtbl.t;
  mutable next : int;
}

type t = {
  mode : mode;
  volume : string;
  vol_id : string;
  dirs : (string, dir_slots) Hashtbl.t;
  slot_cache : (string, int list) Hashtbl.t;  (** full path -> slot path *)
}

let create mode ~volume =
  {
    mode;
    volume;
    vol_id = Encoding.volume_id volume;
    dirs = Hashtbl.create 256;
    slot_cache = Hashtbl.create 1024;
  }

let dir_slots t dir =
  match Hashtbl.find_opt t.dirs dir with
  | Some d -> d
  | None ->
      let d = { children = Hashtbl.create 8; next = 1 } in
      Hashtbl.replace t.dirs dir d;
      d

let slot_for t ~dir ~name =
  let d = dir_slots t dir in
  match Hashtbl.find_opt d.children name with
  | Some s -> s
  | None ->
      let s =
        if d.next <= Encoding.max_slot then begin
          let s = d.next in
          d.next <- d.next + 1;
          s
        end
        else
          (* Slot space exhausted: hash the name (paper §4.2 fn. 2). *)
          1 + Int64.to_int (Int64.rem (Hashing.int64_of name) (Int64.of_int Encoding.max_slot))
      in
      Hashtbl.replace d.children name s;
      s

let slot_path t ~path =
  match Hashtbl.find_opt t.slot_cache path with
  | Some slots -> slots
  | None ->
      let comps = List.filter (fun c -> c <> "") (String.split_on_char '/' path) in
      let rec walk dir acc = function
        | [] -> List.rev acc
        | name :: rest ->
            let s = slot_for t ~dir ~name in
            let child = dir ^ "/" ^ name in
            walk child (s :: acc) rest
      in
      let slots = walk "" [] comps in
      Hashtbl.replace t.slot_cache path slots;
      slots

let key_of t ~path ~block =
  match t.mode with
  | D2 ->
      Encoding.of_slot_path ~volume:t.vol_id ~slots:(slot_path t ~path)
        ~block:(Int64.of_int (2 + block))
        ~version:0l
  | Traditional ->
      Keygen.traditional_block ~volume:t.volume ~path
        ~block:(Int64.of_int (1 + block))
        ~version:0l
  | Traditional_file ->
      Keygen.traditional_file ~volume:t.volume ~path
        ~block:(Int64.of_int (1 + block))
        ~version:0l

let key_of_op t (o : Op.op) = key_of t ~path:o.Op.path ~block:o.Op.block
