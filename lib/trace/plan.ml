module Key = D2_keyspace.Key

(* Kind codes for the unboxed kind column. *)
let kind_read = 0
let kind_write = 1
let kind_create = 2
let kind_delete = 3

let kind_code = function
  | Op.Read -> kind_read
  | Op.Write -> kind_write
  | Op.Create -> kind_create
  | Op.Delete -> kind_delete

let kind_of_code = function
  | 0 -> Op.Read
  | 1 -> Op.Write
  | 2 -> Op.Create
  | 3 -> Op.Delete
  | c -> invalid_arg (Printf.sprintf "Plan.kind_of_code: %d" c)

type key_policy = Writes_only | Reads_and_writes

let policy_name = function
  | Writes_only -> "writes"
  | Reads_and_writes -> "reads+writes"

type keyset = { op_keys : Key.t array; init_keys : Key.t array }

type t = {
  trace : Op.t;
  n : int;
  times : float array;
  users : int array;
  files : int array;
  blocks : int array;
  bytes : int array;
  kinds : int array;
  path_ids : int array;
  paths : string array;
  init_files : int array;
  init_path_ids : int array;
  init_offsets : int array;
  init_sizes : int array;
  keys : keyset D2_util.Memo.t;
}

let trace t = t.trace
let length t = t.n
let path t i = t.paths.(t.path_ids.(i))

let compile (tr : Op.t) =
  let n = Array.length tr.Op.ops in
  let nf = Array.length tr.Op.initial_files in
  let times = Array.make n 0.0 in
  let users = Array.make n 0 in
  let files = Array.make n 0 in
  let blocks = Array.make n 0 in
  let bytes = Array.make n 0 in
  let kinds = Array.make n 0 in
  let path_ids = Array.make n 0 in
  let interned : (string, int) Hashtbl.t = Hashtbl.create (4 * (nf + 16)) in
  let paths = D2_util.Vec.create () in
  let intern p =
    match Hashtbl.find_opt interned p with
    | Some id -> id
    | None ->
        let id = D2_util.Vec.length paths in
        D2_util.Vec.push paths p;
        Hashtbl.replace interned p id;
        id
  in
  (* Initial files first: their paths (and, during key building, their
     directory slots) come before any op's, matching the order
     {!System.load_initial} touches the keymap. *)
  let init_files = Array.make nf 0 in
  let init_path_ids = Array.make nf 0 in
  let init_offsets = Array.make (nf + 1) 0 in
  let total_blocks = ref 0 in
  Array.iteri
    (fun f (fi : Op.file_info) ->
      init_files.(f) <- fi.Op.file_id;
      init_path_ids.(f) <- intern fi.Op.file_path;
      init_offsets.(f) <- !total_blocks;
      total_blocks := !total_blocks + Op.blocks_of_bytes fi.Op.file_bytes)
    tr.Op.initial_files;
  init_offsets.(nf) <- !total_blocks;
  let init_sizes = Array.make !total_blocks 0 in
  Array.iteri
    (fun f (fi : Op.file_info) ->
      let off = init_offsets.(f) in
      let nblocks = init_offsets.(f + 1) - off in
      for b = 0 to nblocks - 1 do
        init_sizes.(off + b) <-
          (if b = nblocks - 1 then begin
             let rem = fi.Op.file_bytes - (b * Op.block_size) in
             if rem = 0 then Op.block_size else rem
           end
           else Op.block_size)
      done)
    tr.Op.initial_files;
  Array.iteri
    (fun i (o : Op.op) ->
      times.(i) <- o.Op.time;
      users.(i) <- o.Op.user;
      files.(i) <- o.Op.file;
      blocks.(i) <- o.Op.block;
      bytes.(i) <- o.Op.bytes;
      kinds.(i) <- kind_code o.Op.kind;
      path_ids.(i) <- intern o.Op.path)
    tr.Op.ops;
  {
    trace = tr;
    n;
    times;
    users;
    files;
    blocks;
    bytes;
    kinds;
    path_ids;
    paths = D2_util.Vec.to_array paths;
    init_files;
    init_path_ids;
    init_offsets;
    init_sizes;
    keys = D2_util.Memo.create ();
  }

(* One compiled plan per trace, shared across every experiment, setup,
   node count and seed that replays it.  Keyed by physical identity —
   traces are memoized upstream ({!D2_experiments.Data}) and few, so a
   short association list under a mutex suffices and cannot confuse
   same-named traces generated at different scales. *)
let cache_mu = Mutex.create ()
let cache : (Op.t * t) list ref = ref []

let of_trace tr =
  Mutex.lock cache_mu;
  match List.find_opt (fun (t0, _) -> t0 == tr) !cache with
  | Some (_, plan) ->
      Mutex.unlock cache_mu;
      plan
  | None ->
      (* Compiling under the lock is fine: it is a few ms and only the
         first replay of a given trace pays it. *)
      let plan =
        match compile tr with
        | plan ->
            cache := (tr, plan) :: !cache;
            plan
        | exception e ->
            Mutex.unlock cache_mu;
            raise e
      in
      Mutex.unlock cache_mu;
      plan

(* Walk a fresh keymap in exactly the order the legacy replay loops
   touch it: every initial file's blocks in file order, then the ops in
   trace order.  Which op kinds assign directory slots depends on the
   consumer: the §10 balance replay only keys mutations, while the §8
   availability and §9 performance replays also key every read.  Reads
   of never-written paths then claim slots, so the two policies can
   yield different D2 slot paths — each consumer must ask for the
   policy its legacy loop implemented. *)
let build_keys t ~mode ~volume ~policy =
  let km = Keymap.create mode ~volume in
  let nf = Array.length t.init_files in
  let init_keys = Array.make t.init_offsets.(nf) Key.zero in
  for f = 0 to nf - 1 do
    let path = t.paths.(t.init_path_ids.(f)) in
    let off = t.init_offsets.(f) in
    for j = off to t.init_offsets.(f + 1) - 1 do
      init_keys.(j) <- Keymap.key_of km ~path ~block:(j - off)
    done
  done;
  let op_keys = Array.make t.n Key.zero in
  for i = 0 to t.n - 1 do
    let k = t.kinds.(i) in
    if
      k = kind_write || k = kind_create
      || (k = kind_read && policy = Reads_and_writes)
    then op_keys.(i) <- Keymap.key_of km ~path:t.paths.(t.path_ids.(i)) ~block:t.blocks.(i)
  done;
  { op_keys; init_keys }

let replay_keys ?(volume = "vol") t ~mode ~policy =
  let key = Printf.sprintf "replay|%s|%s|%s" (Keymap.mode_name mode) volume (policy_name policy) in
  D2_util.Memo.get t.keys key (fun () -> build_keys t ~mode ~volume ~policy)

let init_keys t ~mode ~volume =
  let key = Printf.sprintf "init|%s|%s" (Keymap.mode_name mode) volume in
  (D2_util.Memo.get t.keys key (fun () ->
       let km = Keymap.create mode ~volume in
       let nf = Array.length t.init_files in
       let init_keys = Array.make t.init_offsets.(nf) Key.zero in
       for f = 0 to nf - 1 do
         let path = t.paths.(t.init_path_ids.(f)) in
         let off = t.init_offsets.(f) in
         for j = off to t.init_offsets.(f + 1) - 1 do
           init_keys.(j) <- Keymap.key_of km ~path ~block:(j - off)
         done
       done;
       { op_keys = [||]; init_keys }))
    .init_keys
