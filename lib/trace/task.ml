module Vec = D2_util.Vec

type t = { user : int; start : float; stop : float; ops : Op.op array }

(* One pass over the trace, accumulating per-user runs.  Also labels
   every op with the (eventual) index of its task in the start-sorted
   result, so callers can map replay outcomes back onto tasks. *)
let cut (trace : Op.t) ~inter ~max_duration =
  let out = Vec.create () in
  let labels = Array.make (Array.length trace.Op.ops) (-1) in
  let current : (Op.op * int) Vec.t array =
    Array.init trace.Op.users (fun _ -> Vec.create ())
  in
  let start_time = Array.make trace.Op.users 0.0 in
  let last_time = Array.make trace.Op.users neg_infinity in
  let flush user =
    let v = current.(user) in
    if Vec.length v > 0 then begin
      let pairs = Vec.to_array v in
      Vec.push out
        ( {
            user;
            start = start_time.(user);
            stop = last_time.(user);
            ops = Array.map fst pairs;
          },
          Array.map snd pairs );
      Vec.clear v
    end
  in
  Array.iteri
    (fun i (o : Op.op) ->
      let u = o.Op.user in
      let gap_too_big = o.Op.time -. last_time.(u) >= inter in
      let too_long =
        match max_duration with
        | Some d -> Vec.length current.(u) > 0 && o.Op.time -. start_time.(u) > d
        | None -> false
      in
      if gap_too_big || too_long then begin
        flush u;
        start_time.(u) <- o.Op.time
      end;
      Vec.push current.(u) (o, i);
      last_time.(u) <- o.Op.time)
    trace.Op.ops;
  for u = 0 to trace.Op.users - 1 do
    flush u
  done;
  Vec.sort_by_float out ~key:(fun (a, _) -> a.start);
  let tasks = Array.map fst (Vec.to_array out) in
  Array.iteri
    (fun task_idx (_, op_indices) ->
      Array.iter (fun i -> labels.(i) <- task_idx) op_indices)
    (Vec.to_array out);
  (tasks, labels)

let segment_labeled trace ~inter ?(max_duration = 300.0) () =
  if inter <= 0.0 then invalid_arg "Task.segment_labeled: inter must be positive";
  cut trace ~inter ~max_duration:(Some max_duration)

let segment trace ~inter ?(max_duration = 300.0) () =
  if inter <= 0.0 then invalid_arg "Task.segment: inter must be positive";
  fst (cut trace ~inter ~max_duration:(Some max_duration))

let access_groups ?(think = 1.0) trace = fst (cut trace ~inter:think ~max_duration:None)

let access_groups_labeled ?(think = 1.0) trace = cut trace ~inter:think ~max_duration:None

let distinct_blocks t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (o : Op.op) -> Hashtbl.replace tbl (o.Op.file, o.Op.block) ())
    t.ops;
  Hashtbl.length tbl

let distinct_files t =
  let tbl = Hashtbl.create 16 in
  Array.iter (fun (o : Op.op) -> Hashtbl.replace tbl o.Op.file ()) t.ops;
  Hashtbl.length tbl

let mean_over tasks f =
  let n = Array.length tasks in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun a t -> a + f t) 0 tasks in
    float_of_int acc /. float_of_int n
  end
