module Rng = D2_util.Rng
module Vec = D2_util.Vec
module Zipf = D2_util.Zipf

type params = {
  apps : int;
  days : float;
  disk_blocks : int;
  runs_per_app_day : float;
  write_fraction : float;
}

let default_params =
  {
    apps = 40;
    days = 7.0;
    disk_blocks = 131072;
    runs_per_app_day = 120.0;
    write_fraction = 0.3;
  }

(* Zero-padded 12-digit block path, written by hand: this runs once
   per emitted op, and [Printf.sprintf "%012d"] was the generator's
   single hottest call. *)
let block_name_uncached b =
  let buf = Bytes.make 12 '0' in
  let rec go b i =
    if b > 0 then begin
      Bytes.unsafe_set buf i (Char.unsafe_chr (Char.code '0' + (b mod 10)));
      go (b / 10) (i - 1)
    end
  in
  go b 11;
  Bytes.unsafe_to_string buf

let block_name = block_name_uncached

let day = 86400.0

let generate ~rng ?(params = default_params) () =
  if params.apps <= 0 then invalid_arg "Hp.generate: apps must be positive";
  if params.disk_blocks <= 0 then invalid_arg "Hp.generate: disk_blocks must be positive";
  (* Carve the disk into allocation regions of a few MB each; an
     application's working set is a handful of regions. *)
  let region_blocks = 512 in
  let nregions = max 1 (params.disk_blocks / region_blocks) in
  (* Blocks are revisited constantly (zipf working sets), so paths are
     interned per disk block and formatted at most once each. *)
  let names = Array.make params.disk_blocks "" in
  let block_name b =
    let s = Array.unsafe_get names b in
    if String.length s > 0 then s
    else begin
      let s = block_name_uncached b in
      Array.unsafe_set names b s;
      s
    end
  in
  let ops = Vec.create () in
  for app = 0 to params.apps - 1 do
    let app_rng = Rng.split rng in
    (* Working set: 2–8 regions, zipf-weighted. *)
    let nwork = 2 + Rng.int app_rng 7 in
    let work = Array.init nwork (fun _ -> Rng.int app_rng nregions) in
    let wz = Zipf.create ~n:nwork ~s:1.0 in
    let total_runs =
      int_of_float (params.runs_per_app_day *. params.days)
    in
    let t = ref (Rng.float app_rng 600.0) in
    for _ = 1 to total_runs do
      let region = work.(Zipf.sample wz app_rng) in
      let base = region * region_blocks in
      let run_len =
        min region_blocks
          (max 1 (int_of_float (Rng.pareto app_rng ~shape:1.4 ~scale:8.0)))
      in
      let start = base + Rng.int app_rng (max 1 (region_blocks - run_len)) in
      let writing = Rng.float app_rng 1.0 < params.write_fraction in
      for i = 0 to run_len - 1 do
        let b = start + i in
        Vec.push ops
          {
            Op.time = !t;
            user = app;
            path = block_name b;
            file = region;
            block = 0;
            kind = (if writing then Op.Write else Op.Read);
            bytes = Op.block_size;
          };
        t := !t +. 0.005 +. Rng.float app_rng 0.05
      done;
      (* Inter-run think time spreads runs across the day. *)
      t := !t +. Rng.exponential app_rng ~mean:(params.days *. day /. float_of_int total_runs)
    done
  done;
  Vec.sort_by_float ops ~key:(fun o -> o.Op.time);
  let arr = Vec.to_array ops in
  let duration =
    if Array.length arr = 0 then params.days *. day
    else Float.max (params.days *. day) (arr.(Array.length arr - 1).Op.time +. 1.0)
  in
  let initial_files =
    Array.init nregions (fun r ->
        {
          Op.file_id = r;
          file_path = block_name (r * region_blocks);
          file_bytes = region_blocks * Op.block_size;
        })
  in
  let trace =
    {
      Op.name = "hp";
      duration;
      users = params.apps;
      ops = arr;
      initial_files;
    }
  in
  Op.validate trace;
  trace
