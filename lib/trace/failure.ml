module Rng = D2_util.Rng
module Vec = D2_util.Vec

type event = { time : float; node : int; up : bool }

type t = { n : int; duration : float; events : event array }

type params = {
  mttf : float;
  mttr : float;
  correlated_events : int;
  correlated_fraction : float;
  correlated_outage : float;
}

let default_params =
  {
    mttf = 3.5 *. 86400.0;
    mttr = 2.0 *. 3600.0;
    correlated_events = 5;
    correlated_fraction = 0.3;
    correlated_outage = 2.5 *. 3600.0;
  }

let generate ~rng ~n ~duration ?(params = default_params) () =
  if n <= 0 then invalid_arg "Failure.generate: n must be positive";
  if duration <= 0.0 then invalid_arg "Failure.generate: duration must be positive";
  let events = Vec.create () in
  (* Independent per-node up/down renewal process. *)
  for node = 0 to n - 1 do
    let nrng = Rng.split rng in
    let t = ref (Rng.exponential nrng ~mean:params.mttf) in
    let up = ref false in
    (* [up = false] means the next event is a failure (node currently up). *)
    while !t < duration do
      Vec.push events { time = !t; node; up = !up };
      let dwell =
        if !up then Rng.exponential nrng ~mean:params.mttf
        else Rng.exponential nrng ~mean:params.mttr
      in
      up := not !up;
      t := !t +. dwell
    done
  done;
  (* Correlated mass-failure events.  Placed during working hours so
     that the failure process overlaps the (diurnal) workload the way
     the paper's high-failure PlanetLab week overlapped its trace. *)
  let crng = Rng.split rng in
  for _ = 1 to params.correlated_events do
    let day = 86400.0 *. float_of_int (Rng.int crng (max 1 (int_of_float (duration /. 86400.0)))) in
    let t = Float.min (duration *. 0.95) (day +. (8.0 *. 3600.0) +. Rng.float crng (10.0 *. 3600.0)) in
    let count =
      max 1 (int_of_float (params.correlated_fraction *. float_of_int n))
    in
    let victims = Array.init n (fun i -> i) in
    Rng.shuffle crng victims;
    for i = 0 to count - 1 do
      let node = victims.(i) in
      let outage = Rng.exponential crng ~mean:params.correlated_outage in
      let recover = min (t +. max 300.0 outage) duration in
      Vec.push events { time = t; node; up = false };
      if recover < duration then Vec.push events { time = recover; node; up = true }
    done
  done;
  Vec.sort_by_float events ~key:(fun e -> e.time);
  (* Normalize: drop events that do not change the node's state (the
     independent process and correlated events can overlap). *)
  let state = Array.make n true in
  let cleaned = Vec.create () in
  Vec.iter
    (fun e ->
      if state.(e.node) <> e.up then begin
        state.(e.node) <- e.up;
        Vec.push cleaned e
      end)
    events;
  { n; duration; events = Vec.to_array cleaned }

let up_fraction_at t time =
  let state = Array.make t.n true in
  Array.iter (fun e -> if e.time <= time then state.(e.node) <- e.up) t.events;
  let up = Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 state in
  float_of_int up /. float_of_int t.n

let validate t =
  let state = Array.make t.n true in
  let prev = ref neg_infinity in
  Array.iter
    (fun e ->
      if e.time < !prev then invalid_arg "Failure.validate: events out of order";
      prev := e.time;
      if e.node < 0 || e.node >= t.n then invalid_arg "Failure.validate: bad node";
      if state.(e.node) = e.up then
        invalid_arg "Failure.validate: event does not change state";
      state.(e.node) <- e.up)
    t.events
