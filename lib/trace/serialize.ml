let kind_to_string = function
  | Op.Read -> "R"
  | Op.Write -> "W"
  | Op.Create -> "C"
  | Op.Delete -> "D"

let kind_of_string line = function
  | "R" -> Op.Read
  | "W" -> Op.Write
  | "C" -> Op.Create
  | "D" -> Op.Delete
  | other -> invalid_arg (Printf.sprintf "Serialize.load: line %d: bad kind %S" line other)

let check_path line path =
  if String.contains path '\t' || String.contains path '\n' then
    invalid_arg (Printf.sprintf "Serialize: line %d: path contains separator" line);
  path

let save (t : Op.t) oc =
  Printf.fprintf oc "# d2-trace v1\n";
  Printf.fprintf oc "name\t%s\n" (check_path 0 t.Op.name);
  Printf.fprintf oc "duration\t%h\n" t.Op.duration;
  Printf.fprintf oc "users\t%d\n" t.Op.users;
  Printf.fprintf oc "files\t%d\n" (Array.length t.Op.initial_files);
  Array.iter
    (fun (f : Op.file_info) ->
      Printf.fprintf oc "%d\t%d\t%s\n" f.Op.file_id f.Op.file_bytes
        (check_path 0 f.Op.file_path))
    t.Op.initial_files;
  Printf.fprintf oc "ops\t%d\n" (Array.length t.Op.ops);
  Array.iter
    (fun (o : Op.op) ->
      Printf.fprintf oc "%h\t%d\t%s\t%d\t%d\t%d\t%s\n" o.Op.time o.Op.user
        (kind_to_string o.Op.kind) o.Op.file o.Op.block o.Op.bytes
        (check_path 0 o.Op.path))
    t.Op.ops

let save_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save t oc)

type reader = { ic : in_channel; mutable line : int }

let next r =
  r.line <- r.line + 1;
  try input_line r.ic
  with End_of_file ->
    invalid_arg (Printf.sprintf "Serialize.load: unexpected end of file at line %d" r.line)

let fail r fmt = Printf.ksprintf (fun s ->
    invalid_arg (Printf.sprintf "Serialize.load: line %d: %s" r.line s)) fmt

(* Split [line] on tabs into exactly [expected] fields.  This runs
   once per op line when loading a trace, so it cuts substrings
   directly out of the line instead of going through
   [String.split_on_char] (which allocated a list cell per field and
   then walked it again for [List.length]). *)
let fields r expected line =
  let got = ref 1 in
  String.iter (fun c -> if c = '\t' then incr got) line;
  if !got <> expected then fail r "expected %d fields, got %d" expected !got;
  let out = Array.make expected "" in
  let start = ref 0 in
  for i = 0 to expected - 2 do
    let j = String.index_from line !start '\t' in
    out.(i) <- String.sub line !start (j - !start);
    start := j + 1
  done;
  out.(expected - 1) <- String.sub line !start (String.length line - !start);
  out

let tagged r tag =
  let fs = fields r 2 (next r) in
  if fs.(0) <> tag then fail r "expected %S, got %S" tag fs.(0);
  fs.(1)

let int_of r s = match int_of_string_opt s with
  | Some v -> v
  | None -> fail r "bad integer %S" s

let float_of r s = match float_of_string_opt s with
  | Some v -> v
  | None -> fail r "bad float %S" s

let load ic =
  let r = { ic; line = 0 } in
  (match next r with
  | "# d2-trace v1" -> ()
  | other -> fail r "bad header %S" other);
  let name = tagged r "name" in
  let duration = float_of r (tagged r "duration") in
  let users = int_of r (tagged r "users") in
  let nfiles = int_of r (tagged r "files") in
  let initial_files =
    Array.init nfiles (fun _ ->
        let fs = fields r 3 (next r) in
        {
          Op.file_id = int_of r fs.(0);
          file_bytes = int_of r fs.(1);
          file_path = fs.(2);
        })
  in
  let nops = int_of r (tagged r "ops") in
  let ops =
    Array.init nops (fun _ ->
        let fs = fields r 7 (next r) in
        {
          Op.time = float_of r fs.(0);
          user = int_of r fs.(1);
          kind = kind_of_string r.line fs.(2);
          file = int_of r fs.(3);
          block = int_of r fs.(4);
          bytes = int_of r fs.(5);
          path = fs.(6);
        })
  in
  let t = { Op.name; duration; users; ops; initial_files } in
  Op.validate t;
  t

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load ic)
