module Key = D2_keyspace.Key
module Cluster = D2_store.Cluster
module Engine = D2_simnet.Engine
module Op = D2_trace.Op
module Plan = D2_trace.Plan
module Rng = D2_util.Rng
module Stats = D2_util.Stats

(* Each live block remembers the key it was stored under, so deletes
   drop exactly what was put without re-deriving keys from the path. *)
type file_state = { blocks : (int, int * Key.t) Hashtbl.t }

type t = {
  mode : Keymap.mode;
  cluster : Cluster.t;
  keymap : Keymap.t;
  engine : Engine.t;
  files : (int, file_state) Hashtbl.t;
  mutable baseline : float;
}

let create ~engine ~mode ~rng ~nodes ?(config = Cluster.default_config)
    ?(volume = "vol") () =
  if nodes <= 0 then invalid_arg "System.create: nodes must be positive";
  let ids = Array.init nodes (fun _ -> Key.random rng) in
  let cluster = Cluster.create ~engine ~config ~ids in
  {
    mode;
    cluster;
    keymap = Keymap.create mode ~volume;
    engine;
    files = Hashtbl.create 1024;
    baseline = 0.0;
  }

let cluster t = t.cluster
let keymap t = t.keymap
let mode t = t.mode
let engine t = t.engine
let baseline_written t = t.baseline

let key_of_op t o = Keymap.key_of_op t.keymap o

let file_state t ~file =
  match Hashtbl.find_opt t.files file with
  | Some fs -> fs
  | None ->
      let fs = { blocks = Hashtbl.create 8 } in
      Hashtbl.replace t.files file fs;
      fs

let put_block_key t ~file ~block ~size ~key =
  let fs = file_state t ~file in
  Hashtbl.replace fs.blocks block (size, key);
  Cluster.put t.cluster ~key ~size ()

let put_block t ~path ~file ~block ~size =
  put_block_key t ~file ~block ~size ~key:(Keymap.key_of t.keymap ~path ~block)

let delete_file t ~file =
  match Hashtbl.find_opt t.files file with
  | None -> ()
  | Some fs ->
      Hashtbl.iter
        (fun _block (_size, key) -> Cluster.remove t.cluster ~key ())
        fs.blocks;
      Hashtbl.remove t.files file

let load_initial t (trace : Op.t) =
  let before = Cluster.written_bytes t.cluster in
  Array.iter
    (fun (fi : Op.file_info) ->
      let nblocks = Op.blocks_of_bytes fi.Op.file_bytes in
      for b = 0 to nblocks - 1 do
        let size =
          if b = nblocks - 1 then begin
            let rem = fi.Op.file_bytes - (b * Op.block_size) in
            if rem = 0 then Op.block_size else rem
          end
          else Op.block_size
        in
        put_block t ~path:fi.Op.file_path ~file:fi.Op.file_id ~block:b ~size
      done)
    trace.Op.initial_files;
  t.baseline <- t.baseline +. (Cluster.written_bytes t.cluster -. before)

let load_initial_plan t (plan : Plan.t) (keys : Plan.keyset) =
  let before = Cluster.written_bytes t.cluster in
  let nf = Array.length plan.Plan.init_files in
  for f = 0 to nf - 1 do
    let file = plan.Plan.init_files.(f) in
    let off = plan.Plan.init_offsets.(f) in
    for j = off to plan.Plan.init_offsets.(f + 1) - 1 do
      put_block_key t ~file ~block:(j - off) ~size:plan.Plan.init_sizes.(j)
        ~key:keys.Plan.init_keys.(j)
    done
  done;
  t.baseline <- t.baseline +. (Cluster.written_bytes t.cluster -. before)

let apply_op t (o : Op.op) =
  match o.Op.kind with
  | Op.Read -> ()
  | Op.Write | Op.Create ->
      put_block t ~path:o.Op.path ~file:o.Op.file ~block:o.Op.block ~size:o.Op.bytes
  | Op.Delete -> delete_file t ~file:o.Op.file

(* Plan-column variant of {!apply_op}: everything the op's effect needs
   is an unboxed array read plus the precomputed key — no record churn,
   no keymap probe. *)
let apply_plan_op t (plan : Plan.t) (keys : Plan.keyset) i =
  let k = plan.Plan.kinds.(i) in
  if k = Plan.kind_write || k = Plan.kind_create then
    put_block_key t ~file:plan.Plan.files.(i) ~block:plan.Plan.blocks.(i)
      ~size:plan.Plan.bytes.(i) ~key:keys.Plan.op_keys.(i)
  else if k = Plan.kind_delete then delete_file t ~file:plan.Plan.files.(i)

(* Batched owner resolution over a Plan key column: one pass, one
   unboxed int write per key, -1 for blocks that do not exist.  The
   cluster-level counterpart of {!D2_cache.Lookup_cache.resolve_into}:
   simulators resolving a whole task's keys call this once instead of
   allocating an option per [owner_of] probe. *)
let resolve_owners_into t keys out =
  let len = Array.length keys in
  if Array.length out < len then
    invalid_arg "System.resolve_owners_into: output shorter than input";
  for i = 0 to len - 1 do
    out.(i) <- Cluster.find_owner t.cluster ~key:(Array.unsafe_get keys i)
  done

let file_blocks t ~file =
  match Hashtbl.find_opt t.files file with
  | None -> []
  | Some fs ->
      List.sort compare
        (Hashtbl.fold (fun b (s, _key) acc -> (b, s) :: acc) fs.blocks [])

let attach_balancer t ~rng ?config ~until () =
  D2_balance.Balancer.attach ~cluster:t.cluster ~rng ?config ~until ()

let up_loads t =
  let n = Cluster.node_count t.cluster in
  let loads = ref [] in
  for i = 0 to n - 1 do
    let s = Cluster.node_stats t.cluster i in
    if s.Cluster.up then loads := float_of_int s.Cluster.physical_bytes :: !loads
  done;
  Array.of_list !loads

let imbalance t = Stats.normalized_stddev (up_loads t)

let max_over_mean_load t =
  let loads = up_loads t in
  let m = Stats.mean loads in
  if m = 0.0 then 0.0
  else Array.fold_left Float.max neg_infinity loads /. m
