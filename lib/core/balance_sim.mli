(** The §10 load-balance and overhead simulator (Figs. 16–17,
    Tables 3–4).

    Replays a workload's storage mutations (creates, overwrites,
    deletions) against one of four setups and records, over virtual
    time, the storage imbalance (normalized standard deviation of
    per-node stored bytes) plus daily traffic volumes:

    - [D2]: locality keys + Karger–Ruhl balancing with pointers;
    - [Traditional]: hashed block keys, consistent hashing only;
    - [Traditional_file]: hashed per-file keys, consistent hashing;
    - [Traditional_merc]: hashed block keys {e plus} active balancing
      (the paper's "Traditional+Merc" reference line in Fig. 16).

    The timeline matches §8.1: all initial data is inserted at time 0
    and the balancer (when present) runs for [warmup] before the trace
    starts; imbalance is sampled every [sample_interval] during the
    replay; daily counters are cluster-counter deltas at day
    boundaries of the trace clock. *)

type setup = D2 | Traditional | Traditional_file | Traditional_merc

val setup_name : setup -> string
val all_setups : setup list

type params = {
  nodes : int;
  seed : int;
  warmup : float;  (** paper: 3 days *)
  sample_interval : float;  (** paper plots hours; default 3600 s *)
  replicas : int;  (** default 3 *)
  use_pointers : bool;  (** D2 pointer optimization; default true *)
}

val default_params : nodes:int -> seed:int -> params

type result = {
  r_setup : setup;
  samples : (float * float) array;  (** (trace time, imbalance) *)
  max_over_mean : float;  (** time-averaged max/mean load *)
  daily_written_mb : float array;  (** W_i per trace day, MB *)
  daily_removed_mb : float array;  (** R_i *)
  daily_migrated_mb : float array;  (** L_i (load balancing only) *)
  total_at_day_start_mb : float array;  (** T_i *)
  balancer_moves : int;
}

val run : trace:D2_trace.Op.t -> setup:setup -> params:params -> result
(** Replays via the trace's compiled {!D2_trace.Plan} (shared columnar
    fields and precomputed keys). *)

val run_reference : trace:D2_trace.Op.t -> setup:setup -> params:params -> result
(** The original per-op-record replay, kept as the oracle for the
    plan-equivalence test; produces results identical to {!run}. *)
