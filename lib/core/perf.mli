(** The §9 performance simulator: lookup traffic and end-to-end
    latency of access groups.

    One {e pass} deploys a system of a given size and per-node access
    bandwidth, loads the (volume-replicated) data set, lets the
    balancer stabilize (D2), and replays the whole workload.  Outside
    the measurement windows the replay only maintains state — block
    positions, per-user range lookup caches, buffer-cache warmth.
    Inside the (deterministically chosen) 15-minute windows, every
    access group's completion latency is computed under both
    dependence extremes (paper §9.1):

    - {e seq}: accesses issue one after another; each pays its lookup
      (cache miss ⇒ O(log n) routed hops) and a TCP download whose
      window state persists per (client, server) connection;
    - {e para}: accesses issue concurrently, at most 15 in flight,
      and transfers serialize per server access link.

    Lookup messages and cache miss rates are accumulated over the
    measurement windows; group latencies are keyed by a stable group
    id so that passes of different system configurations can be
    compared group-by-group for speedups (geometric means, §9.3). *)

type config = {
  nodes : int;
  access_bandwidth : float;  (** bits/s: 1_500_000 or 384_000 *)
  replicas : int;  (** paper: 4 for the §9 experiments *)
  windows : int;  (** measurement windows; paper: 8 *)
  window_length : float;  (** seconds; paper: 900 *)
  max_in_flight : int;  (** paper: 15 *)
  cache_ttl : float;  (** paper: 4500 s *)
  warmup : float;  (** pre-trace balancing time (D2) *)
  base_nodes : int;  (** size at which the data set is 1x (paper: 200) *)
  shared_window : bool;
  (** STP-style transport (§9.3): one congestion window per client
      shared across destinations; default false (per-pair TCP) *)
  seed : int;
}

val default_config : nodes:int -> bandwidth:float -> config

type group_perf = { g_user : int; seq : float; para : float; fetched : int }

type fetch_desc = { ready : float; server : int; f_bytes : int }
(** One pending fetch of an access group: earliest issue time
    (relative to the group start), serving node, payload bytes. *)

val para_makespan :
  cfg:config ->
  conns:(int * int, D2_simnet.Tcp.conn) Hashtbl.t ->
  client:int ->
  topo:D2_simnet.Topology.t ->
  fetches:fetch_desc list ->
  float
(** Completion time of the parallel schedule: at most
    [cfg.max_in_flight] transfers in flight (earliest-free slot
    first), transfers serialized per server access link, TCP window
    state kept per [conn_key] in [conns].  [fetches] is in {e reverse}
    issue order, as accumulated during replay.  Exposed for the
    scheduling regression tests. *)

type pass = {
  p_mode : Keymap.mode;
  p_config : config;
  lookup_msgs_per_node : float;  (** Fig. 9 metric *)
  miss_rate : float;  (** mean per-user lookup cache miss rate, Fig. 13 *)
  window_hits : int;  (** total in-window lookup-cache hits, all users *)
  window_misses : int;  (** total in-window lookup-cache misses *)
  groups : (int, group_perf) Hashtbl.t;  (** stable group id -> latencies *)
}

val run_pass : trace:D2_trace.Op.t -> mode:Keymap.mode -> config:config -> pass

type speedup = {
  overall : float;  (** geometric mean over users of per-user geo-means *)
  per_user : (int * float) array;  (** sorted by user id *)
  groups_compared : int;
}

val speedup :
  baseline:pass -> improved:pass -> which:[ `Seq | `Para ] -> speedup
(** Per-group latency ratios baseline/improved (> 1 ⇒ [improved]
    faster), aggregated as the paper does: geometric mean per user,
    then across users.  Groups with zero latency in either pass (all
    buffer-cache hits) are skipped. *)

val latency_pairs :
  baseline:pass -> improved:pass -> which:[ `Seq | `Para ] -> (float * float) array
(** (baseline, improved) completion-time pairs for the scatter plots
    of Figs. 14–15. *)
