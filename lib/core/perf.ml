module Op = D2_trace.Op
module Plan = D2_trace.Plan
module Task = D2_trace.Task
module Key = D2_keyspace.Key
module Cluster = D2_store.Cluster
module Ring = D2_dht.Ring
module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Tcp = D2_simnet.Tcp
module Rng = D2_util.Rng
module Stats = D2_util.Stats
module Lookup_cache = D2_cache.Lookup_cache
module Block_cache = D2_cache.Block_cache

type config = {
  nodes : int;
  access_bandwidth : float;
  replicas : int;
  windows : int;
  window_length : float;
  max_in_flight : int;
  cache_ttl : float;
  warmup : float;
  base_nodes : int;
  shared_window : bool;
  (** STP-style transport (§9.3 discussion): one congestion window per
      client shared across all destinations, instead of per-(client,
      server) TCP state — avoids per-flow slow-start at the cost of
      false sharing.  Default false (plain TCP, the paper's testbed). *)
  seed : int;
}

let default_config ~nodes ~bandwidth =
  {
    nodes;
    access_bandwidth = bandwidth;
    replicas = 4;
    windows = 8;
    window_length = 900.0;
    max_in_flight = 15;
    cache_ttl = 4500.0;
    warmup = 1.0 *. 86400.0;
    base_nodes = 200;
    shared_window = false;
    seed = 42;
  }

(* Connection-table key: per-pair TCP or per-client shared window. *)
let conn_key cfg ~client ~server =
  if cfg.shared_window then (client, -1) else (client, server)

type group_perf = { g_user : int; seq : float; para : float; fetched : int }

type pass = {
  p_mode : Keymap.mode;
  p_config : config;
  lookup_msgs_per_node : float;
  miss_rate : float;
  window_hits : int;
  window_misses : int;
  groups : (int, group_perf) Hashtbl.t;
}

(* One pending fetch inside an access group (for the para schedule). *)
type fetch_desc = { ready : float; server : int; f_bytes : int }

type group_accum = {
  ga_user : int;
  mutable seq_clock : float;  (** accumulated sequential latency *)
  mutable fetches : fetch_desc list;  (** reverse order *)
  mutable count : int;
}

let pick_windows ~rng ~cfg ~duration =
  let day = 86400.0 in
  let ndays = max 1 (min 5 (int_of_float (duration /. day))) in
  List.init cfg.windows (fun _ ->
      let d = Rng.int rng ndays in
      let start =
        (float_of_int d *. day)
        +. (9.0 *. 3600.0)
        +. Rng.float rng ((9.0 *. 3600.0) -. cfg.window_length)
      in
      (start, start +. cfg.window_length))

let in_windows windows time =
  List.exists (fun (a, b) -> time >= a && time < b) windows

(* Para makespan: list scheduling with [slots] concurrent transfers and
   per-server link serialization; per-(client,server) TCP state.
   Slots are interchangeable, so only the multiset of their free times
   matters: a min-heap replaces the per-fetch linear scan over
   [max_in_flight] slots. *)
let para_makespan ~cfg ~conns ~client ~topo ~fetches =
  let slots = D2_util.Heap.create ~cmp:Float.compare in
  for _ = 1 to cfg.max_in_flight do
    D2_util.Heap.push slots 0.0
  done;
  let server_free : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let finish = ref 0.0 in
  List.iter
    (fun fd ->
      (* Take the earliest-free slot. *)
      let slot_free = D2_util.Heap.pop_exn slots in
      let ready = Float.max fd.ready slot_free in
      let sfree =
        match Hashtbl.find_opt server_free fd.server with Some v -> v | None -> 0.0
      in
      let start = Float.max ready sfree in
      let ck = conn_key cfg ~client ~server:fd.server in
      let conn =
        match Hashtbl.find_opt conns ck with
        | Some c -> c
        | None ->
            let c = Tcp.fresh_conn () in
            Hashtbl.replace conns ck c;
            c
      in
      let rtt = Topology.rtt topo client fd.server in
      let dur =
        Tcp.transfer_time conn ~now:start ~rtt ~bandwidth:cfg.access_bandwidth
          ~bytes:fd.f_bytes
      in
      let stop = start +. dur in
      D2_util.Heap.push slots stop;
      Hashtbl.replace server_free fd.server stop;
      if stop > !finish then finish := stop)
    (List.rev fetches);
  !finish

let run_pass ~trace ~mode ~config:cfg =
  (* Draws that must match across modes (windows, clients, topology)
     come from [shared_rng]; mode-dependent draws from [mode_rng]. *)
  let shared_rng = Rng.create cfg.seed in
  let mode_rng = Rng.create (cfg.seed + (Hashtbl.hash (Keymap.mode_name mode) land 0xffff)) in
  let engine = Engine.create () in
  let cluster_config =
    { Cluster.default_config with Cluster.replicas = cfg.replicas }
  in
  let system =
    System.create ~engine ~mode ~rng:(Rng.split mode_rng) ~nodes:cfg.nodes
      ~config:cluster_config ()
  in
  let cluster = System.cluster system in
  let ring = Cluster.ring cluster in
  let plan = Plan.of_trace trace in
  let keys = Plan.replay_keys plan ~mode ~policy:Plan.Reads_and_writes in
  System.load_initial_plan system plan keys;
  (* Volume-replicate the data set to scale with system size (§9.1). *)
  let copies = max 1 (cfg.nodes / cfg.base_nodes) in
  for j = 1 to copies - 1 do
    let copy_keys =
      Plan.init_keys plan ~mode ~volume:(Printf.sprintf "vol@%d" j)
    in
    Array.iter
      (fun key -> Cluster.put cluster ~key ~size:Op.block_size ())
      copy_keys
  done;
  let horizon = cfg.warmup +. trace.Op.duration +. 1.0 in
  if mode = Keymap.D2 then
    ignore (System.attach_balancer system ~rng:(Rng.split mode_rng) ~until:horizon ());
  Engine.run engine ~until:cfg.warmup;
  let topo =
    Topology.create ~rng:(Rng.copy shared_rng) ~n:cfg.nodes ()
  in
  let windows_rng = Rng.split shared_rng in
  let windows = pick_windows ~rng:windows_rng ~cfg ~duration:trace.Op.duration in
  let clients = Array.init trace.Op.users (fun _ -> Rng.int shared_rng cfg.nodes) in
  let mean_rtt = Topology.mean_rtt topo in
  let lookup_caches =
    Array.init trace.Op.users (fun _ -> Lookup_cache.create ~ttl:cfg.cache_ttl ())
  in
  let warm_caches = Array.init trace.Op.users (fun _ -> Block_cache.create ()) in
  let conns_seq : (int * int, Tcp.conn) Hashtbl.t = Hashtbl.create 1024 in
  let conns_para : (int * int, Tcp.conn) Hashtbl.t = Hashtbl.create 1024 in
  let _, labels = Task.access_groups_labeled trace in
  let accums : (int, group_accum) Hashtbl.t = Hashtbl.create 256 in
  let results : (int, group_perf) Hashtbl.t = Hashtbl.create 256 in
  let lookup_msgs = ref 0 in
  let hits = Array.make trace.Op.users 0 in
  let misses = Array.make trace.Op.users 0 in
  let current_group = Array.make trace.Op.users (-1) in
  let server_rng = Rng.split mode_rng in
  (* Scratch holder buffer: one per pass instead of a list plus an
     array per read (same nodes, same order, same RNG draws). *)
  let hbuf = Array.make cfg.nodes 0 in
  let finalize gid =
    match Hashtbl.find_opt accums gid with
    | None -> ()
    | Some ga ->
        let client = clients.(ga.ga_user) in
        let para =
          if ga.fetches = [] then 0.0
          else para_makespan ~cfg ~conns:conns_para ~client ~topo ~fetches:ga.fetches
        in
        Hashtbl.replace results gid
          { g_user = ga.ga_user; seq = ga.seq_clock; para; fetched = ga.count };
        Hashtbl.remove accums gid
  in
  let times = plan.Plan.times in
  let kinds = plan.Plan.kinds in
  let user_col = plan.Plan.users in
  let bytes_col = plan.Plan.bytes in
  let op_keys = keys.Plan.op_keys in
  for i = 0 to plan.Plan.n - 1 do
    let now = times.(i) in
    Engine.run engine ~until:(cfg.warmup +. now);
    let u = user_col.(i) in
    let measured = in_windows windows now in
    (* Group boundary detection per user. *)
    let gid = labels.(i) in
    if current_group.(u) <> gid then begin
      if current_group.(u) >= 0 then finalize current_group.(u);
      current_group.(u) <- gid;
      if measured then
        Hashtbl.replace accums gid
          { ga_user = u; seq_clock = 0.0; fetches = []; count = 0 }
    end;
    if kinds.(i) <> Plan.kind_read then System.apply_plan_op system plan keys i
    else begin
          let key = op_keys.(i) in
          let client = clients.(u) in
          let warm_hit = Block_cache.touch warm_caches.(u) ~now key in
          if not warm_hit then begin
            let hcount = Cluster.physical_holders_into cluster ~key hbuf in
            let holder_mem n =
              let rec go i = i < hcount && (hbuf.(i) = n || go (i + 1)) in
              go 0
            in
            if hcount > 0 then begin
              let cache = lookup_caches.(u) in
              (* Resolve the owner; decide whether a DHT lookup was
                 needed and what it cost. *)
              let cached = Lookup_cache.find cache ~now key in
              let stale = cached >= 0 && not (holder_mem cached) in
              let lookup_lat =
                if cached >= 0 && not stale then begin
                  if measured then hits.(u) <- hits.(u) + 1;
                  0.0
                end
                else begin
                    if measured then misses.(u) <- misses.(u) + 1;
                    let owner =
                      match Cluster.find_owner cluster ~key with
                      | -1 -> hbuf.(0)
                      | n -> n
                    in
                    let hops = Ring.route_hops ring ~src:client ~key in
                    if measured then lookup_msgs := !lookup_msgs + hops + 1;
                    (if Ring.mem ring ~node:owner then
                       let lo = Ring.predecessor_id ring ~node:owner in
                       let hi = Ring.id_of ring ~node:owner in
                       Lookup_cache.insert cache ~now ~lo ~hi ~node:owner);
                    let base =
                      (float_of_int hops *. mean_rtt /. 2.0)
                      +. (Topology.rtt topo client owner /. 2.0)
                    in
                    (* A stale cache entry costs a wasted round trip
                       before falling back to the lookup (§5). *)
                    if stale then base +. Topology.rtt topo client cached
                    else base
                end
              in
              let server = hbuf.(Rng.int server_rng hcount) in
              if measured then begin
                match Hashtbl.find_opt accums gid with
                | None -> ()
                | Some ga ->
                    (* Sequential: lookup then download, back to back. *)
                    let ck = conn_key cfg ~client ~server in
                    let conn =
                      match Hashtbl.find_opt conns_seq ck with
                      | Some c -> c
                      | None ->
                          let c = Tcp.fresh_conn () in
                          Hashtbl.replace conns_seq ck c;
                          c
                    in
                    let rtt = Topology.rtt topo client server in
                    let dur =
                      Tcp.transfer_time conn ~now:(now +. ga.seq_clock) ~rtt
                        ~bandwidth:cfg.access_bandwidth ~bytes:bytes_col.(i)
                    in
                    ga.seq_clock <- ga.seq_clock +. lookup_lat +. dur;
                    ga.fetches <-
                      { ready = lookup_lat; server; f_bytes = bytes_col.(i) }
                      :: ga.fetches;
                    ga.count <- ga.count + 1
              end
            end
          end
    end
  done;
  Array.iter (fun gid -> if gid >= 0 then finalize gid) current_group;
  let user_rates = ref [] in
  for u = 0 to trace.Op.users - 1 do
    let total = hits.(u) + misses.(u) in
    if total > 0 then
      user_rates := (float_of_int misses.(u) /. float_of_int total) :: !user_rates
  done;
  {
    p_mode = mode;
    p_config = cfg;
    lookup_msgs_per_node = float_of_int !lookup_msgs /. float_of_int cfg.nodes;
    miss_rate = Stats.mean (Array.of_list !user_rates);
    window_hits = Array.fold_left ( + ) 0 hits;
    window_misses = Array.fold_left ( + ) 0 misses;
    groups = results;
  }

type speedup = {
  overall : float;
  per_user : (int * float) array;
  groups_compared : int;
}

let pick which (g : group_perf) = match which with `Seq -> g.seq | `Para -> g.para

let speedup ~baseline ~improved ~which =
  let per_user_ratios : (int, float list ref) Hashtbl.t = Hashtbl.create 64 in
  let compared = ref 0 in
  Hashtbl.iter
    (fun gid (gb : group_perf) ->
      match Hashtbl.find_opt improved.groups gid with
      | None -> ()
      | Some gi ->
          let lb = pick which gb and li = pick which gi in
          if lb > 0.0 && li > 0.0 then begin
            incr compared;
            let r =
              match Hashtbl.find_opt per_user_ratios gb.g_user with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.replace per_user_ratios gb.g_user r;
                  r
            in
            r := (lb /. li) :: !r
          end)
    baseline.groups;
  let per_user =
    Hashtbl.fold
      (fun u r acc -> (u, Stats.geometric_mean (Array.of_list !r)) :: acc)
      per_user_ratios []
  in
  let per_user = Array.of_list per_user in
  Array.sort (fun (a, _) (b, _) -> compare a b) per_user;
  let overall =
    if Array.length per_user = 0 then 1.0
    else Stats.geometric_mean (Array.map snd per_user)
  in
  { overall; per_user; groups_compared = !compared }

let latency_pairs ~baseline ~improved ~which =
  let acc = ref [] in
  Hashtbl.iter
    (fun gid gb ->
      match Hashtbl.find_opt improved.groups gid with
      | None -> ()
      | Some gi ->
          let lb = pick which gb and li = pick which gi in
          if lb > 0.0 && li > 0.0 then acc := (lb, li) :: !acc)
    baseline.groups;
  Array.of_list !acc
