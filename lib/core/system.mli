(** A complete simulated deployment: cluster + key policy + replay
    bookkeeping.

    Wraps a {!D2_store.Cluster} with a {!Keymap} and tracks the live
    block set of every file in a replayed trace, so that trace deletes
    can remove all of a file's blocks and overwrites reuse keys.  The
    §8 availability, §9 performance and §10 load-balance simulators
    all build on this. *)

module Key = D2_keyspace.Key

type t

val create :
  engine:D2_simnet.Engine.t ->
  mode:Keymap.mode ->
  rng:D2_util.Rng.t ->
  nodes:int ->
  ?config:D2_store.Cluster.config ->
  ?volume:string ->
  unit ->
  t
(** Fresh deployment of [nodes] nodes with uniformly random IDs drawn
    from [rng]. *)

val cluster : t -> D2_store.Cluster.t
val keymap : t -> Keymap.t
val mode : t -> Keymap.mode
val engine : t -> D2_simnet.Engine.t

val load_initial : t -> D2_trace.Op.t -> unit
(** Insert every block of the trace's initial files (without counting
    them as user write traffic — see {!baseline_written}). *)

val load_initial_plan : t -> D2_trace.Plan.t -> D2_trace.Plan.keyset -> unit
(** Same effect as {!load_initial} on the plan's trace, but block sizes
    and keys come from the compiled plan — no keymap walk. *)

val baseline_written : t -> float
(** Bytes inserted by [load_initial]; subtract from
    [Cluster.written_bytes] to get replayed user writes. *)

val apply_op : t -> D2_trace.Op.op -> unit
(** Apply one trace op's storage effect: [Create]/[Write] put the
    block, [Delete] removes every live block of the file, [Read] does
    nothing. *)

val apply_plan_op : t -> D2_trace.Plan.t -> D2_trace.Plan.keyset -> int -> unit
(** [apply_plan_op t plan keys i] is {!apply_op} for the plan's [i]-th
    op, reading columns and the precomputed key instead of an op
    record. *)

val key_of_op : t -> D2_trace.Op.op -> Key.t

val resolve_owners_into : t -> Key.t array -> int array -> unit
(** Batched owner resolution over a Plan key column: [out.(i)]
    receives the current primary owner of [keys.(i)], or -1 when the
    block does not exist.  Allocation-free; one pass.
    @raise Invalid_argument if [out] is shorter than [keys]. *)

val file_blocks : t -> file:int -> (int * int) list
(** Live (block index, size) pairs for a replayed file id, or [] —
    test/inspection hook. *)

val attach_balancer :
  t ->
  rng:D2_util.Rng.t ->
  ?config:D2_balance.Balancer.config ->
  until:float ->
  unit ->
  D2_balance.Balancer.t
(** Start Karger–Ruhl balancing (D2 and "Traditional+Merc" setups). *)

val imbalance : t -> float
(** Normalized standard deviation of per-node physical bytes over up
    nodes — the Fig. 16/17 metric. *)

val max_over_mean_load : t -> float
(** Max node load divided by mean node load (§10's other statistic). *)
