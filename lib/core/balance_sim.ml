module Op = D2_trace.Op
module Plan = D2_trace.Plan
module Cluster = D2_store.Cluster
module Engine = D2_simnet.Engine
module Rng = D2_util.Rng
module Vec = D2_util.Vec

type setup = D2 | Traditional | Traditional_file | Traditional_merc

let setup_name = function
  | D2 -> "d2"
  | Traditional -> "traditional"
  | Traditional_file -> "traditional-file"
  | Traditional_merc -> "traditional+merc"

let all_setups = [ D2; Traditional; Traditional_file; Traditional_merc ]

let mode_of = function
  | D2 -> Keymap.D2
  | Traditional | Traditional_merc -> Keymap.Traditional
  | Traditional_file -> Keymap.Traditional_file

let balanced = function D2 | Traditional_merc -> true | Traditional | Traditional_file -> false

type params = {
  nodes : int;
  seed : int;
  warmup : float;
  sample_interval : float;
  replicas : int;
  use_pointers : bool;
}

let default_params ~nodes ~seed =
  {
    nodes;
    seed;
    warmup = 3.0 *. 86400.0;
    sample_interval = 3600.0;
    replicas = 3;
    use_pointers = true;
  }

type result = {
  r_setup : setup;
  samples : (float * float) array;
  max_over_mean : float;
  daily_written_mb : float array;
  daily_removed_mb : float array;
  daily_migrated_mb : float array;
  total_at_day_start_mb : float array;
  balancer_moves : int;
}

let mb x = x /. 1.0e6

(* [replay = `Plan] consumes the trace's compiled {!D2_trace.Plan}
   (columnar fields, precomputed keys); [`Legacy] walks the op records
   and the keymap per op.  Both produce identical results — the plan
   path only hoists work out of the loop — and the legacy path stays
   exported as {!run_reference} so the equivalence test can say so. *)
let run_internal ~replay ~trace ~setup ~params:p =
  let rng = Rng.create p.seed in
  let engine = Engine.create () in
  let config =
    {
      Cluster.default_config with
      Cluster.replicas = p.replicas;
      use_pointers = p.use_pointers;
    }
  in
  let system =
    System.create ~engine ~mode:(mode_of setup) ~rng:(Rng.split rng) ~nodes:p.nodes
      ~config ()
  in
  let planned =
    match replay with
    | `Legacy -> None
    | `Plan ->
        let plan = Plan.of_trace trace in
        (* Only mutations touch the keymap in this replay (reads are
           placement no-ops here), so slot assignment must skip them. *)
        let keys =
          Plan.replay_keys plan ~mode:(mode_of setup) ~policy:Plan.Writes_only
        in
        Some (plan, keys)
  in
  (match planned with
  | None -> System.load_initial system trace
  | Some (plan, keys) -> System.load_initial_plan system plan keys);
  let cluster = System.cluster system in
  let horizon = p.warmup +. trace.Op.duration +. 1.0 in
  let balancer =
    if balanced setup then
      Some (System.attach_balancer system ~rng:(Rng.split rng) ~until:horizon ())
    else None
  in
  Engine.run engine ~until:p.warmup;
  (* Imbalance sampling during the replay. *)
  let samples = Vec.create () in
  let mom = D2_util.Stats.Online.create () in
  Engine.every engine ~period:p.sample_interval ~until:horizon (fun () ->
      let t = Engine.now engine -. p.warmup in
      Vec.push samples (t, System.imbalance system);
      D2_util.Stats.Online.add mom (System.max_over_mean_load system));
  (* Daily counter snapshots. *)
  let ndays = int_of_float (ceil (trace.Op.duration /. 86400.0)) in
  let day_written = Array.make (ndays + 1) 0.0 in
  let day_removed = Array.make (ndays + 1) 0.0 in
  let day_migrated = Array.make (ndays + 1) 0.0 in
  let day_total = Array.make (ndays + 1) 0.0 in
  let snapshot d () =
    day_written.(d) <- Cluster.written_bytes cluster;
    day_removed.(d) <- Cluster.removed_bytes cluster;
    day_migrated.(d) <- Cluster.migration_bytes cluster;
    (* Logical live data: baseline + user writes - removals. *)
    day_total.(d) <-
      Cluster.written_bytes cluster -. Cluster.removed_bytes cluster
  in
  for d = 0 to ndays do
    let at = p.warmup +. Float.min (float_of_int d *. 86400.0) trace.Op.duration in
    ignore (Engine.schedule engine ~at (snapshot d))
  done;
  (match planned with
  | None ->
      Array.iter
        (fun (o : Op.op) ->
          Engine.run engine ~until:(p.warmup +. o.Op.time);
          match o.Op.kind with
          | Op.Read -> ()
          | Op.Write | Op.Create | Op.Delete -> System.apply_op system o)
        trace.Op.ops
  | Some (plan, keys) ->
      let times = plan.Plan.times in
      let kinds = plan.Plan.kinds in
      for i = 0 to plan.Plan.n - 1 do
        Engine.run engine ~until:(p.warmup +. times.(i));
        if kinds.(i) <> Plan.kind_read then System.apply_plan_op system plan keys i
      done);
  Engine.run engine ~until:horizon;
  let daily delta =
    Array.init ndays (fun d -> mb (delta (d + 1) -. delta d))
  in
  {
    r_setup = setup;
    samples = Vec.to_array samples;
    max_over_mean = D2_util.Stats.Online.mean mom;
    daily_written_mb = daily (fun d -> day_written.(d));
    daily_removed_mb = daily (fun d -> day_removed.(d));
    daily_migrated_mb = daily (fun d -> day_migrated.(d));
    total_at_day_start_mb = Array.init ndays (fun d -> mb day_total.(d));
    balancer_moves =
      (match balancer with
      | Some b -> (D2_balance.Balancer.stats b).D2_balance.Balancer.moves
      | None -> 0);
  }

let run ~trace ~setup ~params = run_internal ~replay:`Plan ~trace ~setup ~params

let run_reference ~trace ~setup ~params =
  run_internal ~replay:`Legacy ~trace ~setup ~params
