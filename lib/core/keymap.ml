(* Key assignment moved to {!D2_trace.Keymap} so the trace library's
   {!D2_trace.Plan} can precompute replay keys; re-exported here (with
   type equalities) for the simulators and every existing call site. *)
include D2_trace.Keymap
