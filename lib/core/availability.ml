module Op = D2_trace.Op
module Plan = D2_trace.Plan
module Failure = D2_trace.Failure
module Task = D2_trace.Task
module Cluster = D2_store.Cluster
module Engine = D2_simnet.Engine
module Rng = D2_util.Rng

type params = {
  replicas : int;
  redundancy : Cluster.redundancy;
  warmup : float;
  use_balancer : bool;
  regen_hours_per_node : float;
  hybrid_replicas : bool;
}

let default_params ~mode =
  {
    replicas = 3;
    redundancy = Cluster.Replication;
    warmup = 3.0 *. 86400.0;
    use_balancer = (mode = Keymap.D2);
    regen_hours_per_node = 3.0;
    hybrid_replicas = false;
  }

type replay = {
  op_ok : bool array;
  op_node : int array;
  trials_mode : Keymap.mode;
}

let replay ~trace ~failures ~mode ~seed ?params () =
  let p = match params with Some p -> p | None -> default_params ~mode in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let nodes = failures.Failure.n in
  (* Bandwidth such that one node's share of the data regenerates in
     [regen_hours_per_node] simulated hours. *)
  let total_bytes =
    float_of_int (Op.total_initial_bytes trace) *. float_of_int p.replicas
  in
  let per_node = total_bytes /. float_of_int nodes in
  let bandwidth =
    Float.max 1.0 (per_node *. 8.0 /. (p.regen_hours_per_node *. 3600.0))
  in
  let config =
    {
      Cluster.default_config with
      Cluster.replicas = p.replicas;
      redundancy = p.redundancy;
      migration_bandwidth = bandwidth;
      hybrid_replicas = p.hybrid_replicas;
    }
  in
  let system =
    System.create ~engine ~mode ~rng:(Rng.split rng) ~nodes ~config ()
  in
  let plan = Plan.of_trace trace in
  (* This replay keys every read too (to test block availability), so
     reads participate in D2 slot assignment. *)
  let keys = Plan.replay_keys plan ~mode ~policy:Plan.Reads_and_writes in
  System.load_initial_plan system plan keys;
  let horizon = p.warmup +. trace.Op.duration +. 1.0 in
  if p.use_balancer then
    ignore (System.attach_balancer system ~rng:(Rng.split rng) ~until:horizon ());
  (* Warm up: balancing (if any) stabilizes positions before failures
     or accesses begin. *)
  Engine.run engine ~until:p.warmup;
  (* Schedule the failure trace relative to the end of warmup. *)
  let cluster = System.cluster system in
  Array.iter
    (fun (e : Failure.event) ->
      ignore
        (Engine.schedule engine ~at:(p.warmup +. e.Failure.time) (fun () ->
             if e.Failure.up then Cluster.recover cluster ~node:e.Failure.node
             else Cluster.fail cluster ~node:e.Failure.node)))
    failures.Failure.events;
  let n_ops = plan.Plan.n in
  let op_ok = Array.make n_ops true in
  let op_node = Array.make n_ops (-1) in
  let times = plan.Plan.times in
  let kinds = plan.Plan.kinds in
  let op_keys = keys.Plan.op_keys in
  for i = 0 to n_ops - 1 do
    Engine.run engine ~until:(p.warmup +. times.(i));
    let k = kinds.(i) in
    if k = Plan.kind_read then begin
      let key = op_keys.(i) in
      (* A block that no longer exists (rare trace-edge races with
         delayed removal) is not a node-unavailability failure. *)
      op_ok.(i) <- Cluster.available cluster ~key || not (Cluster.mem cluster ~key);
      op_node.(i) <- Cluster.find_owner cluster ~key
    end
    else begin
      System.apply_plan_op system plan keys i;
      if k = Plan.kind_write || k = Plan.kind_create then
        op_node.(i) <- Cluster.find_owner cluster ~key:op_keys.(i)
    end
  done;
  { op_ok; op_node; trials_mode = mode }

type task_stats = {
  tasks : int;
  failed : int;
  unavailability : float;
  mean_nodes_per_task : float;
  per_user_unavailability : (int * float) array;
}

let task_unavailability ~trace ~replay ~inter =
  let tasks, labels = Task.segment_labeled trace ~inter () in
  let ntasks = Array.length tasks in
  let task_failed = Array.make ntasks false in
  let task_nodes = Array.make ntasks 0 in
  (* (task, node) pairs already counted, as unboxed [node * ntasks +
     tsk] ints — no tuple allocation per op in this pass. *)
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 4096 in
  Array.iteri
    (fun i (o : Op.op) ->
      let tsk = labels.(i) in
      if tsk >= 0 then begin
        if (not replay.op_ok.(i)) && o.Op.kind = Op.Read then task_failed.(tsk) <- true;
        let node = replay.op_node.(i) in
        if node >= 0 && not (Hashtbl.mem seen ((node * ntasks) + tsk)) then begin
          Hashtbl.add seen ((node * ntasks) + tsk) ();
          task_nodes.(tsk) <- task_nodes.(tsk) + 1
        end
      end)
    trace.Op.ops;
  let failed = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 task_failed in
  let per_user_tasks = Array.make trace.Op.users 0 in
  let per_user_failed = Array.make trace.Op.users 0 in
  Array.iteri
    (fun tsk (t : Task.t) ->
      per_user_tasks.(t.Task.user) <- per_user_tasks.(t.Task.user) + 1;
      if task_failed.(tsk) then
        per_user_failed.(t.Task.user) <- per_user_failed.(t.Task.user) + 1)
    tasks;
  let per_user =
    Array.of_list
      (List.filter_map
         (fun u ->
           if per_user_tasks.(u) = 0 then None
           else
             Some (u, float_of_int per_user_failed.(u) /. float_of_int per_user_tasks.(u)))
         (List.init trace.Op.users (fun u -> u)))
  in
  Array.sort (fun (_, a) (_, b) -> compare b a) per_user;
  let total_nodes = Array.fold_left ( + ) 0 task_nodes in
  {
    tasks = ntasks;
    failed;
    unavailability = (if ntasks = 0 then 0.0 else float_of_int failed /. float_of_int ntasks);
    mean_nodes_per_task =
      (if ntasks = 0 then 0.0 else float_of_int total_nodes /. float_of_int ntasks);
    per_user_unavailability = per_user;
  }
