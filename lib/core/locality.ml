module Op = D2_trace.Op
module Hashing = D2_keyspace.Hashing
module Stats_acc = D2_util.Stats.Online

type scenario = Traditional | Ordered | Lower_bound

let scenario_name = function
  | Traditional -> "traditional"
  | Ordered -> "ordered"
  | Lower_bound -> "lower-bound"

type result = {
  scenario : scenario;
  mean_nodes_per_user_hour : float;
  user_hours : int;
}

let block_name path block = Printf.sprintf "%s#%08d" path block

(* The universe of block names: initial files' blocks plus every block
   created during the trace. *)
let universe (trace : Op.t) =
  let tbl = Hashtbl.create 65536 in
  Array.iter
    (fun (fi : Op.file_info) ->
      let nblocks = Op.blocks_of_bytes fi.Op.file_bytes in
      for b = 0 to nblocks - 1 do
        Hashtbl.replace tbl (block_name fi.Op.file_path b) ()
      done)
    trace.Op.initial_files;
  Array.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Create | Op.Write -> Hashtbl.replace tbl (block_name o.Op.path o.Op.block) ()
      | Op.Read | Op.Delete -> ())
    trace.Op.ops;
  let names = Array.make (Hashtbl.length tbl) "" in
  let i = ref 0 in
  Hashtbl.iter
    (fun name () ->
      names.(!i) <- name;
      incr i)
    tbl;
  Array.sort compare names;
  names

(* Distinct blocks each (user, hour) accessed. *)
let buckets (trace : Op.t) =
  let tbl : (int * int, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun (o : Op.op) ->
      match o.Op.kind with
      | Op.Delete -> ()
      | Op.Read | Op.Write | Op.Create ->
          let key = (o.Op.user, int_of_float (o.Op.time /. 3600.0)) in
          let set =
            match Hashtbl.find_opt tbl key with
            | Some s -> s
            | None ->
                let s = Hashtbl.create 64 in
                Hashtbl.replace tbl key s;
                s
          in
          Hashtbl.replace set (block_name o.Op.path o.Op.block) ())
    trace.Op.ops;
  tbl

(* Batched rank resolution: [queries.(i)] must be sorted ascending, so
   each search runs over the suffix left of the previous answer.  One
   task's blocks are consecutive in the universe ("path#%08d" names),
   which shrinks most searches to a handful of probes — the same
   column-at-a-time discipline as {!D2_cache.Lookup_cache.resolve_into}. *)
let ranks_into names queries out =
  let n = Array.length names in
  let floor = ref 0 in
  for i = 0 to Array.length queries - 1 do
    let q = queries.(i) in
    let lo = ref !floor and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if compare names.(mid) q < 0 then lo := mid + 1 else hi := mid
    done;
    out.(i) <- !lo;
    floor := !lo
  done

let compute (trace : Op.t) ~nodes scenarios =
  if nodes <= 0 then invalid_arg "Locality.analyze: nodes must be positive";
  let names = universe trace in
  let total = Array.length names in
  let per_node = max 1 ((total + nodes - 1) / nodes) in
  let tbl = buckets trace in
  let node_traditional name =
    Int64.to_int (Int64.rem (Hashing.int64_of ("fig3|" ^ name)) (Int64.of_int nodes))
  in
  List.map
    (fun scenario ->
      let acc = Stats_acc.create () in
      Hashtbl.iter
        (fun _ set ->
          let count =
            match scenario with
            | Lower_bound ->
                (Hashtbl.length set + per_node - 1) / per_node
            | Ordered ->
                (* Resolve the whole bucket's ranks in one sorted batch;
                   distinct nodes are then run boundaries of the sorted
                   rank/per_node column — no per-name probe, no dedup
                   table, same count. *)
                let qs = Array.make (Hashtbl.length set) "" in
                let i = ref 0 in
                Hashtbl.iter
                  (fun name () ->
                    qs.(!i) <- name;
                    incr i)
                  set;
                Array.sort compare qs;
                let ranks = Array.make (Array.length qs) 0 in
                ranks_into names qs ranks;
                let distinct = ref 0 in
                Array.iteri
                  (fun j r ->
                    if j = 0 || r / per_node <> ranks.(j - 1) / per_node then
                      incr distinct)
                  ranks;
                !distinct
            | Traditional ->
                let nodes_hit = Hashtbl.create 16 in
                Hashtbl.iter
                  (fun name () -> Hashtbl.replace nodes_hit (node_traditional name) ())
                  set;
                Hashtbl.length nodes_hit
          in
          Stats_acc.add acc (float_of_int count))
        tbl;
      {
        scenario;
        mean_nodes_per_user_hour = Stats_acc.mean acc;
        user_hours = Stats_acc.count acc;
      })
    scenarios

let analyze trace ~nodes scenario = List.hd (compute trace ~nodes [ scenario ])

let analyze_all trace ~nodes = compute trace ~nodes [ Traditional; Ordered; Lower_bound ]
