(** Deterministic bootstrap membership for fixed-size clusters.

    Every process of an [n]-node deployment (and every test) derives
    the same node-id keys from the node handles alone, so a cluster
    boots with a consistent ring view without any coordination
    service. *)

module Key = D2_keyspace.Key

val node_id : int -> Key.t
(** The ring ID of node [i]: a uniform key derived deterministically
    from [i] (the traditional hashed-placement configuration). *)

val peers : int -> (int * Key.t) list
(** [(i, node_id i)] for the [n] nodes of a cluster. *)

val client_handle : int -> int
(** Transport handle for client [k]: out of the node-handle range, so
    a client's hello never collides with a cluster member. *)
