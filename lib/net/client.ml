module Key = D2_keyspace.Key
module Lookup_cache = D2_cache.Lookup_cache

module Make (T : Transport.S) = struct
  module L = Linkset.Make (T)

  type t = {
    ls : L.t;
    cache : Lookup_cache.t;
    seeds : int array;
    mutable seed_idx : int;
    replicas : int;
    rpc_timeout : float;
    max_hops : int;
    retries : int;
    quantum : float;
    mutable lookup_rpcs : int;
    mutable failures : int;
    mutable inflight : int;
  }

  let create ep ?ttl ?(replicas = 3) ?(rpc_timeout = 0.25) ?(max_hops = 32)
      ?(retries = 3) ?(quantum = 0.01) ~seeds () =
    if seeds = [] then invalid_arg "Client.create: seeds must be non-empty";
    {
      ls = L.create ep;
      cache = Lookup_cache.create ?ttl ();
      seeds = Array.of_list seeds;
      seed_idx = 0;
      replicas;
      rpc_timeout;
      max_hops;
      retries;
      quantum;
      lookup_rpcs = 0;
      failures = 0;
      inflight = 0;
    }

  let cache t = t.cache
  let lookup_rpcs t = t.lookup_rpcs
  let failures t = t.failures
  let in_flight t = t.inflight
  let poll t ~timeout = L.poll t.ls ~timeout

  let rpc t dst msg =
    L.rpc_sync t.ls ~dst ~timeout:t.rpc_timeout ~quantum:t.quantum msg

  (* Iterative lookup from one entry node: follow redirects until an
     owner answers with its range, which populates the cache exactly
     as §5 describes. *)
  let rec iterate t key cur hops_left =
    t.lookup_rpcs <- t.lookup_rpcs + 1;
    match rpc t cur (Wire.Lookup { key }) with
    | Some (Wire.Owner { node; lo; hi }) ->
        Lookup_cache.insert t.cache ~now:(T.now (L.endpoint t.ls)) ~lo ~hi ~node;
        Some node
    | Some (Wire.Redirect { next }) when hops_left > 0 ->
        iterate t key next (hops_left - 1)
    | _ ->
        L.drop_link t.ls cur;
        None

  (* Owner of [key]: cached range when one covers it, else iterative
     lookup starting from the seeds in round-robin order.  The bool
     says whether the answer came from the cache (a [Missing] under a
     cached range is then retried with a fresh lookup — the range may
     be stale). *)
  let resolve t key =
    let now = T.now (L.endpoint t.ls) in
    match Lookup_cache.find t.cache ~now key with
    | node when node >= 0 -> Some (node, true)
    | _ ->
        let ns = Array.length t.seeds in
        let start = t.seed_idx in
        t.seed_idx <- (t.seed_idx + 1) mod ns;
        let rec try_seed k =
          if k >= ns then None
          else
            match iterate t key t.seeds.((start + k) mod ns) t.max_hops with
            | Some node -> Some (node, false)
            | None -> try_seed (k + 1)
        in
        try_seed 0

  (* Run one operation against the key's owner with resolve-retry on
     failure: a timeout invalidates the covering cache range and
     resolves afresh through another seed; [`Stale outcome] is
     authoritative only when the owner came from a fresh lookup (a
     cached range may point at yesterday's owner). *)
  let with_owner t key ~f =
    let rec go attempts =
      if attempts <= 0 then begin
        t.failures <- t.failures + 1;
        `Failed
      end
      else
        match resolve t key with
        | None ->
            t.failures <- t.failures + 1;
            `Failed
        | Some (owner, from_cache) -> (
            match f owner with
            | `Done outcome -> outcome
            | `Stale outcome ->
                if from_cache then begin
                  ignore (Lookup_cache.invalidate t.cache key);
                  go (attempts - 1)
                end
                else outcome
            | `Retry ->
                ignore (Lookup_cache.invalidate t.cache key);
                L.drop_link t.ls owner;
                go (attempts - 1))
    in
    go t.retries

  let put t ~key ~data =
    if String.length data > Wire.max_payload then
      invalid_arg "Client.put: data exceeds Wire.max_payload";
    with_owner t key ~f:(fun owner ->
        match
          rpc t owner (Wire.Put { key; depth = t.replicas - 1; data })
        with
        | Some (Wire.Put_ack { copies }) -> `Done (`Ok copies)
        | Some _ | None -> `Retry)

  let get t ~key =
    with_owner t key ~f:(fun owner ->
        match rpc t owner (Wire.Get { key }) with
        | Some (Wire.Found { data }) -> `Done (`Found data)
        | Some Wire.Missing -> `Stale `Missing
        | Some _ | None -> `Retry)

  let remove t ~key =
    with_owner t key ~f:(fun owner ->
        match rpc t owner (Wire.Remove { key; depth = t.replicas - 1 }) with
        | Some (Wire.Remove_ack { removed }) -> `Done (`Ok removed)
        | Some _ | None -> `Retry)

  (* {2 Pipelined (multiplexed) operations}

     The async variants never drive the poll loop themselves: they
     queue the RPC (deferred — the frame coalesces into the link
     buffer) and return, the reply firing the continuation from a
     later {!poll}.  A caller keeps a window of W operations open and
     all W requests ride the same connection, correlated by request
     id; the retry ladder (invalidate-and-resolve through rotating
     seeds) is the same as the synchronous path's, continuation-passed
     instead of blocking. *)

  let arpc t dst msg k =
    L.rpc ~defer:true t.ls ~dst ~timeout:t.rpc_timeout msg k

  let rec aiterate t key cur hops_left k =
    t.lookup_rpcs <- t.lookup_rpcs + 1;
    arpc t cur (Wire.Lookup { key }) (fun r ->
        match r with
        | Some (Wire.Owner { node; lo; hi }) ->
            Lookup_cache.insert t.cache ~now:(T.now (L.endpoint t.ls)) ~lo ~hi
              ~node;
            k (Some node)
        | Some (Wire.Redirect { next }) when hops_left > 0 ->
            aiterate t key next (hops_left - 1) k
        | _ ->
            L.drop_link t.ls cur;
            k None)

  let aresolve t key k =
    let now = T.now (L.endpoint t.ls) in
    match Lookup_cache.find t.cache ~now key with
    | node when node >= 0 -> k (Some (node, true))
    | _ ->
        let ns = Array.length t.seeds in
        let start = t.seed_idx in
        t.seed_idx <- (t.seed_idx + 1) mod ns;
        let rec try_seed n =
          if n >= ns then k None
          else
            aiterate t key t.seeds.((start + n) mod ns) t.max_hops (function
              | Some node -> k (Some (node, false))
              | None -> try_seed (n + 1))
        in
        try_seed 0

  let awith_owner t key ~failed ~f ~k =
    t.inflight <- t.inflight + 1;
    let finish outcome =
      t.inflight <- t.inflight - 1;
      k outcome
    in
    let rec go attempts =
      if attempts <= 0 then begin
        t.failures <- t.failures + 1;
        finish failed
      end
      else
        aresolve t key (function
          | None ->
              t.failures <- t.failures + 1;
              finish failed
          | Some (owner, from_cache) ->
              f owner (fun verdict ->
                  match verdict with
                  | `Done outcome -> finish outcome
                  | `Stale outcome ->
                      if from_cache then begin
                        ignore (Lookup_cache.invalidate t.cache key);
                        go (attempts - 1)
                      end
                      else finish outcome
                  | `Retry ->
                      ignore (Lookup_cache.invalidate t.cache key);
                      L.drop_link t.ls owner;
                      go (attempts - 1)))
    in
    go t.retries

  let put_async t ~key ~data k =
    if String.length data > Wire.max_payload then
      invalid_arg "Client.put_async: data exceeds Wire.max_payload";
    awith_owner t key ~failed:`Failed ~k ~f:(fun owner k' ->
        arpc t owner
          (Wire.Put { key; depth = t.replicas - 1; data })
          (fun r ->
            k'
              (match r with
              | Some (Wire.Put_ack { copies }) -> `Done (`Ok copies)
              | Some _ | None -> `Retry)))

  let get_async t ~key k =
    awith_owner t key ~failed:`Failed ~k ~f:(fun owner k' ->
        arpc t owner (Wire.Get { key }) (fun r ->
            k'
              (match r with
              | Some (Wire.Found { data }) -> `Done (`Found data)
              | Some Wire.Missing -> `Stale `Missing
              | Some _ | None -> `Retry)))

  let remove_async t ~key k =
    awith_owner t key ~failed:`Failed ~k ~f:(fun owner k' ->
        arpc t owner
          (Wire.Remove { key; depth = t.replicas - 1 })
          (fun r ->
            k'
              (match r with
              | Some (Wire.Remove_ack { removed }) -> `Done (`Ok removed)
              | Some _ | None -> `Retry)))
end
