module Key = D2_keyspace.Key
module Lookup_cache = D2_cache.Lookup_cache

module Make (T : Transport.S) = struct
  module L = Linkset.Make (T)

  type t = {
    ls : L.t;
    cache : Lookup_cache.t;
    seeds : int array;
    mutable seed_idx : int;
    replicas : int;
    quorum_r : int;
    quorum_w : int;
    rpc_timeout : float;
    max_hops : int;
    retries : int;
    quantum : float;
    alpha : int;
    mutable lookup_rpcs : int;
    mutable failures : int;
    mutable inflight : int;
  }

  let create ep ?ttl ?(replicas = 3) ?(quorum_r = 1) ?(quorum_w = 1)
      ?(rpc_timeout = 0.25) ?(max_hops = 32) ?(retries = 3) ?(quantum = 0.01)
      ?(alpha = 1) ~seeds () =
    if seeds = [] then invalid_arg "Client.create: seeds must be non-empty";
    if alpha < 1 then invalid_arg "Client.create: alpha must be >= 1";
    if quorum_r < 1 || quorum_r > replicas then
      invalid_arg "Client.create: quorum_r outside 1..replicas";
    if quorum_w < 1 || quorum_w > replicas then
      invalid_arg "Client.create: quorum_w outside 1..replicas";
    {
      ls = L.create ep;
      cache = Lookup_cache.create ?ttl ();
      seeds = Array.of_list seeds;
      seed_idx = 0;
      replicas;
      quorum_r;
      quorum_w;
      rpc_timeout;
      max_hops;
      retries;
      quantum;
      alpha;
      lookup_rpcs = 0;
      failures = 0;
      inflight = 0;
    }

  let cache t = t.cache
  let lookup_rpcs t = t.lookup_rpcs
  let failures t = t.failures
  let in_flight t = t.inflight
  let poll t ~timeout = L.poll t.ls ~timeout

  let rpc t dst msg =
    L.rpc_sync t.ls ~dst ~timeout:t.rpc_timeout ~quantum:t.quantum msg

  let arpc t dst msg k =
    L.rpc ~defer:true t.ls ~dst ~timeout:t.rpc_timeout msg k

  (* Iterative lookup from one entry node: follow redirects until an
     owner answers with its range, which populates the cache exactly
     as §5 describes. *)
  let rec iterate t key cur hops_left =
    t.lookup_rpcs <- t.lookup_rpcs + 1;
    match rpc t cur (Wire.Lookup { key }) with
    | Some (Wire.Owner { node; lo; hi }) ->
        Lookup_cache.insert t.cache ~now:(T.now (L.endpoint t.ls)) ~lo ~hi ~node;
        Some node
    | Some (Wire.Redirect { next }) when hops_left > 0 ->
        iterate t key next (hops_left - 1)
    | _ ->
        L.drop_link t.ls cur;
        None

  (* {2 α-way racing lookups}

     With [alpha >= 2] a cache miss races [alpha] independent
     iterative redirect-chains, each entered through a distinct seed,
     over the pipelined async path.  The first chain to reach an owner
     settles the lookup; the losers are cancelled — a settled chain
     never issues another message (its in-flight RPC merely drains).
     Nothing changes on the wire: each chain is a plain iterative
     lookup, so servers (and pinned replay bytes) are untouched.  The
     win is tail latency: a chain stuck on a dead or slow hop no
     longer serializes the lookup behind its RPC timeout, because a
     sibling chain routed around it is usually already done. *)

  let rec race_iterate t key cur hops_left settled k =
    if !settled then k None
    else begin
      t.lookup_rpcs <- t.lookup_rpcs + 1;
      arpc t cur (Wire.Lookup { key }) (fun r ->
          if !settled then k None
          else
            match r with
            | Some (Wire.Owner { node; lo; hi }) ->
                Lookup_cache.insert t.cache
                  ~now:(T.now (L.endpoint t.ls))
                  ~lo ~hi ~node;
                k (Some node)
            | Some (Wire.Redirect { next }) when hops_left > 0 ->
                race_iterate t key next (hops_left - 1) settled k
            | _ ->
                L.drop_link t.ls cur;
                k None)
    end

  (* Race chains through the seeds in waves of [alpha]; a wave whose
     every chain fails falls through to the next [alpha] seeds, same
     exhaustion rule as the sequential ladder. *)
  let aresolve_race t key k =
    let ns = Array.length t.seeds in
    let alpha = min t.alpha ns in
    let start = t.seed_idx in
    t.seed_idx <- (t.seed_idx + alpha) mod ns;
    let settled = ref false in
    let rec wave base =
      if base >= ns then begin
        settled := true;
        k None
      end
      else begin
        let live = min alpha (ns - base) in
        let pending = ref live in
        for j = 0 to live - 1 do
          race_iterate t key
            t.seeds.((start + base + j) mod ns)
            t.max_hops settled (fun r ->
              if not !settled then
                match r with
                | Some node ->
                    settled := true;
                    k (Some (node, false))
                | None ->
                    decr pending;
                    if !pending = 0 then wave (base + live))
        done
      end
    in
    wave 0

  (* Owner of [key]: cached range when one covers it, else iterative
     lookup starting from the seeds in round-robin order (α-way racing
     when [alpha >= 2]).  The bool says whether the answer came from
     the cache (a [Missing] under a cached range is then retried with
     a fresh lookup — the range may be stale). *)
  let resolve t key =
    let now = T.now (L.endpoint t.ls) in
    match Lookup_cache.find t.cache ~now key with
    | node when node >= 0 -> Some (node, true)
    | _ when t.alpha >= 2 ->
        (* Drive the racing resolve to completion from the sync path:
           every chain concludes by its RPC timeout, so the poll loop
           below terminates. *)
        let result = ref None and settled = ref false in
        aresolve_race t key (fun r ->
            result := r;
            settled := true);
        while not !settled do
          L.poll t.ls ~timeout:t.quantum
        done;
        !result
    | _ ->
        let ns = Array.length t.seeds in
        let start = t.seed_idx in
        t.seed_idx <- (t.seed_idx + 1) mod ns;
        let rec try_seed k =
          if k >= ns then None
          else
            match iterate t key t.seeds.((start + k) mod ns) t.max_hops with
            | Some node -> Some (node, false)
            | None -> try_seed (k + 1)
        in
        try_seed 0

  (* Run one operation against the key's owner with resolve-retry on
     failure: a timeout invalidates the covering cache range and
     resolves afresh through another seed; [`Stale outcome] is
     authoritative only when the owner came from a fresh lookup (a
     cached range may point at yesterday's owner). *)
  let with_owner t key ~f =
    let rec go attempts =
      if attempts <= 0 then begin
        t.failures <- t.failures + 1;
        `Failed
      end
      else
        match resolve t key with
        | None ->
            t.failures <- t.failures + 1;
            `Failed
        | Some (owner, from_cache) -> (
            match f owner with
            | `Done outcome -> outcome
            | `Stale outcome ->
                if from_cache then begin
                  ignore (Lookup_cache.invalidate t.cache key);
                  go (attempts - 1)
                end
                else outcome
            | `Retry ->
                ignore (Lookup_cache.invalidate t.cache key);
                L.drop_link t.ls owner;
                go (attempts - 1))
    in
    go t.retries

  (* A write is good once [quorum_w] replicas acked it; fewer acks
     (slow or dead replicas inside the coordinator's fan-out window)
     re-resolves and retries — the version map makes the replay
     idempotent on replicas that did take the first attempt. *)
  let put t ~key ~data =
    if String.length data > Wire.max_payload then
      invalid_arg "Client.put: data exceeds Wire.max_payload";
    with_owner t key ~f:(fun owner ->
        match
          rpc t owner
            (Wire.Put { key; depth = t.replicas - 1; vv = Wire.vv_empty; data })
        with
        | Some (Wire.Put_ack { copies; _ }) when copies >= t.quorum_w ->
            `Done (`Ok copies)
        | Some (Wire.Put_ack _) | None -> `Retry
        | Some _ -> `Retry)

  let get t ~key =
    with_owner t key ~f:(fun owner ->
        let msg =
          if t.quorum_r >= 2 then Wire.Get_q { key; q = t.quorum_r }
          else Wire.Get { key }
        in
        match rpc t owner msg with
        | Some (Wire.Found { data }) -> `Done (`Found data)
        | Some Wire.Missing -> `Stale `Missing
        | Some _ | None -> `Retry)

  let remove t ~key =
    with_owner t key ~f:(fun owner ->
        match
          rpc t owner
            (Wire.Remove { key; depth = t.replicas - 1; vv = Wire.vv_empty })
        with
        | Some (Wire.Remove_ack { removed }) -> `Done (`Ok removed)
        | Some _ | None -> `Retry)

  (* {2 Pipelined (multiplexed) operations}

     The async variants never drive the poll loop themselves: they
     queue the RPC (deferred — the frame coalesces into the link
     buffer) and return, the reply firing the continuation from a
     later {!poll}.  A caller keeps a window of W operations open and
     all W requests ride the same connection, correlated by request
     id; the retry ladder (invalidate-and-resolve through rotating
     seeds) is the same as the synchronous path's, continuation-passed
     instead of blocking. *)

  let rec aiterate t key cur hops_left k =
    t.lookup_rpcs <- t.lookup_rpcs + 1;
    arpc t cur (Wire.Lookup { key }) (fun r ->
        match r with
        | Some (Wire.Owner { node; lo; hi }) ->
            Lookup_cache.insert t.cache ~now:(T.now (L.endpoint t.ls)) ~lo ~hi
              ~node;
            k (Some node)
        | Some (Wire.Redirect { next }) when hops_left > 0 ->
            aiterate t key next (hops_left - 1) k
        | _ ->
            L.drop_link t.ls cur;
            k None)

  let aresolve t key k =
    let now = T.now (L.endpoint t.ls) in
    match Lookup_cache.find t.cache ~now key with
    | node when node >= 0 -> k (Some (node, true))
    | _ when t.alpha >= 2 -> aresolve_race t key k
    | _ ->
        let ns = Array.length t.seeds in
        let start = t.seed_idx in
        t.seed_idx <- (t.seed_idx + 1) mod ns;
        let rec try_seed n =
          if n >= ns then k None
          else
            aiterate t key t.seeds.((start + n) mod ns) t.max_hops (function
              | Some node -> k (Some (node, false))
              | None -> try_seed (n + 1))
        in
        try_seed 0

  let awith_owner t key ~failed ~f ~k =
    t.inflight <- t.inflight + 1;
    let finish outcome =
      t.inflight <- t.inflight - 1;
      k outcome
    in
    let rec go attempts =
      if attempts <= 0 then begin
        t.failures <- t.failures + 1;
        finish failed
      end
      else
        aresolve t key (function
          | None ->
              t.failures <- t.failures + 1;
              finish failed
          | Some (owner, from_cache) ->
              f owner (fun verdict ->
                  match verdict with
                  | `Done outcome -> finish outcome
                  | `Stale outcome ->
                      if from_cache then begin
                        ignore (Lookup_cache.invalidate t.cache key);
                        go (attempts - 1)
                      end
                      else finish outcome
                  | `Retry ->
                      ignore (Lookup_cache.invalidate t.cache key);
                      L.drop_link t.ls owner;
                      go (attempts - 1)))
    in
    go t.retries

  let put_async t ~key ~data k =
    if String.length data > Wire.max_payload then
      invalid_arg "Client.put_async: data exceeds Wire.max_payload";
    awith_owner t key ~failed:`Failed ~k ~f:(fun owner k' ->
        arpc t owner
          (Wire.Put { key; depth = t.replicas - 1; vv = Wire.vv_empty; data })
          (fun r ->
            k'
              (match r with
              | Some (Wire.Put_ack { copies; _ }) when copies >= t.quorum_w ->
                  `Done (`Ok copies)
              | Some _ | None -> `Retry)))

  let get_async t ~key k =
    awith_owner t key ~failed:`Failed ~k ~f:(fun owner k' ->
        let msg =
          if t.quorum_r >= 2 then Wire.Get_q { key; q = t.quorum_r }
          else Wire.Get { key }
        in
        arpc t owner msg (fun r ->
            k'
              (match r with
              | Some (Wire.Found { data }) -> `Done (`Found data)
              | Some Wire.Missing -> `Stale `Missing
              | Some _ | None -> `Retry)))

  let remove_async t ~key k =
    awith_owner t key ~failed:`Failed ~k ~f:(fun owner k' ->
        arpc t owner
          (Wire.Remove { key; depth = t.replicas - 1; vv = Wire.vv_empty })
          (fun r ->
            k'
              (match r with
              | Some (Wire.Remove_ack { removed }) -> `Done (`Ok removed)
              | Some _ | None -> `Retry)))
end
