/* Persistent-pollset stubs for D2_net.Pollset.
 *
 * One registration table lives in the kernel (epoll, Linux) or in
 * this translation unit (poll(2), other POSIX), so the per-wakeup
 * cost is proportional to the number of *ready* descriptors, not the
 * number of registered ones — unlike select(), which rebuilds and
 * scans every fd set on every call.
 *
 * The OCaml side passes file descriptors as ints (Unix.file_descr is
 * an int on Unix) and receives readiness as (fd, event-mask) pairs
 * written into caller-owned int arrays: bit 0 = readable, bit 1 =
 * writable, bit 2 = error/hangup.
 */

#include <errno.h>
#include <stdlib.h>
#include <string.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/signals.h>

#define D2_EV_READ 1
#define D2_EV_WRITE 2
#define D2_EV_ERROR 4

#if defined(__linux__)

/* ------------------------------------------------------------------ */
/* epoll backend                                                      */
/* ------------------------------------------------------------------ */

#include <sys/epoll.h>
#include <unistd.h>

CAMLprim value d2_pollset_backend(value unit)
{
  (void)unit;
  return caml_copy_string("epoll");
}

CAMLprim value d2_pollset_create(value unit)
{
  (void)unit;
  int fd = epoll_create1(0);
  if (fd < 0) caml_failwith("Pollset.create: epoll_create1 failed");
  return Val_int(fd);
}

CAMLprim value d2_pollset_close(value vps)
{
  close(Int_val(vps));
  return Val_unit;
}

/* set ps fd read write: add/modify/remove interest.  Both flags false
 * removes the registration (ENOENT ignored — close() already
 * unregisters a descriptor from every epoll set watching it). */
CAMLprim value d2_pollset_set(value vps, value vfd, value vread, value vwrite)
{
  int eps = Int_val(vps);
  int fd = Int_val(vfd);
  struct epoll_event ev;
  memset(&ev, 0, sizeof ev);
  ev.data.fd = fd;
  if (Bool_val(vread)) ev.events |= EPOLLIN;
  if (Bool_val(vwrite)) ev.events |= EPOLLOUT;
  if (ev.events == 0) {
    if (epoll_ctl(eps, EPOLL_CTL_DEL, fd, &ev) < 0 && errno != ENOENT
        && errno != EBADF)
      caml_failwith("Pollset.set: epoll_ctl DEL failed");
  } else if (epoll_ctl(eps, EPOLL_CTL_MOD, fd, &ev) < 0) {
    if (errno != ENOENT
        || epoll_ctl(eps, EPOLL_CTL_ADD, fd, &ev) < 0)
      caml_failwith("Pollset.set: epoll_ctl failed");
  }
  return Val_unit;
}

#define D2_MAX_EVENTS 512

/* wait ps timeout_ms fds events: blocks (runtime released) for up to
 * timeout_ms, fills the two arrays, returns the ready count (capped
 * by the shorter array). */
CAMLprim value d2_pollset_wait(value vps, value vtimeout, value vfds,
                               value vevents)
{
  CAMLparam4(vps, vtimeout, vfds, vevents);
  struct epoll_event evs[D2_MAX_EVENTS];
  int eps = Int_val(vps);
  int timeout = Int_val(vtimeout);
  long cap = Wosize_val(vfds) < Wosize_val(vevents) ? Wosize_val(vfds)
                                                    : Wosize_val(vevents);
  int want = cap < D2_MAX_EVENTS ? (int)cap : D2_MAX_EVENTS;
  int n;
  caml_enter_blocking_section();
  n = epoll_wait(eps, evs, want > 0 ? want : 1, timeout);
  caml_leave_blocking_section();
  if (n < 0) {
    if (errno == EINTR) CAMLreturn(Val_int(0));
    caml_failwith("Pollset.wait: epoll_wait failed");
  }
  for (int i = 0; i < n && i < cap; i++) {
    int mask = 0;
    if (evs[i].events & (EPOLLIN | EPOLLRDHUP)) mask |= D2_EV_READ;
    if (evs[i].events & EPOLLOUT) mask |= D2_EV_WRITE;
    if (evs[i].events & (EPOLLERR | EPOLLHUP)) mask |= D2_EV_ERROR;
    Field(vfds, i) = Val_int(evs[i].data.fd);
    Field(vevents, i) = Val_int(mask);
  }
  CAMLreturn(Val_int(n < cap ? n : (int)cap));
}

#else /* !__linux__ */

/* ------------------------------------------------------------------ */
/* poll(2) backend: the registration table lives here                 */
/* ------------------------------------------------------------------ */

#include <poll.h>

typedef struct {
  struct pollfd *fds;
  int count;
  int cap;
} d2_pollset;

static d2_pollset *sets[64];

CAMLprim value d2_pollset_backend(value unit)
{
  (void)unit;
  return caml_copy_string("poll");
}

CAMLprim value d2_pollset_create(value unit)
{
  (void)unit;
  for (int i = 0; i < 64; i++) {
    if (sets[i] == NULL) {
      d2_pollset *ps = malloc(sizeof *ps);
      if (!ps) caml_failwith("Pollset.create: out of memory");
      ps->cap = 64;
      ps->count = 0;
      ps->fds = malloc(ps->cap * sizeof *ps->fds);
      if (!ps->fds) {
        free(ps);
        caml_failwith("Pollset.create: out of memory");
      }
      sets[i] = ps;
      return Val_int(i);
    }
  }
  caml_failwith("Pollset.create: too many pollsets");
}

CAMLprim value d2_pollset_close(value vps)
{
  int i = Int_val(vps);
  if (i >= 0 && i < 64 && sets[i]) {
    free(sets[i]->fds);
    free(sets[i]);
    sets[i] = NULL;
  }
  return Val_unit;
}

CAMLprim value d2_pollset_set(value vps, value vfd, value vread, value vwrite)
{
  d2_pollset *ps = sets[Int_val(vps)];
  int fd = Int_val(vfd);
  short events = 0;
  if (!ps) caml_failwith("Pollset.set: closed pollset");
  if (Bool_val(vread)) events |= POLLIN;
  if (Bool_val(vwrite)) events |= POLLOUT;
  for (int i = 0; i < ps->count; i++) {
    if (ps->fds[i].fd == fd) {
      if (events == 0) {
        ps->fds[i] = ps->fds[ps->count - 1];
        ps->count--;
      } else {
        ps->fds[i].events = events;
      }
      return Val_unit;
    }
  }
  if (events == 0) return Val_unit;
  if (ps->count == ps->cap) {
    ps->cap *= 2;
    ps->fds = realloc(ps->fds, ps->cap * sizeof *ps->fds);
    if (!ps->fds) caml_failwith("Pollset.set: out of memory");
  }
  ps->fds[ps->count].fd = fd;
  ps->fds[ps->count].events = events;
  ps->fds[ps->count].revents = 0;
  ps->count++;
  return Val_unit;
}

CAMLprim value d2_pollset_wait(value vps, value vtimeout, value vfds,
                               value vevents)
{
  CAMLparam4(vps, vtimeout, vfds, vevents);
  d2_pollset *ps = sets[Int_val(vps)];
  int timeout = Int_val(vtimeout);
  long cap = Wosize_val(vfds) < Wosize_val(vevents) ? Wosize_val(vfds)
                                                    : Wosize_val(vevents);
  int n, filled = 0;
  if (!ps) caml_failwith("Pollset.wait: closed pollset");
  caml_enter_blocking_section();
  n = poll(ps->fds, ps->count, timeout);
  caml_leave_blocking_section();
  if (n < 0) {
    if (errno == EINTR) CAMLreturn(Val_int(0));
    caml_failwith("Pollset.wait: poll failed");
  }
  for (int i = 0; i < ps->count && filled < cap && filled < n; i++) {
    short re = ps->fds[i].revents;
    if (re) {
      int mask = 0;
      if (re & POLLIN) mask |= D2_EV_READ;
      if (re & POLLOUT) mask |= D2_EV_WRITE;
      if (re & (POLLERR | POLLHUP | POLLNVAL)) mask |= D2_EV_ERROR;
      Field(vfds, filled) = Val_int(ps->fds[i].fd);
      Field(vevents, filled) = Val_int(mask);
      filled++;
    }
  }
  CAMLreturn(Val_int(filled));
}

#endif

/* Direct read/write on NON-BLOCKING descriptors, straight from/into
 * OCaml bytes.  The stdlib's Unix.read/Unix.write copy through an
 * intermediate C buffer so they can release the runtime around a
 * potentially blocking call; on a non-blocking socket the call never
 * blocks, so skipping both the runtime release and the copy is safe
 * (the GC cannot move the buffer while no allocation happens) and
 * saves one full memcpy of every byte each way.
 *
 * Return: >= 0 bytes transferred; -1 hard error; -2 EAGAIN/EINTR
 * (retry at next readiness).  Write uses send(MSG_NOSIGNAL) where
 * available so a dead peer yields EPIPE, not SIGPIPE. */

#include <unistd.h>
#include <sys/socket.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

CAMLprim value d2_fd_read(value vfd, value vbuf, value voff, value vlen)
{
  ssize_t n = read(Int_val(vfd), Bytes_val(vbuf) + Long_val(voff),
                   Long_val(vlen));
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return Val_long(-2);
    return Val_long(-1);
  }
  return Val_long(n);
}

CAMLprim value d2_fd_write(value vfd, value vbuf, value voff, value vlen)
{
  ssize_t n = send(Int_val(vfd), Bytes_val(vbuf) + Long_val(voff),
                   Long_val(vlen), MSG_NOSIGNAL);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return Val_long(-2);
    return Val_long(-1);
  }
  return Val_long(n);
}
