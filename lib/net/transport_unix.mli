(** Non-blocking TCP transport over real sockets.

    One endpoint per event loop: a listening socket (optional — pure
    clients skip it) plus outbound connections, all non-blocking and
    driven by a persistent {!Pollset} (epoll on Linux, poll(2)
    elsewhere) — one {!Transport.S.poll} wakeup drains {e every} ready
    descriptor and opportunistically flushes pending writes, so the
    per-wakeup cost scales with ready streams, not registered ones.
    Peers are resolved from node handles by an address function; the
    stock deployment puts node [i] of an [n]-node cluster on
    [127.0.0.1:port_base + i] (see {!loopback}), with [port_base]
    taken from the [D2_NET_PORT_BASE] environment knob.

    A process may run several endpoints, one per domain: with
    [~reuseport:true] every domain binds the same address and the
    kernel spreads inbound connections across their listen sockets
    (the [d2d] daemon's domain-sharded mode).

    Each direction of a stream begins with an 8-byte hello
    ([magic ++ node handle]) injected and consumed by the transport
    itself, so [on_accept] fires only once the peer's identity is
    known and protocol code never sees transport framing. *)

include Transport.S

val create :
  node:int ->
  addr_of:(int -> Unix.sockaddr option) ->
  ?listen:bool ->
  ?reuseport:bool ->
  unit ->
  t
(** [listen] defaults to [true]; pass [false] for client-only
    endpoints (no address needed for [node] then).  [reuseport]
    (default [false]) sets [SO_REUSEPORT] on the listen socket so
    several endpoints — one per domain — can share one address.
    @raise Unix.Unix_error if binding the listen socket fails. *)

val loopback : port_base:int -> n:int -> int -> Unix.sockaddr option
(** Address function for an [n]-node loopback cluster: node [i] lives
    on [127.0.0.1:port_base + i]; other handles are unresolvable. *)

val default_port_base : unit -> int
(** [D2_NET_PORT_BASE] or 7000. *)

val wake : t -> unit
(** Interrupt a blocked {!Transport.S.poll} (self-pipe write; safe
    from any thread).  The hook a store's background flusher uses to
    get deferred acks released the moment their records hit disk,
    instead of at the next timer tick. *)

val shutdown : t -> unit
(** Close the listen socket and every connection. *)
