external backend_name : unit -> string = "d2_pollset_backend"
external raw_create : unit -> int = "d2_pollset_create"
external raw_close : int -> unit = "d2_pollset_close"

external raw_set : int -> int -> bool -> bool -> unit = "d2_pollset_set"

external raw_wait : int -> int -> int array -> int array -> int
  = "d2_pollset_wait"

(* Unix.file_descr is the raw int on Unix; this module is Unix-only
   (guarded by the transport that uses it). *)
external fd_int : Unix.file_descr -> int = "%identity"
external int_fd : int -> Unix.file_descr = "%identity"

let backend = backend_name ()

type t = {
  handle : int;
  fds : int array;  (** ready descriptors of the last wait *)
  events : int array;  (** matching event masks *)
  mutable nready : int;
  mutable closed : bool;
}

let create ?(capacity = 512) () =
  if capacity < 1 then invalid_arg "Pollset.create: capacity < 1";
  {
    handle = raw_create ();
    fds = Array.make capacity 0;
    events = Array.make capacity 0;
    nready = 0;
    closed = false;
  }

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.nready <- 0;
    raw_close t.handle
  end

let set t fd ~read ~write =
  if t.closed then invalid_arg "Pollset.set: closed";
  raw_set t.handle (fd_int fd) read write

let remove t fd = set t fd ~read:false ~write:false

let wait t ~timeout_ms =
  if t.closed then invalid_arg "Pollset.wait: closed";
  let n = raw_wait t.handle timeout_ms t.fds t.events in
  t.nready <- n;
  n

let check t i =
  if i < 0 || i >= t.nready then invalid_arg "Pollset: ready index out of range"

let ready_fd t i =
  check t i;
  int_fd t.fds.(i)

let readable t i =
  check t i;
  t.events.(i) land 1 <> 0

let writable t i =
  check t i;
  t.events.(i) land 2 <> 0

let errored t i =
  check t i;
  t.events.(i) land 4 <> 0
