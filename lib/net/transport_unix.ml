module Bytebuf = Transport.Bytebuf

let hello_magic = "D2N1"
let hello_len = 8

let default_port_base () =
  match Sys.getenv_opt "D2_NET_PORT_BASE" with
  | None -> 7000
  | Some s -> (
      match int_of_string_opt s with
      | Some p when p > 0 && p < 65000 -> p
      | _ -> invalid_arg "D2_NET_PORT_BASE: expected a port number")

let loopback ~port_base ~n i =
  if i < 0 || i >= n then None
  else Some (Unix.ADDR_INET (Unix.inet_addr_loopback, port_base + i))

type conn = {
  fd : Unix.file_descr;
  owner : t;
  mutable cpeer : int;  (** -1 while an inbound hello is pending *)
  mutable copen : bool;
  mutable connecting : bool;
  outq : Bytebuf.t;
  hello_buf : Bytes.t;
  mutable hello_got : int;
  mutable accepted : bool;  (** [on_accept] delivered (inbound only) *)
  mutable readable_cb : unit -> unit;
  mutable close_cb : unit -> unit;
}

and t = {
  unode : int;
  addr_of : int -> Unix.sockaddr option;
  listen_fd : Unix.file_descr option;
  mutable accept_cb : conn -> unit;
  mutable conns : conn list;
  mutable timers : (float * (unit -> unit)) list;  (** sorted by deadline *)
}

let node t = t.unode
let now _ = Unix.gettimeofday ()
let peer c = c.cpeer
let is_open c = c.copen
let on_accept t cb = t.accept_cb <- cb
let on_readable c cb = c.readable_cb <- cb
let on_close c cb = c.close_cb <- cb

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Transport_unix.schedule: negative delay";
  let at = Unix.gettimeofday () +. delay in
  let rec ins = function
    | [] -> [ (at, f) ]
    | (a, _) :: _ as rest when at < a -> (at, f) :: rest
    | e :: rest -> e :: ins rest
  in
  t.timers <- ins t.timers

let drop_conn t c = t.conns <- List.filter (fun x -> x != c) t.conns

let teardown c =
  if c.copen then begin
    c.copen <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    drop_conn c.owner c
  end

(* The stream died under us: tear down and tell the owner. *)
let break c =
  if c.copen then begin
    teardown c;
    c.close_cb ()
  end

let close c = teardown c

let flush c =
  if c.copen && not c.connecting then begin
    let continue = ref true in
    while !continue && not (Bytebuf.is_empty c.outq) do
      let buf, off, len = Bytebuf.peek c.outq in
      match Unix.single_write c.fd buf off len with
      | 0 -> continue := false
      | n -> Bytebuf.consume c.outq n
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          continue := false
      | exception Unix.Unix_error _ ->
          continue := false;
          break c
    done
  end

let send c buf ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length buf then
    invalid_arg "Transport_unix.send: bad range";
  if c.copen then begin
    Bytebuf.write c.outq buf ~off ~len;
    flush c
  end

let recv_into c buf ~off ~len =
  if not c.copen then 0
  else
    match Unix.read c.fd buf off len with
    | 0 ->
        (* Orderly EOF from the peer. *)
        break c;
        0
    | n -> n
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> 0
    | exception Unix.Unix_error _ ->
        break c;
        0

let mk_conn owner fd ~cpeer ~connecting =
  {
    fd;
    owner;
    cpeer;
    copen = true;
    connecting;
    outq = Bytebuf.create ();
    hello_buf = Bytes.create hello_len;
    hello_got = (if cpeer >= 0 then hello_len else 0);
    accepted = cpeer >= 0;
    readable_cb = ignore;
    close_cb = ignore;
  }

let hello_frame node =
  let b = Bytes.create hello_len in
  Bytes.blit_string hello_magic 0 b 0 4;
  Bytes.set_int32_be b 4 (Int32.of_int node);
  b

let connect t ~dst =
  match t.addr_of dst with
  | None -> None
  | Some addr -> (
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      match
        try
          Unix.connect fd addr;
          `Done
        with
        | Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) ->
            `Pending
        | Unix.Unix_error _ -> `Failed
      with
      | `Failed ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          None
      | (`Done | `Pending) as st ->
          let c = mk_conn t fd ~cpeer:dst ~connecting:(st = `Pending) in
          t.conns <- c :: t.conns;
          let hello = hello_frame t.unode in
          Bytebuf.write c.outq hello ~off:0 ~len:hello_len;
          if st = `Done then flush c;
          Some c)

let create ~node ~addr_of ?(listen = true) () =
  (* Broken streams must surface as EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd =
    if not listen then None
    else
      match addr_of node with
      | None -> invalid_arg "Transport_unix.create: no address for own node"
      | Some addr ->
          let fd = Unix.socket PF_INET SOCK_STREAM 0 in
          Unix.setsockopt fd SO_REUSEADDR true;
          Unix.bind fd addr;
          Unix.listen fd 64;
          Unix.set_nonblock fd;
          Some fd
  in
  { unode = node; addr_of; listen_fd; accept_cb = ignore; conns = []; timers = [] }

let shutdown t =
  (match t.listen_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter close t.conns

(* Consume the 8-byte identity hello that opens every inbound stream;
   fires [accept_cb] once complete.  Any payload bytes that arrived in
   the same segment stay in the socket buffer for [recv_into]. *)
let pump_hello t c =
  if c.copen && c.hello_got < hello_len then begin
    match Unix.read c.fd c.hello_buf c.hello_got (hello_len - c.hello_got) with
    | 0 -> break c
    | n ->
        c.hello_got <- c.hello_got + n;
        if c.hello_got = hello_len then
          if Bytes.sub_string c.hello_buf 0 4 <> hello_magic then break c
          else begin
            c.cpeer <-
              Int32.to_int (Bytes.get_int32_be c.hello_buf 4) land 0xffff_ffff;
            c.accepted <- true;
            t.accept_cb c
          end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> break c
  end

let accept_ready t =
  match t.listen_fd with
  | None -> ()
  | Some lfd ->
      let continue = ref true in
      while !continue do
        match Unix.accept lfd with
        | fd, _addr ->
            Unix.set_nonblock fd;
            (try Unix.setsockopt fd TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let c = mk_conn t fd ~cpeer:(-1) ~connecting:false in
            c.hello_got <- 0;
            c.accepted <- false;
            t.conns <- c :: t.conns
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            continue := false
        | exception Unix.Unix_error _ -> continue := false
      done

let run_timers t =
  let rec loop () =
    match t.timers with
    | (at, f) :: rest when at <= Unix.gettimeofday () ->
        t.timers <- rest;
        f ();
        loop ()
    | _ -> ()
  in
  loop ()

let poll t ~timeout =
  if timeout < 0.0 then invalid_arg "Transport_unix.poll: negative timeout";
  let now_ = Unix.gettimeofday () in
  let sel_timeout =
    match t.timers with
    | (at, _) :: _ -> max 0.0 (min timeout (at -. now_))
    | [] -> timeout
  in
  let conns = t.conns in
  let reads =
    (match t.listen_fd with Some fd -> [ fd ] | None -> [])
    @ List.filter_map
        (fun c -> if c.copen && not c.connecting then Some c.fd else None)
        conns
  in
  let writes =
    List.filter_map
      (fun c ->
        if c.copen && (c.connecting || not (Bytebuf.is_empty c.outq)) then
          Some c.fd
        else None)
      conns
  in
  (match Unix.select reads writes [] sel_timeout with
  | rready, wready, _ ->
      List.iter
        (fun c ->
          if c.copen && List.memq c.fd wready then
            if c.connecting then begin
              match Unix.getsockopt_error c.fd with
              | Some _ -> break c
              | None ->
                  c.connecting <- false;
                  flush c
            end
            else flush c)
        conns;
      (match t.listen_fd with
      | Some lfd when List.memq lfd rready -> accept_ready t
      | _ -> ());
      List.iter
        (fun c ->
          if c.copen && List.memq c.fd rready then
            if c.hello_got < hello_len then pump_hello t c
            else if c.accepted || c.connecting = false then c.readable_cb ())
        conns
  | exception Unix.Unix_error (EINTR, _, _) -> ());
  run_timers t
