module Bytebuf = Transport.Bytebuf

(* Pending timers, as a binary min-heap on (deadline, seq).  The RPC
   layer schedules one timeout per in-flight request, so under a
   pipelined load thousands are live at once and insertion must not
   touch them all (a sorted list rebuilt per insert collapses the
   whole client to GC churn).  [seq] breaks deadline ties in FIFO
   order so same-instant timers fire in the order scheduled. *)
module Theap = struct
  type entry = { at : float; seq : int; fn : unit -> unit }
  type t = { mutable a : entry array; mutable n : int; mutable seq : int }

  let dummy = { at = 0.0; seq = 0; fn = ignore }
  let create () = { a = Array.make 64 dummy; n = 0; seq = 0 }
  let is_empty t = t.n = 0
  let min_at t = t.a.(0).at

  let before x y = x.at < y.at || (x.at = y.at && x.seq < y.seq)

  let push t ~at fn =
    if t.n = Array.length t.a then begin
      let b = Array.make (2 * t.n) dummy in
      Array.blit t.a 0 b 0 t.n;
      t.a <- b
    end;
    let e = { at; seq = t.seq; fn } in
    t.seq <- t.seq + 1;
    let i = ref t.n in
    t.n <- t.n + 1;
    while !i > 0 && before e t.a.((!i - 1) / 2) do
      t.a.(!i) <- t.a.((!i - 1) / 2);
      i := (!i - 1) / 2
    done;
    t.a.(!i) <- e

  let pop t =
    let top = t.a.(0) in
    t.n <- t.n - 1;
    let e = t.a.(t.n) in
    t.a.(t.n) <- dummy;
    if t.n > 0 then begin
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        t.a.(!i) <- e;
        if l < t.n && before t.a.(l) t.a.(!s) then s := l;
        if r < t.n && before t.a.(r) t.a.(!s) then s := r;
        if !s = !i then continue := false
        else begin
          t.a.(!i) <- t.a.(!s);
          i := !s
        end
      done
    end;
    top.fn
end

let hello_magic = "D2N1"

(* 4 magic + u32 node + u8 protocol version.  The version byte makes a
   mixed-version cluster fail at connect time with a readable error
   instead of dying mid-stream on an unknown tag or shifted layout. *)
let hello_len = 9

let default_port_base () =
  match Sys.getenv_opt "D2_NET_PORT_BASE" with
  | None -> 7000
  | Some s -> (
      match int_of_string_opt s with
      | Some p when p > 0 && p < 65000 -> p
      | _ -> invalid_arg "D2_NET_PORT_BASE: expected a port number")

let loopback ~port_base ~n i =
  if i < 0 || i >= n then None
  else Some (Unix.ADDR_INET (Unix.inet_addr_loopback, port_base + i))

type conn = {
  fd : Unix.file_descr;
  owner : t;
  mutable cpeer : int;  (** -1 while an inbound hello is pending *)
  mutable copen : bool;
  mutable connecting : bool;
  outq : Bytebuf.t;
  hello_buf : Bytes.t;
  mutable hello_got : int;
  mutable accepted : bool;  (** [on_accept] delivered (inbound only) *)
  mutable want_write : bool;  (** write interest currently registered *)
  mutable readable_cb : unit -> unit;
  mutable close_cb : unit -> unit;
}

and t = {
  unode : int;
  addr_of : int -> Unix.sockaddr option;
  listen_fd : Unix.file_descr option;
  ps : Pollset.t;
  by_fd : (int, conn) Hashtbl.t;
  mutable accept_cb : conn -> unit;
  mutable conns : conn list;
  timers : Theap.t;
  (* Self-pipe: {!wake} (any thread) writes a byte, a blocked {!poll}
     wakes and drains it.  How a background fsync completion gets the
     loop to release the acks it was holding. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

external fd_int : Unix.file_descr -> int = "%identity"

let node t = t.unode
let now _ = Unix.gettimeofday ()
let peer c = c.cpeer
let is_open c = c.copen
let on_accept t cb = t.accept_cb <- cb
let on_readable c cb = c.readable_cb <- cb
let on_close c cb = c.close_cb <- cb

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Transport_unix.schedule: negative delay";
  Theap.push t.timers ~at:(Unix.gettimeofday () +. delay) f

(* Readiness interest is persistent: read is always armed on an open
   stream, write only while connecting or while [outq] holds bytes the
   kernel would not take yet. *)
let set_interest c =
  let want = c.connecting || not (Bytebuf.is_empty c.outq) in
  if want <> c.want_write then begin
    c.want_write <- want;
    Pollset.set c.owner.ps c.fd ~read:true ~write:want
  end

let drop_conn t c =
  t.conns <- List.filter (fun x -> x != c) t.conns;
  Hashtbl.remove t.by_fd (fd_int c.fd)

let teardown c =
  if c.copen then begin
    c.copen <- false;
    Pollset.remove c.owner.ps c.fd;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    drop_conn c.owner c
  end

(* The stream died under us: tear down and tell the owner. *)
let break c =
  if c.copen then begin
    teardown c;
    c.close_cb ()
  end

let close c = teardown c

let flush c =
  if c.copen && not c.connecting then begin
    let continue = ref true in
    while !continue && not (Bytebuf.is_empty c.outq) do
      let buf, off, len = Bytebuf.peek c.outq in
      let n = Fdio.write c.fd buf ~off ~len in
      if n > 0 then Bytebuf.consume c.outq n
      else begin
        continue := false;
        if n <> Fdio.again && n <> 0 then break c
      end
    done;
    if c.copen then set_interest c
  end

let send c buf ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length buf then
    invalid_arg "Transport_unix.send: bad range";
  if c.copen then
    if c.connecting || not (Bytebuf.is_empty c.outq) then begin
      Bytebuf.write c.outq buf ~off ~len;
      flush c
    end
    else begin
      (* Nothing queued: write straight from the caller's buffer and
         queue only what the kernel would not take — the common case
         skips the copy into [outq] entirely. *)
      let n = Fdio.write c.fd buf ~off ~len in
      if n < 0 && n <> Fdio.again then break c
      else begin
        let n = max n 0 in
        if n < len then begin
          Bytebuf.write c.outq buf ~off:(off + n) ~len:(len - n);
          set_interest c
        end
      end
    end

let recv_into c buf ~off ~len =
  if not c.copen then 0
  else begin
    let n = Fdio.read c.fd buf ~off ~len in
    if n > 0 then n
    else if n = Fdio.again then 0
    else begin
      (* Orderly EOF or a hard error: either way the stream is done. *)
      break c;
      0
    end
  end

let register t c =
  t.conns <- c :: t.conns;
  Hashtbl.replace t.by_fd (fd_int c.fd) c;
  c.want_write <- c.connecting || not (Bytebuf.is_empty c.outq);
  Pollset.set t.ps c.fd ~read:true ~write:c.want_write

let mk_conn owner fd ~cpeer ~connecting =
  {
    fd;
    owner;
    cpeer;
    copen = true;
    connecting;
    outq = Bytebuf.create ();
    hello_buf = Bytes.create hello_len;
    hello_got = (if cpeer >= 0 then hello_len else 0);
    accepted = cpeer >= 0;
    want_write = false;
    readable_cb = ignore;
    close_cb = ignore;
  }

let hello_frame node =
  let b = Bytes.create hello_len in
  Bytes.blit_string hello_magic 0 b 0 4;
  Bytes.set_int32_be b 4 (Int32.of_int node);
  Bytes.set_uint8 b 8 Wire.protocol_version;
  b

let connect t ~dst =
  match t.addr_of dst with
  | None -> None
  | Some addr -> (
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
      match
        try
          Unix.connect fd addr;
          `Done
        with
        | Unix.Unix_error ((EINPROGRESS | EWOULDBLOCK | EAGAIN), _, _) ->
            `Pending
        | Unix.Unix_error _ -> `Failed
      with
      | `Failed ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          None
      | (`Done | `Pending) as st ->
          let c = mk_conn t fd ~cpeer:dst ~connecting:(st = `Pending) in
          let hello = hello_frame t.unode in
          Bytebuf.write c.outq hello ~off:0 ~len:hello_len;
          register t c;
          if st = `Done then flush c;
          Some c)

let create ~node ~addr_of ?(listen = true) ?(reuseport = false) () =
  (* Broken streams must surface as EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let ps = Pollset.create () in
  let listen_fd =
    if not listen then None
    else
      match addr_of node with
      | None -> invalid_arg "Transport_unix.create: no address for own node"
      | Some addr ->
          let fd = Unix.socket PF_INET SOCK_STREAM 0 in
          Unix.setsockopt fd SO_REUSEADDR true;
          if reuseport then Unix.setsockopt fd SO_REUSEPORT true;
          Unix.bind fd addr;
          Unix.listen fd 128;
          Unix.set_nonblock fd;
          Pollset.set ps fd ~read:true ~write:false;
          Some fd
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  Pollset.set ps wake_r ~read:true ~write:false;
  {
    unode = node;
    addr_of;
    listen_fd;
    ps;
    by_fd = Hashtbl.create 64;
    accept_cb = ignore;
    conns = [];
    timers = Theap.create ();
    wake_r;
    wake_w;
  }

(* Thread-safe; a full pipe means a wake is already pending, and a
   closed one that the endpoint is shut down — both mean "done". *)
let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '\001') 0 1)
  with Unix.Unix_error _ -> ()

let drain_wake t =
  let buf = Bytes.create 64 in
  let continue = ref true in
  while !continue do
    match Unix.read t.wake_r buf 0 64 with
    | n -> if n < 64 then continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let shutdown t =
  (match t.listen_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  List.iter close t.conns;
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  Pollset.close t.ps

(* Consume the 9-byte identity hello that opens every inbound stream;
   fires [accept_cb] once complete.  Any payload bytes that arrived in
   the same segment stay in the socket buffer for [recv_into]. *)
let pump_hello t c =
  if c.copen && c.hello_got < hello_len then begin
    match Unix.read c.fd c.hello_buf c.hello_got (hello_len - c.hello_got) with
    | 0 -> break c
    | n ->
        c.hello_got <- c.hello_got + n;
        if c.hello_got = hello_len then
          if Bytes.sub_string c.hello_buf 0 4 <> hello_magic then break c
          else begin
            let peer_version = Bytes.get_uint8 c.hello_buf 8 in
            if peer_version <> Wire.protocol_version then begin
              Printf.eprintf
                "d2net: rejecting peer %ld: protocol version %d, ours is %d \
                 (mixed-version cluster?)\n\
                 %!"
                (Int32.logand (Bytes.get_int32_be c.hello_buf 4) 0xffff_ffffl)
                peer_version Wire.protocol_version;
              break c
            end
            else begin
              c.cpeer <-
                Int32.to_int (Bytes.get_int32_be c.hello_buf 4)
                land 0xffff_ffff;
              c.accepted <- true;
              t.accept_cb c
            end
          end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> break c
  end

let accept_ready t =
  match t.listen_fd with
  | None -> ()
  | Some lfd ->
      let continue = ref true in
      while !continue do
        match Unix.accept lfd with
        | fd, _addr ->
            Unix.set_nonblock fd;
            (try Unix.setsockopt fd TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            let c = mk_conn t fd ~cpeer:(-1) ~connecting:false in
            c.hello_got <- 0;
            c.accepted <- false;
            register t c
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
            continue := false
        | exception Unix.Unix_error _ -> continue := false
      done

let run_timers t =
  let rec loop () =
    if (not (Theap.is_empty t.timers))
       && Theap.min_at t.timers <= Unix.gettimeofday ()
    then begin
      (Theap.pop t.timers) ();
      loop ()
    end
  in
  loop ()

(* One wakeup: wait on the persistent pollset, then drain every ready
   descriptor — completed connects and pending writes flush first
   (freeing send-buffer space), accepts register new streams, and each
   readable stream's callback consumes everything buffered (the frame
   reader handles back-to-back pipelined frames from one read). *)
let poll t ~timeout =
  if timeout < 0.0 then invalid_arg "Transport_unix.poll: negative timeout";
  let now_ = Unix.gettimeofday () in
  let wait_s =
    if Theap.is_empty t.timers then timeout
    else max 0.0 (min timeout (Theap.min_at t.timers -. now_))
  in
  let timeout_ms = int_of_float (ceil (wait_s *. 1000.0)) in
  (match Pollset.wait t.ps ~timeout_ms with
  | exception Failure _ -> ()
  | n ->
      let lfd_int =
        match t.listen_fd with Some fd -> fd_int fd | None -> -1
      in
      let wake_int = fd_int t.wake_r in
      for i = 0 to n - 1 do
        let fdi = fd_int (Pollset.ready_fd t.ps i) in
        if fdi = wake_int then drain_wake t
        else if fdi = lfd_int then begin
          if Pollset.readable t.ps i then accept_ready t
        end
        else
          match Hashtbl.find_opt t.by_fd fdi with
          | None -> ()  (* torn down earlier this same wakeup *)
          | Some c ->
              if c.copen && Pollset.errored t.ps i && not c.connecting then
                break c
              else begin
                if c.copen && (Pollset.writable t.ps i || Pollset.errored t.ps i)
                then
                  if c.connecting then begin
                    match Unix.getsockopt_error c.fd with
                    | Some _ -> break c
                    | None ->
                        c.connecting <- false;
                        flush c
                  end
                  else flush c;
                if c.copen && Pollset.readable t.ps i then
                  if c.hello_got < hello_len then pump_hello t c
                  else if c.accepted || c.connecting = false then
                    c.readable_cb ()
              end
      done);
  run_timers t
