(** Deterministic in-process loopback transport.

    All endpoints live in one {!D2_simnet.Engine} virtual-time world;
    a [send] schedules delivery of the bytes one-way-RTT later (drawn
    from the {!D2_simnet.Topology} embedding), so multi-node protocol
    runs are byte-reproducible: same seeds, same event order, same
    client cache counters, every time.

    Fault injection:
    - {!kill} takes an endpoint down: established streams deliver a
      close to the other side, later {!connect}s to it refuse;
    - {!set_partition} blackholes traffic between node pairs (messages
      silently vanish; failures surface as RPC timeouts);
    - a [loss] rate (or the [D2_NET_LOSS] environment knob) resets a
      stream with that probability per send — modelling the broken
      connections a lossy WAN path produces, while keeping each
      surviving stream's framing intact. *)

include Transport.S

type net
(** The shared world: engine + topology + fault state. *)

val create_net :
  engine:D2_simnet.Engine.t ->
  topology:D2_simnet.Topology.t ->
  ?loss:float ->
  ?seed:int ->
  unit ->
  net
(** [loss] defaults to [D2_NET_LOSS] (a probability) or [0.]; [seed]
    (default 0x6e67) feeds the loss draws only. *)

val engine : net -> D2_simnet.Engine.t

val endpoint : net -> node:int -> t
(** Bind the endpoint for [node] (a {!D2_simnet.Topology} index).
    @raise Invalid_argument if out of range or already bound. *)

val kill : net -> int -> unit
(** Take a node's endpoint down, breaking all its streams.  Idempotent. *)

val is_up : net -> int -> bool

val set_partition : net -> (int -> int -> bool) option -> unit
(** [Some sep] blackholes every delivery between pairs for which
    [sep src dst] is true; [None] heals.  The cut applies to frames
    already in flight as well: a delivery is dropped if its link was
    severed at {e any} point between send and arrival (a frame on the
    wire when the cable is cut is lost, even if the cut heals before
    the frame's nominal arrival time).  Each call replaces the active
    predicate; episodes are remembered for exactly this in-flight
    check. *)
