(** The pluggable byte-stream transport the node runtime and client
    are functorized over.

    A transport endpoint owns connections to peer endpoints, named by
    integer node handles (the same handles the DHT ring uses; the
    transport maps them to real addresses).  The interface is
    poll-style and callback-driven: nothing blocks, readiness is
    announced via [on_accept] / [on_readable] / [on_close], and
    {!S.poll} performs one bounded step of the event loop — delivering
    I/O and firing due timers.  {!D2_net.Transport_mem} implements it
    over the deterministic virtual-time engine, {!D2_net.Transport_unix}
    over non-blocking TCP sockets; protocol code compiled against this
    signature runs byte-identically on either. *)

module type S = sig
  type t
  (** An endpoint bound to one node handle. *)

  type conn
  (** A bidirectional byte stream to a peer. *)

  val node : t -> int
  val now : t -> float
  (** Transport clock, seconds: virtual time for the in-memory
      transport, wall-clock for TCP. *)

  val connect : t -> dst:int -> conn option
  (** Open a stream to [dst]; [None] when the peer is known dead or
      unresolvable.  The connection is usable immediately — writes are
      buffered until the stream is established. *)

  val peer : conn -> int
  val is_open : conn -> bool

  val send : conn -> Bytes.t -> off:int -> len:int -> unit
  (** Queue bytes for delivery.  Best-effort: bytes sent on a closed
      or dying connection are dropped — loss surfaces as an RPC
      timeout, never as an exception. *)

  val recv_into : conn -> Bytes.t -> off:int -> len:int -> int
  (** Drain up to [len] received bytes into [buf] at [off]; returns
      the count (0 when nothing is pending).  Called from an
      [on_readable] callback this is the zero-copy read path: the TCP
      transport reads straight from the socket into [buf]. *)

  val close : conn -> unit

  val on_accept : t -> (conn -> unit) -> unit
  (** Install the accept callback: fires once per inbound connection,
      after the peer's identity is known. *)

  val on_readable : conn -> (unit -> unit) -> unit
  (** Fires whenever new bytes are available on the connection. *)

  val on_close : conn -> (unit -> unit) -> unit
  (** Fires when the peer closes or the stream breaks. *)

  val schedule : t -> delay:float -> (unit -> unit) -> unit
  (** One-shot timer on the transport clock. *)

  val poll : t -> timeout:float -> unit
  (** Run the event loop for at most [timeout] seconds: deliver
      pending I/O, fire accept/readable/close callbacks and due
      timers.  Returns early when there is nothing left to do. *)
end

(** Grow-on-demand byte FIFO shared by the transport implementations'
    receive queues and send buffers. *)
module Bytebuf = struct
  type t = { mutable buf : Bytes.t; mutable r : int; mutable w : int }

  let create () = { buf = Bytes.create 1024; r = 0; w = 0 }
  let length t = t.w - t.r
  let is_empty t = t.r = t.w

  let write t src ~off ~len =
    if Bytes.length t.buf - t.w < len then begin
      let n = t.w - t.r in
      if Bytes.length t.buf - n >= len && t.r > 0 then begin
        Bytes.blit t.buf t.r t.buf 0 n;
        t.r <- 0;
        t.w <- n
      end
      else begin
        let cap = max (2 * Bytes.length t.buf) (n + len) in
        let nb = Bytes.create cap in
        Bytes.blit t.buf t.r nb 0 n;
        t.buf <- nb;
        t.r <- 0;
        t.w <- n
      end
    end;
    Bytes.blit src off t.buf t.w len;
    t.w <- t.w + len

  let read_into t dst ~off ~len =
    let n = min len (t.w - t.r) in
    Bytes.blit t.buf t.r dst off n;
    t.r <- t.r + n;
    if t.r = t.w then begin
      t.r <- 0;
      t.w <- 0
    end;
    n

  (* Expose the unread region for writev-style draining. *)
  let peek t = (t.buf, t.r, t.w - t.r)
  let consume t n = t.r <- min t.w (t.r + n)

  (* Expose the writable region so producers (the wire encoder) can
     fill it in place — frames coalesce into one buffer with no
     intermediate copy, and one [peek]/[consume] round flushes them
     all as a single write. *)
  let reserve t n =
    if Bytes.length t.buf - t.w < n then begin
      let used = t.w - t.r in
      if Bytes.length t.buf - used >= n && t.r > 0 then begin
        Bytes.blit t.buf t.r t.buf 0 used;
        t.r <- 0;
        t.w <- used
      end
      else begin
        let cap = max (2 * Bytes.length t.buf) (used + n) in
        let nb = Bytes.create cap in
        Bytes.blit t.buf t.r nb 0 used;
        t.buf <- nb;
        t.r <- 0;
        t.w <- used
      end
    end;
    (t.buf, t.w)

  let commit t n =
    if n < 0 || t.w + n > Bytes.length t.buf then
      invalid_arg "Bytebuf.commit: bad count";
    t.w <- t.w + n
end
