(* Shared per-connection machinery for the node runtime and the
   client: frame reassembly on the receive path, request-id
   correlation for outstanding RPCs, timeouts, and link reuse.  Both
   directions of one stream are symmetrical — either side may issue
   requests — so replies are told apart from requests by tag
   ([Wire.is_request]), never by who connected. *)

module Make (T : Transport.S) = struct
  type link = {
    lpeer : int;
    conn : T.conn;
    reader : Wire.Reader.t;
    pending : (int, Wire.msg option -> unit) Hashtbl.t;
    mutable next_req : int;
  }

  type t = {
    ep : T.t;
    links : (int, link) Hashtbl.t;  (** newest usable link per peer *)
    mutable on_request : link -> int -> Wire.msg -> unit;
    mutable on_peer_down : int -> unit;
    mutable rpcs_sent : int;
  }

  let create ep =
    {
      ep;
      links = Hashtbl.create 32;
      on_request = (fun _ _ _ -> ());
      on_peer_down = ignore;
      rpcs_sent = 0;
    }

  let endpoint t = t.ep
  let set_on_request t f = t.on_request <- f
  let set_on_peer_down t f = t.on_peer_down <- f

  let fail_pending l =
    let cbs = Hashtbl.fold (fun _ cb acc -> cb :: acc) l.pending [] in
    Hashtbl.reset l.pending;
    List.iter (fun cb -> cb None) cbs

  let unregister t l =
    (match Hashtbl.find_opt t.links l.lpeer with
    | Some cur when cur == l -> Hashtbl.remove t.links l.lpeer
    | _ -> ());
    fail_pending l

  (* Read everything the transport has buffered into the frame
     reassembler; [recv_into] writes straight into the reader's
     buffer. *)
  let drain_bytes l =
    let continue = ref true in
    while !continue do
      let buf, off = Wire.Reader.reserve l.reader 4096 in
      let n = T.recv_into l.conn buf ~off ~len:4096 in
      if n > 0 then Wire.Reader.commit l.reader n else continue := false
    done

  let dispatch t l =
    let continue = ref true in
    while !continue do
      match Wire.Reader.next l.reader with
      | `Awaiting -> continue := false
      | `Corrupt _why ->
          continue := false;
          T.close l.conn;
          unregister t l
      | `Msg (req, msg) ->
          if Wire.is_request msg then t.on_request l req msg
          else begin
            match Hashtbl.find_opt l.pending req with
            | Some cb ->
                Hashtbl.remove l.pending req;
                cb (Some msg)
            | None -> ()  (* reply to a timed-out request: drop *)
          end
    done

  let attach t conn =
    let l =
      {
        lpeer = T.peer conn;
        conn;
        reader = Wire.Reader.create ();
        pending = Hashtbl.create 8;
        next_req = 1;
      }
    in
    Hashtbl.replace t.links l.lpeer l;
    T.on_readable conn (fun () ->
        drain_bytes l;
        dispatch t l);
    T.on_close conn (fun () ->
        unregister t l;
        t.on_peer_down l.lpeer);
    l

  let link_to t dst =
    match Hashtbl.find_opt t.links dst with
    | Some l when T.is_open l.conn -> Some l
    | _ -> (
        match T.connect t.ep ~dst with
        | None -> None
        | Some conn -> Some (attach t conn))

  let drop_link t dst =
    match Hashtbl.find_opt t.links dst with
    | Some l ->
        T.close l.conn;
        unregister t l
    | None -> ()

  let send_msg l ~req msg =
    let frame = Wire.encode ~req msg in
    T.send l.conn frame ~off:0 ~len:(Bytes.length frame)

  let reply = send_msg

  (* Fire-and-callback RPC.  The callback runs exactly once: with the
     reply, or with [None] on timeout or link death. *)
  let rpc t ~dst ~timeout msg cb =
    match link_to t dst with
    | None -> cb None
    | Some l ->
        let req = l.next_req in
        l.next_req <- req + 1;
        Hashtbl.replace l.pending req cb;
        t.rpcs_sent <- t.rpcs_sent + 1;
        T.schedule t.ep ~delay:timeout (fun () ->
            match Hashtbl.find_opt l.pending req with
            | Some cb ->
                Hashtbl.remove l.pending req;
                cb None
            | None -> ());
        send_msg l ~req msg

  (* Synchronous RPC: drives the transport's poll loop until the
     callback fires.  [quantum] bounds each poll step (and, on the
     virtual-time transport, how far the clock may advance per step). *)
  let rpc_sync t ~dst ~timeout ?(quantum = 0.01) msg =
    let result = ref `Waiting in
    rpc t ~dst ~timeout msg (fun r -> result := `Done r);
    let deadline = T.now t.ep +. (2.0 *. timeout) in
    while !result = `Waiting && T.now t.ep < deadline do
      T.poll t.ep ~timeout:quantum
    done;
    match !result with `Done r -> r | `Waiting -> None

  let rpcs_sent t = t.rpcs_sent
end
