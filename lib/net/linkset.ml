(* Shared per-connection machinery for the node runtime and the
   client: frame reassembly on the receive path, request-id
   correlation for outstanding RPCs, timeouts, and link reuse.  Both
   directions of one stream are symmetrical — either side may issue
   requests — so replies are told apart from requests by tag
   ([Wire.is_request]), never by who connected.

   Outbound frames coalesce: every encode lands in the link's output
   buffer and the buffer reaches the transport as ONE [send] at the
   next flush point (end of the dispatch that produced the replies,
   immediately for a lone RPC, explicitly for a pipelined batch) —
   that single send is what amortizes per-write syscalls under
   pipelining. *)

module Bytebuf = Transport.Bytebuf

module Make (T : Transport.S) = struct
  type link = {
    lpeer : int;
    conn : T.conn;
    owner : t;
    reader : Wire.Reader.t;
    outbuf : Bytebuf.t;
    mutable dirty : bool;  (** queued on [owner.dirty_links] *)
    pending : (int, Wire.msg option -> unit) Hashtbl.t;
    mutable next_req : int;
  }

  and t = {
    ep : T.t;
    links : (int, link) Hashtbl.t;  (** newest usable link per peer *)
    mutable dirty_links : link list;
    mutable on_request : link -> int -> Wire.msg -> unit;
    mutable on_peer_down : int -> unit;
    mutable rpcs_sent : int;
    mutable frames_queued : int;
    mutable sends_flushed : int;
  }

  let create ep =
    {
      ep;
      links = Hashtbl.create 32;
      dirty_links = [];
      on_request = (fun _ _ _ -> ());
      on_peer_down = ignore;
      rpcs_sent = 0;
      frames_queued = 0;
      sends_flushed = 0;
    }

  let endpoint t = t.ep
  let set_on_request t f = t.on_request <- f
  let set_on_peer_down t f = t.on_peer_down <- f

  let flush_link l =
    l.dirty <- false;
    if not (Bytebuf.is_empty l.outbuf) then begin
      let buf, off, len = Bytebuf.peek l.outbuf in
      T.send l.conn buf ~off ~len;
      Bytebuf.consume l.outbuf len;
      l.owner.sends_flushed <- l.owner.sends_flushed + 1
    end

  (* Flushing can fail a link, whose pending callbacks may queue new
     frames on other links — loop until no link is left dirty. *)
  let rec flush_all t =
    match t.dirty_links with
    | [] -> ()
    | ls ->
        t.dirty_links <- [];
        List.iter flush_link (List.rev ls);
        flush_all t

  let send_msg l ~req msg =
    let t = l.owner in
    let buf, off = Bytebuf.reserve l.outbuf (Wire.frame_length msg) in
    let n = Wire.encode_into buf ~off ~req msg in
    Bytebuf.commit l.outbuf n;
    t.frames_queued <- t.frames_queued + 1;
    if not l.dirty then begin
      l.dirty <- true;
      t.dirty_links <- l :: t.dirty_links
    end

  let reply = send_msg

  let fail_pending l =
    let cbs = Hashtbl.fold (fun _ cb acc -> cb :: acc) l.pending [] in
    Hashtbl.reset l.pending;
    List.iter (fun cb -> cb None) cbs

  let unregister t l =
    (match Hashtbl.find_opt t.links l.lpeer with
    | Some cur when cur == l -> Hashtbl.remove t.links l.lpeer
    | _ -> ());
    fail_pending l

  (* Read everything the transport has buffered into the frame
     reassembler; [recv_into] writes straight into the reader's
     buffer. *)
  let recv_chunk = 65536

  let drain_bytes l =
    let continue = ref true in
    while !continue do
      let buf, off = Wire.Reader.reserve l.reader recv_chunk in
      let n = T.recv_into l.conn buf ~off ~len:recv_chunk in
      if n > 0 then Wire.Reader.commit l.reader n else continue := false
    done

  let dispatch t l =
    let continue = ref true in
    while !continue do
      match Wire.Reader.next l.reader with
      | `Awaiting -> continue := false
      | `Corrupt _why ->
          continue := false;
          T.close l.conn;
          unregister t l
      | `Msg (req, msg) -> (
          if Wire.is_request msg then t.on_request l req msg
          else
            match Hashtbl.find_opt l.pending req with
            | Some cb ->
                Hashtbl.remove l.pending req;
                cb (Some msg)
            | None -> () (* reply to a timed-out request: drop *))
    done;
    (* Everything this batch of inbound frames produced — replies,
       fan-out forwards, retries — leaves as one send per link. *)
    flush_all t

  let attach t conn =
    let l =
      {
        lpeer = T.peer conn;
        conn;
        owner = t;
        reader = Wire.Reader.create ~capacity:recv_chunk ();
        outbuf = Bytebuf.create ();
        dirty = false;
        pending = Hashtbl.create 8;
        next_req = 1;
      }
    in
    Hashtbl.replace t.links l.lpeer l;
    T.on_readable conn (fun () ->
        drain_bytes l;
        dispatch t l);
    T.on_close conn (fun () ->
        unregister t l;
        t.on_peer_down l.lpeer;
        flush_all t);
    l

  let link_to t dst =
    match Hashtbl.find_opt t.links dst with
    | Some l when T.is_open l.conn -> Some l
    | _ -> (
        match T.connect t.ep ~dst with
        | None -> None
        | Some conn -> Some (attach t conn))

  let drop_link t dst =
    match Hashtbl.find_opt t.links dst with
    | Some l ->
        T.close l.conn;
        unregister t l;
        flush_all t
    | None -> ()

  (* Fire-and-callback RPC.  The callback runs exactly once: with the
     reply, or with [None] on timeout or link death.  [defer] leaves
     the frame coalescing in the link buffer for a later {!flush_all}
     — the pipelined client queues a whole window this way and flushes
     it as one write. *)
  let rpc ?(defer = false) t ~dst ~timeout msg cb =
    match link_to t dst with
    | None -> cb None
    | Some l ->
        let req = l.next_req in
        l.next_req <- req + 1;
        Hashtbl.replace l.pending req cb;
        t.rpcs_sent <- t.rpcs_sent + 1;
        T.schedule t.ep ~delay:timeout (fun () ->
            match Hashtbl.find_opt l.pending req with
            | Some cb ->
                Hashtbl.remove l.pending req;
                cb None;
                flush_all t
            | None -> ());
        send_msg l ~req msg;
        if not defer then flush_all t

  (* Synchronous RPC: drives the transport's poll loop until the
     callback fires.  [quantum] bounds each poll step (and, on the
     virtual-time transport, how far the clock may advance per step). *)
  let rpc_sync t ~dst ~timeout ?(quantum = 0.01) msg =
    let result = ref `Waiting in
    rpc t ~dst ~timeout msg (fun r -> result := `Done r);
    let deadline = T.now t.ep +. (2.0 *. timeout) in
    while !result = `Waiting && T.now t.ep < deadline do
      T.poll t.ep ~timeout:quantum
    done;
    match !result with `Done r -> r | `Waiting -> None

  (* One event-loop step on behalf of a caller that issued deferred
     RPCs: push every queued frame out first, then poll. *)
  let poll t ~timeout =
    flush_all t;
    T.poll t.ep ~timeout;
    flush_all t

  let rpcs_sent t = t.rpcs_sent
  let frames_queued t = t.frames_queued
  let sends_flushed t = t.sends_flushed
end
