(** Persistent readiness pollset: the event-loop seam under
    {!Transport_unix}.

    A pollset keeps the interest table registered across wakeups —
    epoll on Linux, poll(2) elsewhere — so one {!wait} costs O(ready)
    instead of the O(registered) rebuild-and-scan a [select] loop
    pays per iteration.  Registrations are edge-free (level
    triggered): a readable descriptor keeps reporting readable until
    drained, a writable one until the send buffer fills.

    Unix-only (file descriptors are handled as raw ints). *)

type t

val backend : string
(** ["epoll"] or ["poll"], for logs and tests. *)

val create : ?capacity:int -> unit -> t
(** [capacity] (default 512) bounds how many ready descriptors one
    {!wait} can report; more simply arrive on the next wakeup. *)

val close : t -> unit
(** Release the kernel/table resources.  Idempotent. *)

val set : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Register, update or (both [false]) remove interest in a
    descriptor.  Safe to call with the same flags twice; removing an
    unregistered descriptor is a no-op. *)

val remove : t -> Unix.file_descr -> unit
(** [set ~read:false ~write:false]. *)

val wait : t -> timeout_ms:int -> int
(** Block up to [timeout_ms] (0 = non-blocking probe, [-1] = forever)
    and latch the ready set; returns how many descriptors are ready.
    The OCaml runtime lock is released while blocking. *)

val ready_fd : t -> int -> Unix.file_descr
(** [ready_fd t i] is the [i]-th ready descriptor of the last
    {!wait} ([0 <= i < wait]'s return). *)

val readable : t -> int -> bool
val writable : t -> int -> bool
val errored : t -> int -> bool
(** Event flags of the [i]-th ready descriptor: error/hangup is
    reported separately so the loop can tear the stream down even
    when no bytes are pending. *)
