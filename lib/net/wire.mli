(** Wire protocol: length-prefixed binary frames for the D2 RPCs.

    Every message travels as one frame:

    {v
      bytes 0..3   u32 big-endian frame length L (= 5 + body length)
      bytes 4..7   u32 big-endian request id (echoed by the reply)
      byte  8      message tag
      bytes 9..    body (fixed layout per tag; keys are 64 raw bytes,
                   node handles u32, block payloads u32 length + bytes)
    v}

    The codec is total: {!decode} classifies any byte string as a
    message, a {!Short} prefix (wait for more bytes), or {!Malformed}
    (protocol violation — drop the connection); it never raises.
    Payloads are capped at {!max_payload} (the 8 KB D2-Store block),
    frames at {!max_frame}, so a malicious length field cannot force
    an allocation. *)

module Key = D2_keyspace.Key
module Vv = D2_sync.Version_vector

val protocol_version : int
(** Frame-set revision, exchanged in the transport hello; peers with a
    different version are rejected at connect time with a clear error
    instead of failing mid-stream on an unknown tag. *)

val max_payload : int
(** Largest block payload a frame may carry (8192, {!D2_trace.Op.block_size}). *)

val max_members : int
(** Largest membership list a [Join_ack] may carry (4096 nodes). *)

val max_sync_items : int
(** Largest entry list a [Sync_keys_ack] may carry (256); a bigger
    bucket is narrowed by another digest round instead. *)

val max_frame : int
(** Upper bound on a whole frame, length prefix included. *)

type msg =
  | Lookup of { key : Key.t }
      (** who owns [key]?  Answered with [Owner] (the receiver owns it)
          or [Redirect] (iterative lookup: ask [next] instead). *)
  | Owner of { node : int; lo : Key.t; hi : Key.t }
      (** [node] owns the half-open ring range [(lo, hi]] — exactly
          what the client's range cache stores (§5). *)
  | Redirect of { next : int }
  | Get of { key : Key.t }
  | Found of { data : string }
  | Missing
  | Put of { key : Key.t; depth : int; vv : Vv.t; data : string }
      (** [depth > 0]: the receiver coordinates and fans the block out
          to its [depth] follow-up replica holders; [depth = 0]: store
          locally only (a fan-out copy).  A client sends [vv] empty and
          the coordinator stamps it; fan-out copies carry the stamped
          vector so every replica records the same version. *)
  | Put_ack of { copies : int; vv : Vv.t }
      (** [vv] is the version the coordinator stamped — clients thread
          it into a later overwrite to supersede their own write. *)
  | Remove of { key : Key.t; depth : int; vv : Vv.t }
  | Remove_ack of { removed : bool }
  | Join of { node : int; id : Key.t }
  | Join_ack of { members : (int * Key.t) list }
  | Probe
  | Probe_ack of { node : int; epoch : int }
  | Error of { code : int; message : string }
  | Sync_digests of { lo : Key.t; hi : Key.t; prefix : int; bits : int }
      (** Anti-entropy probe: digest the ([prefix], [bits]) bucket of
          your entries in ring range [(lo, hi]]. *)
  | Sync_digests_ack of { children : (int * int) array }
      (** 16 child buckets as (CRC-32C sum, entry count) pairs. *)
  | Sync_keys of { lo : Key.t; hi : Key.t; prefix : int; bits : int }
      (** Leaf exchange: list the bucket's (key, version, tombstone)
          entries. *)
  | Sync_keys_ack of { items : (Key.t * Vv.t * bool) list }
  | Fetch of { key : Key.t }
      (** Versioned read of one local entry (repair pull / quorum
          sub-read); unlike [Get] it never redirects and returns the
          vector. *)
  | Fetch_ack of { vv : Vv.t; deleted : bool; data : string option }
      (** [data = None] with [vv] empty: entry unknown. *)
  | Push of { key : Key.t; vv : Vv.t; deleted : bool; data : string }
      (** Store this versioned copy if it does not lose to yours
          (repair push / read-repair). *)
  | Push_ack of { stored : bool }
  | Get_q of { key : Key.t; q : int }
      (** Quorum read: the owner answers from [q] replicas (itself
          plus [q-1] successors), returns the dominating copy and
          read-repairs stale replicas. *)

val vv_empty : Vv.t
(** Convenience re-export of {!D2_sync.Version_vector.empty} for
    callers that send unstamped writes. *)

val is_request : msg -> bool
(** Requests expect a reply; everything else is a reply. *)

val tag_name : msg -> string

val frame_length : msg -> int
(** Exact encoded size of the frame carrying [msg], prefix included. *)

val encode_into : Bytes.t -> off:int -> req:int -> msg -> int
(** Write the frame at [off]; returns the number of bytes written
    (= {!frame_length}).
    @raise Invalid_argument if the buffer is too small, the request id
    is outside u32, or the message violates a size cap. *)

val encode : req:int -> msg -> Bytes.t
(** Fresh-buffer convenience over {!encode_into}. *)

type error =
  | Short  (** not enough bytes yet — read more and retry *)
  | Malformed of string  (** protocol violation — drop the connection *)

val decode : Bytes.t -> off:int -> len:int -> (int * msg * int, error) result
(** [decode buf ~off ~len] parses one frame from [buf.[off .. off+len-1]];
    [Ok (req, msg, consumed)] on success.  Never raises, never reads
    outside the given window. *)

(** {1 Stream reassembly}

    A per-connection buffer that turns a byte stream back into frames.
    The transport reads {e directly into} the reader's buffer
    ({!reserve} / {!commit} expose the writable region, so bytes go
    from the socket into the decode buffer with no intermediate copy),
    then {!next} yields decoded messages. *)

module Reader : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 4096, clamped up to {!max_frame}) is the
      steady-state buffer size — size it to the transport's read chunk
      so draining a batch does not shrink below what the next read
      will reserve anyway. *)

  val reserve : t -> int -> Bytes.t * int
  (** [reserve r n] grows the buffer as needed and returns [(buf, off)]
      with at least [n] writable bytes at [off]. *)

  val commit : t -> int -> unit
  (** Declare that [n] bytes were written at the reserved offset. *)

  val feed : t -> Bytes.t -> off:int -> len:int -> unit
  (** Copying convenience: append bytes (for transports that already
      own a buffer). *)

  val next : t -> [ `Msg of int * msg | `Awaiting | `Corrupt of string ]
  (** Pop the next complete frame, if any.  After [`Corrupt] the
      stream is unrecoverable and the connection should be closed. *)

  val pending_bytes : t -> int

  val capacity : t -> int
  (** Current backing-buffer size.  Grows to hold a pipelined burst,
      then halves back toward the creation capacity (at least
      {!max_frame}) each time the stream drains — it does not hold
      the high-water mark forever. *)
end
