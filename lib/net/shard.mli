(** A node's local slice of the replicated block store.

    Where {!D2_store.Cluster} simulates the {e whole} cluster's
    placement analytically, a live node holds only its own shard: the
    blocks it stores as primary or replica, indexed by key.  The node
    runtime fills it from [Put] frames and drains it on [Remove];
    placement policy (which r nodes hold a block) lives in
    {!D2_net.Node}, which applies the same r-successor rule as
    [Cluster].

    Thread-safe: keys hash across 2^k independently locked partitions,
    so the domain-sharded runtime's get/put path runs in parallel
    across domains — two domains contend only on a same-partition
    collision, and a single-domain node pays one uncontended
    lock/unlock per operation. *)

module Key = D2_keyspace.Key

type t

val create : ?partitions:int -> unit -> t
(** [partitions] (default 32) is rounded up to a power of two. *)

val partitions : t -> int

val put : t -> key:Key.t -> data:string -> unit
(** Insert or overwrite. *)

val get : t -> key:Key.t -> string option
val mem : t -> key:Key.t -> bool

val remove : t -> key:Key.t -> bool
(** True when a block was actually dropped. *)

val count : t -> int
val stored_bytes : t -> int

val iter : t -> (Key.t -> string -> unit) -> unit
(** Visit every held block (re-replication sweeps, tests). *)

val iter_keys : t -> (Key.t -> unit) -> unit
(** Visit every held key without touching the payloads (version-map
    seeding at boot). *)
