module Key = D2_keyspace.Key
module Ring = D2_dht.Ring
module Router = D2_dht.Router
module Rng = D2_util.Rng

type config = { replicas : int; probe_interval : float; rpc_timeout : float }

let default_config = { replicas = 3; probe_interval = 0.5; rpc_timeout = 0.25 }

let join_attempts = 5

(* How often a serving disk-backed node group-commits and releases the
   acks riding the window.  Not a [config] field: the mem path never
   uses it, and the window is a property of the store seam, not of the
   DHT protocol the config describes. *)
let flush_interval = 0.005

module Make (T : Transport.S) = struct
  module L = Linkset.Make (T)

  type t = {
    ls : L.t;
    cfg : config;
    me : int;
    my_id : Key.t;
    ring : Ring.t;
    router : Router.t;
    store : Blockstore.t;
    pending : (int * (unit -> unit)) Queue.t;
        (** acks awaiting durability, per instance: each domain queues
            only completions for its own linkset and drains only its
            own queue after a group commit.  Seqs are pushed in
            monotone order (handlers run sequentially per domain), so
            draining stops at the first still-volatile head. *)
    lock : Mutex.t;  (** guards [ring] and [router] (shared by siblings) *)
    mutable probe_rank : int;
    mutable stopped : bool;
    mutable served : int;
  }

  let ring t = t.ring
  let store t = t.store
  let id t = t.my_id
  let requests_served t = t.served

  (* Run [k] once the store has made [seq] durable.  A mem store (and
     sequence 0, "nothing was appended") is durable now, so [k] runs
     inline — the pre-seam ack path, frame-for-frame. *)
  let ack_when_durable t seq k =
    if Blockstore.durable_seq t.store >= seq then k ()
    else begin
      let first = Queue.is_empty t.pending in
      Queue.push (seq, k) t.pending;
      (* For the round's first deferred op, ask for the commit now
         rather than at the end of the poll round: the fdatasync
         starts while the loop is still draining frames and its
         latency overlaps theirs.  Later ops ride the round-end flush
         — signalling each one would chop the group commit back into
         per-op syncs. *)
      if first then Blockstore.flush_async t.store
    end

  (* The group-commit turn: wake the store's background flusher (it
     stages one write and one fdatasync covering the whole window, off
     this thread), release every ack the watermark already covers,
     push the replies, and give compaction its chance.  Mem stores
     never need any of it. *)
  let flush_store t =
    if Blockstore.is_disk t.store then begin
      if Blockstore.needs_flush t.store then Blockstore.flush_async t.store;
      let d = Blockstore.durable_seq t.store in
      let drained = ref false in
      while
        (not (Queue.is_empty t.pending)) && fst (Queue.peek t.pending) <= d
      do
        let _, k = Queue.pop t.pending in
        k ();
        drained := true
      done;
      if !drained then L.flush_all t.ls;
      ignore (Blockstore.maybe_compact t.store)
    end

  (* The membership view is shared by every sibling (one per domain),
     so all ring/router access is bracketed; the bracket must NOT
     enclose linkset effects — failing a pending RPC runs its callback
     synchronously, which may re-enter [suspect] and deadlock on the
     (non-reentrant) mutex. *)
  let locked t f =
    Mutex.lock t.lock;
    match f () with
    | v ->
        Mutex.unlock t.lock;
        v
    | exception e ->
        Mutex.unlock t.lock;
        raise e

  let add_member_locked t node id =
    if node <> t.me && (not (Ring.mem t.ring ~node)) && not (Ring.id_taken t.ring id)
    then begin
      Ring.add t.ring ~id ~node;
      Router.rebuild t.router
    end

  let add_member t node id = locked t (fun () -> add_member_locked t node id)

  (* A peer stopped answering (probe or RPC timeout, broken stream):
     drop it from the local view so lookups route around it.  Its
     blocks keep serving from the remaining successor replicas; a
     recovered peer re-enters via Join. *)
  let suspect t peer =
    if peer <> t.me then begin
      let removed =
        locked t (fun () ->
            if Ring.mem t.ring ~node:peer then begin
              Ring.remove t.ring ~node:peer;
              Router.rebuild t.router;
              true
            end
            else false)
      in
      if removed then L.drop_link t.ls peer
    end

  let members_locked t =
    List.map (fun n -> (n, Ring.id_of t.ring ~node:n)) (Ring.members t.ring)

  let members t = locked t (fun () -> members_locked t)

  (* Fan a stored block out to the next [depth] distinct successors
     and ack the originator once every forward has concluded AND the
     local copy is durable ([local_seq] — the coordinator's own copy
     rides the group-commit window like any other write). *)
  let fan_out t l req ~key ~depth ~local_seq ~make_msg ~make_ack =
    let targets =
      locked t (fun () ->
          Ring.successors t.ring key (depth + 1)
          |> List.filter (fun n -> n <> t.me)
          |> List.filteri (fun i _ -> i < depth))
    in
    let remaining = ref (List.length targets + 1) and copies = ref 0 in
    let finish () =
      decr remaining;
      if !remaining = 0 then L.reply l ~req (make_ack !copies)
    in
    ack_when_durable t local_seq (fun () ->
        incr copies;
        finish ());
    List.iter
      (fun dst ->
        L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout (make_msg ()) (fun r ->
            (match r with
            | Some (Wire.Put_ack _ | Wire.Remove_ack _) -> incr copies
            | Some _ -> ()
            | None -> suspect t dst);
            finish ()))
      targets

  let handle t l req msg =
    t.served <- t.served + 1;
    match msg with
    | Wire.Lookup { key } ->
        let reply =
          locked t (fun () ->
              let owner = Ring.successor t.ring key in
              if owner = t.me then
                Wire.Owner
                  {
                    node = t.me;
                    lo = Ring.predecessor_id t.ring ~node:t.me;
                    hi = t.my_id;
                  }
              else
                match Router.route t.router ~src:t.me ~key with
                | next :: _ -> Wire.Redirect { next }
                | [] ->
                    (* Route says we own it after all (stale successor
                       read): answer with our own range. *)
                    Wire.Owner
                      {
                        node = t.me;
                        lo = Ring.predecessor_id t.ring ~node:t.me;
                        hi = t.my_id;
                      })
        in
        L.reply l ~req reply
    | Wire.Get { key } -> (
        match Blockstore.get t.store ~key with
        | Some data -> L.reply l ~req (Wire.Found { data })
        | None -> L.reply l ~req Wire.Missing)
    | Wire.Put { key; depth; data } ->
        let seq = Blockstore.put t.store ~key ~data in
        if depth <= 0 then
          ack_when_durable t seq (fun () ->
              L.reply l ~req (Wire.Put_ack { copies = 1 }))
        else
          fan_out t l req ~key ~depth ~local_seq:seq
            ~make_msg:(fun () -> Wire.Put { key; depth = 0; data })
            ~make_ack:(fun copies -> Wire.Put_ack { copies })
    | Wire.Remove { key; depth } ->
        let removed, seq = Blockstore.remove t.store ~key in
        if depth <= 0 then
          ack_when_durable t seq (fun () ->
              L.reply l ~req (Wire.Remove_ack { removed }))
        else
          fan_out t l req ~key ~depth ~local_seq:seq
            ~make_msg:(fun () -> Wire.Remove { key; depth = 0 })
            ~make_ack:(fun _ -> Wire.Remove_ack { removed })
    | Wire.Join { node; id } ->
        let reply =
          locked t (fun () ->
              if
                node = t.me
                || (Ring.id_taken t.ring id && not (Ring.mem t.ring ~node))
              then Wire.Error { code = 1; message = "id taken" }
              else begin
                add_member_locked t node id;
                Wire.Join_ack { members = members_locked t }
              end)
        in
        L.reply l ~req reply
    | Wire.Probe ->
        let epoch = locked t (fun () -> Ring.epoch t.ring) in
        L.reply l ~req (Wire.Probe_ack { node = t.me; epoch })
    | _ ->
        (* Replies never reach the request handler ([Wire.is_request]
           dispatch); a peer sending one as a request is confused. *)
        L.reply l ~req (Wire.Error { code = 2; message = "not a request" })

  let wire t ep =
    L.set_on_request t.ls (fun l req msg -> handle t l req msg);
    L.set_on_peer_down t.ls (fun peer -> suspect t peer);
    T.on_accept ep (fun conn -> ignore (L.attach t.ls conn))

  let create ep ?(policy = Router.Fingers) ?store ~config ~id ~peers () =
    let me = T.node ep in
    let store =
      match store with Some s -> s | None -> Blockstore.mem_store ()
    in
    let ring = Ring.create () in
    Ring.add ring ~id ~node:me;
    List.iter
      (fun (n, pid) ->
        if n <> me && (not (Ring.mem ring ~node:n)) && not (Ring.id_taken ring pid)
        then Ring.add ring ~id:pid ~node:n)
      peers;
    let router =
      Router.create ~ring ~policy ~rng:(Rng.create ((me * 0x9e3779b1) lor 1))
    in
    let t =
      {
        ls = L.create ep;
        cfg = config;
        me;
        my_id = id;
        ring;
        router;
        store;
        pending = Queue.create ();
        lock = Mutex.create ();
        probe_rank = 0;
        stopped = false;
        served = 0;
      }
    in
    wire t ep;
    t

  (* A sibling shares the node's identity and state — ring, router,
     shard, lock — behind its own endpoint and linkset.  One sibling
     per extra domain: the kernel spreads inbound connections across
     the domains' SO_REUSEPORT listeners, each domain drives only its
     own poll loop, and the shared data path stays consistent (shard
     partitions + the membership lock).  Siblings never announce or
     probe; membership flows through whichever sibling a Join or a
     broken stream happens to reach. *)
  let sibling t ep =
    let s =
      {
        t with
        ls = L.create ep;
        pending = Queue.create ();
        probe_rank = 0;
        stopped = false;
        served = 0;
      }
    in
    wire s ep;
    s

  let announce t dst =
    let rec go attempts =
      L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout
        (Wire.Join { node = t.me; id = t.my_id })
        (fun r ->
          match r with
          | Some (Wire.Join_ack { members }) ->
              List.iter (fun (n, nid) -> add_member t n nid) members
          | _ ->
              if attempts > 1 && not t.stopped then
                T.schedule (L.endpoint t.ls) ~delay:t.cfg.rpc_timeout (fun () ->
                    go (attempts - 1)))
    in
    go join_attempts

  let probe t dst =
    if dst <> t.me then
      L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout Wire.Probe (fun r ->
          match r with Some _ -> () | None -> suspect t dst)

  let probe_tick t =
    (* Successor first (the replica chain depends on it), then one
       rotating member so a dead node is eventually noticed by
       everyone, not only its predecessor. *)
    let succ, other =
      locked t (fun () ->
          let succ = Ring.nth_successor_of_node t.ring ~node:t.me 1 in
          let size = Ring.size t.ring in
          let other =
            if size > 2 then begin
              t.probe_rank <- (t.probe_rank + 1) mod size;
              Ring.node_at t.ring t.probe_rank
            end
            else succ
          in
          (succ, other))
    in
    probe t succ;
    if other <> succ then probe t other

  let serve t =
    List.iter (fun (n, _) -> if n <> t.me then announce t n) (members t);
    let ep = L.endpoint t.ls in
    let rec tick () =
      if not t.stopped then begin
        probe_tick t;
        T.schedule ep ~delay:t.cfg.probe_interval tick
      end
    in
    T.schedule ep ~delay:t.cfg.probe_interval tick;
    (* Disk-backed nodes also run the group-commit clock; callers that
       drive [T.poll] themselves may call [flush_store] more often (the
       daemon does, after every poll), this tick is the floor. *)
    if Blockstore.is_disk t.store then begin
      let rec ftick () =
        if not t.stopped then begin
          flush_store t;
          T.schedule ep ~delay:flush_interval ftick
        end
      in
      T.schedule ep ~delay:flush_interval ftick
    end

  let stop t = t.stopped <- true
end
