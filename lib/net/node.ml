module Key = D2_keyspace.Key
module Ring = D2_dht.Ring
module Router = D2_dht.Router
module Rng = D2_util.Rng
module Vv = D2_sync.Version_vector
module Vmap = D2_sync.Vmap
module Digest = D2_sync.Digest
module Repair = D2_sync.Repair

type config = {
  replicas : int;
  probe_interval : float;
  rpc_timeout : float;
  repair_interval : float;
}

let default_config =
  {
    replicas = 3;
    probe_interval = 0.5;
    rpc_timeout = 0.25;
    repair_interval = 1.0;
  }

type repair_stats = {
  mutable repair_frames : int;
  mutable repair_bytes : int;
  mutable pushed : int;
  mutable pulled : int;
  mutable sessions : int;
}

let join_attempts = 5

(* How often a serving disk-backed node group-commits and releases the
   acks riding the window.  Not a [config] field: the mem path never
   uses it, and the window is a property of the store seam, not of the
   DHT protocol the config describes. *)
let flush_interval = 0.005

module Make (T : Transport.S) = struct
  module L = Linkset.Make (T)

  type t = {
    ls : L.t;
    cfg : config;
    me : int;
    my_id : Key.t;
    ring : Ring.t;
    router : Router.t;
    store : Blockstore.t;
    pending : (int * (unit -> unit)) Queue.t;
        (** acks awaiting durability, per instance: each domain queues
            only completions for its own linkset and drains only its
            own queue after a group commit.  Seqs are pushed in
            monotone order (handlers run sequentially per domain), so
            draining stops at the first still-volatile head. *)
    lock : Mutex.t;  (** guards [ring] and [router] (shared by siblings) *)
    vmap : Vmap.t;  (** per-key version state, shared by siblings *)
    repair : repair_stats;  (** anti-entropy counters, shared by siblings *)
    mutable probe_rank : int;
    mutable repair_rank : int;
    mutable stopped : bool;
    mutable served : int;
  }

  let ring t = t.ring
  let store t = t.store
  let id t = t.my_id
  let requests_served t = t.served
  let vmap t = t.vmap
  let repair_stats t = t.repair

  (* Run [k] once the store has made [seq] durable.  A mem store (and
     sequence 0, "nothing was appended") is durable now, so [k] runs
     inline — the pre-seam ack path, frame-for-frame. *)
  let ack_when_durable t seq k =
    if Blockstore.durable_seq t.store >= seq then k ()
    else begin
      let first = Queue.is_empty t.pending in
      Queue.push (seq, k) t.pending;
      (* For the round's first deferred op, ask for the commit now
         rather than at the end of the poll round: the fdatasync
         starts while the loop is still draining frames and its
         latency overlaps theirs.  Later ops ride the round-end flush
         — signalling each one would chop the group commit back into
         per-op syncs. *)
      if first then Blockstore.flush_async t.store
    end

  (* The group-commit turn: wake the store's background flusher (it
     stages one write and one fdatasync covering the whole window, off
     this thread), release every ack the watermark already covers,
     push the replies, and give compaction its chance.  Mem stores
     never need any of it. *)
  let flush_store t =
    if Blockstore.is_disk t.store then begin
      if Blockstore.needs_flush t.store then Blockstore.flush_async t.store;
      let d = Blockstore.durable_seq t.store in
      let drained = ref false in
      while
        (not (Queue.is_empty t.pending)) && fst (Queue.peek t.pending) <= d
      do
        let _, k = Queue.pop t.pending in
        k ();
        drained := true
      done;
      if !drained then L.flush_all t.ls;
      ignore (Blockstore.maybe_compact t.store)
    end

  (* The membership view is shared by every sibling (one per domain),
     so all ring/router access is bracketed; the bracket must NOT
     enclose linkset effects — failing a pending RPC runs its callback
     synchronously, which may re-enter [suspect] and deadlock on the
     (non-reentrant) mutex. *)
  let locked t f =
    Mutex.lock t.lock;
    match f () with
    | v ->
        Mutex.unlock t.lock;
        v
    | exception e ->
        Mutex.unlock t.lock;
        raise e

  let add_member_locked t node id =
    if node <> t.me && (not (Ring.mem t.ring ~node)) && not (Ring.id_taken t.ring id)
    then begin
      Ring.add t.ring ~id ~node;
      Router.rebuild t.router
    end

  let add_member t node id = locked t (fun () -> add_member_locked t node id)

  (* A peer stopped answering (probe or RPC timeout, broken stream):
     drop it from the local view so lookups route around it.  Its
     blocks keep serving from the remaining successor replicas; a
     recovered peer re-enters via Join. *)
  let suspect t peer =
    if peer <> t.me then begin
      let removed =
        locked t (fun () ->
            if Ring.mem t.ring ~node:peer then begin
              Ring.remove t.ring ~node:peer;
              Router.rebuild t.router;
              true
            end
            else false)
      in
      if removed then L.drop_link t.ls peer
    end

  let members_locked t =
    List.map (fun n -> (n, Ring.id_of t.ring ~node:n)) (Ring.members t.ring)

  let members t = locked t (fun () -> members_locked t)

  (* Fan a stored block out to the next [depth] distinct successors
     and ack the originator once every forward has concluded AND the
     local copy is durable ([local_seq] — the coordinator's own copy
     rides the group-commit window like any other write). *)
  let fan_out t l req ~key ~depth ~local_seq ~make_msg ~make_ack =
    let targets =
      locked t (fun () ->
          Ring.successors t.ring key (depth + 1)
          |> List.filter (fun n -> n <> t.me)
          |> List.filteri (fun i _ -> i < depth))
    in
    let remaining = ref (List.length targets + 1) and copies = ref 0 in
    let finish () =
      decr remaining;
      if !remaining = 0 then L.reply l ~req (make_ack !copies)
    in
    ack_when_durable t local_seq (fun () ->
        incr copies;
        finish ());
    List.iter
      (fun dst ->
        L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout (make_msg ()) (fun r ->
            (match r with
            | Some (Wire.Put_ack _ | Wire.Remove_ack _) -> incr copies
            | Some _ -> ()
            | None -> suspect t dst);
            finish ()))
      targets

  (* Install a stamped copy arriving from elsewhere (fan-out, repair
     push, read-repair): the version map resolves it against the local
     entry under the key's partition lock, and only a winning copy
     touches the blockstore — a stale or duplicate delivery is
     version-ignored, never re-applied.  Returns whether the bytes were
     installed, and the store sequence the caller's ack must wait for. *)
  let apply_copy t ~key ~vv ~deleted ~data =
    match Vmap.apply t.vmap ~key ~vv ~deleted with
    | `Store _ ->
        if deleted then begin
          let _, seq = Blockstore.remove t.store ~key in
          (true, seq)
        end
        else (true, Blockstore.put t.store ~key ~data)
    | `Ignore _ -> (false, 0)

  (* Quorum read: the owner fans [Fetch] to the next [q-1] replica
     holders, folds every copy that answers (its own included) through
     the version order, replies with the dominating copy, and pushes
     that copy back to any replica that reported an older one —
     read-repair, off the reply path. *)
  let serve_get_q t l req ~key ~q =
    let local =
      match Vmap.find t.vmap ~key with
      | Some e -> (e.Vmap.vv, e.Vmap.deleted, Blockstore.get t.store ~key)
      | None -> (Vv.empty, false, Blockstore.get t.store ~key)
    in
    let targets =
      if q <= 1 then []
      else
        locked t (fun () ->
            Ring.successors t.ring key q
            |> List.filter (fun n -> n <> t.me)
            |> List.filteri (fun i _ -> i < q - 1))
    in
    let replies = ref [ (t.me, local) ] in
    let remaining = ref (List.length targets) in
    let finish () =
      let winner =
        List.fold_left
          (fun ((_, (avv, _, _)) as a) ((_, (bvv, _, _)) as b) ->
            match Vv.winner avv bvv with `Left -> a | `Right -> b)
          (List.hd !replies) (List.tl !replies)
      in
      let _, (wvv, wdel, wdata) = winner in
      (match (wdel, wdata) with
      | false, Some data -> L.reply l ~req (Wire.Found { data })
      | _ -> L.reply l ~req Wire.Missing);
      (* Read-repair: any replica not already holding a copy at least
         as new as the winner gets the winning copy pushed (the
         receiving side's version map resolves a concurrent pair to
         the same deterministic winner); no ack awaited. *)
      if wdel || wdata <> None then
        List.iter
          (fun (node, (rvv, _, _)) ->
            if not (Vv.dominates rvv wvv) then
              if node = t.me then
                ignore
                  (apply_copy t ~key ~vv:wvv ~deleted:wdel
                     ~data:(Option.value wdata ~default:""))
              else
                L.rpc t.ls ~dst:node ~timeout:t.cfg.rpc_timeout
                  (Wire.Push
                     {
                       key;
                       vv = wvv;
                       deleted = wdel;
                       data = Option.value wdata ~default:"";
                     })
                  (fun _ -> ()))
          !replies
    in
    if !remaining = 0 then finish ()
    else
      List.iter
        (fun dst ->
          L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout (Wire.Fetch { key })
            (fun r ->
              (match r with
              | Some (Wire.Fetch_ack { vv; deleted; data }) ->
                  if not (Vv.is_empty vv && data = None) then
                    replies := (dst, (vv, deleted, data)) :: !replies
              | Some _ -> ()
              | None -> suspect t dst);
              decr remaining;
              if !remaining = 0 then finish ()))
        targets

  let handle t l req msg =
    t.served <- t.served + 1;
    match msg with
    | Wire.Lookup { key } ->
        let reply =
          locked t (fun () ->
              let owner = Ring.successor t.ring key in
              if owner = t.me then
                Wire.Owner
                  {
                    node = t.me;
                    lo = Ring.predecessor_id t.ring ~node:t.me;
                    hi = t.my_id;
                  }
              else
                match Router.route t.router ~src:t.me ~key with
                | next :: _ -> Wire.Redirect { next }
                | [] ->
                    (* Route says we own it after all (stale successor
                       read): answer with our own range. *)
                    Wire.Owner
                      {
                        node = t.me;
                        lo = Ring.predecessor_id t.ring ~node:t.me;
                        hi = t.my_id;
                      })
        in
        L.reply l ~req reply
    | Wire.Get { key } -> (
        match Blockstore.get t.store ~key with
        | Some data -> L.reply l ~req (Wire.Found { data })
        | None -> L.reply l ~req Wire.Missing)
    | Wire.Put { key; depth; vv; data } ->
        (* Coordinator or fan-out copy?  A coordinator put either fans
           out ([depth > 0]) or comes unstamped from a client
           ([replicas = 1] clusters put at depth 0 with an empty
           vector); a fan-out copy always carries the coordinator's
           stamp.  The coordinator stamps exactly once, so every
           replica of this write records the same vector. *)
        if depth > 0 || Vv.is_empty vv then begin
          let vv = Vmap.stamp_put t.vmap ~key ~node:t.me ~incoming:vv in
          let seq = Blockstore.put t.store ~key ~data in
          if depth <= 0 then
            ack_when_durable t seq (fun () ->
                L.reply l ~req (Wire.Put_ack { copies = 1; vv }))
          else
            fan_out t l req ~key ~depth ~local_seq:seq
              ~make_msg:(fun () -> Wire.Put { key; depth = 0; vv; data })
              ~make_ack:(fun copies -> Wire.Put_ack { copies; vv })
        end
        else begin
          let _, seq = apply_copy t ~key ~vv ~deleted:false ~data in
          ack_when_durable t seq (fun () ->
              L.reply l ~req (Wire.Put_ack { copies = 1; vv }))
        end
    | Wire.Remove { key; depth; vv } ->
        if depth > 0 || Vv.is_empty vv then begin
          let vv = Vmap.stamp_remove t.vmap ~key ~node:t.me ~incoming:vv in
          let removed, seq = Blockstore.remove t.store ~key in
          if depth <= 0 then
            ack_when_durable t seq (fun () ->
                L.reply l ~req (Wire.Remove_ack { removed }))
          else
            fan_out t l req ~key ~depth ~local_seq:seq
              ~make_msg:(fun () -> Wire.Remove { key; depth = 0; vv })
              ~make_ack:(fun _ -> Wire.Remove_ack { removed })
        end
        else begin
          let stored, seq = apply_copy t ~key ~vv ~deleted:true ~data:"" in
          ack_when_durable t seq (fun () ->
              L.reply l ~req (Wire.Remove_ack { removed = stored }))
        end
    | Wire.Join { node; id } ->
        let reply =
          locked t (fun () ->
              if
                node = t.me
                || (Ring.id_taken t.ring id && not (Ring.mem t.ring ~node))
              then Wire.Error { code = 1; message = "id taken" }
              else begin
                add_member_locked t node id;
                Wire.Join_ack { members = members_locked t }
              end)
        in
        L.reply l ~req reply
    | Wire.Probe ->
        let epoch = locked t (fun () -> Ring.epoch t.ring) in
        L.reply l ~req (Wire.Probe_ack { node = t.me; epoch })
    | Wire.Sync_digests { lo; hi; prefix; bits } ->
        let children =
          Digest.children ~iter:(Vmap.iter_range t.vmap ~lo ~hi) ~prefix ~bits
        in
        L.reply l ~req (Wire.Sync_digests_ack { children })
    | Wire.Sync_keys { lo; hi; prefix; bits } ->
        let items =
          Digest.items ~iter:(Vmap.iter_range t.vmap ~lo ~hi) ~prefix ~bits
        in
        (* A bucket this deep holding more than the frame cap would
           take ~2^28 hash collisions; truncating (sorted, so both
           sides drop the same tail region) keeps the frame bounded
           and the next session finishes the job. *)
        let items = List.filteri (fun i _ -> i < Wire.max_sync_items) items in
        L.reply l ~req (Wire.Sync_keys_ack { items })
    | Wire.Fetch { key } ->
        let reply =
          match Vmap.find t.vmap ~key with
          | Some e when e.Vmap.deleted ->
              Wire.Fetch_ack { vv = e.Vmap.vv; deleted = true; data = None }
          | Some e ->
              Wire.Fetch_ack
                {
                  vv = e.Vmap.vv;
                  deleted = false;
                  data = Blockstore.get t.store ~key;
                }
          | None ->
              Wire.Fetch_ack { vv = Vv.empty; deleted = false; data = None }
        in
        L.reply l ~req reply
    | Wire.Push { key; vv; deleted; data } ->
        let stored, seq = apply_copy t ~key ~vv ~deleted ~data in
        ack_when_durable t seq (fun () ->
            L.reply l ~req (Wire.Push_ack { stored }))
    | Wire.Get_q { key; q } -> serve_get_q t l req ~key ~q
    | _ ->
        (* Replies never reach the request handler ([Wire.is_request]
           dispatch); a peer sending one as a request is confused. *)
        L.reply l ~req (Wire.Error { code = 2; message = "not a request" })

  let wire t ep =
    L.set_on_request t.ls (fun l req msg -> handle t l req msg);
    L.set_on_peer_down t.ls (fun peer -> suspect t peer);
    T.on_accept ep (fun conn -> ignore (L.attach t.ls conn))

  let create ep ?(policy = Router.Fingers) ?store ~config ~id ~peers () =
    let me = T.node ep in
    let store =
      match store with Some s -> s | None -> Blockstore.mem_store ()
    in
    let ring = Ring.create () in
    Ring.add ring ~id ~node:me;
    List.iter
      (fun (n, pid) ->
        if n <> me && (not (Ring.mem ring ~node:n)) && not (Ring.id_taken ring pid)
        then Ring.add ring ~id:pid ~node:n)
      peers;
    let router =
      Router.create ~ring ~policy ~rng:(Rng.create ((me * 0x9e3779b1) lor 1))
    in
    let vmap = Vmap.create () in
    (* Blocks already in the store (a disk store after restart) enter
       the version map under the empty vector: visible to digests and
       quorum reads, superseded by any stamped copy a peer holds. *)
    Blockstore.iter_keys store (fun key -> Vmap.seed vmap ~key);
    let t =
      {
        ls = L.create ep;
        cfg = config;
        me;
        my_id = id;
        ring;
        router;
        store;
        pending = Queue.create ();
        lock = Mutex.create ();
        vmap;
        repair =
          {
            repair_frames = 0;
            repair_bytes = 0;
            pushed = 0;
            pulled = 0;
            sessions = 0;
          };
        probe_rank = 0;
        repair_rank = 0;
        stopped = false;
        served = 0;
      }
    in
    wire t ep;
    t

  (* A sibling shares the node's identity and state — ring, router,
     shard, lock — behind its own endpoint and linkset.  One sibling
     per extra domain: the kernel spreads inbound connections across
     the domains' SO_REUSEPORT listeners, each domain drives only its
     own poll loop, and the shared data path stays consistent (shard
     partitions + the membership lock).  Siblings never announce or
     probe; membership flows through whichever sibling a Join or a
     broken stream happens to reach. *)
  let sibling t ep =
    let s =
      {
        t with
        ls = L.create ep;
        pending = Queue.create ();
        probe_rank = 0;
        repair_rank = 0;
        stopped = false;
        served = 0;
      }
    in
    wire s ep;
    s

  let announce t dst =
    let rec go attempts =
      L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout
        (Wire.Join { node = t.me; id = t.my_id })
        (fun r ->
          match r with
          | Some (Wire.Join_ack { members }) ->
              List.iter (fun (n, nid) -> add_member t n nid) members
          | _ ->
              if attempts > 1 && not t.stopped then
                T.schedule (L.endpoint t.ls) ~delay:t.cfg.rpc_timeout (fun () ->
                    go (attempts - 1)))
    in
    go join_attempts

  let probe t dst =
    if dst <> t.me then
      L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout Wire.Probe (fun r ->
          match r with Some _ -> () | None -> suspect t dst)

  (* {2 Anti-entropy}

     Each repair tick reconciles this node's primary range — the keys
     it owns, which its r-1 successors must replicate — with one
     successor, rotating through them across ticks.  The session walks
     the digest trie (one [Sync_digests] RPC per narrowing round, one
     [Sync_keys] per leaf), then streams the transfers: [Fetch] for
     entries the peer holds newer, [Push] for entries we hold newer.
     Because the owner drives sync for its own range, every failure
     mode funnels through the same loop: a successor that died takes
     its replicas with it, and the owner's next tick re-replicates to
     the node that ring maintenance promoted into the chain; a node
     restarted empty is refilled by its predecessors' sessions (and
     pulls its own range back from its successors). *)

  type session = {
    peer : int;
    lo : Key.t;
    hi : Key.t;
    probes : Repair.next Queue.t;
    pulls : Key.t Queue.t;
    pushes : (Key.t * Vv.t * bool) Queue.t;
  }

  (* One repair RPC, with traffic accounting: every frame sent or
     received on the repair path is counted, so the experiment can
     price an interval setting in bytes on the wire. *)
  let repair_rpc t ~dst msg cb =
    t.repair.repair_frames <- t.repair.repair_frames + 1;
    t.repair.repair_bytes <- t.repair.repair_bytes + Wire.frame_length msg;
    L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout msg (fun r ->
        (match r with
        | Some reply ->
            t.repair.repair_frames <- t.repair.repair_frames + 1;
            t.repair.repair_bytes <-
              t.repair.repair_bytes + Wire.frame_length reply
        | None -> ());
        cb r)

  let range_iter t s = Vmap.iter_range t.vmap ~lo:s.lo ~hi:s.hi

  (* Sequential session driver: one outstanding RPC, digest narrowing
     first, then pulls, then pushes.  A timeout or unexpected reply
     abandons the session — the next tick starts over. *)
  let rec session_step t s =
    if not t.stopped then
      match Queue.take_opt s.probes with
      | Some (Repair.Digest p) ->
          repair_rpc t ~dst:s.peer
            (Wire.Sync_digests
               { lo = s.lo; hi = s.hi; prefix = p.prefix; bits = p.bits })
            (function
              | Some (Wire.Sync_digests_ack { children = remote }) ->
                  let local =
                    Digest.children ~iter:(range_iter t s) ~prefix:p.Repair.prefix
                      ~bits:p.Repair.bits
                  in
                  List.iter
                    (fun n -> Queue.push n s.probes)
                    (Repair.refine p ~local ~remote);
                  session_step t s
              | _ -> ())
      | Some (Repair.Keys p) ->
          repair_rpc t ~dst:s.peer
            (Wire.Sync_keys
               { lo = s.lo; hi = s.hi; prefix = p.prefix; bits = p.bits })
            (function
              | Some (Wire.Sync_keys_ack { items = remote }) ->
                  let local =
                    Digest.items ~iter:(range_iter t s) ~prefix:p.Repair.prefix
                      ~bits:p.Repair.bits
                    |> List.filteri (fun i _ -> i < Wire.max_sync_items)
                  in
                  let { Repair.pull; push } = Repair.diff ~local ~remote in
                  List.iter (fun k -> Queue.push k s.pulls) pull;
                  List.iter (fun e -> Queue.push e s.pushes) push;
                  session_step t s
              | _ -> ())
      | None -> (
          match Queue.take_opt s.pulls with
          | Some key ->
              repair_rpc t ~dst:s.peer (Wire.Fetch { key })
                (function
                  | Some (Wire.Fetch_ack { vv; deleted; data }) ->
                      if deleted || data <> None then begin
                        let stored, _ =
                          apply_copy t ~key ~vv ~deleted
                            ~data:(Option.value data ~default:"")
                        in
                        if stored then t.repair.pulled <- t.repair.pulled + 1
                      end;
                      session_step t s
                  | _ -> ())
          | None -> (
              match Queue.take_opt s.pushes with
              | Some (key, vv, deleted) -> (
                  let data =
                    if deleted then Some "" else Blockstore.get t.store ~key
                  in
                  match data with
                  | None ->
                      (* Version entry without bytes (lost block):
                         nothing to ship; the peer's copy, if any,
                         flows back on a later pull. *)
                      session_step t s
                  | Some data ->
                      repair_rpc t ~dst:s.peer
                        (Wire.Push { key; vv; deleted; data })
                        (function
                          | Some (Wire.Push_ack { stored }) ->
                              if stored then
                                t.repair.pushed <- t.repair.pushed + 1;
                              session_step t s
                          | _ -> ()))
              | None -> ()))

  let repair_tick t =
    let target =
      locked t (fun () ->
          let span = min (t.cfg.replicas - 1) (Ring.size t.ring - 1) in
          if span < 1 then None
          else begin
            t.repair_rank <- (t.repair_rank mod span) + 1;
            let peer =
              Ring.nth_successor_of_node t.ring ~node:t.me t.repair_rank
            in
            if peer = t.me then None
            else
              Some (peer, Ring.predecessor_id t.ring ~node:t.me, t.my_id)
          end)
    in
    match target with
    | None -> ()
    | Some (peer, lo, hi) ->
        t.repair.sessions <- t.repair.sessions + 1;
        let s =
          {
            peer;
            lo;
            hi;
            probes = Queue.create ();
            pulls = Queue.create ();
            pushes = Queue.create ();
          }
        in
        Queue.push (Repair.Digest Repair.root) s.probes;
        session_step t s

  let probe_tick t =
    (* Successor first (the replica chain depends on it), then one
       rotating member so a dead node is eventually noticed by
       everyone, not only its predecessor. *)
    let succ, other =
      locked t (fun () ->
          let succ = Ring.nth_successor_of_node t.ring ~node:t.me 1 in
          let size = Ring.size t.ring in
          let other =
            if size > 2 then begin
              t.probe_rank <- (t.probe_rank + 1) mod size;
              Ring.node_at t.ring t.probe_rank
            end
            else succ
          in
          (succ, other))
    in
    probe t succ;
    if other <> succ then probe t other

  let serve t =
    List.iter (fun (n, _) -> if n <> t.me then announce t n) (members t);
    let ep = L.endpoint t.ls in
    let rec tick () =
      if not t.stopped then begin
        probe_tick t;
        T.schedule ep ~delay:t.cfg.probe_interval tick
      end
    in
    T.schedule ep ~delay:t.cfg.probe_interval tick;
    (* Anti-entropy clock: one repair session per interval, rotating
       across the successor set.  An interval of 0 disables repair
       (the control arm of the availability experiment, and tests that
       pin exact frame counts). *)
    if t.cfg.repair_interval > 0.0 then begin
      let rec rtick () =
        if not t.stopped then begin
          repair_tick t;
          T.schedule ep ~delay:t.cfg.repair_interval rtick
        end
      in
      T.schedule ep ~delay:t.cfg.repair_interval rtick
    end;
    (* Disk-backed nodes also run the group-commit clock; callers that
       drive [T.poll] themselves may call [flush_store] more often (the
       daemon does, after every poll), this tick is the floor. *)
    if Blockstore.is_disk t.store then begin
      let rec ftick () =
        if not t.stopped then begin
          flush_store t;
          T.schedule ep ~delay:flush_interval ftick
        end
      in
      T.schedule ep ~delay:flush_interval ftick
    end

  let stop t = t.stopped <- true
end
