module Key = D2_keyspace.Key
module Ring = D2_dht.Ring
module Router = D2_dht.Router
module Rng = D2_util.Rng

type config = { replicas : int; probe_interval : float; rpc_timeout : float }

let default_config = { replicas = 3; probe_interval = 0.5; rpc_timeout = 0.25 }

let join_attempts = 5

module Make (T : Transport.S) = struct
  module L = Linkset.Make (T)

  type t = {
    ls : L.t;
    cfg : config;
    me : int;
    my_id : Key.t;
    ring : Ring.t;
    router : Router.t;
    shard : Shard.t;
    mutable probe_rank : int;
    mutable stopped : bool;
    mutable served : int;
  }

  let ring t = t.ring
  let shard t = t.shard
  let id t = t.my_id
  let requests_served t = t.served

  let add_member t node id =
    if node <> t.me && (not (Ring.mem t.ring ~node)) && not (Ring.id_taken t.ring id)
    then begin
      Ring.add t.ring ~id ~node;
      Router.rebuild t.router
    end

  (* A peer stopped answering (probe or RPC timeout, broken stream):
     drop it from the local view so lookups route around it.  Its
     blocks keep serving from the remaining successor replicas; a
     recovered peer re-enters via Join. *)
  let suspect t peer =
    if peer <> t.me && Ring.mem t.ring ~node:peer then begin
      Ring.remove t.ring ~node:peer;
      Router.rebuild t.router;
      L.drop_link t.ls peer
    end

  let members t =
    List.map (fun n -> (n, Ring.id_of t.ring ~node:n)) (Ring.members t.ring)

  (* Fan a stored block out to the next [depth] distinct successors
     and ack the originator once every forward has concluded. *)
  let fan_out t l req ~key ~depth ~make_msg ~make_ack =
    let targets =
      Ring.successors t.ring key (depth + 1)
      |> List.filter (fun n -> n <> t.me)
      |> List.filteri (fun i _ -> i < depth)
    in
    match targets with
    | [] -> L.reply l ~req (make_ack 1)
    | _ ->
        let remaining = ref (List.length targets) and copies = ref 1 in
        List.iter
          (fun dst ->
            L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout (make_msg ()) (fun r ->
                (match r with
                | Some (Wire.Put_ack _ | Wire.Remove_ack _) -> incr copies
                | Some _ -> ()
                | None -> suspect t dst);
                decr remaining;
                if !remaining = 0 then L.reply l ~req (make_ack !copies)))
          targets

  let handle t l req msg =
    t.served <- t.served + 1;
    match msg with
    | Wire.Lookup { key } ->
        let owner = Ring.successor t.ring key in
        if owner = t.me then
          L.reply l ~req
            (Wire.Owner
               { node = t.me; lo = Ring.predecessor_id t.ring ~node:t.me; hi = t.my_id })
        else begin
          match Router.route t.router ~src:t.me ~key with
          | next :: _ -> L.reply l ~req (Wire.Redirect { next })
          | [] ->
              (* Route says we own it after all (stale successor read):
                 answer with our own range. *)
              L.reply l ~req
                (Wire.Owner
                   {
                     node = t.me;
                     lo = Ring.predecessor_id t.ring ~node:t.me;
                     hi = t.my_id;
                   })
        end
    | Wire.Get { key } -> (
        match Shard.get t.shard ~key with
        | Some data -> L.reply l ~req (Wire.Found { data })
        | None -> L.reply l ~req Wire.Missing)
    | Wire.Put { key; depth; data } ->
        Shard.put t.shard ~key ~data;
        if depth <= 0 then L.reply l ~req (Wire.Put_ack { copies = 1 })
        else
          fan_out t l req ~key ~depth
            ~make_msg:(fun () -> Wire.Put { key; depth = 0; data })
            ~make_ack:(fun copies -> Wire.Put_ack { copies })
    | Wire.Remove { key; depth } ->
        let removed = Shard.remove t.shard ~key in
        if depth <= 0 then L.reply l ~req (Wire.Remove_ack { removed })
        else
          fan_out t l req ~key ~depth
            ~make_msg:(fun () -> Wire.Remove { key; depth = 0 })
            ~make_ack:(fun _ -> Wire.Remove_ack { removed })
    | Wire.Join { node; id } ->
        if node = t.me || Ring.id_taken t.ring id && not (Ring.mem t.ring ~node)
        then L.reply l ~req (Wire.Error { code = 1; message = "id taken" })
        else begin
          add_member t node id;
          L.reply l ~req (Wire.Join_ack { members = members t })
        end
    | Wire.Probe ->
        L.reply l ~req (Wire.Probe_ack { node = t.me; epoch = Ring.epoch t.ring })
    | _ ->
        (* Replies never reach the request handler ([Wire.is_request]
           dispatch); a peer sending one as a request is confused. *)
        L.reply l ~req (Wire.Error { code = 2; message = "not a request" })

  let create ep ~config ~id ~peers =
    let me = T.node ep in
    let ring = Ring.create () in
    Ring.add ring ~id ~node:me;
    List.iter
      (fun (n, pid) ->
        if n <> me && (not (Ring.mem ring ~node:n)) && not (Ring.id_taken ring pid)
        then Ring.add ring ~id:pid ~node:n)
      peers;
    let router =
      Router.create ~ring ~policy:Router.Fingers
        ~rng:(Rng.create ((me * 0x9e3779b1) lor 1))
    in
    let t =
      {
        ls = L.create ep;
        cfg = config;
        me;
        my_id = id;
        ring;
        router;
        shard = Shard.create ();
        probe_rank = 0;
        stopped = false;
        served = 0;
      }
    in
    L.set_on_request t.ls (fun l req msg -> handle t l req msg);
    L.set_on_peer_down t.ls (fun peer -> suspect t peer);
    T.on_accept ep (fun conn -> ignore (L.attach t.ls conn));
    t

  let announce t dst =
    let rec go attempts =
      L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout
        (Wire.Join { node = t.me; id = t.my_id })
        (fun r ->
          match r with
          | Some (Wire.Join_ack { members }) ->
              List.iter (fun (n, nid) -> add_member t n nid) members
          | _ ->
              if attempts > 1 && not t.stopped then
                T.schedule (L.endpoint t.ls) ~delay:t.cfg.rpc_timeout (fun () ->
                    go (attempts - 1)))
    in
    go join_attempts

  let probe t dst =
    if dst <> t.me then
      L.rpc t.ls ~dst ~timeout:t.cfg.rpc_timeout Wire.Probe (fun r ->
          match r with Some _ -> () | None -> suspect t dst)

  let probe_tick t =
    (* Successor first (the replica chain depends on it), then one
       rotating member so a dead node is eventually noticed by
       everyone, not only its predecessor. *)
    let succ = Ring.nth_successor_of_node t.ring ~node:t.me 1 in
    probe t succ;
    let size = Ring.size t.ring in
    if size > 2 then begin
      t.probe_rank <- (t.probe_rank + 1) mod size;
      let other = Ring.node_at t.ring t.probe_rank in
      if other <> succ then probe t other
    end

  let serve t =
    List.iter (fun (n, _) -> if n <> t.me then announce t n) (members t);
    let ep = L.endpoint t.ls in
    let rec tick () =
      if not t.stopped then begin
        probe_tick t;
        T.schedule ep ~delay:t.cfg.probe_interval tick
      end
    in
    T.schedule ep ~delay:t.cfg.probe_interval tick

  let stop t = t.stopped <- true
end
