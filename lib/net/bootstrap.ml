module Key = D2_keyspace.Key
module Rng = D2_util.Rng

let node_id i =
  if i < 0 then invalid_arg "Bootstrap.node_id: negative node";
  Key.random (Rng.create (0xd2d0 + (i * 7919)))

let peers n = List.init n (fun i -> (i, node_id i))

let client_handle k = 0x10000 + k
