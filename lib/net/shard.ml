module Key = D2_keyspace.Key

type t = { tbl : string Key.Table.t; mutable bytes : int }

let create () = { tbl = Key.Table.create 256; bytes = 0 }

let put t ~key ~data =
  (match Key.Table.find_opt t.tbl key with
  | Some old -> t.bytes <- t.bytes - String.length old
  | None -> ());
  Key.Table.replace t.tbl key data;
  t.bytes <- t.bytes + String.length data

let get t ~key = Key.Table.find_opt t.tbl key
let mem t ~key = Key.Table.mem t.tbl key

let remove t ~key =
  match Key.Table.find_opt t.tbl key with
  | None -> false
  | Some old ->
      Key.Table.remove t.tbl key;
      t.bytes <- t.bytes - String.length old;
      true

let count t = Key.Table.length t.tbl
let stored_bytes t = t.bytes
let iter t f = Key.Table.iter f t.tbl
