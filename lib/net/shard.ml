module Key = D2_keyspace.Key

(* The store is split into 2^k partitions by key hash, each behind its
   own mutex, so the domain-sharded runtime's data path scales: two
   domains touching different keys almost never contend (with 32
   partitions and a handful of domains, collisions are rare), and a
   single-domain node pays only an uncontended lock/unlock (~25 ns)
   per operation. *)

type partition = {
  tbl : string Key.Table.t;
  lock : Mutex.t;
  mutable bytes : int;
}

type t = { parts : partition array; mask : int }

let default_partitions = 32

let create ?(partitions = default_partitions) () =
  if partitions < 1 then invalid_arg "Shard.create: partitions < 1";
  (* Round up to a power of two so partition selection is a mask. *)
  let n = ref 1 in
  while !n < partitions do
    n := !n * 2
  done;
  {
    parts =
      Array.init !n (fun _ ->
          { tbl = Key.Table.create 64; lock = Mutex.create (); bytes = 0 });
    mask = !n - 1;
  }

let part t key = t.parts.(Key.hash key land t.mask)

let locked p f =
  Mutex.lock p.lock;
  match f p with
  | v ->
      Mutex.unlock p.lock;
      v
  | exception e ->
      Mutex.unlock p.lock;
      raise e

let put t ~key ~data =
  locked (part t key) (fun p ->
      (match Key.Table.find_opt p.tbl key with
      | Some old -> p.bytes <- p.bytes - String.length old
      | None -> ());
      Key.Table.replace p.tbl key data;
      p.bytes <- p.bytes + String.length data)

let get t ~key = locked (part t key) (fun p -> Key.Table.find_opt p.tbl key)
let mem t ~key = locked (part t key) (fun p -> Key.Table.mem p.tbl key)

let remove t ~key =
  locked (part t key) (fun p ->
      match Key.Table.find_opt p.tbl key with
      | None -> false
      | Some old ->
          Key.Table.remove p.tbl key;
          p.bytes <- p.bytes - String.length old;
          true)

let count t =
  Array.fold_left
    (fun acc p -> acc + locked p (fun p -> Key.Table.length p.tbl))
    0 t.parts

let stored_bytes t =
  Array.fold_left (fun acc p -> acc + locked p (fun p -> p.bytes)) 0 t.parts

let iter t f =
  Array.iter (fun p -> locked p (fun p -> Key.Table.iter f p.tbl)) t.parts

let iter_keys t f =
  Array.iter
    (fun p -> locked p (fun p -> Key.Table.iter (fun k _ -> f k) p.tbl))
    t.parts

let partitions t = Array.length t.parts
