module Key = D2_keyspace.Key
module Store = D2_segstore.Store

type t = Mem of Shard.t | Disk of Store.t

let mem_store ?partitions () = Mem (Shard.create ?partitions ())
let disk st = Disk st
let is_disk = function Disk _ -> true | Mem _ -> false

let put t ~key ~data =
  match t with
  | Mem s ->
      Shard.put s ~key ~data;
      0
  | Disk s -> Store.put s ~key ~data

let remove t ~key =
  match t with
  | Mem s -> (Shard.remove s ~key, 0)
  | Disk s -> Store.remove s ~key

let get t ~key =
  match t with Mem s -> Shard.get s ~key | Disk s -> Store.get s ~key

let mem_block t ~key =
  match t with Mem s -> Shard.mem s ~key | Disk s -> Store.mem s ~key

let durable_seq = function Mem _ -> max_int | Disk s -> Store.durable_seq s
let flush = function Mem _ -> () | Disk s -> Store.flush s
let flush_async = function Mem _ -> () | Disk s -> Store.flush_async s
let needs_flush = function Mem _ -> false | Disk s -> Store.needs_flush s
let maybe_compact = function Mem _ -> 0 | Disk s -> Store.maybe_compact s
let count = function Mem s -> Shard.count s | Disk s -> Store.count s

let stored_bytes = function
  | Mem s -> Shard.stored_bytes s
  | Disk s -> Store.stored_bytes s

let iter t f = match t with Mem s -> Shard.iter s f | Disk s -> Store.iter s f

let iter_keys t f =
  match t with Mem s -> Shard.iter_keys s f | Disk s -> Store.iter_keys s f
let close = function Mem _ -> () | Disk s -> Store.close s
let shard = function Mem s -> Some s | Disk _ -> None
let store = function Mem _ -> None | Disk s -> Some s
