(** Client library: the §5 lookup cache on the request path.

    Every operation first resolves the key's owner — from the range
    cache when a cached, unexpired range covers the key, otherwise by
    an iterative lookup (ask a seed node, follow [Redirect]s, cache
    the final [(range, owner)]) — then speaks directly to the owner.
    A dead or wrong owner (RPC timeout, [Missing] under a cached
    range) invalidates the covering cache entry and the operation
    retries through the next seed, so reads keep serving across node
    failures as long as a replica survives.

    With D2's locality-preserving keys, consecutive keys of a task
    fall into the range just cached and the iterative lookup is
    skipped almost always — the live-cluster counterpart of the
    paper's up-to-95% lookup elimination. *)

module Key = D2_keyspace.Key
module Lookup_cache = D2_cache.Lookup_cache

module Make (T : Transport.S) : sig
  type t

  val create :
    T.t ->
    ?ttl:float ->
    ?replicas:int ->
    ?quorum_r:int ->
    ?quorum_w:int ->
    ?rpc_timeout:float ->
    ?max_hops:int ->
    ?retries:int ->
    ?quantum:float ->
    ?alpha:int ->
    seeds:int list ->
    unit ->
    t
  (** [seeds] are nodes to start iterative lookups from (rotated
      round-robin; must be non-empty).  [replicas] (default 3) is the
      fan-out depth requested on puts; [quantum] bounds each poll step
      while an operation waits.  [ttl] is the cache TTL (default
      4500 s — virtual seconds under {!Transport_mem}).

      [quorum_w] (default 1) is the write quorum: a put whose ack
      reports fewer than [quorum_w] stored copies is treated as a
      failure and retried through the ladder (replays are idempotent —
      replicas resolve the duplicate through its version vector).
      [quorum_r] (default 1) is the read quorum: at 1, gets are the
      plain owner read; at 2+ they become [Get_q] — the owner consults
      [quorum_r] replicas, answers with the version-dominating copy,
      and read-repairs stale replicas inline — so a read survives an
      owner that crashed and restarted empty before repair caught up.
      @raise Invalid_argument if either quorum is outside
      [1..replicas].

      [alpha] (default 1) enables α-way parallel lookups: a cache miss
      races [alpha] independent iterative redirect-chains, each
      entered through a distinct seed, over the pipelined async path;
      the first owner answer wins and the losing chains are cancelled
      (a settled chain issues no further messages).  Nothing changes
      on the wire — each chain is an ordinary iterative lookup — so
      [alpha = 1] is byte-identical to the sequential ladder.  The
      point is p99 under churn: a chain stalled on a dead hop's RPC
      timeout no longer serializes the lookup.  Costs up to [alpha]×
      the lookup messages on misses.
      @raise Invalid_argument if [alpha < 1]. *)

  (** {2 Synchronous operations}

      Each drives the transport's poll loop until the operation
      concludes — one operation in flight at a time. *)

  val put : t -> key:Key.t -> data:string -> [ `Ok of int | `Failed ]
  (** [`Ok copies]: the coordinator stored the block and [copies]
      replicas (itself included) acked.
      @raise Invalid_argument if [data] exceeds {!Wire.max_payload}. *)

  val get : t -> key:Key.t -> [ `Found of string | `Missing | `Failed ]
  val remove : t -> key:Key.t -> [ `Ok of bool | `Failed ]

  (** {2 Pipelined operations}

      The [_async] variants queue the request and return immediately;
      the continuation fires from a later {!poll} once the operation
      concludes (reply, retry ladder exhausted, or timeout).  Requests
      to one owner share a single connection, correlated by request
      id, and frames queued between two polls coalesce into one
      transport write — keep a window of W operations open and the
      whole window rides one send.  Continuations run exactly once. *)

  val put_async :
    t -> key:Key.t -> data:string -> ([ `Ok of int | `Failed ] -> unit) -> unit
  (** @raise Invalid_argument if [data] exceeds {!Wire.max_payload}. *)

  val get_async :
    t -> key:Key.t -> ([ `Found of string | `Missing | `Failed ] -> unit) -> unit

  val remove_async :
    t -> key:Key.t -> ([ `Ok of bool | `Failed ] -> unit) -> unit

  val poll : t -> timeout:float -> unit
  (** One event-loop step: flush every queued frame, deliver I/O and
      timers for at most [timeout] seconds, flush again. *)

  val in_flight : t -> int
  (** Operations issued asynchronously and not yet concluded. *)

  val cache : t -> Lookup_cache.t
  (** The range cache (hit/miss counters included). *)

  val lookup_rpcs : t -> int
  (** Iterative-lookup messages sent (redirect hops included). *)

  val failures : t -> int
  (** Operations that exhausted their retries. *)
end
