(** Zero-copy I/O on non-blocking descriptors.

    [Unix.read]/[Unix.write] memcpy through an intermediate C buffer
    so they can release the OCaml runtime around a potentially
    blocking syscall.  On a non-blocking socket the syscall never
    blocks, so these stubs call [read]/[send] directly on the OCaml
    buffer — no runtime release, no extra copy.  On the 8 KB-block
    data path that is one full memcpy of every payload byte saved in
    each direction.

    Only ever pass non-blocking descriptors. *)

val again : int
(** Result meaning EAGAIN/EWOULDBLOCK/EINTR: retry at next readiness. *)

val error : int
(** Result meaning a hard error; the stream is past saving. *)

val read : Unix.file_descr -> Bytes.t -> off:int -> len:int -> int
(** Bytes read ([0] = orderly EOF), or {!again} / {!error}. *)

val write : Unix.file_descr -> Bytes.t -> off:int -> len:int -> int
(** Bytes written, or {!again} / {!error}.  Uses [MSG_NOSIGNAL]: a
    dead peer yields {!error}, never SIGPIPE. *)
