module Key = D2_keyspace.Key
module Vv = D2_sync.Version_vector

(* Bumped whenever the frame set or a frame layout changes; exchanged
   in the transport hello so a mixed-version cluster fails fast with a
   clear error instead of a mid-stream decode error.  2: version
   vectors on Put/Put_ack/Remove plus the anti-entropy messages
   (tags 16-24). *)
let protocol_version = 2
let vv_empty = Vv.empty

let max_payload = 8192
let max_members = 4096
let max_error = 1024
let max_sync_items = 256

(* Largest body is a full Join_ack: u16 count + count * (u32 node +
   64-byte id).  Every other message is far below it — the worst
   Sync_keys_ack (max_sync_items entries, each a key + a full
   version vector + a flag) is about half. *)
let max_frame = 9 + 2 + (max_members * (4 + Key.size))

type msg =
  | Lookup of { key : Key.t }
  | Owner of { node : int; lo : Key.t; hi : Key.t }
  | Redirect of { next : int }
  | Get of { key : Key.t }
  | Found of { data : string }
  | Missing
  | Put of { key : Key.t; depth : int; vv : Vv.t; data : string }
  | Put_ack of { copies : int; vv : Vv.t }
  | Remove of { key : Key.t; depth : int; vv : Vv.t }
  | Remove_ack of { removed : bool }
  | Join of { node : int; id : Key.t }
  | Join_ack of { members : (int * Key.t) list }
  | Probe
  | Probe_ack of { node : int; epoch : int }
  | Error of { code : int; message : string }
  | Sync_digests of { lo : Key.t; hi : Key.t; prefix : int; bits : int }
  | Sync_digests_ack of { children : (int * int) array }
  | Sync_keys of { lo : Key.t; hi : Key.t; prefix : int; bits : int }
  | Sync_keys_ack of { items : (Key.t * Vv.t * bool) list }
  | Fetch of { key : Key.t }
  | Fetch_ack of { vv : Vv.t; deleted : bool; data : string option }
  | Push of { key : Key.t; vv : Vv.t; deleted : bool; data : string }
  | Push_ack of { stored : bool }
  | Get_q of { key : Key.t; q : int }

let is_request = function
  | Lookup _ | Get _ | Put _ | Remove _ | Join _ | Probe | Sync_digests _
  | Sync_keys _ | Fetch _ | Push _ | Get_q _ ->
      true
  | Owner _ | Redirect _ | Found _ | Missing | Put_ack _ | Remove_ack _
  | Join_ack _ | Probe_ack _ | Error _ | Sync_digests_ack _ | Sync_keys_ack _
  | Fetch_ack _ | Push_ack _ ->
      false

let tag_of = function
  | Lookup _ -> 1
  | Owner _ -> 2
  | Redirect _ -> 3
  | Get _ -> 4
  | Found _ -> 5
  | Missing -> 6
  | Put _ -> 7
  | Put_ack _ -> 8
  | Remove _ -> 9
  | Remove_ack _ -> 10
  | Join _ -> 11
  | Join_ack _ -> 12
  | Probe -> 13
  | Probe_ack _ -> 14
  | Error _ -> 15
  | Sync_digests _ -> 16
  | Sync_digests_ack _ -> 17
  | Sync_keys _ -> 18
  | Sync_keys_ack _ -> 19
  | Fetch _ -> 20
  | Fetch_ack _ -> 21
  | Push _ -> 22
  | Push_ack _ -> 23
  | Get_q _ -> 24

let tag_name = function
  | Lookup _ -> "lookup"
  | Owner _ -> "owner"
  | Redirect _ -> "redirect"
  | Get _ -> "get"
  | Found _ -> "found"
  | Missing -> "missing"
  | Put _ -> "put"
  | Put_ack _ -> "put_ack"
  | Remove _ -> "remove"
  | Remove_ack _ -> "remove_ack"
  | Join _ -> "join"
  | Join_ack _ -> "join_ack"
  | Probe -> "probe"
  | Probe_ack _ -> "probe_ack"
  | Error _ -> "error"
  | Sync_digests _ -> "sync_digests"
  | Sync_digests_ack _ -> "sync_digests_ack"
  | Sync_keys _ -> "sync_keys"
  | Sync_keys_ack _ -> "sync_keys_ack"
  | Fetch _ -> "fetch"
  | Fetch_ack _ -> "fetch_ack"
  | Push _ -> "push"
  | Push_ack _ -> "push_ack"
  | Get_q _ -> "get_q"

let body_length = function
  | Lookup _ | Get _ | Fetch _ -> Key.size
  | Owner _ -> 4 + Key.size + Key.size
  | Redirect _ -> 4
  | Found { data } -> 4 + String.length data
  | Missing | Probe -> 0
  | Put { vv; data; _ } ->
      Key.size + 1 + Vv.encoded_size vv + 4 + String.length data
  | Put_ack { vv; _ } -> 4 + Vv.encoded_size vv
  | Remove { vv; _ } -> Key.size + 1 + Vv.encoded_size vv
  | Remove_ack _ -> 1
  | Join _ -> 4 + Key.size
  | Join_ack { members } -> 2 + (List.length members * (4 + Key.size))
  | Probe_ack _ -> 8
  | Error { message; _ } -> 4 + 2 + String.length message
  | Sync_digests _ | Sync_keys _ -> Key.size + Key.size + 4 + 1
  | Sync_digests_ack { children } -> 1 + (Array.length children * 8)
  | Sync_keys_ack { items } ->
      2
      + List.fold_left
          (fun acc (_, vv, _) -> acc + Key.size + Vv.encoded_size vv + 1)
          0 items
  | Fetch_ack { vv; data; _ } -> (
      Vv.encoded_size vv + 1
      + match data with None -> 0 | Some d -> 4 + String.length d)
  | Push { vv; data; _ } ->
      Key.size + Vv.encoded_size vv + 1 + 4 + String.length data
  | Push_ack _ -> 1
  | Get_q _ -> Key.size + 1

let frame_length msg = 9 + body_length msg

let u32_max = 0xffff_ffff

let check_u32 what v =
  if v < 0 || v > u32_max then
    invalid_arg (Printf.sprintf "Wire.encode: %s %d outside u32" what v)

let check_u8 what v =
  if v < 0 || v > 0xff then
    invalid_arg (Printf.sprintf "Wire.encode: %s %d outside u8" what v)

let validate msg =
  (match msg with
  | Found { data } | Put { data; _ } | Push { data; _ }
  | Fetch_ack { data = Some data; _ } ->
      if String.length data > max_payload then
        invalid_arg "Wire.encode: payload exceeds max_payload"
  | Join_ack { members } ->
      if List.length members > max_members then
        invalid_arg "Wire.encode: membership list exceeds max_members";
      List.iter (fun (n, _) -> check_u32 "member node" n) members
  | Error { message; _ } ->
      if String.length message > max_error then
        invalid_arg "Wire.encode: error message exceeds max_error"
  | Sync_keys_ack { items } ->
      if List.length items > max_sync_items then
        invalid_arg "Wire.encode: sync item list exceeds max_sync_items"
  | _ -> ());
  match msg with
  | Owner { node; _ } -> check_u32 "node" node
  | Redirect { next } -> check_u32 "next" next
  | Put { depth; _ } | Remove { depth; _ } -> check_u8 "depth" depth
  | Put_ack { copies; _ } -> check_u32 "copies" copies
  | Join { node; _ } -> check_u32 "node" node
  | Probe_ack { node; epoch } ->
      check_u32 "node" node;
      check_u32 "epoch" epoch
  | Error { code; _ } -> check_u32 "code" code
  | Sync_digests { prefix; bits; _ } | Sync_keys { prefix; bits; _ } ->
      check_u32 "prefix" prefix;
      check_u8 "bits" bits
  | Sync_digests_ack { children } ->
      if Array.length children <> 16 then
        invalid_arg "Wire.encode: digest ack must carry 16 children";
      Array.iter
        (fun (sum, count) ->
          check_u32 "digest sum" sum;
          check_u32 "digest count" count)
        children
  | Get_q { q; _ } -> check_u8 "quorum" q
  | _ -> ()

let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land u32_max

let set_key b off k = Bytes.blit_string (Key.to_string k) 0 b off Key.size

(* Returns the offset past the encoded vector, so callers thread it as
   a cursor through variable-length bodies. *)
let set_vv b off vv = off + Vv.encode_into vv b ~off

let encode_into buf ~off ~req msg =
  check_u32 "request id" req;
  validate msg;
  let len = frame_length msg in
  if off < 0 || off + len > Bytes.length buf then
    invalid_arg "Wire.encode_into: buffer too small";
  set_u32 buf off (len - 4);
  set_u32 buf (off + 4) req;
  Bytes.set_uint8 buf (off + 8) (tag_of msg);
  let p = off + 9 in
  (match msg with
  | Lookup { key } | Get { key } -> set_key buf p key
  | Owner { node; lo; hi } ->
      set_u32 buf p node;
      set_key buf (p + 4) lo;
      set_key buf (p + 4 + Key.size) hi
  | Redirect { next } -> set_u32 buf p next
  | Found { data } ->
      set_u32 buf p (String.length data);
      Bytes.blit_string data 0 buf (p + 4) (String.length data)
  | Missing | Probe -> ()
  | Put { key; depth; vv; data } ->
      set_key buf p key;
      Bytes.set_uint8 buf (p + Key.size) depth;
      let q = set_vv buf (p + Key.size + 1) vv in
      set_u32 buf q (String.length data);
      Bytes.blit_string data 0 buf (q + 4) (String.length data)
  | Put_ack { copies; vv } ->
      set_u32 buf p copies;
      ignore (set_vv buf (p + 4) vv)
  | Remove { key; depth; vv } ->
      set_key buf p key;
      Bytes.set_uint8 buf (p + Key.size) depth;
      ignore (set_vv buf (p + Key.size + 1) vv)
  | Remove_ack { removed } -> Bytes.set_uint8 buf p (if removed then 1 else 0)
  | Join { node; id } ->
      set_u32 buf p node;
      set_key buf (p + 4) id
  | Join_ack { members } ->
      Bytes.set_uint16_be buf p (List.length members);
      List.iteri
        (fun i (n, id) ->
          let q = p + 2 + (i * (4 + Key.size)) in
          set_u32 buf q n;
          set_key buf (q + 4) id)
        members
  | Probe_ack { node; epoch } ->
      set_u32 buf p node;
      set_u32 buf (p + 4) epoch
  | Error { code; message } ->
      set_u32 buf p code;
      Bytes.set_uint16_be buf (p + 4) (String.length message);
      Bytes.blit_string message 0 buf (p + 6) (String.length message)
  | Sync_digests { lo; hi; prefix; bits } | Sync_keys { lo; hi; prefix; bits }
    ->
      set_key buf p lo;
      set_key buf (p + Key.size) hi;
      set_u32 buf (p + (2 * Key.size)) prefix;
      Bytes.set_uint8 buf (p + (2 * Key.size) + 4) bits
  | Sync_digests_ack { children } ->
      Bytes.set_uint8 buf p (Array.length children);
      Array.iteri
        (fun i (sum, count) ->
          set_u32 buf (p + 1 + (8 * i)) sum;
          set_u32 buf (p + 5 + (8 * i)) count)
        children
  | Sync_keys_ack { items } ->
      Bytes.set_uint16_be buf p (List.length items);
      let q = ref (p + 2) in
      List.iter
        (fun (k, vv, deleted) ->
          set_key buf !q k;
          let r = set_vv buf (!q + Key.size) vv in
          Bytes.set_uint8 buf r (if deleted then 1 else 0);
          q := r + 1)
        items
  | Fetch { key } -> set_key buf p key
  | Fetch_ack { vv; deleted; data } ->
      let q = set_vv buf p vv in
      let flags =
        (if deleted then 1 else 0) lor match data with Some _ -> 2 | None -> 0
      in
      Bytes.set_uint8 buf q flags;
      (match data with
      | None -> ()
      | Some d ->
          set_u32 buf (q + 1) (String.length d);
          Bytes.blit_string d 0 buf (q + 5) (String.length d))
  | Push { key; vv; deleted; data } ->
      set_key buf p key;
      let q = set_vv buf (p + Key.size) vv in
      Bytes.set_uint8 buf q (if deleted then 1 else 0);
      set_u32 buf (q + 1) (String.length data);
      Bytes.blit_string data 0 buf (q + 5) (String.length data)
  | Push_ack { stored } -> Bytes.set_uint8 buf p (if stored then 1 else 0)
  | Get_q { key; q } ->
      set_key buf p key;
      Bytes.set_uint8 buf (p + Key.size) q);
  len

let encode ~req msg =
  let buf = Bytes.create (frame_length msg) in
  ignore (encode_into buf ~off:0 ~req msg);
  buf

type error = Short | Malformed of string

(* Body parsing uses a poor-man's cursor over the declared body
   window; any read past the window is a [Malformed] frame (the frame
   is complete — missing fields cannot appear later). *)
exception Bad of string

let decode buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    Stdlib.Error (Malformed "window outside buffer")
  else if len < 4 then Stdlib.Error Short
  else
    let flen = get_u32 buf off in
    if flen < 5 then Stdlib.Error (Malformed "frame length below header size")
    else if flen + 4 > max_frame then
      Stdlib.Error (Malformed "frame length exceeds max_frame")
    else if len < flen + 4 then Stdlib.Error Short
    else begin
      let req = get_u32 buf (off + 4) in
      let tag = Bytes.get_uint8 buf (off + 8) in
      let body = off + 9 in
      let body_len = flen - 5 in
      let stop = body + body_len in
      let pos = ref body in
      let need n =
        if !pos + n > stop then raise (Bad "truncated body");
        let p = !pos in
        pos := p + n;
        p
      in
      let u8 () = Bytes.get_uint8 buf (need 1) in
      let u16 () = Bytes.get_uint16_be buf (need 2) in
      let u32 () = get_u32 buf (need 4) in
      let key () = Key.of_string (Bytes.sub_string buf (need Key.size) Key.size) in
      let payload ~cap what =
        let n = u32 () in
        if n > cap then raise (Bad (what ^ " exceeds cap"));
        Bytes.sub_string buf (need n) n
      in
      let vv () =
        match Vv.decode buf ~off:!pos ~stop with
        | None -> raise (Bad "malformed version vector")
        | Some (v, consumed) ->
            pos := !pos + consumed;
            v
      in
      match
        let msg =
          match tag with
          | 1 -> Lookup { key = key () }
          | 2 ->
              let node = u32 () in
              let lo = key () in
              let hi = key () in
              Owner { node; lo; hi }
          | 3 -> Redirect { next = u32 () }
          | 4 -> Get { key = key () }
          | 5 -> Found { data = payload ~cap:max_payload "payload" }
          | 6 -> Missing
          | 7 ->
              let key = key () in
              let depth = u8 () in
              let vv = vv () in
              Put { key; depth; vv; data = payload ~cap:max_payload "payload" }
          | 8 ->
              let copies = u32 () in
              Put_ack { copies; vv = vv () }
          | 9 ->
              let key = key () in
              let depth = u8 () in
              Remove { key; depth; vv = vv () }
          | 10 -> Remove_ack { removed = u8 () <> 0 }
          | 11 ->
              let node = u32 () in
              Join { node; id = key () }
          | 12 ->
              let count = u16 () in
              if count > max_members then raise (Bad "membership list exceeds cap");
              let members =
                List.init count (fun _ ->
                    let n = u32 () in
                    let id = key () in
                    (n, id))
              in
              Join_ack { members }
          | 13 -> Probe
          | 14 ->
              let node = u32 () in
              Probe_ack { node; epoch = u32 () }
          | 15 ->
              let code = u32 () in
              let n = u16 () in
              if n > max_error then raise (Bad "error message exceeds cap");
              Error { code; message = Bytes.sub_string buf (need n) n }
          | 16 | 18 ->
              let lo = key () in
              let hi = key () in
              let prefix = u32 () in
              let bits = u8 () in
              if tag = 16 then Sync_digests { lo; hi; prefix; bits }
              else Sync_keys { lo; hi; prefix; bits }
          | 17 ->
              let n = u8 () in
              if n <> 16 then raise (Bad "digest ack child count must be 16");
              let children = Array.make n (0, 0) in
              for i = 0 to n - 1 do
                let sum = u32 () in
                let count = u32 () in
                children.(i) <- (sum, count)
              done;
              Sync_digests_ack { children }
          | 19 ->
              let count = u16 () in
              if count > max_sync_items then
                raise (Bad "sync item list exceeds cap");
              let items =
                List.init count (fun _ ->
                    let k = key () in
                    let v = vv () in
                    let deleted = u8 () <> 0 in
                    (k, v, deleted))
              in
              Sync_keys_ack { items }
          | 20 -> Fetch { key = key () }
          | 21 ->
              let vv = vv () in
              let flags = u8 () in
              if flags land lnot 3 <> 0 then raise (Bad "unknown fetch flags");
              let data =
                if flags land 2 <> 0 then
                  Some (payload ~cap:max_payload "payload")
                else None
              in
              Fetch_ack { vv; deleted = flags land 1 <> 0; data }
          | 22 ->
              let key = key () in
              let vv = vv () in
              let deleted = u8 () <> 0 in
              Push { key; vv; deleted; data = payload ~cap:max_payload "payload" }
          | 23 -> Push_ack { stored = u8 () <> 0 }
          | 24 ->
              let key = key () in
              Get_q { key; q = u8 () }
          | t -> raise (Bad (Printf.sprintf "unknown tag %d" t))
        in
        if !pos <> stop then raise (Bad "trailing bytes in frame");
        msg
      with
      | msg -> Ok (req, msg, flen + 4)
      | exception Bad why -> Stdlib.Error (Malformed why)
    end

module Reader = struct
  type t = {
    mutable buf : Bytes.t;
    mutable r : int;
    mutable w : int;
    floor : int;  (** capacity the buffer settles back to when drained *)
  }

  let initial_capacity = 4096

  let create ?(capacity = initial_capacity) () =
    let floor = max capacity max_frame in
    { buf = Bytes.create floor; r = 0; w = 0; floor }

  let pending_bytes t = t.w - t.r
  let capacity t = Bytes.length t.buf

  (* A pipelined burst can grow the buffer far past the steady-state
     capacity; once the stream drains, give the memory back gradually
     (halving per drain) instead of holding the high-water mark
     forever.  The floor is the creation capacity (at least
     [max_frame], past which a single in-progress frame never needs
     the buffer to grow), so a reader sized for its transport's read
     chunk does not oscillate between shrink and regrow on every
     batch. *)
  let shrink_drained t =
    let cap = Bytes.length t.buf in
    if cap > t.floor then t.buf <- Bytes.create (max (cap / 2) t.floor)

  let compact t =
    if t.r > 0 then begin
      let n = t.w - t.r in
      Bytes.blit t.buf t.r t.buf 0 n;
      t.r <- 0;
      t.w <- n
    end

  let reserve t n =
    if Bytes.length t.buf - t.w < n then begin
      compact t;
      if Bytes.length t.buf - t.w < n then begin
        let cap = max (2 * Bytes.length t.buf) (t.w + n) in
        let nb = Bytes.create cap in
        Bytes.blit t.buf 0 nb 0 t.w;
        t.buf <- nb
      end
    end;
    (t.buf, t.w)

  let commit t n =
    if n < 0 || t.w + n > Bytes.length t.buf then
      invalid_arg "Wire.Reader.commit: bad count";
    t.w <- t.w + n

  let feed t src ~off ~len =
    let buf, o = reserve t len in
    Bytes.blit src off buf o len;
    commit t len

  let next t =
    match decode t.buf ~off:t.r ~len:(t.w - t.r) with
    | Ok (req, msg, consumed) ->
        t.r <- t.r + consumed;
        if t.r = t.w then begin
          t.r <- 0;
          t.w <- 0;
          shrink_drained t
        end;
        `Msg (req, msg)
    | Stdlib.Error Short ->
        compact t;
        `Awaiting
    | Stdlib.Error (Malformed why) -> `Corrupt why
end
