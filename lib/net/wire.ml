module Key = D2_keyspace.Key

let max_payload = 8192
let max_members = 4096
let max_error = 1024

(* Largest body is a full Join_ack: u16 count + count * (u32 node +
   64-byte id).  Every other message is far below it. *)
let max_frame = 9 + 2 + (max_members * (4 + Key.size))

type msg =
  | Lookup of { key : Key.t }
  | Owner of { node : int; lo : Key.t; hi : Key.t }
  | Redirect of { next : int }
  | Get of { key : Key.t }
  | Found of { data : string }
  | Missing
  | Put of { key : Key.t; depth : int; data : string }
  | Put_ack of { copies : int }
  | Remove of { key : Key.t; depth : int }
  | Remove_ack of { removed : bool }
  | Join of { node : int; id : Key.t }
  | Join_ack of { members : (int * Key.t) list }
  | Probe
  | Probe_ack of { node : int; epoch : int }
  | Error of { code : int; message : string }

let is_request = function
  | Lookup _ | Get _ | Put _ | Remove _ | Join _ | Probe -> true
  | Owner _ | Redirect _ | Found _ | Missing | Put_ack _ | Remove_ack _
  | Join_ack _ | Probe_ack _ | Error _ ->
      false

let tag_of = function
  | Lookup _ -> 1
  | Owner _ -> 2
  | Redirect _ -> 3
  | Get _ -> 4
  | Found _ -> 5
  | Missing -> 6
  | Put _ -> 7
  | Put_ack _ -> 8
  | Remove _ -> 9
  | Remove_ack _ -> 10
  | Join _ -> 11
  | Join_ack _ -> 12
  | Probe -> 13
  | Probe_ack _ -> 14
  | Error _ -> 15

let tag_name = function
  | Lookup _ -> "lookup"
  | Owner _ -> "owner"
  | Redirect _ -> "redirect"
  | Get _ -> "get"
  | Found _ -> "found"
  | Missing -> "missing"
  | Put _ -> "put"
  | Put_ack _ -> "put_ack"
  | Remove _ -> "remove"
  | Remove_ack _ -> "remove_ack"
  | Join _ -> "join"
  | Join_ack _ -> "join_ack"
  | Probe -> "probe"
  | Probe_ack _ -> "probe_ack"
  | Error _ -> "error"

let body_length = function
  | Lookup _ | Get _ -> Key.size
  | Owner _ -> 4 + Key.size + Key.size
  | Redirect _ -> 4
  | Found { data } -> 4 + String.length data
  | Missing | Probe -> 0
  | Put { data; _ } -> Key.size + 1 + 4 + String.length data
  | Put_ack _ -> 4
  | Remove _ -> Key.size + 1
  | Remove_ack _ -> 1
  | Join _ -> 4 + Key.size
  | Join_ack { members } -> 2 + (List.length members * (4 + Key.size))
  | Probe_ack _ -> 8
  | Error { message; _ } -> 4 + 2 + String.length message

let frame_length msg = 9 + body_length msg

let u32_max = 0xffff_ffff

let check_u32 what v =
  if v < 0 || v > u32_max then
    invalid_arg (Printf.sprintf "Wire.encode: %s %d outside u32" what v)

let validate msg =
  (match msg with
  | Found { data } | Put { data; _ } ->
      if String.length data > max_payload then
        invalid_arg "Wire.encode: payload exceeds max_payload"
  | Join_ack { members } ->
      if List.length members > max_members then
        invalid_arg "Wire.encode: membership list exceeds max_members";
      List.iter (fun (n, _) -> check_u32 "member node" n) members
  | Error { message; _ } ->
      if String.length message > max_error then
        invalid_arg "Wire.encode: error message exceeds max_error"
  | _ -> ());
  match msg with
  | Owner { node; _ } -> check_u32 "node" node
  | Redirect { next } -> check_u32 "next" next
  | Put { depth; _ } | Remove { depth; _ } ->
      if depth < 0 || depth > 0xff then invalid_arg "Wire.encode: depth outside u8"
  | Put_ack { copies } -> check_u32 "copies" copies
  | Join { node; _ } -> check_u32 "node" node
  | Probe_ack { node; epoch } ->
      check_u32 "node" node;
      check_u32 "epoch" epoch
  | Error { code; _ } -> check_u32 "code" code
  | _ -> ()

let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land u32_max

let set_key b off k = Bytes.blit_string (Key.to_string k) 0 b off Key.size

let encode_into buf ~off ~req msg =
  check_u32 "request id" req;
  validate msg;
  let len = frame_length msg in
  if off < 0 || off + len > Bytes.length buf then
    invalid_arg "Wire.encode_into: buffer too small";
  set_u32 buf off (len - 4);
  set_u32 buf (off + 4) req;
  Bytes.set_uint8 buf (off + 8) (tag_of msg);
  let p = off + 9 in
  (match msg with
  | Lookup { key } | Get { key } -> set_key buf p key
  | Owner { node; lo; hi } ->
      set_u32 buf p node;
      set_key buf (p + 4) lo;
      set_key buf (p + 4 + Key.size) hi
  | Redirect { next } -> set_u32 buf p next
  | Found { data } ->
      set_u32 buf p (String.length data);
      Bytes.blit_string data 0 buf (p + 4) (String.length data)
  | Missing | Probe -> ()
  | Put { key; depth; data } ->
      set_key buf p key;
      Bytes.set_uint8 buf (p + Key.size) depth;
      set_u32 buf (p + Key.size + 1) (String.length data);
      Bytes.blit_string data 0 buf (p + Key.size + 5) (String.length data)
  | Put_ack { copies } -> set_u32 buf p copies
  | Remove { key; depth } ->
      set_key buf p key;
      Bytes.set_uint8 buf (p + Key.size) depth
  | Remove_ack { removed } -> Bytes.set_uint8 buf p (if removed then 1 else 0)
  | Join { node; id } ->
      set_u32 buf p node;
      set_key buf (p + 4) id
  | Join_ack { members } ->
      Bytes.set_uint16_be buf p (List.length members);
      List.iteri
        (fun i (n, id) ->
          let q = p + 2 + (i * (4 + Key.size)) in
          set_u32 buf q n;
          set_key buf (q + 4) id)
        members
  | Probe_ack { node; epoch } ->
      set_u32 buf p node;
      set_u32 buf (p + 4) epoch
  | Error { code; message } ->
      set_u32 buf p code;
      Bytes.set_uint16_be buf (p + 4) (String.length message);
      Bytes.blit_string message 0 buf (p + 6) (String.length message));
  len

let encode ~req msg =
  let buf = Bytes.create (frame_length msg) in
  ignore (encode_into buf ~off:0 ~req msg);
  buf

type error = Short | Malformed of string

(* Body parsing uses a poor-man's cursor over the declared body
   window; any read past the window is a [Malformed] frame (the frame
   is complete — missing fields cannot appear later). *)
exception Bad of string

let decode buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    Stdlib.Error (Malformed "window outside buffer")
  else if len < 4 then Stdlib.Error Short
  else
    let flen = get_u32 buf off in
    if flen < 5 then Stdlib.Error (Malformed "frame length below header size")
    else if flen + 4 > max_frame then
      Stdlib.Error (Malformed "frame length exceeds max_frame")
    else if len < flen + 4 then Stdlib.Error Short
    else begin
      let req = get_u32 buf (off + 4) in
      let tag = Bytes.get_uint8 buf (off + 8) in
      let body = off + 9 in
      let body_len = flen - 5 in
      let stop = body + body_len in
      let pos = ref body in
      let need n =
        if !pos + n > stop then raise (Bad "truncated body");
        let p = !pos in
        pos := p + n;
        p
      in
      let u8 () = Bytes.get_uint8 buf (need 1) in
      let u16 () = Bytes.get_uint16_be buf (need 2) in
      let u32 () = get_u32 buf (need 4) in
      let key () = Key.of_string (Bytes.sub_string buf (need Key.size) Key.size) in
      let payload ~cap what =
        let n = u32 () in
        if n > cap then raise (Bad (what ^ " exceeds cap"));
        Bytes.sub_string buf (need n) n
      in
      match
        let msg =
          match tag with
          | 1 -> Lookup { key = key () }
          | 2 ->
              let node = u32 () in
              let lo = key () in
              let hi = key () in
              Owner { node; lo; hi }
          | 3 -> Redirect { next = u32 () }
          | 4 -> Get { key = key () }
          | 5 -> Found { data = payload ~cap:max_payload "payload" }
          | 6 -> Missing
          | 7 ->
              let key = key () in
              let depth = u8 () in
              Put { key; depth; data = payload ~cap:max_payload "payload" }
          | 8 -> Put_ack { copies = u32 () }
          | 9 ->
              let key = key () in
              Remove { key; depth = u8 () }
          | 10 -> Remove_ack { removed = u8 () <> 0 }
          | 11 ->
              let node = u32 () in
              Join { node; id = key () }
          | 12 ->
              let count = u16 () in
              if count > max_members then raise (Bad "membership list exceeds cap");
              let members =
                List.init count (fun _ ->
                    let n = u32 () in
                    let id = key () in
                    (n, id))
              in
              Join_ack { members }
          | 13 -> Probe
          | 14 ->
              let node = u32 () in
              Probe_ack { node; epoch = u32 () }
          | 15 ->
              let code = u32 () in
              let n = u16 () in
              if n > max_error then raise (Bad "error message exceeds cap");
              Error { code; message = Bytes.sub_string buf (need n) n }
          | t -> raise (Bad (Printf.sprintf "unknown tag %d" t))
        in
        if !pos <> stop then raise (Bad "trailing bytes in frame");
        msg
      with
      | msg -> Ok (req, msg, flen + 4)
      | exception Bad why -> Stdlib.Error (Malformed why)
    end

module Reader = struct
  type t = {
    mutable buf : Bytes.t;
    mutable r : int;
    mutable w : int;
    floor : int;  (** capacity the buffer settles back to when drained *)
  }

  let initial_capacity = 4096

  let create ?(capacity = initial_capacity) () =
    let floor = max capacity max_frame in
    { buf = Bytes.create floor; r = 0; w = 0; floor }

  let pending_bytes t = t.w - t.r
  let capacity t = Bytes.length t.buf

  (* A pipelined burst can grow the buffer far past the steady-state
     capacity; once the stream drains, give the memory back gradually
     (halving per drain) instead of holding the high-water mark
     forever.  The floor is the creation capacity (at least
     [max_frame], past which a single in-progress frame never needs
     the buffer to grow), so a reader sized for its transport's read
     chunk does not oscillate between shrink and regrow on every
     batch. *)
  let shrink_drained t =
    let cap = Bytes.length t.buf in
    if cap > t.floor then t.buf <- Bytes.create (max (cap / 2) t.floor)

  let compact t =
    if t.r > 0 then begin
      let n = t.w - t.r in
      Bytes.blit t.buf t.r t.buf 0 n;
      t.r <- 0;
      t.w <- n
    end

  let reserve t n =
    if Bytes.length t.buf - t.w < n then begin
      compact t;
      if Bytes.length t.buf - t.w < n then begin
        let cap = max (2 * Bytes.length t.buf) (t.w + n) in
        let nb = Bytes.create cap in
        Bytes.blit t.buf 0 nb 0 t.w;
        t.buf <- nb
      end
    end;
    (t.buf, t.w)

  let commit t n =
    if n < 0 || t.w + n > Bytes.length t.buf then
      invalid_arg "Wire.Reader.commit: bad count";
    t.w <- t.w + n

  let feed t src ~off ~len =
    let buf, o = reserve t len in
    Bytes.blit src off buf o len;
    commit t len

  let next t =
    match decode t.buf ~off:t.r ~len:(t.w - t.r) with
    | Ok (req, msg, consumed) ->
        t.r <- t.r + consumed;
        if t.r = t.w then begin
          t.r <- 0;
          t.w <- 0;
          shrink_drained t
        end;
        `Msg (req, msg)
    | Stdlib.Error Short ->
        compact t;
        `Awaiting
    | Stdlib.Error (Malformed why) -> `Corrupt why
end
