(* Zero-copy read/write for NON-BLOCKING sockets: the stdlib's
   Unix.read/write copy every byte through an intermediate C buffer so
   they can release the runtime around a potentially blocking call; a
   non-blocking socket never blocks, so the stubs skip both the
   release and the copy.  Callers MUST only pass non-blocking
   descriptors. *)

external fd_read : Unix.file_descr -> Bytes.t -> int -> int -> int
  = "d2_fd_read"
[@@noalloc]

external fd_write : Unix.file_descr -> Bytes.t -> int -> int -> int
  = "d2_fd_write"
[@@noalloc]

let again = -2
(** Returned by {!read}/{!write} on EAGAIN/EWOULDBLOCK/EINTR. *)

let error = -1
(** Returned by {!read}/{!write} on a hard error (the errno is not
    surfaced; the connection is past saving either way). *)

let read fd buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Fdio.read: bad range";
  fd_read fd buf off len

let write fd buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Fdio.write: bad range";
  fd_write fd buf off len
