module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Rng = D2_util.Rng
module Bytebuf = Transport.Bytebuf

let env_loss () =
  match Sys.getenv_opt "D2_NET_LOSS" with
  | None -> 0.0
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f >= 0.0 && f < 1.0 -> f
      | _ -> invalid_arg "D2_NET_LOSS: expected a probability in [0, 1)")

type conn = {
  cnet : net;
  src : int;  (** local endpoint's node *)
  dst : int;
  inbox : Bytebuf.t;
  mutable copen : bool;
  mutable remote : conn option;
  mutable readable_cb : unit -> unit;
  mutable close_cb : unit -> unit;
}

and t = { net : net; enode : int; mutable up : bool; mutable accept_cb : conn -> unit }

and net = {
  eng : Engine.t;
  topo : Topology.t;
  loss : float;
  lrng : Rng.t;
  endpoints : t option array;
  mutable conns : conn list;
  mutable cuts : cut list;
}

(* One partition episode.  Keeping the history (not just the current
   predicate) lets a delivery ask "was this link severed at any point
   while the frame was in flight?" — a frame on the wire when the cable
   is cut is lost even if the cut heals before the frame's nominal
   arrival time. *)
and cut = {
  pred : int -> int -> bool;
  cut_start : float;
  mutable cut_stop : float option;  (** [None] while the cut is active *)
}

let create_net ~engine ~topology ?loss ?(seed = 0x6e67) () =
  let loss = match loss with Some l -> l | None -> env_loss () in
  if loss < 0.0 || loss >= 1.0 then
    invalid_arg "Transport_mem.create_net: loss must be in [0, 1)";
  {
    eng = engine;
    topo = topology;
    loss;
    lrng = Rng.create seed;
    endpoints = Array.make (Topology.size topology) None;
    conns = [];
    cuts = [];
  }

let engine net = net.eng

let endpoint net ~node =
  if node < 0 || node >= Array.length net.endpoints then
    invalid_arg "Transport_mem.endpoint: node outside topology";
  if net.endpoints.(node) <> None then
    invalid_arg "Transport_mem.endpoint: node already bound";
  let ep = { net; enode = node; up = true; accept_cb = ignore } in
  net.endpoints.(node) <- Some ep;
  ep

let is_up net node =
  match net.endpoints.(node) with Some ep -> ep.up | None -> false

let set_partition net sep =
  let now = Engine.now net.eng in
  List.iter
    (fun c -> if c.cut_stop = None then c.cut_stop <- Some now)
    net.cuts;
  match sep with
  | None -> ()
  | Some pred -> net.cuts <- { pred; cut_start = now; cut_stop = None } :: net.cuts

(* Was (a, b) severed at any point in (since, now]?  A cut overlaps
   that window iff it had not ended by [since] (every recorded cut
   started at or before now). *)
let severed_since net a b ~since =
  List.exists
    (fun c ->
      (match c.cut_stop with None -> true | Some stop -> stop > since)
      && c.cut_start <= Engine.now net.eng
      && c.pred a b)
    net.cuts

let node t = t.enode
let now t = Engine.now t.net.eng
let peer c = c.dst
let is_open c = c.copen

let on_accept t cb = t.accept_cb <- cb
let on_readable c cb = c.readable_cb <- cb
let on_close c cb = c.close_cb <- cb

let schedule t ~delay f = ignore (Engine.schedule_in t.net.eng ~delay f)

let delay_of net src dst = Topology.one_way net.topo src dst

(* Deliver a close to [c]'s remote side one propagation delay later
   (the FIN crossing the wire).  Droppable by partition like any other
   delivery — the far side then lingers until its own sends time out. *)
let shutdown_remote c =
  let sent = Engine.now c.cnet.eng in
  match c.remote with
  | None -> ()
  | Some r ->
      ignore
        (Engine.schedule_in c.cnet.eng ~delay:(delay_of c.cnet c.src c.dst)
           (fun () ->
             if r.copen && not (severed_since c.cnet c.src c.dst ~since:sent)
             then begin
               r.copen <- false;
               r.close_cb ()
             end))

let close c =
  if c.copen then begin
    c.copen <- false;
    shutdown_remote c
  end

(* A loss draw resets the stream: both directions break, the local
   side hears about it asynchronously (as a real RST would arrive). *)
let reset c =
  if c.copen then begin
    c.copen <- false;
    shutdown_remote c;
    ignore (Engine.schedule_in c.cnet.eng ~delay:0.0 (fun () -> c.close_cb ()))
  end

let send c buf ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length buf then
    invalid_arg "Transport_mem.send: bad range";
  if c.copen && is_up c.cnet c.src then begin
    if c.cnet.loss > 0.0 && Rng.float c.cnet.lrng 1.0 < c.cnet.loss then reset c
    else begin
      let data = Bytes.sub buf off len in
      let net = c.cnet in
      let sent = Engine.now net.eng in
      ignore
        (Engine.schedule_in net.eng ~delay:(delay_of net c.src c.dst) (fun () ->
             match c.remote with
             | Some r
               when r.copen && is_up net c.dst
                    && not (severed_since net c.src c.dst ~since:sent)
               ->
                 Bytebuf.write r.inbox data ~off:0 ~len:(Bytes.length data);
                 r.readable_cb ()
             | _ -> ()))
    end
  end

let recv_into c buf ~off ~len = Bytebuf.read_into c.inbox buf ~off ~len

let connect t ~dst =
  if (not t.up) || dst < 0 || dst >= Array.length t.net.endpoints then None
  else
    match t.net.endpoints.(dst) with
    | None -> None
    | Some dep when not dep.up -> None
    | Some dep ->
        let net = t.net in
        let a =
          {
            cnet = net;
            src = t.enode;
            dst;
            inbox = Bytebuf.create ();
            copen = true;
            remote = None;
            readable_cb = ignore;
            close_cb = ignore;
          }
        in
        let b =
          {
            cnet = net;
            src = dst;
            dst = t.enode;
            inbox = Bytebuf.create ();
            copen = true;
            remote = Some a;
            readable_cb = ignore;
            close_cb = ignore;
          }
        in
        a.remote <- Some b;
        net.conns <- a :: b :: net.conns;
        (* The SYN crosses the wire like any delivery: the server side
           only comes alive if the path stayed clear for the whole
           flight and the peer is still up when it arrives. *)
        let sent = Engine.now net.eng in
        ignore
          (Engine.schedule_in net.eng ~delay:(delay_of net t.enode dst) (fun () ->
               if b.copen then
                 if dep.up && not (severed_since net t.enode dst ~since:sent)
                 then dep.accept_cb b
                 else b.copen <- false));
        Some a

let kill net n =
  (match net.endpoints.(n) with
  | Some ep when ep.up ->
      ep.up <- false;
      List.iter
        (fun c ->
          if c.copen then
            if c.src = n then begin
              (* The dying side just stops; its peers hear a break. *)
              c.copen <- false;
              shutdown_remote c
            end)
        net.conns
  | _ -> ());
  net.conns <- List.filter (fun c -> c.copen) net.conns

let poll t ~timeout =
  if timeout < 0.0 then invalid_arg "Transport_mem.poll: negative timeout";
  let eng = t.net.eng in
  Engine.run eng ~until:(Engine.now eng +. timeout)
