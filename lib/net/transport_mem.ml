module Engine = D2_simnet.Engine
module Topology = D2_simnet.Topology
module Rng = D2_util.Rng
module Bytebuf = Transport.Bytebuf

let env_loss () =
  match Sys.getenv_opt "D2_NET_LOSS" with
  | None -> 0.0
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f >= 0.0 && f < 1.0 -> f
      | _ -> invalid_arg "D2_NET_LOSS: expected a probability in [0, 1)")

type conn = {
  cnet : net;
  src : int;  (** local endpoint's node *)
  dst : int;
  inbox : Bytebuf.t;
  mutable copen : bool;
  mutable remote : conn option;
  mutable readable_cb : unit -> unit;
  mutable close_cb : unit -> unit;
}

and t = { net : net; enode : int; mutable up : bool; mutable accept_cb : conn -> unit }

and net = {
  eng : Engine.t;
  topo : Topology.t;
  loss : float;
  lrng : Rng.t;
  endpoints : t option array;
  mutable conns : conn list;
  mutable partition : (int -> int -> bool) option;
}

let create_net ~engine ~topology ?loss ?(seed = 0x6e67) () =
  let loss = match loss with Some l -> l | None -> env_loss () in
  if loss < 0.0 || loss >= 1.0 then
    invalid_arg "Transport_mem.create_net: loss must be in [0, 1)";
  {
    eng = engine;
    topo = topology;
    loss;
    lrng = Rng.create seed;
    endpoints = Array.make (Topology.size topology) None;
    conns = [];
    partition = None;
  }

let engine net = net.eng

let endpoint net ~node =
  if node < 0 || node >= Array.length net.endpoints then
    invalid_arg "Transport_mem.endpoint: node outside topology";
  if net.endpoints.(node) <> None then
    invalid_arg "Transport_mem.endpoint: node already bound";
  let ep = { net; enode = node; up = true; accept_cb = ignore } in
  net.endpoints.(node) <- Some ep;
  ep

let is_up net node =
  match net.endpoints.(node) with Some ep -> ep.up | None -> false

let set_partition net sep = net.partition <- sep

let separated net a b =
  match net.partition with None -> false | Some sep -> sep a b

let node t = t.enode
let now t = Engine.now t.net.eng
let peer c = c.dst
let is_open c = c.copen

let on_accept t cb = t.accept_cb <- cb
let on_readable c cb = c.readable_cb <- cb
let on_close c cb = c.close_cb <- cb

let schedule t ~delay f = ignore (Engine.schedule_in t.net.eng ~delay f)

let delay_of net src dst = Topology.one_way net.topo src dst

(* Deliver a close to [c]'s remote side one propagation delay later
   (the FIN crossing the wire).  Droppable by partition like any other
   delivery — the far side then lingers until its own sends time out. *)
let shutdown_remote c =
  match c.remote with
  | None -> ()
  | Some r ->
      ignore
        (Engine.schedule_in c.cnet.eng ~delay:(delay_of c.cnet c.src c.dst)
           (fun () ->
             if r.copen && not (separated c.cnet c.src c.dst) then begin
               r.copen <- false;
               r.close_cb ()
             end))

let close c =
  if c.copen then begin
    c.copen <- false;
    shutdown_remote c
  end

(* A loss draw resets the stream: both directions break, the local
   side hears about it asynchronously (as a real RST would arrive). *)
let reset c =
  if c.copen then begin
    c.copen <- false;
    shutdown_remote c;
    ignore (Engine.schedule_in c.cnet.eng ~delay:0.0 (fun () -> c.close_cb ()))
  end

let send c buf ~off ~len =
  if len < 0 || off < 0 || off + len > Bytes.length buf then
    invalid_arg "Transport_mem.send: bad range";
  if c.copen && is_up c.cnet c.src then begin
    if c.cnet.loss > 0.0 && Rng.float c.cnet.lrng 1.0 < c.cnet.loss then reset c
    else begin
      let data = Bytes.sub buf off len in
      let net = c.cnet in
      ignore
        (Engine.schedule_in net.eng ~delay:(delay_of net c.src c.dst) (fun () ->
             match c.remote with
             | Some r
               when r.copen && is_up net c.dst && not (separated net c.src c.dst)
               ->
                 Bytebuf.write r.inbox data ~off:0 ~len:(Bytes.length data);
                 r.readable_cb ()
             | _ -> ()))
    end
  end

let recv_into c buf ~off ~len = Bytebuf.read_into c.inbox buf ~off ~len

let connect t ~dst =
  if (not t.up) || dst < 0 || dst >= Array.length t.net.endpoints then None
  else
    match t.net.endpoints.(dst) with
    | None -> None
    | Some dep when not dep.up -> None
    | Some dep ->
        let net = t.net in
        let a =
          {
            cnet = net;
            src = t.enode;
            dst;
            inbox = Bytebuf.create ();
            copen = true;
            remote = None;
            readable_cb = ignore;
            close_cb = ignore;
          }
        in
        let b =
          {
            cnet = net;
            src = dst;
            dst = t.enode;
            inbox = Bytebuf.create ();
            copen = true;
            remote = Some a;
            readable_cb = ignore;
            close_cb = ignore;
          }
        in
        a.remote <- Some b;
        net.conns <- a :: b :: net.conns;
        (* The SYN crosses the wire like any delivery: the server side
           only comes alive if the path is clear and the peer still up
           when it arrives. *)
        ignore
          (Engine.schedule_in net.eng ~delay:(delay_of net t.enode dst) (fun () ->
               if b.copen then
                 if dep.up && not (separated net t.enode dst) then dep.accept_cb b
                 else b.copen <- false));
        Some a

let kill net n =
  (match net.endpoints.(n) with
  | Some ep when ep.up ->
      ep.up <- false;
      List.iter
        (fun c ->
          if c.copen then
            if c.src = n then begin
              (* The dying side just stops; its peers hear a break. *)
              c.copen <- false;
              shutdown_remote c
            end)
        net.conns
  | _ -> ());
  net.conns <- List.filter (fun c -> c.copen) net.conns

let poll t ~timeout =
  if timeout < 0.0 then invalid_arg "Transport_mem.poll: negative timeout";
  let eng = t.net.eng in
  Engine.run eng ~until:(Engine.now eng +. timeout)
