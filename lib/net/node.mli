(** The live node runtime: one D2 storage node behind a transport.

    [Node.serve] wires together a membership ring view, a compiled
    {!D2_dht.Router} for greedy forwarding, and a local {!Blockstore}
    (the in-RAM {!Shard} or the durable {!D2_segstore.Store}) behind
    any {!Transport.S}:

    - {b Lookups} are iterative (§5): a node that owns the key answers
      [Owner (range, self)] — exactly what the client's range cache
      stores — and otherwise answers [Redirect next] with the best
      next hop from its own link table; the {e client} walks the path.
    - {b Puts} fan out: the coordinator (normally the key's owner)
      stores locally and forwards copies to the next [depth] distinct
      successors, acking with the copy count once every forward has
      acked or timed out.  Gets and removes serve from the shard.
    - {b Join/probe}: a booting node announces itself to its bootstrap
      peers and merges their membership; every [probe_interval] a node
      probes its successor plus one rotating member, and an
      unresponsive peer is removed from the local ring view (its
      blocks keep serving from the surviving successor replicas).

    The same functor body runs deterministically under
    {!Transport_mem} (multi-node protocol tests) and over real TCP
    under {!Transport_unix} (the [d2d] daemon).

    {b Domain sharding}: one logical node can be served by several
    domains.  Domain 0 owns the canonical instance ([create] +
    [serve]); each extra domain drives a {!sibling} — its own endpoint
    (bound with [SO_REUSEPORT] to the same address) and linkset, but
    the {e same} ring, router, shard and membership lock.  The kernel
    spreads inbound connections across the listeners, so each domain
    polls only its own sockets while reads and writes against the
    partitioned shard proceed in parallel. *)

module Key = D2_keyspace.Key

type config = {
  replicas : int;  (** copies per block, owner included (paper: 3) *)
  probe_interval : float;  (** seconds between liveness probes *)
  rpc_timeout : float;  (** per-RPC reply deadline, seconds *)
  repair_interval : float;
      (** seconds between anti-entropy sessions (0 disables repair) *)
}

val default_config : config
(** 3 replicas, 0.5 s probes, 0.25 s RPC timeout, 1 s repair. *)

type repair_stats = {
  mutable repair_frames : int;  (** frames sent or received on repair RPCs *)
  mutable repair_bytes : int;  (** their encoded bytes, both directions *)
  mutable pushed : int;  (** copies a peer installed from our pushes *)
  mutable pulled : int;  (** copies we installed from peer fetches *)
  mutable sessions : int;  (** repair sessions started *)
}

module Make (T : Transport.S) : sig
  type t

  val create :
    T.t ->
    ?policy:D2_dht.Router.policy ->
    ?store:Blockstore.t ->
    config:config ->
    id:Key.t ->
    peers:(int * Key.t) list ->
    unit ->
    t
  (** Build the node for endpoint [T.node]: its ring view starts from
      [peers] (self included automatically; duplicate or colliding
      entries are skipped).  [policy] (default [Fingers]) selects the
      routing-link policy the node's redirects follow — set it
      uniformly across a cluster ([D2_ROUTE_POLICY] in [d2d]).
      [store] (default a fresh in-RAM {!Blockstore.mem_store}) is the
      block backend; with a disk store, Put/Remove acks are withheld
      until a group commit makes the write durable — drive
      {!flush_store} (the daemon does, after every poll; [serve] also
      ticks it) or acks stall. *)

  val sibling : t -> T.t -> t
  (** [sibling t ep] is a worker-domain view of the same logical node:
      handlers installed on [ep], sharing [t]'s identity, ring,
      router and shard.  Siblings never announce or probe — drive them
      with [T.poll] only (no [serve]). *)

  val serve : t -> unit
  (** Start serving: install handlers, announce [Join] to every known
      peer (with retries, so staggered process starts converge), and
      begin the probe schedule.  Returns immediately; the caller owns
      the poll loop. *)

  val stop : t -> unit
  (** Stop announcing and probing.  In-flight handlers finish. *)

  val flush_store : t -> unit
  (** One group-commit turn: flush the disk store (a single
      write + fdatasync covering every operation buffered since the
      last turn), release the acks the commit covers, and let
      compaction run.  Instant no-op for mem stores — call it freely
      from any poll loop.  Each instance (node or sibling) drains only
      its own deferred acks. *)

  val ring : t -> D2_dht.Ring.t
  val store : t -> Blockstore.t
  val id : t -> Key.t
  val requests_served : t -> int

  val vmap : t -> D2_sync.Vmap.t
  (** The node's version map (key -> vector + tombstone), shared with
      siblings; seeded from the store at [create], stamped by every
      write, folded by repair digests. *)

  val repair_stats : t -> repair_stats
  (** Live anti-entropy counters (shared with siblings); the
      availability experiment reads them to price repair bandwidth. *)
end
