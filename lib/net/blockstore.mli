(** The node's storage seam: one type the runtime holds, two backends.

    [Mem] is the original {!Shard} — partition-locked in-RAM tables,
    every operation durable the instant it returns.  [Disk] is the
    {!D2_segstore.Store} segment log, where a put is {e accepted}
    immediately but {e durable} only once a group commit covers it.

    The durability contract is expressed as sequence watermarks so the
    node runtime can defer Put/Remove acks without knowing which
    backend it holds: {!put} returns the operation's sequence, and the
    ack may go out once {!durable_seq} has reached it.  A [Mem] store
    reports [max_int] durable — acks fire inline, byte-for-byte the
    pre-seam behaviour. *)

module Key = D2_keyspace.Key

type t = Mem of Shard.t | Disk of D2_segstore.Store.t

val mem_store : ?partitions:int -> unit -> t
val disk : D2_segstore.Store.t -> t

val is_disk : t -> bool

val put : t -> key:Key.t -> data:string -> int
(** Store a block; returns its append sequence ([0] for [Mem] — always
    already durable). *)

val remove : t -> key:Key.t -> bool * int
(** [(removed, seq)] — [removed] is whether a block was dropped, [seq]
    the sequence the caller's ack must wait for ([0] when nothing was
    appended). *)

val get : t -> key:Key.t -> string option
val mem_block : t -> key:Key.t -> bool

val durable_seq : t -> int
(** Highest sequence covered by a sync ([max_int] for [Mem]). *)

val flush : t -> unit
(** Synchronous group commit ([Disk]); no-op for [Mem]. *)

val flush_async : t -> unit
(** Request a group commit off-thread ([Disk]); the event loop's call
    — {!durable_seq} advances when the disk settles.  No-op for
    [Mem]. *)

val needs_flush : t -> bool

val maybe_compact : t -> int
(** Collect under-live segments ([Disk]); 0 for [Mem]. *)

val count : t -> int
val stored_bytes : t -> int
val iter : t -> (Key.t -> string -> unit) -> unit

val iter_keys : t -> (Key.t -> unit) -> unit
(** Visit every stored key without reading payloads — a pure index
    walk on [Disk], so seeding the repair subsystem's version map at
    boot never preads block data. *)

val close : t -> unit
(** Flush + checkpoint + close ([Disk]); no-op for [Mem]. *)

val shard : t -> Shard.t option
(** The underlying shard when [Mem] (tests poke it directly). *)

val store : t -> D2_segstore.Store.t option
