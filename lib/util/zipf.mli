(** Zipf-distributed sampling over ranks [0, n).

    Web object popularity and file access frequency are famously
    zipfian; the workload generators use this module to pick which
    file/URL an access touches.  Sampling is O(1) via a Walker alias
    table (one uniform draw selects a bucket and the alias coin); the
    original O(log n) CDF binary search is kept as
    {!sample_reference}. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over ranks [0..n-1] with
    exponent [s] (typical web workloads: 0.7–1.0). [n] must be
    positive and [s] non-negative. *)

val n : t -> int

val sample : t -> Rng.t -> int
(** Draw a rank; rank 0 is the most popular.  O(1): one uniform draw
    indexes the alias table. *)

val sample_reference : t -> Rng.t -> int
(** The CDF-binary-search sampler [sample] replaced.  Same
    distribution (validated by a chi-square equivalence test), same
    single uniform draw per call, different u → rank mapping — so the
    two samplers produce different streams from the same [Rng]. *)

val prob : t -> int -> float
(** Probability mass of a rank. *)
