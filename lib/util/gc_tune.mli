(** Throughput-oriented GC settings for the batch drivers (bench and
    d2ctl).  The simulators allocate millions of short-lived op
    records under OCaml 5's stop-the-world minor collector, so the
    drivers enlarge the minor heap (fewer collections, fewer domain
    rendezvous) and relax the major-heap space overhead.  Library code
    never calls {!apply}; embedders keep their own policy. *)

val minor_heap_words : int
(** Minor heap size {!apply} installs, in words (1 Mword = 8 MB). *)

val space_overhead : int
(** Major-GC space overhead {!apply} installs (stdlib default: 120). *)

val apply : unit -> unit
(** Install the settings above via [Gc.set]. *)

type settings = { minor_heap_words : int; space_overhead : int }

val current : unit -> settings
(** The live values from [Gc.get], for recording alongside benchmark
    results. *)
