(** Growable array (amortized O(1) push), used by the trace generators
    and simulators to accumulate large op/event sequences without list
    overhead. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-range index. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument on out-of-range index. *)

val to_array : 'a t -> 'a array
(** Fresh array of the current contents. *)

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val clear : 'a t -> unit
val sort : cmp:('a -> 'a -> int) -> 'a t -> unit

val sort_by_float : key:('a -> float) -> 'a t -> unit
(** Stable in-place sort by a float key.  The keys are projected once
    into an unboxed array and an index permutation is merge-sorted, so
    no comparison dereferences a boxed float — markedly faster than
    {!sort} with a time comparator on large op vectors.  NaN keys are
    not supported. *)
