(** Fixed pool of [Domain.t] workers for embarrassingly parallel jobs.

    The evaluation suite runs independent experiments (each with its
    own RNG seeds and simulation state) concurrently on OCaml 5
    domains.  The pool is deliberately small and stdlib-only: a task
    queue guarded by a mutex, [jobs] worker domains blocking on a
    condition variable, and promises completed under the same lock.

    Determinism: tasks may {e run} in any order, but {!map} returns
    results in submission order and re-raises the first failing task's
    exception (with its original backtrace), so callers see the same
    values a sequential run would produce. *)

type t

val effective_jobs : int -> int
(** [effective_jobs j] is the worker count a pool created with
    [~jobs:j] actually spawns: [j] capped at
    [Domain.recommended_domain_count ()] (and at least 1).  Callers
    that can avoid spawning domains entirely (e.g. run the work
    sequentially when only one worker would exist) should consult
    this first. *)

val default_jobs : unit -> int
(** Worker count from the [D2_JOBS] environment variable when set to
    a positive integer, otherwise [Domain.recommended_domain_count () - 1],
    and never below 1.  A malformed [D2_JOBS] warns on stderr and
    falls back to the default. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}),
    capped at [Domain.recommended_domain_count ()]: every live domain
    must rendezvous at each stop-the-world minor collection, so
    spawning more domains than the machine has cores makes every task
    slower without adding parallelism.  Task results never depend on
    the worker count.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Actual worker-domain count (after the core-count cap). *)

type 'a promise

val submit : t -> (unit -> 'a) -> 'a promise
(** Enqueue a task.  @raise Invalid_argument after {!shutdown}. *)

val await : 'a promise -> 'a
(** Block until the task finishes; returns its value or re-raises its
    exception with the original backtrace. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] runs [f] on every element concurrently and returns
    the results in the order of [xs]. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: create a pool, {!map}, {!shutdown} — even
    when a task raises. *)

val shutdown : t -> unit
(** Drain queued tasks, then join every worker.  Idempotent. *)
