type t = {
  mu : Mutex.t;
  work_ready : Condition.t;  (* signalled when a task is queued or on shutdown *)
  task_done : Condition.t;  (* signalled when any promise completes *)
  tasks : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable workers : unit Domain.t list;
  jobs : int;
}

type 'a outcome = Value of 'a | Raised of exn * Printexc.raw_backtrace

type 'a promise = { owner : t; mutable result : 'a outcome option }

let default_jobs () =
  let fallback () = max 1 (Domain.recommended_domain_count () - 1) in
  match Sys.getenv_opt "D2_JOBS" with
  | None -> fallback ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          Printf.eprintf "warning: ignoring invalid D2_JOBS=%S\n%!" s;
          fallback ())

let effective_jobs jobs = min jobs (max 1 (Domain.recommended_domain_count ()))

let rec worker_loop t =
  Mutex.lock t.mu;
  while Queue.is_empty t.tasks && not t.stopped do
    Condition.wait t.work_ready t.mu
  done;
  if Queue.is_empty t.tasks then Mutex.unlock t.mu (* stopped: exit *)
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.mu;
    task ();
    worker_loop t
  end

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  (* Never spawn more domains than the runtime recommends for this
     machine: every live domain joins each stop-the-world minor
     collection, so oversubscribing cores turns the GC into a
     rendezvous tax without adding any parallelism.  Results are
     independent of worker count, so capping only changes speed. *)
  let jobs = effective_jobs jobs in
  let t =
    {
      mu = Mutex.create ();
      work_ready = Condition.create ();
      task_done = Condition.create ();
      tasks = Queue.create ();
      stopped = false;
      workers = [];
      jobs;
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let submit t f =
  let p = { owner = t; result = None } in
  let task () =
    let r =
      try Value (f ()) with e -> Raised (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mu;
    p.result <- Some r;
    Condition.broadcast t.task_done;
    Mutex.unlock t.mu
  in
  Mutex.lock t.mu;
  if t.stopped then begin
    Mutex.unlock t.mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push task t.tasks;
  Condition.signal t.work_ready;
  Mutex.unlock t.mu;
  p

let await p =
  let t = p.owner in
  Mutex.lock t.mu;
  while Option.is_none p.result do
    Condition.wait t.task_done t.mu
  done;
  let r = Option.get p.result in
  Mutex.unlock t.mu;
  match r with
  | Value v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt

let map t f xs = List.map await (List.map (fun x -> submit t (fun () -> f x)) xs)

let shutdown t =
  Mutex.lock t.mu;
  if t.stopped then Mutex.unlock t.mu
  else begin
    t.stopped <- true;
    Condition.broadcast t.work_ready;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.mu;
    List.iter Domain.join workers
  end

let run ?jobs f xs =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
