(* The drivers are batch processes: they build multi-hundred-MB
   simulation states and churn through millions of short-lived op
   records, so we trade memory for throughput.  A larger minor heap
   cuts minor-collection (and, under domains, stop-the-world
   rendezvous) frequency; a higher space overhead makes the major GC
   lazier about compacting long-lived tables. *)

let minor_heap_words = 1024 * 1024
let space_overhead = 200

let apply () =
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = minor_heap_words; space_overhead }

type settings = { minor_heap_words : int; space_overhead : int }

let current () =
  let g = Gc.get () in
  { minor_heap_words = g.Gc.minor_heap_size; space_overhead = g.Gc.space_overhead }
