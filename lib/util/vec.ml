type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length t = t.size

let push t x =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ndata = Array.make (max 16 (2 * cap)) x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let check t i name =
  if i < 0 || i >= t.size then invalid_arg ("Vec." ^ name ^ ": index out of range")

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let to_array t = Array.sub t.data 0 t.size

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let clear t =
  t.data <- [||];
  t.size <- 0

let sort ~cmp t =
  let arr = to_array t in
  Array.sort cmp arr;
  t.data <- arr;
  t.size <- Array.length arr

(* Sorting op records by timestamp through a polymorphic comparator
   chases boxed floats across the heap for every comparison.  Instead:
   project the keys once into an unboxed float array, mergesort an
   index permutation (cache-friendly, key loads are direct), and apply
   it.  Stable, so elements with equal keys keep their push order. *)
let sort_by_float ~key t =
  let n = t.size in
  if n > 1 then begin
    let ks = Array.make n 0.0 in
    for i = 0 to n - 1 do
      Array.unsafe_set ks i (key (Array.unsafe_get t.data i))
    done;
    let idx = Array.init n (fun i -> i) in
    let tmp = Array.make n 0 in
    (* Bottom-up mergesort of [idx] keyed by [ks]; [<=] keeps it
       stable. *)
    let merge lo mid hi =
      Array.blit idx lo tmp lo (hi - lo);
      let i = ref lo and j = ref mid in
      for k = lo to hi - 1 do
        if
          !i < mid
          && (!j >= hi
             || Array.unsafe_get ks (Array.unsafe_get tmp !i)
                <= Array.unsafe_get ks (Array.unsafe_get tmp !j))
        then begin
          Array.unsafe_set idx k (Array.unsafe_get tmp !i);
          incr i
        end
        else begin
          Array.unsafe_set idx k (Array.unsafe_get tmp !j);
          incr j
        end
      done
    in
    let width = ref 1 in
    while !width < n do
      let lo = ref 0 in
      while !lo + !width < n do
        merge !lo (!lo + !width) (min (!lo + (2 * !width)) n);
        lo := !lo + (2 * !width)
      done;
      width := 2 * !width
    done;
    let old = Array.sub t.data 0 n in
    for i = 0 to n - 1 do
      Array.unsafe_set t.data i (Array.unsafe_get old (Array.unsafe_get idx i))
    done
  end
