(** Domain-safe string-keyed memoization.

    The experiment suite caches generated traces and simulation passes
    so that figures sharing an input compute it once.  With the
    parallel runner several domains can request the same key
    concurrently; this table makes the build happen exactly once —
    later requesters block until the first build finishes rather than
    duplicating minutes of simulation.

    A build that raises is forgotten (the exception propagates to the
    caller that ran it; waiters retry the build themselves). *)

type 'a t

val create : unit -> 'a t

val get : 'a t -> string -> (unit -> 'a) -> 'a
(** [get t key build] returns the cached value for [key], running
    [build] (outside the lock) if absent. *)
