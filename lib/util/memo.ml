type 'a slot = Building | Ready of 'a

type 'a t = {
  mu : Mutex.t;
  cv : Condition.t;
  tbl : (string, 'a slot) Hashtbl.t;
}

let create () = { mu = Mutex.create (); cv = Condition.create (); tbl = Hashtbl.create 16 }

let get t key build =
  Mutex.lock t.mu;
  let rec wait () =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready v) ->
        Mutex.unlock t.mu;
        v
    | Some Building ->
        Condition.wait t.cv t.mu;
        wait ()
    | None ->
        Hashtbl.replace t.tbl key Building;
        Mutex.unlock t.mu;
        let v =
          try build ()
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.mu;
            Hashtbl.remove t.tbl key;
            Condition.broadcast t.cv;
            Mutex.unlock t.mu;
            Printexc.raise_with_backtrace e bt
        in
        Mutex.lock t.mu;
        Hashtbl.replace t.tbl key (Ready v);
        Condition.broadcast t.cv;
        Mutex.unlock t.mu;
        v
  in
  wait ()
