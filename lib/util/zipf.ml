type t = {
  n : int;
  cdf : float array;
  (* Walker alias table: bucket [i] returns [i] when the uniform
     fraction falls below [cut.(i)], otherwise [alias.(i)].  Built once
     in O(n); each sample is O(1) — one table row — instead of the CDF
     binary search, which the fleet generators pay on every op. *)
  cut : float array;
  alias : int array;
}

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** s));
    cdf.(i) <- !total
  done;
  let z = !total in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. z
  done;
  (* Vose's stable alias construction over the normalized masses scaled
     by n: every bucket ends up holding exactly 1/n of total mass,
     split between rank i (below the cut) and one alias rank. *)
  let cut = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let scaled =
    Array.init n (fun i ->
        let p = if i = 0 then cdf.(0) else cdf.(i) -. cdf.(i - 1) in
        p *. float_of_int n)
  in
  let small = Array.make n 0 and large = Array.make n 0 in
  let ns = ref 0 and nl = ref 0 in
  for i = 0 to n - 1 do
    if scaled.(i) < 1.0 then begin
      small.(!ns) <- i;
      incr ns
    end
    else begin
      large.(!nl) <- i;
      incr nl
    end
  done;
  while !ns > 0 && !nl > 0 do
    decr ns;
    decr nl;
    let s_i = small.(!ns) and l_i = large.(!nl) in
    cut.(s_i) <- scaled.(s_i);
    alias.(s_i) <- l_i;
    scaled.(l_i) <- scaled.(l_i) -. (1.0 -. scaled.(s_i));
    if scaled.(l_i) < 1.0 then begin
      small.(!ns) <- l_i;
      incr ns
    end
    else incr nl
  done;
  (* Leftovers are within rounding of exactly 1.0: they keep cut = 1
     (never alias), which is the correct limit. *)
  { n; cdf; cut; alias }

let n t = t.n

(* One uniform draw feeds both the bucket index (integer part) and the
   alias coin (fractional part) — the same Rng consumption as the CDF
   search this replaces, with O(1) work instead of O(log n). *)
let sample t rng =
  let u = Rng.float rng (float_of_int t.n) in
  let i = int_of_float u in
  let i = if i >= t.n then t.n - 1 else i in
  if u -. float_of_int i < Array.unsafe_get t.cut i then i
  else Array.unsafe_get t.alias i

(* The original CDF binary search, kept as the reference the alias
   table is validated against (frequency equivalence in test_util). *)
let sample_reference t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let prob t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.prob: rank out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)
