module Rng = D2_util.Rng
module Zipf = D2_util.Zipf
module Pool = D2_util.Pool
module Key = D2_keyspace.Key
module Encoding = D2_keyspace.Encoding
module Range_arena = D2_cache.Range_arena
module Engine = D2_simnet.Engine

type config = {
  clients : int;
  shards : int;
  nodes : int;
  ways : int;
  files : int;
  blocks : int;
  burst : int;
  duration : float;
  seed : int;
  jobs : int;
  scenario : Scenario.t;
}

let default_config scenario =
  {
    clients = 1_000_000;
    shards = 4;
    nodes = 64;
    ways = 8;
    files = 4096;
    blocks = 16;
    burst = 8;
    duration = 30.0;
    seed = 42;
    jobs = Pool.default_jobs ();
    scenario;
  }

type report = {
  ops : int;
  class_stats : (int * int * int * int) array;
  hist : int array;
  owner_ops : int array;
  owner_lookups : int array;
  churn_events : int;
  virtual_time : float;
}

(* Positions fit the arena's 19-bit range-id field: key rank i maps to
   2i+1, node boundaries to even positions, so the largest position is
   2 * nkeys. *)
let max_keys = 262_142

let validate cfg =
  let sc = cfg.scenario in
  let fail msg = invalid_arg ("Fleet.run: " ^ msg) in
  if cfg.clients < 1 then fail "clients must be positive";
  if cfg.shards < 1 || cfg.shards > cfg.clients then
    fail "shards must be in 1..clients";
  if cfg.nodes < 2 then fail "nodes must be >= 2";
  if cfg.ways < 1 || cfg.ways > 64 then fail "ways must be in 1..64";
  if cfg.files < 1 || cfg.files > 65_535 then fail "files must be in 1..65535";
  if cfg.blocks < 1 then fail "blocks must be positive";
  if cfg.files * cfg.blocks > max_keys then fail "files * blocks too large";
  if cfg.burst < 1 then fail "burst must be positive";
  if cfg.duration <= 0.0 then fail "duration must be positive";
  if sc.Scenario.think <= 0.0 then fail "think must be positive";
  if sc.Scenario.zipf_s < 0.0 then fail "zipf_s must be non-negative";
  if sc.Scenario.crowd_every < 1 then fail "crowd_every must be positive";
  if sc.Scenario.crowd_think <= 0.0 then fail "crowd_think must be positive";
  if sc.Scenario.flash_files < 1 || sc.Scenario.flash_files > cfg.files then
    fail "flash_files must be in 1..files";
  if sc.Scenario.flash_at < 0.0 then fail "flash_at must be non-negative";
  if sc.Scenario.day <= 0.0 then fail "day must be positive";
  if sc.Scenario.amplitude < 0.0 || sc.Scenario.amplitude >= 1.0 then
    fail "amplitude must be in [0, 1)";
  if sc.Scenario.churn_per_day < 0.0 then fail "churn_per_day non-negative"

(* Wheel tick sized to a few cells per slot: mean per-shard wake
   interval is think / (clients / shards). *)
let granularity cfg =
  let g =
    4.0 *. cfg.scenario.Scenario.think *. float_of_int cfg.shards
    /. float_of_int cfg.clients
  in
  if g < 1e-7 then 1e-7 else if g > 1.0 then 1.0 else g

type shard = {
  id : int;
  eng : Engine.t;
  rng : Rng.t;
  lo : int;  (* first client (inclusive) *)
  hi : int;  (* last client (exclusive) *)
  mutable tick : int;
  mutable ops : int;
  owner_ops : int array;
  owner_lookups : int array;
}

let run cfg =
  validate cfg;
  let sc = cfg.scenario in
  let root = Rng.create cfg.seed in
  let node_rng = Rng.split root in
  let churn_rng = Rng.split root in
  let shard_rngs =
    Array.init cfg.shards (fun _ -> Rng.create 0) (* placeholders *)
  in
  for s = 0 to cfg.shards - 1 do
    (* split in shard order so shard streams are independent of jobs *)
    shard_rngs.(s) <- Rng.split root
  done;

  (* {2 Key population}: one volume, [files] slot-addressed files of
     [blocks] blocks each, through the real D2 encoding so block
     adjacency in the namespace is adjacency on the ring. *)
  let nkeys = cfg.files * cfg.blocks in
  let vol = Encoding.volume_id "fleet0" in
  let keys =
    Array.init nkeys (fun i ->
        Encoding.of_slot_path ~volume:vol
          ~slots:[ (i / cfg.blocks) + 1 ]
          ~block:(Int64.of_int (i mod cfg.blocks))
          ~version:0l)
  in
  let order = Array.init nkeys Fun.id in
  Array.sort (fun a b -> Key.compare keys.(a) keys.(b)) order;
  let keypos = Array.make nkeys 0 in
  Array.iteri (fun rank i -> keypos.(i) <- (2 * rank) + 1) order;

  (* {2 Nodes}: boundaries sampled uniformly over the population, the
     post-defragmentation state the paper's balancer converges to.
     (Uniform ids over the whole 64-byte ring would be the cold,
     pre-balance cluster: the single volume is a sliver of the ring,
     so one node would own every key — degenerate for a cache and
     load study.) *)
  let node_pos = Array.make cfg.nodes 0 in
  for i = 0 to cfg.nodes - 1 do
    node_pos.(i) <- 2 * Rng.int node_rng (nkeys + 1)
  done;
  let up = Array.make cfg.nodes true in
  let up_count = ref cfg.nodes in

  let arena =
    Range_arena.create ~ways:cfg.ways
      ~classes:(Scenario.classes sc.Scenario.kind)
      ~shards:cfg.shards ~clients:cfg.clients ()
  in
  let rebuild_ranges () =
    let live = ref [] in
    for i = cfg.nodes - 1 downto 0 do
      if up.(i) then live := (node_pos.(i), i) :: !live
    done;
    let arr = Array.of_list !live in
    Array.sort
      (fun (p1, i1) (p2, i2) ->
        if p1 <> p2 then compare p1 p2 else compare i1 i2)
      arr;
    (* Nodes landing between the same two population keys share a
       position; the smallest id is the successor every key sees. *)
    let n = Array.length arr in
    let bounds = ref [] and owners = ref [] and last = ref (-1) in
    for i = n - 1 downto 0 do
      let p, idx = arr.(i) in
      if p <> !last then begin
        bounds := p :: !bounds;
        owners := idx :: !owners;
        last := p
      end
      else begin
        (* keep the first (smallest-id) owner at this position *)
        owners := idx :: List.tl !owners
      end
    done;
    Range_arena.set_ranges arena
      ~bounds:(Array.of_list !bounds)
      ~owners:(Array.of_list !owners)
  in
  rebuild_ranges ();

  (* {2 Workload tables} *)
  let main_zipf = Zipf.create ~n:cfg.files ~s:sc.Scenario.zipf_s in
  let crowd_zipf =
    if sc.Scenario.kind = Scenario.Flash_crowd then
      Some (Zipf.create ~n:sc.Scenario.flash_files ~s:sc.Scenario.zipf_s)
    else None
  in
  let drift_off = ref 0 in
  let drift_step =
    let s = cfg.files / 8 in
    if s < 1 then 1 else s
  in
  let flash = sc.Scenario.kind = Scenario.Flash_crowd in
  let diurnal = sc.Scenario.kind = Scenario.Diurnal in
  let is_crowd c = flash && c mod sc.Scenario.crowd_every = 0 in
  let class_of c = if is_crowd c then 1 else 0 in
  let omega = 2.0 *. Float.pi /. sc.Scenario.day in

  (* {2 Per-client columns}: current file and blocks left — everything
     else lives in the arena slots. *)
  let cur_file = Array.make cfg.clients 0 in
  let left = Array.make cfg.clients 0 in

  (* {2 Shards} *)
  let g = granularity cfg in
  let q = cfg.clients / cfg.shards and rem = cfg.clients mod cfg.shards in
  let shard_lo s = (s * q) + min s rem in
  let mk_shard id =
    let eng = Engine.create ~granularity:g () in
    let st =
      {
        id;
        eng;
        rng = shard_rngs.(id);
        lo = shard_lo id;
        hi = shard_lo (id + 1);
        tick = 0;
        ops = 0;
        owner_ops = Array.make cfg.nodes 0;
        owner_lookups = Array.make cfg.nodes 0;
      }
    in
    let handler = ref (fun (_ : int) (_ : int) -> ()) in
    let sink = Engine.register_sink eng (fun tag payload -> !handler tag payload) in
    (* One wake = one burst of sequential block reads.  Think time
       separates {e sessions} (files); blocks within a file stream
       with a short inter-burst gap, like a real client reading a
       file.  This also amortizes the wheel re-arm over [burst]
       probes — the engine is the expensive part of an op, the probe
       the cheap one. *)
    let step _tag client =
      let cls = class_of client in
      let rem = Array.unsafe_get left client in
      let f, rem =
        if rem = 0 then begin
          let rank =
            match crowd_zipf with
            | Some z when cls = 1 -> Zipf.sample z st.rng
            | _ -> Zipf.sample main_zipf st.rng
          in
          let f =
            let f = rank + !drift_off in
            if f >= cfg.files then f - cfg.files else f
          in
          Array.unsafe_set cur_file client f;
          (f, cfg.blocks)
        end
        else (Array.unsafe_get cur_file client, rem)
      in
      let burst = if rem < cfg.burst then rem else cfg.burst in
      let tick0 = st.tick in
      if tick0 + burst > Range_arena.max_tick then
        failwith "Fleet.run: shard op counter overflow (shorten the run)";
      let kbase = (f * cfg.blocks) + (cfg.blocks - rem) in
      for j = 0 to burst - 1 do
        let pos = Array.unsafe_get keypos (kbase + j) in
        let r =
          Range_arena.probe arena ~shard:st.id ~cls ~client ~pos
            ~tick:(tick0 + j + 1) ~cap:cfg.ways
        in
        let owner = r lsr 2 in
        Array.unsafe_set st.owner_ops owner
          (Array.unsafe_get st.owner_ops owner + 1);
        if r land 3 <> 0 then
          Array.unsafe_set st.owner_lookups owner
            (Array.unsafe_get st.owner_lookups owner + 1)
      done;
      st.tick <- tick0 + burst;
      st.ops <- st.ops + burst;
      let rem = rem - burst in
      Array.unsafe_set left client rem;
      let delay =
        if rem > 0 then
          (* mid-file: streaming gap, a small fraction of think *)
          Rng.exponential st.rng
            ~mean:
              ((if cls = 1 then sc.Scenario.crowd_think else sc.Scenario.think)
              *. 0.02)
        else if diurnal then
          let rate =
            1.0 +. (sc.Scenario.amplitude *. sin (omega *. Engine.now eng))
          in
          Rng.exponential st.rng ~mean:(sc.Scenario.think /. rate)
        else if cls = 1 then
          Rng.exponential st.rng ~mean:sc.Scenario.crowd_think
        else Rng.exponential st.rng ~mean:sc.Scenario.think
      in
      Engine.post_in eng ~sink ~delay ~tag:0 ~payload:client
    in
    handler := step;
    let init () =
      (* Stagger steady-state clients over one mean think; crowd
         clients stay dormant behind a single closure that posts their
         jittered wake-ups at the flash instant. *)
      for c = st.lo to st.hi - 1 do
        if not (is_crowd c) then
          Engine.post_in eng ~sink
            ~delay:(Rng.float st.rng sc.Scenario.think)
            ~tag:0 ~payload:c
      done;
      if flash && sc.Scenario.flash_at < cfg.duration then
        ignore
          (Engine.schedule eng ~at:sc.Scenario.flash_at (fun () ->
               for c = st.lo to st.hi - 1 do
                 if is_crowd c then
                   Engine.post_in eng ~sink
                     ~delay:(Rng.float st.rng sc.Scenario.crowd_think)
                     ~tag:0 ~payload:c
               done))
    in
    (st, init)
  in
  let shards = Array.init cfg.shards mk_shard in
  let shard_list = Array.to_list shards in

  (* {2 Churn schedule}: event times drawn up front; fail/revive
     alternation models rolling restarts (webcache churn: the whole
     cluster cycles once per day at the default rate). *)
  let churn_times =
    if (not diurnal) || sc.Scenario.churn_per_day <= 0.0 then [||]
    else begin
      let nev =
        int_of_float
          (ceil
             (sc.Scenario.churn_per_day *. float_of_int cfg.nodes
             *. cfg.duration /. sc.Scenario.day))
      in
      let a = Array.make nev 0.0 in
      for i = 0 to nev - 1 do
        a.(i) <- Rng.float churn_rng cfg.duration
      done;
      Array.sort compare a;
      a
    end
  in
  let pick_nth pred n =
    let seen = ref 0 and found = ref (-1) in
    for i = 0 to cfg.nodes - 1 do
      if !found < 0 && pred i then begin
        if !seen = n then found := i;
        incr seen
      end
    done;
    !found
  in
  let apply_churn k =
    let changed =
      if k land 1 = 0 then begin
        if !up_count > 2 then begin
          let v = pick_nth (fun i -> up.(i)) (Rng.int churn_rng !up_count) in
          up.(v) <- false;
          decr up_count;
          true
        end
        else false
      end
      else if !up_count < cfg.nodes then begin
        let v =
          pick_nth
            (fun i -> not up.(i))
            (Rng.int churn_rng (cfg.nodes - !up_count))
        in
        up.(v) <- true;
        incr up_count;
        true
      end
      else false
    in
    if sc.Scenario.drift then
      drift_off := (!drift_off + drift_step) mod cfg.files;
    if changed || sc.Scenario.drift then rebuild_ranges ()
  in

  (* {2 Drive}: shards advance independently between barriers; the
     range map only ever changes at a barrier, so probes never race a
     reconfiguration. *)
  let pool = Pool.create ~jobs:cfg.jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      ignore (Pool.map pool (fun (_, init) -> init ()) shard_list);
      let advance until_t =
        ignore
          (Pool.map pool
             (fun (st, _) -> Engine.run ~until:until_t st.eng)
             shard_list)
      in
      Array.iteri
        (fun k te ->
          advance te;
          apply_churn k)
        churn_times;
      advance cfg.duration);

  (* {2 Aggregate} in shard index order — byte-identical at any job
     count. *)
  let ops = Array.fold_left (fun a (st, _) -> a + st.ops) 0 shards in
  let classes = Scenario.classes sc.Scenario.kind in
  let class_stats =
    Array.init classes (fun cls -> Range_arena.stats arena ~cls)
  in
  let owner_ops = Array.make cfg.nodes 0 in
  let owner_lookups = Array.make cfg.nodes 0 in
  Array.iter
    (fun (st, _) ->
      for i = 0 to cfg.nodes - 1 do
        owner_ops.(i) <- owner_ops.(i) + st.owner_ops.(i);
        owner_lookups.(i) <- owner_lookups.(i) + st.owner_lookups.(i)
      done)
    shards;
  {
    ops;
    class_stats;
    hist = Range_arena.hist arena;
    owner_ops;
    owner_lookups;
    churn_events = Array.length churn_times;
    virtual_time = cfg.duration;
  }

let hit_rate_curve (r : report) =
  let ways = Array.length r.hist - 2 in
  let total = Array.fold_left ( + ) 0 r.hist in
  let curve = Array.make ways 0.0 in
  let cum = ref 0 in
  for c = 0 to ways - 1 do
    cum := !cum + r.hist.(c);
    curve.(c) <-
      (if total = 0 then 0.0 else float_of_int !cum /. float_of_int total)
  done;
  curve

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let pp_report fmt ((cfg, r) : config * report) =
  let sc = cfg.scenario in
  Format.fprintf fmt
    "scenario=%s clients=%d shards=%d nodes=%d ways=%d files=%d blocks=%d \
     duration=%g seed=%d@\n"
    (Scenario.kind_to_string sc.Scenario.kind)
    cfg.clients cfg.shards cfg.nodes cfg.ways cfg.files cfg.blocks cfg.duration
    cfg.seed;
  Format.fprintf fmt "ops=%d churn_events=%d virtual_time=%g@\n" r.ops
    r.churn_events r.virtual_time;
  Array.iteri
    (fun cls (h, m, s, e) ->
      Format.fprintf fmt
        "class %d: probes=%d hits=%d (%.2f%%) misses=%d stale=%d evictions=%d@\n"
        cls (h + m) h
        (pct h (h + m))
        m s e)
    r.class_stats;
  let curve = hit_rate_curve r in
  Format.fprintf fmt "hit-rate vs cache size:@\n";
  Array.iteri
    (fun i v -> Format.fprintf fmt "  C=%d %.4f@\n" (i + 1) v)
    curve;
  let ways = Array.length r.hist - 2 in
  let total = Array.fold_left ( + ) 0 r.hist in
  Format.fprintf fmt "cold=%.2f%% stale=%.2f%%@\n"
    (pct r.hist.(ways) total)
    (pct r.hist.(ways + 1) total);
  (* Per-owner load concentration: how hard does the hottest node get
     hit relative to the mean. *)
  let nodes = Array.length r.owner_ops in
  let total_ops = Array.fold_left ( + ) 0 r.owner_ops in
  let mean = float_of_int total_ops /. float_of_int nodes in
  let sorted = Array.copy r.owner_ops in
  Array.sort (fun a b -> compare b a) sorted;
  let top k =
    let s = ref 0 in
    for i = 0 to min k nodes - 1 do
      s := !s + sorted.(i)
    done;
    !s
  in
  Format.fprintf fmt
    "owner ops: mean=%.1f max=%d max/mean=%.2f top1=%.2f%% top5=%.2f%%@\n" mean
    sorted.(0)
    (if total_ops = 0 then 0.0 else float_of_int sorted.(0) /. mean)
    (pct (top 1) total_ops) (pct (top 5) total_ops);
  let lk_total = Array.fold_left ( + ) 0 r.owner_lookups in
  let lk_sorted = Array.copy r.owner_lookups in
  Array.sort (fun a b -> compare b a) lk_sorted;
  Format.fprintf fmt "owner lookups: total=%d max=%d top1=%.2f%%@\n" lk_total
    lk_sorted.(0)
    (pct lk_sorted.(0) lk_total);
  (* Histogram of per-owner load relative to the mean. *)
  let buckets = [| 0; 0; 0; 0; 0; 0; 0 |] in
  Array.iter
    (fun o ->
      let i =
        if o = 0 then 0
        else
          let x = float_of_int o /. mean in
          if x <= 0.25 then 1
          else if x <= 0.5 then 2
          else if x <= 1.0 then 3
          else if x <= 2.0 then 4
          else if x <= 4.0 then 5
          else 6
      in
      buckets.(i) <- buckets.(i) + 1)
    r.owner_ops;
  Format.fprintf fmt "owner load histogram (x mean):@\n";
  let labels =
    [| "zero"; "<=1/4"; "<=1/2"; "<=1"; "<=2"; "<=4"; ">4" |]
  in
  Array.iteri
    (fun i n -> Format.fprintf fmt "  %-6s %d@\n" labels.(i) n)
    buckets
