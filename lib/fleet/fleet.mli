(** Fleet engine: a million simulated D2 clients at hardware speed.

    Steps [clients] cache-carrying client sessions against a simulated
    D2 cluster of [nodes], entirely in virtual time on the
    deterministic {!D2_simnet.Engine}.  Per-client state is a handful
    of unboxed int columns plus [ways] packed slots in one shared
    {!D2_cache.Range_arena} — on the order of 100 bytes per client —
    so the whole fleet fits comfortably in memory and the per-op inner
    loop (zipf draw, position lookup, arena probe, wheel re-arm) never
    allocates.

    {2 Sharding and determinism}

    Clients are split over a {e fixed} number of [shards] (a config
    knob, {e not} the worker count), each with its own engine, RNG
    (split from the seed in shard order) and timer wheel; shards
    advance in lockstep between churn barriers via {!D2_util.Pool}.
    Because each shard's virtual timeline is self-contained and
    aggregation always walks shards in index order, the report is
    byte-identical whatever [D2_JOBS] is — jobs scale wall-clock
    only. *)

type config = {
  clients : int;
  shards : int;  (** fixed shard count; determinism is per-shard *)
  nodes : int;
  ways : int;  (** per-client cache slots (1..64) *)
  files : int;
  blocks : int;  (** blocks per file; sequential within a session *)
  burst : int;  (** blocks probed per wake-up within a file *)
  duration : float;  (** virtual seconds *)
  seed : int;
  jobs : int;  (** pool workers; never affects results *)
  scenario : Scenario.t;
}

val default_config : Scenario.t -> config
(** 1M clients, 4 shards, 64 nodes, 8 ways, 4096 files x 16 blocks
    read 8 per burst, 30 virtual seconds, seed 42, [D2_JOBS]
    workers. *)

type report = {
  ops : int;  (** simulated client operations completed *)
  class_stats : (int * int * int * int) array;
      (** per class: hits, misses, stale (subset of misses),
          evictions *)
  hist : int array;
      (** stack-distance histogram, length [ways + 2]
          (see {!D2_cache.Range_arena.hist}) *)
  owner_ops : int array;  (** block ops routed to each node *)
  owner_lookups : int array;  (** DHT lookups (misses) per node *)
  churn_events : int;
  virtual_time : float;
}

val run : config -> report
(** Runs the scenario to [duration] virtual seconds and aggregates.
    @raise Invalid_argument on inconsistent config (see source for
    the exact bounds; notably [files * blocks <= 262142] so positions
    fit the arena's range-id field). *)

val hit_rate_curve : report -> float array
(** [.(c)] is the simulated hit rate at cache size [c + 1], for sizes
    [1 .. ways], derived from the stack-distance histogram of one run
    (LRU inclusion property — no re-simulation). *)

val pp_report : Format.formatter -> config * report -> unit
(** Deterministic plain-text report: per-class counters, the
    hit-rate-vs-cache-size curve, and the per-owner load-concentration
    histogram.  Contains no wall-clock times, so equal seeds diff
    clean. *)
