(** Workload shapes for the fleet engine.

    Three generators cover the paper's evaluation axes:

    - {!Zipf_storm}: every client reads whole files picked from a
      zipfian popularity curve on one volume — the steady-state
      hot-key workload (paper §6's web traces).
    - {!Flash_crowd}: a baseline population plus a dormant crowd class
      that all wake at [flash_at] with a short think time, aimed at a
      small hot subset — a step function of arrivals.
    - {!Diurnal}: request rate follows a sinusoid over a [day], with
      webcache-style node churn (≥ 100% of the cluster per day by
      default) and optional content drift rotating popularity. *)

type kind = Zipf_storm | Flash_crowd | Diurnal

type t = {
  kind : kind;
  think : float;  (** mean client think time, virtual seconds *)
  zipf_s : float;  (** popularity exponent over files *)
  flash_at : float;  (** crowd wake-up instant (flash crowd only) *)
  crowd_every : int;  (** every k-th client is crowd-class *)
  crowd_think : float;  (** crowd mean think time after the flash *)
  flash_files : int;  (** the crowd draws from the hottest k files *)
  day : float;  (** diurnal period, virtual seconds *)
  amplitude : float;  (** rate swing, 0 <= a < 1: rate x (1 + a sin) *)
  churn_per_day : float;  (** node churn events per node per day *)
  drift : bool;  (** rotate the rank->file mapping at each churn *)
}

val default : kind -> t
(** Sensible defaults per kind; the diurnal default churns 100% of
    the cluster per day. *)

val kind_of_string : string -> kind option
(** Parses ["zipf_storm"], ["flash_crowd"], ["diurnal"]. *)

val kind_to_string : kind -> string

val classes : kind -> int
(** Client classes the generator distinguishes: 2 for the flash crowd
    (baseline / crowd), else 1. *)
