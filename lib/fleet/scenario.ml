type kind = Zipf_storm | Flash_crowd | Diurnal

type t = {
  kind : kind;
  think : float;
  zipf_s : float;
  flash_at : float;
  crowd_every : int;
  crowd_think : float;
  flash_files : int;
  day : float;
  amplitude : float;
  churn_per_day : float;
  drift : bool;
}

let default kind =
  {
    kind;
    think = 5.0;
    zipf_s = 0.9;
    flash_at = 10.0;
    crowd_every = 4;
    crowd_think = 0.5;
    flash_files = 16;
    day = 60.0;
    amplitude = 0.8;
    churn_per_day = (match kind with Diurnal -> 1.0 | _ -> 0.0);
    drift = false;
  }

let kind_of_string = function
  | "zipf_storm" -> Some Zipf_storm
  | "flash_crowd" -> Some Flash_crowd
  | "diurnal" -> Some Diurnal
  | _ -> None

let kind_to_string = function
  | Zipf_storm -> "zipf_storm"
  | Flash_crowd -> "flash_crowd"
  | Diurnal -> "diurnal"

let classes = function Flash_crowd -> 2 | Zipf_storm | Diurnal -> 1
