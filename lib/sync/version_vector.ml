(* Sorted parallel int arrays: nodes.(i) strictly increasing,
   counts.(i) >= 1.  The canonical form (no zero counters, sorted,
   deduplicated) makes structural equality and the codec's byte
   equality coincide with vector equality. *)

type t = { nodes : int array; counts : int array }

let empty = { nodes = [||]; counts = [||] }
let is_empty t = Array.length t.nodes = 0
let cardinal t = Array.length t.nodes

let rec find_node nodes node lo hi =
  if lo >= hi then -1
  else
    let mid = (lo + hi) / 2 in
    let v = nodes.(mid) in
    if v = node then mid
    else if v < node then find_node nodes node (mid + 1) hi
    else find_node nodes node lo mid

let get t node =
  let i = find_node t.nodes node 0 (Array.length t.nodes) in
  if i < 0 then 0 else t.counts.(i)

let bump t ~node =
  if node < 0 then invalid_arg "Version_vector.bump: negative node";
  let n = Array.length t.nodes in
  let i = find_node t.nodes node 0 n in
  if i >= 0 then begin
    let counts = Array.copy t.counts in
    counts.(i) <- counts.(i) + 1;
    { nodes = t.nodes; counts }
  end
  else begin
    let nodes = Array.make (n + 1) 0 and counts = Array.make (n + 1) 0 in
    let j = ref 0 in
    while !j < n && t.nodes.(!j) < node do
      nodes.(!j) <- t.nodes.(!j);
      counts.(!j) <- t.counts.(!j);
      incr j
    done;
    nodes.(!j) <- node;
    counts.(!j) <- 1;
    for k = !j to n - 1 do
      nodes.(k + 1) <- t.nodes.(k);
      counts.(k + 1) <- t.counts.(k)
    done;
    { nodes; counts }
  end

(* One linear merge pass; the merged size is counted first so the
   result allocates exactly once. *)
let merge a b =
  if is_empty a then b
  else if is_empty b then a
  else begin
    let na = Array.length a.nodes and nb = Array.length b.nodes in
    let n = ref 0 in
    let i = ref 0 and j = ref 0 in
    while !i < na || !j < nb do
      (if !i >= na then incr j
       else if !j >= nb then incr i
       else
         let c = compare a.nodes.(!i) b.nodes.(!j) in
         if c = 0 then begin
           incr i;
           incr j
         end
         else if c < 0 then incr i
         else incr j);
      incr n
    done;
    let nodes = Array.make !n 0 and counts = Array.make !n 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na || !j < nb do
      (if !i >= na then begin
         nodes.(!k) <- b.nodes.(!j);
         counts.(!k) <- b.counts.(!j);
         incr j
       end
       else if !j >= nb then begin
         nodes.(!k) <- a.nodes.(!i);
         counts.(!k) <- a.counts.(!i);
         incr i
       end
       else
         let c = compare a.nodes.(!i) b.nodes.(!j) in
         if c = 0 then begin
           nodes.(!k) <- a.nodes.(!i);
           counts.(!k) <- max a.counts.(!i) b.counts.(!j);
           incr i;
           incr j
         end
         else if c < 0 then begin
           nodes.(!k) <- a.nodes.(!i);
           counts.(!k) <- a.counts.(!i);
           incr i
         end
         else begin
           nodes.(!k) <- b.nodes.(!j);
           counts.(!k) <- b.counts.(!j);
           incr j
         end);
      incr k
    done;
    { nodes; counts }
  end

type order = Equal | Dominates | Dominated | Concurrent

let compare_vv a b =
  let na = Array.length a.nodes and nb = Array.length b.nodes in
  let a_extra = ref false and b_extra = ref false in
  let i = ref 0 and j = ref 0 in
  while (not (!a_extra && !b_extra)) && (!i < na || !j < nb) do
    if !i >= na then begin
      b_extra := true;
      incr j
    end
    else if !j >= nb then begin
      a_extra := true;
      incr i
    end
    else
      let c = compare a.nodes.(!i) b.nodes.(!j) in
      if c = 0 then begin
        let d = compare a.counts.(!i) b.counts.(!j) in
        if d > 0 then a_extra := true else if d < 0 then b_extra := true;
        incr i;
        incr j
      end
      else if c < 0 then begin
        a_extra := true;
        incr i
      end
      else begin
        b_extra := true;
        incr j
      end
  done;
  match (!a_extra, !b_extra) with
  | false, false -> Equal
  | true, false -> Dominates
  | false, true -> Dominated
  | true, true -> Concurrent

let dominates a b =
  match compare_vv a b with Equal | Dominates -> true | _ -> false

let sum t = Array.fold_left ( + ) 0 t.counts

(* Total order consistent with dominance: strict dominance implies a
   strictly larger counter sum, so ordering by sum (ties broken by the
   entry arrays, which differ whenever the vectors do) never inverts
   the partial order. *)
let winner a b =
  match compare_vv a b with
  | Equal | Dominates -> `Left
  | Dominated -> `Right
  | Concurrent ->
      let c = compare (sum a) (sum b) in
      let c =
        if c <> 0 then c
        else
          let c = compare a.nodes b.nodes in
          if c <> 0 then c else compare a.counts b.counts
      in
      if c >= 0 then `Left else `Right

let max_entries = 64
let u32_max = 0xffff_ffff

let encoded_size t = 1 + (8 * Array.length t.nodes)

let encode_into t buf ~off =
  let n = Array.length t.nodes in
  if n > max_entries then invalid_arg "Version_vector.encode_into: too many entries";
  if off < 0 || off + encoded_size t > Bytes.length buf then
    invalid_arg "Version_vector.encode_into: buffer too small";
  Bytes.set_uint8 buf off n;
  for i = 0 to n - 1 do
    if t.nodes.(i) > u32_max || t.counts.(i) > u32_max then
      invalid_arg "Version_vector.encode_into: entry outside u32";
    Bytes.set_int32_be buf (off + 1 + (8 * i)) (Int32.of_int t.nodes.(i));
    Bytes.set_int32_be buf (off + 5 + (8 * i)) (Int32.of_int t.counts.(i))
  done;
  encoded_size t

let decode buf ~off ~stop =
  if off < 0 || off >= stop || stop > Bytes.length buf then None
  else
    let n = Bytes.get_uint8 buf off in
    if n > max_entries || off + 1 + (8 * n) > stop then None
    else begin
      let nodes = Array.make n 0 and counts = Array.make n 0 in
      let ok = ref true in
      for i = 0 to n - 1 do
        let node =
          Int32.to_int (Bytes.get_int32_be buf (off + 1 + (8 * i))) land u32_max
        in
        let count =
          Int32.to_int (Bytes.get_int32_be buf (off + 5 + (8 * i))) land u32_max
        in
        nodes.(i) <- node;
        counts.(i) <- count;
        if count < 1 then ok := false;
        if i > 0 && nodes.(i - 1) >= node then ok := false
      done;
      if !ok then Some ({ nodes; counts }, 1 + (8 * n)) else None
    end

let to_string t =
  let b = Buffer.create 32 in
  Buffer.add_char b '{';
  Array.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%d:%d" n t.counts.(i)))
    t.nodes;
  Buffer.add_char b '}';
  Buffer.contents b

let pp fmt t = Format.pp_print_string fmt (to_string t)
