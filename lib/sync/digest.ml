module Key = D2_keyspace.Key
module Crc32c = D2_segstore.Crc32c
module Vv = Version_vector

let fanout_bits = 4
let fanout = 1 lsl fanout_bits
let max_bits = 28

(* Key.hash is already a well-mixed 62-bit value; bucketing consumes
   its top [max_bits] bits most-significant first, so a (prefix, bits)
   pair addresses one subtree of a 16-ary trie over hash space. *)
let hash_bits key = (Key.hash key lsr (62 - max_bits)) land ((1 lsl max_bits) - 1)

let in_bucket key ~prefix ~bits =
  bits = 0 || hash_bits key lsr (max_bits - bits) = prefix

let child_index key ~bits =
  hash_bits key lsr (max_bits - bits - fanout_bits) land (fanout - 1)

let entry_crc key vv deleted =
  let crc = Crc32c.string (Key.to_string key) ~pos:0 ~len:Key.size in
  let vb = Bytes.create (Vv.encoded_size vv) in
  ignore (Vv.encode_into vv vb ~off:0);
  let crc = Crc32c.bytes ~crc vb ~pos:0 ~len:(Bytes.length vb) in
  Crc32c.string ~crc (if deleted then "\001" else "\000") ~pos:0 ~len:1

let mask32 = 0xffff_ffff

let children ~iter ~prefix ~bits =
  if bits + fanout_bits > max_bits then
    invalid_arg "Digest.children: probe below max_bits";
  let sums = Array.make fanout 0 and counts = Array.make fanout 0 in
  iter (fun key (e : Vmap.entry) ->
      if in_bucket key ~prefix ~bits then begin
        let i = child_index key ~bits in
        sums.(i) <- (sums.(i) + entry_crc key e.vv e.deleted) land mask32;
        counts.(i) <- counts.(i) + 1
      end);
  Array.init fanout (fun i -> (sums.(i), counts.(i)))

let items ~iter ~prefix ~bits =
  let acc = ref [] in
  iter (fun key (e : Vmap.entry) ->
      if in_bucket key ~prefix ~bits then acc := (key, e.vv, e.deleted) :: !acc);
  List.sort (fun (a, _, _) (b, _, _) -> Key.compare a b) !acc
