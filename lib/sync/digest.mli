(** Bucketed range digests for anti-entropy.

    A repair session compares two nodes' views of one ring range
    without shipping the keys: each (key, version, tombstone) entry is
    hashed through the segment store's hardware CRC-32C kernel (the
    checksum the log records already pay for, so the fold costs one
    table-free pass per entry), entries are bucketed by successive
    4-bit slices of the key's hash, and a bucket's digest is the sum
    of its entries' CRCs — addition makes the fold independent of
    iteration order, so two stores holding the same entries produce
    the same digest no matter how their hash tables happen to iterate.

    A mismatched bucket is narrowed by re-digesting its 16 children
    one level deeper ({!fanout} buckets per round over {!max_bits}
    hash bits), so a single divergent key is isolated in
    O(log16 n) round trips; once a bucket is small enough the session
    switches to exchanging its key list ({!items}). *)

module Key = D2_keyspace.Key

val fanout : int
(** Children per digest level (16 = 4 hash bits per round). *)

val fanout_bits : int

val max_bits : int
(** Hash bits available for bucketing (28); a probe at [max_bits]
    cannot recurse further and must exchange keys. *)

val entry_crc : Key.t -> Version_vector.t -> bool -> int
(** CRC-32C over the key bytes, the encoded vector, and the tombstone
    flag — the unit the bucket sums are built from. *)

val in_bucket : Key.t -> prefix:int -> bits:int -> bool
(** Whether the key's hash starts with [prefix] (its top [bits] bits). *)

val children :
  iter:((Key.t -> Vmap.entry -> unit) -> unit) ->
  prefix:int ->
  bits:int ->
  (int * int) array
(** [fanout] child buckets of the node ([prefix], [bits]) as
    (CRC sum mod 2^32, entry count) pairs, folded from whatever range
    iterator the caller supplies (normally {!Vmap.iter_range}
    partially applied). *)

val items :
  iter:((Key.t -> Vmap.entry -> unit) -> unit) ->
  prefix:int ->
  bits:int ->
  (Key.t * Version_vector.t * bool) list
(** The bucket's entries, sorted by key so both sides enumerate a
    mismatched bucket in the same order. *)
