(** Version vectors over interned node handles.

    Every block write is stamped by its coordinator with a version
    vector: one counter per node that has ever coordinated a write of
    that block.  Replicas use the partial order to tell a newer copy
    from an older one, and a deterministic total-order extension to
    converge on one winner when two copies are concurrent (the classic
    "merge the vectors, keep the winner's bytes" resolution).

    The representation is two parallel int arrays sorted by node — the
    wire protocol's u32 node handles are already the interned compact
    identity (the ring's 64-byte IDs never appear in a vector), so an
    n-entry vector costs 2n ints and every operation is a linear
    array merge with no allocation beyond the result. *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Number of (node, counter) entries. *)

val get : t -> int -> int
(** Counter for a node handle; 0 when absent. *)

val bump : t -> node:int -> t
(** Increment [node]'s counter (inserting it at 1). *)

val merge : t -> t -> t
(** Pointwise max — commutative, associative, idempotent. *)

type order =
  | Equal
  | Dominates  (** left supersedes right: every counter >=, one > *)
  | Dominated  (** right supersedes left *)
  | Concurrent

val compare_vv : t -> t -> order

val dominates : t -> t -> bool
(** [dominates a b] — [a] is at least as new as [b] ([Equal] or
    [Dominates]); the empty vector is dominated by everything. *)

val winner : t -> t -> [ `Left | `Right ]
(** Deterministic conflict resolution: the dominant side when the
    vectors are ordered, otherwise the total-order extension (larger
    counter sum, ties broken lexicographically), which every replica
    computes identically — [Concurrent] copies therefore converge. *)

val max_entries : int
(** Cap on entries a codec accepts (64): a vector names at most the
    coordinators that ever stamped the block, so hitting the cap means
    a protocol bug, not organic growth. *)

val encoded_size : t -> int
(** Bytes {!encode_into} writes: 1 + 8 x entries. *)

val encode_into : t -> Bytes.t -> off:int -> int
(** Write [u8 count] then per-entry [u32 node][u32 counter] pairs in
    node order; returns bytes written. *)

val decode : Bytes.t -> off:int -> stop:int -> (t * int) option
(** Parse an encoded vector at [off], reading no byte at or past
    [stop]; [Some (vv, bytes_consumed)] on success, [None] on
    truncation, an entry count above {!max_entries}, or node handles
    out of order (the canonical form is unique, so equality of encoded
    bytes is equality of vectors). *)

val to_string : t -> string
(** Debug rendering, e.g. ["{3:1,7:4}"]. *)

val pp : Format.formatter -> t -> unit
