(** Per-node version state: key -> (version vector, tombstone flag).

    The node runtime keeps one [Vmap] beside its blockstore.  Writes
    stamp it ({!stamp_put} on the coordinating node, {!apply} on a
    replica receiving a stamped copy), removes leave tombstones (a
    deleted key must keep its vector or anti-entropy would resurrect
    it from a replica that missed the remove), and the repair digests
    fold over it ({!iter} / {!iter_range}).

    Thread-safe the same way {!D2_net.Shard} is: keys hash across
    independently locked partitions, so the domain-sharded runtime's
    write path updates versions in parallel.  {!apply} runs its
    compare-and-resolve under the key's partition lock, so two domains
    applying copies of the same key serialize correctly. *)

module Key = D2_keyspace.Key

type t

type entry = { vv : Version_vector.t; deleted : bool }

val create : ?partitions:int -> unit -> t
(** [partitions] (default 32) is rounded up to a power of two. *)

val find : t -> key:Key.t -> entry option

val count : t -> int
(** Entries held, tombstones included. *)

val stamp_put : t -> key:Key.t -> node:int -> incoming:Version_vector.t -> Version_vector.t
(** Coordinator write path: merge [incoming] (empty for a client put)
    into the key's current vector, bump [node], record the result as
    live, and return it — the vector the fan-out copies and the
    client's ack carry. *)

val stamp_remove : t -> key:Key.t -> node:int -> incoming:Version_vector.t -> Version_vector.t
(** Same, but records a tombstone. *)

val apply :
  t ->
  key:Key.t ->
  vv:Version_vector.t ->
  deleted:bool ->
  [ `Store of Version_vector.t | `Ignore of Version_vector.t ]
(** Replica path: resolve an incoming stamped copy against the local
    entry.  [`Store vv'] — the incoming copy wins (it dominates, or
    it is concurrent and wins the deterministic tiebreak): the caller
    must install the incoming bytes (or tombstone), and the entry now
    carries [vv'] (the merge of both vectors).  [`Ignore vv'] — the
    local copy stands (entry still merged to [vv'], so a stale copy
    cannot resurface later).  Either way both replicas of a concurrent
    pair converge on the same (vector, bytes). *)

val seed : t -> key:Key.t -> unit
(** Register a key recovered from a restarted store under the empty
    vector (only when no entry exists): the block becomes visible to
    digests — so a sole-surviving copy still propagates — but loses
    to any stamped copy a peer holds. *)

val iter : t -> (Key.t -> entry -> unit) -> unit

val iter_range : t -> lo:Key.t -> hi:Key.t -> (Key.t -> entry -> unit) -> unit
(** Entries with key in the half-open ring interval [(lo, hi]]
    ({!Key.in_interval}); the whole map when [lo = hi]. *)
