module Key = D2_keyspace.Key
module Vv = Version_vector

type probe = { prefix : int; bits : int }

let root = { prefix = 0; bits = 0 }
let leaf_count = 32

type next = Digest of probe | Keys of probe

let refine probe ~local ~remote =
  if
    Array.length local <> Digest.fanout || Array.length remote <> Digest.fanout
  then invalid_arg "Repair.refine: digest arrays must have fanout entries";
  let acc = ref [] in
  for i = Digest.fanout - 1 downto 0 do
    let lsum, lcount = local.(i) and rsum, rcount = remote.(i) in
    if lsum <> rsum || lcount <> rcount then begin
      let child =
        {
          prefix = (probe.prefix lsl Digest.fanout_bits) lor i;
          bits = probe.bits + Digest.fanout_bits;
        }
      in
      (* Another digest round costs one RPC and saves shipping the
         bucket's entries; worth it only while the bucket is big and
         there are hash bits left to split on. *)
      if
        child.bits + Digest.fanout_bits <= Digest.max_bits
        && lcount + rcount > leaf_count
      then acc := Digest child :: !acc
      else acc := Keys child :: !acc
    end
  done;
  !acc

type transfers = {
  pull : Key.t list;
  push : (Key.t * Vv.t * bool) list;
}

let diff ~local ~remote =
  let pull = ref [] and push = ref [] in
  let rec go l r =
    match (l, r) with
    | [], [] -> ()
    | (k, vv, del) :: lt, [] ->
        push := (k, vv, del) :: !push;
        go lt []
    | [], (k, _, _) :: rt ->
        pull := k :: !pull;
        go [] rt
    | ((lk, lvv, ldel) :: lt as l), ((rk, rvv, _) :: rt as r) -> (
        let c = Key.compare lk rk in
        if c < 0 then begin
          push := (lk, lvv, ldel) :: !push;
          go lt r
        end
        else if c > 0 then begin
          pull := rk :: !pull;
          go l rt
        end
        else begin
          (match Vv.compare_vv lvv rvv with
          | Vv.Equal -> ()
          | Vv.Dominates -> push := (lk, lvv, ldel) :: !push
          | Vv.Dominated -> pull := lk :: !pull
          | Vv.Concurrent ->
              (* Ship both ways: each side applies the deterministic
                 winner, so one exchange converges the pair. *)
              push := (lk, lvv, ldel) :: !push;
              pull := lk :: !pull);
          go lt rt
        end)
  in
  go local remote;
  { pull = List.rev !pull; push = List.rev !push }
