(** The anti-entropy session planner — pure decision logic.

    One repair session reconciles one ring range between two nodes.
    The initiator walks the digest trie: it probes a (prefix, bits)
    bucket by exchanging child digests ({!refine} decides, per
    mismatched child, whether to recurse another digest round or drop
    to the key level), and at the key level {!diff} turns the two
    sorted entry lists into the transfers that make the replicas
    converge — pulls for entries the peer holds newer, pushes for
    entries we hold newer (a concurrent pair produces both: each side
    applies the deterministic winner).

    Keeping the planner free of transport state means the narrowing
    logic is unit-testable against plain lists, and the node runtime
    only schedules the RPCs the planner asks for. *)

module Key = D2_keyspace.Key

type probe = { prefix : int; bits : int }

val root : probe
(** The whole range: prefix 0 at 0 bits. *)

val leaf_count : int
(** Bucket size (combined, both sides) below which exchanging the key
    list beats another digest round (32). *)

type next =
  | Digest of probe  (** recurse: exchange this child's digests *)
  | Keys of probe  (** narrow enough: exchange this child's entries *)

val refine :
  probe -> local:(int * int) array -> remote:(int * int) array -> next list
(** Compare two child-digest arrays for the same probe; for each child
    whose (sum, count) differs, descend — to another digest round
    while the child is big and above {!Digest.max_bits} headroom, to a
    key exchange otherwise.  Equal children produce nothing: matching
    digests mean matching entries. *)

type transfers = {
  pull : Key.t list;  (** peer's copy supersedes ours (or we miss it) *)
  push : (Key.t * Version_vector.t * bool) list;
      (** our copy supersedes the peer's; (key, vector, tombstone) *)
}

val diff :
  local:(Key.t * Version_vector.t * bool) list ->
  remote:(Key.t * Version_vector.t * bool) list ->
  transfers
(** Key-level reconciliation of one bucket.  Both lists must be sorted
    by key ({!Digest.items} order).  An entry dominated by the other
    side is refreshed from it; concurrent entries appear in both lists
    so each side converges on the deterministic winner. *)
