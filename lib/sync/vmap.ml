module Key = D2_keyspace.Key
module Vv = Version_vector

type entry = { vv : Vv.t; deleted : bool }

type partition = { tbl : entry Key.Table.t; lock : Mutex.t }
type t = { parts : partition array; mask : int }

let default_partitions = 32

let create ?(partitions = default_partitions) () =
  if partitions < 1 then invalid_arg "Vmap.create: partitions < 1";
  let n = ref 1 in
  while !n < partitions do
    n := !n * 2
  done;
  {
    parts =
      Array.init !n (fun _ -> { tbl = Key.Table.create 64; lock = Mutex.create () });
    mask = !n - 1;
  }

let part t key = t.parts.(Key.hash key land t.mask)

let locked p f =
  Mutex.lock p.lock;
  match f p with
  | v ->
      Mutex.unlock p.lock;
      v
  | exception e ->
      Mutex.unlock p.lock;
      raise e

let find t ~key = locked (part t key) (fun p -> Key.Table.find_opt p.tbl key)

let count t =
  Array.fold_left
    (fun acc p -> acc + locked p (fun p -> Key.Table.length p.tbl))
    0 t.parts

let stamp t ~key ~node ~incoming ~deleted =
  locked (part t key) (fun p ->
      let cur =
        match Key.Table.find_opt p.tbl key with
        | Some e -> e.vv
        | None -> Vv.empty
      in
      let vv = Vv.bump (Vv.merge cur incoming) ~node in
      Key.Table.replace p.tbl key { vv; deleted };
      vv)

let stamp_put t ~key ~node ~incoming =
  stamp t ~key ~node ~incoming ~deleted:false

let stamp_remove t ~key ~node ~incoming =
  stamp t ~key ~node ~incoming ~deleted:true

let apply t ~key ~vv ~deleted =
  locked (part t key) (fun p ->
      match Key.Table.find_opt p.tbl key with
      | None ->
          Key.Table.replace p.tbl key { vv; deleted };
          `Store vv
      | Some local -> (
          let merged = Vv.merge local.vv vv in
          match Vv.compare_vv vv local.vv with
          | Vv.Equal | Vv.Dominated -> `Ignore merged
          | Vv.Dominates ->
              Key.Table.replace p.tbl key { vv = merged; deleted };
              `Store merged
          | Vv.Concurrent ->
              (* Both sides of a concurrent pair compute the same
                 winner, so after one exchange in either direction the
                 replicas hold the same (merged vector, bytes). *)
              if Vv.winner vv local.vv = `Left then begin
                Key.Table.replace p.tbl key { vv = merged; deleted };
                `Store merged
              end
              else begin
                Key.Table.replace p.tbl key
                  { vv = merged; deleted = local.deleted };
                `Ignore merged
              end))

let seed t ~key =
  locked (part t key) (fun p ->
      if not (Key.Table.mem p.tbl key) then
        Key.Table.replace p.tbl key { vv = Vv.empty; deleted = false })

let iter t f =
  Array.iter (fun p -> locked p (fun p -> Key.Table.iter f p.tbl)) t.parts

let iter_range t ~lo ~hi f =
  iter t (fun key e -> if Key.in_interval key ~lo ~hi then f key e)
