(** The 30-second buffer / write-back cache of D2-FS (paper §3).

    Reads of a block within [window] of a previous access are served
    locally (no DHT fetch); writes are buffered for up to [window]
    before being flushed, which absorbs short-lived temporary files.
    This module is the bookkeeping both the file-system layer and the
    performance simulator share: it answers "is this block still warm"
    and tracks dirty blocks awaiting flush. *)

module Key = D2_keyspace.Key

type t

val create : ?window:float -> unit -> t
(** [window] defaults to 30 s. *)

val touch : t -> now:float -> Key.t -> bool
(** Record a read access; returns [true] if the block was already warm
    (a cache hit — no fetch needed). *)

val is_warm : t -> now:float -> Key.t -> bool
(** Non-mutating warmth check. *)

val write : t -> now:float -> Key.t -> size:int -> unit
(** Buffer a dirty block. Overwrites of a buffered block are absorbed
    (only the last version will flush). *)

val cancel : t -> Key.t -> unit
(** Drop a dirty block before it flushes (file deleted in window —
    the write never reaches the DHT). *)

val flush_due : t -> now:float -> (Key.t * int) list
(** Dirty blocks whose window has elapsed, removed from the buffer, in
    flush order. *)

val dirty_count : t -> int
val window : t -> float

(** {1 Hot-block byte cache}

    The front the durable segment store reads through: whole block
    payloads retained up to a byte capacity with O(1) LRU eviction.
    A zero capacity disables retention entirely (every find misses,
    stores are dropped) — the cold-read benchmark configuration. *)

type bytes_cache

val bytes_cache : capacity:int -> bytes_cache

val cache_store : bytes_cache -> Key.t -> string -> unit
(** Insert or refresh a payload (becomes MRU); evicts LRU entries
    until the capacity holds.  Payloads above the capacity are not
    retained. *)

val cache_find : bytes_cache -> Key.t -> string option
(** Hit promotes to MRU and counts toward {!cache_hits}. *)

val cache_remove : bytes_cache -> Key.t -> unit

val cache_used : bytes_cache -> int
(** Retained payload bytes. *)

val cache_count : bytes_cache -> int
val cache_hits : bytes_cache -> int
val cache_misses : bytes_cache -> int
val cache_evictions : bytes_cache -> int
