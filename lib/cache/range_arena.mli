(** Shared flat range arena: a million clients' lookup caches in one
    allocation.

    The fleet layer ({!module:D2_fleet}) steps ~10^6 simulated clients,
    and giving each its own {!Lookup_cache.t} would cost kilobytes and a
    pointer chase per client.  Instead all clients share {e one} arena
    describing the cluster's current ownership ranges, and each client
    keeps only [ways] packed-int slots recording which ranges it has
    "fetched" and when.

    {2 Layout}

    The arena side is three parallel int columns sorted by range upper
    bound: [his] (the boundary position, which doubles as the range's
    stable id), [owners], and [changed] (the arena epoch at which the
    range last changed shape or owner).  Ownership follows the D2/DHT
    successor rule: position [p] belongs to the range whose bound is the
    smallest [his.(i)] >= [p], wrapping to index 0.

    The client side is a [clients * ways] int array of packed slots:

    {v  bits 44..62   range id + 1        (0 means the slot is empty)
        bits 28..43   fetch epoch         (arena epoch when installed)
        bits  0..27   last-touch tick     (per-shard op counter)      v}

    {2 Probe semantics}

    A probe binary-searches the boundary columns (pure int compares,
    zero allocation) and scans the client's [ways] slots for the range
    id.  A matching slot whose fetch epoch is [>= changed.(i)] is {e
    fresh}: the client's cached answer survived every reconfiguration
    since it fetched.  Its LRU stack distance [d] — how many of the
    client's slots were touched more recently — is accumulated into a
    per-shard histogram, and the probe is a hit iff [d < cap], the
    cache size being simulated.  By the LRU inclusion property one run
    at [cap = ways] yields the hit rate of {e every} cache size [C <=
    ways] from that histogram in a single pass.  A matching slot with
    an older epoch is a {e stale} miss (the range changed under the
    client); no match is a {e cold} miss, installing into an empty or
    least-recently-touched slot.

    Staleness is judged against the full [ways]-slot window, so the
    stale rate read off for a smaller [C] is the rate a [ways]-sized
    cache would see — a documented approximation (DESIGN.md §9).

    Counters (hits / misses / stale / evictions) are kept per (shard,
    class) in padded blocks so domains never write the same cache
    line; probes on distinct shards and distinct clients are safe to
    run concurrently. *)

type t

val create :
  ?ways:int -> ?classes:int -> shards:int -> clients:int -> unit -> t
(** [ways] (default 8) slots per client, [classes] (default 2)
    client-class counter groups.  Allocates the [clients * ways] slot
    column up front; call {!set_ranges} before the first {!probe}.
    @raise Invalid_argument on non-positive sizes or [ways > 64]. *)

val ways : t -> int
val clients : t -> int

val max_tick : int
(** Largest [tick] a probe accepts (2^28 - 1); the fleet restarts a
    run rather than let a shard's op counter wrap. *)

val set_ranges : t -> bounds:int array -> owners:int array -> unit
(** Install the cluster's ownership map: [bounds] strictly increasing
    range upper-bound positions (each [< 2^19 - 1]), [owners.(i)] the
    node owning up to [bounds.(i)].  Bumps the arena epoch and diffs
    against the previous map by the (lower bound, upper bound, owner)
    triple: any range not identical under that triple gets the new
    epoch in its [changed] column, invalidating every client slot that
    fetched it earlier.  The diff is pessimistic — a range that merely
    tightened its lower bound still invalidates — which only
    under-reports cache effectiveness, never correctness.
    @raise Invalid_argument on empty, unsorted or oversized input, or
    after 2^16 - 1 reconfigurations (epoch space exhausted). *)

val probe :
  t -> shard:int -> cls:int -> client:int -> pos:int -> tick:int -> cap:int
  -> int
(** One simulated lookup: client [client] (class [cls], stepped by
    shard [shard]) resolves position [pos] at per-shard op counter
    [tick], simulating a cache of [cap <= ways] entries.  Returns
    [(owner lsl 2) lor code] with code 0 = hit, 1 = miss (cold or
    beyond [cap]), 2 = stale miss.  Zero-allocation; this is the fleet
    hot kernel.  Bounds on [shard]/[cls]/[client] are the caller's
    contract; [tick] must fit 28 bits. *)

val stats : t -> cls:int -> int * int * int * int
(** [(hits, misses, stale, evictions)] for a class, summed over
    shards.  [stale] counts a subset of [misses]; [evictions] counts
    cold installs that displaced a live slot. *)

val hist : t -> int array
(** Fresh [ways + 2] array, summed over shards: indices [0 .. ways-1]
    are LRU stack-distance counts, index [ways] cold misses, index
    [ways + 1] stale misses.  Hit rate at cache size [C] is
    [sum_{d<C} hist.(d) / total probes]. *)

val stats_reset : t -> unit
(** Zero all counters and the histogram; client slots and the range
    map are untouched (used between a warm-up and a measured phase). *)
