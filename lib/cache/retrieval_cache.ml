module Key = D2_keyspace.Key
module KTbl = Key.Table

type entry = { size : int; mutable stamp : int }

type t = {
  capacity : int;
  entries : entry KTbl.t;
  mutable used : int;
  mutable clock : int;  (** recency stamp source *)
  mutable evicted : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Retrieval_cache.create: capacity must be positive";
  { capacity; entries = KTbl.create 64; used = 0; clock = 0; evicted = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Evict the least recently used entry.  A linear scan keeps the
   structure trivial; caches in the experiments hold a few hundred
   blocks, far below where an intrusive LRU list would matter. *)
let evict_one t =
  let victim = ref None in
  KTbl.iter
    (fun k (e : entry) ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.entries;
  match !victim with
  | None -> ()
  | Some (k, _) ->
      (match KTbl.find_opt t.entries k with
      | Some e -> t.used <- t.used - e.size
      | None -> ());
      KTbl.remove t.entries k;
      t.evicted <- t.evicted + 1

let insert t key ~size =
  if size < 0 then invalid_arg "Retrieval_cache.insert: negative size";
  if size <= t.capacity then begin
    (match KTbl.find_opt t.entries key with
    | Some e ->
        t.used <- t.used - e.size;
        KTbl.remove t.entries key
    | None -> ());
    while t.used + size > t.capacity do
      evict_one t
    done;
    KTbl.replace t.entries key { size; stamp = tick t };
    t.used <- t.used + size
  end

let mem t key =
  match KTbl.find_opt t.entries key with
  | Some e ->
      e.stamp <- tick t;
      true
  | None -> false

let bytes_used t = t.used
let entry_count t = KTbl.length t.entries
let evictions t = t.evicted
