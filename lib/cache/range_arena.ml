(* Slot packing: [rid+1 | epoch | tick].  19 bits of range id keep the
   whole word in OCaml's 63-bit immediate range; 0 marks an empty slot
   (rid + 1 >= 1 in the high bits makes every live slot non-zero). *)
let tick_bits = 28
let epoch_bits = 16
let tick_limit = 1 lsl tick_bits
let epoch_limit = 1 lsl epoch_bits
let epoch_mask = epoch_limit - 1
let tick_mask = tick_limit - 1
let rid_shift = tick_bits + epoch_bits
let rid_limit = (1 lsl (62 - rid_shift + 1)) - 1

(* Counter fields within a (shard, class) block. *)
let f_hits = 0
let f_misses = 1
let f_stale = 2
let f_evict = 3
let cls_stride = 8 (* one cache line per (shard, class) block *)
let shard_pad = 8 (* keep adjacent shards off a shared boundary line *)

type t = {
  ways : int;
  clients : int;
  shards : int;
  classes : int;
  slots : int array; (* clients * ways packed slots *)
  mutable n : int; (* live range count *)
  mutable his : int array; (* sorted range upper bounds = range ids *)
  mutable owners : int array;
  mutable changed : int array; (* epoch of last shape/owner change *)
  mutable epoch : int;
  counters : int array; (* shards * (classes * cls_stride + shard_pad) *)
  hist : int array; (* shards * hist_stride *)
  hist_stride : int;
  shard_stride : int;
}

let create ?(ways = 8) ?(classes = 2) ~shards ~clients () =
  if ways <= 0 || ways > 64 then
    invalid_arg "Range_arena.create: ways must be in 1..64";
  if classes <= 0 then invalid_arg "Range_arena.create: classes";
  if shards <= 0 then invalid_arg "Range_arena.create: shards";
  if clients <= 0 then invalid_arg "Range_arena.create: clients";
  let hist_stride = ways + 2 + shard_pad in
  let shard_stride = (classes * cls_stride) + shard_pad in
  {
    ways;
    clients;
    shards;
    classes;
    slots = Array.make (clients * ways) 0;
    n = 0;
    his = [||];
    owners = [||];
    changed = [||];
    epoch = 0;
    counters = Array.make (shards * shard_stride) 0;
    hist = Array.make (shards * hist_stride) 0;
    hist_stride;
    shard_stride;
  }

let ways t = t.ways
let clients t = t.clients
let max_tick = tick_limit - 1

(* Lower bound of range [i] under the wrap rule: the previous upper
   bound, or the last one for the wrapping range at index 0. *)
let lo_of his n i = if i = 0 then his.(n - 1) else his.(i - 1)

let set_ranges t ~bounds ~owners =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Range_arena.set_ranges: empty";
  if Array.length owners <> n then
    invalid_arg "Range_arena.set_ranges: length mismatch";
  for i = 0 to n - 1 do
    if bounds.(i) < 0 || bounds.(i) >= rid_limit - 1 then
      invalid_arg "Range_arena.set_ranges: bound out of id range";
    if i > 0 && bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Range_arena.set_ranges: bounds must be strictly increasing"
  done;
  if t.epoch >= epoch_limit - 1 then
    invalid_arg "Range_arena.set_ranges: epoch space exhausted";
  t.epoch <- t.epoch + 1;
  let changed = Array.make n t.epoch in
  (* Carry the change epoch forward for every range identical to an old
     one under (lo, hi, owner); everything else keeps the new epoch. *)
  if t.n > 0 then
    for i = 0 to n - 1 do
      let hi = bounds.(i) in
      (* Binary search the old bounds for hi. *)
      let lo = ref 0 and up = ref t.n in
      while !lo < !up do
        let mid = (!lo + !up) lsr 1 in
        if t.his.(mid) < hi then lo := mid + 1 else up := mid
      done;
      let j = !lo in
      if
        j < t.n
        && t.his.(j) = hi
        && t.owners.(j) = owners.(i)
        && lo_of t.his t.n j = lo_of bounds n i
      then changed.(i) <- t.changed.(j)
    done;
  t.n <- n;
  t.his <- Array.copy bounds;
  t.owners <- Array.copy owners;
  t.changed <- changed

let probe t ~shard ~cls ~client ~pos ~tick ~cap =
  (* Resolve pos -> range: smallest i with his.(i) >= pos, wrapping. *)
  let n = t.n in
  let lo = ref 0 and up = ref n in
  let his = t.his in
  while !lo < !up do
    let mid = (!lo + !up) lsr 1 in
    if Array.unsafe_get his mid < pos then lo := mid + 1 else up := mid
  done;
  let i = if !lo = n then 0 else !lo in
  let rid = Array.unsafe_get his i in
  let owner = Array.unsafe_get t.owners i in
  let fresh_after = Array.unsafe_get t.changed i in
  let key = (rid + 1) lsl rid_shift in
  let ways = t.ways in
  let base = client * ways in
  let slots = t.slots in
  (* One pass over the set: find the matching slot, a free slot, and
     the LRU victim, all without allocating. *)
  let found = ref (-1) in
  let free = ref (-1) in
  let victim = ref 0 in
  let victim_tick = ref max_int in
  for w = 0 to ways - 1 do
    let s = Array.unsafe_get slots (base + w) in
    if s lsr rid_shift = rid + 1 then found := w
    else if s = 0 then free := w
    else begin
      let st = s land tick_mask in
      if st < !victim_tick then begin
        victim_tick := st;
        victim := w
      end
    end
  done;
  let cbase = (shard * t.shard_stride) + (cls * cls_stride) in
  let counters = t.counters in
  let hbase = shard * t.hist_stride in
  let hist = t.hist in
  let bump arr k = Array.unsafe_set arr k (Array.unsafe_get arr k + 1) in
  let code =
    if !found >= 0 then begin
      let w = base + !found in
      let s = Array.unsafe_get slots w in
      let s_epoch = (s lsr tick_bits) land epoch_mask in
      if s_epoch >= fresh_after then begin
        (* Fresh: exact LRU stack distance = slots touched since. *)
        let s_tick = s land tick_mask in
        let d = ref 0 in
        for v = 0 to ways - 1 do
          let sv = Array.unsafe_get slots (base + v) in
          if sv <> 0 && sv land tick_mask > s_tick then incr d
        done;
        bump hist (hbase + !d);
        Array.unsafe_set slots w
          (key lor (s_epoch lsl tick_bits) lor (tick land tick_mask));
        if !d < cap then begin
          bump counters (cbase + f_hits);
          0
        end
        else begin
          bump counters (cbase + f_misses);
          1
        end
      end
      else begin
        (* Stale: the range changed since this client fetched it. *)
        bump hist (hbase + ways + 1);
        bump counters (cbase + f_misses);
        bump counters (cbase + f_stale);
        Array.unsafe_set slots w
          (key lor (t.epoch lsl tick_bits) lor (tick land tick_mask));
        2
      end
    end
    else begin
      (* Cold: install into a free slot, else evict the LRU victim. *)
      bump hist (hbase + ways);
      bump counters (cbase + f_misses);
      let w =
        if !free >= 0 then !free
        else begin
          bump counters (cbase + f_evict);
          !victim
        end
      in
      Array.unsafe_set slots (base + w)
        (key lor (t.epoch lsl tick_bits) lor (tick land tick_mask));
      1
    end
  in
  (owner lsl 2) lor code

let stats t ~cls =
  let h = ref 0 and m = ref 0 and s = ref 0 and e = ref 0 in
  for shard = 0 to t.shards - 1 do
    let b = (shard * t.shard_stride) + (cls * cls_stride) in
    h := !h + t.counters.(b + f_hits);
    m := !m + t.counters.(b + f_misses);
    s := !s + t.counters.(b + f_stale);
    e := !e + t.counters.(b + f_evict)
  done;
  (!h, !m, !s, !e)

let hist t =
  let out = Array.make (t.ways + 2) 0 in
  for shard = 0 to t.shards - 1 do
    let b = shard * t.hist_stride in
    for k = 0 to t.ways + 1 do
      out.(k) <- out.(k) + t.hist.(b + k)
    done
  done;
  out

let stats_reset t =
  Array.fill t.counters 0 (Array.length t.counters) 0;
  Array.fill t.hist 0 (Array.length t.hist) 0
