module Key = D2_keyspace.Key
module KTbl = Key.Table
module KeyMap = Map.Make (Key)

type dirty = { size : int; due : float }

type t = {
  win : float;
  warm : float KTbl.t;  (** key -> last access time *)
  mutable dirty : dirty KeyMap.t;
  mutable accesses_since_purge : int;
}

let create ?(window = 30.0) () =
  if window <= 0.0 then invalid_arg "Block_cache.create: window must be positive";
  { win = window; warm = KTbl.create 256; dirty = KeyMap.empty; accesses_since_purge = 0 }

let purge_warm t ~now =
  let stale =
    KTbl.fold
      (fun k last acc -> if now -. last >= t.win then k :: acc else acc)
      t.warm []
  in
  List.iter (KTbl.remove t.warm) stale

let maybe_purge t ~now =
  t.accesses_since_purge <- t.accesses_since_purge + 1;
  if t.accesses_since_purge > 4096 then begin
    t.accesses_since_purge <- 0;
    purge_warm t ~now
  end

let is_warm t ~now key =
  match KTbl.find_opt t.warm key with
  | Some last -> now -. last < t.win
  | None -> false

let touch t ~now key =
  maybe_purge t ~now;
  let hit = is_warm t ~now key in
  KTbl.replace t.warm key now;
  hit

let write t ~now key ~size =
  KTbl.replace t.warm key now;
  t.dirty <- KeyMap.add key { size; due = now +. t.win } t.dirty

let cancel t key = t.dirty <- KeyMap.remove key t.dirty

let flush_due t ~now =
  let due, keep = KeyMap.partition (fun _ d -> d.due <= now) t.dirty in
  t.dirty <- keep;
  KeyMap.fold (fun k d acc -> (k, d.size) :: acc) due []

let dirty_count t = KeyMap.cardinal t.dirty
let window t = t.win
