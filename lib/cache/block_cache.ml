module Key = D2_keyspace.Key
module KTbl = Key.Table
module KeyMap = Map.Make (Key)

type dirty = { size : int; due : float }

type t = {
  win : float;
  warm : float KTbl.t;  (** key -> last access time *)
  mutable dirty : dirty KeyMap.t;
  mutable accesses_since_purge : int;
}

let create ?(window = 30.0) () =
  if window <= 0.0 then invalid_arg "Block_cache.create: window must be positive";
  { win = window; warm = KTbl.create 256; dirty = KeyMap.empty; accesses_since_purge = 0 }

let purge_warm t ~now =
  let stale =
    KTbl.fold
      (fun k last acc -> if now -. last >= t.win then k :: acc else acc)
      t.warm []
  in
  List.iter (KTbl.remove t.warm) stale

let maybe_purge t ~now =
  t.accesses_since_purge <- t.accesses_since_purge + 1;
  if t.accesses_since_purge > 4096 then begin
    t.accesses_since_purge <- 0;
    purge_warm t ~now
  end

let is_warm t ~now key =
  match KTbl.find_opt t.warm key with
  | Some last -> now -. last < t.win
  | None -> false

let touch t ~now key =
  maybe_purge t ~now;
  let hit = is_warm t ~now key in
  KTbl.replace t.warm key now;
  hit

let write t ~now key ~size =
  KTbl.replace t.warm key now;
  t.dirty <- KeyMap.add key { size; due = now +. t.win } t.dirty

let cancel t key = t.dirty <- KeyMap.remove key t.dirty

let flush_due t ~now =
  let due, keep = KeyMap.partition (fun _ d -> d.due <= now) t.dirty in
  t.dirty <- keep;
  KeyMap.fold (fun k d acc -> (k, d.size) :: acc) due []

let dirty_count t = KeyMap.cardinal t.dirty
let window t = t.win

(* {1 Hot-block byte cache}

   The disk store's front: retains whole block payloads up to a byte
   capacity, evicting least-recently-used.  An intrusive doubly-linked
   list over interned entry records keeps store/find/evict O(1) with
   no per-access allocation beyond the table probe. *)

type entry = {
  ekey : Key.t;
  mutable data : string;
  mutable prev : entry;  (** toward MRU *)
  mutable next : entry;  (** toward LRU *)
}

type bytes_cache = {
  capacity : int;
  (* The cache carries its own lock so a hit never has to take the
     owning store's big mutex: domain-sharded readers contend only on
     this sub-microsecond critical section. *)
  mu : Mutex.t;
  tbl : entry KTbl.t;
  mutable head : entry option;  (** MRU; [None] iff empty *)
  mutable used : int;
  mutable bhits : int;
  mutable bmisses : int;
  mutable evictions : int;
}

let bytes_cache ~capacity =
  { capacity; mu = Mutex.create (); tbl = KTbl.create 256; head = None;
    used = 0; bhits = 0; bmisses = 0; evictions = 0 }

let with_mu c f =
  Mutex.lock c.mu;
  match f () with
  | v ->
      Mutex.unlock c.mu;
      v
  | exception e ->
      Mutex.unlock c.mu;
      raise e

let cache_used c = c.used
let cache_count c = KTbl.length c.tbl
let cache_hits c = c.bhits
let cache_misses c = c.bmisses
let cache_evictions c = c.evictions

(* Detach [e] from the ring; caller fixes [head]. *)
let unlink_entry e =
  e.prev.next <- e.next;
  e.next.prev <- e.prev

let push_front c e =
  match c.head with
  | None ->
      e.prev <- e;
      e.next <- e;
      c.head <- Some e
  | Some h ->
      e.next <- h;
      e.prev <- h.prev;
      h.prev.next <- e;
      h.prev <- e;
      c.head <- Some e

let drop_entry c e =
  KTbl.remove c.tbl e.ekey;
  c.used <- c.used - String.length e.data;
  (match c.head with
  | Some h when h == e ->
      if e.next == e then c.head <- None else c.head <- Some e.next
  | _ -> ());
  unlink_entry e

let evict_to_fit c =
  while c.used > c.capacity do
    match c.head with
    | None -> c.used <- 0 (* unreachable: used > 0 implies entries *)
    | Some h ->
        drop_entry c h.prev;  (* LRU = MRU's prev in the ring *)
        c.evictions <- c.evictions + 1
  done

let cache_store c key data =
  if c.capacity > 0 && String.length data <= c.capacity then
    with_mu c (fun () ->
        (match KTbl.find_opt c.tbl key with
        | Some e ->
            c.used <- c.used - String.length e.data + String.length data;
            e.data <- data;
            (match c.head with
            | Some h when h == e -> ()
            | _ ->
                unlink_entry e;
                push_front c e)
        | None ->
            let rec e = { ekey = key; data; prev = e; next = e } in
            KTbl.replace c.tbl key e;
            c.used <- c.used + String.length data;
            push_front c e);
        evict_to_fit c)

let cache_find c key =
  with_mu c (fun () ->
      match KTbl.find_opt c.tbl key with
      | None ->
          if c.capacity > 0 then c.bmisses <- c.bmisses + 1;
          None
      | Some e ->
          c.bhits <- c.bhits + 1;
          (match c.head with
          | Some h when h == e -> ()
          | _ ->
              unlink_entry e;
              push_front c e);
          Some e.data)

let cache_remove c key =
  with_mu c (fun () ->
      match KTbl.find_opt c.tbl key with
      | None -> ()
      | Some e -> drop_entry c e)
