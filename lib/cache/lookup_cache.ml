module Key = D2_keyspace.Key

(* {1 Reference implementation}

   The original [Map]-of-boxed-entries cache, kept verbatim as the
   oracle for the randomized equivalence test: the flat arena below
   must reproduce its answers — nodes, hit/miss counts, entry counts,
   eviction timing — bit for bit. *)

module Reference = struct
  (* The range map is keyed by [(prefix, hi)] where [prefix] is the
     62-bit head of [hi]: the pair order equals the plain key order, but
     most comparisons on a search path resolve with one unboxed int
     comparison instead of a byte-wise [String.compare]. *)
  module HiKey = struct
    type t = int * Key.t

    let compare (p1, k1) (p2, k2) =
      if p1 < p2 then -1 else if p1 > p2 then 1 else Key.compare k1 k2
  end

  module KeyMap = Map.Make (HiKey)

  type entry = { lo : Key.t; node : int; expires : float }

  type t = {
    ttl : float;
    mutable entries : entry KeyMap.t;  (** keyed by range upper bound [hi] *)
    mutable mru : (HiKey.t * entry) option;
        (** last entry that answered a hit: with locality-preserving keys
            the next key usually lands in the same range, so this skips
            the map search entirely.  Cleared on any mutation. *)
    mutable hits : int;
    mutable misses : int;
    mutable last_purge : float;
  }

  let create ?(ttl = 4500.0) () =
    if ttl <= 0.0 then invalid_arg "Lookup_cache.create: ttl must be positive";
    { ttl; entries = KeyMap.empty; mru = None; hits = 0; misses = 0; last_purge = 0.0 }

  let purge t ~now =
    t.entries <- KeyMap.filter (fun _ e -> e.expires > now) t.entries;
    t.mru <- None;
    t.last_purge <- now

  let lookup t ~now key =
    if now -. t.last_purge > 4.0 *. t.ttl then purge t ~now;
    match t.mru with
    | Some ((_, hi), e) when e.expires > now && Key.in_interval key ~lo:e.lo ~hi ->
        t.hits <- t.hits + 1;
        Some e.node
    | _ -> (
        (* The candidate entry is the one with the smallest hi >= key. *)
        let target = (Key.prefix_at key 0, key) in
        let candidate =
          KeyMap.find_first_opt (fun hk -> HiKey.compare hk target >= 0) t.entries
        in
        match candidate with
        | Some (((_, hi) as hk), e) when Key.in_interval key ~lo:e.lo ~hi ->
            if e.expires > now then begin
              t.hits <- t.hits + 1;
              t.mru <- Some (hk, e);
              Some e.node
            end
            else begin
              t.entries <- KeyMap.remove hk t.entries;
              t.mru <- None;
              t.misses <- t.misses + 1;
              None
            end
        | Some _ | None ->
            t.misses <- t.misses + 1;
            None)

  let insert_piece t ~lo ~hi ~node ~expires =
    t.entries <- KeyMap.add (Key.prefix_at hi 0, hi) { lo; node; expires } t.entries;
    t.mru <- None

  let insert t ~now ~lo ~hi ~node =
    let expires = now +. t.ttl in
    let c = Key.compare lo hi in
    if c = 0 then
      (* Single node owns the whole ring. *)
      insert_piece t ~lo:Key.max_key ~hi:Key.max_key ~node ~expires
    else if c < 0 then insert_piece t ~lo ~hi ~node ~expires
    else begin
      (* Wrapping range (lo, max] ∪ [zero, hi]: two pieces.  The second
         piece uses lo = max_key, for which [in_interval] accepts every
         key ≤ hi. *)
      insert_piece t ~lo ~hi:Key.max_key ~node ~expires;
      insert_piece t ~lo:Key.max_key ~hi ~node ~expires
    end

  let invalidate t key =
    let target = (Key.prefix_at key 0, key) in
    match
      KeyMap.find_first_opt (fun hk -> HiKey.compare hk target >= 0) t.entries
    with
    | Some (((_, hi) as hk), e) when Key.in_interval key ~lo:e.lo ~hi ->
        t.entries <- KeyMap.remove hk t.entries;
        t.mru <- None;
        true
    | Some _ | None -> false

  let hits t = t.hits
  let misses t = t.misses

  let miss_rate t =
    let total = t.hits + t.misses in
    if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

  let entry_count t = KeyMap.cardinal t.entries

  let reset_stats t =
    t.hits <- 0;
    t.misses <- 0

  let clear t =
    t.entries <- KeyMap.empty;
    t.mru <- None;
    reset_stats t
end

(* {1 Flat range arena}

   Entries live in parallel columns sorted by range upper bound [hi]:
   a 62-bit prefix int column searched with the same dynamic
   common-prefix-offset binary search as {!D2_dht.Ring.lower_bound}
   (locality-preserving keys of one volume share a long head, so a
   fixed offset-0 prefix would not discriminate), plus [lo], [node]
   and [expires] columns read only at the final index.  Inserts append
   to a small unsorted tail that is merged into the sorted region once
   full, so the per-insert cost is amortized O(len/TAIL).  Removals
   (duplicate-hi replacement and probe-time eviction of an expired
   candidate) tombstone the slot ([node = -1]); tombstones are swept
   lazily at the next merge once they exceed a configurable fraction
   of the arena, which also replaces the old O(n log n) full-map
   [purge] with one left-compaction pass.  A generation-stamped MRU
   index answers the common same-range-again probe with two byte
   compares and no search. *)

let tail_max = 32

(* Tombstone fraction that triggers a sweep at the next insert; the
   sweep itself rides the tail merge, so lowering this only adds merge
   passes, never extra search cost. *)
let compact_frac =
  match Sys.getenv_opt "D2_CACHE_COMPACT" with
  | None -> 0.25
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 && f <= 1.0 -> f
      | _ -> invalid_arg "D2_CACHE_COMPACT: expected a fraction in (0, 1]")

type t = {
  ttl : float;
  mutable pre : int array;  (** [Key.prefix_at his.(i) off], sorted region *)
  mutable his : Key.t array;  (** range upper bounds; [0, n) sorted, [n, n+tn) tail *)
  mutable los : Key.t array;
  mutable nodes : int array;  (** -1 marks a tombstone *)
  mutable expires : float array;
  mutable n : int;  (** sorted count, tombstones included *)
  mutable tn : int;  (** unsorted tail count *)
  mutable off : int;  (** common-prefix offset of the sorted region *)
  mutable dead : int;  (** tombstones across both regions *)
  mutable live : int;  (** entries with [node >= 0] *)
  mutable gen : int;  (** bumped whenever indices move or entries change *)
  mutable mru : int;  (** index of the last search hit, or -1 *)
  mutable mru_gen : int;  (** [mru] is only trusted when this equals [gen] *)
  mutable hits : int;
  mutable misses : int;
  mutable last_purge : float;
}

let create ?(ttl = 4500.0) () =
  if ttl <= 0.0 then invalid_arg "Lookup_cache.create: ttl must be positive";
  {
    ttl;
    pre = [||];
    his = [||];
    los = [||];
    nodes = [||];
    expires = [||];
    n = 0;
    tn = 0;
    off = Key.max_prefix_offset;
    dead = 0;
    live = 0;
    gen = 0;
    mru = -1;
    mru_gen = 0;
    hits = 0;
    misses = 0;
    last_purge = 0.0;
  }

let invalidate_mru t =
  t.gen <- t.gen + 1;
  t.mru <- -1

(* Index of the first sorted entry with hi >= key, or [t.n]; the
   Ring.lower_bound idiom (head compare, prefix ints, byte tie-break). *)
let lower_bound t key =
  if t.n = 0 then 0
  else begin
    let c = if t.off = 0 then 0 else Key.compare_head key t.his.(0) t.off in
    if c < 0 then 0
    else if c > 0 then t.n
    else begin
      let kp = Key.prefix_at key t.off in
      let lo = ref 0 and hi = ref t.n in
      while !lo < !hi do
        let mid = (!lo + !hi) lsr 1 in
        let mp = Array.unsafe_get t.pre mid in
        let below =
          if mp < kp then true
          else if mp > kp then false
          else Key.compare_from t.off (Array.unsafe_get t.his mid) key < 0
        in
        if below then lo := mid + 1 else hi := mid
      done;
      !lo
    end
  end

(* The live entry with the smallest hi >= key across both regions, or
   -1.  The sorted side is the first live slot at or after the lower
   bound; the tail (at most [tail_max] entries) is scanned outright. *)
let candidate_index t key =
  let best = ref (-1) in
  let i = ref (lower_bound t key) in
  while !i < t.n && Array.unsafe_get t.nodes !i < 0 do
    incr i
  done;
  if !i < t.n then best := !i;
  for j = t.n to t.n + t.tn - 1 do
    if
      Array.unsafe_get t.nodes j >= 0
      && Key.compare (Array.unsafe_get t.his j) key >= 0
      && (!best < 0 || Key.compare (Array.unsafe_get t.his j) t.his.(!best) < 0)
    then best := j
  done;
  !best

let tombstone t i =
  t.nodes.(i) <- -1;
  t.dead <- t.dead + 1;
  t.live <- t.live - 1

(* Rebuild the sorted region from both regions' surviving entries:
   insertion-sort the (short) tail by hi, merge it with the sorted
   run, drop tombstones, and refresh the prefix column at the merged
   common-prefix offset.  [drop_expired] additionally sheds entries
   with [expires <= now] — the purge path. *)
let rebuild t ?(drop_expired = false) ~now () =
  let total = t.n + t.tn in
  (* Sort the tail slots in place (ascending hi); tiny, so insertion
     sort beats a comparator closure. *)
  let hb = t.his and lb = t.los and nb = t.nodes and eb = t.expires in
  for i = t.n + 1 to total - 1 do
    let h = hb.(i) and l = lb.(i) and nd = nb.(i) and ex = eb.(i) in
    let j = ref i in
    while !j > t.n && Key.compare hb.(!j - 1) h > 0 do
      hb.(!j) <- hb.(!j - 1);
      lb.(!j) <- lb.(!j - 1);
      nb.(!j) <- nb.(!j - 1);
      eb.(!j) <- eb.(!j - 1);
      decr j
    done;
    hb.(!j) <- h;
    lb.(!j) <- l;
    nb.(!j) <- nd;
    eb.(!j) <- ex
  done;
  let his = Array.make (max 1 total) Key.zero in
  let los = Array.make (max 1 total) Key.zero in
  let nodes = Array.make (max 1 total) (-1) in
  let expires = Array.make (max 1 total) 0.0 in
  let keep i = nb.(i) >= 0 && ((not drop_expired) || eb.(i) > now) in
  let w = ref 0 in
  let emit i =
    his.(!w) <- hb.(i);
    los.(!w) <- lb.(i);
    nodes.(!w) <- nb.(i);
    expires.(!w) <- eb.(i);
    incr w
  in
  let a = ref 0 and b = ref t.n in
  while !a < t.n || !b < total do
    if !a < t.n && not (keep !a) then incr a
    else if !b < total && not (keep !b) then incr b
    else if !a >= t.n then begin emit !b; incr b end
    else if !b >= total then begin emit !a; incr a end
    else if Key.compare hb.(!a) hb.(!b) <= 0 then begin emit !a; incr a end
    else begin emit !b; incr b end
  done;
  t.his <- his;
  t.los <- los;
  t.nodes <- nodes;
  t.expires <- expires;
  t.n <- !w;
  t.tn <- 0;
  t.dead <- 0;
  t.live <- !w;
  t.off <-
    (if t.n <= 1 then Key.max_prefix_offset
     else min Key.max_prefix_offset (Key.common_prefix_len his.(0) his.(t.n - 1)));
  t.pre <- Array.init (max 1 t.n) (fun i -> if i < t.n then Key.prefix_at his.(i) t.off else 0);
  invalidate_mru t

let purge t ~now =
  rebuild t ~drop_expired:true ~now ();
  t.last_purge <- now

(* [lookup] as an int-returning kernel: the cached owner or -1.  No
   allocation on any path, so the simulators' per-op probe costs only
   the MRU compares (locality hit) or one binary search. *)
let find t ~now key =
  if now -. t.last_purge > 4.0 *. t.ttl then purge t ~now;
  let m = t.mru in
  if
    m >= 0 && t.mru_gen = t.gen
    && t.expires.(m) > now
    && Key.in_interval key ~lo:t.los.(m) ~hi:t.his.(m)
  then begin
    t.hits <- t.hits + 1;
    t.nodes.(m)
  end
  else begin
    let i = candidate_index t key in
    if i >= 0 && Key.in_interval key ~lo:t.los.(i) ~hi:t.his.(i) then
      if t.expires.(i) > now then begin
        t.hits <- t.hits + 1;
        t.mru <- i;
        t.mru_gen <- t.gen;
        t.nodes.(i)
      end
      else begin
        tombstone t i;
        invalidate_mru t;
        t.misses <- t.misses + 1;
        -1
      end
    else begin
      t.misses <- t.misses + 1;
      -1
    end
  end

let lookup t ~now key =
  match find t ~now key with -1 -> None | node -> Some node

let resolve_into t ~now keys out =
  let len = Array.length keys in
  if Array.length out < len then
    invalid_arg "Lookup_cache.resolve_into: output shorter than input";
  for i = 0 to len - 1 do
    out.(i) <- find t ~now (Array.unsafe_get keys i)
  done

let grow t =
  let cap = Array.length t.his in
  if t.n + t.tn = cap then begin
    let ncap = max 16 (2 * cap) in
    let ext a zero = Array.init ncap (fun i -> if i < cap then a.(i) else zero) in
    t.his <- ext t.his Key.zero;
    t.los <- ext t.los Key.zero;
    t.nodes <- ext t.nodes (-1);
    t.expires <- ext t.expires 0.0
  end

let insert_piece t ~lo ~hi ~node ~expires =
  (* Map semantics: adding an existing hi replaces, so the shadowed
     copy — wherever it lives — becomes a tombstone. *)
  (let i = ref (lower_bound t hi) in
   let found = ref false in
   while (not !found) && !i < t.n && Key.equal t.his.(!i) hi do
     if t.nodes.(!i) >= 0 then begin
       tombstone t !i;
       found := true
     end
     else incr i
   done;
   if not !found then begin
     i := t.n;
     while (not !found) && !i < t.n + t.tn do
       if t.nodes.(!i) >= 0 && Key.equal t.his.(!i) hi then begin
         tombstone t !i;
         found := true
       end
       else incr i
     done
   end);
  grow t;
  let j = t.n + t.tn in
  t.his.(j) <- hi;
  t.los.(j) <- lo;
  t.nodes.(j) <- node;
  t.expires.(j) <- expires;
  t.tn <- t.tn + 1;
  t.live <- t.live + 1;
  invalidate_mru t;
  if
    t.tn >= tail_max
    || t.dead > 16
       && float_of_int t.dead
          > compact_frac *. float_of_int (t.n + t.tn)
  then rebuild t ~now:0.0 ()

let insert t ~now ~lo ~hi ~node =
  let expires = now +. t.ttl in
  let c = Key.compare lo hi in
  if c = 0 then
    (* Single node owns the whole ring. *)
    insert_piece t ~lo:Key.max_key ~hi:Key.max_key ~node ~expires
  else if c < 0 then insert_piece t ~lo ~hi ~node ~expires
  else begin
    (* Wrapping range (lo, max] ∪ [zero, hi]: two pieces.  The second
       piece uses lo = max_key, for which [in_interval] accepts every
       key <= hi. *)
    insert_piece t ~lo ~hi:Key.max_key ~node ~expires;
    insert_piece t ~lo:Key.max_key ~hi ~node ~expires
  end

(* Drop the entry whose range covers [key] (expired or not) without
   touching the hit/miss counters — the client failure path: a lookup
   result led to a dead or wrong owner, so the cached range must go
   before the retry re-resolves. *)
let invalidate t key =
  let i = candidate_index t key in
  if i >= 0 && Key.in_interval key ~lo:t.los.(i) ~hi:t.his.(i) then begin
    tombstone t i;
    invalidate_mru t;
    true
  end
  else false

let hits t = t.hits
let misses t = t.misses

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let entry_count t = t.live

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let clear t =
  t.n <- 0;
  t.tn <- 0;
  t.dead <- 0;
  t.live <- 0;
  t.off <- Key.max_prefix_offset;
  invalidate_mru t;
  reset_stats t
