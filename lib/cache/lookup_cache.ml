module Key = D2_keyspace.Key

(* The range map is keyed by [(prefix, hi)] where [prefix] is the
   62-bit head of [hi]: the pair order equals the plain key order, but
   most comparisons on a search path resolve with one unboxed int
   comparison instead of a byte-wise [String.compare]. *)
module HiKey = struct
  type t = int * Key.t

  let compare (p1, k1) (p2, k2) =
    if p1 < p2 then -1 else if p1 > p2 then 1 else Key.compare k1 k2
end

module KeyMap = Map.Make (HiKey)

type entry = { lo : Key.t; node : int; expires : float }

type t = {
  ttl : float;
  mutable entries : entry KeyMap.t;  (** keyed by range upper bound [hi] *)
  mutable mru : (HiKey.t * entry) option;
      (** last entry that answered a hit: with locality-preserving keys
          the next key usually lands in the same range, so this skips
          the map search entirely.  Cleared on any mutation. *)
  mutable hits : int;
  mutable misses : int;
  mutable last_purge : float;
}

let create ?(ttl = 4500.0) () =
  if ttl <= 0.0 then invalid_arg "Lookup_cache.create: ttl must be positive";
  { ttl; entries = KeyMap.empty; mru = None; hits = 0; misses = 0; last_purge = 0.0 }

let purge t ~now =
  t.entries <- KeyMap.filter (fun _ e -> e.expires > now) t.entries;
  t.mru <- None;
  t.last_purge <- now

let lookup t ~now key =
  if now -. t.last_purge > 4.0 *. t.ttl then purge t ~now;
  match t.mru with
  | Some ((_, hi), e) when e.expires > now && Key.in_interval key ~lo:e.lo ~hi ->
      t.hits <- t.hits + 1;
      Some e.node
  | _ -> (
      (* The candidate entry is the one with the smallest hi >= key. *)
      let target = (Key.prefix_at key 0, key) in
      let candidate =
        KeyMap.find_first_opt (fun hk -> HiKey.compare hk target >= 0) t.entries
      in
      match candidate with
      | Some (((_, hi) as hk), e) when Key.in_interval key ~lo:e.lo ~hi ->
          if e.expires > now then begin
            t.hits <- t.hits + 1;
            t.mru <- Some (hk, e);
            Some e.node
          end
          else begin
            t.entries <- KeyMap.remove hk t.entries;
            t.mru <- None;
            t.misses <- t.misses + 1;
            None
          end
      | Some _ | None ->
          t.misses <- t.misses + 1;
          None)

let insert_piece t ~lo ~hi ~node ~expires =
  t.entries <- KeyMap.add (Key.prefix_at hi 0, hi) { lo; node; expires } t.entries;
  t.mru <- None

let insert t ~now ~lo ~hi ~node =
  let expires = now +. t.ttl in
  let c = Key.compare lo hi in
  if c = 0 then
    (* Single node owns the whole ring. *)
    insert_piece t ~lo:Key.max_key ~hi:Key.max_key ~node ~expires
  else if c < 0 then insert_piece t ~lo ~hi ~node ~expires
  else begin
    (* Wrapping range (lo, max] ∪ [zero, hi]: two pieces.  The second
       piece uses lo = max_key, for which [in_interval] accepts every
       key ≤ hi. *)
    insert_piece t ~lo ~hi:Key.max_key ~node ~expires;
    insert_piece t ~lo:Key.max_key ~hi ~node ~expires
  end

let hits t = t.hits
let misses t = t.misses

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let entry_count t = KeyMap.cardinal t.entries

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

let clear t =
  t.entries <- KeyMap.empty;
  t.mru <- None;
  reset_stats t
