(** Range-based DHT lookup cache (paper §5).

    A lookup result tells the client which node owns the key {e and}
    the key range that node is responsible for; the client caches
    [(range → node)] and skips the DHT lookup for any future key that
    falls into a cached, unexpired range.  With D2's
    locality-preserving keys a task's next key usually lands in the
    range just cached, so the cache eliminates up to 95% of lookups;
    with hashed keys it rarely does (ranges cover 1/n of a uniformly
    hashed key space).

    Entries expire after [ttl] — 1.25 h in the paper, matched to the
    PlanetLab membership churn rate.  Ranges are half-open ring
    intervals [(lo, hi]]; a wrapping range is stored as two
    non-wrapping pieces. *)

module Key = D2_keyspace.Key

type t

val create : ?ttl:float -> unit -> t
(** [ttl] defaults to 4500 s (1.25 h). *)

val lookup : t -> now:float -> Key.t -> int option
(** Cached owner of the key, if any; counts a hit or a miss, and
    lazily evicts expired entries it encounters. *)

val find : t -> now:float -> Key.t -> int
(** [lookup] as an allocation-free kernel: the cached owner or -1.
    Identical accounting and eviction behaviour. *)

val resolve_into : t -> now:float -> Key.t array -> int array -> unit
(** Batched [find] over a key column: [out.(i)] receives the cached
    owner of [keys.(i)] or -1, probing in index order with exactly the
    sequential semantics (hit/miss counts, evictions, purges included).
    @raise Invalid_argument if [out] is shorter than [keys]. *)

val insert : t -> now:float -> lo:Key.t -> hi:Key.t -> node:int -> unit
(** Record a lookup result: [node] owns [(lo, hi]]. [lo = hi] (the
    whole ring, single-node case) and wrapping ranges are accepted. *)

val invalidate : t -> Key.t -> bool
(** Evict the entry whose range covers the key, if any (true when one
    was dropped).  No effect on the hit/miss counters.  The networked
    client calls this when a cached owner turns out dead or wrong
    before re-resolving. *)

val hits : t -> int
val misses : t -> int

val miss_rate : t -> float
(** misses / (hits + misses); 0 when never used. *)

val entry_count : t -> int

val reset_stats : t -> unit

val clear : t -> unit
(** Drop entries and statistics. *)

(** The original [Map]-based implementation, kept as the oracle for
    the randomized equivalence test: same observable behaviour as the
    flat arena, entry for entry and count for count. *)
module Reference : sig
  type t

  val create : ?ttl:float -> unit -> t
  val lookup : t -> now:float -> Key.t -> int option
  val insert : t -> now:float -> lo:Key.t -> hi:Key.t -> node:int -> unit
  val invalidate : t -> Key.t -> bool
  val hits : t -> int
  val misses : t -> int
  val miss_rate : t -> float
  val entry_count : t -> int
  val reset_stats : t -> unit
  val clear : t -> unit
end
