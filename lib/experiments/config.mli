(** Experiment scaling presets.

    [Paper] reproduces every table and figure at a scale whose shape
    matches the paper while completing in minutes on a laptop: the
    full 83 users and 7 trace days, 247 availability nodes, 200–1000
    performance nodes.  [Quick] shrinks everything for CI-speed smoke
    runs.  Selected by the [D2_SCALE] environment variable
    ("quick" | "paper"; default "paper"). *)

type scale = Quick | Paper

val of_env : unit -> scale
val scale_name : scale -> string

val master_seed : int
(** All experiment randomness derives from this (and the trial id). *)

val harvard_params : scale -> D2_trace.Harvard.params
val hp_params : scale -> D2_trace.Hp.params
val web_params : scale -> D2_trace.Web.params

val fig3_nodes : scale -> int
(** Node count for the Fig. 3 locality analysis. *)

val avail_nodes : scale -> int
(** §8: paper uses 247 (PlanetLab). *)

val avail_trials : scale -> int
(** §8: paper runs 5 trials. *)

val avail_inters : float list
(** Task inter-access thresholds: 1 s, 5 s, 15 s, 1 min. *)

val perf_sizes : scale -> int list
(** §9 system sizes; paper: 200, 500, 1000. *)

val perf_base_nodes : scale -> int
(** Size at which the data set is 1x (paper: 200). *)

val perf_bandwidths : scale -> float list
(** Access-link rates; paper: 1500 and 384 kbit/s. *)

val balance_nodes : scale -> int
(** §10 cluster size. *)

val bakeoff_nodes : scale -> int
(** Simulated ring size for the routing bake-off (paper: 10240). *)

val bakeoff_trials : scale -> int
(** Lookups per (policy, distribution) bake-off cell. *)

val repair_nodes : scale -> int
(** Live-cluster size for the anti-entropy availability experiment. *)

val repair_blocks : scale -> int
(** Blocks loaded before the kill schedule in that experiment. *)
