module Pool = D2_util.Pool
module Report = D2_util.Report

type entry = {
  id : string;
  title : string;
  run : Config.scale -> D2_util.Report.t list;
  cells : Config.scale -> Suites.cell list;
}

let entry ?(cells = fun _ -> []) id title run = { id; title; run; cells }

let all =
  [
    entry "table1" "Workloads analyzed" Table1.run ~cells:Table1.cells;
    entry "fig3" "Locality of key orderings" Fig3.run ~cells:Fig3.cells;
    entry "table2" "Objects and nodes per task" Table2.run ~cells:Table2.cells;
    entry "fig7" "Task unavailability vs inter" Fig7.run ~cells:Fig7.cells;
    entry "fig8" "Per-user unavailability" Fig8.run ~cells:Fig8.cells;
    entry "fig9" "Lookup traffic vs system size" Fig9.run ~cells:Fig9.cells;
    entry "fig10" "Speedup over traditional" Fig10.run ~cells:Fig10.cells;
    entry "fig11" "Speedup over traditional-file" Fig11.run ~cells:Fig11.cells;
    entry "fig12" "Per-user speedup" Fig12.run ~cells:Fig12.cells;
    entry "fig13" "Lookup cache miss rate" Fig13.run ~cells:Fig13.cells;
    entry "fig14" "Latency scatter vs traditional" Fig14.run ~cells:Fig14.cells;
    entry "fig15" "Latency scatter vs traditional-file" Fig15.run ~cells:Fig15.cells;
    entry "fig16" "Load imbalance (Harvard)" Fig16.run ~cells:Fig16.cells;
    entry "fig17" "Load imbalance (Webcache)" Fig17.run ~cells:Fig17.cells;
    entry "table3" "Daily churn ratios" Table3.run ~cells:Table3.cells;
    entry "table4" "Write vs migration traffic" Table4.run ~cells:Table4.cells;
    entry "ablation_pointers" "Block pointers on/off" Ablations.pointers;
    entry "ablation_routing" "Routing hop counts" Ablations.routing;
    entry "ablation_cache_ttl" "Cache TTL sweep" Ablations.cache_ttl;
    entry "ablation_replicas" "Replication factor" Ablations.replicas;
    entry "ablation_hybrid" "Hybrid replica placement (§11)" Ablations.hybrid;
    entry "ablation_erasure" "Replication vs erasure coding (§3)" Ablations.erasure;
    entry "ablation_stp" "TCP vs STP-style transport (§9.3)" Ablations.stp;
    entry "ablation_hotspot" "Retrieval caches vs hot spots (§6)" Ablations.hotspot;
    entry "bakeoff_routing" "Routing-policy bake-off (4 policies x 2 ID dists)"
      Bakeoff.run;
    entry "repair_bandwidth"
      "Anti-entropy repair bandwidth vs availability (§12)" Repair_avail.run;
  ]

let find id = List.find_opt (fun e -> e.id = id) all

type outcome = {
  o_entry : entry;
  output : string;
  logs : string;
  wall : float;
  shared_wall : float;
}

(* Worker domains must not write through whatever Logs reporter is
   installed (formatters are not domain-safe, and interleaved lines
   would defeat deterministic output).  While a run is in flight, log
   records are redirected into per-cell / per-render buffers looked up
   by the reporting domain's id; each entry's captured log text is
   emitted with its outcome, in registry order. *)
let buffering_reporter ~find_buf =
  let report src level ~over k msgf =
    match find_buf () with
    | None ->
        over ();
        k ()
    | Some buf ->
        let ppf = Format.formatter_of_buffer buf in
        msgf (fun ?header ?tags:_ fmt ->
            Format.kfprintf
              (fun ppf ->
                Format.pp_print_flush ppf ();
                Buffer.add_char buf '\n';
                over ();
                k ())
              ppf
              ("%s: [%s] %s" ^^ fmt)
              (Logs.Src.name src)
              (Logs.level_to_string (Some level))
              (match header with Some h -> h ^ " " | None -> ""))
  in
  { Logs.report }

(* One datapoint task: a deduplicated cell owned by the first entry
   that listed it.  [c_start] / [c_stop] are its wall-clock span (-1
   until it runs / finishes); its log records accumulate in [c_buf]. *)
type cell_task = {
  c_label : string;
  c_thunk : unit -> unit;
  c_buf : Buffer.t;
  mutable c_start : float;
  mutable c_stop : float;
}

(* Split the entries into (entry, owned cells, shared cells).  Dedup is
   by label across the whole run: a cell shared by several entries is
   computed (and its logs attributed) under the first entry that lists
   it; later entries hit the warm memo inside their render and record
   the same cell_task as {e shared} so its cost still shows up in their
   [shared_wall] attribution. *)
let prepare scale entries =
  let seen : (string, cell_task) Hashtbl.t = Hashtbl.create 64 in
  List.map
    (fun e ->
      let owned = ref [] in
      let shared = ref [] in
      List.iter
        (fun (label, thunk) ->
          match Hashtbl.find_opt seen label with
          | Some c -> shared := c :: !shared
          | None ->
              let c =
                {
                  c_label = label;
                  c_thunk = thunk;
                  c_buf = Buffer.create 64;
                  c_start = -1.0;
                  c_stop = -1.0;
                }
              in
              Hashtbl.add seen label c;
              owned := c :: !owned)
        (e.cells scale);
      (e, List.rev !owned, List.rev !shared))
    entries

let with_buf ~mu ~bufs buf f =
  let did = (Domain.self () :> int) in
  Mutex.lock mu;
  Hashtbl.replace bufs did buf;
  Mutex.unlock mu;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock mu;
      Hashtbl.remove bufs did;
      Mutex.unlock mu)
    f

let run_cell ~mu ~bufs c =
  c.c_start <- Unix.gettimeofday ();
  with_buf ~mu ~bufs c.c_buf c.c_thunk;
  c.c_stop <- Unix.gettimeofday ()

(* Render an entry's tables (its datapoint cells have at least started
   by now — the memos block on in-flight builds).  The reported wall
   is the honest elapsed span of this entry's work: from its earliest
   owned cell's start (or the render's own start when it owns none) to
   render end. *)
let render ~mu ~bufs scale (e, owned, _shared) =
  let rbuf = Buffer.create 256 in
  let t0 = Unix.gettimeofday () in
  let output =
    with_buf ~mu ~bufs rbuf (fun () ->
        String.concat "" (List.map Report.render (e.run scale)))
  in
  let t1 = Unix.gettimeofday () in
  let first_start =
    List.fold_left
      (fun acc c -> if c.c_start >= 0.0 then Float.min acc c.c_start else acc)
      t0 owned
  in
  let logs =
    String.concat "" (List.map (fun c -> Buffer.contents c.c_buf) owned)
    ^ Buffer.contents rbuf
  in
  { o_entry = e; output; logs; wall = t1 -. first_start; shared_wall = 0.0 }

(* Fill in each outcome's [shared_wall]: the summed spans of the cells
   this entry consumed but another entry owned (and whose cost is
   therefore inside that other entry's [wall]).  Must run only after
   every cell has finished — spans of unfinished or failed cells read
   as 0. *)
let attach_shared prepared outcomes =
  let span c =
    if c.c_start >= 0.0 && c.c_stop >= 0.0 then c.c_stop -. c.c_start else 0.0
  in
  List.map2
    (fun (_, _, shared) o ->
      { o with shared_wall = List.fold_left (fun acc c -> acc +. span c) 0.0 shared })
    prepared outcomes

let run_sequential ~mu ~bufs scale prepared =
  List.map
    (fun ((_, owned, _) as eo) ->
      List.iter (run_cell ~mu ~bufs) owned;
      render ~mu ~bufs scale eo)
    prepared

(* Every cell is submitted before any render, so the pool's FIFO queue
   guarantees that when a render task is popped, each cell has at
   least started on some worker — a render never waits on a cell that
   is still queued behind it, and memo waits therefore cannot
   deadlock. *)
let run_parallel ~jobs ~mu ~bufs scale prepared =
  let pool = Pool.create ~jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let cell_promises =
        List.concat_map
          (fun (_, owned, _) ->
            List.map
              (fun c -> Pool.submit pool (fun () -> run_cell ~mu ~bufs c))
              owned)
          prepared
      in
      let render_promises =
        List.map
          (fun eo -> Pool.submit pool (fun () -> render ~mu ~bufs scale eo))
          prepared
      in
      let outcomes = List.map Pool.await render_promises in
      (* Renders retry a failed cell's memo build themselves, so cell
         failures usually surface above; await anyway so none is
         silently dropped. *)
      List.iter Pool.await cell_promises;
      outcomes)

let run_entries ?jobs scale entries =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  match entries with
  | [] -> []
  | _ ->
      let saved_reporter = Logs.reporter () in
      let mu = Mutex.create () in
      let bufs : (int, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
      let find_buf () =
        let did = (Domain.self () :> int) in
        Mutex.lock mu;
        let b = Hashtbl.find_opt bufs did in
        Mutex.unlock mu;
        b
      in
      Logs.set_reporter (buffering_reporter ~find_buf);
      Fun.protect
        ~finally:(fun () -> Logs.set_reporter saved_reporter)
        (fun () ->
          let prepared = prepare scale entries in
          (* One effective worker means no parallelism to win: skip the
             pool entirely rather than pay domain spawn + stop-the-world
             rendezvous for a second live domain. *)
          let outcomes =
            if Pool.effective_jobs jobs <= 1 then
              run_sequential ~mu ~bufs scale prepared
            else run_parallel ~jobs ~mu ~bufs scale prepared
          in
          (* Both paths have awaited every cell by now, so shared
             spans are final. *)
          attach_shared prepared outcomes)

let print_outcome o =
  print_string o.output;
  if o.logs <> "" then print_string o.logs;
  Printf.printf "[%s: %.1fs]\n\n%!" o.o_entry.id o.wall

let run_and_print scale entry =
  let t0 = Unix.gettimeofday () in
  let reports = entry.run scale in
  List.iter D2_util.Report.print reports;
  Printf.printf "[%s: %.1fs]\n\n%!" entry.id (Unix.gettimeofday () -. t0)
