module Pool = D2_util.Pool
module Report = D2_util.Report

type entry = {
  id : string;
  title : string;
  run : Config.scale -> D2_util.Report.t list;
}

let all =
  [
    { id = "table1"; title = "Workloads analyzed"; run = Table1.run };
    { id = "fig3"; title = "Locality of key orderings"; run = Fig3.run };
    { id = "table2"; title = "Objects and nodes per task"; run = Table2.run };
    { id = "fig7"; title = "Task unavailability vs inter"; run = Fig7.run };
    { id = "fig8"; title = "Per-user unavailability"; run = Fig8.run };
    { id = "fig9"; title = "Lookup traffic vs system size"; run = Fig9.run };
    { id = "fig10"; title = "Speedup over traditional"; run = Fig10.run };
    { id = "fig11"; title = "Speedup over traditional-file"; run = Fig11.run };
    { id = "fig12"; title = "Per-user speedup"; run = Fig12.run };
    { id = "fig13"; title = "Lookup cache miss rate"; run = Fig13.run };
    { id = "fig14"; title = "Latency scatter vs traditional"; run = Fig14.run };
    { id = "fig15"; title = "Latency scatter vs traditional-file"; run = Fig15.run };
    { id = "fig16"; title = "Load imbalance (Harvard)"; run = Fig16.run };
    { id = "fig17"; title = "Load imbalance (Webcache)"; run = Fig17.run };
    { id = "table3"; title = "Daily churn ratios"; run = Table3.run };
    { id = "table4"; title = "Write vs migration traffic"; run = Table4.run };
    { id = "ablation_pointers"; title = "Block pointers on/off"; run = Ablations.pointers };
    { id = "ablation_routing"; title = "Routing hop counts"; run = Ablations.routing };
    { id = "ablation_cache_ttl"; title = "Cache TTL sweep"; run = Ablations.cache_ttl };
    { id = "ablation_replicas"; title = "Replication factor"; run = Ablations.replicas };
    { id = "ablation_hybrid"; title = "Hybrid replica placement (§11)"; run = Ablations.hybrid };
    { id = "ablation_erasure"; title = "Replication vs erasure coding (§3)"; run = Ablations.erasure };
    { id = "ablation_stp"; title = "TCP vs STP-style transport (§9.3)"; run = Ablations.stp };
    { id = "ablation_hotspot"; title = "Retrieval caches vs hot spots (§6)"; run = Ablations.hotspot };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

type outcome = { o_entry : entry; output : string; logs : string; wall : float }

let render_entry scale entry =
  let t0 = Unix.gettimeofday () in
  let reports = entry.run scale in
  let wall = Unix.gettimeofday () -. t0 in
  (String.concat "" (List.map Report.render reports), wall)

(* Worker domains must not write through whatever Logs reporter is
   installed (formatters are not domain-safe, and interleaved lines
   would defeat deterministic output).  While a parallel run is in
   flight, log records are redirected into a per-running-entry buffer
   looked up by the reporting domain's id; each entry's captured log
   text is emitted with its outcome, in registry order. *)
let buffering_reporter ~find_buf =
  let report src level ~over k msgf =
    match find_buf () with
    | None ->
        over ();
        k ()
    | Some buf ->
        let ppf = Format.formatter_of_buffer buf in
        msgf (fun ?header ?tags:_ fmt ->
            Format.kfprintf
              (fun ppf ->
                Format.pp_print_flush ppf ();
                Buffer.add_char buf '\n';
                over ();
                k ())
              ppf
              ("%s: [%s] %s" ^^ fmt)
              (Logs.Src.name src)
              (Logs.level_to_string (Some level))
              (match header with Some h -> h ^ " " | None -> ""))
  in
  { Logs.report }

let run_parallel ~jobs scale entries =
  let saved_reporter = Logs.reporter () in
  let mu = Mutex.create () in
  let bufs : (int, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let find_buf () =
    let did = (Domain.self () :> int) in
    Mutex.lock mu;
    let b = Hashtbl.find_opt bufs did in
    Mutex.unlock mu;
    b
  in
  Logs.set_reporter (buffering_reporter ~find_buf);
  let pool = Pool.create ~jobs () in
  Fun.protect
    ~finally:(fun () ->
      Pool.shutdown pool;
      Logs.set_reporter saved_reporter)
    (fun () ->
      Pool.map pool
        (fun e ->
          let buf = Buffer.create 256 in
          let did = (Domain.self () :> int) in
          Mutex.lock mu;
          Hashtbl.replace bufs did buf;
          Mutex.unlock mu;
          Fun.protect
            ~finally:(fun () ->
              Mutex.lock mu;
              Hashtbl.remove bufs did;
              Mutex.unlock mu)
            (fun () ->
              let output, wall = render_entry scale e in
              { o_entry = e; output; logs = Buffer.contents buf; wall }))
        entries)

let run_entries ?jobs scale entries =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  match entries with
  | [] -> []
  | _ when jobs <= 1 || List.compare_length_with entries 1 <= 0 ->
      List.map
        (fun e ->
          let output, wall = render_entry scale e in
          { o_entry = e; output; logs = ""; wall })
        entries
  | _ -> run_parallel ~jobs scale entries

let print_outcome o =
  print_string o.output;
  if o.logs <> "" then print_string o.logs;
  Printf.printf "[%s: %.1fs]\n\n%!" o.o_entry.id o.wall

let run_and_print scale entry =
  let t0 = Unix.gettimeofday () in
  let reports = entry.run scale in
  List.iter D2_util.Report.print reports;
  Printf.printf "[%s: %.1fs]\n\n%!" entry.id (Unix.gettimeofday () -. t0)
