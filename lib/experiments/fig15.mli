(** Figure 15: latency scatter vs the traditional-file DHT (§9.3). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
