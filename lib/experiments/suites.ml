module Keymap = D2_core.Keymap
module Availability = D2_core.Availability
module Perf = D2_core.Perf
module Balance_sim = D2_core.Balance_sim

let all_modes = [ Keymap.Traditional; Keymap.Traditional_file; Keymap.D2 ]

(* Domain-safe: concurrent experiments requesting the same replay or
   pass block on the first builder instead of duplicating it. *)
let avail_memo : Availability.replay D2_util.Memo.t = D2_util.Memo.create ()
let perf_memo : Perf.pass D2_util.Memo.t = D2_util.Memo.create ()
let balance_memo : Balance_sim.result D2_util.Memo.t = D2_util.Memo.create ()

let memo tbl key build = D2_util.Memo.get tbl key build

let availability_replay scale ~mode ~trial =
  let key =
    Printf.sprintf "%s|%s|%d" (Config.scale_name scale) (Keymap.mode_name mode) trial
  in
  memo avail_memo key (fun () ->
      let trace = Data.harvard scale in
      let failures = Data.failures scale ~trial in
      Availability.replay ~trace ~failures ~mode
        ~seed:(Config.master_seed + 200 + trial)
        ())

let perf_pass scale ~mode ~nodes ~bandwidth =
  let key =
    Printf.sprintf "%s|%s|%d|%.0f" (Config.scale_name scale) (Keymap.mode_name mode)
      nodes bandwidth
  in
  memo perf_memo key (fun () ->
      let trace = Data.harvard scale in
      let config =
        {
          (Perf.default_config ~nodes ~bandwidth) with
          Perf.base_nodes = Config.perf_base_nodes scale;
          seed = Config.master_seed + 300;
        }
      in
      Perf.run_pass ~trace ~mode ~config)

let balance_result scale ~trace ~setup =
  let tname = match trace with `Harvard -> "harvard" | `Webcache -> "webcache" in
  let key =
    Printf.sprintf "%s|%s|%s" (Config.scale_name scale) tname
      (Balance_sim.setup_name setup)
  in
  memo balance_memo key (fun () ->
      let tr = match trace with `Harvard -> Data.harvard scale | `Webcache -> Data.webcache scale in
      let params =
        Balance_sim.default_params ~nodes:(Config.balance_nodes scale)
          ~seed:(Config.master_seed + 400)
      in
      (* The web cache starts empty; skip the pre-trace balancing
         phase that only makes sense with preloaded data. *)
      let params =
        match trace with
        | `Harvard -> params
        | `Webcache -> { params with Balance_sim.warmup = 3600.0 }
      in
      Balance_sim.run ~trace:tr ~setup ~params)
