module Keymap = D2_core.Keymap
module Availability = D2_core.Availability
module Perf = D2_core.Perf
module Balance_sim = D2_core.Balance_sim
module Locality = D2_core.Locality

let all_modes = [ Keymap.Traditional; Keymap.Traditional_file; Keymap.D2 ]

(* Domain-safe: concurrent experiments requesting the same replay or
   pass block on the first builder instead of duplicating it. *)
let avail_memo : Availability.replay D2_util.Memo.t = D2_util.Memo.create ()
let perf_memo : Perf.pass D2_util.Memo.t = D2_util.Memo.create ()
let balance_memo : Balance_sim.result D2_util.Memo.t = D2_util.Memo.create ()
let locality_memo : Locality.result list D2_util.Memo.t = D2_util.Memo.create ()

let memo tbl key build = D2_util.Memo.get tbl key build

let availability_replay scale ~mode ~trial =
  let key =
    Printf.sprintf "%s|%s|%d" (Config.scale_name scale) (Keymap.mode_name mode) trial
  in
  memo avail_memo key (fun () ->
      let trace = Data.harvard scale in
      let failures = Data.failures scale ~trial in
      Availability.replay ~trace ~failures ~mode
        ~seed:(Config.master_seed + 200 + trial)
        ())

let perf_pass scale ~mode ~nodes ~bandwidth =
  let key =
    Printf.sprintf "%s|%s|%d|%.0f" (Config.scale_name scale) (Keymap.mode_name mode)
      nodes bandwidth
  in
  memo perf_memo key (fun () ->
      let trace = Data.harvard scale in
      let config =
        {
          (Perf.default_config ~nodes ~bandwidth) with
          Perf.base_nodes = Config.perf_base_nodes scale;
          seed = Config.master_seed + 300;
        }
      in
      Perf.run_pass ~trace ~mode ~config)

let balance_result scale ~trace ~setup =
  let tname = match trace with `Harvard -> "harvard" | `Webcache -> "webcache" in
  let key =
    Printf.sprintf "%s|%s|%s" (Config.scale_name scale) tname
      (Balance_sim.setup_name setup)
  in
  memo balance_memo key (fun () ->
      let tr = match trace with `Harvard -> Data.harvard scale | `Webcache -> Data.webcache scale in
      let params =
        Balance_sim.default_params ~nodes:(Config.balance_nodes scale)
          ~seed:(Config.master_seed + 400)
      in
      (* The web cache starts empty; skip the pre-trace balancing
         phase that only makes sense with preloaded data. *)
      let params =
        match trace with
        | `Harvard -> params
        | `Webcache -> { params with Balance_sim.warmup = 3600.0 }
      in
      Balance_sim.run ~trace:tr ~setup ~params)

let workload_name = function
  | `Harvard -> "harvard"
  | `Hp -> "hp"
  | `Web -> "web"
  | `Webcache -> "webcache"

let locality scale ~workload ~nodes =
  let key =
    Printf.sprintf "%s|%s|%d" (Config.scale_name scale) (workload_name workload)
      nodes
  in
  memo locality_memo key (fun () ->
      let trace =
        match workload with
        | `Harvard -> Data.harvard scale
        | `Hp -> Data.hp scale
        | `Web -> Data.web scale
      in
      Locality.analyze_all trace ~nodes)

(* Datapoint cells: the schedulable unit of {!Registry.run_entries}.
   Each cell warms exactly one memo slot; its label doubles as the
   dedup key when several experiments list the same dependency.  The
   thunks only [ignore] the memoized value — the experiment's [run]
   re-reads everything from the (now warm) caches. *)

type cell = string * (unit -> unit)

let trace_cell scale w =
  ( Printf.sprintf "trace|%s|%s" (Config.scale_name scale) (workload_name w),
    fun () ->
      ignore
        ((match w with
         | `Harvard -> Data.harvard scale
         | `Hp -> Data.hp scale
         | `Web -> Data.web scale
         | `Webcache -> Data.webcache scale)
          : D2_trace.Op.t) )

let locality_cell scale ~workload ~nodes =
  ( Printf.sprintf "locality|%s|%s|%d" (Config.scale_name scale)
      (workload_name workload) nodes,
    fun () -> ignore (locality scale ~workload ~nodes : Locality.result list) )

let avail_cell scale ~mode ~trial =
  ( Printf.sprintf "avail|%s|%s|%d" (Config.scale_name scale)
      (Keymap.mode_name mode) trial,
    fun () ->
      ignore (availability_replay scale ~mode ~trial : Availability.replay) )

let perf_cell scale ~mode ~nodes ~bandwidth =
  ( Printf.sprintf "perf|%s|%s|%d|%.0f" (Config.scale_name scale)
      (Keymap.mode_name mode) nodes bandwidth,
    fun () -> ignore (perf_pass scale ~mode ~nodes ~bandwidth : Perf.pass) )

let balance_cell scale ~trace ~setup =
  ( Printf.sprintf "balance|%s|%s|%s" (Config.scale_name scale)
      (workload_name trace) (Balance_sim.setup_name setup),
    fun () -> ignore (balance_result scale ~trace ~setup : Balance_sim.result) )
