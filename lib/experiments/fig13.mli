(** Figure 13: mean lookup-cache miss rate per scenario (§9.3). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
