(* Figure 3: mean nodes accessed per user each hour, normalized
   against the traditional assignment, for traditional / ordered /
   lower-bound placements over all three workloads (§4.1). *)

module Report = D2_util.Report
module Locality = D2_core.Locality

let run scale =
  let nodes = Config.fig3_nodes scale in
  let r =
    Report.create
      ~title:
        (Printf.sprintf "Figure 3: mean nodes accessed per user-hour (%d nodes)" nodes)
      ~columns:
        [ "workload"; "scenario"; "nodes/user-hour"; "normalized vs traditional" ]
  in
  List.iter
    (fun (name, workload) ->
      let results = Suites.locality scale ~workload ~nodes in
      let traditional =
        match results with
        | { Locality.scenario = Locality.Traditional; mean_nodes_per_user_hour; _ } :: _ ->
            mean_nodes_per_user_hour
        | _ -> 1.0
      in
      List.iter
        (fun (res : Locality.result) ->
          Report.add_row r
            [
              name;
              Locality.scenario_name res.Locality.scenario;
              Report.fmt_float ~decimals:2 res.Locality.mean_nodes_per_user_hour;
              Report.fmt_float ~decimals:4
                (res.Locality.mean_nodes_per_user_hour /. traditional);
            ])
        results)
    [ ("harvard", `Harvard); ("hp", `Hp); ("web", `Web) ];
  [ r ]

let cells scale =
  let nodes = Config.fig3_nodes scale in
  List.concat_map
    (fun w ->
      [
        Suites.trace_cell scale (w :> [ `Harvard | `Hp | `Web | `Webcache ]);
        Suites.locality_cell scale ~workload:w ~nodes;
      ])
    [ `Harvard; `Hp; `Web ]
