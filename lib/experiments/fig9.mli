(** Figure 9: DHT lookup messages per node vs system size (§9.2). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
