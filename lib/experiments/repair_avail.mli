(** Anti-entropy bandwidth vs availability (§12): a deterministic
    two-kill schedule on the live mem-transport cluster, swept over
    repair intervals plus a repair-off control.  Rows report the
    repair traffic (sessions, frames, bytes, copies moved) against the
    end-state availability (replica groups below r, blocks at full
    replication, blocks a quorum-2 read can serve). *)

val run : Config.scale -> D2_util.Report.t list
