(** Table 1: the workloads analyzed — our synthetic equivalents' sizes. *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
