(* Figure 10: geometric-mean speedup of D2 over the traditional DHT,
   for each system size, access bandwidth, and dependence extreme
   (seq / para) (§9.3). *)

module Report = D2_util.Report
module Keymap = D2_core.Keymap
module Perf = D2_core.Perf

let speedup_rows scale ~baseline_mode ~title =
  let r =
    Report.create ~title
      ~columns:[ "nodes"; "bandwidth"; "seq speedup"; "para speedup"; "groups" ]
  in
  List.iter
    (fun bandwidth ->
      List.iter
        (fun nodes ->
          let baseline = Suites.perf_pass scale ~mode:baseline_mode ~nodes ~bandwidth in
          let d2 = Suites.perf_pass scale ~mode:Keymap.D2 ~nodes ~bandwidth in
          let seq = Perf.speedup ~baseline ~improved:d2 ~which:`Seq in
          let para = Perf.speedup ~baseline ~improved:d2 ~which:`Para in
          Report.add_row r
            [
              string_of_int nodes;
              Printf.sprintf "%.0fkbps" (bandwidth /. 1000.0);
              Report.fmt_float ~decimals:2 seq.Perf.overall;
              Report.fmt_float ~decimals:2 para.Perf.overall;
              string_of_int seq.Perf.groups_compared;
            ])
        (Config.perf_sizes scale))
    (Config.perf_bandwidths scale);
  [ r ]

let run scale =
  speedup_rows scale ~baseline_mode:Keymap.Traditional
    ~title:"Figure 10: speedup of D2 over the traditional DHT"

let cells_for scale ~baseline_mode =
  Suites.trace_cell scale `Harvard
  :: List.concat_map
       (fun bandwidth ->
         List.concat_map
           (fun nodes ->
             [
               Suites.perf_cell scale ~mode:baseline_mode ~nodes ~bandwidth;
               Suites.perf_cell scale ~mode:Keymap.D2 ~nodes ~bandwidth;
             ])
           (Config.perf_sizes scale))
       (Config.perf_bandwidths scale)

let cells scale = cells_for scale ~baseline_mode:Keymap.Traditional
