(** Catalogue of every reproducible experiment: the paper's tables and
    figures plus the ablations.  The bench harness and the CLI both
    drive experiments through this list.

    Experiments are independent — each seeds its own {!D2_util.Rng}
    chain and builds its own simulation state, and the shared trace /
    pass caches ({!Data}, {!Suites}) are domain-safe — so
    {!run_entries} can execute them concurrently on a
    {!D2_util.Pool} of worker domains while still printing results
    deterministically in registry order.

    Work is scheduled at {e datapoint} granularity: each entry lists
    the {!Suites.cell}s (one per trace, replay, pass, or balance run)
    its tables read, those cells are deduplicated by label and
    submitted to the pool individually, and only then is each entry's
    render task queued.  A single slow experiment — e.g. [table1],
    whose four trace generations are independent — therefore fans out
    across every worker instead of serializing on one. *)

type entry = {
  id : string;  (** e.g. "fig9", "table3", "ablation_pointers" *)
  title : string;
  run : Config.scale -> D2_util.Report.t list;
  cells : Config.scale -> Suites.cell list;
      (** datapoint dependencies of [run]; [fun _ -> []] for
          self-contained entries *)
}

val all : entry list
(** Paper order: table1, fig3, table2, fig7, fig8, fig9..fig17,
    table3, table4, then the ablations. *)

val find : string -> entry option

type outcome = {
  o_entry : entry;
  output : string;  (** rendered report tables *)
  logs : string;  (** log records captured while running this entry *)
  wall : float;
      (** elapsed seconds from this entry's earliest owned datapoint
          cell's start (or its render's start) to render end — the
          cost of the work {e attributed} to this entry *)
  shared_wall : float;
      (** summed spans of the datapoint cells this entry consumed that
          an earlier entry owned (their cost is inside that entry's
          [wall]; an entry reusing only warm memos has [wall] ≈ render
          time and the real compute here).  Fixes the 0.000-wall
          artifact datapoint scheduling gave memo-only entries. *)
}

val run_entries : ?jobs:int -> Config.scale -> entry list -> outcome list
(** Run the entries on [jobs] worker domains (default
    {!D2_util.Pool.default_jobs}, i.e. the [D2_JOBS] environment
    override) and return their outcomes {e in input order}.  All
    distinct datapoint cells are submitted first (in entry order), then
    one render task per entry.  When only one effective worker would
    exist ([jobs = 1], or a single-core machine capping the pool — see
    {!D2_util.Pool.effective_jobs}) everything runs sequentially on
    the calling domain: each entry's owned cells, then its render.
    Report output and captured logs are byte-identical
    across job counts; only the [wall] fields vary. *)

val print_outcome : outcome -> unit
(** Print the entry's tables, any captured log lines, and an
    "[id: 1.2s]" wall-time trailer. *)

val run_and_print : Config.scale -> entry -> unit
(** Run one entry sequentially, print its tables and elapsed time. *)
