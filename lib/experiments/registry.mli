(** Catalogue of every reproducible experiment: the paper's tables and
    figures plus the ablations.  The bench harness and the CLI both
    drive experiments through this list.

    Experiments are independent — each seeds its own {!D2_util.Rng}
    chain and builds its own simulation state, and the shared trace /
    pass caches ({!Data}, {!Suites}) are domain-safe — so
    {!run_entries} can execute them concurrently on a
    {!D2_util.Pool} of worker domains while still printing results
    deterministically in registry order. *)

type entry = {
  id : string;  (** e.g. "fig9", "table3", "ablation_pointers" *)
  title : string;
  run : Config.scale -> D2_util.Report.t list;
}

val all : entry list
(** Paper order: table1, fig3, table2, fig7, fig8, fig9..fig17,
    table3, table4, then the ablations. *)

val find : string -> entry option

type outcome = {
  o_entry : entry;
  output : string;  (** rendered report tables *)
  logs : string;  (** log records captured during a parallel run *)
  wall : float;  (** this entry's own wall-clock seconds *)
}

val run_entries : ?jobs:int -> Config.scale -> entry list -> outcome list
(** Run the entries on [jobs] worker domains (default
    {!D2_util.Pool.default_jobs}, i.e. the [D2_JOBS] environment
    override) and return their outcomes {e in input order}.  With
    [jobs = 1] (or a single entry) everything runs sequentially on the
    calling domain.  Report output is byte-identical across job
    counts; only the [wall] fields vary. *)

val print_outcome : outcome -> unit
(** Print the entry's tables, any captured log lines, and an
    "[id: 1.2s]" wall-time trailer. *)

val run_and_print : Config.scale -> entry -> unit
(** Run one entry sequentially, print its tables and elapsed time. *)
