module Rng = D2_util.Rng

let memo_tbl : D2_trace.Op.t D2_util.Memo.t = D2_util.Memo.create ()

let memo key build = D2_util.Memo.get memo_tbl key build

let harvard scale =
  memo
    ("harvard-" ^ Config.scale_name scale)
    (fun () ->
      D2_trace.Harvard.generate
        ~rng:(Rng.create Config.master_seed)
        ~params:(Config.harvard_params scale) ())

let hp scale =
  memo
    ("hp-" ^ Config.scale_name scale)
    (fun () ->
      D2_trace.Hp.generate
        ~rng:(Rng.create (Config.master_seed + 1))
        ~params:(Config.hp_params scale) ())

let web scale =
  memo
    ("web-" ^ Config.scale_name scale)
    (fun () ->
      D2_trace.Web.generate
        ~rng:(Rng.create (Config.master_seed + 2))
        ~params:(Config.web_params scale) ())

let webcache scale =
  memo
    ("webcache-" ^ Config.scale_name scale)
    (fun () -> D2_trace.Webcache.of_web_trace (web scale))

let failures scale ~trial =
  let trace = harvard scale in
  D2_trace.Failure.generate
    ~rng:(Rng.create (Config.master_seed + 100 + trial))
    ~n:(Config.avail_nodes scale) ~duration:trace.D2_trace.Op.duration ()
