(* Table 1: the workloads analyzed — duration, access counts, active
   data.  Ours are synthetic equivalents (DESIGN.md §2), so this table
   doubles as the record of their actual sizes at each scale. *)

module Op = D2_trace.Op
module Report = D2_util.Report

let describe (t : Op.t) =
  let mb = float_of_int (Op.total_initial_bytes t) /. 1.0e6 in
  [
    t.Op.name;
    Printf.sprintf "%.1f days" (t.Op.duration /. 86400.0);
    string_of_int (Array.length t.Op.ops);
    Printf.sprintf "%.0f MB" mb;
    string_of_int t.Op.users;
  ]

let run scale =
  let r =
    Report.create ~title:"Table 1: workloads analyzed (synthetic equivalents)"
      ~columns:[ "workload"; "duration"; "accesses"; "active data"; "users" ]
  in
  Report.add_row r (describe (Data.harvard scale));
  Report.add_row r (describe (Data.hp scale));
  Report.add_row r (describe (Data.web scale));
  let wc = Data.webcache scale in
  Report.add_row r
    [
      wc.Op.name;
      Printf.sprintf "%.1f days" (wc.Op.duration /. 86400.0);
      string_of_int (Array.length wc.Op.ops);
      "(starts empty)";
      string_of_int wc.Op.users;
    ];
  [ r ]

let cells scale =
  List.map (Suites.trace_cell scale) [ `Harvard; `Hp; `Web; `Webcache ]
