(* Figure 12: per-user mean speedup over the traditional DHT in the
   largest 1500 kbps scenario — most users gain, a few with unlucky
   replica placement lose a little (§9.3). *)

module Report = D2_util.Report
module Keymap = D2_core.Keymap
module Perf = D2_core.Perf
module Stats = D2_util.Stats

let run scale =
  let nodes = List.fold_left max 0 (Config.perf_sizes scale) in
  let bandwidth = 1_500_000.0 in
  let baseline = Suites.perf_pass scale ~mode:Keymap.Traditional ~nodes ~bandwidth in
  let d2 = Suites.perf_pass scale ~mode:Keymap.D2 ~nodes ~bandwidth in
  let r =
    Report.create
      ~title:
        (Printf.sprintf
           "Figure 12: per-user speedup over traditional (%d nodes, 1500kbps)" nodes)
      ~columns:[ "metric"; "seq"; "para" ]
  in
  let summarize which =
    let sp = Perf.speedup ~baseline ~improved:d2 ~which in
    let vals = Array.map snd sp.Perf.per_user in
    (sp, vals)
  in
  let seq_sp, seq_vals = summarize `Seq in
  let para_sp, para_vals = summarize `Para in
  let pct arr p =
    if Array.length arr = 0 then "-" else Report.fmt_float ~decimals:2 (Stats.percentile arr p)
  in
  let faster arr =
    let n = Array.length arr in
    if n = 0 then "-"
    else begin
      let f = Array.fold_left (fun a v -> if v > 1.0 then a + 1 else a) 0 arr in
      Printf.sprintf "%d/%d" f n
    end
  in
  List.iter
    (fun (label, f) -> Report.add_row r [ label; f seq_vals; f para_vals ])
    [
      ("p10 user speedup", fun a -> pct a 10.0);
      ("median user speedup", fun a -> pct a 50.0);
      ("p90 user speedup", fun a -> pct a 90.0);
      ("max user speedup", fun a -> pct a 100.0);
      ("min user speedup", fun a -> pct a 0.0);
      ("users faster under D2", faster);
    ];
  Report.add_row r
    [
      "overall geo-mean";
      Report.fmt_float ~decimals:2 seq_sp.Perf.overall;
      Report.fmt_float ~decimals:2 para_sp.Perf.overall;
    ];
  [ r ]

let cells scale =
  let nodes = List.fold_left max 0 (Config.perf_sizes scale) in
  let bandwidth = 1_500_000.0 in
  [
    Suites.trace_cell scale `Harvard;
    Suites.perf_cell scale ~mode:Keymap.Traditional ~nodes ~bandwidth;
    Suites.perf_cell scale ~mode:Keymap.D2 ~nodes ~bandwidth;
  ]
