(** Figure 10: speedup of D2 over the traditional DHT (§9.3). *)

val speedup_rows :
  Config.scale ->
  baseline_mode:D2_core.Keymap.mode ->
  title:string ->
  D2_util.Report.t list
(** Shared speedup-table builder (also drives Figure 11). *)

val run : Config.scale -> D2_util.Report.t list

val cells_for :
  Config.scale -> baseline_mode:D2_core.Keymap.mode -> Suites.cell list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
