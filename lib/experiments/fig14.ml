(* Figures 14–15: the access-group latency scatter plots, summarized
   as text: bucket access groups by their baseline latency and report
   how many complete faster under D2 and by how much (§9.3).  "Above
   the diagonal" in the paper = faster in D2 here. *)

module Report = D2_util.Report
module Keymap = D2_core.Keymap
module Perf = D2_core.Perf
module Stats = D2_util.Stats

let buckets = [ (0.0, 0.5); (0.5, 2.0); (2.0, 5.0); (5.0, 20.0); (20.0, infinity) ]

let bucket_label (a, b) =
  if b = infinity then Printf.sprintf ">%gs" a else Printf.sprintf "%g-%gs" a b

let scatter_summary scale ~baseline_mode ~which ~title =
  let nodes = List.fold_left max 0 (Config.perf_sizes scale) in
  let bandwidth = 1_500_000.0 in
  let baseline = Suites.perf_pass scale ~mode:baseline_mode ~nodes ~bandwidth in
  let d2 = Suites.perf_pass scale ~mode:Keymap.D2 ~nodes ~bandwidth in
  let pairs = Perf.latency_pairs ~baseline ~improved:d2 ~which in
  let r =
    Report.create ~title
      ~columns:
        [ "baseline latency"; "groups"; "faster in D2"; "median ratio"; "mean base (s)"; "mean d2 (s)" ]
  in
  List.iter
    (fun (a, b) ->
      let sel = Array.of_list
          (List.filter (fun (lb, _) -> lb >= a && lb < b) (Array.to_list pairs))
      in
      let n = Array.length sel in
      if n > 0 then begin
        let faster =
          Array.fold_left (fun acc (lb, li) -> if li < lb then acc + 1 else acc) 0 sel
        in
        let ratios = Array.map (fun (lb, li) -> lb /. li) sel in
        Report.add_row r
          [
            bucket_label (a, b);
            string_of_int n;
            Printf.sprintf "%d (%.0f%%)" faster (100.0 *. float_of_int faster /. float_of_int n);
            Report.fmt_float ~decimals:2 (Stats.median ratios);
            Report.fmt_float ~decimals:2 (Stats.mean (Array.map fst sel));
            Report.fmt_float ~decimals:2 (Stats.mean (Array.map snd sel));
          ]
      end)
    buckets;
  let n = Array.length pairs in
  let above =
    Array.fold_left (fun acc (lb, li) -> if li < lb then acc + 1 else acc) 0 pairs
  in
  if n > 0 then
    Report.add_row r
      [
        "all";
        string_of_int n;
        Printf.sprintf "%d (%.0f%%)" above (100.0 *. float_of_int above /. float_of_int n);
        "";
        "";
        "";
      ];
  r

let run scale =
  [
    scatter_summary scale ~baseline_mode:Keymap.Traditional ~which:`Seq
      ~title:"Figure 14a: access-group latency, D2 vs traditional (seq)";
    scatter_summary scale ~baseline_mode:Keymap.Traditional ~which:`Para
      ~title:"Figure 14b: access-group latency, D2 vs traditional (para)";
  ]

let cells_for scale ~baseline_mode =
  let nodes = List.fold_left max 0 (Config.perf_sizes scale) in
  let bandwidth = 1_500_000.0 in
  [
    Suites.trace_cell scale `Harvard;
    Suites.perf_cell scale ~mode:baseline_mode ~nodes ~bandwidth;
    Suites.perf_cell scale ~mode:Keymap.D2 ~nodes ~bandwidth;
  ]

let cells scale = cells_for scale ~baseline_mode:Keymap.Traditional
