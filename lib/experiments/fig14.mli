(** Figures 14: access-group latency scatter vs the traditional DHT,
    summarized as per-bucket win rates and ratios (§9.3). *)

val scatter_summary :
  Config.scale ->
  baseline_mode:D2_core.Keymap.mode ->
  which:[ `Seq | `Para ] ->
  title:string ->
  D2_util.Report.t
(** Shared scatter-table builder (also drives Figure 15). *)

val run : Config.scale -> D2_util.Report.t list

val cells_for :
  Config.scale -> baseline_mode:D2_core.Keymap.mode -> Suites.cell list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
