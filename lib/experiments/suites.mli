(** Memoized heavy simulation runs shared across experiment tables.

    Figures 7, 8 and Table 2 share the availability replays; Figures
    9–15 share the performance passes.  Each is computed once per
    (scale, configuration) and cached for the process lifetime, so
    regenerating one figure after another costs one simulation, not
    one per figure. *)

val availability_replay :
  Config.scale -> mode:D2_core.Keymap.mode -> trial:int -> D2_core.Availability.replay

val perf_pass :
  Config.scale ->
  mode:D2_core.Keymap.mode ->
  nodes:int ->
  bandwidth:float ->
  D2_core.Perf.pass

val balance_result :
  Config.scale ->
  trace:[ `Harvard | `Webcache ] ->
  setup:D2_core.Balance_sim.setup ->
  D2_core.Balance_sim.result

val locality :
  Config.scale ->
  workload:[ `Harvard | `Hp | `Web ] ->
  nodes:int ->
  D2_core.Locality.result list
(** Fig. 3's locality analysis, memoized per (scale, workload, node
    count). *)

val all_modes : D2_core.Keymap.mode list
(** Traditional, Traditional_file, D2 — comparison order used in the
    tables. *)

(** {1 Datapoint cells}

    A cell is one schedulable datapoint — a (label, thunk) pair whose
    thunk warms exactly one of the memos above.  Experiments list the
    cells their [run] will read, and {!Registry.run_entries} submits
    each distinct label once to its worker pool, so a single slow
    experiment decomposes into many small tasks that keep every domain
    busy.  Labels are the dedup keys: two experiments naming the same
    cell share one computation. *)

type cell = string * (unit -> unit)

val trace_cell : Config.scale -> [ `Harvard | `Hp | `Web | `Webcache ] -> cell
val locality_cell : Config.scale -> workload:[ `Harvard | `Hp | `Web ] -> nodes:int -> cell
val avail_cell : Config.scale -> mode:D2_core.Keymap.mode -> trial:int -> cell

val perf_cell :
  Config.scale -> mode:D2_core.Keymap.mode -> nodes:int -> bandwidth:float -> cell

val balance_cell :
  Config.scale ->
  trace:[ `Harvard | `Webcache ] ->
  setup:D2_core.Balance_sim.setup ->
  cell
