(** Table 2: mean blocks, files and nodes accessed per task (§8.2). *)

val run : Config.scale -> D2_util.Report.t list

val cells : Config.scale -> Suites.cell list
(** Datapoint dependencies of {!run}, for {!Registry.run_entries}. *)
